// Package ctsan reproduces "Performance Analysis of a Consensus Algorithm
// Combining Stochastic Activity Networks and Measurements" (Coccoli,
// Urbán, Bondavalli, Schiper — DSN 2002): the Chandra–Toueg ◇S consensus
// algorithm analyzed both by measurements on an emulated cluster and by
// transient simulation of a Stochastic Activity Network model.
//
// The evaluation campaigns — thousands of Monte-Carlo replicas of the SAN
// model and thousands of emulated consensus executions per figure — run on
// a deterministic worker pool (internal/parallel): replicas and campaign
// points fan out across the CPUs, yet every result is bit-identical at any
// worker count because each work unit draws from a per-index child random
// stream and results are folded in index order. See PERFORMANCE.md for the
// scheme and the -workers flag of cmd/repro, cmd/sanrun, cmd/fdqos, and
// cmd/scenario.
//
// Above the emulator sits the declarative scenario layer
// (internal/scenario): timelines of correlated adverse conditions —
// process crashes and recoveries, network partitions and heals, per-link
// loss and latency, whole-host pause storms, workload phases — built with
// a fluent API or loaded from JSON, compiled into DES events against the
// cluster (netsim.CrashAt/RecoverAt, the hub partition/link filter,
// PauseAt, PhaseAt), and fanned as scenario × replica campaigns through
// the worker pool. A registry of named built-ins (paper-baseline,
// crash-n3-anomaly, rolling-crash, split-brain, gc-storm, burst-load,
// flaky-link) is exposed by cmd/scenario (list, describe, run) and the
// -scenario flag of cmd/testbed; reports carry latency percentiles,
// ground-truthed wrong-suspicion rates, and decision throughput.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced tables and figures. The benchmarks in
// bench_test.go regenerate every evaluation artifact of the paper.
package ctsan
