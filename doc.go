// Package ctsan reproduces "Performance Analysis of a Consensus Algorithm
// Combining Stochastic Activity Networks and Measurements" (Coccoli,
// Urbán, Bondavalli, Schiper — DSN 2002): the Chandra–Toueg ◇S consensus
// algorithm analyzed both by measurements on an emulated cluster and by
// transient simulation of a Stochastic Activity Network model.
//
// The public entry point is the campaign package (ctsan/campaign): a
// Study is a named grid of Points, each bound to one of the three
// engines the methodology spans — SAN (transient simulation of the §3
// model), Emulation (measurement campaigns on the emulated cluster of
// §4), and Scenario (declarative fault/workload timelines). One
// campaign.Run(ctx, study, opts...) call executes any mix of them with
// functional options (WithSeed, WithWorkers, WithReplicas, WithProgress,
// WithSink), streaming per-point results to Sink implementations
// (Collect, JSONLWriter, TableSink) in deterministic point-index order,
// and honoring context cancellation down to execution and replica
// boundaries. See campaign's package example for the same latency study
// run on both the model and the emulator.
//
// Under the public surface, the evaluation campaigns — thousands of
// Monte-Carlo replicas of the SAN model and thousands of emulated
// consensus executions per figure — run on a deterministic worker pool
// (internal/parallel): replicas and campaign points fan out across the
// CPUs, yet every result is bit-identical at any worker count because
// each work unit draws from a per-index child random stream and results
// are folded (and now streamed) in index order. Both engines reuse one
// simulator assembly per worker instead of constructing per replica:
// the SAN workers rewind a shared model's simulator (san.Sim.Reset),
// and the emulation/scenario workers rewind a whole cluster + protocol
// stack + consensus engine + failure detector assembly
// (netsim.Cluster.Reset and the layer reset hooks), with pooled
// message-transit and timer records making the steady-state delivery
// path allocation-free — reset-then-run is bit-identical to
// construct-then-run. The inner loop itself is allocation-free end to
// end: protocol payloads cross the stack as a flat typed union
// (neko.Payload) dispatched through a kind-indexed table rather than a
// heap-boxed any, watchdog and injection callbacks are pooled records,
// scenario timelines compile once per assembly and rewind in place, and
// the DES kernel schedules through an adaptive calendar queue whose
// eager cancellation keeps the pop path free of dead entries — in
// total ~1.7 allocations per consensus execution, all per-replica
// bookkeeping. See PERFORMANCE.md for the scheme and the shared
// -workers/-seed flags (internal/cliflags) of cmd/repro, cmd/sanrun,
// cmd/fdqos, cmd/testbed, and cmd/scenario.
//
// All three engines observe their samples through the streaming metrics
// core (internal/metrics): per-execution latencies fold into a
// constant-memory Digest — exact Welford moments plus quantiles that are
// exact (and bit-identical to the historical sort-the-slice path) up to
// a configurable cap and deterministically sketched beyond it — instead
// of being retained as raw slices. campaign.Result.Samples is therefore
// a method lazily derived from the digest: it returns the ordered
// samples for campaigns under the exact cap and nil for the
// million-execution campaigns that deliberately do not retain them.
//
// Above the emulator sits the declarative scenario layer
// (internal/scenario): timelines of correlated adverse conditions —
// process crashes and recoveries, network partitions and heals, per-link
// loss and latency, whole-host pause storms, workload phases — built with
// a fluent API or loaded from JSON, compiled into DES events against the
// cluster (netsim.CrashAt/RecoverAt, the hub partition/link filter,
// PauseAt, PhaseAt), and fanned as scenario × replica campaigns through
// the worker pool. A registry of named built-ins (paper-baseline,
// crash-n3-anomaly, rolling-crash, split-brain, gc-storm, burst-load,
// flaky-link) is exposed by cmd/scenario (list, describe, run — whose
// -json report schema is pinned by a golden test) and the -scenario flag
// of cmd/testbed; reports carry latency percentiles, ground-truthed
// wrong-suspicion rates, and decision throughput.
//
// Campaigns larger than one process shard across subprocesses — and
// machines — through cmd/ctsan: a study spec plus (seed, replicas)
// freezes deterministically into the identical grid everywhere
// (campaign.Frozen), contiguous index ranges are planned and supervised
// as isolated subprocesses with timeouts, bounded retries, and
// exponential backoff (internal/shard), and every completed point is
// checkpointed durably as a CRC-framed record via atomic file
// replacement (internal/checkpoint, internal/atomicio). A shard that
// crashes, panics, or is SIGKILLed loses at most the point in flight
// and resumes from its checkpoint; the merge folds records in
// grid-index order and is byte-identical to an uninterrupted 1-process
// run, a property pinned by differential tests and fuzzed wire formats
// (the versioned metrics.Digest binary/JSON encodings, study specs,
// shard records, and checkpoint framing).
//
// The same campaigns are served long-running by cmd/ctsand
// (internal/server): an HTTP service where concurrent users POST the
// identical study-spec JSON, browse the scenario registry, watch
// results stream live (chunked JSONL or SSE, in deterministic
// point-index order, byte-identical to an in-process run), and fetch
// final digests. The service is where the production concerns live —
// bounded admission (429 + Retry-After past the queue depth), per-study
// worker budgets carved from one shared pool, graceful drain through
// the campaign ctx plumbing — and where determinism pays off twice: a
// content-addressed result cache (campaign.PointHash of the frozen
// point → encoded shard record) serves repeated points from memory —
// and, with -cache-dir, across restarts — bit-identical to
// resimulating them.
//
// The service is also the fleet coordinator: a study submitted with
// ?mode=fleet is not run on the local pool but dispatched to pulling
// `ctsan worker` processes on any machines that can reach it. Workers
// lease contiguous frozen-grid ranges (adaptively sized to ~1s of
// work), execute them through the same RunShardRange checkpoint
// machinery the shard CLI uses, and upload the CRC-framed records; the
// coordinator verifies every record against its own freeze (CRC +
// PointHash), requeues expired leases of dead workers, and folds
// accepted records in grid-index order — so the streamed JSONL is
// byte-identical to a single-process run at any fleet size, and a
// SIGKILLed worker costs one lease of re-execution, never a wrong
// result (determinism rule 7 in PERFORMANCE.md).
//
// Every engine layer is traceable: an optional internal/trace tracer
// captures typed, sim-timed records — kernel scheduling, message
// send/deliver/drop with cause, timer lifecycle, fault and workload
// injections, heartbeat and suspicion transitions, consensus rounds —
// into a bounded per-replica ring at zero steady-state allocation, and
// a nil tracer costs one branch per emit site. The trace is itself
// deterministic output: bit-identical at any worker count for a fixed
// seed (determinism rule 6 in PERFORMANCE.md). cmd/scenario trace dumps
// it as JSONL or a Chrome trace_event file loadable in Perfetto, and
// -explain prints the causal event window behind each ground-truthed
// wrong suspicion. Campaign-level telemetry (internal/obs) — execution
// and point counters, shard retry/backoff, checkpoint appends, worker
// utilization — is exported via expvar and net/http/pprof when a CLI
// passes -debug-addr, and cmd/benchjson gates BENCH_emulation.json
// drift in CI.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced tables and figures. The benchmarks in
// bench_test.go regenerate every evaluation artifact of the paper.
package ctsan
