// Package ctsan reproduces "Performance Analysis of a Consensus Algorithm
// Combining Stochastic Activity Networks and Measurements" (Coccoli,
// Urbán, Bondavalli, Schiper — DSN 2002): the Chandra–Toueg ◇S consensus
// algorithm analyzed both by measurements on an emulated cluster and by
// transient simulation of a Stochastic Activity Network model.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced tables and figures. The benchmarks in
// bench_test.go regenerate every evaluation artifact of the paper.
package ctsan
