#!/usr/bin/env sh
# Smoke-tests fleet dispatch end to end against the real binaries:
# starts ctsand, submits a study under ?mode=fleet, serves it with two
# `ctsan worker` processes — SIGKILLing one mid-lease so the
# coordinator must expire and re-lease its range — and byte-compares
# the coordinator's folded JSONL against a single-process `ctsan run`
# of the same study. A killed worker may cost a lease of re-execution;
# it must never change a result bit.
set -eu
cd "$(dirname "$0")/.."

LOG="$(mktemp)"
VLOG="$(mktemp)"
WLOG="$(mktemp)"
SPEC="$(mktemp)"
FLEET="$(mktemp)"
REF="$(mktemp)"
WORKDIR="$(mktemp -d)"
PID=""
VPID=""
WPID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$VPID" ] && kill -9 "$VPID" 2>/dev/null || true
    [ -n "$WPID" ] && kill "$WPID" 2>/dev/null || true
    rm -f "$LOG" "$VLOG" "$WLOG" "$SPEC" "$FLEET" "$REF"
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o /tmp/ctsand-fleet-smoke ./cmd/ctsand
go build -o /tmp/ctsan-fleet-smoke ./cmd/ctsan

cat >"$SPEC" <<'EOF'
{"v":1,"name":"fleet-smoke","points":[
  {"engine":"san","spec":{"N":3,"Replicas":200}},
  {"engine":"san","spec":{"N":5,"Replicas":200}},
  {"engine":"san","spec":{"N":7,"Replicas":100}}]}
EOF

# The single-process ground truth the fleet must reproduce byte for
# byte (ctsand's default seed is 1).
/tmp/ctsan-fleet-smoke run -study "$SPEC" -seed 1 -shards 1 \
    -dir "$WORKDIR/ref" -o "$REF" 2>/dev/null

# Short lease TTL so the killed worker's range re-leases quickly.
/tmp/ctsand-fleet-smoke -addr 127.0.0.1:0 -lease-ttl 1s 2>"$LOG" &
PID=$!

ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR="$(sed -n 's#.*listening on http://\([^/]*\)/.*#\1#p' "$LOG" | head -n 1)"
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "ctsand exited early:" >&2; cat "$LOG" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "ctsand never logged its address" >&2; cat "$LOG" >&2; exit 1; }
echo "campaign service at $ADDR" >&2

ID="$(curl -sf -X POST --data-binary @"$SPEC" "http://$ADDR/api/v1/studies?mode=fleet" |
    sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$ID" ] || { echo "fleet submission rejected" >&2; exit 1; }

fleet_field() { # fleet_field <name>
    curl -sf "http://$ADDR/api/v1/studies/$ID" |
        sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p"
}

# The victim worker throttles 30s after each checkpointed point, so it
# is guaranteed to be holding (and renewing) a lease when the SIGKILL
# lands.
/tmp/ctsan-fleet-smoke worker -server "http://$ADDR" -study-id "$ID" \
    -name victim -dir "$WORKDIR/victim" -workers 1 -throttle 30s 2>"$VLOG" &
VPID=$!

i=0
while [ $i -lt 300 ]; do
    grep -q "checkpointed" "$VLOG" && break
    kill -0 "$VPID" 2>/dev/null || { echo "victim exited early:" >&2; cat "$VLOG" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
grep -q "checkpointed" "$VLOG" || { echo "victim never checkpointed a point" >&2; cat "$VLOG" >&2; exit 1; }

kill -9 "$VPID"
wait "$VPID" 2>/dev/null || true
VPID=""
echo "victim worker SIGKILLed mid-lease" >&2

# The survivor finishes the study (it exits when the coordinator
# answers done), re-executing the orphaned range after the TTL.
/tmp/ctsan-fleet-smoke worker -server "http://$ADDR" -study-id "$ID" \
    -name survivor -dir "$WORKDIR/survivor" -workers 1 2>"$WLOG" &
WPID=$!

# The results stream follows the live tail, so this curl returns
# exactly when the study is done.
curl -sfN "http://$ADDR/api/v1/studies/$ID/results" >"$FLEET"
wait "$WPID" || { echo "survivor worker failed:" >&2; cat "$WLOG" >&2; exit 1; }
WPID=""

cmp "$FLEET" "$REF" || {
    echo "fleet stream differs from single-process ctsan run" >&2
    exit 1
}
[ -s "$FLEET" ] || { echo "empty fleet result stream" >&2; exit 1; }

EXPIRED="$(fleet_field expired)"
[ -n "$EXPIRED" ] && [ "$EXPIRED" -ge 1 ] || {
    echo "coordinator never expired the victim's lease (expired=$EXPIRED)" >&2
    exit 1
}

kill -TERM "$PID"
RC=0
wait "$PID" || RC=$?
PID=""
[ "$RC" = "0" ] || { echo "graceful shutdown exited $RC" >&2; cat "$LOG" >&2; exit 1; }

echo "fleet smoke OK: $EXPIRED lease(s) expired after SIGKILL, stream byte-identical to ctsan run, clean drain" >&2
