#!/usr/bin/env sh
# Runs the emulation-path benchmark suite — the scenario campaign
# benchmarks, the cluster reset-vs-construct pair, the campaign
# memory benchmark, and the SAN campaign baseline — and writes the
# results to BENCH_emulation.json via
# cmd/benchjson, so the perf trajectory of the allocation-lean emulator
# is tracked per commit (CI uploads the file as a build artifact).
#
# BENCHTIME tunes the per-benchmark budget (default 5x iterations; CI
# uses a smaller smoke value). The human-readable output still streams to
# stderr, so the script is usable interactively.
#
# PROFILE_DIR, when set, additionally captures CPU and heap profiles of
# the scenario-campaign benchmark (the hot emulation path) into that
# directory as scenario.cpu.pprof / scenario.mem.pprof; CI uploads them
# as artifacts so a perf regression ships with the profile that explains
# it. Profiling is a separate single-package run because -cpuprofile
# applies per test binary.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-5x}"
OUT="${OUT:-BENCH_emulation.json}"
PROFILE_DIR="${PROFILE_DIR:-}"

# Two stages, not a pipeline: POSIX sh has no pipefail, and a pipeline
# would report benchjson's status even when go test itself fails — CI
# must go red when a benchmark stops building or panics.
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run=- \
    -bench 'BenchmarkScenarioCampaign(Serial|Parallel|Traced)|BenchmarkCluster(Reset|NewPerReplica)|BenchmarkCampaignMemory|BenchmarkDESSchedule$|BenchmarkSANCampaignSerial' \
    -benchmem -benchtime "$BENCHTIME" \
    ./internal/scenario/ ./internal/netsim/ ./internal/metrics/ ./internal/des/ ./campaign/ \
    >"$TMP"
cat "$TMP" >&2

go run ./cmd/benchjson -o "$OUT" <"$TMP"
echo "wrote $OUT" >&2

if [ -n "$PROFILE_DIR" ]; then
    mkdir -p "$PROFILE_DIR"
    go test -run=- -bench 'BenchmarkScenarioCampaignSerial' \
        -benchtime "$BENCHTIME" \
        -cpuprofile "$PROFILE_DIR/scenario.cpu.pprof" \
        -memprofile "$PROFILE_DIR/scenario.mem.pprof" \
        -o "$PROFILE_DIR/scenario.test" \
        ./internal/scenario/ >&2
    echo "wrote $PROFILE_DIR/scenario.cpu.pprof and scenario.mem.pprof" >&2
fi
