#!/usr/bin/env sh
# End-to-end crash-safety check for the sharded campaign executor
# (cmd/ctsan), against the real installed binary — the CI twin of the
# in-package differential test TestKillAndResume:
#
#   1. run an uninterrupted sharded campaign → reference JSONL;
#   2. start a throttled shard, SIGKILL it once its checkpoint holds at
#      least one record but not all of them;
#   3. resume under the supervisor and merge;
#   4. the resumed output must be byte-identical to the reference, and
#      the records that survived the kill must be reused verbatim.
#
# Exit status 0 iff all of that holds.
set -eu
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

CTSAN="$WORK/ctsan"
go build -o "$CTSAN" ./cmd/ctsan

# A small cross-engine study, hand-written the way an operator would:
# omitted point fields default to zero (the strict decoder only rejects
# *unknown* fields). Point count (6) and the shard throttle below are
# sized so the kill reliably lands mid-range.
SPEC="$WORK/study.json"
cat >"$SPEC" <<'EOF'
{
  "v": 1,
  "name": "kill-resume-ci",
  "points": [
    {"engine": "san", "spec": {"N": 3, "Replicas": 60}},
    {"engine": "emulation", "spec": {"N": 3, "Executions": 25}},
    {"engine": "san", "spec": {"Name": "pinned", "N": 4, "Replicas": 40, "Seed": 99}},
    {"engine": "emulation", "spec": {"N": 3, "Executions": 25, "TimeoutT": 30}},
    {"engine": "san", "spec": {"N": 5, "Replicas": 40, "TSend": 0.05}},
    {"engine": "san", "spec": {"N": 3, "Replicas": 40, "TSend": 0.1}}
  ]
}
EOF

echo "== reference: uninterrupted 2-shard run"
"$CTSAN" run -study "$SPEC" -seed 21 -shards 2 \
    -dir "$WORK/ref-ckpt" -o "$WORK/reference.jsonl" -backoff 100ms

echo "== interrupted: throttled shard, SIGKILL mid-range"
DIR="$WORK/ckpt"
STORE="$DIR/shard-000000-000006.jsonl"
"$CTSAN" shard -study "$SPEC" -seed 21 -range 0:6 -dir "$DIR" \
    -workers 1 -throttle 60s 2>"$WORK/shard.log" &
SHARD_PID=$!

# Wait until the checkpoint holds at least one intact record.
i=0
while [ ! -f "$STORE" ] || [ "$(wc -l <"$STORE")" -lt 1 ]; do
  i=$((i + 1))
  if [ "$i" -gt 600 ]; then
    echo "shard produced no checkpoint record in time" >&2
    cat "$WORK/shard.log" >&2
    kill -9 "$SHARD_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
kill -9 "$SHARD_PID"
wait "$SHARD_PID" 2>/dev/null || true

SURVIVED="$(wc -l <"$STORE")"
if [ "$SURVIVED" -ge 6 ]; then
  echo "kill landed after the shard finished ($SURVIVED/6 points); not a mid-range kill" >&2
  exit 1
fi
echo "   killed with $SURVIVED/6 points checkpointed"
cp "$STORE" "$WORK/survived.jsonl"

echo "== resume under the supervisor"
"$CTSAN" run -study "$SPEC" -seed 21 -shards 1 \
    -dir "$DIR" -o "$WORK/resumed.jsonl" -backoff 100ms

echo "== verify"
# Surviving records were reused verbatim, not re-executed.
head -n "$SURVIVED" "$STORE" >"$WORK/head.jsonl"
cmp "$WORK/survived.jsonl" "$WORK/head.jsonl" || {
  echo "records that survived the SIGKILL changed across resume" >&2
  exit 1
}
# The resumed merge is byte-identical to the uninterrupted run.
cmp "$WORK/reference.jsonl" "$WORK/resumed.jsonl" || {
  echo "kill-and-resume output differs from the uninterrupted run" >&2
  exit 1
}
echo "OK: kill-and-resume output is byte-identical ($(wc -l <"$WORK/resumed.jsonl") points)"
