#!/usr/bin/env sh
# Smoke-tests the -debug-addr telemetry endpoint end to end: starts a
# long-enough scenario campaign with the debug server on an ephemeral
# port, samples /debug/vars twice around a 1-second CPU profile, and
# asserts that (a) the pprof endpoint serves a profile and (b) the
# ctsan.executions_completed counter advanced between the samples — the
# observable promise of internal/obs, checked against the real binary.
#
# The campaign itself is sized to outlive the sampling and then killed:
# this script gates the telemetry surface, not campaign completion
# (kill_resume.sh and the test suite cover that).
set -eu
cd "$(dirname "$0")/.."

LOG="$(mktemp)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -f "$LOG"
}
trap cleanup EXIT

# Build first so the background process is the real binary, not a
# compile step racing the address poll below.
go build -o /tmp/scenario-smoke ./cmd/scenario

/tmp/scenario-smoke run -debug-addr 127.0.0.1:0 \
    -execs 300 -replicas 20000 -workers 2 -seed 1 paper-baseline \
    >/dev/null 2>"$LOG" &
PID=$!

# The bound port is ephemeral; the CLI logs it on startup.
ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR="$(sed -n 's#.*listening on http://\([^/]*\)/.*#\1#p' "$LOG")"
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "campaign exited early:" >&2; cat "$LOG" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "debug server never logged its address" >&2; cat "$LOG" >&2; exit 1; }
echo "debug server at $ADDR" >&2

counter() {
    curl -sf "http://$ADDR/debug/vars" |
        sed -n 's/.*"ctsan\.executions_completed": \([0-9]*\).*/\1/p'
}

V1="$(counter)"
[ -n "$V1" ] || { echo "ctsan.executions_completed missing from /debug/vars" >&2; exit 1; }

CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/debug/pprof/profile?seconds=1")"
[ "$CODE" = "200" ] || { echo "/debug/pprof/profile returned $CODE" >&2; exit 1; }

V2="$(counter)"
[ -n "$V2" ] || { echo "second /debug/vars sample failed" >&2; exit 1; }
[ "$V2" -gt "$V1" ] || { echo "executions_completed did not advance ($V1 -> $V2)" >&2; exit 1; }

echo "debug smoke OK: executions_completed $V1 -> $V2, pprof profile served" >&2
