#!/usr/bin/env sh
# Smoke-tests the campaign service end to end against the real binary:
# starts ctsand on an ephemeral port, submits the same small study
# twice, and asserts (a) both result streams are byte-identical — the
# determinism promise over HTTP — (b) the second run is served >= 90%
# from the content-addressed result cache, and (c) SIGTERM drains the
# service to a clean exit 0.
set -eu
cd "$(dirname "$0")/.."

LOG="$(mktemp)"
SPEC="$(mktemp)"
R1="$(mktemp)"
R2="$(mktemp)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -f "$LOG" "$SPEC" "$R1" "$R2"
}
trap cleanup EXIT

# Build first so the background process is the real binary, not a
# compile step racing the address poll below.
go build -o /tmp/ctsand-smoke ./cmd/ctsand

/tmp/ctsand-smoke -addr 127.0.0.1:0 -workers 2 -max-active 1 2>"$LOG" &
PID=$!

# The bound port is ephemeral; the daemon logs it on startup.
ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR="$(sed -n 's#.*listening on http://\([^/]*\)/.*#\1#p' "$LOG" | head -n 1)"
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "ctsand exited early:" >&2; cat "$LOG" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "ctsand never logged its address" >&2; cat "$LOG" >&2; exit 1; }
echo "campaign service at $ADDR" >&2

cat >"$SPEC" <<'EOF'
{"v":1,"name":"smoke","points":[
  {"engine":"san","spec":{"N":3,"Replicas":200}},
  {"engine":"san","spec":{"N":5,"Replicas":200}},
  {"engine":"san","spec":{"N":7,"Replicas":100}}]}
EOF

submit() {
    curl -sf -X POST --data-binary @"$SPEC" "http://$ADDR/api/v1/studies" |
        sed -n 's/.*"id":"\([^"]*\)".*/\1/p'
}
field() { # field <id> <name>
    curl -sf "http://$ADDR/api/v1/studies/$1" |
        sed -n "s/.*\"$2\":\([0-9]*\).*/\1/p"
}

ID1="$(submit)"
[ -n "$ID1" ] || { echo "first submission rejected" >&2; exit 1; }
# The results stream follows the live tail to completion, so this curl
# returns exactly when the study is done.
curl -sfN "http://$ADDR/api/v1/studies/$ID1/results" >"$R1"

ID2="$(submit)"
[ -n "$ID2" ] || { echo "second submission rejected" >&2; exit 1; }
curl -sfN "http://$ADDR/api/v1/studies/$ID2/results" >"$R2"

cmp "$R1" "$R2" || { echo "warm-cache stream differs from cold-cache stream" >&2; exit 1; }
[ -s "$R1" ] || { echo "empty result stream" >&2; exit 1; }

POINTS="$(field "$ID2" points)"
HITS="$(field "$ID2" cache_hits)"
[ -n "$POINTS" ] && [ -n "$HITS" ] || { echo "status fields missing for $ID2" >&2; exit 1; }
# The warm run must be served >= 90% from the result cache.
[ $((HITS * 10)) -ge $((POINTS * 9)) ] || {
    echo "warm run cache hits $HITS of $POINTS points (< 90%)" >&2
    exit 1
}

kill -TERM "$PID"
RC=0
wait "$PID" || RC=$?
PID=""
[ "$RC" = "0" ] || { echo "graceful shutdown exited $RC" >&2; cat "$LOG" >&2; exit 1; }

echo "service smoke OK: $HITS/$POINTS cache hits on warm run, streams byte-identical, clean drain" >&2
