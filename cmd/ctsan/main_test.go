package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ctsan/campaign"
	"ctsan/internal/checkpoint"
	"ctsan/internal/shard"
)

// TestMain doubles as the re-exec target: when the supervisor under test
// spawns a shard subprocess it launches this very test binary with
// CTSAN_EXEC=1, and we route straight into run() — so the differential
// tests drive real process isolation, real SIGKILLs, and real crash-exit
// codes, not in-process simulations of them.
func TestMain(m *testing.M) {
	if os.Getenv("CTSAN_EXEC") == "1" {
		os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func testStudy() *campaign.Study {
	return campaign.NewStudy("ctsan-test",
		campaign.SANPoint{N: 3, Replicas: 60},
		campaign.LatencyPoint{N: 3, Executions: 25},
		campaign.SANPoint{Name: "pinned", N: 4, Replicas: 40, Seed: 99},
		campaign.LatencyPoint{N: 3, Executions: 25, TimeoutT: 30},
		campaign.SANPoint{N: 5, Replicas: 40, TSend: 0.05},
	)
}

// writeSpec serializes the test study to a spec file.
func writeSpec(t *testing.T) string {
	t.Helper()
	spec, err := campaign.EncodeStudy(testStudy())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "study.json")
	if err := os.WriteFile(path, spec, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// reference is the ground truth: the JSONL an uninterrupted in-process
// run emits for the test study at seed 21.
func reference(t *testing.T) []byte {
	t.Helper()
	results, err := campaign.RunCollect(context.Background(), testStudy(),
		campaign.WithSeed(21), campaign.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range results {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// ctsan invokes the CLI in-process (subprocesses still fork for real).
func ctsan(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestShardedRunMatchesSingleProcess(t *testing.T) {
	spec := writeSpec(t)
	want := reference(t)
	for _, shards := range []string{"1", "3"} {
		dir := t.TempDir()
		out := filepath.Join(dir, "results.jsonl")
		code, _, errb := ctsan(t, "run", "-study", spec, "-seed", "21",
			"-shards", shards, "-dir", dir, "-o", out, "-backoff", "10ms")
		if code != 0 {
			t.Fatalf("shards=%s: exit %d\n%s", shards, code, errb)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("shards=%s: merged output differs from the in-process run:\n%s\nwant:\n%s", shards, got, want)
		}
		// A standalone merge over the same checkpoint dir reproduces it too.
		code, stdout, errb := ctsan(t, "merge", "-study", spec, "-seed", "21", "-dir", dir)
		if code != 0 {
			t.Fatalf("merge: exit %d\n%s", code, errb)
		}
		if stdout != string(want) {
			t.Fatalf("shards=%s: standalone merge differs from the in-process run", shards)
		}
	}
}

// TestCrashedShardsAreRetriedWithoutPoisoningMerge injects a panic into
// every shard's first attempt (after one point is durably checkpointed).
// The supervisor must retry each crashed subprocess, the retry must skip
// the checkpointed point, and the merged output must be bit-identical to
// an uninterrupted run — a crash can cost time, never correctness.
func TestCrashedShardsAreRetriedWithoutPoisoningMerge(t *testing.T) {
	spec := writeSpec(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "results.jsonl")
	code, _, errb := ctsan(t, "run", "-study", spec, "-seed", "21",
		"-shards", "2", "-dir", dir, "-o", out,
		"-crash-after", "1", "-retries", "3", "-backoff", "10ms")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errb)
	}
	if !strings.Contains(errb, "injected crash") {
		t.Fatalf("fault injection did not fire:\n%s", errb)
	}
	if !strings.Contains(errb, "retrying") {
		t.Fatalf("supervisor did not log a retry:\n%s", errb)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := reference(t); !bytes.Equal(got, want) {
		t.Fatalf("merge after crashes differs from the in-process run:\n%s\nwant:\n%s", got, want)
	}
}

// TestKillAndResume SIGKILLs a live shard subprocess mid-range, then
// resumes: surviving checkpoint records must be reused verbatim (not
// re-executed) and the final merged output must match an uninterrupted
// run byte for byte.
func TestKillAndResume(t *testing.T) {
	spec := writeSpec(t)
	dir := t.TempDir()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	r := shard.Range{Start: 0, End: 5}
	store := storePath(dir, r)

	// Launch the shard with a post-point throttle so the kill reliably
	// lands between checkpoints, with points still outstanding.
	cmd := exec.Command(self, "shard", "-study", spec, "-seed", "21",
		"-range", r.String(), "-dir", dir, "-workers", "1", "-throttle", "30s")
	cmd.Env = append(os.Environ(), "CTSAN_EXEC=1")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		records, _, err := checkpoint.Load(store)
		if err != nil {
			t.Fatal(err)
		}
		if len(records) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard produced no checkpoint record in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatal("SIGKILLed shard reported success")
	}

	before, _, err := checkpoint.Load(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 || len(before) >= 5 {
		t.Fatalf("kill landed outside mid-range: %d of 5 points checkpointed", len(before))
	}

	// Resume under the supervisor: same grid, same dir.
	out := filepath.Join(dir, "results.jsonl")
	code, _, errb := ctsan(t, "run", "-study", spec, "-seed", "21",
		"-shards", "1", "-dir", dir, "-o", out, "-backoff", "10ms")
	if code != 0 {
		t.Fatalf("resume: exit %d\n%s", code, errb)
	}

	// The records that survived the kill are byte-identical in the resumed
	// store — resume appended the missing points, it did not redo or
	// rewrite completed ones.
	after, _, err := checkpoint.Load(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 5 {
		t.Fatalf("resumed store holds %d records, want 5", len(after))
	}
	for i := range before {
		if !bytes.Equal(after[i], before[i]) {
			t.Fatalf("record %d changed across resume", i)
		}
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := reference(t); !bytes.Equal(got, want) {
		t.Fatalf("kill-and-resume output differs from the in-process run:\n%s\nwant:\n%s", got, want)
	}
}

func TestUsageAndFlagErrors(t *testing.T) {
	if code, _, _ := ctsan(t); code != 2 {
		t.Fatal("no-command invocation must exit 2")
	}
	if code, _, _ := ctsan(t, "bogus"); code != 2 {
		t.Fatal("unknown command must exit 2")
	}
	if code, _, errb := ctsan(t, "shard", "-range", "0:1", "-dir", t.TempDir()); code != 1 ||
		!strings.Contains(errb, "-study") {
		t.Fatalf("missing -study: exit %d, stderr %q", code, errb)
	}
	spec := writeSpec(t)
	if code, _, _ := ctsan(t, "shard", "-study", spec, "-seed", "0",
		"-range", "0:1", "-dir", t.TempDir()); code != 1 {
		t.Fatal("reserved seed 0 must be rejected")
	}
	if code, _, _ := ctsan(t, "shard", "-study", spec, "-range", "3:99",
		"-dir", t.TempDir()); code != 1 {
		t.Fatal("out-of-grid range must be rejected")
	}
}
