package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"ctsan/internal/server"
)

// fleetHarness is a live campaign service plus helpers for driving real
// `ctsan worker` subprocesses (via the CTSAN_EXEC re-exec seam) against
// it over localhost HTTP.
type fleetHarness struct {
	srv *server.Server
	ts  *httptest.Server
}

func newFleetHarness(t *testing.T, cfg server.Config) *fleetHarness {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &fleetHarness{srv: srv, ts: ts}
}

// submitFleet posts the test study under ?mode=fleet&seed=21 and
// returns its ID.
func (h *fleetHarness) submitFleet(t *testing.T) string {
	t.Helper()
	spec, err := os.ReadFile(writeSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(h.ts.URL+"/api/v1/studies?mode=fleet&seed=21", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", resp.StatusCode, body)
	}
	var st server.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

func (h *fleetHarness) status(t *testing.T, id string) server.Status {
	t.Helper()
	resp, err := http.Get(h.ts.URL + "/api/v1/studies/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// stream fetches the full results JSONL; it blocks until the study is
// terminal.
func (h *fleetHarness) stream(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := http.Get(h.ts.URL + "/api/v1/studies/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// syncBuffer guards a worker's captured log: exec's pipe-copier
// goroutine writes while tests poll String mid-run.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startWorker launches this test binary as a real `ctsan worker`
// subprocess pinned to the study.
func (h *fleetHarness) startWorker(t *testing.T, id, name string, extra ...string) (*exec.Cmd, *syncBuffer) {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"worker",
		"-server", h.ts.URL,
		"-study-id", id,
		"-name", name,
		"-dir", t.TempDir(),
		"-workers", "1",
	}, extra...)
	cmd := exec.Command(self, args...)
	cmd.Env = append(os.Environ(), "CTSAN_EXEC=1")
	logs := &syncBuffer{}
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd, logs
}

// TestFleetMatchesSingleProcess is the fleet acceptance differential at
// the process level: three real worker subprocesses pull leases over
// localhost HTTP and the coordinator's folded stream is byte-identical
// to an uninterrupted in-process run — then a second (warm) submission
// completes from cache without granting a single lease.
func TestFleetMatchesSingleProcess(t *testing.T) {
	want := reference(t)
	h := newFleetHarness(t, server.Config{MaxActive: 1, QueueDepth: 8, CacheBytes: 32 << 20,
		LeaseTarget: 100 * time.Millisecond})

	id := h.submitFleet(t)
	var cmds []*exec.Cmd
	var logs []*syncBuffer
	for i := 0; i < 3; i++ {
		cmd, lg := h.startWorker(t, id, fmt.Sprintf("w%d", i))
		cmds = append(cmds, cmd)
		logs = append(logs, lg)
	}
	got := h.stream(t, id)
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("worker %d exited with %v:\n%s", i, err, logs[i])
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet stream differs from in-process run:\n got: %s\nwant: %s", got, want)
	}
	st := h.status(t, id)
	if st.Status != "done" || st.Fleet == nil || st.Fleet.Granted == 0 {
		t.Fatalf("fleet study after run: %+v", st)
	}
	// The workers' per-lease logs follow the supervisor's structured
	// format.
	all := logs[0].String() + logs[1].String() + logs[2].String()
	if !strings.Contains(all, ": starting (") || !strings.Contains(all, ": complete after upload (") {
		t.Errorf("worker logs missing per-lease lines:\n%s", all)
	}

	// Warm path: a repeat submission is served wholly from the
	// content-addressed cache — same bytes, zero leases, no workers.
	warmID := h.submitFleet(t)
	if warm := h.stream(t, warmID); !bytes.Equal(warm, want) {
		t.Fatalf("warm fleet stream differs from in-process run")
	}
	wst := h.status(t, warmID)
	if wst.Status != "done" || wst.Fleet.Granted != 0 {
		t.Fatalf("warm fleet study: %+v", wst)
	}
}

// TestFleetWorkerKilledMidLease SIGKILLs a worker while it holds (and
// renews) a live lease: the coordinator must expire the orphaned lease
// after the TTL, re-lease its range to a surviving worker, and still
// fold a byte-identical stream — a killed worker costs one lease of
// re-execution, never a wrong result.
func TestFleetWorkerKilledMidLease(t *testing.T) {
	want := reference(t)
	h := newFleetHarness(t, server.Config{MaxActive: 1, QueueDepth: 8, CacheBytes: -1,
		LeaseTTL: 500 * time.Millisecond})

	id := h.submitFleet(t)

	// The victim throttles 30s after its first checkpointed point, so it
	// sits mid-lease — renewing — when the kill lands.
	victim, vlogs := h.startWorker(t, id, "victim", "-throttle", "30s")
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := h.status(t, id)
		if st.Fleet != nil && st.Fleet.Granted >= 1 && strings.Contains(vlogs.String(), "checkpointed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never started a lease: %+v\n%s", st.Fleet, vlogs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait() //nolint:errcheck // SIGKILL: non-zero exit expected

	// A surviving worker finishes the study, re-executing the orphaned
	// range once the lease expires.
	live, llogs := h.startWorker(t, id, "live")
	got := h.stream(t, id)
	if err := live.Wait(); err != nil {
		t.Fatalf("live worker exited with %v:\n%s", err, llogs)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stream after SIGKILL differs from in-process run:\n got: %s\nwant: %s", got, want)
	}
	st := h.status(t, id)
	if st.Status != "done" {
		t.Fatalf("study after SIGKILL: %+v", st)
	}
	if st.Fleet.Expired < 1 || st.Fleet.Requeued < 1 {
		t.Errorf("coordinator never expired the victim's lease: %+v", st.Fleet)
	}
}

// TestWorkerFlagErrors pins the worker's flag surface.
func TestWorkerFlagErrors(t *testing.T) {
	if code, _, errb := ctsan(t, "worker"); code != 1 || !strings.Contains(errb, "-server") {
		t.Fatalf("missing -server: exit %d, stderr %q", code, errb)
	}
}
