// Command ctsan is the crash-safe sharded campaign executor: it splits a
// study grid into contiguous shard ranges, runs each range as an
// isolated, checkpointed subprocess, and merges the per-point records
// back into the exact JSONL a single uninterrupted process would emit.
//
//	ctsan run    -study spec.json -shards 4 -dir ckpt/ -o results.jsonl
//	ctsan shard  -study spec.json -range 0:12 -dir ckpt/
//	ctsan merge  -study spec.json -dir ckpt/ -o results.jsonl
//	ctsan worker -server http://host:8080 -dir ckpt/
//
// `run` is the supervisor: it plans the shard layout, re-executes this
// binary once per range (`ctsan shard`), retries crashed, hung, or
// panicked shards with exponential backoff, and finishes with a merge.
// `shard` executes one range, appending each completed point to an
// atomically-updated checkpoint file in -dir and skipping points that
// file already holds — so a shard killed mid-run loses at most the
// point in flight. `merge` folds every checkpoint record in -dir, in
// grid-index order, verifying each record's CRC and point-spec hash.
//
// `worker` is the pull side of fleet dispatch: it leases contiguous
// ranges from a campaign service (ctsand, with studies submitted under
// ?mode=fleet), executes them through the same checkpointed range
// runner `shard` uses, and uploads the records for the coordinator to
// verify and fold.
//
// All commands freeze the study deterministically from the same
// (spec, seed, replicas) inputs, so the grid — per-point seeds
// included — is identical in every participating process, and the merged
// output is bit-identical to `run` with -shards 1, at any shard count
// or worker fleet size, across any number of crashes and resumes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"ctsan/campaign"
	"ctsan/internal/atomicio"
	"ctsan/internal/checkpoint"
	"ctsan/internal/cliflags"
	"ctsan/internal/shard"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

const usageText = `usage: ctsan <command> [flags]

commands:
  run     plan shards, supervise them as subprocesses, and merge
  shard   execute one shard range with durable per-point checkpoints
  merge   fold checkpoint records into the final results JSONL
  worker  pull fleet leases from a campaign service and execute them
`

// run dispatches a ctsan invocation; it is the whole binary behind an
// injectable seam (args, streams, exit code) so the differential tests
// can drive real subprocess supervision through the test binary itself.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	var err error
	switch args[0] {
	case "run":
		err = cmdRun(ctx, args[1:], stderr)
	case "shard":
		err = cmdShard(ctx, args[1:], stderr)
	case "merge":
		err = cmdMerge(args[1:], stdout)
	case "worker":
		err = cmdWorker(ctx, args[1:], stderr)
	default:
		fmt.Fprintf(stderr, "ctsan: unknown command %q\n%s", args[0], usageText)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "ctsan %s: %v\n", args[0], err)
		return 1
	}
	return 0
}

// studyFlags are the inputs every command freezes the grid from; they
// must match across supervisor, shards, and merge for the point hashes
// to line up.
type studyFlags struct {
	study    *string
	seed     *uint64
	replicas *int
}

func registerStudyFlags(fs *flag.FlagSet) studyFlags {
	return studyFlags{
		study:    fs.String("study", "", "study spec JSON file (required)"),
		seed:     cliflags.Seed(fs),
		replicas: fs.Int("replicas", 0, "default replica count for points that do not set one"),
	}
}

// frozen loads the spec and freezes it under the shared flags: the
// deterministic step that makes every process see the identical grid.
func (sf studyFlags) frozen() (*campaign.Study, error) {
	if *sf.study == "" {
		return nil, fmt.Errorf("-study is required")
	}
	if err := cliflags.CheckSeed(*sf.seed); err != nil {
		return nil, err
	}
	spec, err := os.ReadFile(*sf.study)
	if err != nil {
		return nil, err
	}
	study, err := campaign.DecodeStudy(spec)
	if err != nil {
		return nil, err
	}
	return campaign.Frozen(study,
		campaign.WithSeed(*sf.seed), campaign.WithReplicas(*sf.replicas))
}

// storePath names the checkpoint file of one shard range. Records carry
// full-grid indices and point hashes, so merge does not depend on this
// layout — it reads every shard-*.jsonl in the directory.
func storePath(dir string, r shard.Range) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%06d-%06d.jsonl", r.Start, r.End))
}

func cmdShard(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("ctsan shard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := registerStudyFlags(fs)
	rangeArg := fs.String("range", "", "grid index range start:end (required)")
	dir := fs.String("dir", "", "checkpoint directory (required)")
	workers := cliflags.Workers(fs)
	throttle := fs.Duration("throttle", 0, "pause after each checkpointed point (rate limiting and crash testing)")
	crashAfter := fs.Int("crash-after", 0, "fault injection: panic after N newly checkpointed points")
	if err := fs.Parse(args); err != nil {
		return err
	}
	frozen, err := sf.frozen()
	if err != nil {
		return err
	}
	if *rangeArg == "" || *dir == "" {
		return fmt.Errorf("-range and -dir are required")
	}
	r, err := shard.ParseRange(*rangeArg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	store, err := checkpoint.Open(storePath(*dir, r))
	if err != nil {
		return err
	}
	executed := 0
	onPoint := func(index int, line []byte) error {
		executed++
		fmt.Fprintf(stderr, "ctsan shard %s: point %d checkpointed (%d this attempt)\n", r, index, executed)
		if *throttle > 0 {
			time.Sleep(*throttle)
		}
		if *crashAfter > 0 && executed >= *crashAfter {
			panic(fmt.Sprintf("ctsan shard %s: injected crash after %d points", r, executed))
		}
		return nil
	}
	return campaign.RunShardRange(ctx, frozen, r.Start, r.End, store, onPoint,
		campaign.WithWorkers(*workers))
}

func cmdRun(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("ctsan run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := registerStudyFlags(fs)
	shards := fs.Int("shards", 1, "number of shard subprocesses to plan")
	dir := fs.String("dir", "", "checkpoint directory (required)")
	out := fs.String("o", "", "merged results JSONL file (required)")
	procs := fs.Int("procs", 0, "shards running concurrently; 0 = one per CPU")
	workers := cliflags.Workers(fs)
	timeout := fs.Duration("timeout", 0, "per-attempt shard timeout; 0 = none")
	retries := fs.Int("retries", 2, "re-runs of a failed or incomplete shard")
	backoff := fs.Duration("backoff", 250*time.Millisecond, "first retry delay, doubling per retry")
	crashAfter := fs.Int("crash-after", 0, "fault injection: shards panic after N points on their first attempt")
	debugAddr := cliflags.DebugAddr(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	frozen, err := sf.frozen()
	if err != nil {
		return err
	}
	if *dir == "" || *out == "" {
		return fmt.Errorf("-dir and -o are required")
	}
	stopDebug, err := cliflags.StartDebug(*debugAddr, func(format string, args ...any) {
		fmt.Fprintf(stderr, "ctsan run: "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	defer stopDebug()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	ranges, err := shard.Plan(len(frozen.Points), *shards)
	if err != nil {
		return err
	}

	complete := func(r shard.Range) (bool, error) {
		records, _, err := checkpoint.Load(storePath(*dir, r))
		if err != nil {
			return false, err
		}
		missing, _, err := campaign.MissingPoints(frozen, r.Start, r.End, records)
		if err != nil {
			return false, err
		}
		return len(missing) == 0, nil
	}
	exec := func(ctx context.Context, r shard.Range, attempt int) error {
		sub := []string{"shard",
			"-study", *sf.study,
			"-seed", strconv.FormatUint(*sf.seed, 10),
			"-replicas", strconv.Itoa(*sf.replicas),
			"-range", r.String(),
			"-dir", *dir,
			"-workers", strconv.Itoa(*workers),
		}
		if *crashAfter > 0 && attempt == 0 {
			sub = append(sub, "-crash-after", strconv.Itoa(*crashAfter))
		}
		return runShardProcess(ctx, self, sub, stderr)
	}
	err = shard.Run(ctx, ranges, shard.Options{
		Timeout: *timeout,
		Retries: *retries,
		Backoff: *backoff,
		Procs:   *procs,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "ctsan run: "+format+"\n", args...)
		},
	}, exec, complete)
	if err != nil {
		return err
	}
	return mergeDir(frozen, *dir, *out, stderr)
}

// runShardProcess re-executes this binary for one shard attempt. The
// context kills the subprocess (per-attempt timeout, ^C); CTSAN_EXEC=1
// lets a test binary recognize the re-exec and route to run() instead of
// the test runner.
func runShardProcess(ctx context.Context, self string, args []string, stderr io.Writer) error {
	cmd := exec.CommandContext(ctx, self, args...)
	cmd.Env = append(os.Environ(), "CTSAN_EXEC=1")
	cmd.Stdout = stderr // shard stdout is progress chatter, not results
	cmd.Stderr = stderr
	return cmd.Run()
}

func cmdMerge(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ctsan merge", flag.ContinueOnError)
	sf := registerStudyFlags(fs)
	dir := fs.String("dir", "", "checkpoint directory (required)")
	out := fs.String("o", "", "results JSONL file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	frozen, err := sf.frozen()
	if err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if *out == "" {
		return merge(frozen, *dir, stdout)
	}
	return mergeDir(frozen, *dir, *out, io.Discard)
}

// mergeDir merges into a file through the shared atomic-replace helper,
// so a crash during merge never leaves a half-written results file.
func mergeDir(frozen *campaign.Study, dir, out string, stderr io.Writer) error {
	var buf []byte
	w := &appendWriter{buf: &buf}
	if err := merge(frozen, dir, w); err != nil {
		return err
	}
	if err := atomicio.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ctsan: merged %d points into %s\n", len(frozen.Points), out)
	return nil
}

type appendWriter struct{ buf *[]byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}

// merge folds every checkpoint record under dir and emits, in grid-index
// order, the exact Result JSON bytes each point's shard persisted — the
// same bytes an in-process campaign.JSONLWriter emits, making sharded
// and unsharded runs byte-identical.
func merge(frozen *campaign.Study, dir string, w io.Writer) error {
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.jsonl"))
	if err != nil {
		return err
	}
	sort.Strings(files)
	var lines [][]byte
	for _, f := range files {
		records, dropped, err := checkpoint.Load(f)
		if err != nil {
			return err
		}
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "ctsan merge: %s: dropped %d damaged trailing bytes\n", f, dropped)
		}
		lines = append(lines, records...)
	}
	records, skipped, err := campaign.MergeShardRecords(frozen, lines)
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "ctsan merge: skipped %d stale, duplicate, or corrupt records\n", skipped)
	}
	for _, rec := range records {
		if _, err := w.Write(append(rec.Result, '\n')); err != nil {
			return err
		}
	}
	return nil
}
