package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ctsan/campaign"
	"ctsan/internal/checkpoint"
	"ctsan/internal/cliflags"
	"ctsan/internal/shard"
)

// ctsan worker: the pull side of fleet dispatch. The worker loops
// lease → execute → upload against a campaign service (ctsand):
//
//	ctsan worker -server http://host:8080 -dir ckpt/
//
// Each lease is a contiguous frozen-point range. The worker freezes the
// study locally from the coordinator's spec/seed/replicas — the same
// deterministic step every ctsan process performs, so its grid is
// identical to the coordinator's — executes the range through the exact
// RunShardRange/checkpoint machinery `ctsan shard` uses (a worker
// restarted on the same -dir resumes instead of re-executing), and
// uploads the range's CRC-framed shard records in one gzip-compressed
// batch. A renewal goroutine extends the lease at TTL/3 while execution
// runs; a worker that dies mid-lease simply stops renewing, and the
// coordinator re-leases the range at the deadline.

// leaseResp is every shape the lease endpoint answers with: a grant
// (Lease non-empty), done, or a retry hint.
type leaseResp struct {
	Lease   string `json:"lease"`
	Study   string `json:"study"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	Points  int    `json:"points"`
	TTLMS   int64  `json:"ttl_ms"`
	Done    bool   `json:"done"`
	RetryMS int64  `json:"retry_ms"`
}

// uploadResp is the complete endpoint's accounting.
type uploadResp struct {
	Accepted  int  `json:"accepted"`
	Rejected  int  `json:"rejected"`
	Duplicate int  `json:"duplicate"`
	Done      bool `json:"done"`
}

// studyStatus is the subset of the service's status JSON the worker
// needs to freeze the identical grid.
type studyStatus struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Seed     uint64 `json:"seed"`
	Replicas int    `json:"replicas"`
	Mode     string `json:"mode"`
}

// workerStudy caches one study's frozen grid across leases.
type workerStudy struct {
	id     string
	frozen *campaign.Study
}

func cmdWorker(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("ctsan worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "", "campaign service base URL, e.g. http://localhost:8080 (required)")
	studyID := fs.String("study-id", "", "serve only this study and exit when it is done (default: serve every fleet study)")
	name := fs.String("name", "", "worker name in the coordinator's ledger (default worker-<pid>@<host>)")
	dir := fs.String("dir", "", "checkpoint directory; leases resume across worker restarts (default a temp dir)")
	workers := cliflags.Workers(fs)
	throttle := fs.Duration("throttle", 0, "pause after each checkpointed point (rate limiting and crash testing)")
	idleExit := fs.Duration("idle-exit", 0, "exit after this long with no fleet work anywhere; 0 = run until interrupted (ignored with -study-id)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		return fmt.Errorf("-server is required")
	}
	base := strings.TrimRight(*server, "/")
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("worker-%d@%s", os.Getpid(), host)
	}
	if *dir == "" {
		tmp, err := os.MkdirTemp("", "ctsan-worker-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	w := &fleetWorker{
		base:     base,
		name:     *name,
		dir:      *dir,
		workers:  *workers,
		throttle: *throttle,
		client:   &http.Client{},
		studies:  map[string]*workerStudy{},
		stderr:   stderr,
	}
	fmt.Fprintf(stderr, "ctsan worker: %s serving %s\n", w.name, base)
	return w.loop(ctx, *studyID, *idleExit)
}

type fleetWorker struct {
	base     string
	name     string
	dir      string
	workers  int
	throttle time.Duration
	client   *http.Client
	studies  map[string]*workerStudy
	stderr   io.Writer
}

func (w *fleetWorker) logf(format string, args ...any) {
	fmt.Fprintf(w.stderr, "ctsan worker: "+format+"\n", args...)
}

// loop is the worker's life: find a fleet study, lease, execute, upload,
// repeat. Transient failures (coordinator restarting, upload refused)
// are logged and retried after a beat — the lease ledger guarantees
// nothing is lost either way.
func (w *fleetWorker) loop(ctx context.Context, pinned string, idleExit time.Duration) error {
	var idleSince time.Time
	for ctx.Err() == nil {
		id := pinned
		if id == "" {
			id = w.discover()
		}
		if id == "" {
			if idleExit > 0 {
				if idleSince.IsZero() {
					idleSince = time.Now()
				} else if time.Since(idleSince) >= idleExit {
					w.logf("%s: idle for %v, exiting", w.name, idleExit)
					return nil
				}
			}
			sleepCtx(ctx, 200*time.Millisecond)
			continue
		}
		idleSince = time.Time{}
		resp, err := w.lease(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			w.logf("%s: lease request for %s failed (%v), retrying", w.name, id, err)
			sleepCtx(ctx, 500*time.Millisecond)
			continue
		}
		switch {
		case resp.Done:
			if pinned != "" {
				w.logf("%s: study %s is done", w.name, id)
				return nil
			}
			delete(w.studies, id)
			sleepCtx(ctx, 200*time.Millisecond)
		case resp.Lease == "":
			sleepCtx(ctx, time.Duration(max(resp.RetryMS, 50))*time.Millisecond)
		default:
			if err := w.serveLease(ctx, id, resp); err != nil && ctx.Err() == nil {
				w.logf("%s: lease %s %d:%d failed (%v)", w.name, resp.Lease, resp.Start, resp.End, err)
				sleepCtx(ctx, 500*time.Millisecond)
			}
		}
	}
	return nil
}

// discover picks the oldest fleet study with work potentially pending.
func (w *fleetWorker) discover() string {
	var list []studyStatus
	if err := w.getJSON("/api/v1/studies", &list); err != nil {
		return ""
	}
	for _, st := range list {
		if st.Mode == "fleet" && (st.Status == "queued" || st.Status == "running") {
			return st.ID
		}
	}
	return ""
}

// study returns the frozen grid for id, fetching spec and freeze inputs
// from the coordinator on first use. Determinism does the heavy
// lifting: freezing the same (spec, seed, replicas) yields the exact
// grid — per-point seeds included — the coordinator verifies uploads
// against.
func (w *fleetWorker) study(id string) (*workerStudy, error) {
	if ws := w.studies[id]; ws != nil {
		return ws, nil
	}
	var status studyStatus
	if err := w.getJSON("/api/v1/studies/"+id, &status); err != nil {
		return nil, err
	}
	if status.Mode != "fleet" {
		return nil, fmt.Errorf("study %s is %s-mode, not fleet", id, status.Mode)
	}
	res, err := w.client.Get(w.base + "/api/v1/studies/" + id + "/spec")
	if err != nil {
		return nil, err
	}
	spec, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		return nil, err
	}
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("spec fetch: %s", res.Status)
	}
	study, err := campaign.DecodeStudy(spec)
	if err != nil {
		return nil, err
	}
	frozen, err := campaign.Frozen(study,
		campaign.WithSeed(status.Seed), campaign.WithReplicas(status.Replicas))
	if err != nil {
		return nil, err
	}
	ws := &workerStudy{id: id, frozen: frozen}
	w.studies[id] = ws
	return ws, nil
}

// lease requests the next range for study id.
func (w *fleetWorker) lease(ctx context.Context, id string) (*leaseResp, error) {
	u := w.base + "/api/v1/studies/" + id + "/lease?worker=" + url.QueryEscape(w.name)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return nil, err
	}
	res, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("lease: %s", res.Status)
	}
	var out leaseResp
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// serveLease executes one granted range and uploads its records: the
// worker's unit of work. Per-lease logs mirror the shard supervisor's
// format ("lease <id> <range>: starting (N points)" / "complete").
func (w *fleetWorker) serveLease(ctx context.Context, id string, grant *leaseResp) error {
	ws, err := w.study(id)
	if err != nil {
		return err
	}
	r := shard.Range{Start: grant.Start, End: grant.End}
	start := time.Now()
	w.logf("lease %s %s: starting (%d points)", grant.Lease, r, r.Len())
	store, err := checkpoint.Open(filepath.Join(w.dir, fmt.Sprintf("%s-%06d-%06d.jsonl", id, r.Start, r.End)))
	if err != nil {
		return err
	}

	// Renew at TTL/3 for as long as execution runs. Renewal failures are
	// not fatal: the upload of a late lease is verified like any other.
	execCtx, stopRenew := context.WithCancel(ctx)
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		ttl := time.Duration(grant.TTLMS) * time.Millisecond
		tick := max(ttl/3, 50*time.Millisecond)
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		for {
			select {
			case <-execCtx.Done():
				return
			case <-ticker.C:
				if !w.renew(execCtx, id, grant.Lease) {
					return
				}
			}
		}
	}()

	executed := 0
	onPoint := func(index int, line []byte) error {
		executed++
		w.logf("lease %s %s: point %d checkpointed (%d this attempt)", grant.Lease, r, index, executed)
		if w.throttle > 0 {
			time.Sleep(w.throttle)
		}
		return nil
	}
	err = campaign.RunShardRange(ctx, ws.frozen, r.Start, r.End, store, onPoint,
		campaign.WithWorkers(w.workers))
	stopRenew()
	<-renewDone
	if err != nil {
		return err
	}
	up, err := w.upload(ctx, id, grant.Lease, store.Records())
	if err != nil {
		return err
	}
	if up.Rejected > 0 {
		return fmt.Errorf("lease %s: coordinator rejected %d of %d records", grant.Lease, up.Rejected, len(store.Records()))
	}
	w.logf("lease %s %s: complete after upload (%d accepted, %d duplicate, %.1fs)",
		grant.Lease, r, up.Accepted, up.Duplicate, time.Since(start).Seconds())
	return nil
}

// renew extends the lease; false means the coordinator no longer knows
// it (expired or study over) and renewing should stop.
func (w *fleetWorker) renew(ctx context.Context, id, lease string) bool {
	u := w.base + "/api/v1/studies/" + id + "/lease/" + lease + "/renew"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return false
	}
	res, err := w.client.Do(req)
	if err != nil {
		return ctx.Err() == nil // transient network error: keep trying
	}
	io.Copy(io.Discard, res.Body) //nolint:errcheck
	res.Body.Close()
	if res.StatusCode == http.StatusGone {
		w.logf("lease %s: expired at the coordinator, finishing anyway", lease)
		return false
	}
	return res.StatusCode == http.StatusOK
}

// upload posts the lease's records as one gzip-compressed JSONL batch.
func (w *fleetWorker) upload(ctx context.Context, id, lease string, records [][]byte) (*uploadResp, error) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	for _, rec := range records {
		gz.Write(rec)          //nolint:errcheck // bytes.Buffer cannot fail
		gz.Write([]byte{'\n'}) //nolint:errcheck
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	u := w.base + "/api/v1/studies/" + id + "/lease/" + lease + "/complete"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, &buf)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("Content-Encoding", "gzip")
	res, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(res.Body, 512))
		return nil, fmt.Errorf("upload: %s: %s", res.Status, bytes.TrimSpace(body))
	}
	var out uploadResp
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (w *fleetWorker) getJSON(path string, v any) error {
	res, err := w.client.Get(w.base + path)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, res.Status)
	}
	return json.NewDecoder(res.Body).Decode(v)
}

// sleepCtx sleeps d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
