// Command repro regenerates every table and figure of the paper's
// evaluation section (§5) from this repository's implementations:
// measurements on the emulated cluster and transient simulations of the
// SAN model.
//
// Usage:
//
//	repro [-what all|fig6|fig7a|fig7b|table1|fig8|fig9a|fig9b]
//	      [-fidelity quick|paper] [-scale k] [-seed s] [-workers w]
//
// Output is plain text: one block per figure/table, with the paper's
// reference values quoted in notes for comparison. Interrupting the run
// (Ctrl-C) cancels the in-flight campaigns cleanly at the next execution
// boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"ctsan/internal/cliflags"
	"ctsan/internal/experiment"
)

func main() {
	var (
		what     = flag.String("what", "all", "which artifact to regenerate: all, fig6, fig7a, fig7b, table1, fig8, fig9a, fig9b")
		fidelity = flag.String("fidelity", "quick", "experiment sizes: quick or paper (paper is slow)")
		scale    = flag.Float64("scale", 1, "multiply workload sizes by this factor")
		seed     = cliflags.Seed(flag.CommandLine)
		workers  = cliflags.Workers(flag.CommandLine)
		quiet    = flag.Bool("q", false, "suppress progress output on stderr")
		plot     = flag.Bool("plot", false, "append ASCII plots of the figures")
	)
	flag.Parse()

	var f experiment.Fidelity
	switch *fidelity {
	case "quick":
		f = experiment.QuickFidelity()
	case "paper":
		f = experiment.PaperFidelity()
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown fidelity %q\n", *fidelity)
		os.Exit(2)
	}
	if *scale != 1 {
		f = f.Scale(*scale)
	}
	f.Workers = *workers
	progress := func(s string) {
		if !*quiet {
			fmt.Fprintln(os.Stderr, s)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sel := strings.ToLower(*what)
	want := func(id string) bool { return sel == "all" || sel == id }
	if err := run(ctx, f, *seed, want, progress, *plot); err != nil {
		cliflags.Fail("repro", err)
	}
}

func run(ctx context.Context, f experiment.Fidelity, seed uint64, want func(string) bool, progress func(string), plot bool) error {
	out := os.Stdout
	show := func(fig *experiment.Figure, logX, logY bool) {
		fig.Fprint(out)
		if plot {
			experiment.AsciiPlot(out, fig, 76, 20, logX, logY)
		}
		fmt.Fprintln(out)
	}
	if want("fig6") {
		progress("measuring end-to-end delays (Fig. 6)...")
		fig, _, err := experiment.Fig6(ctx, f, seed)
		if err != nil {
			return err
		}
		show(fig, false, false)
	}
	if want("fig7a") {
		progress("running class-1 latency campaigns (Fig. 7a)...")
		fig, _, err := experiment.Fig7a(ctx, f, seed)
		if err != nil {
			return err
		}
		show(fig, false, false)
	}
	if want("fig7b") {
		progress("sweeping t_send in the SAN model (Fig. 7b)...")
		fig, best, err := experiment.Fig7b(ctx, f, seed)
		if err != nil {
			return err
		}
		show(fig, false, false)
		progress(fmt.Sprintf("best-matching t_send: %g ms", best))
	}
	if want("table1") {
		progress("running crash scenarios (Table 1)...")
		tab, err := experiment.Table1(ctx, f, seed)
		if err != nil {
			return err
		}
		tab.Fprint(out)
		fmt.Fprintln(out)
	}
	if want("fig8") || want("fig9a") || want("fig9b") {
		progress("running class-3 campaigns (Figs. 8 and 9)...")
		points, err := experiment.RunClass3(ctx, f, seed, progress)
		if err != nil {
			return err
		}
		if want("fig8") {
			a, b := experiment.Fig8(points)
			show(a, true, false)
			show(b, true, false)
		}
		if want("fig9a") {
			show(experiment.Fig9a(points), true, true)
		}
		if want("fig9b") {
			progress("running SAN simulations with measured QoS (Fig. 9b)...")
			fig, err := experiment.Fig9b(ctx, points, f, seed)
			if err != nil {
				return err
			}
			show(fig, true, true)
		}
	}
	return nil
}
