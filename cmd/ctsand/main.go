// Command ctsand is the campaign service daemon: the HTTP front end to
// the campaign engine (internal/server). Concurrent users POST v1 study
// specs — the same JSON `ctsan freeze` emits and every CLI consumes —
// browse the scenario registry, stream per-point results live (JSONL or
// SSE), and fetch final digests. Repeated points are served from a
// content-addressed in-memory result cache; determinism makes a cache
// hit byte-identical to a fresh run.
//
//	ctsand -addr localhost:8321
//	ctsand -addr :0 -workers 8 -max-active 2 -queue 16 -cache-mb 64
//	ctsand -addr :8321 -cache-dir /var/lib/ctsan/cache -lease-ttl 15s
//
// Admission is bounded: when -queue studies are already waiting the
// service answers 429 with Retry-After. At most -max-active studies run
// concurrently, each on an equal share of the -workers pool. SIGINT or
// SIGTERM starts a graceful drain: new submissions get 503, running
// studies finish (up to -drain-timeout, then they are canceled through
// the campaign ctx plumbing), and the process exits 0.
//
// Studies submitted with ?mode=fleet are not run on the local pool:
// the service coordinates external `ctsan worker` processes that pull
// contiguous point ranges over the lease API (-lease-ttl, -lease-target
// tune the ledger), verifies their uploaded records, and folds them
// into the same byte-identical result stream. With -cache-dir the point
// cache is persistent: evicted and resident entries spill to disk as
// encoded shard records and are validated back in at startup, so a
// restarted service serves repeated points without re-execution.
//
// With -debug the service's own listener also serves /debug/vars and
// /debug/pprof — including the cache hit/miss/eviction and queue-depth
// gauges; -debug-addr additionally starts the standalone telemetry
// listener shared by all ctsan CLIs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ctsan/internal/cliflags"
	"ctsan/internal/server"
)

func main() {
	fs := flag.NewFlagSet("ctsand", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "localhost:8321", "listen address (use :0 for an ephemeral port)")
		workers      = cliflags.Workers(fs)
		maxActive    = fs.Int("max-active", 2, "studies executing concurrently, each on workers/max-active goroutines")
		queueDepth   = fs.Int("queue", 16, "admission queue depth; submissions beyond it get 429")
		cacheMB      = fs.Int("cache-mb", 64, "content-addressed result cache budget in MiB (0 disables)")
		cacheDir     = fs.String("cache-dir", "", "persist the point cache here: evictions and shutdown spill encoded records, startup warm-loads them")
		leaseTTL     = fs.Duration("lease-ttl", 15*time.Second, "fleet lease lifetime without renewal before its range is re-leased")
		leaseTarget  = fs.Duration("lease-target", time.Second, "wall time of work the adaptive lease sizer aims to put in one fleet lease")
		seed         = cliflags.Seed(fs)
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before running studies are canceled")
		debug        = fs.Bool("debug", true, "serve /debug/vars and /debug/pprof on the service listener")
		debugAddr    = cliflags.DebugAddr(fs)
	)
	fs.Parse(os.Args[1:])
	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB <= 0 {
		cacheBytes = -1 // disabled, not "default"
	}
	cfg := server.Config{
		Workers:     *workers,
		MaxActive:   *maxActive,
		QueueDepth:  *queueDepth,
		CacheBytes:  cacheBytes,
		DefaultSeed: *seed,
		LeaseTTL:    *leaseTTL,
		LeaseTarget: *leaseTarget,
		Debug:       *debug,
	}
	if err := run(*addr, cfg, *cacheDir, *drainTimeout, *debugAddr); err != nil {
		cliflags.Fail("ctsand", err)
	}
}

func run(addr string, cfg server.Config, cacheDir string, drainTimeout time.Duration, debugAddr string) error {
	if err := cliflags.CheckSeed(cfg.DefaultSeed); err != nil {
		return err
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ctsand: "+format+"\n", args...)
	}
	cfg.Logf = logf

	srv := server.New(cfg)
	if cacheDir != "" {
		if err := os.MkdirAll(cacheDir, 0o755); err != nil {
			return err
		}
		if _, err := srv.EnableCacheSpill(cacheDir); err != nil {
			return fmt.Errorf("-cache-dir: %w", err)
		}
	}

	stopDebug, err := cliflags.StartDebug(debugAddr, logf)
	if err != nil {
		return err
	}
	defer stopDebug()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logf("campaign service listening on http://%s/", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		return err
	}

	logf("draining (budget %s): running studies finish, new submissions get 503", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain the campaign queue first — subscribers keep their streams
	// until every study is terminal — then close the HTTP side.
	if err := srv.Shutdown(dctx); err != nil {
		return err
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	logf("drained, exiting")
	return nil
}
