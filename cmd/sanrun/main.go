// Command sanrun builds the paper's SAN model of the ◇S consensus
// algorithm with explicit parameters and solves it by replicated transient
// simulation — the UltraSAN half of the paper's methodology. It is a thin
// shell over the public campaign API: one SANPoint study, cancellable
// with Ctrl-C.
//
// Examples:
//
//	sanrun -n 5 -replicas 3000                       # class 1
//	sanrun -n 5 -crash 1                             # class 2
//	sanrun -n 5 -tmr 20 -tm 2 -fd exp                # class 3 from QoS
//	sanrun -n 5 -tsend 0.01                          # Fig. 7b sweep point
//	sanrun -n 5 -json                                # one JSONL result
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"ctsan/campaign"
	"ctsan/internal/cliflags"
)

func main() {
	var (
		n        = flag.Int("n", 3, "number of processes")
		replicas = flag.Int("replicas", 2000, "transient simulation replicas")
		workers  = cliflags.Workers(flag.CommandLine)
		crash    = flag.Int("crash", 0, "initially crashed process (0 = none)")
		tsend    = flag.Float64("tsend", 0.025, "t_send = t_receive in ms (§5.1)")
		tmr      = flag.Float64("tmr", 0, "FD mistake recurrence time T_MR in ms (0 = accurate FD)")
		tm       = flag.Float64("tm", 0, "FD mistake duration T_M in ms")
		fdKind   = flag.String("fd", "det", "FD sojourn distribution: det or exp (§3.4)")
		seed     = cliflags.Seed(flag.CommandLine)
		asJSON   = cliflags.JSON(flag.CommandLine)
	)
	flag.Parse()
	if err := cliflags.CheckSeed(*seed); err != nil {
		fmt.Fprintf(os.Stderr, "sanrun: %v\n", err)
		os.Exit(2)
	}

	point := campaign.SANPoint{
		Name:          fmt.Sprintf("san n=%d", *n),
		N:             *n,
		Replicas:      *replicas,
		TSend:         *tsend,
		TMR:           *tmr,
		TM:            *tm,
		FDExponential: *fdKind == "exp",
		Seed:          *seed,
	}
	if *crash > 0 {
		point.Crashed = []int{*crash}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	study := campaign.NewStudy("sanrun", point)
	if *asJSON {
		if err := campaign.Run(ctx, study,
			campaign.WithWorkers(*workers),
			campaign.WithSink(campaign.NewJSONLWriter(os.Stdout))); err != nil {
			fail(err)
		}
		return
	}
	results, err := campaign.RunCollect(ctx, study, campaign.WithWorkers(*workers))
	if err != nil {
		fail(err)
	}
	r := results[0]
	fmt.Printf("SAN model latency over %d replicas (n=%d):\n", r.Latency.N, *n)
	fmt.Printf("  mean   %.3f ms ± %.3f (90%% CI)\n", r.Latency.Mean, r.Latency.CI90)
	fmt.Printf("  median %.3f ms   p90 %.3f ms   max %.3f ms\n", r.Latency.P50, r.Latency.P90, r.Latency.Max)
	if r.Aborted > 0 {
		fmt.Printf("  %d replicas discarded (rounds guard or horizon)\n", r.Aborted)
	}
}

func fail(err error) {
	cliflags.Fail("sanrun", err)
}
