// Command sanrun builds the paper's SAN model of the ◇S consensus
// algorithm with explicit parameters and solves it by replicated transient
// simulation — the UltraSAN half of the paper's methodology.
//
// Examples:
//
//	sanrun -n 5 -replicas 3000                       # class 1
//	sanrun -n 5 -crash 1                             # class 2
//	sanrun -n 5 -tmr 20 -tm 2 -fd exp                # class 3 from QoS
//	sanrun -n 5 -tsend 0.01                          # Fig. 7b sweep point
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"ctsan/internal/sanmodel"
)

func main() {
	var (
		n        = flag.Int("n", 3, "number of processes")
		replicas = flag.Int("replicas", 2000, "transient simulation replicas")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for replicas (results are identical at any count)")
		crash    = flag.Int("crash", 0, "initially crashed process (0 = none)")
		tsend    = flag.Float64("tsend", 0.025, "t_send = t_receive in ms (§5.1)")
		tmr      = flag.Float64("tmr", 0, "FD mistake recurrence time T_MR in ms (0 = accurate FD)")
		tm       = flag.Float64("tm", 0, "FD mistake duration T_M in ms")
		fdKind   = flag.String("fd", "det", "FD sojourn distribution: det or exp (§3.4)")
		seed     = flag.Uint64("seed", 1, "root random seed")
	)
	flag.Parse()

	p := sanmodel.DefaultParams(*n)
	p.TSend = *tsend
	p.TReceive = *tsend
	if *crash > 0 {
		p.Crashed = []int{*crash}
	}
	if *tmr > 0 {
		kind := sanmodel.FDDeterministic
		if *fdKind == "exp" {
			kind = sanmodel.FDExponential
		}
		p.FD = sanmodel.FDModel{TMR: *tmr, TM: *tm, Kind: kind}
	}
	res, err := sanmodel.SimulateWorkers(p, *replicas, 1e7, *seed, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sanrun: %v\n", err)
		os.Exit(1)
	}
	e := res.ECDF()
	fmt.Printf("SAN model latency over %d replicas (n=%d):\n", res.Acc.N(), *n)
	fmt.Printf("  mean   %.3f ms ± %.3f (90%% CI)\n", res.Acc.Mean(), res.Acc.CI(0.90))
	fmt.Printf("  median %.3f ms   p90 %.3f ms   max %.3f ms\n", e.Quantile(0.5), e.Quantile(0.9), res.Acc.Max())
	if res.Truncated > 0 {
		fmt.Printf("  %d replicas discarded (rounds guard or horizon)\n", res.Truncated)
	}
}
