// Command fdqos measures the heartbeat failure detector's quality of
// service (Chen et al. metrics, §3.4/§4) across a grid of timeout values,
// and prints the SAN failure-detector parameters derived from them — the
// measurement-to-model pipeline of §5.4.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"ctsan/internal/experiment"
)

func main() {
	var (
		n       = flag.Int("n", 3, "number of processes")
		execs   = flag.Int("execs", 500, "consensus executions per timeout value")
		grid    = flag.String("T", "1,2,3,5,7,10,14,20,30,40,70,100", "comma-separated timeout values in ms")
		seed    = flag.Uint64("seed", 1, "root random seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines across timeout values (results are identical at any count)")
	)
	flag.Parse()

	var ts []float64
	for _, s := range strings.Split(*grid, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdqos: bad timeout %q: %v\n", s, err)
			os.Exit(2)
		}
		ts = append(ts, v)
	}
	specs := make([]experiment.LatencySpec, len(ts))
	for i, T := range ts {
		specs[i] = experiment.LatencySpec{
			N:          *n,
			Executions: *execs,
			Seed:       *seed,
			FDMode:     experiment.FDHeartbeat,
			TimeoutT:   T,
		}
	}
	results, err := experiment.RunLatencySweep(specs, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdqos: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%8s %10s %10s %12s %10s %8s\n", "T [ms]", "T_MR [ms]", "T_M [ms]", "latency[ms]", "mf pairs", "aborted")
	for i, T := range ts {
		res := results[i]
		fmt.Printf("%8.1f %10.2f %10.2f %12.3f %7d/%-3d %8d\n",
			T, res.QoS.TMR, res.QoS.TM, res.Acc.Mean(),
			res.QoS.MistakeFree, res.QoS.Pairs, res.Aborted)
	}
}
