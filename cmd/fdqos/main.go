// Command fdqos measures the heartbeat failure detector's quality of
// service (Chen et al. metrics, §3.4/§4) across a grid of timeout values,
// and prints the SAN failure-detector parameters derived from them — the
// measurement-to-model pipeline of §5.4. The grid is one campaign Study
// of Emulation points: rows stream out in grid order as soon as each
// campaign completes, and Ctrl-C cancels cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"ctsan/campaign"
	"ctsan/internal/cliflags"
	"ctsan/internal/experiment"
)

func main() {
	var (
		n       = flag.Int("n", 3, "number of processes")
		execs   = flag.Int("execs", 500, "consensus executions per timeout value")
		grid    = flag.String("T", "1,2,3,5,7,10,14,20,30,40,70,100", "comma-separated timeout values in ms")
		seed    = cliflags.Seed(flag.CommandLine)
		workers = cliflags.Workers(flag.CommandLine)
	)
	flag.Parse()
	if err := cliflags.CheckSeed(*seed); err != nil {
		fmt.Fprintf(os.Stderr, "fdqos: %v\n", err)
		os.Exit(2)
	}

	var ts []float64
	for _, s := range strings.Split(*grid, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdqos: bad timeout %q: %v\n", s, err)
			os.Exit(2)
		}
		if v <= 0 {
			// A zero timeout would silently select the oracle detector and
			// report meaningless QoS; every grid point must be a heartbeat.
			fmt.Fprintf(os.Stderr, "fdqos: timeout values must be > 0, got %g\n", v)
			os.Exit(2)
		}
		ts = append(ts, v)
	}
	study := campaign.NewStudy("fdqos")
	for _, T := range ts {
		study.Add(campaign.LatencyPoint{
			Name:       fmt.Sprintf("T=%g", T),
			N:          *n,
			Executions: *execs,
			TimeoutT:   T,
			Seed:       *seed,
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Printf("%8s %10s %10s %12s %10s %8s\n", "T [ms]", "T_MR [ms]", "T_M [ms]", "latency[ms]", "mf pairs", "aborted")
	err := campaign.Run(ctx, study,
		campaign.WithWorkers(*workers),
		campaign.WithProgress(func(_, _ int, r *campaign.Result) {
			res := r.Raw().(*experiment.LatencyResult)
			fmt.Printf("%8.1f %10.2f %10.2f %12.3f %7d/%-3d %8d\n",
				ts[r.Index], res.QoS.TMR, res.QoS.TM, res.Digest.Mean(),
				res.QoS.MistakeFree, res.QoS.Pairs, res.Aborted)
		}))
	if err != nil {
		cliflags.Fail("fdqos", err)
	}
}
