package main

import (
	"strings"
	"testing"
)

func doc(entries ...Entry) Document { return Document{Benchmarks: entries} }

func entry(name string, ns, allocs float64) Entry {
	return Entry{Name: name, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

var limits = gateLimits{NSDrift: 15, AllocsDrift: 10}

func TestGateCleanWithinLimits(t *testing.T) {
	base := doc(entry("BenchmarkA", 1000, 100))
	// +14% ns, +9% allocs: inside both limits.
	if v := gate(base, doc(entry("BenchmarkA", 1140, 109)), limits); len(v) != 0 {
		t.Fatalf("drift inside limits flagged: %v", v)
	}
}

func TestGateFlagsNSRegression(t *testing.T) {
	base := doc(entry("BenchmarkA", 1000, 100))
	v := gate(base, doc(entry("BenchmarkA", 1200, 100)), limits)
	if len(v) != 1 || !strings.Contains(v[0], "ns/op") || !strings.Contains(v[0], "20.0%") {
		t.Fatalf("20%% ns/op regression not flagged: %v", v)
	}
}

func TestGateFlagsAllocsRegression(t *testing.T) {
	base := doc(entry("BenchmarkA", 1000, 100))
	v := gate(base, doc(entry("BenchmarkA", 1000, 112)), limits)
	if len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Fatalf("12%% allocs/op regression not flagged: %v", v)
	}
}

func TestGateIgnoresImprovement(t *testing.T) {
	// 50% faster, half the allocations: improvements never gate.
	base := doc(entry("BenchmarkA", 1000, 100))
	if v := gate(base, doc(entry("BenchmarkA", 500, 50)), limits); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
}

func TestGateSkipsUnmatchedBenchmarks(t *testing.T) {
	// New benchmarks and retired baselines are not regressions.
	base := doc(entry("BenchmarkOld", 1000, 100))
	if v := gate(base, doc(entry("BenchmarkNew", 99999, 99999)), limits); len(v) != 0 {
		t.Fatalf("unmatched benchmark flagged: %v", v)
	}
}

func TestGateNegativeLimitDisables(t *testing.T) {
	base := doc(entry("BenchmarkA", 1000, 100))
	cur := doc(entry("BenchmarkA", 9000, 100))
	if v := gate(base, cur, gateLimits{NSDrift: -1, AllocsDrift: 10}); len(v) != 0 {
		t.Fatalf("disabled ns gate still flagged: %v", v)
	}
}

func TestGateSortsViolations(t *testing.T) {
	base := doc(entry("BenchmarkB", 1000, 100), entry("BenchmarkA", 1000, 100))
	v := gate(base, doc(entry("BenchmarkB", 2000, 100), entry("BenchmarkA", 2000, 100)), limits)
	if len(v) != 2 || !strings.HasPrefix(v[0], "BenchmarkA") {
		t.Fatalf("violations not sorted: %v", v)
	}
}

func TestGateZeroBaselineSkipped(t *testing.T) {
	// A zero baseline metric cannot define a percentage; skip, don't
	// divide by zero.
	base := doc(entry("BenchmarkA", 0, 0))
	if v := gate(base, doc(entry("BenchmarkA", 1000, 100)), limits); len(v) != 0 {
		t.Fatalf("zero baseline flagged: %v", v)
	}
}
