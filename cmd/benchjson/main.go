// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so benchmark runs can be archived and
// diffed across commits (scripts/bench_emulation.sh writes
// BENCH_emulation.json with it, and CI uploads the result per build).
//
// Usage:
//
//	go test -run=- -bench . -benchmem ./... | benchjson -o BENCH.json
//	benchjson -baseline BENCH_emulation.json -diff BENCH_emulation.ci.json
//
// The second form is the regression gate: it compares a fresh document
// against the committed baseline and exits non-zero when any benchmark's
// ns/op drifts more than -max-ns-drift percent (default 15) or its
// allocs/op more than -max-allocs-drift percent (default 5). The
// allocs/op bound is deliberately tighter than the ns/op bound: alloc
// counts are deterministic (no machine noise), and with the inner loop
// near-alloc-free a single stray box per execution is a >5% move that a
// looser gate would wave through. Only regressions gate; improvements
// and benchmarks present on one side only pass silently.
//
// Every benchmark line ("BenchmarkFoo-2  30  123 ns/op  4 B/op ...")
// becomes one entry carrying the benchmark name, GOMAXPROCS suffix,
// iteration count, and a unit → value map that includes custom
// b.ReportMetric units. Package and CPU context lines are attached to the
// entries that follow them. Non-benchmark lines are ignored, so the
// verbose output of a full test run can be piped through unchanged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"ctsan/internal/atomicio"
)

// Entry is one benchmark result.
type Entry struct {
	Pkg  string `json:"pkg,omitempty"`
	CPU  string `json:"cpu,omitempty"`
	Name string `json:"name"`
	// Procs is the -N GOMAXPROCS suffix of the benchmark name (0 if the
	// name carried none).
	Procs int   `json:"procs,omitempty"`
	N     int64 `json:"n"`
	// Metrics maps a unit (ns/op, B/op, allocs/op, custom ReportMetric
	// units) to its value.
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the top-level JSON shape.
type Document struct {
	GoVersion  string  `json:"go_version"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "gate mode: committed benchmark JSON to compare -diff against")
	diff := flag.String("diff", "", "gate mode: current benchmark JSON (requires -baseline)")
	maxNS := flag.Float64("max-ns-drift", 15, "gate mode: max ns/op regression percent (negative disables)")
	maxAllocs := flag.Float64("max-allocs-drift", 5, "gate mode: max allocs/op regression percent (negative disables)")
	flag.Parse()

	// Gate mode: compare two previously written documents instead of
	// converting stdin; CI fails the workflow when the current run
	// regressed past the committed baseline.
	if *baseline != "" || *diff != "" {
		if *baseline == "" || *diff == "" {
			fatal(fmt.Errorf("gate mode needs both -baseline and -diff"))
		}
		if err := runGate(*baseline, *diff, gateLimits{NSDrift: *maxNS, AllocsDrift: *maxAllocs}); err != nil {
			fatal(err)
		}
		return
	}

	doc := Document{GoVersion: runtime.Version(), Benchmarks: []Entry{}}
	var pkg, cpu string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "cpu: "):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(line, "Benchmark"):
			if e, ok := parseBench(line); ok {
				e.Pkg, e.CPU = pkg, cpu
				doc.Benchmarks = append(doc.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(buf)
	} else {
		// Atomic replace: an interrupted run must not leave a torn
		// BENCH_emulation.json for the next diff to choke on.
		err = atomicio.WriteFile(*out, buf, 0o644)
	}
	if err != nil {
		fatal(err)
	}
}

// parseBench parses one benchmark result line: name, iteration count,
// then value/unit pairs.
func parseBench(line string) (Entry, bool) {
	fields := strings.Fields(line)
	// Need at least "BenchmarkX N value unit".
	if len(fields) < 4 {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(e.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(e.Name[i+1:]); err == nil {
			e.Name, e.Procs = e.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e.N = n
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
