package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// gateLimits holds the per-metric regression thresholds in percent. A
// negative limit disables that metric's gate.
type gateLimits struct {
	NSDrift     float64 // ns/op
	AllocsDrift float64 // allocs/op
}

// gate compares a current benchmark document against a committed
// baseline and returns one violation line per benchmark whose ns/op or
// allocs/op regressed past the limits. Only regressions (positive
// drift) gate — getting faster is never an error — and benchmarks
// present on one side only are skipped, so adding or retiring a
// benchmark does not require touching the gate. Entries are matched by
// name (the GOMAXPROCS suffix is part of neither side's name), and the
// violations come back sorted for stable CI logs.
func gate(baseline, current Document, limits gateLimits) []string {
	base := make(map[string]Entry, len(baseline.Benchmarks))
	for _, e := range baseline.Benchmarks {
		base[e.Name] = e
	}
	var violations []string
	check := func(name, unit string, b, c Entry, limit float64) {
		if limit < 0 {
			return
		}
		bv, bok := b.Metrics[unit]
		cv, cok := c.Metrics[unit]
		if !bok || !cok || bv <= 0 {
			return
		}
		drift := (cv - bv) / bv * 100
		if drift > limit {
			violations = append(violations,
				fmt.Sprintf("%s: %s regressed %.1f%% (%.6g -> %.6g, limit +%.0f%%)",
					name, unit, drift, bv, cv, limit))
		}
	}
	for _, cur := range current.Benchmarks {
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		check(cur.Name, "ns/op", b, cur, limits.NSDrift)
		check(cur.Name, "allocs/op", b, cur, limits.AllocsDrift)
	}
	sort.Strings(violations)
	return violations
}

// runGate loads both documents, applies the gate, and reports: each
// violation on stderr and a non-nil error when any benchmark regressed.
func runGate(baselinePath, currentPath string, limits gateLimits) error {
	var baseline, current Document
	if err := loadDoc(baselinePath, &baseline); err != nil {
		return err
	}
	if err := loadDoc(currentPath, &current); err != nil {
		return err
	}
	violations := gate(baseline, current, limits)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "benchjson: REGRESSION", v)
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past the gate", len(violations))
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate clean (%d benchmarks compared against %s)\n",
		len(current.Benchmarks), baselinePath)
	return nil
}

func loadDoc(path string, doc *Document) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
