package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"ctsan/internal/cliflags"
	"ctsan/internal/scenario"
	"ctsan/internal/trace"
)

// traceCmd parses trace-subcommand flags and runs one scenario with the
// execution tracer attached, dumping the captured events as JSONL (and
// optionally a Chrome trace_event file, or wrong-suspicion explanations).
// Factored from main so tests can pin the trace output byte-for-byte.
func traceCmd(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	var (
		replicas = fs.Int("replicas", 1, "independent replicas to trace")
		execs    = fs.Int("execs", 0, "consensus executions per replica (0 = per-scenario default)")
		workers  = cliflags.Workers(fs)
		seed     = cliflags.Seed(fs)
		specFile = fs.String("spec", "", "path to a JSON scenario definition to trace")
		outFile  = fs.String("o", "", "write the JSONL trace here instead of stdout")
		chrome   = fs.String("chrome", "", "also write a Chrome trace_event file (load in Perfetto or chrome://tracing)")
		explain  = fs.Bool("explain", false, "print causal event windows around wrong suspicions instead of the raw trace")
		window   = fs.Float64("window", 50, "milliseconds of trace shown before each wrong suspicion with -explain")
		cap      = fs.Int("cap", 0, "per-replica trace ring capacity in events (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if err := cliflags.CheckSeed(*seed); err != nil {
		return err
	}
	s, err := traceScenario(*specFile, fs.Args())
	if err != nil {
		return err
	}
	reps, err := scenario.RunTraced(ctx, scenario.TraceSpec{
		Scenario:   s,
		Replicas:   *replicas,
		Executions: *execs,
		Workers:    *workers,
		Seed:       *seed,
		Cap:        *cap,
	})
	if err != nil {
		return err
	}
	if *chrome != "" {
		if err := writeChrome(*chrome, reps); err != nil {
			return err
		}
	}
	if *explain {
		return writeExplanations(out, reps, *window)
	}
	w := out
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	for _, r := range reps {
		if err := r.Result.Trace.WriteJSONL(w, r.Replica); err != nil {
			return err
		}
	}
	return nil
}

// traceScenario resolves the single scenario to trace: either the -spec
// file or exactly one registered name.
func traceScenario(specFile string, names []string) (*scenario.Scenario, error) {
	if specFile != "" {
		if len(names) > 0 {
			return nil, fmt.Errorf("trace: give -spec or one scenario name, not both")
		}
		data, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		return scenario.LoadJSON(data)
	}
	if len(names) != 1 {
		return nil, fmt.Errorf("trace: need exactly one scenario name or -spec (known: %v)", scenario.Names())
	}
	return scenario.Get(names[0])
}

// writeChrome dumps every replica's trace into one Chrome trace_event
// document: replicas become pids, simulated processes become tids.
func writeChrome(path string, reps []*scenario.TracedReplica) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	cw, err := trace.NewChromeWriter(bw)
	if err != nil {
		return err
	}
	for _, r := range reps {
		if err := cw.Add(r.Replica, r.Result.Trace); err != nil {
			return err
		}
	}
	if err := cw.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// writeExplanations prints causal windows for every ground-truthed wrong
// suspicion across the traced replicas, or a note when there were none.
func writeExplanations(w io.Writer, reps []*scenario.TracedReplica, windowMS float64) error {
	total := 0
	for _, r := range reps {
		n, err := scenario.WriteExplain(w, r, windowMS)
		if err != nil {
			return err
		}
		total += n
	}
	if total == 0 {
		_, err := fmt.Fprintln(w, "no wrong suspicions in any traced replica")
		return err
	}
	return nil
}
