package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ctsan/internal/atomicio"
)

// traceOut runs `scenario trace` with the given worker count and returns
// its JSONL output.
func traceOut(t *testing.T, workers string) string {
	t.Helper()
	var buf strings.Builder
	args := []string{"-execs", "20", "-replicas", "2", "-workers", workers, "-seed", "1",
		"flaky-link"}
	if err := traceCmd(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestTraceGolden pins the JSONL trace of a registry scenario byte for
// byte. The trace is part of the tool's public surface (scripts parse
// it, Perfetto loads its Chrome form), and — determinism rule 6 — it is
// a pure function of the seed, so the golden file pins both the record
// schema and the exact event stream. Regenerate with
// `go test ./cmd/scenario -update` after a deliberate change.
func TestTraceGolden(t *testing.T) {
	var buf strings.Builder
	args := []string{"-execs", "5", "-replicas", "1", "-workers", "1", "-seed", "1",
		"flaky-link"}
	if err := traceCmd(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "trace_flaky_link.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := atomicio.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		// Traces run to tens of thousands of lines; show where they split.
		g, w := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(g) && i < len(w); i++ {
			if g[i] != w[i] {
				t.Fatalf("trace diverged from golden at line %d:\ngot:  %s\nwant: %s", i+1, g[i], w[i])
			}
		}
		t.Fatalf("trace length diverged from golden: got %d lines, want %d", len(g), len(w))
	}
}

// TestTraceWorkersInvariant is the CLI-level differential for
// determinism rule 6: the concatenated replica traces must be
// byte-identical at -workers 1, 2, and 8.
func TestTraceWorkersInvariant(t *testing.T) {
	ref := traceOut(t, "1")
	for _, w := range []string{"2", "8"} {
		if got := traceOut(t, w); got != ref {
			t.Errorf("-workers %s changed the trace bytes", w)
		}
	}
}

// TestTraceExplainRuns exercises the -explain path end to end on a
// scenario whose degraded links produce wrong suspicions at some seed.
func TestTraceExplainRuns(t *testing.T) {
	var buf strings.Builder
	args := []string{"-explain", "-execs", "20", "-replicas", "4", "-workers", "1", "-seed", "1",
		"flaky-link"}
	if err := traceCmd(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "wrong suspicion") && !strings.Contains(out, "no wrong suspicions") {
		t.Fatalf("explain output shows neither suspicions nor the empty note:\n%s", out)
	}
}

// TestTraceChromeFile checks the -chrome output is a loadable
// trace_event document.
func TestTraceChromeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var buf strings.Builder
	args := []string{"-o", os.DevNull, "-chrome", path, "-execs", "5", "-workers", "1", "-seed", "1",
		"flaky-link"}
	if err := traceCmd(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, `{"traceEvents":[`) || !strings.Contains(s, `"displayTimeUnit":"ms"`) {
		t.Fatalf("chrome trace document malformed:\n%.200s", s)
	}
}

// TestTraceUsageErrors pins the argument contract: exactly one scenario,
// and -spec excludes a positional name.
func TestTraceUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"flaky-link", "gc-storm"},
		{"-spec", "x.json", "flaky-link"},
	} {
		if err := traceCmd(context.Background(), args, &strings.Builder{}); err == nil {
			t.Errorf("traceCmd(%v) succeeded, want error", args)
		}
	}
}
