// Command scenario lists, describes, and runs declarative fault- and
// workload-injection scenarios (internal/scenario) on the emulated
// cluster.
//
//	scenario list
//	scenario describe split-brain
//	scenario run paper-baseline
//	scenario run split-brain gc-storm -replicas 4 -workers 0 -json
//	scenario run -spec my-scenario.json -execs 100
//
// run executes the scenarios as one campaign Study on the public
// campaign API: one Scenario point per name, every point seeded with the
// same -seed (common random numbers, so scenarios are compared under
// identical draws), fanned across the deterministic worker pool. Results
// are bit-identical at any -workers count for a given -seed, stream out
// in argument order, and Ctrl-C cancels the campaign cleanly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"ctsan/campaign"
	"ctsan/internal/cliflags"
	"ctsan/internal/scenario"
	"ctsan/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "describe":
		describe(os.Args[2:])
	case "run":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		if err := runCmd(ctx, os.Args[2:], os.Stdout); err != nil {
			if errors.Is(err, errUsage) {
				os.Exit(2) // flag error already printed by the FlagSet
			}
			fail(err)
		}
	case "trace":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		if err := traceCmd(ctx, os.Args[2:], os.Stdout); err != nil {
			if errors.Is(err, errUsage) {
				os.Exit(2)
			}
			fail(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  scenario list                     show registered scenarios
  scenario describe <name>...       show docs and timeline of scenarios
  scenario run [flags] <name>...    run a scenario campaign
  scenario run [flags] -spec f.json run a JSON-defined scenario
  scenario trace [flags] <name>     run one scenario with execution tracing
run flags:
  -replicas K  independent replicas per scenario (default 1)
  -execs K     consensus executions per replica (default: per scenario)
  -workers W   worker goroutines, 0 = one per CPU (results identical at any W)
  -seed S      campaign root seed (default 1)
  -json        emit reports as JSON instead of a table
  -debug-addr  serve /debug/vars and /debug/pprof while the campaign runs
trace flags (plus -replicas/-execs/-workers/-seed/-spec as above):
  -o F         write the trace as JSONL to F (default stdout)
  -chrome F    also write a Chrome trace_event file loadable in Perfetto
  -explain     print causal event windows around wrong suspicions instead
  -window MS   explain window before each wrong suspicion (default 50)
  -cap N       per-replica trace ring capacity (default %d events)
`, trace.DefaultCap)
}

func list() {
	// The registry listing is data (scenario.List) — the same records
	// the campaign service serves at /api/v1/scenarios — rendered here
	// one line per scenario.
	for _, info := range scenario.List() {
		fmt.Printf("%-18s n=%-2d execs=%-4d %s\n", info.Name, info.N, info.Executions, firstSentence(info.Doc))
	}
}

func describe(names []string) {
	if len(names) == 0 {
		fail(fmt.Errorf("describe: need at least one scenario name"))
	}
	for _, name := range names {
		s, err := scenario.Get(name)
		if err != nil {
			fail(err)
		}
		fd := "perfect oracle"
		if s.TimeoutT > 0 {
			th := s.PeriodTh
			if th == 0 {
				th = 0.7 * s.TimeoutT
			}
			fd = fmt.Sprintf("heartbeat T=%g ms, Th=%g ms", s.TimeoutT, th)
		}
		fmt.Printf("%s\n  %s\n  n=%d, %d executions/replica, base gap %g ms, FD: %s\n",
			s.Name, s.Doc, s.N, s.Executions, s.Gap, fd)
		if len(s.InitialCrashed) > 0 {
			fmt.Printf("  initially crashed: %v\n", s.InitialCrashed)
		}
		if len(s.Events) == 0 {
			fmt.Printf("  timeline: (none)\n")
			continue
		}
		fmt.Printf("  timeline:\n")
		for _, e := range s.Events {
			fmt.Printf("    t=%-7g %s\n", e.At, describeEvent(e))
		}
	}
}

func describeEvent(e scenario.Event) string {
	switch e.Kind {
	case scenario.KindCrash:
		return fmt.Sprintf("crash p%d", e.P)
	case scenario.KindRecover:
		return fmt.Sprintf("recover p%d", e.P)
	case scenario.KindPartition:
		return fmt.Sprintf("partition %v", e.Groups)
	case scenario.KindHeal:
		return "heal partition"
	case scenario.KindLink:
		s := fmt.Sprintf("degrade link p%d→p%d loss=%g", e.From, e.To, e.Loss)
		if e.Extra != nil {
			s += fmt.Sprintf(" extra=%v", e.Extra)
		}
		if e.Until > 0 {
			s += fmt.Sprintf(" until t=%g", e.Until)
		}
		return s
	case scenario.KindLinkClear:
		return fmt.Sprintf("clear link p%d→p%d", e.From, e.To)
	case scenario.KindPauseStorm:
		host := "all hosts"
		if e.P != 0 {
			host = fmt.Sprintf("p%d", e.P)
		}
		return fmt.Sprintf("pause storm on %s until t=%g (every %v, dur %v)", host, e.Until, e.Every, e.Dur)
	case scenario.KindWorkload:
		return fmt.Sprintf("workload phase %q: gap %g ms", e.Label, e.Gap)
	}
	return string(e.Kind)
}

// errUsage marks a flag-parse failure whose message the FlagSet already
// printed; main maps it to the conventional usage-error exit status 2.
var errUsage = errors.New("usage error")

// runCmd parses run-subcommand flags and executes the campaign, writing
// the report (table or JSON) to out. Factored from main so the golden
// test can pin the public JSON schema.
func runCmd(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	var (
		replicas  = fs.Int("replicas", 1, "independent replicas per scenario")
		execs     = fs.Int("execs", 0, "consensus executions per replica (0 = per-scenario default)")
		workers   = cliflags.Workers(fs)
		seed      = cliflags.Seed(fs)
		asJSON    = cliflags.JSON(fs)
		specFile  = fs.String("spec", "", "path to a JSON scenario definition to run")
		debugAddr = cliflags.DebugAddr(fs)
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed
		}
		// fs.Parse already printed the message and usage; report a bare
		// usage error so main exits 2 without printing it twice.
		return errUsage
	}
	if err := cliflags.CheckSeed(*seed); err != nil {
		return err
	}
	stopDebug, err := cliflags.StartDebug(*debugAddr, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "scenario: "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	defer stopDebug()
	study := campaign.NewStudy("scenario-run")
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		study.Add(campaign.ScenarioPoint{
			SpecJSON:   data,
			Replicas:   *replicas,
			Executions: *execs,
			Seed:       *seed,
		})
	}
	for _, name := range fs.Args() {
		study.Add(campaign.ScenarioPoint{
			Name:       name,
			Replicas:   *replicas,
			Executions: *execs,
			Seed:       *seed,
		})
	}
	if len(study.Points) == 0 {
		return fmt.Errorf("run: need scenario names or -spec (known: %v)", scenario.Names())
	}
	results, err := campaign.RunCollect(ctx, study, campaign.WithWorkers(*workers))
	if err != nil {
		return err
	}
	reports := make([]*scenario.Report, len(results))
	for i, r := range results {
		reports[i] = r.Raw().(*scenario.Report)
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	scenario.ReportTable(reports).Fprint(out)
	return nil
}

// firstSentence truncates a doc string at its first sentence end.
func firstSentence(doc string) string {
	for i := 0; i+1 < len(doc); i++ {
		if doc[i] == ':' || (doc[i] == '.' && doc[i+1] == ' ') {
			return doc[:i]
		}
	}
	return doc
}

func fail(err error) {
	cliflags.Fail("scenario", err)
}
