// Command scenario lists, describes, and runs declarative fault- and
// workload-injection scenarios (internal/scenario) on the emulated
// cluster.
//
//	scenario list
//	scenario describe split-brain
//	scenario run paper-baseline
//	scenario run split-brain gc-storm -replicas 4 -workers 0 -json
//	scenario run -spec my-scenario.json -execs 100
//
// run executes a scenario × replica campaign on the deterministic worker
// pool: results are bit-identical at any -workers count for a given
// -seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"ctsan/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "describe":
		describe(os.Args[2:])
	case "run":
		run(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  scenario list                     show registered scenarios
  scenario describe <name>...       show docs and timeline of scenarios
  scenario run [flags] <name>...    run a scenario campaign
  scenario run [flags] -spec f.json run a JSON-defined scenario
run flags:
  -replicas K  independent replicas per scenario (default 1)
  -execs K     consensus executions per replica (default: per scenario)
  -workers W   worker goroutines, 0 = one per CPU (results identical at any W)
  -seed S      campaign root seed (default 1)
  -json        emit reports as JSON instead of a table
`)
}

func list() {
	for _, name := range scenario.Names() {
		s, err := scenario.Get(name)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-18s n=%-2d execs=%-4d %s\n", name, s.N, s.Executions, firstSentence(s.Doc))
	}
}

func describe(names []string) {
	if len(names) == 0 {
		fail(fmt.Errorf("describe: need at least one scenario name"))
	}
	for _, name := range names {
		s, err := scenario.Get(name)
		if err != nil {
			fail(err)
		}
		fd := "perfect oracle"
		if s.TimeoutT > 0 {
			th := s.PeriodTh
			if th == 0 {
				th = 0.7 * s.TimeoutT
			}
			fd = fmt.Sprintf("heartbeat T=%g ms, Th=%g ms", s.TimeoutT, th)
		}
		fmt.Printf("%s\n  %s\n  n=%d, %d executions/replica, base gap %g ms, FD: %s\n",
			s.Name, s.Doc, s.N, s.Executions, s.Gap, fd)
		if len(s.InitialCrashed) > 0 {
			fmt.Printf("  initially crashed: %v\n", s.InitialCrashed)
		}
		if len(s.Events) == 0 {
			fmt.Printf("  timeline: (none)\n")
			continue
		}
		fmt.Printf("  timeline:\n")
		for _, e := range s.Events {
			fmt.Printf("    t=%-7g %s\n", e.At, describeEvent(e))
		}
	}
}

func describeEvent(e scenario.Event) string {
	switch e.Kind {
	case scenario.KindCrash:
		return fmt.Sprintf("crash p%d", e.P)
	case scenario.KindRecover:
		return fmt.Sprintf("recover p%d", e.P)
	case scenario.KindPartition:
		return fmt.Sprintf("partition %v", e.Groups)
	case scenario.KindHeal:
		return "heal partition"
	case scenario.KindLink:
		s := fmt.Sprintf("degrade link p%d→p%d loss=%g", e.From, e.To, e.Loss)
		if e.Extra != nil {
			s += fmt.Sprintf(" extra=%v", e.Extra)
		}
		if e.Until > 0 {
			s += fmt.Sprintf(" until t=%g", e.Until)
		}
		return s
	case scenario.KindLinkClear:
		return fmt.Sprintf("clear link p%d→p%d", e.From, e.To)
	case scenario.KindPauseStorm:
		host := "all hosts"
		if e.P != 0 {
			host = fmt.Sprintf("p%d", e.P)
		}
		return fmt.Sprintf("pause storm on %s until t=%g (every %v, dur %v)", host, e.Until, e.Every, e.Dur)
	case scenario.KindWorkload:
		return fmt.Sprintf("workload phase %q: gap %g ms", e.Label, e.Gap)
	}
	return string(e.Kind)
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		replicas = fs.Int("replicas", 1, "independent replicas per scenario")
		execs    = fs.Int("execs", 0, "consensus executions per replica (0 = per-scenario default)")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines across (scenario, replica) units")
		seed     = fs.Uint64("seed", 1, "campaign root seed")
		asJSON   = fs.Bool("json", false, "emit reports as JSON")
		specFile = fs.String("spec", "", "path to a JSON scenario definition to run")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	var scenarios []*scenario.Scenario
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fail(err)
		}
		s, err := scenario.LoadJSON(data)
		if err != nil {
			fail(err)
		}
		scenarios = append(scenarios, s)
	}
	for _, name := range fs.Args() {
		s, err := scenario.Get(name)
		if err != nil {
			fail(err)
		}
		scenarios = append(scenarios, s)
	}
	if len(scenarios) == 0 {
		fail(fmt.Errorf("run: need scenario names or -spec (known: %v)", scenario.Names()))
	}
	reports, err := scenario.RunCampaign(scenario.CampaignSpec{
		Scenarios:  scenarios,
		Replicas:   *replicas,
		Executions: *execs,
		Workers:    *workers,
		Seed:       *seed,
	})
	if err != nil {
		fail(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fail(err)
		}
		return
	}
	scenario.ReportTable(reports).Fprint(os.Stdout)
}

// firstSentence truncates a doc string at its first sentence end.
func firstSentence(doc string) string {
	for i := 0; i+1 < len(doc); i++ {
		if doc[i] == ':' || (doc[i] == '.' && doc[i+1] == ' ') {
			return doc[:i]
		}
	}
	return doc
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
	os.Exit(1)
}
