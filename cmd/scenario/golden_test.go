package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ctsan/internal/atomicio"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestRunJSONGolden pins the public JSON report schema of
// `scenario run -json`: external users script against these field names
// and this document shape, so any change here is a deliberate,
// documented break. Regenerate with `go test ./cmd/scenario -update`
// after such a change.
//
// The run is fully deterministic (fixed seed, serial workers), so the
// golden file pins values as well as schema; a values-only drift means
// the underlying engines changed behavior.
func TestRunJSONGolden(t *testing.T) {
	var buf strings.Builder
	args := []string{"-json", "-execs", "40", "-replicas", "2", "-workers", "1", "-seed", "1",
		"paper-baseline", "flaky-link"}
	if err := runCmd(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "run_json.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		// Atomic replace (temp+rename+fsync): a golden file must never be
		// left torn by an interrupted -update run.
		if err := atomicio.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("scenario run -json output diverged from the pinned schema.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRunJSONGoldenWorkersInvariant re-runs the same campaign with the
// parallel pool and requires byte-identical JSON: the public output must
// not depend on -workers.
func TestRunJSONGoldenWorkersInvariant(t *testing.T) {
	out := func(workers string) string {
		var buf strings.Builder
		args := []string{"-json", "-execs", "40", "-replicas", "2", "-workers", workers, "-seed", "1",
			"paper-baseline", "flaky-link"}
		if err := runCmd(context.Background(), args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref := out("1")
	for _, w := range []string{"2", "8"} {
		if got := out(w); got != ref {
			t.Errorf("-workers %s changed the JSON output", w)
		}
	}
}
