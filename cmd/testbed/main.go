// Command testbed runs one measurement campaign on the emulated cluster
// and prints summary statistics — the "experiments on a cluster of PCs"
// half of the paper's methodology. Plain and scenario campaigns run on
// the public campaign API (one Study); the -throughput and -transient
// extensions drive the internal harness directly. Every mode is
// cancellable with Ctrl-C and exits 130 when interrupted.
//
// Examples:
//
//	testbed -n 5 -execs 5000                 # class 1 (§5.2)
//	testbed -n 5 -crash 1                    # class 2, coordinator crash
//	testbed -n 5 -T 10 -execs 1000           # class 3, heartbeat FD (§5.4)
//	testbed -scenario gc-storm -replicas 4   # named injection scenario
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"ctsan/campaign"
	"ctsan/internal/cliflags"
	"ctsan/internal/experiment"
	"ctsan/internal/neko"
	"ctsan/internal/scenario"
)

func main() {
	var (
		n          = flag.Int("n", 3, "number of processes (paper: odd 3..11)")
		execs      = flag.Int("execs", 1000, "sequential consensus executions")
		crash      = flag.Int("crash", 0, "process crashed from the beginning (0 = none)")
		t          = flag.Float64("T", 0, "heartbeat FD timeout in ms (0 = perfect oracle FD)")
		th         = flag.Float64("Th", 0, "heartbeat period in ms (0 = 0.7*T)")
		gap        = flag.Float64("gap", 10, "separation between execution starts in ms (§4)")
		seed       = cliflags.Seed(flag.CommandLine)
		workers    = cliflags.Workers(flag.CommandLine)
		scn        = flag.String("scenario", "", "run a named injection scenario from the registry (see cmd/scenario list) instead of a plain campaign")
		replicas   = flag.Int("replicas", 1, "independent replicas of the scenario campaign")
		throughput = flag.Bool("throughput", false, "chain executions back to back and report the decision rate (§6 extension)")
		transient  = flag.Bool("transient", false, "crash -crash mid-campaign under a live heartbeat FD and report the latency transient (§6 extension)")
	)
	flag.Parse()
	if err := cliflags.CheckSeed(*seed); err != nil {
		fmt.Fprintf(os.Stderr, "testbed: %v\n", err)
		os.Exit(2)
	}

	// Every mode honors cancellation — including the §6 extension
	// harnesses, which check their context at instance/execution
	// boundaries — so Ctrl-C exits with the shared cliflags.Fail
	// convention (status 130) everywhere.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *scn != "" {
		// Scenarios fix their own cluster shape, FD, and workload; reject
		// flags that would silently not apply. This check runs before any
		// mode dispatch so -scenario -throughput cannot slip through.
		override := 0
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "execs":
				override = *execs
			case "n", "T", "Th", "gap", "crash", "throughput", "transient":
				fmt.Fprintf(os.Stderr, "testbed: -%s has no effect with -scenario (the scenario defines it)\n", f.Name)
				os.Exit(2)
			}
		})
		runScenario(ctx, *scn, override, *replicas, *workers, *seed)
		return
	}
	if *throughput {
		runThroughput(ctx, *n, *execs, *crash, *t, *seed)
		return
	}
	if *transient {
		runTransient(ctx, *n, *execs, *crash, *t, *seed)
		return
	}

	point := campaign.LatencyPoint{
		Name:       fmt.Sprintf("testbed n=%d", *n),
		N:          *n,
		Executions: *execs,
		Gap:        *gap,
		TimeoutT:   *t,
		PeriodTh:   *th,
		Seed:       *seed,
	}
	if *crash > 0 {
		point.Crashed = []int{*crash}
	}
	results, err := campaign.RunCollect(ctx, campaign.NewStudy("testbed", point),
		campaign.WithWorkers(*workers))
	if err != nil {
		cliflags.Fail("testbed", err)
	}
	r := results[0]
	res := r.Raw().(*experiment.LatencyResult)
	fmt.Printf("latency over %d executions (n=%d):\n", r.Latency.N, *n)
	fmt.Printf("  mean   %.3f ms ± %.3f (90%% CI)\n", r.Latency.Mean, r.Latency.CI90)
	fmt.Printf("  median %.3f ms   p90 %.3f ms   min %.3f   max %.3f\n",
		r.Latency.P50, r.Latency.P90, r.Latency.Min, r.Latency.Max)
	fmt.Printf("  mean deciding round %.2f, aborted executions %d\n", res.MeanRounds(), r.Aborted)
	if *t > 0 {
		fmt.Printf("  failure detector QoS over T_exp=%.0f ms: %s\n", r.Texp, res.QoS)
	}
	fmt.Printf("  simulated %.0f ms of cluster time in %d events\n", r.Texp, r.Events)
}

// runScenario executes a named registry scenario as a replica campaign
// through the public surface.
func runScenario(ctx context.Context, name string, execs, replicas, workers int, seed uint64) {
	results, err := campaign.RunCollect(ctx,
		campaign.NewStudy("testbed-scenario", campaign.ScenarioPoint{
			Name:       name,
			Replicas:   replicas,
			Executions: execs,
			Seed:       seed,
		}),
		campaign.WithWorkers(workers))
	if err != nil {
		cliflags.Fail("testbed", err)
	}
	scenario.ReportTable([]*scenario.Report{results[0].Raw().(*scenario.Report)}).Fprint(os.Stdout)
}

// runThroughput executes the §6 throughput extension: consensus #(k+1)
// starts on each process immediately after #k decides there.
func runThroughput(ctx context.Context, n, execs, crash int, timeout float64, seed uint64) {
	spec := experiment.ThroughputSpec{N: n, Executions: execs, Warmup: execs / 10, Seed: seed}
	if crash > 0 {
		spec.Crashed = []neko.ProcessID{neko.ProcessID(crash)}
	}
	if timeout > 0 {
		spec.FDMode = experiment.FDHeartbeat
		spec.TimeoutT = timeout
	}
	res, err := experiment.RunThroughputContext(ctx, spec)
	if err != nil {
		cliflags.Fail("testbed", err)
	}
	fmt.Printf("sequential consensus throughput (n=%d, %d chained executions):\n", n, execs)
	fmt.Printf("  sustained rate      %.0f decisions/s\n", res.Rate)
	fmt.Printf("  inter-decision gap  %.3f ms ± %.3f (90%% CI)\n", res.InterDecision.Mean(), res.InterDecision.CI(0.90))
	fmt.Printf("  decided %d, aborted %d, %d events\n", res.Decided, res.Aborted, res.Events)
}

// runTransient executes the §6 crash-transient extension.
func runTransient(ctx context.Context, n, execs, crash int, timeout float64, seed uint64) {
	if crash == 0 {
		crash = 1
	}
	if timeout == 0 {
		timeout = 20
	}
	res, err := experiment.RunCrashTransientContext(ctx, experiment.CrashTransientSpec{
		N: n, CrashID: neko.ProcessID(crash), CrashAfter: execs / 4, Executions: execs,
		TimeoutT: timeout, Seed: seed,
	})
	if err != nil {
		cliflags.Fail("testbed", err)
	}
	fmt.Printf("crash transient (n=%d, p%d crashes after execution %d, T=%g ms):\n", n, crash, execs/4, timeout)
	fmt.Printf("  steady state before crash  %.3f ms\n", res.SteadyBefore)
	fmt.Printf("  transient peak             %.3f ms\n", res.PeakDuring)
	fmt.Printf("  steady state after crash   %.3f ms\n", res.SteadyAfter)
	fmt.Printf("  mean detection time T_D    %.2f ms\n", res.DetectionTime)
	for k, l := range res.Latency {
		marker := " "
		if k == execs/4 {
			marker = "  <- crash"
		}
		fmt.Printf("  exec %3d: %8.3f ms%s\n", k, l, marker)
	}
}
