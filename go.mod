module ctsan

go 1.24
