package cliflags

import (
	"flag"
	"testing"
)

// TestSharedDefinitions pins the shared names, defaults, and usage
// strings: every cmd/ binary registers these helpers, so a change here is
// a deliberate, repository-wide CLI change.
func TestSharedDefinitions(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	seed := Seed(fs)
	workers := Workers(fs)
	asJSON := JSON(fs)

	if *seed != 1 {
		t.Errorf("seed default = %d, want 1", *seed)
	}
	if *workers != 0 {
		t.Errorf("workers default = %d, want 0 (one per CPU)", *workers)
	}
	if *asJSON {
		t.Error("json must default to false")
	}
	for name, usage := range map[string]string{
		SeedName:    SeedUsage,
		WorkersName: WorkersUsage,
		JSONName:    JSONUsage,
	} {
		f := fs.Lookup(name)
		if f == nil {
			t.Fatalf("flag -%s not registered", name)
		}
		if f.Usage != usage {
			t.Errorf("flag -%s usage drifted: %q", name, f.Usage)
		}
	}

	if err := fs.Parse([]string{"-seed", "7", "-workers", "3", "-json"}); err != nil {
		t.Fatal(err)
	}
	if *seed != 7 || *workers != 3 || !*asJSON {
		t.Errorf("parse: got seed=%d workers=%d json=%v", *seed, *workers, *asJSON)
	}
}

// TestCheckSeed pins the reserved-zero rule: campaign points treat Seed 0
// as "derive", so a CLI must not pretend to pin it.
func TestCheckSeed(t *testing.T) {
	if err := CheckSeed(0); err == nil {
		t.Error("seed 0 must be rejected")
	}
	if err := CheckSeed(1); err != nil {
		t.Errorf("seed 1 rejected: %v", err)
	}
}
