// Package cliflags centralizes the CLI conventions every binary under
// cmd/ shares — the campaign root seed, the worker-pool size, and JSON
// output flags, plus error-exit behavior — so that names, defaults, help
// text, and exit codes cannot drift between tools (they once did: sanrun
// described -workers differently from repro). A command registers the
// flags it needs on its FlagSet:
//
//	seed := cliflags.Seed(flag.CommandLine)
//	workers := cliflags.Workers(flag.CommandLine)
//	flag.Parse()
package cliflags

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"ctsan/internal/obs"
)

// Flag names and help text shared by all binaries. Exported so tests can
// pin them and commands can reference the canonical spelling.
const (
	SeedName  = "seed"
	SeedUsage = "campaign root seed (results are bit-identical for a given seed)"

	WorkersName  = "workers"
	WorkersUsage = "worker goroutines; 0 = one per CPU, 1 = serial (results are identical at any count)"

	JSONName  = "json"
	JSONUsage = "emit results as JSON instead of text"

	DebugAddrName  = "debug-addr"
	DebugAddrUsage = "serve /debug/vars and /debug/pprof on this address (e.g. localhost:6060); empty disables"
)

// Seed registers the shared -seed flag (default 1).
func Seed(fs *flag.FlagSet) *uint64 {
	return fs.Uint64(SeedName, 1, SeedUsage)
}

// Workers registers the shared -workers flag. The default 0 resolves to
// one worker per CPU (parallel.Workers); every campaign in the repository
// is bit-identical at any worker count.
func Workers(fs *flag.FlagSet) *int {
	return fs.Int(WorkersName, 0, WorkersUsage)
}

// JSON registers the shared -json flag (default false).
func JSON(fs *flag.FlagSet) *bool {
	return fs.Bool(JSONName, false, JSONUsage)
}

// DebugAddr registers the shared -debug-addr flag (default "", meaning
// no debug server). When set, commands start obs.Serve on the address
// for the duration of the run.
func DebugAddr(fs *flag.FlagSet) *string {
	return fs.String(DebugAddrName, "", DebugAddrUsage)
}

// StartDebug starts the obs debug server when addr is non-empty and
// returns a shutdown func (a no-op when addr is empty). The bound
// address — useful with ":0" — is logged through logf.
func StartDebug(addr string, logf func(format string, args ...any)) (func() error, error) {
	if addr == "" {
		return func() error { return nil }, nil
	}
	bound, shutdown, err := obs.Serve(addr)
	if err != nil {
		return nil, fmt.Errorf("-%s: %w", DebugAddrName, err)
	}
	if logf != nil {
		logf("debug server listening on http://%s/debug/vars", bound)
	}
	return shutdown, nil
}

// CheckSeed rejects the reserved seed 0. Campaign points treat a zero
// Seed as "derive one from the study seed and the point index", so a
// literal 0 cannot be pinned from the command line; accepting it would
// silently run under different derived seeds and break the
// "bit-identical for a given seed" help-text promise.
func CheckSeed(seed uint64) error {
	if seed == 0 {
		return fmt.Errorf("-%s 0 is reserved (seeds start at 1)", SeedName)
	}
	return nil
}

// Fail reports err and exits with the shared convention: a canceled
// campaign (Ctrl-C through signal.NotifyContext) prints "interrupted"
// and exits with the conventional SIGINT status 130, so scripts can tell
// an interrupt from a real failure (status 1).
func Fail(prog string, err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", prog)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(1)
}
