package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzScan drives the corruption-tolerant loader with arbitrary file
// content — truncations, bit flips, binary garbage. Invariants:
//
//   - Scan never panics and never fails; damage only shortens the result.
//   - The intact prefix really is intact: re-joining the returned records
//     with newlines reproduces exactly the first `intact` bytes.
//   - Records never contain newlines and are never empty.
//   - Scanning the intact prefix again is a fixed point (same records).
func FuzzScan(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"i\":0}\n"))
	f.Add([]byte("{\"i\":0}\n{\"i\":1}\n{\"i\":2,\"torn"))
	f.Add([]byte("a\n\nb\n"))
	f.Add([]byte("\n"))
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		records, intact := Scan(data)
		if intact < 0 || intact > len(data) {
			t.Fatalf("intact = %d outside input of %d bytes", intact, len(data))
		}
		var rejoined []byte
		for _, r := range records {
			if len(r) == 0 {
				t.Fatal("empty record returned")
			}
			if bytes.IndexByte(r, '\n') >= 0 {
				t.Fatal("record contains a newline")
			}
			rejoined = append(rejoined, r...)
			rejoined = append(rejoined, '\n')
		}
		if !bytes.Equal(rejoined, data[:intact]) {
			t.Fatalf("records do not reproduce the intact prefix")
		}
		again, intact2 := Scan(data[:intact])
		if intact2 != intact || len(again) != len(records) {
			t.Fatalf("Scan is not a fixed point on its own intact prefix")
		}
	})
}

// FuzzOpenRepairs checks the full Open path on arbitrary on-disk
// content: it must always succeed, and the file afterwards must be the
// clean intact prefix — so two crashed runs in a row cannot compound.
func FuzzOpenRepairs(f *testing.F) {
	f.Add([]byte("rec1\nrec2\ntorn"))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', '\n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "store")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		onDisk, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		_, intact := Scan(data)
		if !bytes.Equal(onDisk, data[:intact]) {
			t.Fatalf("Open left %q on disk, want the intact prefix %q", onDisk, data[:intact])
		}
		if err := s.Append([]byte("after")); err != nil {
			t.Fatal(err)
		}
		records, dropped, err := Load(path)
		if err != nil || dropped != 0 {
			t.Fatalf("store dirty after repair+append: dropped=%d err=%v", dropped, err)
		}
		if len(records) != len(s.Records()) {
			t.Fatalf("reload sees %d records, store has %d", len(records), len(s.Records()))
		}
	})
}
