// Package checkpoint is a crash-safe JSONL record store for sharded
// campaign results. A store is a single file of newline-terminated
// records (one campaign shard record per line, see campaign's shard wire
// format) with two guarantees the sharded execution layer is built on:
//
//   - Atomic appends. Append rewrites the whole file through
//     internal/atomicio (temp file, fsync, rename, directory fsync), so
//     at every instant the path holds a complete, valid JSONL prefix of
//     the record history — a SIGKILL mid-append loses at most the record
//     being appended, never earlier ones, and never leaves a torn file.
//     Checkpoint files are small (one ~kB line per campaign point), so
//     the O(records²) bytes rewritten over a shard's life are noise next
//     to the Monte-Carlo work each record represents.
//
//   - Corruption-tolerant loads. Load never fails on damaged content: it
//     returns the longest prefix of intact records and stops at the
//     first bad line (torn tail from a foreign writer, truncation, bit
//     rot — anything that is not a complete newline-terminated line).
//     Deeper validation (CRC, spec hash) belongs to the record format
//     layered on top; the store only guarantees line integrity, so a
//     resumed run re-executes damaged work instead of aborting.
//
// Open combines the two: it loads the intact prefix and, if anything was
// discarded, immediately rewrites the file to that clean prefix so the
// on-disk state and the in-memory state agree from then on.
package checkpoint

import (
	"bytes"
	"fmt"
	"os"

	"ctsan/internal/atomicio"
	"ctsan/internal/obs"
)

// Store is an append-only JSONL record file. It is not safe for
// concurrent use by multiple goroutines or processes; the sharded
// campaign layer gives every shard its own store file.
type Store struct {
	path string
	// content is the exact current file content: every intact record,
	// newline-terminated.
	content []byte
	// records indexes content line by line (without the newline).
	records [][]byte
	// dropped reports how many bytes of damaged tail Open discarded.
	dropped int
}

// Open opens (or creates) the store at path, keeping the longest intact
// record prefix and truncating any damaged tail on disk. A missing file
// is an empty store, ready to append.
func Open(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	records, intact := Scan(data)
	s := &Store{path: path, records: records, dropped: len(data) - intact}
	s.content = append(s.content, data[:intact]...)
	if s.dropped > 0 {
		// Repair now: rewrite the clean prefix atomically so a second
		// crash cannot stack new corruption on old.
		if err := atomicio.WriteFile(path, s.content, 0o644); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Load reads the store at path without opening it for writing: the
// intact records and the number of damaged tail bytes that were ignored.
// A missing file loads as zero records.
func Load(path string) (records [][]byte, droppedBytes int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("checkpoint: %w", err)
	}
	records, intact := Scan(data)
	return records, len(data) - intact, nil
}

// Scan splits raw store content into intact records. A record is intact
// iff it is a non-empty line terminated by '\n'; scanning stops at the
// first violation (an unterminated tail, or an empty line — this store
// never writes one, so it marks foreign damage). It returns the records
// and the byte length of the intact prefix.
func Scan(data []byte) (records [][]byte, intact int) {
	for intact < len(data) {
		nl := bytes.IndexByte(data[intact:], '\n')
		if nl < 0 {
			break // torn tail: record was being written when the process died
		}
		if nl == 0 {
			break // empty line: not a record this store could have produced
		}
		records = append(records, data[intact:intact+nl])
		intact += nl + 1
	}
	return records, intact
}

// Records returns the intact records, oldest first. The slices alias the
// store's buffer; callers must not modify them.
func (s *Store) Records() [][]byte { return s.records }

// Dropped reports how many damaged tail bytes Open discarded (0 for a
// clean file).
func (s *Store) Dropped() int { return s.dropped }

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Append durably adds one record: the new content is written to a temp
// file, fsynced, and renamed over the store path, so the append is
// all-or-nothing even against SIGKILL. The record must be non-empty and
// must not contain a newline (it is the line framing).
func (s *Store) Append(record []byte) error {
	if len(record) == 0 {
		return fmt.Errorf("checkpoint: empty record")
	}
	if bytes.IndexByte(record, '\n') >= 0 {
		return fmt.Errorf("checkpoint: record contains a newline")
	}
	return s.AppendBatch([][]byte{record})
}

// AppendBatch durably adds records as one atomic write: all of them land
// or none do. It exists for bulk writers — the result-cache spill
// persists whole LRU generations — where per-record Append would pay one
// full rewrite-and-fsync each. Every record must satisfy the Append
// rules (non-empty, no newline); a batch with an invalid record writes
// nothing.
func (s *Store) AppendBatch(records [][]byte) error {
	if len(records) == 0 {
		return nil
	}
	n := len(s.content)
	for _, record := range records {
		if len(record) == 0 {
			return fmt.Errorf("checkpoint: empty record")
		}
		if bytes.IndexByte(record, '\n') >= 0 {
			return fmt.Errorf("checkpoint: record contains a newline")
		}
		n += len(record) + 1
	}
	next := make([]byte, 0, n)
	next = append(next, s.content...)
	offsets := make([]int, 0, len(records))
	for _, record := range records {
		offsets = append(offsets, len(next))
		next = append(next, record...)
		next = append(next, '\n')
	}
	if err := atomicio.WriteFile(s.path, next, 0o644); err != nil {
		return err
	}
	s.content = next
	for i, record := range records {
		s.records = append(s.records, next[offsets[i]:offsets[i]+len(record)])
	}
	obs.CheckpointAppends.Add(int64(len(records)))
	return nil
}
