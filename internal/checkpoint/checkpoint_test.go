package checkpoint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte(`{"i":0}`), []byte(`{"i":1}`), []byte(`{"i":2}`)}
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	check := func(records [][]byte) {
		t.Helper()
		if len(records) != len(want) {
			t.Fatalf("got %d records, want %d", len(records), len(want))
		}
		for i := range want {
			if !bytes.Equal(records[i], want[i]) {
				t.Fatalf("record %d = %q, want %q", i, records[i], want[i])
			}
		}
	}
	check(s.Records())
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	check(re.Records())
	if re.Dropped() != 0 {
		t.Fatalf("clean file reported %d dropped bytes", re.Dropped())
	}
}

func TestOpenMissingFileIsEmpty(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Records()) != 0 || s.Dropped() != 0 {
		t.Fatal("missing file must open as an empty store")
	}
	if err := s.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	// Simulate a SIGKILL mid-write from a non-atomic writer: two complete
	// records and a torn third line with no newline.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if err := os.WriteFile(path, []byte("{\"i\":0}\n{\"i\":1}\n{\"i\":2,\"part"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Records()) != 2 {
		t.Fatalf("got %d records, want the 2 intact ones", len(s.Records()))
	}
	if s.Dropped() == 0 {
		t.Fatal("torn tail not reported")
	}
	// Open must have repaired the file on disk.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\"i\":0}\n{\"i\":1}\n" {
		t.Fatalf("file not repaired to the intact prefix: %q", data)
	}
	// Appending after repair extends the clean prefix.
	if err := s.Append([]byte(`{"i":2}`)); err != nil {
		t.Fatal(err)
	}
	re, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(re) != 3 {
		t.Fatalf("after repair+append got %d records", len(re))
	}
}

func TestOpenStopsAtEmptyLine(t *testing.T) {
	// An empty line is damage (the store never writes one): everything
	// from it on is discarded, even if later lines look whole.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if err := os.WriteFile(path, []byte("a\n\nb\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Records()) != 1 || string(s.Records()[0]) != "a" {
		t.Fatalf("records = %q, want just [a]", s.Records())
	}
}

func TestAppendRejectsUnframeableRecords(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "c"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if err := s.Append([]byte("a\nb")); err == nil {
		t.Fatal("record with newline accepted")
	}
}

func TestAppendIsAtomicAgainstReaders(t *testing.T) {
	// After every append, a fresh Load sees a complete record set — never
	// a torn line — because the store replaces the file via rename.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Append([]byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
		records, dropped, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if dropped != 0 || len(records) != i+1 {
			t.Fatalf("after append %d: %d records, %d dropped", i, len(records), dropped)
		}
	}
}
