package scenario

import (
	"fmt"
	"sort"
	"sync"

	"ctsan/internal/dist"
	"ctsan/internal/neko"
)

// The registry maps names to scenario builders. Builders (not values) are
// registered so every Get returns a fresh Scenario the caller may mutate.
var (
	regMu    sync.Mutex
	registry = map[string]func() *Scenario{}
)

// Register adds a named scenario builder. The built scenario's Name must
// match the registered name and carry a non-empty Doc. Re-registering a
// name panics: built-ins must stay unambiguous.
func Register(name string, build func() *Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", name))
	}
	registry[name] = build
}

// Get returns a fresh instance of the named scenario.
func Get(name string) (*Scenario, error) {
	regMu.Lock()
	build, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (known: %v)", name, Names())
	}
	return build(), nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Info is the registry listing of one scenario as plain data: what a
// catalog UI (or the campaign service's /api/v1/scenarios endpoint)
// needs to present the built-ins without constructing or executing
// anything. The effective heartbeat period is materialized (PeriodTh is
// 0.7·TimeoutT when unset), so consumers need no scenario-layer
// defaulting rules.
type Info struct {
	Name           string           `json:"name"`
	Doc            string           `json:"doc"`
	N              int              `json:"n"`
	Executions     int              `json:"executions"`
	Gap            float64          `json:"gap_ms"`
	TimeoutT       float64          `json:"timeout_t_ms,omitempty"`
	PeriodTh       float64          `json:"period_th_ms,omitempty"`
	InitialCrashed []neko.ProcessID `json:"initial_crashed,omitempty"`
	Events         int              `json:"events"`
}

// List returns the registry as data, in Names() order: one Info per
// registered scenario.
func List() []Info {
	names := Names()
	out := make([]Info, 0, len(names))
	for _, name := range names {
		s, err := Get(name)
		if err != nil {
			continue // raced deregistration cannot happen for built-ins
		}
		info := Info{
			Name:           s.Name,
			Doc:            s.Doc,
			N:              s.N,
			Executions:     s.Executions,
			Gap:            s.Gap,
			TimeoutT:       s.TimeoutT,
			PeriodTh:       s.PeriodTh,
			InitialCrashed: s.InitialCrashed,
			Events:         len(s.Events),
		}
		if info.TimeoutT > 0 && info.PeriodTh == 0 {
			info.PeriodTh = 0.7 * info.TimeoutT
		}
		out = append(out, info)
	}
	return out
}

// Built-in scenarios. Each reproduces or extends a condition the paper
// measures; docs cite the section the phenomenon comes from.
func init() {
	Register("paper-baseline", func() *Scenario {
		return New("paper-baseline", 3).
			WithExecutions(400).
			WithDoc("§4 class-1 methodology: n=3, no faults, oracle FD, 10 ms gaps; " +
				"mean latency must reproduce the §5.2 measurement (~1.06 ms)")
	})

	Register("crash-n3-anomaly", func() *Scenario {
		return New("crash-n3-anomaly", 3).
			WithExecutions(400).
			WithInitialCrash(2).
			WithDoc("§5.3/Table 1: participant p2 crashed from the start at n=3 — the one case " +
				"where a participant crash *increases* measured latency, because the failed " +
				"unicast to p2 delays the later unicast of the same broadcast")
	})

	Register("rolling-crash", func() *Scenario {
		s := New("rolling-crash", 5).
			WithExecutions(350).
			WithHeartbeat(30, 0).
			WithDoc("crash churn: p2, p3, p4 crash and recover one after another under a live " +
				"heartbeat FD (T=30 ms) — detection transients and re-trust on every cycle " +
				"(the §6 'transient behavior after crashes' extension, repeated)")
		s.Crash(400, 2).Recover(900, 2)
		s.Crash(1400, 3).Recover(1900, 3)
		s.Crash(2400, 4).Recover(2900, 4)
		return s
	})

	Register("split-brain", func() *Scenario {
		s := New("split-brain", 5).
			WithExecutions(250).
			WithHeartbeat(30, 0).
			WithDoc("network partition {p1,p2} | {p3,p4,p5} during [500,1100) ms: the minority " +
				"side cannot decide, the majority side keeps deciding after suspecting the " +
				"minority; on heal the wrong suspicions clear — the correlated-mistake regime " +
				"the independent-FD SAN model cannot capture (§5.4)")
		s.Partition(500, []neko.ProcessID{1, 2}, []neko.ProcessID{3, 4, 5})
		s.Heal(1100)
		return s
	})

	Register("gc-storm", func() *Scenario {
		s := New("gc-storm", 3).
			WithExecutions(300).
			WithHeartbeat(20, 0).
			WithDoc("whole-host pause storm on every host during [300,1200) ms (inter-arrival " +
				"Exp(60), duration U[5,30]) — GC-like freezes starve heartbeat senders and " +
				"produce the correlated wrong suspicions of §5.4")
		s.PauseStorm(300, 1200, 0, dist.Exp(60), dist.U(5, 30))
		return s
	})

	Register("burst-load", func() *Scenario {
		s := New("burst-load", 3).
			WithExecutions(400).
			WithHeartbeat(20, 0).
			WithDoc("workload burst: execution gap drops from 10 ms to 2 ms during [400,1200) " +
				"ms, then relaxes to 15 ms — load-induced contention moves both latency and " +
				"FD QoS, the coupling the paper measures via T_exp (§4)")
		s.WorkloadPhase(400, "burst", 2)
		s.WorkloadPhase(1200, "calm", 15)
		return s
	})

	Register("flaky-link", func() *Scenario {
		s := New("flaky-link", 3).
			WithExecutions(300).
			WithHeartbeat(20, 0).
			WithDoc("asymmetric link degradation: p1→p2 and p2→p1 lose 5% of frames and pay " +
				"Exp(2) ms extra latency during [300,1200) ms — heartbeat gaps on one link " +
				"cause localized wrong suspicions without global contention")
		s.DegradeLink(300, 1200, 1, 2, dist.Exp(2), 0.05)
		s.DegradeLink(300, 1200, 2, 1, dist.Exp(2), 0.05)
		return s
	})
}
