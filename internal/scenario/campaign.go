package scenario

import (
	"context"
	"fmt"

	"ctsan/internal/experiment"
	"ctsan/internal/metrics"
	"ctsan/internal/parallel"
	"ctsan/internal/rng"
)

// CampaignSpec fans a scenario × replica grid across the worker pool.
type CampaignSpec struct {
	Scenarios []*Scenario
	// Replicas is the number of independent replicas per scenario
	// (default 1). Replica r of scenario s draws from a child stream
	// keyed by the flat grid index, so the campaign is bit-identical at
	// any worker count.
	Replicas int
	// Executions overrides every scenario's per-replica execution count
	// (0 keeps each scenario's own default).
	Executions int
	// Workers caps the goroutines (<= 0: one per CPU, 1: serial).
	Workers int
	// Seed is the campaign root seed.
	Seed uint64
	// MaxRounds / Deadline pass through to RunConfig (0 = defaults).
	MaxRounds int
	Deadline  float64
}

// Report aggregates all replicas of one scenario.
type Report struct {
	Scenario string `json:"scenario"`
	Doc      string `json:"doc,omitempty"`
	Replicas int    `json:"replicas"`
	// Decided / Aborted count executions across all replicas.
	Decided int `json:"decided"`
	Aborted int `json:"aborted"`
	// Latency percentiles and moments over all decided executions, ms.
	Mean float64 `json:"mean_ms"`
	CI90 float64 `json:"ci90_ms"`
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	Max  float64 `json:"max_ms"`
	// DecisionsPerSec is the decision throughput over total simulated
	// time; Texp that total time (ms).
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	Texp            float64 `json:"texp_ms"`
	// Suspicion accounting across replicas: total trust→suspect
	// transitions, how many were wrong (subject was up), and the wrong
	// rate per second of simulated time.
	Suspicions      int     `json:"suspicions"`
	WrongSuspicions int     `json:"wrong_suspicions"`
	WrongSuspPerSec float64 `json:"wrong_susp_per_sec"`
	// TMR / TM are the mean Chen et al. QoS metrics across replicas
	// (heartbeat scenarios; 0 otherwise).
	TMR float64 `json:"tmr_ms,omitempty"`
	TM  float64 `json:"tm_ms,omitempty"`
	// DESEvents is the total discrete-event count (cost metric).
	DESEvents uint64 `json:"des_events"`

	// Digest holds the streaming latency statistics (moments and
	// quantiles) merged across all replicas in grid order, for
	// programmatic use; it is not part of the JSON report schema. It
	// subsumes the raw per-execution latency slice earlier revisions
	// retained here: below the exact cap its quantiles are bit-identical
	// to the old sort-the-slice path, and Digest.Exact still exposes the
	// ordered samples.
	Digest metrics.Digest `json:"-"`
}

// RunCampaign executes every (scenario, replica) pair of the grid on the
// deterministic worker pool and folds per-scenario reports in grid order.
// It is a thin adapter over RunCampaignContext with a background context,
// kept for call sites that have no context to thread.
func RunCampaign(spec CampaignSpec) ([]*Report, error) {
	return RunCampaignContext(context.Background(), spec)
}

// RunCampaignContext is the campaign core. Results are bit-identical at
// any worker count: each (scenario, replica) pair owns a child random
// stream keyed by its flat grid index, and the fold is serial. ctx
// cancels between grid units; a canceled campaign returns ctx.Err().
//
// The spec is validated up front: an empty scenario list, a non-positive
// replica count, a negative execution override, and invalid scenarios all
// fail with a descriptive error instead of silently producing an empty
// report.
func RunCampaignContext(ctx context.Context, spec CampaignSpec) ([]*Report, error) {
	if len(spec.Scenarios) == 0 {
		return nil, fmt.Errorf("scenario: campaign with no scenarios (nothing to run)")
	}
	if spec.Replicas == 0 {
		spec.Replicas = 1
	}
	if spec.Replicas < 1 {
		return nil, fmt.Errorf("scenario: need at least 1 replica per scenario, got %d", spec.Replicas)
	}
	if spec.Executions < 0 {
		return nil, fmt.Errorf("scenario: negative execution override %d", spec.Executions)
	}
	for i, s := range spec.Scenarios {
		if s == nil {
			return nil, fmt.Errorf("scenario: campaign scenario %d is nil", i)
		}
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	seeds := rng.New(spec.Seed ^ 0xca3faa16)
	units := len(spec.Scenarios) * spec.Replicas
	// Each worker owns one reusable replica assembly (cluster, stacks,
	// engines, detectors) and rewinds it per grid unit instead of
	// constructing per replica; it is rebuilt only when the worker moves
	// to a different scenario. Reused and fresh assemblies are
	// bit-identical (see replica.run), so the campaign stays
	// deterministic at any worker count.
	cache := make([]*replica, parallel.Workers(spec.Workers))
	results, err := parallel.Map(ctx, spec.Workers, units, func(w, i int) (*Result, error) {
		s := spec.Scenarios[i/spec.Replicas]
		rep := cache[w]
		if rep == nil || rep.s != s {
			var err error
			rep, err = newReplica(s, RunConfig{
				Executions: spec.Executions,
				MaxRounds:  spec.MaxRounds,
				Deadline:   spec.Deadline,
			})
			if err != nil {
				return nil, err
			}
			cache[w] = rep
		}
		return rep.run(seeds.Child(uint64(i)).Uint64())
	})
	if err != nil {
		return nil, err
	}
	reports := make([]*Report, len(spec.Scenarios))
	for si, s := range spec.Scenarios {
		rep := &Report{Scenario: s.Name, Doc: s.Doc, Replicas: spec.Replicas}
		var tmr, tm float64
		// Merge per-replica digests serially in grid order: exact-mode
		// merges replay samples, so the report statistics are bit-identical
		// to the historical fold over the concatenated latency slice (and
		// to any worker count).
		for ri := 0; ri < spec.Replicas; ri++ {
			res := results[si*spec.Replicas+ri]
			rep.Digest.Merge(&res.Digest)
			rep.Decided += res.Decided
			rep.Aborted += res.Aborted
			rep.Texp += res.Texp
			rep.Suspicions += res.Suspicions
			rep.WrongSuspicions += res.WrongSuspicions
			rep.DESEvents += res.Events
			tmr += res.QoS.TMR
			tm += res.QoS.TM
		}
		ps := rep.Digest.Quantiles(0.50, 0.90, 0.99)
		rep.Mean = rep.Digest.Mean()
		rep.CI90 = rep.Digest.CI(0.90)
		rep.P50, rep.P90, rep.P99 = ps[0], ps[1], ps[2]
		rep.Max = rep.Digest.Max()
		if rep.Texp > 0 {
			rep.DecisionsPerSec = float64(rep.Decided) / rep.Texp * 1000
			rep.WrongSuspPerSec = float64(rep.WrongSuspicions) / rep.Texp * 1000
		}
		if s.TimeoutT > 0 {
			rep.TMR = tmr / float64(spec.Replicas)
			rep.TM = tm / float64(spec.Replicas)
		}
		reports[si] = rep
	}
	return reports, nil
}

// ReportTable renders campaign reports as an aligned text table using the
// experiment report machinery.
func ReportTable(reports []*Report) *experiment.Table {
	t := &experiment.Table{
		ID:    "SCENARIO",
		Title: "scenario campaign: latency, wrong suspicions, decision throughput",
		Header: []string{"scenario", "decided", "aborted", "mean[ms]", "p50", "p90", "p99",
			"dec/s", "wrong-susp", "wrong/s"},
	}
	for _, r := range reports {
		t.Rows = append(t.Rows, []string{
			r.Scenario,
			fmt.Sprintf("%d", r.Decided),
			fmt.Sprintf("%d", r.Aborted),
			fmt.Sprintf("%.3f", r.Mean),
			fmt.Sprintf("%.3f", r.P50),
			fmt.Sprintf("%.3f", r.P90),
			fmt.Sprintf("%.3f", r.P99),
			fmt.Sprintf("%.1f", r.DecisionsPerSec),
			fmt.Sprintf("%d/%d", r.WrongSuspicions, r.Suspicions),
			fmt.Sprintf("%.2f", r.WrongSuspPerSec),
		})
	}
	return t
}
