package scenario

import (
	"context"
	"fmt"
	"io"

	"ctsan/internal/parallel"
	"ctsan/internal/rng"
	"ctsan/internal/trace"
)

// TraceSpec configures a traced campaign of one scenario: the replicas
// run exactly as a CampaignSpec campaign of that single scenario would —
// the same per-replica seed derivation, the same grid order — so trace
// replica i is the execution behind replica i of `cmd/scenario run` at
// the same seed.
type TraceSpec struct {
	Scenario *Scenario
	// Replicas is the number of traced replicas (default 1).
	Replicas int
	// Executions overrides the scenario's per-replica execution count.
	Executions int
	// Workers caps the goroutines (<= 0: one per CPU, 1: serial). The
	// traces are bit-identical at any worker count (determinism rule 6).
	Workers int
	// Seed is the campaign root seed.
	Seed uint64
	// MaxRounds / Deadline pass through to RunConfig (0 = defaults).
	MaxRounds int
	Deadline  float64
	// Cap bounds each replica's trace ring (0 = trace.DefaultCap). When a
	// replica emits more events than Cap the oldest are dropped and the
	// JSONL dump carries a truncation meta line.
	Cap int
}

// TracedReplica is one replica's traced outcome: Result.Trace holds the
// captured event window and Result.Wrong the ground-truthed wrong
// suspicions it can explain.
type TracedReplica struct {
	Replica int
	Seed    uint64
	Result  *Result
}

// RunTraced executes every replica of the spec with tracing enabled.
// Each worker owns one reusable replica assembly plus one trace ring,
// both rewound per replica, so the traced campaign allocates per replica
// only the end-of-run snapshot.
func RunTraced(ctx context.Context, spec TraceSpec) ([]*TracedReplica, error) {
	if spec.Scenario == nil {
		return nil, fmt.Errorf("scenario: traced run with no scenario")
	}
	if err := spec.Scenario.Validate(); err != nil {
		return nil, err
	}
	if spec.Replicas == 0 {
		spec.Replicas = 1
	}
	if spec.Replicas < 1 {
		return nil, fmt.Errorf("scenario: need at least 1 replica, got %d", spec.Replicas)
	}
	// The same derivation as RunCampaignContext with this scenario as the
	// whole grid: flat unit index == replica index.
	seeds := rng.New(spec.Seed ^ 0xca3faa16)
	type workerState struct {
		rep *replica
		tr  *trace.Tracer
	}
	cache := make([]*workerState, parallel.Workers(spec.Workers))
	results, err := parallel.Map(ctx, spec.Workers, spec.Replicas, func(w, i int) (*TracedReplica, error) {
		ws := cache[w]
		if ws == nil {
			ws = &workerState{tr: trace.New(spec.Cap)}
			rep, err := newReplica(spec.Scenario, RunConfig{
				Executions: spec.Executions,
				MaxRounds:  spec.MaxRounds,
				Deadline:   spec.Deadline,
				Tracer:     ws.tr,
			})
			if err != nil {
				return nil, err
			}
			ws.rep = rep
			cache[w] = ws
		}
		seed := seeds.Child(uint64(i)).Uint64()
		res, err := ws.rep.run(seed)
		if err != nil {
			return nil, err
		}
		return &TracedReplica{Replica: i, Seed: seed, Result: res}, nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// explainRelevant reports whether e belongs in the causal window printed
// for a wrong suspicion by observer p of subject q: cluster-wide fault
// and workload injections, the suspicion lifecycle of the pair, q's
// heartbeat emissions, p's receptions from q, and message traffic
// between the pair. Kernel bookkeeping (schedule/fire) and unrelated
// pairs stay out.
func explainRelevant(e trace.Event, p, q int32) bool {
	switch e.Kind {
	case trace.KindCrash, trace.KindRecover, trace.KindPartition, trace.KindHeal,
		trace.KindLinkSet, trace.KindLinkClear, trace.KindPhase:
		return true
	case trace.KindPause:
		return e.P == p || e.P == q
	case trace.KindSuspect, trace.KindTrust:
		return e.P == p && e.Q == q
	case trace.KindHBEmit:
		return e.P == q
	case trace.KindHBRecv:
		return e.P == p && e.Q == q
	case trace.KindSend, trace.KindDeliver, trace.KindDrop:
		return (e.P == p && e.Q == q) || (e.P == q && e.Q == p)
	default:
		return false
	}
}

// WriteExplain prints the causal event window around every wrong
// suspicion of a traced replica: windowMS milliseconds of filtered trace
// before each suspicion (plus a quarter window after, so the clearing
// trust event usually shows). It returns the number of wrong suspicions
// explained.
func WriteExplain(w io.Writer, rep *TracedReplica, windowMS float64) (int, error) {
	res := rep.Result
	if len(res.Wrong) == 0 {
		return 0, nil
	}
	if windowMS <= 0 {
		windowMS = 50
	}
	tr := res.Trace
	for wi, ws := range res.Wrong {
		_, err := fmt.Fprintf(w, "replica %d (seed %d) wrong suspicion %d/%d: p%d suspected p%d at %.6f ms (p%d was up)\n",
			rep.Replica, rep.Seed, wi+1, len(res.Wrong), ws.P, ws.Q, ws.At, ws.Q)
		if err != nil {
			return wi, err
		}
		if tr.Dropped > 0 && (len(tr.Events) == 0 || tr.Events[0].T > ws.At-windowMS) {
			if _, err := fmt.Fprintf(w, "  (ring dropped %d earlier events; window may be truncated — raise -cap)\n", tr.Dropped); err != nil {
				return wi, err
			}
		}
		p, q := int32(ws.P), int32(ws.Q)
		printed := 0
		for _, e := range tr.Window(ws.At-windowMS, ws.At+windowMS/4) {
			if !explainRelevant(e, p, q) {
				continue
			}
			marker := "  "
			if e.Kind == trace.KindSuspect && e.P == p && e.Q == q && e.T == ws.At {
				marker = "> "
			}
			if _, err := fmt.Fprintf(w, "  %s%s\n", marker, e.String()); err != nil {
				return wi, err
			}
			printed++
		}
		if printed == 0 {
			if _, err := fmt.Fprintln(w, "    (no relevant events in window)"); err != nil {
				return wi, err
			}
		}
	}
	return len(res.Wrong), nil
}
