// Package scenario is the declarative fault- and workload-injection layer
// of the repository: a timeline of adverse conditions — process crashes
// and recoveries, network partitions and heals, per-link degradation,
// pause storms, workload phases — compiled onto the emulated cluster
// (internal/netsim) and driven through consensus measurement campaigns.
//
// The paper's central claim (§5.4) is that correlated real-world faults
// move consensus latency and failure-detector QoS in ways an
// independent-FD analytical model cannot capture. The seed repository
// could express exactly two such phenomena (a static crash list and
// background pauses); this package gives every phenomenon the cluster can
// emulate a single declarative surface:
//
//   - a Scenario is a value: build one with New and the fluent builder
//     methods, or load one from JSON (LoadJSON);
//   - Run executes one replica of a scenario and reports latencies,
//     wrong-suspicion counts and decision throughput;
//   - RunCampaign fans a scenario × replica grid across CPUs via
//     internal/parallel with bit-identical results at any worker count;
//   - the registry (Get, Names, Register) holds named built-ins —
//     paper-baseline, crash-n3-anomaly, rolling-crash, split-brain,
//     gc-storm, burst-load, flaky-link — exercised by cmd/scenario.
//
// All times are float64 milliseconds of global simulated time, as
// everywhere in the repository.
package scenario

import (
	"fmt"
	"math"

	"ctsan/internal/dist"
	"ctsan/internal/neko"
)

// Kind enumerates the event types a scenario timeline can contain.
type Kind string

const (
	// KindCrash crashes process P at time At.
	KindCrash Kind = "crash"
	// KindRecover recovers process P at time At (restarting its stack).
	KindRecover Kind = "recover"
	// KindPartition splits the cluster into Groups at time At; unlisted
	// processes form one implicit group of their own.
	KindPartition Kind = "partition"
	// KindHeal removes the partition at time At.
	KindHeal Kind = "heal"
	// KindLink installs a degradation rule on the directed link From→To
	// at time At: loss probability Loss and added latency Extra. If Until
	// is set (> At), the rule is removed again at Until.
	KindLink Kind = "link"
	// KindLinkClear removes the rule on From→To at time At.
	KindLinkClear Kind = "link-clear"
	// KindPauseStorm freezes host P (0 = every host) repeatedly in the
	// window [At, Until): pauses recur with inter-arrival Every and last
	// Dur each — a GC / IRQ storm.
	KindPauseStorm Kind = "pause-storm"
	// KindWorkload switches the workload phase at time At: from then on
	// consensus executions start Gap milliseconds apart. Label names the
	// phase (netsim.PhaseAt observers see it).
	KindWorkload Kind = "workload"
)

// Event is one entry of a scenario timeline. Exactly the fields its Kind
// documents are meaningful; the flat shape keeps timelines JSON-loadable
// and diffable. Times are global simulated milliseconds.
type Event struct {
	Kind Kind    `json:"kind"`
	At   float64 `json:"at"`
	// AtJitter, when non-nil, is sampled once per replica and added to At
	// — the distribution-drawn form of injection instants. Different
	// replicas draw different instants; a given replica is deterministic
	// in its seed.
	AtJitter dist.Dist          `json:"-"`
	Until    float64            `json:"until,omitempty"`
	P        neko.ProcessID     `json:"p,omitempty"`
	From     neko.ProcessID     `json:"from,omitempty"`
	To       neko.ProcessID     `json:"to,omitempty"`
	Groups   [][]neko.ProcessID `json:"groups,omitempty"`
	Every    dist.Dist          `json:"-"`
	Dur      dist.Dist          `json:"-"`
	Extra    dist.Dist          `json:"-"`
	Loss     float64            `json:"loss,omitempty"`
	Gap      float64            `json:"gap,omitempty"`
	Label    string             `json:"label,omitempty"`
}

// Scenario is a declarative description of one adverse-condition
// experiment: the cluster shape, the failure-detector configuration, the
// workload, and a timeline of injections. Scenarios are plain values —
// build them with New and the fluent methods, load them from JSON, or
// fetch named built-ins from the registry.
type Scenario struct {
	Name string `json:"name"`
	// Doc is a short human description (the registry requires one).
	Doc string `json:"doc,omitempty"`
	// N is the number of processes (paper: odd 3..11).
	N int `json:"n"`
	// Executions is the default number of consensus executions per
	// replica (RunConfig may override).
	Executions int `json:"executions,omitempty"`
	// Gap is the initial separation between execution starts in ms
	// (default 10, §4); workload events change it mid-run.
	Gap float64 `json:"gap,omitempty"`
	// TimeoutT enables the real heartbeat failure detector with timeout T
	// ms; 0 selects the perfect oracle detector (which suspects exactly
	// the initially crashed processes, §2.4 class 2).
	TimeoutT float64 `json:"timeout_t,omitempty"`
	// PeriodTh is the heartbeat period (0 = 0.7·T, §5.4).
	PeriodTh float64 `json:"period_th,omitempty"`
	// InitialCrashed lists processes down from the very beginning.
	InitialCrashed []neko.ProcessID `json:"initial_crashed,omitempty"`
	// PauseEvery/PauseDur enable background whole-host pauses (netsim
	// params); nil keeps them disabled.
	PauseEvery dist.Dist `json:"-"`
	PauseDur   dist.Dist `json:"-"`
	// Events is the injection timeline.
	Events []Event `json:"events,omitempty"`
}

// New starts a scenario for n processes with the paper's defaults: 10 ms
// execution gap, perfect oracle failure detector, no injections.
func New(name string, n int) *Scenario {
	return &Scenario{Name: name, N: n, Gap: 10, Executions: 200}
}

// WithDoc sets the one-line description.
func (s *Scenario) WithDoc(doc string) *Scenario { s.Doc = doc; return s }

// WithExecutions sets the default executions per replica.
func (s *Scenario) WithExecutions(k int) *Scenario { s.Executions = k; return s }

// WithHeartbeat selects the real heartbeat failure detector with timeout
// T (ms). Period 0 means 0.7·T.
func (s *Scenario) WithHeartbeat(timeoutT, periodTh float64) *Scenario {
	s.TimeoutT, s.PeriodTh = timeoutT, periodTh
	return s
}

// WithInitialCrash marks processes as crashed from the very beginning
// (§2.4 class-2 runs). Under the oracle detector they are suspected from
// the start.
func (s *Scenario) WithInitialCrash(ps ...neko.ProcessID) *Scenario {
	s.InitialCrashed = append(s.InitialCrashed, ps...)
	return s
}

// WithBackgroundPauses enables netsim's background whole-host pauses.
func (s *Scenario) WithBackgroundPauses(every, dur dist.Dist) *Scenario {
	s.PauseEvery, s.PauseDur = every, dur
	return s
}

// Crash schedules a crash of p at time at.
func (s *Scenario) Crash(at float64, p neko.ProcessID) *Scenario {
	return s.add(Event{Kind: KindCrash, At: at, P: p})
}

// Recover schedules the recovery of p at time at.
func (s *Scenario) Recover(at float64, p neko.ProcessID) *Scenario {
	return s.add(Event{Kind: KindRecover, At: at, P: p})
}

// Partition splits the cluster into the given groups at time at.
func (s *Scenario) Partition(at float64, groups ...[]neko.ProcessID) *Scenario {
	return s.add(Event{Kind: KindPartition, At: at, Groups: groups})
}

// Heal removes the partition at time at.
func (s *Scenario) Heal(at float64) *Scenario {
	return s.add(Event{Kind: KindHeal, At: at})
}

// DegradeLink degrades the directed link from→to during [at, until):
// frames are dropped with probability loss and survivors delayed by an
// extra sample (nil = none). until 0 leaves the rule in force forever.
func (s *Scenario) DegradeLink(at, until float64, from, to neko.ProcessID, extra dist.Dist, loss float64) *Scenario {
	return s.add(Event{Kind: KindLink, At: at, Until: until, From: from, To: to, Extra: extra, Loss: loss})
}

// PauseStorm freezes host p (0 = every host) repeatedly during
// [at, until): pause starts recur with inter-arrival every, each pause
// lasting a dur sample.
func (s *Scenario) PauseStorm(at, until float64, p neko.ProcessID, every, dur dist.Dist) *Scenario {
	return s.add(Event{Kind: KindPauseStorm, At: at, Until: until, P: p, Every: every, Dur: dur})
}

// WorkloadPhase switches the execution gap to gap ms at time at. The
// phase name is visible to netsim.OnPhase observers.
func (s *Scenario) WorkloadPhase(at float64, name string, gap float64) *Scenario {
	return s.add(Event{Kind: KindWorkload, At: at, Gap: gap, Label: name})
}

// Jitter attaches a drawn offset to the most recently added event: its
// injection instant becomes At + sample(d), drawn once per replica.
func (s *Scenario) Jitter(d dist.Dist) *Scenario {
	if len(s.Events) == 0 {
		panic("scenario: Jitter with no preceding event")
	}
	s.Events[len(s.Events)-1].AtJitter = d
	return s
}

func (s *Scenario) add(e Event) *Scenario {
	s.Events = append(s.Events, e)
	return s
}

// Horizon returns the latest fixed instant named by the timeline (event
// times and window ends), ignoring jitter. Purely informational.
func (s *Scenario) Horizon() float64 {
	h := 0.0
	for _, e := range s.Events {
		h = math.Max(h, math.Max(e.At, e.Until))
	}
	return h
}

// Validate checks the scenario for structural errors: out-of-range
// processes, malformed windows, kind-specific field misuse.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if s.N < 2 {
		return fmt.Errorf("scenario %s: need n >= 2, got %d", s.Name, s.N)
	}
	if s.Gap <= 0 {
		return fmt.Errorf("scenario %s: non-positive gap %g", s.Name, s.Gap)
	}
	if s.TimeoutT < 0 || (s.PeriodTh != 0 && s.TimeoutT == 0) {
		return fmt.Errorf("scenario %s: heartbeat period without timeout", s.Name)
	}
	if len(s.InitialCrashed) >= (s.N+1)/2 {
		return fmt.Errorf("scenario %s: %d initial crashes violate the majority-correct requirement for n=%d",
			s.Name, len(s.InitialCrashed), s.N)
	}
	inRange := func(p neko.ProcessID) bool { return p >= 1 && int(p) <= s.N }
	for _, p := range s.InitialCrashed {
		if !inRange(p) {
			return fmt.Errorf("scenario %s: initial crash of p%d out of range 1..%d", s.Name, p, s.N)
		}
	}
	for i, e := range s.Events {
		bad := func(format string, args ...any) error {
			return fmt.Errorf("scenario %s event %d (%s): %s", s.Name, i, e.Kind, fmt.Sprintf(format, args...))
		}
		if e.At < 0 {
			return bad("negative time %g", e.At)
		}
		switch e.Kind {
		case KindCrash, KindRecover:
			if !inRange(e.P) {
				return bad("process %d out of range 1..%d", e.P, s.N)
			}
		case KindPartition:
			if len(e.Groups) == 0 {
				return bad("no groups")
			}
			for _, g := range e.Groups {
				for _, p := range g {
					if !inRange(p) {
						return bad("process %d out of range 1..%d", p, s.N)
					}
				}
			}
		case KindHeal:
			// no fields
		case KindLink, KindLinkClear:
			if !inRange(e.From) || !inRange(e.To) {
				return bad("link %d→%d out of range 1..%d", e.From, e.To, s.N)
			}
			if e.Loss < 0 || e.Loss > 1 {
				return bad("loss %g outside [0,1]", e.Loss)
			}
			if e.Until != 0 && e.Until <= e.At {
				return bad("window [%g,%g) is empty", e.At, e.Until)
			}
		case KindPauseStorm:
			if e.P != 0 && !inRange(e.P) {
				return bad("process %d out of range 1..%d", e.P, s.N)
			}
			if e.Until <= e.At {
				return bad("window [%g,%g) is empty", e.At, e.Until)
			}
			if e.Every == nil || e.Dur == nil {
				return bad("needs Every and Dur distributions")
			}
			if e.Every.Mean() <= 0 {
				return bad("Every must have positive mean")
			}
		case KindWorkload:
			if e.Gap <= 0 {
				return bad("non-positive gap %g", e.Gap)
			}
		default:
			return bad("unknown kind")
		}
	}
	return nil
}
