package scenario

import (
	"reflect"
	"testing"
)

// TestRunReuseMatchesFresh is the scenario-level reset ≡ fresh
// differential: rerunning one replica assembly across seeds must produce
// bit-identical results to constructing a fresh assembly per seed — for
// every built-in scenario, covering crashes/recoveries, partitions, link
// rules, pause storms, workload phases, and both detector kinds.
func TestRunReuseMatchesFresh(t *testing.T) {
	for _, name := range Names() {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := RunConfig{Executions: 40}
		reused, err := newReplica(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(1); seed <= 5; seed++ {
			cfg.Seed = seed
			want, err := Run(s, cfg) // fresh assembly per replica
			if err != nil {
				t.Fatal(err)
			}
			got, err := reused.run(seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s seed %d: reused replica result differs from fresh construction:\n got %+v\nwant %+v",
					name, seed, got, want)
			}
		}
	}
}

// TestScenarioReplicaSteadyStateAllocs pins the allocation-lean replica
// loop: with the assembly reused, a steady-state replica must not
// reconstruct the cluster, stacks, engines or detectors — and, since
// payloads stopped boxing through `any`, watchdog closures became pooled
// records, and the timeline compiles once per assembly, it must not pay
// any per-message or per-watchdog cost either. What remains is a handful
// of per-replica allocations (result struct, occasional pool/ring
// growth) amortized over the executions: well under 4/execution, four
// orders of magnitude below the ~25k a constructed-per-replica gc-storm
// run used to take.
func TestScenarioReplicaSteadyStateAllocs(t *testing.T) {
	s, err := Get("gc-storm")
	if err != nil {
		t.Fatal(err)
	}
	const execs = 50
	r, err := newReplica(s, RunConfig{Executions: execs})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pools across a few seeds (different seeds exercise
	// different event interleavings and pool high-water marks).
	seed := uint64(1)
	for ; seed <= 3; seed++ {
		if _, err := r.run(seed); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		seed++
		if _, err := r.run(seed); err != nil {
			t.Fatal(err)
		}
	})
	if perExec := allocs / execs; perExec > 4 {
		t.Fatalf("steady-state replica allocates %.0f objects (%.1f/execution), want <= 4/execution", allocs, perExec)
	}
}

// TestSubSkewDeadline: a Deadline below the clock-skew spread lets the
// watchdog close an execution before some host's StartAt fires. The
// stale StartAt must be a no-op — its pooled record carries the
// execution index it was armed for — not a ghost Propose into the
// successor execution. With a 0.02 ms deadline no consensus can complete
// (one hop needs ~0.1 ms), so every execution must be cleanly aborted
// and nothing may decide, panic, or trip the agreement checks.
func TestSubSkewDeadline(t *testing.T) {
	s := New("tiny-deadline", 3).WithExecutions(30)
	for seed := uint64(1); seed <= 20; seed++ {
		res, err := Run(s, RunConfig{Seed: seed, Deadline: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		if res.Decided != 0 || res.Aborted != 30 {
			t.Fatalf("seed %d: %d decided / %d aborted, want 0/30 (ghost proposals leaked?)",
				seed, res.Decided, res.Aborted)
		}
	}
}
