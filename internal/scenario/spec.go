package scenario

import (
	"encoding/json"
	"fmt"

	"ctsan/internal/dist"
)

// DistSpec is the JSON form of a delay distribution:
//
//	{"kind":"det","v":5}
//	{"kind":"uniform","lo":5,"hi":30}
//	{"kind":"exp","mean":60}
//	{"kind":"mixture","mix":[{"p":0.8,"d":{"kind":"uniform","lo":0.1,"hi":0.13}}, ...]}
type DistSpec struct {
	Kind string  `json:"kind"`
	V    float64 `json:"v,omitempty"`    // det
	Lo   float64 `json:"lo,omitempty"`   // uniform
	Hi   float64 `json:"hi,omitempty"`   // uniform
	Mean float64 `json:"mean,omitempty"` // exp
	Mix  []struct {
		P float64  `json:"p"`
		D DistSpec `json:"d"`
	} `json:"mix,omitempty"` // mixture
}

// Dist converts the spec into a sampleable distribution.
func (d *DistSpec) Dist() (dist.Dist, error) {
	switch d.Kind {
	case "det":
		return dist.Det(d.V), nil
	case "uniform":
		if d.Hi < d.Lo {
			return nil, fmt.Errorf("scenario: uniform with hi %g < lo %g", d.Hi, d.Lo)
		}
		return dist.U(d.Lo, d.Hi), nil
	case "exp":
		if d.Mean < 0 {
			return nil, fmt.Errorf("scenario: exp with negative mean %g", d.Mean)
		}
		return dist.Exp(d.Mean), nil
	case "mixture":
		comps := make([]dist.Component, 0, len(d.Mix))
		for _, c := range d.Mix {
			inner, err := c.D.Dist()
			if err != nil {
				return nil, err
			}
			comps = append(comps, dist.Component{P: c.P, D: inner})
		}
		m, err := dist.NewMixture(comps...)
		if err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, fmt.Errorf("scenario: unknown distribution kind %q", d.Kind)
	}
}

// eventJSON mirrors Event with DistSpec in place of dist.Dist fields.
type eventJSON struct {
	Event
	AtJitter *DistSpec `json:"at_jitter,omitempty"`
	Every    *DistSpec `json:"every,omitempty"`
	Dur      *DistSpec `json:"dur,omitempty"`
	Extra    *DistSpec `json:"extra,omitempty"`
}

// scenarioJSON mirrors Scenario likewise.
type scenarioJSON struct {
	Scenario
	Events     []eventJSON `json:"events,omitempty"`
	PauseEvery *DistSpec   `json:"pause_every,omitempty"`
	PauseDur   *DistSpec   `json:"pause_dur,omitempty"`
}

// LoadJSON parses a scenario from its declarative JSON form, applies the
// builder defaults for omitted fields (gap 10 ms, 200 executions), and
// validates it. Example:
//
//	{
//	  "name": "my-partition", "n": 5, "timeout_t": 30,
//	  "events": [
//	    {"kind": "partition", "at": 500, "groups": [[1,2],[3,4,5]]},
//	    {"kind": "heal", "at": 1100},
//	    {"kind": "pause-storm", "at": 300, "until": 900, "p": 1,
//	     "every": {"kind":"exp","mean":60}, "dur": {"kind":"uniform","lo":5,"hi":30}}
//	  ]
//	}
func LoadJSON(data []byte) (*Scenario, error) {
	var sj scenarioJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, fmt.Errorf("scenario: bad JSON: %w", err)
	}
	s := sj.Scenario
	s.Events = nil
	conv := func(d *DistSpec) (dist.Dist, error) {
		if d == nil {
			return nil, nil
		}
		return d.Dist()
	}
	var err error
	if s.PauseEvery, err = conv(sj.PauseEvery); err != nil {
		return nil, err
	}
	if s.PauseDur, err = conv(sj.PauseDur); err != nil {
		return nil, err
	}
	for i := range sj.Events {
		e := sj.Events[i].Event
		if e.AtJitter, err = conv(sj.Events[i].AtJitter); err != nil {
			return nil, err
		}
		if e.Every, err = conv(sj.Events[i].Every); err != nil {
			return nil, err
		}
		if e.Dur, err = conv(sj.Events[i].Dur); err != nil {
			return nil, err
		}
		if e.Extra, err = conv(sj.Events[i].Extra); err != nil {
			return nil, err
		}
		s.Events = append(s.Events, e)
	}
	if s.Gap == 0 {
		s.Gap = 10
	}
	if s.Executions == 0 {
		s.Executions = 200
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
