package scenario

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"ctsan/internal/dist"
	"ctsan/internal/experiment"
	"ctsan/internal/neko"
	"ctsan/internal/netsim"
	"ctsan/internal/rng"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry holds %d scenarios, want >= 6: %v", len(names), names)
	}
	for _, want := range []string{"paper-baseline", "crash-n3-anomaly", "rolling-crash",
		"split-brain", "gc-storm", "burst-load"} {
		s, err := Get(want)
		if err != nil {
			t.Fatalf("built-in %s: %v", want, err)
		}
		if s.Name != want {
			t.Errorf("Get(%s) returned scenario named %q", want, s.Name)
		}
		if strings.TrimSpace(s.Doc) == "" {
			t.Errorf("built-in %s has no doc string", want)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("built-in %s fails validation: %v", want, err)
		}
	}
	// Get returns fresh values: mutating one must not leak into the next.
	a, _ := Get("paper-baseline")
	a.Executions = 1
	b, _ := Get("paper-baseline")
	if b.Executions == 1 {
		t.Error("Get returned a shared scenario instance")
	}
	if _, err := Get("no-such-scenario"); err == nil {
		t.Error("unknown scenario name accepted")
	}
}

func TestListMatchesRegistry(t *testing.T) {
	infos := List()
	names := Names()
	if len(infos) != len(names) {
		t.Fatalf("List returned %d entries, registry holds %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("entry %d: name %q, want %q (Names order)", i, info.Name, names[i])
		}
		s, err := Get(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		if info.Doc != s.Doc || info.N != s.N || info.Executions != s.Executions ||
			info.Gap != s.Gap || info.Events != len(s.Events) {
			t.Errorf("%s: Info diverges from the scenario value", info.Name)
		}
		// The effective heartbeat period is materialized: no zero
		// PeriodTh on a heartbeat scenario.
		if info.TimeoutT > 0 && info.PeriodTh == 0 {
			t.Errorf("%s: PeriodTh not materialized", info.Name)
		}
	}
}

func TestValidateRejectsMalformedScenarios(t *testing.T) {
	cases := []struct {
		name string
		s    *Scenario
	}{
		{"n too small", New("x", 1)},
		{"empty name", New("", 3)},
		{"crash out of range", New("x", 3).Crash(10, 9)},
		{"recover out of range", New("x", 3).Recover(10, 0)},
		{"partition empty", New("x", 3).Partition(10)},
		{"partition out of range", New("x", 3).Partition(10, []neko.ProcessID{7})},
		{"link out of range", New("x", 3).DegradeLink(10, 0, 1, 9, nil, 0)},
		{"link loss > 1", New("x", 3).DegradeLink(10, 0, 1, 2, nil, 1.5)},
		{"link empty window", New("x", 3).DegradeLink(10, 5, 1, 2, nil, 0.1)},
		{"storm empty window", New("x", 3).PauseStorm(10, 10, 1, dist.Exp(5), dist.Det(1))},
		{"storm no dists", New("x", 3).add(Event{Kind: KindPauseStorm, At: 0, Until: 10, P: 1})},
		{"workload bad gap", New("x", 3).WorkloadPhase(10, "p", 0)},
		{"negative time", New("x", 3).Crash(-1, 2)},
		{"majority crashed", New("x", 3).WithInitialCrash(1, 2)},
		{"period without timeout", func() *Scenario { s := New("x", 3); s.PeriodTh = 5; return s }()},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLoadJSON(t *testing.T) {
	s, err := LoadJSON([]byte(`{
		"name": "json-split", "n": 5, "timeout_t": 30,
		"pause_every": {"kind":"exp","mean":50},
		"pause_dur": {"kind":"mixture","mix":[
			{"p":0.5,"d":{"kind":"det","v":2}},
			{"p":0.5,"d":{"kind":"uniform","lo":5,"hi":10}}]},
		"events": [
			{"kind":"partition","at":500,"groups":[[1,2],[3,4,5]]},
			{"kind":"heal","at":900},
			{"kind":"crash","at":1000,"p":2,"at_jitter":{"kind":"uniform","lo":0,"hi":50}},
			{"kind":"link","at":100,"until":400,"from":1,"to":2,"loss":0.1,
			 "extra":{"kind":"exp","mean":2}},
			{"kind":"pause-storm","at":200,"until":600,"p":1,
			 "every":{"kind":"exp","mean":60},"dur":{"kind":"uniform","lo":5,"hi":30}},
			{"kind":"workload","at":700,"label":"burst","gap":2}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.TimeoutT != 30 || len(s.Events) != 6 {
		t.Fatalf("parsed scenario: %+v", s)
	}
	if s.Gap != 10 || s.Executions != 200 {
		t.Fatalf("defaults not applied: gap=%g execs=%d", s.Gap, s.Executions)
	}
	if s.PauseEvery == nil || math.Abs(s.PauseEvery.Mean()-50) > 1e-12 {
		t.Fatalf("pause_every = %v", s.PauseEvery)
	}
	if s.PauseDur == nil || math.Abs(s.PauseDur.Mean()-(0.5*2+0.5*7.5)) > 1e-12 {
		t.Fatalf("pause_dur mean = %v", s.PauseDur.Mean())
	}
	if s.Events[2].AtJitter == nil || s.Events[3].Extra == nil || s.Events[4].Every == nil {
		t.Fatal("event distributions not converted")
	}
	// A loaded scenario must actually run.
	res, err := Run(s, RunConfig{Executions: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided+res.Aborted != 40 {
		t.Fatalf("executions accounted: %d decided + %d aborted", res.Decided, res.Aborted)
	}

	for _, bad := range []string{
		`{`,
		`{"name":"x","n":3,"events":[{"kind":"warp","at":1}]}`,
		`{"name":"x","n":3,"pause_every":{"kind":"nope"}}`,
		`{"name":"x","n":3,"events":[{"kind":"crash","at":1,"p":9}]}`,
		`{"name":"x","n":3,"pause_dur":{"kind":"mixture","mix":[{"p":0.7,"d":{"kind":"det","v":1}}]}}`,
	} {
		if _, err := LoadJSON([]byte(bad)); err == nil {
			t.Errorf("bad spec accepted: %s", bad)
		}
	}
}

// newCompileCluster builds a throwaway cluster for timeline-compilation
// tests.
func newCompileCluster(t *testing.T, n int) *netsim.Cluster {
	t.Helper()
	c, err := netsim.New(netsim.Params{N: n}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTimelineGroundTruth(t *testing.T) {
	s := New("tl", 3).
		Crash(100, 2).Recover(200, 2).
		Crash(300, 2).
		WorkloadPhase(150, "burst", 2).
		WorkloadPhase(400, "calm", 20)
	tl, err := s.compile(newCompileCluster(t, 3), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		p    neko.ProcessID
		at   float64
		want bool
	}{
		{2, 50, true}, {2, 100, false}, {2, 150, false}, {2, 200, true},
		{2, 250, true}, {2, 300, false}, {2, 1e9, false},
		{1, 150, true}, {3, 350, true},
	} {
		if got := tl.UpAt(c.p, c.at); got != c.want {
			t.Errorf("UpAt(p%d, %g) = %v, want %v", c.p, c.at, got, c.want)
		}
	}
	for _, c := range []struct {
		at   float64
		want float64
	}{{0, 10}, {149, 10}, {150, 2}, {399, 2}, {400, 20}, {1e9, 20}} {
		if got := tl.GapAt(c.at); got != c.want {
			t.Errorf("GapAt(%g) = %g, want %g", c.at, got, c.want)
		}
	}
}

func TestJitterDrawnInstants(t *testing.T) {
	s := New("jit", 3).Crash(100, 2).Jitter(dist.U(0, 50))
	compileDown := func(seed uint64) float64 {
		tl, err := s.compile(newCompileCluster(t, 3), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return tl.down[2][0].from
	}
	a, b, c := compileDown(1), compileDown(1), compileDown(2)
	if a != b {
		t.Fatalf("same seed drew different instants: %v vs %v", a, b)
	}
	if a == c {
		t.Fatalf("different seeds drew the same jitter %v", a)
	}
	if a < 100 || a >= 150 {
		t.Fatalf("jittered instant %v outside [100,150)", a)
	}
}

// TestJitterPastLinkWindowSkipsRule: a drawn start at or beyond the
// declared window end must leave the link clean, not install a rule that
// is never cleared.
func TestJitterPastLinkWindowSkipsRule(t *testing.T) {
	s := New("jl", 2).DegradeLink(10, 20, 1, 2, nil, 1.0).Jitter(dist.Det(50))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	c := newCompileCluster(t, 2)
	got := 0
	stack := neko.NewStack(c.Context(2))
	stack.Handle("ping", func(neko.Message) { got++ })
	c.Attach(2, stack)
	if _, err := s.compile(c, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	c.Start()
	ctx := c.Context(1)
	c.AtGlobal(70, func() { ctx.Send(neko.Message{To: 2, Type: "ping"}) })
	c.RunUntil(200)
	if got != 1 {
		t.Fatalf("delivery after an empty jittered link window: got %d, want 1 "+
			"(rule must not outlive its declared window)", got)
	}
}

// TestPaperBaselineMatchesExperiment is the acceptance anchor: the
// paper-baseline scenario must reproduce the §4 class-1 latency campaign
// of the experiment harness within tolerance. Per-campaign means carry a
// systematic offset from the replica's drawn clock skews, so both sides
// average several independent campaigns.
func TestPaperBaselineMatchesExperiment(t *testing.T) {
	const execs, reps = 300, 4
	s, err := Get("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	reports, err := RunCampaign(CampaignSpec{
		Scenarios: []*Scenario{s}, Replicas: reps, Executions: execs, Workers: 0, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := reports[0]
	if rep.Aborted != 0 {
		t.Fatalf("paper-baseline aborted %d executions", rep.Aborted)
	}
	if rep.Decided != execs*reps {
		t.Fatalf("decided %d, want %d", rep.Decided, execs*reps)
	}

	specs := make([]experiment.LatencySpec, reps)
	for i := range specs {
		specs[i] = experiment.LatencySpec{N: s.N, Executions: execs, Seed: uint64(100 + i)}
	}
	results, err := experiment.RunLatencySweep(specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var expMean float64
	for _, r := range results {
		expMean += r.Digest.Mean()
	}
	expMean /= float64(len(results))

	if diff := math.Abs(rep.Mean - expMean); diff > 0.15*expMean {
		t.Fatalf("paper-baseline mean %.3f ms vs experiment harness %.3f ms: diff %.3f beyond 15%%",
			rep.Mean, expMean, diff)
	}
	// No faults are injected, so there must be no suspicions at all.
	if rep.Suspicions != 0 || rep.WrongSuspicions != 0 {
		t.Fatalf("fault-free baseline recorded %d suspicions", rep.Suspicions)
	}
}

// TestCampaignDeterministicAcrossWorkers pins the determinism contract
// for the scenario grid: a campaign over every registered scenario must
// produce byte-identical reports at 1, 2, and 8 workers.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	var all []*Scenario
	for _, name := range Names() {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, s)
	}
	run := func(workers int) []*Report {
		reports, err := RunCampaign(CampaignSpec{
			Scenarios:  all,
			Replicas:   2,
			Executions: 60,
			Workers:    workers,
			Seed:       5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return reports
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(ref, got) {
			t.Fatalf("campaign with %d workers differs from serial reference", w)
		}
	}
}

func TestSplitBrainSemantics(t *testing.T) {
	s, err := Get("split-brain")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, RunConfig{Executions: 140, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Nobody actually crashes, so every suspicion is a wrong suspicion,
	// and the partition must cause plenty on both sides.
	if res.Suspicions == 0 {
		t.Fatal("partition produced no suspicions")
	}
	if res.WrongSuspicions != res.Suspicions {
		t.Fatalf("crash-free partition: %d/%d suspicions classified wrong, want all",
			res.WrongSuspicions, res.Suspicions)
	}
	// The majority side keeps deciding through the partition.
	if res.Decided < res.Aborted || res.Decided < 100 {
		t.Fatalf("decided %d / aborted %d: majority side should decide through the partition",
			res.Decided, res.Aborted)
	}
}

func TestRollingCrashDetectsAndRecovers(t *testing.T) {
	s, err := Get("rolling-crash")
	if err != nil {
		t.Fatal(err)
	}
	// 120 executions span the first crash (400 ms) and recovery (900 ms).
	res, err := Run(s, RunConfig{Executions: 120, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	right := res.Suspicions - res.WrongSuspicions
	if right < 4 {
		t.Fatalf("only %d right suspicions; the 4 survivors must each detect p2's crash", right)
	}
	if res.Decided < 100 {
		t.Fatalf("decided %d/120: campaign must keep deciding through crash and recovery", res.Decided)
	}
}

func TestBurstLoadRaisesThroughput(t *testing.T) {
	burst, err := Get("burst-load")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Get("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	reports, err := RunCampaign(CampaignSpec{
		Scenarios:  []*Scenario{burst, base},
		Replicas:   1,
		Executions: 300,
		Workers:    0,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b, p := reports[0].DecisionsPerSec, reports[1].DecisionsPerSec; b <= p*1.2 {
		t.Fatalf("burst workload throughput %.1f/s not above baseline %.1f/s", b, p)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(New("x", 1), RunConfig{}); err == nil {
		t.Error("invalid scenario accepted by Run")
	}
	s := New("x", 3)
	s.Executions = 0
	if _, err := Run(s, RunConfig{}); err == nil {
		t.Error("zero executions accepted")
	}
	if _, err := RunCampaign(CampaignSpec{}); err == nil {
		t.Error("empty campaign accepted")
	}
	if _, err := RunCampaign(CampaignSpec{Scenarios: []*Scenario{New("x", 3)}, Replicas: -1}); err == nil {
		t.Error("negative replicas accepted")
	}
	if _, err := RunCampaign(CampaignSpec{Scenarios: []*Scenario{New("x", 3)}, Executions: -5}); err == nil {
		t.Error("negative execution override accepted")
	}
	if _, err := RunCampaign(CampaignSpec{Scenarios: []*Scenario{New("x", 3), nil}}); err == nil {
		t.Error("nil scenario accepted")
	}
	// The errors must be descriptive, not silent empty reports.
	_, err := RunCampaign(CampaignSpec{})
	if err == nil || !strings.Contains(err.Error(), "no scenarios") {
		t.Errorf("empty-campaign error not descriptive: %v", err)
	}
}

// TestCampaignCancellation pins the cooperative-cancellation contract: a
// canceled campaign stops between grid units and returns ctx.Err().
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCampaignContext(ctx, CampaignSpec{
		Scenarios: []*Scenario{New("x", 3).WithExecutions(10)},
		Replicas:  8,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// benchCampaign runs an 8-replica gc-storm campaign at the given worker
// count (the parallel and serial schedules are bit-identical, so the
// variants differ only in wall clock).
func benchCampaign(b *testing.B, workers int) {
	s, err := Get("gc-storm")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := RunCampaign(CampaignSpec{
			Scenarios: []*Scenario{s}, Replicas: 8, Executions: 150,
			Workers: workers, Seed: uint64(i) + 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScenarioCampaignSerial(b *testing.B)   { benchCampaign(b, 1) }
func BenchmarkScenarioCampaignParallel(b *testing.B) { benchCampaign(b, 0) }
