package scenario

import (
	"fmt"
	"math"

	"ctsan/internal/consensus"
	"ctsan/internal/fd"
	"ctsan/internal/metrics"
	"ctsan/internal/neko"
	"ctsan/internal/netsim"
	"ctsan/internal/obs"
	"ctsan/internal/rng"
	"ctsan/internal/stats"
	"ctsan/internal/trace"
)

// RunConfig tunes one replica of a scenario. The zero value takes the
// scenario's own defaults.
type RunConfig struct {
	// Executions overrides the scenario's per-replica execution count.
	Executions int
	// Seed is the replica's root random seed.
	Seed uint64
	// MaxRounds aborts a consensus execution after this many rounds
	// (0 = 256).
	MaxRounds int
	// Deadline force-closes an execution after this many ms (0 = 3·T+60
	// under the heartbeat detector, 500 under the oracle) so that
	// partitions and crashes cannot hang a campaign.
	Deadline float64
	// Tracer, when non-nil, records structured execution events from
	// every layer (DES kernel, emulator, failure detectors, consensus)
	// into its ring; Result.Trace then carries the snapshot and
	// Result.Wrong the ground-truthed wrong suspicions for the explain
	// mode. The tracer is Reset and re-attached at the start of each run,
	// so one pooled tracer serves successive replicas without allocating.
	Tracer *trace.Tracer
}

// Result is the outcome of one scenario replica. Per-execution samples
// stream into the Digest as executions close, so a replica running
// millions of executions retains O(1) memory.
type Result struct {
	// Digest summarizes the first-decision latency of every decided
	// execution (ms); Rounds accumulates the deciding rounds.
	Digest metrics.Digest
	Rounds stats.Accumulator
	// Decided and Aborted partition the executions.
	Decided, Aborted int
	// Texp is the experiment duration (global ms); Events the DES events
	// executed.
	Texp   float64
	Events uint64
	// QoS holds the Chen et al. failure-detector metrics (heartbeat
	// scenarios only).
	QoS fd.QoS
	// Suspicions counts trust→suspect transitions across all observer
	// pairs; WrongSuspicions those whose subject was in fact up — the
	// paper's wrong suspicions (§5.4), here ground-truthed against the
	// scenario timeline.
	Suspicions, WrongSuspicions int
	// Trace and Wrong are populated only for traced runs
	// (RunConfig.Tracer): the captured event window and the individual
	// wrong suspicions it explains.
	Trace *trace.Trace
	Wrong []WrongSuspicion
}

// WrongSuspicion identifies one ground-truthed wrong suspicion: observer
// P suspected Q at local time At while the timeline says Q was up.
type WrongSuspicion struct {
	P, Q neko.ProcessID
	At   float64
}

// DecisionsPerSec returns the decision throughput of the replica.
func (r *Result) DecisionsPerSec() float64 {
	if r.Texp <= 0 {
		return 0
	}
	return float64(r.Decided) / r.Texp * 1000
}

// replica is one reusable scenario executor: the cluster, protocol
// stacks, consensus engines and failure detectors are assembled once
// (newReplica), then rewound and rerun for every Monte-Carlo replica of
// the scenario (run). Campaign workers keep one replica per worker — the
// san.Transient pattern — so steady-state campaign execution constructs
// nothing per replica; run(seed) on a reused replica is bit-identical to
// a fresh construct-then-run from the same seed.
type replica struct {
	s          *Scenario
	cfg        RunConfig
	cluster    *netsim.Cluster
	engines    []*consensus.Engine
	heartbeats []*fd.Heartbeat
	history    *fd.History
	// Per-process Propose decision/abort hooks, allocated once. They
	// read the current execution index at fire time, which is safe:
	// engine callbacks only fire while their instance is active, and
	// instances are forgotten when their execution closes.
	decideFns []func(consensus.Decision)
	doneFns   []func()
	phaseFn   func(name string, at float64)
	// startFree recycles the per-arm StartAt records (see startCall);
	// startAll retains every record ever created so run can reclaim the
	// ones stranded in the wiped event queue between runs. wdFree/wdAll
	// likewise for the per-execution watchdog records (see wdCall).
	startFree []*startCall
	startAll  []*startCall
	wdFree    []*wdCall
	wdAll     []*wdCall
	// root, clusterRand and injRand are the replica's retained randomness
	// streams, reseeded in place per run; prog is the retained compiled
	// timeline. Both exist so run constructs nothing.
	root        rng.Stream
	clusterRand rng.Stream
	injRand     rng.Stream
	prog        program

	// Per-run state.
	tl       *Timeline
	res      *Result
	curGap   float64
	running  bool
	execIdx  int
	execT0   float64
	closed   bool
	upCount  int
	finished int
	decided  bool
	firstAt  float64
	round    int
	val      int64
	err      error
}

// Run executes one replica of the scenario and returns its result.
func Run(s *Scenario, cfg RunConfig) (*Result, error) {
	r, err := newReplica(s, cfg)
	if err != nil {
		return nil, err
	}
	return r.run(cfg.Seed)
}

// newReplica validates the scenario, applies config defaults, and builds
// the cluster + protocol assembly. No randomness is drawn here
// (netsim.NewIdle): run always rewinds the cluster from the replica seed
// before executing, so fresh and reused replicas take the same path.
func newReplica(s *Scenario, cfg RunConfig) (*replica, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if cfg.Executions == 0 {
		cfg.Executions = s.Executions
	}
	if cfg.Executions < 1 {
		return nil, fmt.Errorf("scenario %s: need at least 1 execution", s.Name)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 256
	}
	if cfg.Deadline == 0 {
		if s.TimeoutT > 0 {
			cfg.Deadline = 3*s.TimeoutT + 60
		} else {
			cfg.Deadline = 500
		}
	}
	params := netsim.DefaultParams(s.N)
	params.Crashed = s.InitialCrashed
	if s.PauseEvery != nil {
		params.PauseEvery = s.PauseEvery
	}
	if s.PauseDur != nil {
		params.PauseDur = s.PauseDur
	}
	cluster, err := netsim.NewIdle(params)
	if err != nil {
		return nil, err
	}
	r := &replica{
		s:         s,
		cfg:       cfg,
		cluster:   cluster,
		engines:   make([]*consensus.Engine, s.N+1),
		history:   &fd.History{},
		decideFns: make([]func(consensus.Decision), s.N+1),
		doneFns:   make([]func(), s.N+1),
	}
	r.phaseFn = func(_ string, at float64) { r.curGap = r.tl.GapAt(at) }

	periodTh := s.PeriodTh
	if s.TimeoutT > 0 && periodTh == 0 {
		periodTh = 0.7 * s.TimeoutT
	}
	for i := 1; i <= s.N; i++ {
		id := neko.ProcessID(i)
		stack := neko.NewStack(cluster.Context(id))
		var det neko.FailureDetector
		if s.TimeoutT > 0 {
			hb := fd.NewHeartbeat(stack, s.TimeoutT, periodTh, r.history)
			r.heartbeats = append(r.heartbeats, hb)
			det = hb
		} else {
			det = fd.NewOracle(s.InitialCrashed...)
		}
		r.engines[i] = consensus.NewEngine(stack, det, consensus.Options{MaxRounds: cfg.MaxRounds})
		cluster.Attach(id, stack)
		r.decideFns[i] = func(d consensus.Decision) { r.onDecision(r.execIdx, d) }
		r.doneFns[i] = func() { r.onProcessDone(r.execIdx) }
	}
	return r, nil
}

// startCall is a pooled StartAt callback carrying the execution index it
// was armed for: a stale call — possible when a sub-clock-skew Deadline
// lets the watchdog close an execution before its StartAts fire — is a
// no-op instead of proposing into the successor execution.
type startCall struct {
	r     *replica
	i, k  int
	runFn func()
}

func (r *replica) newStartCall(i, k int) *startCall {
	var sc *startCall
	if n := len(r.startFree); n > 0 {
		sc = r.startFree[n-1]
		r.startFree[n-1] = nil
		r.startFree = r.startFree[:n-1]
	} else {
		sc = &startCall{r: r}
		sc.runFn = sc.run
		r.startAll = append(r.startAll, sc)
	}
	sc.i, sc.k = i, k
	return sc
}

func (sc *startCall) run() {
	r, i, k := sc.r, sc.i, sc.k
	r.startFree = append(r.startFree, sc)
	if r.closed || k != r.execIdx {
		return
	}
	r.engines[i].Propose(uint64(k), int64(i), r.decideFns[i], r.doneFns[i])
}

// wdCall is a pooled per-execution watchdog callback: the deadline event
// of an execution that closed normally fires late as a stale no-op
// (closeExec's execIdx guard), returning the record then. The pool
// stabilizes at roughly Deadline/Gap in-flight records, after which
// arming watchdogs allocates nothing.
type wdCall struct {
	r     *replica
	k     int
	runFn func()
}

func (r *replica) newWdCall(k int) *wdCall {
	var w *wdCall
	if n := len(r.wdFree); n > 0 {
		w = r.wdFree[n-1]
		r.wdFree[n-1] = nil
		r.wdFree = r.wdFree[:n-1]
	} else {
		w = &wdCall{r: r}
		w.runFn = w.run
		r.wdAll = append(r.wdAll, w)
	}
	w.k = k
	return w
}

func (w *wdCall) run() {
	r, k := w.r, w.k
	r.wdFree = append(r.wdFree, w)
	r.closeExec(k)
}

// run rewinds the whole assembly to the given replica seed and executes
// the scenario once. The rewind reproduces construction exactly —
// cluster randomness, timeline compilation, protocol state — so a reused
// replica is bit-identical to a freshly built one (pinned by
// TestRunReuseMatchesFresh).
func (r *replica) run(seed uint64) (*Result, error) {
	r.root.Reseed(seed ^ 0x5ce7a51ed)
	r.root.ChildInto(&r.clusterRand, 1)
	r.cluster.Reset(&r.clusterRand)
	// The wiped event queue stranded the in-flight start and watchdog
	// records of the previous run; rebuild the free lists from the
	// retained full sets (the netsim reclaimAll treatment).
	r.startFree = append(r.startFree[:0], r.startAll...)
	r.wdFree = append(r.wdFree[:0], r.wdAll...)
	for _, e := range r.engines {
		if e != nil {
			e.Reset()
		}
	}
	r.history.Reset()
	for _, hb := range r.heartbeats {
		hb.Reset(r.history)
	}
	r.res = &Result{}
	r.curGap = r.s.Gap
	r.running = false
	r.closed = false
	r.err = nil

	// Attach the tracer after the resets (which detach) and before the
	// timeline compiles, so the injection-scheduling prefix is captured.
	// Tracing consumes no randomness and emits in DES execution order, so
	// the trace is a pure function of the replica seed (rule 6).
	if tr := r.cfg.Tracer; tr != nil {
		tr.Reset()
		r.cluster.SetTracer(tr)
		for _, e := range r.engines {
			if e != nil {
				e.SetTracer(tr)
			}
		}
		for _, hb := range r.heartbeats {
			hb.SetTracer(tr)
		}
	}

	r.root.ChildInto(&r.injRand, 2)
	if err := r.s.compileInto(&r.prog, r.cluster, &r.injRand); err != nil {
		return nil, err
	}
	r.tl = &r.prog.tl
	// Workload phases arrive through the cluster's phase hook, so the gap
	// switch happens at the injected instant of simulated time.
	r.cluster.OnPhase(r.phaseFn)

	r.cluster.Start()
	r.startExec(0, 20) // warmup matches the experiment harness (§4)
	r.cluster.Run(func() bool { return !r.running || r.err != nil })
	if r.err != nil {
		return nil, r.err
	}
	r.res.Texp = r.cluster.Now()
	r.res.Events = r.cluster.Steps()
	for _, hb := range r.heartbeats {
		hb.Stop()
	}
	if r.s.TimeoutT > 0 {
		r.res.QoS = fd.EstimateQoS(r.history, r.res.Texp, r.s.N)
	}
	for _, e := range r.history.Events() {
		if e.Suspected {
			r.res.Suspicions++
			if r.tl.UpAt(e.Q, e.At) {
				r.res.WrongSuspicions++
				if r.cfg.Tracer != nil {
					r.res.Wrong = append(r.res.Wrong, WrongSuspicion{P: e.P, Q: e.Q, At: e.At})
				}
			}
		}
	}
	if r.cfg.Tracer != nil {
		r.res.Trace = r.cfg.Tracer.Snapshot()
	}
	return r.res, nil
}

// startExec launches execution k at local time t0 on every process that
// the timeline says is up (crashed processes never start; the cluster
// additionally guards against races at the boundary).
func (r *replica) startExec(k int, t0 float64) {
	r.running = true
	r.execIdx = k
	r.execT0 = t0
	r.closed = false
	r.finished = 0
	r.decided = false
	r.firstAt = math.Inf(1)
	r.round = 0
	r.val = 0
	r.upCount = 0
	for i := 1; i <= r.s.N; i++ {
		id := neko.ProcessID(i)
		if !r.tl.UpAt(id, t0) {
			continue
		}
		r.upCount++
		r.cluster.StartAt(id, t0, r.newStartCall(i, k).runFn)
	}
	// Watchdog: mid-run crashes, partitions, and catastrophic suspicion
	// storms must not hang the campaign. Scheduled globally so no host
	// state can silence it.
	r.cluster.AtGlobal(t0+r.cfg.Deadline, r.newWdCall(k).runFn)
	if r.upCount == 0 {
		// Nobody can propose; close via the watchdog path immediately.
		r.cluster.AtGlobal(t0, r.newWdCall(k).runFn)
	}
}

func (r *replica) onDecision(k int, d consensus.Decision) {
	if r.closed || k != r.execIdx {
		return
	}
	if !r.decided {
		r.decided = true
		r.firstAt = d.At
		r.round = d.Round
		r.val = d.Val
	} else {
		if d.Val != r.val {
			r.err = fmt.Errorf("scenario %s: agreement violated in execution %d: decisions %d and %d",
				r.s.Name, k, r.val, d.Val)
			return
		}
		if d.At < r.firstAt {
			r.firstAt = d.At
			r.round = d.Round
		}
	}
	if v := d.Val; v < 1 || int(v) > r.s.N {
		r.err = fmt.Errorf("scenario %s: validity violated in execution %d: decided %d", r.s.Name, k, d.Val)
		return
	}
	r.onProcessDone(k)
}

func (r *replica) onProcessDone(k int) {
	if r.closed || k != r.execIdx {
		return
	}
	r.finished++
	if r.finished >= r.upCount {
		r.closeExec(k)
	}
}

// closeExec finalizes execution k (normally or via watchdog) and
// schedules the next one a current-workload-gap later.
func (r *replica) closeExec(k int) {
	if r.closed || k != r.execIdx {
		return
	}
	r.closed = true
	obs.Executions.Add(1)
	if r.decided {
		r.res.Digest.Add(r.firstAt - r.execT0)
		r.res.Rounds.Add(float64(r.round))
		r.res.Decided++
	} else {
		r.res.Aborted++
	}
	for i := 1; i <= r.s.N; i++ {
		if r.engines[i] != nil {
			r.engines[i].Forget(uint64(k))
		}
	}
	if k+1 >= r.cfg.Executions {
		r.running = false
		return
	}
	next := r.execT0 + r.curGap
	if now := r.cluster.Now(); now+2 > next {
		next = now + 2
	}
	r.startExec(k+1, next)
}
