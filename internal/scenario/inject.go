package scenario

import (
	"math"

	"ctsan/internal/neko"
	"ctsan/internal/netsim"
	"ctsan/internal/rng"
)

// interval is a half-open [from, to) span of global time.
type interval struct{ from, to float64 }

// Timeline is a scenario compiled against one cluster replica: every
// injection is scheduled as a DES event, drawn instants are resolved, and
// the resulting ground truth (who is down when, which workload phase is
// in force) is queryable — the runner uses it to size execution quorums
// and to classify failure-detector suspicions as right or wrong.
type Timeline struct {
	// down[p] holds p's crash intervals, sorted by start.
	down map[neko.ProcessID][]interval
	// phases is the workload schedule, sorted by time; phases[0] is the
	// scenario's base gap at t = 0.
	phases []phasePoint
}

type phasePoint struct {
	at    float64
	gap   float64
	label string
}

// resolvedEvent is one scenario event with its resolved instant and its
// dedicated randomness stream. The stream is held by value so successive
// compilations rewind it in place (rng.ChildInto) instead of allocating.
type resolvedEvent struct {
	ev Event
	at float64
	r  rng.Stream
}

// program is a scenario compiled once per replica assembly: the timeline
// and every compilation buffer live as long as the replica, and
// compileInto rewinds them per run. The per-run work — jitter draws,
// ground truth, event scheduling — still happens every run (instants
// depend on the replica seed), but against retained storage, so
// steady-state recompilation allocates nothing.
type program struct {
	tl    Timeline
	res   []resolvedEvent
	order []int
	hosts []neko.ProcessID
}

// compile resolves drawn instants and schedules every event of s against
// c, returning a freshly allocated timeline (tests and one-shot callers;
// the runner uses compileInto with a retained program).
func (s *Scenario) compile(c *netsim.Cluster, r *rng.Stream) (*Timeline, error) {
	var p program
	if err := s.compileInto(&p, c, r); err != nil {
		return nil, err
	}
	return &p.tl, nil
}

// compileInto resolves drawn instants and schedules every event of s
// against c, rewinding and reusing p's buffers. Randomness comes from
// per-event child streams of r (event i draws from r.Child(i)), so adding
// draws to one event never perturbs another, and compilation is
// deterministic in r for any event order. Validate must have passed.
func (s *Scenario) compileInto(p *program, c *netsim.Cluster, r *rng.Stream) error {
	tl := &p.tl
	if tl.down == nil {
		tl.down = make(map[neko.ProcessID][]interval)
	}
	for pid, ivs := range tl.down {
		tl.down[pid] = ivs[:0]
	}
	tl.phases = append(tl.phases[:0], phasePoint{at: 0, gap: s.Gap, label: "base"})
	for _, pid := range s.InitialCrashed {
		tl.down[pid] = append(tl.down[pid], interval{0, math.Inf(1)})
	}
	// First pass: resolve instants and per-event streams into the
	// retained buffer.
	if cap(p.res) < len(s.Events) {
		p.res = make([]resolvedEvent, len(s.Events))
		p.order = make([]int, len(s.Events))
	}
	p.res = p.res[:len(s.Events)]
	p.order = p.order[:len(s.Events)]
	for i, e := range s.Events {
		rv := &p.res[i]
		rv.ev = e
		r.ChildInto(&rv.r, uint64(i))
		at := e.At
		if e.AtJitter != nil {
			at += e.AtJitter.Sample(&rv.r)
			if at < 0 {
				at = 0
			}
		}
		rv.at = at
		p.order[i] = i
	}
	// Crash/recover ground truth needs chronological pairing. Insertion
	// sort is stable, so it yields the same permutation as the
	// sort.SliceStable it replaces, without the closure allocation.
	order := p.order
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && p.res[order[j]].at < p.res[order[j-1]].at; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, i := range order {
		e, at := p.res[i].ev, p.res[i].at
		switch e.Kind {
		case KindCrash:
			ivs := tl.down[e.P]
			if len(ivs) == 0 || !math.IsInf(ivs[len(ivs)-1].to, 1) {
				tl.down[e.P] = append(ivs, interval{at, math.Inf(1)})
			}
		case KindRecover:
			ivs := tl.down[e.P]
			if len(ivs) > 0 && math.IsInf(ivs[len(ivs)-1].to, 1) && ivs[len(ivs)-1].from <= at {
				ivs[len(ivs)-1].to = at
			}
		case KindWorkload:
			// Appended in chronological order (this loop follows order), so
			// phases end up sorted with the base point first — the stable
			// re-sort the pre-program code did here was an identity.
			tl.phases = append(tl.phases, phasePoint{at: at, gap: e.Gap, label: e.Label})
		}
	}

	// Second pass: schedule cluster events (original order; instants do
	// the sequencing).
	for i := range p.res {
		rv := &p.res[i]
		e, at := rv.ev, rv.at
		switch e.Kind {
		case KindCrash:
			c.CrashAt(e.P, at)
		case KindRecover:
			c.RecoverAt(e.P, at)
		case KindPartition:
			if err := c.PartitionAt(at, e.Groups...); err != nil {
				return err
			}
		case KindHeal:
			c.HealAt(at)
		case KindLink:
			// The window end is declarative: jitter that pushes the start
			// past Until leaves an empty window, not a permanent rule.
			if e.Until > 0 && at >= e.Until {
				continue
			}
			if err := c.SetLinkAt(at, e.From, e.To, e.Extra, e.Loss); err != nil {
				return err
			}
			if e.Until > 0 {
				c.ClearLinkAt(e.Until, e.From, e.To)
			}
		case KindLinkClear:
			c.ClearLinkAt(at, e.From, e.To)
		case KindPauseStorm:
			hosts := append(p.hosts[:0], e.P)
			if e.P == 0 {
				hosts = hosts[:0]
				for q := neko.ProcessID(1); int(q) <= s.N; q++ {
					hosts = append(hosts, q)
				}
			}
			for _, q := range hosts {
				for t := at + e.Every.Sample(&rv.r); t < e.Until; t += e.Every.Sample(&rv.r) {
					c.PauseAt(q, t, e.Dur.Sample(&rv.r))
				}
			}
			p.hosts = hosts[:0]
		case KindWorkload:
			c.PhaseAt(at, e.Label)
		}
	}
	return nil
}

// UpAt reports whether process p is up (not crashed) at global time t.
// Pauses and partitions do not count as down: a frozen or unreachable
// process is still alive, which is exactly why suspecting it is a wrong
// suspicion.
func (tl *Timeline) UpAt(p neko.ProcessID, t float64) bool {
	for _, iv := range tl.down[p] {
		if t >= iv.from && t < iv.to {
			return false
		}
	}
	return true
}

// GapAt returns the execution gap in force at global time t.
func (tl *Timeline) GapAt(t float64) float64 {
	gap := tl.phases[0].gap
	for _, ph := range tl.phases {
		if ph.at > t {
			break
		}
		gap = ph.gap
	}
	return gap
}
