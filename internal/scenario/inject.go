package scenario

import (
	"math"
	"sort"

	"ctsan/internal/neko"
	"ctsan/internal/netsim"
	"ctsan/internal/rng"
)

// interval is a half-open [from, to) span of global time.
type interval struct{ from, to float64 }

// Timeline is a scenario compiled against one cluster replica: every
// injection is scheduled as a DES event, drawn instants are resolved, and
// the resulting ground truth (who is down when, which workload phase is
// in force) is queryable — the runner uses it to size execution quorums
// and to classify failure-detector suspicions as right or wrong.
type Timeline struct {
	// down[p] holds p's crash intervals, sorted by start.
	down map[neko.ProcessID][]interval
	// phases is the workload schedule, sorted by time; phases[0] is the
	// scenario's base gap at t = 0.
	phases []phasePoint
}

type phasePoint struct {
	at    float64
	gap   float64
	label string
}

// compile resolves drawn instants and schedules every event of s against
// c. Randomness comes from per-event child streams of r (event i draws
// from r.Child(i)), so adding draws to one event never perturbs another,
// and compilation is deterministic in r for any event order. Validate
// must have passed.
func (s *Scenario) compile(c *netsim.Cluster, r *rng.Stream) (*Timeline, error) {
	tl := &Timeline{
		down:   make(map[neko.ProcessID][]interval),
		phases: []phasePoint{{at: 0, gap: s.Gap, label: "base"}},
	}
	for _, p := range s.InitialCrashed {
		tl.down[p] = append(tl.down[p], interval{0, math.Inf(1)})
	}
	// First pass: resolve instants and record ground truth.
	type resolved struct {
		ev Event
		at float64
		r  *rng.Stream
	}
	res := make([]resolved, len(s.Events))
	for i, e := range s.Events {
		er := r.Child(uint64(i))
		at := e.At
		if e.AtJitter != nil {
			at += e.AtJitter.Sample(er)
			if at < 0 {
				at = 0
			}
		}
		res[i] = resolved{ev: e, at: at, r: er}
	}
	// Crash/recover ground truth needs chronological pairing.
	order := make([]int, len(res))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return res[order[a]].at < res[order[b]].at })
	for _, i := range order {
		e, at := res[i].ev, res[i].at
		switch e.Kind {
		case KindCrash:
			ivs := tl.down[e.P]
			if len(ivs) == 0 || !math.IsInf(ivs[len(ivs)-1].to, 1) {
				tl.down[e.P] = append(ivs, interval{at, math.Inf(1)})
			}
		case KindRecover:
			ivs := tl.down[e.P]
			if len(ivs) > 0 && math.IsInf(ivs[len(ivs)-1].to, 1) && ivs[len(ivs)-1].from <= at {
				ivs[len(ivs)-1].to = at
			}
		case KindWorkload:
			tl.phases = append(tl.phases, phasePoint{at: at, gap: e.Gap, label: e.Label})
		}
	}
	sort.SliceStable(tl.phases, func(a, b int) bool { return tl.phases[a].at < tl.phases[b].at })

	// Second pass: schedule cluster events (original order; instants do
	// the sequencing).
	for _, rv := range res {
		e, at := rv.ev, rv.at
		switch e.Kind {
		case KindCrash:
			c.CrashAt(e.P, at)
		case KindRecover:
			c.RecoverAt(e.P, at)
		case KindPartition:
			if err := c.PartitionAt(at, e.Groups...); err != nil {
				return nil, err
			}
		case KindHeal:
			c.HealAt(at)
		case KindLink:
			// The window end is declarative: jitter that pushes the start
			// past Until leaves an empty window, not a permanent rule.
			if e.Until > 0 && at >= e.Until {
				continue
			}
			if err := c.SetLinkAt(at, e.From, e.To, e.Extra, e.Loss); err != nil {
				return nil, err
			}
			if e.Until > 0 {
				c.ClearLinkAt(e.Until, e.From, e.To)
			}
		case KindLinkClear:
			c.ClearLinkAt(at, e.From, e.To)
		case KindPauseStorm:
			hosts := []neko.ProcessID{e.P}
			if e.P == 0 {
				hosts = hosts[:0]
				for p := neko.ProcessID(1); int(p) <= s.N; p++ {
					hosts = append(hosts, p)
				}
			}
			for _, p := range hosts {
				for t := at + e.Every.Sample(rv.r); t < e.Until; t += e.Every.Sample(rv.r) {
					c.PauseAt(p, t, e.Dur.Sample(rv.r))
				}
			}
		case KindWorkload:
			c.PhaseAt(at, e.Label)
		}
	}
	return tl, nil
}

// UpAt reports whether process p is up (not crashed) at global time t.
// Pauses and partitions do not count as down: a frozen or unreachable
// process is still alive, which is exactly why suspecting it is a wrong
// suspicion.
func (tl *Timeline) UpAt(p neko.ProcessID, t float64) bool {
	for _, iv := range tl.down[p] {
		if t >= iv.from && t < iv.to {
			return false
		}
	}
	return true
}

// GapAt returns the execution gap in force at global time t.
func (tl *Timeline) GapAt(t float64) float64 {
	gap := tl.phases[0].gap
	for _, ph := range tl.phases {
		if ph.at > t {
			break
		}
		gap = ph.gap
	}
	return gap
}
