package scenario

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"ctsan/internal/trace"
)

// traceBytes renders a traced campaign's full JSONL dump (all replicas,
// in replica order) for byte-level comparison.
func traceBytes(t *testing.T, spec TraceSpec) []byte {
	t.Helper()
	reps, err := RunTraced(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	for _, r := range reps {
		if err := r.Result.Trace.WriteJSONL(&b, r.Replica); err != nil {
			t.Fatal(err)
		}
	}
	return b.Bytes()
}

// TestTracedRunWorkersInvariant is determinism rule 6 at the package
// level: the full JSONL trace of a multi-replica campaign must be
// byte-identical at any worker count.
func TestTracedRunWorkersInvariant(t *testing.T) {
	s, err := Get("flaky-link")
	if err != nil {
		t.Fatal(err)
	}
	spec := TraceSpec{Scenario: s, Replicas: 4, Executions: 10, Seed: 7, Workers: 1}
	want := traceBytes(t, spec)
	if len(want) == 0 {
		t.Fatal("empty trace")
	}
	for _, workers := range []int{2, 8} {
		spec.Workers = workers
		if got := traceBytes(t, spec); !bytes.Equal(got, want) {
			t.Fatalf("trace differs between workers=1 and workers=%d", workers)
		}
	}
}

// TestAllScenariosTracedWorkersDifferential is the full-registry
// differential for the de-boxed/pooled hot path: every registered
// scenario, run with a tracer attached, must produce byte-identical
// JSONL traces and identical results at 1, 2, and 8 workers. This is the
// widest net for recycling bugs — typed payload slots, pooled watchdog
// records, and the once-per-assembly compiled timeline are all shared
// across the executions a worker processes, so any state leaking through
// Reset shows up as a worker-count-dependent divergence in some
// scenario's trace.
func TestAllScenariosTracedWorkersDifferential(t *testing.T) {
	for _, name := range Names() {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		spec := TraceSpec{Scenario: s, Replicas: 3, Executions: 20, Seed: 9, Workers: 1}
		want := traceBytes(t, spec)
		if len(want) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		wantReps, err := RunTraced(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			spec.Workers = workers
			if got := traceBytes(t, spec); !bytes.Equal(got, want) {
				t.Fatalf("%s: trace differs between workers=1 and workers=%d", name, workers)
			}
			gotReps, err := RunTraced(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			for i := range gotReps {
				if !reflect.DeepEqual(gotReps[i].Result.Digest, wantReps[i].Result.Digest) {
					t.Fatalf("%s replica %d: digest differs between workers=1 and workers=%d",
						name, gotReps[i].Replica, workers)
				}
			}
		}
	}
}

// TestTracedMatchesUntracedResults pins the zero-perturbation contract:
// attaching a tracer must not change the replica's results in any way —
// same digest, QoS, suspicion counts, event counts — because tracing
// consumes no randomness and schedules no events.
func TestTracedMatchesUntracedResults(t *testing.T) {
	for _, name := range []string{"gc-storm", "flaky-link", "rolling-crash"} {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		spec := TraceSpec{Scenario: s, Replicas: 2, Executions: 15, Seed: 11}
		traced, err := RunTraced(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := RunCampaignContext(context.Background(), CampaignSpec{
			Scenarios: []*Scenario{s}, Replicas: 2, Executions: 15, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		var agg Report
		for _, r := range traced {
			res := r.Result
			agg.Digest.Merge(&res.Digest)
			agg.Decided += res.Decided
			agg.Aborted += res.Aborted
			agg.Suspicions += res.Suspicions
			agg.WrongSuspicions += res.WrongSuspicions
			agg.DESEvents += res.Events
		}
		want := plain[0]
		if agg.Decided != want.Decided || agg.Aborted != want.Aborted ||
			agg.Suspicions != want.Suspicions || agg.WrongSuspicions != want.WrongSuspicions ||
			agg.DESEvents != want.DESEvents {
			t.Fatalf("%s: traced run perturbs results: traced %+v, untraced %+v", name, agg, *want)
		}
		if !reflect.DeepEqual(agg.Digest.Quantiles(0.5, 0.99), want.Digest.Quantiles(0.5, 0.99)) {
			t.Fatalf("%s: traced run perturbs latency digest", name)
		}
	}
}

// TestTracedReplicaSteadyStateAllocs pins the enabled-tracer hot path:
// with the ring allocated once, a traced steady-state replica must stay
// within the untraced per-execution allocation budget plus the
// end-of-run snapshot (ring copy + wrong-suspicion slice).
func TestTracedReplicaSteadyStateAllocs(t *testing.T) {
	s, err := Get("gc-storm")
	if err != nil {
		t.Fatal(err)
	}
	const execs = 50
	tr := trace.New(1 << 12)
	r, err := newReplica(s, RunConfig{Executions: execs, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(1)
	for ; seed <= 3; seed++ {
		if _, err := r.run(seed); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		seed++
		if _, err := r.run(seed); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: the untraced 40/execution plus a small per-run constant for
	// Snapshot (one Trace header + one ring-sized Events copy) and the
	// Wrong slice. Emit itself must contribute nothing.
	if perExec := (allocs - 10) / execs; perExec > 40 {
		t.Fatalf("traced steady-state replica allocates %.0f objects (%.1f/execution), want <= 40/execution + snapshot", allocs, perExec)
	}
}

// TestTracedRunCapTruncation: a tiny ring must drop oldest events,
// report them, and stay deterministic.
func TestTracedRunCapTruncation(t *testing.T) {
	s, err := Get("gc-storm")
	if err != nil {
		t.Fatal(err)
	}
	spec := TraceSpec{Scenario: s, Replicas: 1, Executions: 5, Seed: 3, Cap: 64}
	reps, err := RunTraced(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res := reps[0].Result
	if res.Trace.Dropped == 0 {
		t.Fatal("expected ring truncation with cap 64")
	}
	if len(res.Trace.Events) != 64 {
		t.Fatalf("retained %d events, want 64", len(res.Trace.Events))
	}
	var b bytes.Buffer
	if err := res.Trace.WriteJSONL(&b, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"meta":"ring-truncated"`) {
		t.Fatal("truncated dump missing meta line")
	}
}

// TestWriteExplain: a scenario engineered to produce wrong suspicions
// (long pauses under a short timeout) must yield explain output that
// names the suspicion pair and shows relevant events.
func TestWriteExplain(t *testing.T) {
	s, err := Get("gc-storm")
	if err != nil {
		t.Fatal(err)
	}
	// Hunt a seed with at least one wrong suspicion; gc-storm is built to
	// produce them, but not every (seed, replica) draw does.
	for seed := uint64(1); seed <= 30; seed++ {
		reps, err := RunTraced(context.Background(), TraceSpec{
			Scenario: s, Replicas: 1, Executions: 30, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := reps[0]
		if len(r.Result.Wrong) == 0 {
			continue
		}
		if r.Result.WrongSuspicions != len(r.Result.Wrong) {
			t.Fatalf("Wrong details (%d) disagree with WrongSuspicions count (%d)",
				len(r.Result.Wrong), r.Result.WrongSuspicions)
		}
		var b bytes.Buffer
		n, err := WriteExplain(&b, r, 50)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(r.Result.Wrong) {
			t.Fatalf("explained %d suspicions, want %d", n, len(r.Result.Wrong))
		}
		out := b.String()
		if !strings.Contains(out, "wrong suspicion") || !strings.Contains(out, "suspect") {
			t.Fatalf("explain output missing expected content:\n%s", out)
		}
		return
	}
	t.Fatal("no seed in 1..30 produced a wrong suspicion under gc-storm")
}

// BenchmarkScenarioCampaignTraced mirrors BenchmarkScenarioCampaignSerial
// (same scenario, replica count, executions, serial workers) with the
// tracer attached: the ns/op delta between the two is the cost of
// enabled tracing, tracked per commit in BENCH_emulation.json.
func BenchmarkScenarioCampaignTraced(b *testing.B) {
	s, err := Get("gc-storm")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := RunTraced(context.Background(), TraceSpec{
			Scenario: s, Replicas: 8, Executions: 150,
			Workers: 1, Seed: uint64(i) + 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
