// Package consensus implements the Chandra–Toueg consensus algorithm for
// the ◇S failure detector [11], the protocol analyzed by the paper (§2.1).
//
// The algorithm proceeds in asynchronous rounds with a rotating
// coordinator (p_i coordinates rounds k·n + i). In each round:
//
//	phase 1: every process sends its current estimate (value, timestamp)
//	         to the round's coordinator;
//	phase 2: the coordinator waits for a majority of estimates, adopts one
//	         with the largest timestamp and broadcasts it as its proposal;
//	phase 3: a participant that receives the proposal adopts it and
//	         replies with a positive acknowledgment; a participant whose
//	         failure detector suspects the coordinator while waiting
//	         replies with a negative acknowledgment instead; either way it
//	         proceeds to the next round;
//	phase 4: the coordinator waits for a majority of replies; if all are
//	         positive it broadcasts the decision (reliable broadcast),
//	         otherwise it moves to the next round.
//
// The implementation carries real data (proposed values and timestamps),
// unlike the SAN model which only captures control (§3). A majority of
// correct processes is required.
//
// Engine multiplexes sequential consensus instances over one process stack
// — the paper's measurement campaigns run thousands of executions
// back-to-back (§4) while the failure detector keeps running across them.
package consensus

import (
	"fmt"

	"ctsan/internal/neko"
	"ctsan/internal/trace"
)

// Message types used by the protocol.
const (
	MsgEstimate = "ct.estimate"
	MsgPropose  = "ct.propose"
	MsgAck      = "ct.ack"
	MsgDecide   = "ct.decide"
)

// Estimate is the phase-1 message body (a view of the neko.Payload union
// fields the estimate variant owns). It is kept as a named struct because
// coordinators buffer estimates per round.
type Estimate struct {
	Cid   uint64 // consensus instance
	Round int
	Val   int64
	TS    int // round in which Val was last adopted; 0 initially
}

// Decision describes a local decision event.
type Decision struct {
	Cid   uint64
	Val   int64
	At    float64 // local clock (ms) when the decision was delivered
	Round int     // round in which the deciding proposal was issued
}

// Options tune protocol variants.
type Options struct {
	// RelayDecide re-broadcasts the decision upon first reception,
	// implementing reliable broadcast (needed if the decider may crash
	// mid-broadcast). Default off: the paper's scenarios have no crashes
	// after t_0, and the latency measure stops at the first decision.
	RelayDecide bool
	// MaxRounds aborts an instance after this many rounds (0 = unlimited).
	// Campaigns with very bad failure-detector QoS use it as a safety
	// valve; aborted instances are reported, never silently dropped.
	MaxRounds int
}

// Engine runs Chandra–Toueg consensus instances for one process. Create it
// with NewEngine (which registers the message handlers on the stack), then
// call Propose once per instance.
type Engine struct {
	ctx    neko.Context
	fd     neko.FailureDetector
	opts   Options
	maj    int
	active map[uint64]*Instance
	// lastIn short-circuits route's map lookup: sequential campaigns run
	// one instance at a time, so nearly every ct.* message targets the
	// same instance as the previous one. Forget and Reset clear it, so a
	// cached pointer is always an *active* instance and the cid match
	// cannot alias a recycled record.
	lastIn *Instance
	// pending buffers messages for instances not yet started locally
	// (start-time skew between hosts, §4).
	pending map[uint64][]neko.Message
	// instFree and bufFree recycle finished instances and drained pending
	// buffers: sequential campaigns run thousands of instances per
	// process, and rebuilding the per-instance maps for each was a top
	// allocation site (see PERFORMANCE.md).
	instFree []*Instance
	bufFree  [][]neko.Message
	// tr, if set, records protocol-level events (propose, round change,
	// estimate, proposal, ack, decide) into the replica's trace ring.
	// Reset detaches it; a traced campaign re-attaches after every reset.
	tr *trace.Tracer
}

// SetTracer attaches (nil detaches) a structured execution tracer.
func (e *Engine) SetTracer(tr *trace.Tracer) { e.tr = tr }

// NewEngine creates a consensus engine on the stack, querying the given
// failure detector. It registers handlers for all ct.* message types and
// subscribes to failure-detector changes.
func NewEngine(stack *neko.Stack, det neko.FailureDetector, opts Options) *Engine {
	ctx := stack.Context()
	e := &Engine{
		ctx:     ctx,
		fd:      det,
		opts:    opts,
		maj:     ctx.N()/2 + 1,
		active:  make(map[uint64]*Instance),
		pending: make(map[uint64][]neko.Message),
	}
	stack.HandleKind(neko.PayloadEstimate, MsgEstimate, e.route)
	stack.HandleKind(neko.PayloadPropose, MsgPropose, e.route)
	stack.HandleKind(neko.PayloadAck, MsgAck, e.route)
	stack.HandleKind(neko.PayloadDecide, MsgDecide, e.route)
	det.OnChange(e.onFDChange)
	return e
}

// Majority returns the majority threshold ⌈(n+1)/2⌉.
func (e *Engine) Majority() int { return e.maj }

// Coordinator returns the coordinator of round r (1-based rounds):
// p_i coordinates rounds k·n + i (§2.1).
func (e *Engine) Coordinator(r int) neko.ProcessID {
	n := e.ctx.N()
	return neko.ProcessID((r-1)%n + 1)
}

// Propose starts consensus instance cid with initial value val. onDecide
// is invoked exactly once when the instance decides; onAbort (which may be
// nil) exactly once if the instance exceeds Options.MaxRounds instead. It
// returns the running instance.
func (e *Engine) Propose(cid uint64, val int64, onDecide func(Decision), onAbort func()) *Instance {
	if _, dup := e.active[cid]; dup {
		panic(fmt.Sprintf("consensus: instance %d already started at p%d", cid, e.ctx.ID()))
	}
	var in *Instance
	if n := len(e.instFree); n > 0 {
		in = e.instFree[n-1]
		e.instFree[n-1] = nil
		e.instFree = e.instFree[:n-1]
	} else {
		in = &Instance{e: e}
	}
	in.cid = cid
	in.est = val
	in.ts = 0
	in.onDecide = onDecide
	in.onAbort = onAbort
	gen := in.gen
	e.active[cid] = in
	if e.tr != nil {
		e.tr.Emit(trace.Event{T: e.ctx.Now(), P: int32(e.ctx.ID()), Kind: trace.KindPropose, A: int64(cid), B: val})
	}
	in.startRound(1)
	// Replay messages that arrived before the local start. A callback
	// fired from startRound or from a replayed message may Forget this
	// instance and start the next one on its recycled record (chained
	// sequential campaigns do); the generation check stops the replay
	// then — exactly when the pre-pooling code's messages started
	// hitting a decided dead instance as guarded no-ops.
	if buf, ok := e.pending[cid]; ok {
		delete(e.pending, cid)
		for _, m := range buf {
			if in.gen != gen {
				break
			}
			in.handle(&m)
		}
		e.recycleBuf(buf)
	}
	return in
}

// recycleBuf retires a drained pending buffer, dropping message payload
// references so the pool does not pin them.
func (e *Engine) recycleBuf(buf []neko.Message) {
	clear(buf)
	e.bufFree = append(e.bufFree, buf[:0])
}

// Forget discards a finished instance's state (sequential campaigns would
// otherwise accumulate per-instance buffers). The instance record and its
// buffers return to the engine's free lists for the next Propose.
func (e *Engine) Forget(cid uint64) {
	if in, ok := e.active[cid]; ok {
		delete(e.active, cid)
		if e.lastIn == in {
			e.lastIn = nil
		}
		in.recycle()
		e.instFree = append(e.instFree, in)
	}
	if buf, ok := e.pending[cid]; ok {
		delete(e.pending, cid)
		e.recycleBuf(buf)
	}
}

// Reset discards every active instance and pending buffer (retaining the
// recycled records) so one engine can serve successive campaign replicas
// on a reused cluster. The executor must have been reset first; Reset
// does not interact with timers or in-flight messages.
func (e *Engine) Reset() {
	e.lastIn = nil
	for cid, in := range e.active {
		delete(e.active, cid)
		in.recycle()
		e.instFree = append(e.instFree, in)
	}
	for cid, buf := range e.pending {
		delete(e.pending, cid)
		e.recycleBuf(buf)
	}
	e.tr = nil
}

// route dispatches a ct.* message to its instance, or buffers it if the
// instance has not started locally yet.
func (e *Engine) route(m *neko.Message) {
	// Every ct.* payload variant carries the instance id in the same union
	// field — the pre-union type switch devirtualized away.
	cid := m.Payload.Cid
	if in := e.lastIn; in != nil && in.cid == cid {
		in.handle(m)
		return
	}
	if in, ok := e.active[cid]; ok {
		e.lastIn = in
		in.handle(m)
		return
	}
	// Bound the pending buffer: a malformed flood must not exhaust memory.
	// The bound covers a full instance's worth of traffic (pipelined
	// sequential instances can run a whole instance ahead of a process).
	buf, ok := e.pending[cid]
	if !ok {
		if n := len(e.bufFree); n > 0 {
			buf = e.bufFree[n-1]
			e.bufFree[n-1] = nil
			e.bufFree = e.bufFree[:n-1]
		}
	}
	if len(buf) < 8*e.ctx.N() {
		buf = append(buf, *m)
	}
	e.pending[cid] = buf
}

// onFDChange forwards suspicion changes to all active instances.
func (e *Engine) onFDChange(q neko.ProcessID, suspected bool) {
	if !suspected {
		return
	}
	for _, in := range e.active {
		in.onSuspicion(q)
	}
}

// ackTally counts phase-4 replies for one round at its coordinator.
type ackTally struct {
	oks, nacks int
	evaluated  bool
}

// Instance is one execution of consensus at one process. Records are
// recycled through the engine's free list; gen counts incarnations so
// stale references (a pending-message replay interrupted by a Forget from
// inside a callback) can detect the reuse.
type Instance struct {
	e        *Engine
	cid      uint64
	gen      uint64
	round    int
	est      int64
	ts       int
	decided  bool
	decision Decision
	aborted  bool
	onDecide func(Decision)
	onAbort  func()

	waitingProposal bool // participant, phase 3 of e.round
	// Coordinator-side buffers, indexed by round (1-based; slot 0 unused):
	// estimates received, replies tallied, whether the proposal was already
	// issued, and buffered future-round proposals (propSet marks presence).
	// Rounds are small dense integers, so flat slices replace the
	// round-keyed maps this used to carry: no hashing on the message hot
	// path, and recycle rewinds in O(rounds touched) instead of clearing
	// four maps. The slices (and each round's estimate buffer and tally
	// record) are retained across incarnations, so steady-state instances
	// allocate nothing.
	estBuf   [][]Estimate
	ackBuf   []*ackTally
	proposed []bool
	propBuf  []int64
	propSet  []bool
	// hiRound is the highest round index touched since the last recycle.
	hiRound int
}

// touch grows the per-round buffers to cover round r and records it for
// recycle. Callers must have bounds-checked r (see boundedRound).
func (in *Instance) touch(r int) {
	if r > in.hiRound {
		in.hiRound = r
	}
	for len(in.estBuf) <= r {
		in.estBuf = append(in.estBuf, nil)
		in.ackBuf = append(in.ackBuf, nil)
		in.proposed = append(in.proposed, false)
		in.propBuf = append(in.propBuf, 0)
		in.propSet = append(in.propSet, false)
	}
}

// boundedRound reports whether r is a plausible round number. Wire
// messages carry attacker-controlled rounds; rejecting implausible ones
// bounds the round-indexed buffers the way the maps they replaced were
// bounded by their key count. Rounds beyond MaxRounds can never influence
// an instance — it aborts before reaching them — so dropping their
// messages is behavior-preserving. With unlimited rounds a generous
// absolute cap (far past anything a real run reaches; round recursion is
// bounded by successive coordinator suspicions) guards the buffers.
func (in *Instance) boundedRound(r int) bool {
	if r < 1 {
		return false
	}
	if mr := in.e.opts.MaxRounds; mr > 0 {
		return r <= mr
	}
	return r <= 1<<16
}

// recycle rewinds the instance to a blank state, rewinding the per-round
// buffers in place (retaining their storage) and releasing callback
// references.
func (in *Instance) recycle() {
	in.gen++
	for r := 1; r <= in.hiRound; r++ {
		in.estBuf[r] = in.estBuf[r][:0]
		if t := in.ackBuf[r]; t != nil {
			*t = ackTally{}
		}
		in.proposed[r] = false
		in.propBuf[r] = 0
		in.propSet[r] = false
	}
	in.hiRound = 0
	in.cid = 0
	in.round = 0
	in.est = 0
	in.ts = 0
	in.decided = false
	in.decision = Decision{}
	in.aborted = false
	in.onDecide = nil
	in.onAbort = nil
	in.waitingProposal = false
}

// Decided reports whether the instance has decided, and the decision.
func (in *Instance) Decided() (Decision, bool) { return in.decision, in.decided }

// Aborted reports whether the instance hit Options.MaxRounds.
func (in *Instance) Aborted() bool { return in.aborted }

// Round returns the current round number.
func (in *Instance) Round() int { return in.round }

// startRound enters round r: phase 1 for participants, estimate collection
// for the coordinator. May recurse (bounded by N) through immediate
// suspicions of successive coordinators.
func (in *Instance) startRound(r int) {
	if in.decided || in.aborted {
		return
	}
	if in.e.opts.MaxRounds > 0 && r > in.e.opts.MaxRounds {
		in.aborted = true
		if in.onAbort != nil {
			in.onAbort()
		}
		return
	}
	in.round = r
	in.waitingProposal = false
	c := in.e.Coordinator(r)
	if tr := in.e.tr; tr != nil {
		tr.Emit(trace.Event{T: in.e.ctx.Now(), P: int32(in.e.ctx.ID()), Q: int32(c), Kind: trace.KindRound, A: int64(in.cid), B: int64(r)})
	}
	if c == in.e.ctx.ID() {
		// Coordinator: its own estimate counts toward the majority.
		in.addEstimate(Estimate{Cid: in.cid, Round: r, Val: in.est, TS: in.ts})
		return
	}
	// Participant, phase 1: send the estimate to the coordinator.
	if tr := in.e.tr; tr != nil {
		tr.Emit(trace.Event{T: in.e.ctx.Now(), P: int32(in.e.ctx.ID()), Q: int32(c), Kind: trace.KindEstimate, A: int64(in.cid), B: int64(r)})
	}
	in.e.ctx.Send(neko.Message{
		To:      c,
		Type:    MsgEstimate,
		Payload: neko.Payload{Kind: neko.PayloadEstimate, Cid: in.cid, Round: r, Val: in.est, TS: in.ts},
	})
	// Phase 3: wait for the proposal unless the coordinator is already
	// suspected (§2.4 class 2: a crashed coordinator is suspected from the
	// beginning) or its proposal overtook our round start.
	if r < len(in.propSet) && in.propSet[r] {
		v := in.propBuf[r]
		in.propSet[r] = false
		in.acceptProposal(r, v, c)
		return
	}
	if in.e.fd.Suspects(c) {
		in.rejectCoordinator(r, c)
		return
	}
	in.waitingProposal = true
}

// handle processes one inbound message for this instance.
func (in *Instance) handle(m *neko.Message) {
	p := m.Payload
	switch p.Kind {
	case neko.PayloadEstimate:
		in.handleEstimate(Estimate{Cid: p.Cid, Round: p.Round, Val: p.Val, TS: p.TS})
	case neko.PayloadPropose:
		in.handlePropose(p.Round, p.Val, m.From)
	case neko.PayloadAck:
		in.handleAck(p.Round, p.OK)
	case neko.PayloadDecide:
		in.deliverDecision(p.Val, 0, true)
	}
}

// handleEstimate buffers a phase-1 estimate and, as coordinator of that
// round, tries to issue the proposal.
func (in *Instance) handleEstimate(p Estimate) {
	if in.decided || in.aborted || !in.boundedRound(p.Round) || in.e.Coordinator(p.Round) != in.e.ctx.ID() {
		return
	}
	in.addEstimate(p)
}

func (in *Instance) addEstimate(p Estimate) {
	if in.proposedIn(p.Round) {
		return // proposal already issued; late estimates are irrelevant
	}
	in.touch(p.Round)
	in.estBuf[p.Round] = append(in.estBuf[p.Round], p)
	in.maybePropose(p.Round)
}

func (in *Instance) proposedIn(r int) bool {
	return r < len(in.proposed) && in.proposed[r]
}

// maybePropose runs phase 2 at the coordinator: with a majority of
// estimates for the coordinator's *current* round, adopt the one with the
// largest timestamp and broadcast it.
func (in *Instance) maybePropose(r int) {
	if in.round != r || in.proposedIn(r) || len(in.estBuf[r]) < in.e.maj {
		return
	}
	best := in.estBuf[r][0]
	for _, e := range in.estBuf[r][1:] {
		if e.TS > best.TS {
			best = e
		}
	}
	in.proposed[r] = true
	in.est = best.Val
	in.ts = r
	// Rewind the round's estimate buffer in place; proposedIn gates any
	// late estimate from refilling it.
	in.estBuf[r] = in.estBuf[r][:0]
	// The coordinator's own reply is an implicit positive acknowledgment.
	in.tally(r).oks++
	if tr := in.e.tr; tr != nil {
		tr.Emit(trace.Event{T: in.e.ctx.Now(), P: int32(in.e.ctx.ID()), Kind: trace.KindProposal, A: int64(in.cid), B: int64(r), X: float64(best.Val)})
	}
	neko.Broadcast(in.e.ctx, neko.Message{
		Type:    MsgPropose,
		Payload: neko.Payload{Kind: neko.PayloadPropose, Cid: in.cid, Round: r, Val: best.Val},
	})
	in.maybeConclude(r)
}

// handlePropose runs phase 3 at a participant.
func (in *Instance) handlePropose(round int, val int64, from neko.ProcessID) {
	if in.decided || in.aborted {
		return
	}
	switch {
	case round == in.round && in.waitingProposal:
		in.acceptProposal(round, val, from)
	case round > in.round && in.boundedRound(round):
		// The coordinator of a future round gathered a majority without
		// us; handle the proposal when we reach that round.
		in.touch(round)
		in.propBuf[round] = val
		in.propSet[round] = true
	}
	// round < in.round: stale — we already nacked and moved on.
}

// acceptProposal adopts the coordinator's value, acks, and proceeds to the
// next round (the CT algorithm does not block waiting for the decision —
// it arrives via the decide broadcast).
func (in *Instance) acceptProposal(r int, val int64, c neko.ProcessID) {
	in.waitingProposal = false
	in.est = val
	in.ts = r
	if tr := in.e.tr; tr != nil {
		tr.Emit(trace.Event{T: in.e.ctx.Now(), P: int32(in.e.ctx.ID()), Q: int32(c), Kind: trace.KindAck, A: int64(in.cid), B: int64(r), X: 1})
	}
	in.e.ctx.Send(neko.Message{
		To:      c,
		Type:    MsgAck,
		Payload: neko.Payload{Kind: neko.PayloadAck, Cid: in.cid, Round: r, OK: true},
	})
	in.startRound(r + 1)
}

// rejectCoordinator sends a negative acknowledgment for round r and moves
// on. The nack is sent even to a coordinator suspected from the start —
// the real implementation cannot know the suspicion is justified, and the
// message costs real resources (Table 1 depends on this).
func (in *Instance) rejectCoordinator(r int, c neko.ProcessID) {
	in.waitingProposal = false
	if tr := in.e.tr; tr != nil {
		tr.Emit(trace.Event{T: in.e.ctx.Now(), P: int32(in.e.ctx.ID()), Q: int32(c), Kind: trace.KindAck, A: int64(in.cid), B: int64(r), X: 0})
	}
	in.e.ctx.Send(neko.Message{
		To:      c,
		Type:    MsgAck,
		Payload: neko.Payload{Kind: neko.PayloadAck, Cid: in.cid, Round: r, OK: false},
	})
	in.startRound(r + 1)
}

// onSuspicion implements the phase-3 escape: a participant waiting for the
// proposal of a now-suspected coordinator nacks and advances (§2.1).
func (in *Instance) onSuspicion(q neko.ProcessID) {
	if in.decided || in.aborted || !in.waitingProposal {
		return
	}
	if q != in.e.Coordinator(in.round) {
		return
	}
	in.rejectCoordinator(in.round, q)
}

// handleAck runs phase 4 at the coordinator of the acked round.
func (in *Instance) handleAck(round int, ok bool) {
	if in.decided || in.aborted || !in.boundedRound(round) || in.e.Coordinator(round) != in.e.ctx.ID() {
		return
	}
	t := in.tally(round)
	if t.evaluated {
		return
	}
	if ok {
		t.oks++
	} else {
		t.nacks++
	}
	in.maybeConclude(round)
}

func (in *Instance) tally(r int) *ackTally {
	in.touch(r)
	t := in.ackBuf[r]
	if t == nil {
		t = &ackTally{}
		in.ackBuf[r] = t
	}
	return t
}

// maybeConclude evaluates phase 4 once a majority of replies is in: all
// positive → decide and broadcast; any negative → next round.
func (in *Instance) maybeConclude(r int) {
	t := in.tally(r)
	if t.evaluated || t.oks+t.nacks < in.e.maj {
		return
	}
	t.evaluated = true
	if t.nacks == 0 {
		neko.Broadcast(in.e.ctx, neko.Message{
			Type:    MsgDecide,
			Payload: neko.Payload{Kind: neko.PayloadDecide, Cid: in.cid, Val: in.est},
		})
		in.deliverDecision(in.est, r, false)
		return
	}
	// At least one negative acknowledgment: the round failed. The
	// coordinator is still in round r (it never waits for its own
	// proposal), so advance from there.
	if in.round == r {
		in.startRound(r + 1)
	}
}

// deliverDecision finalizes the instance. relayed marks decisions learned
// from the decide broadcast rather than concluded locally; round 0 means
// "the local current round" (the wire Decide payload stays minimal — the
// paper's messages are ~100 bytes, §2.5).
func (in *Instance) deliverDecision(val int64, round int, relayed bool) {
	if in.decided || in.aborted {
		return
	}
	in.decided = true
	if round == 0 {
		round = in.round
	}
	in.decision = Decision{Cid: in.cid, Val: val, At: in.e.ctx.Now(), Round: round}
	if tr := in.e.tr; tr != nil {
		tr.Emit(trace.Event{T: in.e.ctx.Now(), P: int32(in.e.ctx.ID()), Kind: trace.KindDecide, A: int64(in.cid), B: int64(round), X: float64(val)})
	}
	if relayed && in.e.opts.RelayDecide {
		neko.Broadcast(in.e.ctx, neko.Message{
			Type:    MsgDecide,
			Payload: neko.Payload{Kind: neko.PayloadDecide, Cid: in.cid, Val: val},
		})
	}
	if in.onDecide != nil {
		in.onDecide(in.decision)
	}
}
