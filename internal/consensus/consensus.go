// Package consensus implements the Chandra–Toueg consensus algorithm for
// the ◇S failure detector [11], the protocol analyzed by the paper (§2.1).
//
// The algorithm proceeds in asynchronous rounds with a rotating
// coordinator (p_i coordinates rounds k·n + i). In each round:
//
//	phase 1: every process sends its current estimate (value, timestamp)
//	         to the round's coordinator;
//	phase 2: the coordinator waits for a majority of estimates, adopts one
//	         with the largest timestamp and broadcasts it as its proposal;
//	phase 3: a participant that receives the proposal adopts it and
//	         replies with a positive acknowledgment; a participant whose
//	         failure detector suspects the coordinator while waiting
//	         replies with a negative acknowledgment instead; either way it
//	         proceeds to the next round;
//	phase 4: the coordinator waits for a majority of replies; if all are
//	         positive it broadcasts the decision (reliable broadcast),
//	         otherwise it moves to the next round.
//
// The implementation carries real data (proposed values and timestamps),
// unlike the SAN model which only captures control (§3). A majority of
// correct processes is required.
//
// Engine multiplexes sequential consensus instances over one process stack
// — the paper's measurement campaigns run thousands of executions
// back-to-back (§4) while the failure detector keeps running across them.
package consensus

import (
	"fmt"

	"ctsan/internal/neko"
	"ctsan/internal/trace"
)

// Message types used by the protocol.
const (
	MsgEstimate = "ct.estimate"
	MsgPropose  = "ct.propose"
	MsgAck      = "ct.ack"
	MsgDecide   = "ct.decide"
)

// Estimate is the phase-1 payload.
type Estimate struct {
	Cid   uint64 // consensus instance
	Round int
	Val   int64
	TS    int // round in which Val was last adopted; 0 initially
}

// Propose is the phase-2 payload.
type Propose struct {
	Cid   uint64
	Round int
	Val   int64
}

// Ack is the phase-3 payload; OK=false is a negative acknowledgment.
type Ack struct {
	Cid   uint64
	Round int
	OK    bool
}

// Decide is the decision broadcast payload.
type Decide struct {
	Cid uint64
	Val int64
}

// Decision describes a local decision event.
type Decision struct {
	Cid   uint64
	Val   int64
	At    float64 // local clock (ms) when the decision was delivered
	Round int     // round in which the deciding proposal was issued
}

// Options tune protocol variants.
type Options struct {
	// RelayDecide re-broadcasts the decision upon first reception,
	// implementing reliable broadcast (needed if the decider may crash
	// mid-broadcast). Default off: the paper's scenarios have no crashes
	// after t_0, and the latency measure stops at the first decision.
	RelayDecide bool
	// MaxRounds aborts an instance after this many rounds (0 = unlimited).
	// Campaigns with very bad failure-detector QoS use it as a safety
	// valve; aborted instances are reported, never silently dropped.
	MaxRounds int
}

// Engine runs Chandra–Toueg consensus instances for one process. Create it
// with NewEngine (which registers the message handlers on the stack), then
// call Propose once per instance.
type Engine struct {
	ctx    neko.Context
	fd     neko.FailureDetector
	opts   Options
	maj    int
	active map[uint64]*Instance
	// pending buffers messages for instances not yet started locally
	// (start-time skew between hosts, §4).
	pending map[uint64][]neko.Message
	// instFree and bufFree recycle finished instances and drained pending
	// buffers: sequential campaigns run thousands of instances per
	// process, and rebuilding the per-instance maps for each was a top
	// allocation site (see PERFORMANCE.md).
	instFree []*Instance
	bufFree  [][]neko.Message
	// tr, if set, records protocol-level events (propose, round change,
	// estimate, proposal, ack, decide) into the replica's trace ring.
	// Reset detaches it; a traced campaign re-attaches after every reset.
	tr *trace.Tracer
}

// SetTracer attaches (nil detaches) a structured execution tracer.
func (e *Engine) SetTracer(tr *trace.Tracer) { e.tr = tr }

// NewEngine creates a consensus engine on the stack, querying the given
// failure detector. It registers handlers for all ct.* message types and
// subscribes to failure-detector changes.
func NewEngine(stack *neko.Stack, det neko.FailureDetector, opts Options) *Engine {
	ctx := stack.Context()
	e := &Engine{
		ctx:     ctx,
		fd:      det,
		opts:    opts,
		maj:     ctx.N()/2 + 1,
		active:  make(map[uint64]*Instance),
		pending: make(map[uint64][]neko.Message),
	}
	stack.Handle(MsgEstimate, e.route)
	stack.Handle(MsgPropose, e.route)
	stack.Handle(MsgAck, e.route)
	stack.Handle(MsgDecide, e.route)
	det.OnChange(e.onFDChange)
	return e
}

// Majority returns the majority threshold ⌈(n+1)/2⌉.
func (e *Engine) Majority() int { return e.maj }

// Coordinator returns the coordinator of round r (1-based rounds):
// p_i coordinates rounds k·n + i (§2.1).
func (e *Engine) Coordinator(r int) neko.ProcessID {
	n := e.ctx.N()
	return neko.ProcessID((r-1)%n + 1)
}

// Propose starts consensus instance cid with initial value val. onDecide
// is invoked exactly once when the instance decides; onAbort (which may be
// nil) exactly once if the instance exceeds Options.MaxRounds instead. It
// returns the running instance.
func (e *Engine) Propose(cid uint64, val int64, onDecide func(Decision), onAbort func()) *Instance {
	if _, dup := e.active[cid]; dup {
		panic(fmt.Sprintf("consensus: instance %d already started at p%d", cid, e.ctx.ID()))
	}
	var in *Instance
	if n := len(e.instFree); n > 0 {
		in = e.instFree[n-1]
		e.instFree[n-1] = nil
		e.instFree = e.instFree[:n-1]
	} else {
		in = &Instance{
			e:       e,
			estBuf:  make(map[int][]Estimate),
			ackBuf:  make(map[int]*ackTally),
			propBuf: make(map[int]int64),
		}
	}
	in.cid = cid
	in.est = val
	in.ts = 0
	in.onDecide = onDecide
	in.onAbort = onAbort
	gen := in.gen
	e.active[cid] = in
	if e.tr != nil {
		e.tr.Emit(trace.Event{T: e.ctx.Now(), P: int32(e.ctx.ID()), Kind: trace.KindPropose, A: int64(cid), B: val})
	}
	in.startRound(1)
	// Replay messages that arrived before the local start. A callback
	// fired from startRound or from a replayed message may Forget this
	// instance and start the next one on its recycled record (chained
	// sequential campaigns do); the generation check stops the replay
	// then — exactly when the pre-pooling code's messages started
	// hitting a decided dead instance as guarded no-ops.
	if buf, ok := e.pending[cid]; ok {
		delete(e.pending, cid)
		for _, m := range buf {
			if in.gen != gen {
				break
			}
			in.handle(m)
		}
		e.recycleBuf(buf)
	}
	return in
}

// recycleBuf retires a drained pending buffer, dropping message payload
// references so the pool does not pin them.
func (e *Engine) recycleBuf(buf []neko.Message) {
	clear(buf)
	e.bufFree = append(e.bufFree, buf[:0])
}

// Forget discards a finished instance's state (sequential campaigns would
// otherwise accumulate per-instance buffers). The instance record and its
// buffers return to the engine's free lists for the next Propose.
func (e *Engine) Forget(cid uint64) {
	if in, ok := e.active[cid]; ok {
		delete(e.active, cid)
		in.recycle()
		e.instFree = append(e.instFree, in)
	}
	if buf, ok := e.pending[cid]; ok {
		delete(e.pending, cid)
		e.recycleBuf(buf)
	}
}

// Reset discards every active instance and pending buffer (retaining the
// recycled records) so one engine can serve successive campaign replicas
// on a reused cluster. The executor must have been reset first; Reset
// does not interact with timers or in-flight messages.
func (e *Engine) Reset() {
	for cid, in := range e.active {
		delete(e.active, cid)
		in.recycle()
		e.instFree = append(e.instFree, in)
	}
	for cid, buf := range e.pending {
		delete(e.pending, cid)
		e.recycleBuf(buf)
	}
	e.tr = nil
}

// route dispatches a ct.* message to its instance, or buffers it if the
// instance has not started locally yet.
func (e *Engine) route(m neko.Message) {
	cid := cidOf(m)
	if in, ok := e.active[cid]; ok {
		in.handle(m)
		return
	}
	// Bound the pending buffer: a malformed flood must not exhaust memory.
	// The bound covers a full instance's worth of traffic (pipelined
	// sequential instances can run a whole instance ahead of a process).
	buf, ok := e.pending[cid]
	if !ok {
		if n := len(e.bufFree); n > 0 {
			buf = e.bufFree[n-1]
			e.bufFree[n-1] = nil
			e.bufFree = e.bufFree[:n-1]
		}
	}
	if len(buf) < 8*e.ctx.N() {
		buf = append(buf, m)
	}
	e.pending[cid] = buf
}

// onFDChange forwards suspicion changes to all active instances.
func (e *Engine) onFDChange(q neko.ProcessID, suspected bool) {
	if !suspected {
		return
	}
	for _, in := range e.active {
		in.onSuspicion(q)
	}
}

func cidOf(m neko.Message) uint64 {
	switch p := m.Payload.(type) {
	case Estimate:
		return p.Cid
	case Propose:
		return p.Cid
	case Ack:
		return p.Cid
	case Decide:
		return p.Cid
	default:
		panic(fmt.Sprintf("consensus: unexpected payload %T for %s", m.Payload, m.Type))
	}
}

// ackTally counts phase-4 replies for one round at its coordinator.
type ackTally struct {
	oks, nacks int
	evaluated  bool
}

// Instance is one execution of consensus at one process. Records are
// recycled through the engine's free list; gen counts incarnations so
// stale references (a pending-message replay interrupted by a Forget from
// inside a callback) can detect the reuse.
type Instance struct {
	e        *Engine
	cid      uint64
	gen      uint64
	round    int
	est      int64
	ts       int
	decided  bool
	decision Decision
	aborted  bool
	onDecide func(Decision)
	onAbort  func()

	waitingProposal bool // participant, phase 3 of e.round
	// Coordinator-side buffers, keyed by round: estimates received,
	// replies tallied, and whether the proposal was already issued.
	estBuf   map[int][]Estimate
	ackBuf   map[int]*ackTally
	proposed map[int]bool
	// propBuf holds proposals received for rounds we have not reached.
	propBuf map[int]int64
	// estFree/tallyFree recycle the per-round buffers across rounds and
	// incarnations (decided rounds release theirs back immediately).
	estFree   [][]Estimate
	tallyFree []*ackTally
}

// recycle rewinds the instance to a blank state, returning per-round
// buffers to its free lists and releasing callback references.
func (in *Instance) recycle() {
	in.gen++
	for r, sl := range in.estBuf {
		delete(in.estBuf, r)
		in.estFree = append(in.estFree, sl[:0])
	}
	for r, t := range in.ackBuf {
		delete(in.ackBuf, r)
		*t = ackTally{}
		in.tallyFree = append(in.tallyFree, t)
	}
	clear(in.proposed)
	clear(in.propBuf)
	in.cid = 0
	in.round = 0
	in.est = 0
	in.ts = 0
	in.decided = false
	in.decision = Decision{}
	in.aborted = false
	in.onDecide = nil
	in.onAbort = nil
	in.waitingProposal = false
}

// Decided reports whether the instance has decided, and the decision.
func (in *Instance) Decided() (Decision, bool) { return in.decision, in.decided }

// Aborted reports whether the instance hit Options.MaxRounds.
func (in *Instance) Aborted() bool { return in.aborted }

// Round returns the current round number.
func (in *Instance) Round() int { return in.round }

// startRound enters round r: phase 1 for participants, estimate collection
// for the coordinator. May recurse (bounded by N) through immediate
// suspicions of successive coordinators.
func (in *Instance) startRound(r int) {
	if in.decided || in.aborted {
		return
	}
	if in.e.opts.MaxRounds > 0 && r > in.e.opts.MaxRounds {
		in.aborted = true
		if in.onAbort != nil {
			in.onAbort()
		}
		return
	}
	in.round = r
	in.waitingProposal = false
	c := in.e.Coordinator(r)
	if tr := in.e.tr; tr != nil {
		tr.Emit(trace.Event{T: in.e.ctx.Now(), P: int32(in.e.ctx.ID()), Q: int32(c), Kind: trace.KindRound, A: int64(in.cid), B: int64(r)})
	}
	if c == in.e.ctx.ID() {
		// Coordinator: its own estimate counts toward the majority.
		in.addEstimate(Estimate{Cid: in.cid, Round: r, Val: in.est, TS: in.ts})
		return
	}
	// Participant, phase 1: send the estimate to the coordinator.
	if tr := in.e.tr; tr != nil {
		tr.Emit(trace.Event{T: in.e.ctx.Now(), P: int32(in.e.ctx.ID()), Q: int32(c), Kind: trace.KindEstimate, A: int64(in.cid), B: int64(r)})
	}
	in.e.ctx.Send(neko.Message{
		To:      c,
		Type:    MsgEstimate,
		Payload: Estimate{Cid: in.cid, Round: r, Val: in.est, TS: in.ts},
	})
	// Phase 3: wait for the proposal unless the coordinator is already
	// suspected (§2.4 class 2: a crashed coordinator is suspected from the
	// beginning) or its proposal overtook our round start.
	if v, ok := in.propBuf[r]; ok {
		delete(in.propBuf, r)
		in.acceptProposal(r, v, c)
		return
	}
	if in.e.fd.Suspects(c) {
		in.rejectCoordinator(r, c)
		return
	}
	in.waitingProposal = true
}

// handle processes one inbound message for this instance.
func (in *Instance) handle(m neko.Message) {
	switch p := m.Payload.(type) {
	case Estimate:
		in.handleEstimate(p)
	case Propose:
		in.handlePropose(p, m.From)
	case Ack:
		in.handleAck(p)
	case Decide:
		in.deliverDecision(p.Val, 0, true)
	}
}

// handleEstimate buffers a phase-1 estimate and, as coordinator of that
// round, tries to issue the proposal.
func (in *Instance) handleEstimate(p Estimate) {
	if in.decided || in.aborted || in.e.Coordinator(p.Round) != in.e.ctx.ID() {
		return
	}
	in.addEstimate(p)
}

func (in *Instance) addEstimate(p Estimate) {
	if in.proposedIn(p.Round) {
		return // proposal already issued; late estimates are irrelevant
	}
	sl, ok := in.estBuf[p.Round]
	if !ok {
		if n := len(in.estFree); n > 0 {
			sl = in.estFree[n-1]
			in.estFree[n-1] = nil
			in.estFree = in.estFree[:n-1]
		}
	}
	in.estBuf[p.Round] = append(sl, p)
	in.maybePropose(p.Round)
}

func (in *Instance) proposedIn(r int) bool {
	return in.proposed != nil && in.proposed[r]
}

// maybePropose runs phase 2 at the coordinator: with a majority of
// estimates for the coordinator's *current* round, adopt the one with the
// largest timestamp and broadcast it.
func (in *Instance) maybePropose(r int) {
	if in.round != r || in.proposedIn(r) || len(in.estBuf[r]) < in.e.maj {
		return
	}
	best := in.estBuf[r][0]
	for _, e := range in.estBuf[r][1:] {
		if e.TS > best.TS {
			best = e
		}
	}
	if in.proposed == nil {
		in.proposed = make(map[int]bool)
	}
	in.proposed[r] = true
	in.est = best.Val
	in.ts = r
	in.estFree = append(in.estFree, in.estBuf[r][:0])
	delete(in.estBuf, r)
	// The coordinator's own reply is an implicit positive acknowledgment.
	in.tally(r).oks++
	if tr := in.e.tr; tr != nil {
		tr.Emit(trace.Event{T: in.e.ctx.Now(), P: int32(in.e.ctx.ID()), Kind: trace.KindProposal, A: int64(in.cid), B: int64(r), X: float64(best.Val)})
	}
	neko.Broadcast(in.e.ctx, neko.Message{
		Type:    MsgPropose,
		Payload: Propose{Cid: in.cid, Round: r, Val: best.Val},
	})
	in.maybeConclude(r)
}

// handlePropose runs phase 3 at a participant.
func (in *Instance) handlePropose(p Propose, from neko.ProcessID) {
	if in.decided || in.aborted {
		return
	}
	switch {
	case p.Round == in.round && in.waitingProposal:
		in.acceptProposal(p.Round, p.Val, from)
	case p.Round > in.round:
		// The coordinator of a future round gathered a majority without
		// us; handle the proposal when we reach that round.
		in.propBuf[p.Round] = p.Val
	}
	// p.Round < in.round: stale — we already nacked and moved on.
}

// acceptProposal adopts the coordinator's value, acks, and proceeds to the
// next round (the CT algorithm does not block waiting for the decision —
// it arrives via the decide broadcast).
func (in *Instance) acceptProposal(r int, val int64, c neko.ProcessID) {
	in.waitingProposal = false
	in.est = val
	in.ts = r
	if tr := in.e.tr; tr != nil {
		tr.Emit(trace.Event{T: in.e.ctx.Now(), P: int32(in.e.ctx.ID()), Q: int32(c), Kind: trace.KindAck, A: int64(in.cid), B: int64(r), X: 1})
	}
	in.e.ctx.Send(neko.Message{
		To:      c,
		Type:    MsgAck,
		Payload: Ack{Cid: in.cid, Round: r, OK: true},
	})
	in.startRound(r + 1)
}

// rejectCoordinator sends a negative acknowledgment for round r and moves
// on. The nack is sent even to a coordinator suspected from the start —
// the real implementation cannot know the suspicion is justified, and the
// message costs real resources (Table 1 depends on this).
func (in *Instance) rejectCoordinator(r int, c neko.ProcessID) {
	in.waitingProposal = false
	if tr := in.e.tr; tr != nil {
		tr.Emit(trace.Event{T: in.e.ctx.Now(), P: int32(in.e.ctx.ID()), Q: int32(c), Kind: trace.KindAck, A: int64(in.cid), B: int64(r), X: 0})
	}
	in.e.ctx.Send(neko.Message{
		To:      c,
		Type:    MsgAck,
		Payload: Ack{Cid: in.cid, Round: r, OK: false},
	})
	in.startRound(r + 1)
}

// onSuspicion implements the phase-3 escape: a participant waiting for the
// proposal of a now-suspected coordinator nacks and advances (§2.1).
func (in *Instance) onSuspicion(q neko.ProcessID) {
	if in.decided || in.aborted || !in.waitingProposal {
		return
	}
	if q != in.e.Coordinator(in.round) {
		return
	}
	in.rejectCoordinator(in.round, q)
}

// handleAck runs phase 4 at the coordinator of round p.Round.
func (in *Instance) handleAck(p Ack) {
	if in.decided || in.aborted || in.e.Coordinator(p.Round) != in.e.ctx.ID() {
		return
	}
	t := in.tally(p.Round)
	if t.evaluated {
		return
	}
	if p.OK {
		t.oks++
	} else {
		t.nacks++
	}
	in.maybeConclude(p.Round)
}

func (in *Instance) tally(r int) *ackTally {
	t := in.ackBuf[r]
	if t == nil {
		if n := len(in.tallyFree); n > 0 {
			t = in.tallyFree[n-1]
			in.tallyFree[n-1] = nil
			in.tallyFree = in.tallyFree[:n-1]
		} else {
			t = &ackTally{}
		}
		in.ackBuf[r] = t
	}
	return t
}

// maybeConclude evaluates phase 4 once a majority of replies is in: all
// positive → decide and broadcast; any negative → next round.
func (in *Instance) maybeConclude(r int) {
	t := in.tally(r)
	if t.evaluated || t.oks+t.nacks < in.e.maj {
		return
	}
	t.evaluated = true
	if t.nacks == 0 {
		neko.Broadcast(in.e.ctx, neko.Message{
			Type:    MsgDecide,
			Payload: Decide{Cid: in.cid, Val: in.est},
		})
		in.deliverDecision(in.est, r, false)
		return
	}
	// At least one negative acknowledgment: the round failed. The
	// coordinator is still in round r (it never waits for its own
	// proposal), so advance from there.
	if in.round == r {
		in.startRound(r + 1)
	}
}

// deliverDecision finalizes the instance. relayed marks decisions learned
// from the decide broadcast rather than concluded locally; round 0 means
// "the local current round" (the wire Decide payload stays minimal — the
// paper's messages are ~100 bytes, §2.5).
func (in *Instance) deliverDecision(val int64, round int, relayed bool) {
	if in.decided || in.aborted {
		return
	}
	in.decided = true
	if round == 0 {
		round = in.round
	}
	in.decision = Decision{Cid: in.cid, Val: val, At: in.e.ctx.Now(), Round: round}
	if tr := in.e.tr; tr != nil {
		tr.Emit(trace.Event{T: in.e.ctx.Now(), P: int32(in.e.ctx.ID()), Kind: trace.KindDecide, A: int64(in.cid), B: int64(round), X: float64(val)})
	}
	if relayed && in.e.opts.RelayDecide {
		neko.Broadcast(in.e.ctx, neko.Message{
			Type:    MsgDecide,
			Payload: Decide{Cid: in.cid, Val: val},
		})
	}
	if in.onDecide != nil {
		in.onDecide(in.decision)
	}
}
