package consensus

import (
	"fmt"
	"testing"

	"ctsan/internal/dist"
	"ctsan/internal/fd"
	"ctsan/internal/neko"
	"ctsan/internal/netsim"
	"ctsan/internal/rng"
)

// harness wires n consensus engines over a quiet emulated cluster.
type harness struct {
	t       *testing.T
	n       int
	cluster *netsim.Cluster
	engines []*Engine // index 1..n
	decided map[neko.ProcessID]Decision
	aborted map[neko.ProcessID]bool
}

// quietParams removes all stochastic noise for deterministic tests.
func quietParams(n int) netsim.Params {
	return netsim.Params{
		N:            n,
		TSend:        dist.Det(0.025),
		TReceive:     dist.Det(0.025),
		TWire:        dist.Det(0.09),
		Tail:         dist.Det(0),
		GridProb:     0,
		ThreadJitter: dist.Det(0),
		KernelLate:   dist.Det(0),
		WakeTail:     dist.Det(0),
		ClockSkew:    dist.Det(0),
	}
}

// newHarness builds the cluster; detFor selects each process's failure
// detector (nil means a trusting oracle).
func newHarness(t *testing.T, params netsim.Params, opts Options, detFor func(i int, stack *neko.Stack) neko.FailureDetector) *harness {
	t.Helper()
	c, err := netsim.New(params, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t:       t,
		n:       params.N,
		cluster: c,
		engines: make([]*Engine, params.N+1),
		decided: make(map[neko.ProcessID]Decision),
		aborted: make(map[neko.ProcessID]bool),
	}
	for i := 1; i <= params.N; i++ {
		stack := neko.NewStack(c.Context(neko.ProcessID(i)))
		var det neko.FailureDetector
		if detFor != nil {
			det = detFor(i, stack)
		}
		if det == nil {
			det = fd.NewOracle()
		}
		h.engines[i] = NewEngine(stack, det, opts)
		c.Attach(neko.ProcessID(i), stack)
	}
	c.Start()
	return h
}

// propose starts instance cid on every process in crashedless; value = id.
func (h *harness) propose(cid uint64, skip map[int]bool) {
	for i := 1; i <= h.n; i++ {
		if skip[i] {
			continue
		}
		i := i
		id := neko.ProcessID(i)
		h.cluster.StartAt(id, 1.0, func() {
			h.engines[i].Propose(cid, int64(i), func(d Decision) {
				h.decided[id] = d
			}, func() {
				h.aborted[id] = true
			})
		})
	}
}

// checkAgreementValidity asserts the standard consensus properties over
// the processes that decided.
func (h *harness) checkAgreementValidity(proposed map[int64]bool) {
	h.t.Helper()
	var val int64
	first := true
	for p, d := range h.decided {
		if first {
			val = d.Val
			first = false
		} else if d.Val != val {
			h.t.Fatalf("agreement violated: p%d decided %d, others %d", p, d.Val, val)
		}
		if !proposed[d.Val] {
			h.t.Fatalf("validity violated: decided %d was never proposed", d.Val)
		}
	}
}

func allProposed(n int, skip map[int]bool) map[int64]bool {
	m := make(map[int64]bool)
	for i := 1; i <= n; i++ {
		if !skip[i] {
			m[int64(i)] = true
		}
	}
	return m
}

func TestFailureFreeRunDecidesRoundOne(t *testing.T) {
	for _, n := range []int{2, 3, 5, 7} {
		h := newHarness(t, quietParams(n), Options{}, nil)
		h.propose(1, nil)
		h.cluster.RunUntil(100)
		if len(h.decided) != n {
			t.Fatalf("n=%d: %d/%d processes decided", n, len(h.decided), n)
		}
		h.checkAgreementValidity(allProposed(n, nil))
		for p, d := range h.decided {
			if p == 1 && d.Round != 1 {
				t.Fatalf("n=%d: coordinator decided in round %d, want 1", n, d.Round)
			}
		}
		// The coordinator's estimate (its own) carries the highest
		// timestamp only at round 1 start; the decided value must be one
		// of the early estimates. With a quiet network, p1 proposes its
		// own value.
		if h.decided[1].Val != 1 {
			t.Fatalf("n=%d: decided %d, want the coordinator's value 1", n, h.decided[1].Val)
		}
	}
}

func TestCoordinatorCrashTwoRounds(t *testing.T) {
	params := quietParams(5)
	params.Crashed = []neko.ProcessID{1}
	h := newHarness(t, params, Options{}, func(i int, stack *neko.Stack) neko.FailureDetector {
		return fd.NewOracle(1)
	})
	h.propose(1, map[int]bool{1: true})
	h.cluster.RunUntil(100)
	if len(h.decided) != 4 {
		t.Fatalf("%d/4 correct processes decided", len(h.decided))
	}
	h.checkAgreementValidity(allProposed(5, map[int]bool{1: true}))
	if d := h.decided[2]; d.Round != 2 {
		t.Fatalf("round-2 coordinator decided in round %d, want 2", d.Round)
	}
}

func TestParticipantCrashStillDecides(t *testing.T) {
	params := quietParams(5)
	params.Crashed = []neko.ProcessID{3}
	h := newHarness(t, params, Options{}, func(i int, stack *neko.Stack) neko.FailureDetector {
		return fd.NewOracle(3)
	})
	h.propose(1, map[int]bool{3: true})
	h.cluster.RunUntil(100)
	if len(h.decided) != 4 {
		t.Fatalf("%d/4 decided", len(h.decided))
	}
	if d := h.decided[1]; d.Round != 1 {
		t.Fatalf("decided in round %d, want 1 (§5.3: participant crash finishes in one round)", d.Round)
	}
}

func TestTwoCrashesWithinMajorityTolerance(t *testing.T) {
	params := quietParams(5) // majority 3, tolerates 2 crashes
	params.Crashed = []neko.ProcessID{1, 2}
	h := newHarness(t, params, Options{}, func(i int, stack *neko.Stack) neko.FailureDetector {
		return fd.NewOracle(1, 2)
	})
	skip := map[int]bool{1: true, 2: true}
	h.propose(1, skip)
	h.cluster.RunUntil(200)
	if len(h.decided) != 3 {
		t.Fatalf("%d/3 decided", len(h.decided))
	}
	if d := h.decided[3]; d.Round != 3 {
		t.Fatalf("decided in round %d, want 3 (two crashed coordinators skipped)", d.Round)
	}
	h.checkAgreementValidity(allProposed(5, skip))
}

func TestTimestampRule(t *testing.T) {
	// A process that adopted a proposal in round 1 carries it with
	// timestamp 1; if round 1's coordinator crashes after partial success
	// the next coordinator must prefer the adopted value. We emulate this
	// by running two instances: the adoption path is internal, so instead
	// we assert the decided value of a crashed-coordinator run is the one
	// the round-2 coordinator picked from the highest timestamp available.
	params := quietParams(3)
	params.Crashed = []neko.ProcessID{1}
	h := newHarness(t, params, Options{}, func(i int, stack *neko.Stack) neko.FailureDetector {
		return fd.NewOracle(1)
	})
	h.propose(1, map[int]bool{1: true})
	h.cluster.RunUntil(100)
	h.checkAgreementValidity(allProposed(3, map[int]bool{1: true}))
	if h.decided[2].Val != 2 {
		t.Fatalf("decided %d, want round-2 coordinator's own estimate 2 (all ts equal)", h.decided[2].Val)
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	// Everyone suspects everyone: rounds fail until the guard trips.
	params := quietParams(3)
	h := newHarness(t, params, Options{MaxRounds: 7}, func(i int, stack *neko.Stack) neko.FailureDetector {
		return fd.NewOracle(1, 2, 3) // suspects all, including live coordinators
	})
	h.propose(1, nil)
	h.cluster.RunUntil(500)
	if len(h.decided) != 0 {
		t.Fatalf("decided despite everyone suspecting everyone: %+v", h.decided)
	}
	if len(h.aborted) != 3 {
		t.Fatalf("%d/3 aborted", len(h.aborted))
	}
}

func TestSequentialInstances(t *testing.T) {
	h := newHarness(t, quietParams(3), Options{}, nil)
	for k := uint64(0); k < 5; k++ {
		h.decided = make(map[neko.ProcessID]Decision)
		for i := 1; i <= 3; i++ {
			i := i
			id := neko.ProcessID(i)
			k := k
			h.cluster.StartAt(id, float64(10*k)+1, func() {
				h.engines[i].Propose(k, int64(100*int(k)+i), func(d Decision) {
					h.decided[id] = d
				}, nil)
			})
		}
		h.cluster.RunUntil(float64(10*k) + 9)
		if len(h.decided) != 3 {
			t.Fatalf("instance %d: %d/3 decided", k, len(h.decided))
		}
		want := int64(100*int(k) + 1)
		if h.decided[1].Val != want {
			t.Fatalf("instance %d decided %d, want %d", k, h.decided[1].Val, want)
		}
		for i := 1; i <= 3; i++ {
			h.engines[i].Forget(k)
		}
	}
}

func TestDuplicateProposePanics(t *testing.T) {
	h := newHarness(t, quietParams(3), Options{}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Propose did not panic")
		}
	}()
	h.engines[1].Propose(9, 1, nil, nil)
	h.engines[1].Propose(9, 1, nil, nil)
}

func TestCoordinatorHelpers(t *testing.T) {
	h := newHarness(t, quietParams(5), Options{}, nil)
	e := h.engines[1]
	if e.Majority() != 3 {
		t.Fatalf("majority = %d", e.Majority())
	}
	for _, c := range []struct {
		round int
		want  neko.ProcessID
	}{{1, 1}, {2, 2}, {5, 5}, {6, 1}, {11, 1}, {7, 2}} {
		if got := e.Coordinator(c.round); got != c.want {
			t.Errorf("Coordinator(%d) = %d, want %d", c.round, got, c.want)
		}
	}
}

// TestSafetyUnderChaoticFD: with an adversarially flapping failure
// detector, liveness may suffer but agreement and validity must hold.
// The chaotic FD claims random suspicions on every query.
type chaoticFD struct {
	r *rng.Stream
	n int
}

func (c *chaoticFD) Suspects(q neko.ProcessID) bool      { return c.r.Float64() < 0.4 }
func (c *chaoticFD) OnChange(func(neko.ProcessID, bool)) {}
func (c *chaoticFD) String() string                      { return fmt.Sprintf("chaotic(%d)", c.n) }

func TestSafetyUnderChaoticFD(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		params := quietParams(5)
		h := newHarness(t, params, Options{MaxRounds: 200}, func(i int, stack *neko.Stack) neko.FailureDetector {
			return &chaoticFD{r: rng.New(seed*31 + uint64(i)), n: i}
		})
		h.propose(1, nil)
		h.cluster.RunUntil(2000)
		// Some runs decide, some abort; whoever decides must agree.
		h.checkAgreementValidity(allProposed(5, nil))
	}
}
