// Package fd implements the paper's failure detection machinery:
//
//   - Heartbeat: the push-style heartbeat failure detector of §2.2. Every
//     process sends a heartbeat to all others every T_h milliseconds; a
//     process p suspects q when it has received no message (heartbeat or
//     application message) from q for longer than the timeout T, and stops
//     suspecting upon the next message from q.
//   - Oracle: a perfect failure detector with a static suspicion list, used
//     for class-1 runs (suspects nobody) and class-2 runs (suspects exactly
//     the initially crashed process — "complete and accurate", §2.4).
//   - History / QoS: recording of trust↔suspect transitions and estimation
//     of the Chen-Toueg-Aguilera quality-of-service metrics (mistake
//     recurrence time T_MR, mistake duration T_M, detection time T_D)
//     using the equations of §4.
package fd

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ctsan/internal/neko"
	"ctsan/internal/trace"
)

// MsgHeartbeat is the message type of heartbeats on the wire. Heartbeats
// carry a neko.PayloadHB payload holding only a sequence number (content
// is otherwise irrelevant, in the spirit of §3: only control matters).
const MsgHeartbeat = "fd.hb"

// Heartbeat is the push-style heartbeat failure detector. It is a
// neko.Protocol layer and implements neko.FailureDetector.
type Heartbeat struct {
	ctx     neko.Context
	timeout float64 // T: suspect after this long without any message
	period  float64 // T_h: heartbeat emission period
	seq     uint64
	// state per monitored process (1-based, self unused)
	suspected []bool
	lastMsg   []float64
	timers    []neko.TimerHandle
	watchers  []func(q neko.ProcessID, suspected bool)
	history   *History
	stopped   bool
	// expireFns[q] and emitFn are the timer callbacks, allocated once at
	// construction: arming a suspicion timer on every observed message is
	// the detector's hot path and must not allocate.
	expireFns []func()
	emitFn    func()
	// emitTimer is the handle of the pending emission timer. It is
	// stopped (a no-op that recycles the executor's fired record) before
	// each re-arm, never while pending — cancelling a pending emission
	// would change the executed-event count.
	emitTimer neko.TimerHandle
	// tr, if set, records heartbeat emissions/receptions and suspicion
	// transitions into the replica's trace ring. Reset detaches it, like
	// Cluster.Reset; a traced campaign re-attaches after every reset.
	tr *trace.Tracer
}

// SetTracer attaches (nil detaches) a structured execution tracer.
func (hb *Heartbeat) SetTracer(tr *trace.Tracer) { hb.tr = tr }

var (
	_ neko.Protocol        = (*Heartbeat)(nil)
	_ neko.FailureDetector = (*Heartbeat)(nil)
)

// NewHeartbeat creates the failure detector for the given stack with
// timeout T and heartbeat period Th (both ms; the paper fixes
// Th = 0.7·T, §5.4). It registers itself as a tap (any message from q
// resets q's timer) and as the handler for heartbeat messages. history may
// be nil if QoS recording is not needed.
func NewHeartbeat(stack *neko.Stack, timeoutT, periodTh float64, history *History) *Heartbeat {
	if timeoutT <= 0 || periodTh <= 0 {
		panic(fmt.Sprintf("fd: non-positive timeout %g or period %g", timeoutT, periodTh))
	}
	ctx := stack.Context()
	hb := &Heartbeat{
		ctx:       ctx,
		timeout:   timeoutT,
		period:    periodTh,
		suspected: make([]bool, ctx.N()+1),
		lastMsg:   make([]float64, ctx.N()+1),
		timers:    make([]neko.TimerHandle, ctx.N()+1),
		history:   history,
	}
	hb.emitFn = hb.emit
	hb.expireFns = make([]func(), ctx.N()+1)
	for q := neko.ProcessID(1); int(q) <= ctx.N(); q++ {
		q := q
		hb.expireFns[q] = func() { hb.expire(q) }
	}
	stack.Tap(hb.observe)
	stack.HandleKind(neko.PayloadHB, MsgHeartbeat, func(*neko.Message) {}) // content is irrelevant; the tap did the work
	stack.AddLayer(hb)
	return hb
}

// Reset rewinds the detector to its just-constructed state so one
// detector instance can serve successive campaign replicas, recording
// into a fresh (or freshly reset) history. It must be called after the
// executor itself has been reset (netsim.Cluster.Reset), which
// invalidates every outstanding timer wholesale: the stale handles are
// discarded here without Stop, per the Cluster.Reset contract.
func (hb *Heartbeat) Reset(history *History) {
	hb.seq = 0
	hb.stopped = false
	hb.history = history
	hb.emitTimer = nil
	hb.tr = nil
	for q := range hb.timers {
		hb.timers[q] = nil
		hb.suspected[q] = false
		hb.lastMsg[q] = 0
	}
}

// Timeout returns the failure-detection timeout T.
func (hb *Heartbeat) Timeout() float64 { return hb.timeout }

// Period returns the heartbeat period T_h.
func (hb *Heartbeat) Period() float64 { return hb.period }

// Start implements neko.Protocol: begins heartbeat emission and arms the
// suspicion timers for all peers.
func (hb *Heartbeat) Start() {
	// On a crash-recovery restart the previous emission timer may still
	// be pending (its firing is epoch-suppressed by the executor); it
	// must be dropped, not stopped — cancelling it would change the
	// executed-event count relative to the pre-pooling behavior.
	hb.emitTimer = nil
	now := hb.ctx.Now()
	for q := neko.ProcessID(1); int(q) <= hb.ctx.N(); q++ {
		if q == hb.ctx.ID() {
			continue
		}
		hb.lastMsg[q] = now
		hb.armTimer(q)
	}
	hb.emit()
}

// Stop ceases heartbeat emission and suspicion updates (used when an
// experiment ends; the paper stops FD activity once a decision is taken,
// §3.4).
func (hb *Heartbeat) Stop() {
	if hb.stopped {
		return
	}
	hb.stopped = true
	for q, t := range hb.timers {
		if t != nil {
			t.Stop()
			hb.timers[q] = nil // handles are single-use; drop after Stop
		}
	}
}

// emit broadcasts one heartbeat and schedules the next emission. The
// previous emission's handle — necessarily fired by now — is stopped
// first so pooling executors recycle its record; stopping a fired timer
// never cancels an event, so the event count is unchanged.
func (hb *Heartbeat) emit() {
	if hb.stopped {
		return
	}
	hb.seq++
	if hb.tr != nil {
		hb.tr.Emit(trace.Event{T: hb.ctx.Now(), P: int32(hb.ctx.ID()), Kind: trace.KindHBEmit, A: int64(hb.seq)})
	}
	neko.Broadcast(hb.ctx, neko.Message{
		Type:    MsgHeartbeat,
		Payload: neko.Payload{Kind: neko.PayloadHB, Seq: hb.seq},
	})
	if hb.emitTimer != nil {
		hb.emitTimer.Stop()
	}
	hb.emitTimer = hb.ctx.SetTimer(hb.period, hb.emitFn)
}

// observe is the stack tap: any message from q resets q's timer and clears
// a standing suspicion (§2.2).
func (hb *Heartbeat) observe(m *neko.Message) {
	if hb.stopped || m.From == hb.ctx.ID() || m.From < 1 || int(m.From) > hb.ctx.N() {
		return
	}
	hb.lastMsg[m.From] = hb.ctx.Now()
	if hb.tr != nil && m.Payload.Kind == neko.PayloadHB {
		hb.tr.Emit(trace.Event{T: hb.ctx.Now(), P: int32(hb.ctx.ID()), Q: int32(m.From), Kind: trace.KindHBRecv, A: int64(m.Payload.Seq)})
	}
	if hb.suspected[m.From] {
		hb.suspected[m.From] = false
		hb.transition(m.From, false)
	}
	hb.armTimer(m.From)
}

// armTimer (re)arms the suspicion timer for q at T from now. The
// callback is the preallocated expireFns[q]; Stop of the previous handle
// recycles the executor's timer record, so the re-arm — performed on
// every observed message — is allocation-free.
func (hb *Heartbeat) armTimer(q neko.ProcessID) {
	if t := hb.timers[q]; t != nil {
		t.Stop()
	}
	hb.timers[q] = hb.ctx.SetTimer(hb.timeout, hb.expireFns[q])
}

// expire handles a suspicion timer firing for q.
func (hb *Heartbeat) expire(q neko.ProcessID) {
	if hb.stopped {
		return
	}
	// The timer may fire late (scheduler); if a message from q arrived in
	// the meantime, armTimer already replaced the handle and Stop()
	// prevents this call. Still, re-check the guard condition.
	if hb.ctx.Now()-hb.lastMsg[q] < hb.timeout {
		return
	}
	if !hb.suspected[q] {
		hb.suspected[q] = true
		hb.transition(q, true)
	}
}

// transition records a suspicion change and notifies watchers.
func (hb *Heartbeat) transition(q neko.ProcessID, suspected bool) {
	if hb.tr != nil {
		if suspected {
			// X carries the last-message time so the explain mode can print
			// how long q had been silent when the suspicion was raised.
			hb.tr.Emit(trace.Event{T: hb.ctx.Now(), P: int32(hb.ctx.ID()), Q: int32(q), Kind: trace.KindSuspect, X: hb.lastMsg[q]})
		} else {
			hb.tr.Emit(trace.Event{T: hb.ctx.Now(), P: int32(hb.ctx.ID()), Q: int32(q), Kind: trace.KindTrust})
		}
	}
	if hb.history != nil {
		hb.history.Record(hb.ctx.ID(), q, suspected, hb.ctx.Now())
	}
	for _, w := range hb.watchers {
		w(q, suspected)
	}
}

// Suspects implements neko.FailureDetector.
func (hb *Heartbeat) Suspects(q neko.ProcessID) bool {
	if q < 1 || int(q) > hb.ctx.N() {
		return false
	}
	return hb.suspected[q]
}

// OnChange implements neko.FailureDetector.
func (hb *Heartbeat) OnChange(fn func(q neko.ProcessID, suspected bool)) {
	hb.watchers = append(hb.watchers, fn)
}

// Oracle is a failure detector with a fixed suspicion list: complete and
// accurate with respect to the configured crash pattern (§2.4 class 2), or
// empty for class-1 runs.
type Oracle struct {
	suspects map[neko.ProcessID]bool
}

var _ neko.FailureDetector = (*Oracle)(nil)

// NewOracle creates an oracle suspecting exactly the listed processes.
func NewOracle(suspects ...neko.ProcessID) *Oracle {
	o := &Oracle{suspects: make(map[neko.ProcessID]bool, len(suspects))}
	for _, q := range suspects {
		o.suspects[q] = true
	}
	return o
}

// Suspects implements neko.FailureDetector.
func (o *Oracle) Suspects(q neko.ProcessID) bool { return o.suspects[q] }

// OnChange implements neko.FailureDetector. The oracle never changes, so
// the callback is retained but never invoked.
func (o *Oracle) OnChange(func(q neko.ProcessID, suspected bool)) {}

// Transition is one recorded trust↔suspect state change of the failure
// detector at observer P monitoring Q.
type Transition struct {
	P, Q      neko.ProcessID
	Suspected bool
	At        float64
}

// History accumulates failure-detector transitions across all processes of
// an experiment. It is safe for concurrent use (real-time executors run
// processes on separate goroutines).
type History struct {
	mu     sync.Mutex
	events []Transition
}

// Reset discards all recorded transitions, retaining capacity, so one
// History can serve successive campaign replicas.
func (h *History) Reset() {
	h.mu.Lock()
	h.events = h.events[:0]
	h.mu.Unlock()
}

// Record appends a transition.
func (h *History) Record(p, q neko.ProcessID, suspected bool, at float64) {
	h.mu.Lock()
	h.events = append(h.events, Transition{P: p, Q: q, Suspected: suspected, At: at})
	h.mu.Unlock()
}

// Events returns a copy of the recorded transitions in recording order.
func (h *History) Events() []Transition {
	h.mu.Lock()
	defer h.mu.Unlock()
	cp := make([]Transition, len(h.events))
	copy(cp, h.events)
	return cp
}

// Len returns the number of recorded transitions.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}

// QoS holds the estimated Chen et al. metrics for a failure detector:
// averages over all ordered pairs (p, q), as in §4 of the paper.
type QoS struct {
	TMR float64 // mean mistake recurrence time [ms]
	TM  float64 // mean mistake duration [ms]
	// Pairs is the number of ordered pairs considered; MistakeFree counts
	// pairs that exhibited no mistakes during the experiment (their T_MR
	// is censored at 2·T_exp, see EstimateQoS).
	Pairs       int
	MistakeFree int
	Transitions int
}

func (q QoS) String() string {
	return fmt.Sprintf("T_MR=%.3g ms, T_M=%.3g ms (pairs=%d, mistake-free=%d)", q.TMR, q.TM, q.Pairs, q.MistakeFree)
}

// EstimateQoS computes the QoS metrics from a history spanning the
// experiment duration texp (ms), for n processes, using the paper's §4
// equations applied per ordered pair (p, q):
//
//	T_M/T_MR = T_S/T_exp   and   T_exp = (n_TS + n_ST)/2 · T_MR
//
// where T_S is the total suspicion time and n_TS, n_ST the transition
// counts. Pairs with no transitions get the censored value T_MR = 2·T_exp,
// T_M = 0 (the paper notes that precise values are unnecessary when T_MR
// is large, §5.4 footnote).
func EstimateQoS(h *History, texp float64, n int) QoS {
	type pairKey struct{ p, q neko.ProcessID }
	evs := h.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	type pairState struct {
		nTS, nST  int
		suspTime  float64
		suspSince float64
		suspected bool
	}
	states := make(map[pairKey]*pairState)
	for p := neko.ProcessID(1); int(p) <= n; p++ {
		for q := neko.ProcessID(1); int(q) <= n; q++ {
			if p != q {
				states[pairKey{p, q}] = &pairState{}
			}
		}
	}
	for _, e := range evs {
		st, ok := states[pairKey{e.P, e.Q}]
		if !ok {
			continue
		}
		if e.Suspected && !st.suspected {
			st.nTS++
			st.suspected = true
			st.suspSince = e.At
		} else if !e.Suspected && st.suspected {
			st.nST++
			st.suspected = false
			st.suspTime += e.At - st.suspSince
		}
	}
	var out QoS
	var sumTMR, sumTM float64
	// Fold pairs in (p, q) order, not map order: float summation order must
	// not depend on map iteration randomization, or identical campaigns
	// would disagree in the last bit and break bit-exact reproducibility.
	for p := neko.ProcessID(1); int(p) <= n; p++ {
		for q := neko.ProcessID(1); int(q) <= n; q++ {
			if p == q {
				continue
			}
			st := states[pairKey{p, q}]
			out.Pairs++
			if st.suspected {
				st.suspTime += texp - st.suspSince
			}
			transitions := st.nTS + st.nST
			out.Transitions += transitions
			if transitions == 0 {
				out.MistakeFree++
				sumTMR += 2 * texp
				continue
			}
			tmr := 2 * texp / float64(transitions)
			tm := tmr * st.suspTime / texp
			sumTMR += tmr
			sumTM += tm
		}
	}
	if out.Pairs > 0 {
		out.TMR = sumTMR / float64(out.Pairs)
		out.TM = sumTM / float64(out.Pairs)
	}
	return out
}

// DetectionTimes returns, for a process q crashed at time tc, the
// detection time T_D observed by each other process: the instant of its
// final trust→suspect transition regarding q, minus tc. Observers that
// never (permanently) suspect q get +Inf.
func DetectionTimes(h *History, q neko.ProcessID, tc float64, n int) map[neko.ProcessID]float64 {
	last := make(map[neko.ProcessID]float64) // final suspect-start per observer
	perm := make(map[neko.ProcessID]bool)
	for _, e := range h.Events() {
		if e.Q != q {
			continue
		}
		if e.Suspected {
			last[e.P] = e.At
			perm[e.P] = true
		} else {
			perm[e.P] = false
		}
	}
	out := make(map[neko.ProcessID]float64, n-1)
	for p := neko.ProcessID(1); int(p) <= n; p++ {
		if p == q {
			continue
		}
		if perm[p] {
			d := last[p] - tc
			if d < 0 {
				d = 0
			}
			out[p] = d
		} else {
			out[p] = math.Inf(1)
		}
	}
	return out
}
