package fd

import (
	"math"
	"testing"

	"ctsan/internal/dist"
	"ctsan/internal/neko"
	"ctsan/internal/netsim"
	"ctsan/internal/rng"
)

// quietParams returns a 2-host cluster configuration with no scheduler
// noise, so failure-detector behaviour is exactly predictable.
func quietParams(n int) netsim.Params {
	return netsim.Params{
		N:            n,
		TSend:        dist.Det(0.01),
		TReceive:     dist.Det(0.01),
		TWire:        dist.Det(0.01),
		Tail:         dist.Det(0),
		GridProb:     0,
		ThreadJitter: dist.Det(0),
		KernelLate:   dist.Det(0),
		WakeTail:     dist.Det(0),
		ClockSkew:    dist.Det(0),
	}
}

// buildFDCluster wires heartbeat detectors on every process.
func buildFDCluster(t *testing.T, params netsim.Params, timeout, period float64) (*netsim.Cluster, []*Heartbeat, *History) {
	t.Helper()
	c, err := netsim.New(params, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	hist := &History{}
	var hbs []*Heartbeat
	for i := 1; i <= params.N; i++ {
		stack := neko.NewStack(c.Context(neko.ProcessID(i)))
		hbs = append(hbs, NewHeartbeat(stack, timeout, period, hist))
		c.Attach(neko.ProcessID(i), stack)
	}
	c.Start()
	return c, hbs, hist
}

func TestNoSuspicionsInQuietCluster(t *testing.T) {
	c, hbs, hist := buildFDCluster(t, quietParams(3), 10, 7)
	c.RunUntil(500)
	if hist.Len() != 0 {
		t.Fatalf("quiet cluster produced %d FD transitions", hist.Len())
	}
	for _, hb := range hbs {
		for q := neko.ProcessID(1); q <= 3; q++ {
			if hb.Suspects(q) {
				t.Fatalf("spurious suspicion of p%d", q)
			}
		}
	}
}

func TestCrashDetectedAndPermanent(t *testing.T) {
	c, hbs, hist := buildFDCluster(t, quietParams(3), 10, 7)
	const crashAt = 100.0
	c.CrashAt(2, crashAt)
	c.RunUntil(500)
	if !hbs[0].Suspects(2) || !hbs[2].Suspects(2) {
		t.Fatal("crashed process not suspected (completeness)")
	}
	tds := DetectionTimes(hist, 2, crashAt, 3)
	for p, td := range tds {
		if math.IsInf(td, 1) {
			t.Fatalf("p%d never permanently suspected the crashed process", p)
		}
		// Detection needs at most T + T_h + slack.
		if td > 10+7+1 {
			t.Fatalf("p%d detection time %v too large", p, td)
		}
	}
}

func TestAnyMessageResetsTimer(t *testing.T) {
	// p2 sends no heartbeats (period beyond horizon) but sends an
	// application message before the timeout; p1 must not suspect it
	// until T after that message.
	params := quietParams(2)
	c, err := netsim.New(params, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	hist := &History{}
	s1 := neko.NewStack(c.Context(1))
	hb1 := NewHeartbeat(s1, 20, 1e6, hist)
	c.Attach(1, s1)
	s2 := neko.NewStack(c.Context(2))
	s2.Handle("app", func(neko.Message) {})
	ctx2 := c.Context(2)
	c.Attach(2, s2)
	c.Start()
	// App message from p2 at t=15 (before the t=20 expiry).
	c.StartAt(2, 15, func() { ctx2.Send(neko.Message{To: 1, Type: "app"}) })
	c.RunUntil(30)
	if hb1.Suspects(2) {
		t.Fatal("suspected despite fresh application message (§2.2)")
	}
	c.RunUntil(15 + 20 + 1)
	if !hb1.Suspects(2) {
		t.Fatal("not suspected T after the last message")
	}
	evs := hist.Events()
	if len(evs) != 1 || !evs[0].Suspected || evs[0].At < 35 {
		t.Fatalf("unexpected history %+v", evs)
	}
}

func TestSuspicionClearsOnMessage(t *testing.T) {
	params := quietParams(2)
	c, err := netsim.New(params, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	s1 := neko.NewStack(c.Context(1))
	hb1 := NewHeartbeat(s1, 10, 1e6, nil) // p1 monitors, never beats back fast
	c.Attach(1, s1)
	s2 := neko.NewStack(c.Context(2))
	ctx2 := c.Context(2)
	s2.Handle("app", func(neko.Message) {})
	c.Attach(2, s2)
	var changes []bool
	hb1.OnChange(func(q neko.ProcessID, suspected bool) {
		if q == 2 {
			changes = append(changes, suspected)
		}
	})
	c.Start()
	c.StartAt(2, 25, func() { ctx2.Send(neko.Message{To: 1, Type: "app"}) })
	c.RunUntil(50)
	if len(changes) < 2 || changes[0] != true || changes[1] != false {
		t.Fatalf("suspicion changes %v, want suspect then trust", changes)
	}
}

func TestOracle(t *testing.T) {
	o := NewOracle(2, 5)
	if !o.Suspects(2) || !o.Suspects(5) || o.Suspects(1) {
		t.Fatal("oracle suspicion set wrong")
	}
	o.OnChange(func(neko.ProcessID, bool) { t.Fatal("oracle must never notify") })
}

func TestNewHeartbeatValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive timeout accepted")
		}
	}()
	c, _ := netsim.New(quietParams(2), rng.New(1))
	NewHeartbeat(neko.NewStack(c.Context(1)), 0, 1, nil)
}

// TestEstimateQoSHandComputed checks the §4 equations on a synthetic
// history: one pair, two mistakes of 1 ms each over 100 ms.
func TestEstimateQoSHandComputed(t *testing.T) {
	h := &History{}
	h.Record(1, 2, true, 10)
	h.Record(1, 2, false, 11)
	h.Record(1, 2, true, 60)
	h.Record(1, 2, false, 61)
	q := EstimateQoS(h, 100, 2)
	// Pair (1,2): nTS+nST = 4 → T_MR = 2·100/4 = 50; T_S = 2 →
	// T_M = 50·2/100 = 1. Pair (2,1): mistake-free → censored 2·T_exp.
	if q.Pairs != 2 || q.MistakeFree != 1 {
		t.Fatalf("pairs=%d mistakeFree=%d", q.Pairs, q.MistakeFree)
	}
	wantTMR := (50.0 + 200.0) / 2
	if math.Abs(q.TMR-wantTMR) > 1e-9 {
		t.Fatalf("TMR = %v, want %v", q.TMR, wantTMR)
	}
	if math.Abs(q.TM-0.5) > 1e-9 { // (1 + 0)/2
		t.Fatalf("TM = %v, want 0.5", q.TM)
	}
}

// TestEstimateQoSOpenSuspicion: a suspicion still standing at the end of
// the experiment counts its elapsed time.
func TestEstimateQoSOpenSuspicion(t *testing.T) {
	h := &History{}
	h.Record(1, 2, true, 90) // suspected through t=100
	q := EstimateQoS(h, 100, 2)
	// nTS+nST = 1 → TMR = 200; TS = 10 → TM = 200·10/100 = 20.
	found := false
	for _, e := range h.Events() {
		if e.Suspected {
			found = true
		}
	}
	if !found {
		t.Fatal("history lost the event")
	}
	wantTMR := (200.0 + 200.0) / 2
	wantTM := (20.0 + 0.0) / 2
	if math.Abs(q.TMR-wantTMR) > 1e-9 || math.Abs(q.TM-wantTM) > 1e-9 {
		t.Fatalf("TMR=%v TM=%v, want %v/%v", q.TMR, q.TM, wantTMR, wantTM)
	}
}

func TestEstimateQoSIgnoresDuplicateTransitions(t *testing.T) {
	h := &History{}
	h.Record(1, 2, true, 10)
	h.Record(1, 2, true, 12) // duplicate suspect; must not double-count
	h.Record(1, 2, false, 14)
	q := EstimateQoS(h, 100, 2)
	if q.Transitions != 2 {
		t.Fatalf("transitions = %d, want 2", q.Transitions)
	}
}

func TestHeartbeatStop(t *testing.T) {
	c, hbs, hist := buildFDCluster(t, quietParams(2), 5, 3)
	c.RunUntil(20)
	before := c.Delivered()
	for _, hb := range hbs {
		hb.Stop()
	}
	c.RunUntil(100)
	// In-flight heartbeats may still land; after that, traffic must cease.
	c.RunUntil(200)
	after := c.Delivered()
	if after > before+uint64(2) {
		t.Fatalf("heartbeats continued after Stop: %d -> %d", before, after)
	}
	_ = hist
}
