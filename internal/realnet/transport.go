package realnet

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"ctsan/internal/neko"
)

// InProcMesh is an in-process transport: messages pass directly between
// process event loops. It is the fastest way to run the protocol in real
// time within one OS process.
type InProcMesh struct {
	mu    sync.RWMutex
	procs map[neko.ProcessID]*Proc
}

// NewInProcMesh creates an empty mesh; register processes with Register.
func NewInProcMesh() *InProcMesh {
	return &InProcMesh{procs: make(map[neko.ProcessID]*Proc)}
}

// Register adds a process to the mesh.
func (m *InProcMesh) Register(p *Proc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.procs[p.ID()] = p
}

// Send implements Transport.
func (m *InProcMesh) Send(msg neko.Message) error {
	m.mu.RLock()
	dst, ok := m.procs[msg.To]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("realnet: unknown destination p%d", msg.To)
	}
	dst.Deliver(msg)
	return nil
}

// Close implements Transport.
func (m *InProcMesh) Close() error { return nil }

// wireMessage is the gob envelope on TCP connections. Payload is the flat
// neko.Payload union, so no gob.Register calls are needed.
type wireMessage struct {
	From, To neko.ProcessID
	Type     string
	Payload  neko.Payload
	Size     int
}

// TCPNode is one endpoint of a TCP mesh: it owns a listener and one
// outbound connection per peer, established eagerly like the paper's
// testbed (§2.5).
type TCPNode struct {
	id       neko.ProcessID
	listener net.Listener
	mu       sync.Mutex
	encs     map[neko.ProcessID]*gob.Encoder
	conns    []net.Conn
	deliver  func(neko.Message)
	closed   bool
	wg       sync.WaitGroup
}

// NewTCPNode starts a listener for process id on 127.0.0.1 (ephemeral
// port). deliver receives inbound messages (from any goroutine).
func NewTCPNode(id neko.ProcessID, deliver func(neko.Message)) (*TCPNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("realnet: listen: %w", err)
	}
	n := &TCPNode{
		id:       id,
		listener: ln,
		encs:     make(map[neko.ProcessID]*gob.Encoder),
		deliver:  deliver,
	}
	n.wg.Add(1)
	go n.accept()
	return n, nil
}

// Addr returns the node's listen address for peers to dial.
func (n *TCPNode) Addr() string { return n.listener.Addr().String() }

// Connect dials the peer at addr; all messages to that peer use the
// resulting connection.
func (n *TCPNode) Connect(peer neko.ProcessID, addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("realnet: dial p%d: %w", peer, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		conn.Close()
		return fmt.Errorf("realnet: node closed")
	}
	n.conns = append(n.conns, conn)
	n.encs[peer] = gob.NewEncoder(conn)
	return nil
}

// accept handles inbound connections, decoding messages until EOF.
func (n *TCPNode) accept() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns = append(n.conns, conn)
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			dec := gob.NewDecoder(conn)
			for {
				var wm wireMessage
				if err := dec.Decode(&wm); err != nil {
					return
				}
				n.deliver(neko.Message{From: wm.From, To: wm.To, Type: wm.Type, Payload: wm.Payload, Size: wm.Size})
			}
		}()
	}
}

// Send implements Transport.
func (n *TCPNode) Send(m neko.Message) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	enc, ok := n.encs[m.To]
	if !ok {
		return fmt.Errorf("realnet: no connection to p%d", m.To)
	}
	return enc.Encode(wireMessage{From: m.From, To: m.To, Type: m.Type, Payload: m.Payload, Size: m.Size})
}

// Close implements Transport: closes the listener and all connections.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	n.closed = true
	conns := n.conns
	n.conns = nil
	n.mu.Unlock()
	err := n.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	return err
}

// Cluster bundles n real-time processes over a transport, ready for
// protocol stacks. It is the real-time analogue of netsim.Cluster.
type Cluster struct {
	Procs []*Proc // index 0 holds process 1
	nodes []*TCPNode
	mesh  *InProcMesh
}

// NewInProcCluster creates n processes over the in-process transport.
func NewInProcCluster(n int, errFn func(error)) *Cluster {
	mesh := NewInProcMesh()
	c := &Cluster{mesh: mesh}
	for i := 1; i <= n; i++ {
		p := NewProc(neko.ProcessID(i), n, mesh, errFn)
		mesh.Register(p)
		c.Procs = append(c.Procs, p)
	}
	return c
}

// NewTCPCluster creates n processes meshed over loopback TCP.
func NewTCPCluster(n int, errFn func(error)) (*Cluster, error) {
	c := &Cluster{}
	for i := 1; i <= n; i++ {
		i := i
		var proc *Proc
		node, err := NewTCPNode(neko.ProcessID(i), func(m neko.Message) {
			proc.Deliver(m)
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		proc = NewProc(neko.ProcessID(i), n, node, errFn)
		c.nodes = append(c.nodes, node)
		c.Procs = append(c.Procs, proc)
	}
	// Full mesh, established before the test starts (§2.5).
	for i, node := range c.nodes {
		for j, peer := range c.nodes {
			if i == j {
				continue
			}
			if err := node.Connect(neko.ProcessID(j+1), peer.Addr()); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	return c, nil
}

// Proc returns the process with the given id.
func (c *Cluster) Proc(id neko.ProcessID) *Proc { return c.Procs[id-1] }

// Start runs every process loop in its own goroutine.
func (c *Cluster) Start() {
	for _, p := range c.Procs {
		go p.Run()
	}
}

// Close stops all processes and transports.
func (c *Cluster) Close() {
	for _, p := range c.Procs {
		if p != nil {
			p.Stop()
		}
	}
	for _, n := range c.nodes {
		if n != nil {
			n.Close()
		}
	}
}
