package realnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ctsan/internal/consensus"
	"ctsan/internal/fd"
	"ctsan/internal/neko"
)

// runConsensus wires consensus over the cluster and runs one instance,
// returning the decisions of all processes.
func runConsensus(t *testing.T, c *Cluster, n int, timeoutMs float64) map[neko.ProcessID]int64 {
	t.Helper()
	engines := make([]*consensus.Engine, n+1)
	for i := 1; i <= n; i++ {
		proc := c.Proc(neko.ProcessID(i))
		stack := neko.NewStack(proc)
		fd.NewHeartbeat(stack, timeoutMs, 0.7*timeoutMs, nil)
		det := fd.NewOracle()
		engines[i] = consensus.NewEngine(stack, det, consensus.Options{})
		proc.Attach(stack)
	}
	c.Start()
	time.Sleep(5 * time.Millisecond)

	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		decided = make(map[neko.ProcessID]int64)
	)
	wg.Add(n)
	for i := 1; i <= n; i++ {
		i := i
		proc := c.Proc(neko.ProcessID(i))
		proc.Invoke(func() {
			engines[i].Propose(1, int64(i), func(d consensus.Decision) {
				mu.Lock()
				decided[neko.ProcessID(i)] = d.Val
				mu.Unlock()
				wg.Done()
			}, nil)
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consensus did not terminate within 5s")
	}
	return decided
}

func checkAgreement(t *testing.T, decided map[neko.ProcessID]int64, n int) {
	t.Helper()
	if len(decided) != n {
		t.Fatalf("%d/%d decided", len(decided), n)
	}
	var val int64
	first := true
	for p, v := range decided {
		if first {
			val, first = v, false
		} else if v != val {
			t.Fatalf("agreement violated: p%d=%d others=%d", p, v, val)
		}
		if v < 1 || v > int64(n) {
			t.Fatalf("validity violated: %d", v)
		}
	}
}

func TestInProcConsensus(t *testing.T) {
	const n = 3
	c := NewInProcCluster(n, func(err error) { t.Error(err) })
	defer c.Close()
	checkAgreement(t, runConsensus(t, c, n, 200), n)
}

func TestTCPConsensus(t *testing.T) {
	const n = 3
	c, err := NewTCPCluster(n, func(err error) { t.Log(err) })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	checkAgreement(t, runConsensus(t, c, n, 500), n)
}

func TestTCPFiveProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 5
	c, err := NewTCPCluster(n, func(err error) { t.Log(err) })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	checkAgreement(t, runConsensus(t, c, n, 500), n)
}

func TestTCPNodeRoundtrip(t *testing.T) {
	got := make(chan neko.Message, 1)
	a, err := NewTCPNode(1, func(m neko.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNode(2, func(m neko.Message) { got <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Connect(2, b.Addr()); err != nil {
		t.Fatal(err)
	}
	want := neko.Message{From: 1, To: 2, Type: "ct.ack", Payload: neko.Payload{Kind: neko.PayloadAck, Cid: 7, Round: 3, OK: true}, Size: 64}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m != want {
			t.Fatalf("message mismatch: got %+v, want %+v", m, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestSendToUnknownPeer(t *testing.T) {
	a, err := NewTCPNode(1, func(neko.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(neko.Message{To: 9, Type: "x"}); err == nil {
		t.Fatal("send to unconnected peer succeeded")
	}
	mesh := NewInProcMesh()
	if err := mesh.Send(neko.Message{To: 3}); err == nil {
		t.Fatal("in-proc send to unknown process succeeded")
	}
}

func TestProcTimer(t *testing.T) {
	c := NewInProcCluster(1, nil)
	defer c.Close()
	p := c.Proc(1)
	go p.Run()
	fired := make(chan struct{})
	p.Invoke(func() {
		p.SetTimer(5, func() { close(fired) })
	})
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer did not fire")
	}
}

func TestProcTimerStop(t *testing.T) {
	c := NewInProcCluster(1, nil)
	defer c.Close()
	p := c.Proc(1)
	go p.Run()
	fired := make(chan struct{}, 1)
	p.Invoke(func() {
		h := p.SetTimer(30, func() { fired <- struct{}{} })
		h.Stop()
	})
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestSequentialInstancesOverTCP(t *testing.T) {
	const n = 3
	c, err := NewTCPCluster(n, func(err error) { t.Log(err) })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	engines := make([]*consensus.Engine, n+1)
	for i := 1; i <= n; i++ {
		proc := c.Proc(neko.ProcessID(i))
		stack := neko.NewStack(proc)
		fd.NewHeartbeat(stack, 300, 210, nil)
		engines[i] = consensus.NewEngine(stack, fd.NewOracle(), consensus.Options{})
		proc.Attach(stack)
	}
	c.Start()
	for k := uint64(0); k < 5; k++ {
		var (
			mu   sync.Mutex
			vals = map[neko.ProcessID]int64{}
			wg   sync.WaitGroup
		)
		wg.Add(n)
		for i := 1; i <= n; i++ {
			i := i
			k := k
			c.Proc(neko.ProcessID(i)).Invoke(func() {
				engines[i].Propose(k, int64(100*int(k)+i), func(d consensus.Decision) {
					mu.Lock()
					vals[neko.ProcessID(i)] = d.Val
					mu.Unlock()
					wg.Done()
				}, nil)
			})
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("instance %d stuck", k)
		}
		var ref int64 = -1
		for _, v := range vals {
			if ref == -1 {
				ref = v
			} else if v != ref {
				t.Fatalf("instance %d: values %v", k, vals)
			}
		}
	}
}

func ExampleNewInProcCluster() {
	c := NewInProcCluster(2, nil)
	defer c.Close()
	fmt.Println(len(c.Procs))
	// Output: 2
}
