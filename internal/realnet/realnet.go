// Package realnet executes neko protocol stacks in real time, the way the
// paper's Neko framework ran the same algorithm code both in simulation
// and on the cluster [18]. Two transports are provided:
//
//   - an in-process transport (Go channels), convenient for examples and
//     fast integration tests;
//   - a TCP mesh over the loopback interface, mirroring the paper's setup:
//     "All messages were transmitted using TCP/IP; connections between
//     each pair of machines were established at the beginning of the
//     test" (§2.5). Messages are gob-encoded with a length prefix.
//
// Each process runs a single event-loop goroutine; message handlers and
// timer callbacks execute serialized on that loop, matching the execution
// model protocols see under the virtual-time emulator.
package realnet

import (
	"fmt"
	"sync"
	"time"

	"ctsan/internal/neko"
)

// Transport delivers messages between processes. Implementations must be
// safe for concurrent Send calls.
type Transport interface {
	// Send transmits m to process m.To (From is already filled in).
	Send(m neko.Message) error
	// Close releases transport resources.
	Close() error
}

// Proc is one real-time process: a neko.Context plus its event loop.
type Proc struct {
	id    neko.ProcessID
	n     int
	start time.Time
	tr    Transport
	loop  chan func()
	stack *neko.Stack
	done  chan struct{}
	stop  sync.Once
	errFn func(error)
}

var _ neko.Context = (*Proc)(nil)

// NewProc creates a process with the given identity. Attach a stack built
// against it (Stack()), then call Run. errFn (may be nil) receives
// transport errors.
func NewProc(id neko.ProcessID, n int, tr Transport, errFn func(error)) *Proc {
	if errFn == nil {
		errFn = func(error) {}
	}
	return &Proc{
		id:    id,
		n:     n,
		start: time.Now(),
		tr:    tr,
		loop:  make(chan func(), 1024),
		done:  make(chan struct{}),
		errFn: errFn,
	}
}

// ID implements neko.Context.
func (p *Proc) ID() neko.ProcessID { return p.id }

// N implements neko.Context.
func (p *Proc) N() int { return p.n }

// Now implements neko.Context: milliseconds of local clock since start.
func (p *Proc) Now() float64 { return float64(time.Since(p.start)) / float64(time.Millisecond) }

// Send implements neko.Context.
func (p *Proc) Send(m neko.Message) {
	m.From = p.id
	if err := p.tr.Send(m); err != nil {
		p.errFn(fmt.Errorf("realnet: p%d send %s: %w", p.id, m.Type, err))
	}
}

// realTimer implements neko.TimerHandle.
type realTimer struct{ t *time.Timer }

// Stop implements neko.TimerHandle.
func (rt *realTimer) Stop() { rt.t.Stop() }

// SetTimer implements neko.Context: fn runs on the process event loop.
func (p *Proc) SetTimer(d float64, fn func()) neko.TimerHandle {
	t := time.AfterFunc(time.Duration(d*float64(time.Millisecond)), func() {
		p.post(fn)
	})
	return &realTimer{t: t}
}

// post enqueues fn on the event loop; drops it if the process stopped.
func (p *Proc) post(fn func()) {
	select {
	case <-p.done:
	case p.loop <- fn:
	}
}

// Deliver injects an inbound message (called by transports).
func (p *Proc) Deliver(m neko.Message) {
	p.post(func() {
		if p.stack != nil {
			p.stack.Dispatch(&m)
		}
	})
}

// Attach binds the protocol stack (must be built against this Proc).
func (p *Proc) Attach(s *neko.Stack) { p.stack = s }

// Run starts the stack and processes events until Stop is called.
// It blocks; run it in a goroutine.
func (p *Proc) Run() {
	if p.stack != nil {
		p.post(func() { p.stack.Start() })
	}
	for {
		select {
		case <-p.done:
			return
		case fn := <-p.loop:
			fn()
		}
	}
}

// Invoke runs fn on the event loop (e.g. Propose on a consensus engine).
func (p *Proc) Invoke(fn func()) { p.post(fn) }

// Stop terminates the event loop.
func (p *Proc) Stop() { p.stop.Do(func() { close(p.done) }) }
