// Package metrics is the streaming observation core shared by all three
// evaluation engines (SAN transient simulation, cluster emulation, and
// scenario campaigns). The paper's evaluation reports only summary
// statistics — latency percentiles, means with confidence intervals,
// wrong-suspicion rates — over thousands of consensus executions per
// campaign point, so result plumbing must not retain the raw sample set.
//
// A Digest folds observations one at a time into
//
//   - Welford running moments (mean/variance via stats.Accumulator,
//     including min/max and Student-t confidence intervals), and
//   - a quantile structure with two regimes: an exact buffer that retains
//     samples in insertion order up to a configurable cap, and a
//     deterministic KLL-style compacting sketch beyond it.
//
// Below the cap every statistic — mean, CI, and interpolated quantiles —
// is bit-identical to the historical slice-and-sort path (golden tests
// pin this), and the full ordered sample set remains available through
// Exact for figure reproduction (stats.ECDF) and differential tests.
// Beyond the cap memory is bounded by O(cap + levelCap·log(n/levelCap))
// regardless of the observation count, so million-execution campaigns
// run at O(1) retained memory per replica.
//
// # Determinism rules
//
// The repository guarantees bit-identical campaign results at any worker
// count. Digests preserve that guarantee under two rules, mirroring the
// rng.Child conventions documented in PERFORMANCE.md:
//
//  1. Per-unit digests. Work unit i (a replica, a campaign point) records
//     only its own observations, in its own deterministic order.
//  2. Serial merges in unit order. Campaign folds call Merge serially in
//     replica-index (grid) order. Merge of an exact digest replays its
//     samples one by one, so an exact-mode fold is bit-identical to
//     having recorded every sample into one digest sequentially — and
//     therefore bit-identical at 1, 2, or 8 workers. Sketch-mode merges
//     are deterministic for a given merge order (same inputs, same
//     output), which the serial fold fixes.
//
// The sketch itself contains no randomness: compaction keeps
// odd- or even-indexed survivors by a per-level alternation counter, so
// two digests fed the same observation sequence are identical, bit for
// bit, on every platform.
package metrics

import (
	"math"
	"sort"

	"ctsan/internal/stats"
)

// Recorder is the write half of a digest: anything observations can be
// folded into one at a time. Both *Digest and *stats.Accumulator satisfy
// it; engines record through this interface instead of appending to
// slices, so the observation layer is swappable (a tee, a trace, a
// histogram) without touching the hot path.
type Recorder interface {
	Add(x float64)
}

var (
	_ Recorder = (*Digest)(nil)
	_ Recorder = (*stats.Accumulator)(nil)
)

// DefaultExactCap is the default exact-mode capacity: campaigns with at
// most this many retained samples keep every sample (in insertion order)
// and report exact, bit-stable quantiles. The value is chosen above the
// paper's largest per-point campaign (5000 executions, §5.2) so every
// paper-fidelity artifact reproduces exactly, while million-execution
// campaigns switch to the bounded sketch.
const DefaultExactCap = 8192

// defaultLevelCap is the per-level compactor capacity of the sketch.
// Rank error is O(levels/levelCap) with levels = log2(n/levelCap); 512
// keeps the p50/p90/p99 of a 1M-sample stream within a fraction of a
// percent while bounding sketch memory to ~levelCap·log2(n/levelCap)
// floats.
const defaultLevelCap = 512

// Digest is a mergeable, deterministic, constant-memory summary of a
// sample stream (latencies in milliseconds, throughout this repository).
// The zero value is an empty digest with DefaultExactCap. A Digest must
// not be copied after first use (it holds growing buffers); pass
// pointers.
//
// Recording (Add, AddAll, Merge) is single-goroutine, like the rest of
// a campaign fold. Queries (Quantile, ECDF, the moment accessors) do
// not mutate the digest, so a finished digest — e.g. one reached
// through a campaign Result — is safe for concurrent readers.
type Digest struct {
	acc stats.Accumulator
	// exactCap is the configured exact-mode capacity (0 = default).
	exactCap int
	// exact holds every sample in insertion order while in exact mode;
	// nil once spilled to the sketch.
	exact []float64
	// sk is the compacting sketch; non-nil exactly when the digest has
	// outgrown exact mode.
	sk *sketch
}

// NewDigest returns a digest whose exact mode retains up to exactCap
// samples (exactCap <= 0 selects DefaultExactCap).
func NewDigest(exactCap int) *Digest {
	return &Digest{exactCap: exactCap}
}

// cap resolves the configured exact capacity.
func (d *Digest) cap() int {
	if d.exactCap > 0 {
		return d.exactCap
	}
	return DefaultExactCap
}

// Add folds one observation into the digest.
func (d *Digest) Add(x float64) {
	d.acc.Add(x)
	if d.sk != nil {
		d.sk.add(x)
		return
	}
	d.exact = append(d.exact, x)
	if len(d.exact) > d.cap() {
		d.spill()
	}
}

// AddAll folds a slice of observations in order.
func (d *Digest) AddAll(xs []float64) {
	for _, x := range xs {
		d.Add(x)
	}
}

// spill moves the digest from exact to sketch mode, feeding the retained
// samples through the compactor in insertion order.
func (d *Digest) spill() {
	d.sk = newSketch(defaultLevelCap)
	for _, x := range d.exact {
		d.sk.add(x)
	}
	d.exact = nil
}

// Merge folds digest b into d. Campaign folds call Merge serially in
// replica-index order (rule 2 of the package determinism contract).
//
// When b is in exact mode its samples are replayed one by one, so the
// merged moments and quantiles are bit-identical to having recorded b's
// stream directly after d's. When b has spilled to its sketch, moments
// combine with the parallel Welford formula (stats.Accumulator.Merge)
// and the sketches merge level-wise; the result is deterministic for the
// given merge order but is an approximation, like any sketch-mode query.
// b is not modified.
func (d *Digest) Merge(b *Digest) {
	if b == nil || b.acc.N() == 0 {
		return
	}
	if b.sk == nil {
		for _, x := range b.exact {
			d.Add(x)
		}
		return
	}
	acc := b.acc // copy: Accumulator.Merge reads the argument only
	d.acc.Merge(&acc)
	if d.sk == nil {
		d.spill()
	}
	d.sk.merge(b.sk)
}

// N returns the number of observations recorded.
func (d *Digest) N() int { return d.acc.N() }

// Mean returns the sample mean (0 if empty).
func (d *Digest) Mean() float64 { return d.acc.Mean() }

// Var returns the unbiased sample variance.
func (d *Digest) Var() float64 { return d.acc.Var() }

// StdDev returns the sample standard deviation.
func (d *Digest) StdDev() float64 { return d.acc.StdDev() }

// StdErr returns the standard error of the mean.
func (d *Digest) StdErr() float64 { return d.acc.StdErr() }

// CI returns the half-width of the Student-t confidence interval for the
// mean at the given level (e.g. 0.90).
func (d *Digest) CI(level float64) float64 { return d.acc.CI(level) }

// Min returns the smallest observation (0 if empty).
func (d *Digest) Min() float64 { return d.acc.Min() }

// Max returns the largest observation (0 if empty).
func (d *Digest) Max() float64 { return d.acc.Max() }

// String formats the digest like an accumulator: "mean ± ci90 (n=N)".
func (d *Digest) String() string { return d.acc.String() }

// IsExact reports whether the digest still retains every sample, i.e.
// quantiles are exact and Exact returns the full ordered stream.
func (d *Digest) IsExact() bool { return d.sk == nil }

// Exact returns the retained samples in insertion order, or nil once the
// digest has spilled to its sketch. The slice is the digest's own
// buffer: callers must not modify it.
func (d *Digest) Exact() []float64 { return d.exact }

// ecdfGridPoints is the resolution of the approximate ECDF
// reconstructed from a sketched digest: far finer than any figure grid
// in the repository (CDFGridSteps tops out at 60), at O(1) memory.
const ecdfGridPoints = 2048

// ECDF builds an empirical CDF of the stream. Below the exact cap it is
// constructed from the retained samples — the paper-figure reproduction
// path (Figs. 6/7, KS distances), bit-identical to the historical
// slice-built ECDF. Beyond the cap it is reconstructed from a dense
// quantile grid of the sketch: an approximation with the sketch's rank
// accuracy, so oversized campaigns (e.g. repro -scale pushed past the
// cap) degrade gracefully instead of losing the distribution.
func (d *Digest) ECDF() *stats.ECDF {
	if d.sk == nil {
		return stats.NewECDF(d.exact)
	}
	return stats.NewECDF(d.sk.grid(ecdfGridPoints))
}

// Quantile returns the q-quantile (0 <= q <= 1). In exact mode it is
// computed by the shared stats.QuantileSorted interpolation rule over a
// sorted copy of the retained samples, bit-identical to the historical
// ECDF path; in sketch mode it is the weighted interpolated quantile of
// the compacted sample, deterministic for the observation sequence. NaN
// if the digest is empty. Quantile does not mutate the digest (it sorts
// a scratch copy), so concurrent queries on a finished digest are safe.
//
// Results are monotone in q up to floating-point rounding: the
// interpolation a·(1-f) + b·f (kept exactly as ECDF computes it, for
// bit-compatibility) can wiggle by an ulp when a == b, so callers must
// not assume strict ordering between quantiles closer than one ulp.
func (d *Digest) Quantile(q float64) float64 {
	if d.acc.N() == 0 {
		return math.NaN()
	}
	if d.sk != nil {
		return d.sk.quantile(q)
	}
	sorted := append([]float64(nil), d.exact...)
	sort.Float64s(sorted)
	return stats.QuantileSorted(sorted, q)
}

// Quantiles answers several quantile queries over one sorted snapshot —
// the per-point summary path (p50/p90/p99) pays one sort instead of
// one per query. Each result is bit-identical to the corresponding
// Quantile call.
func (d *Digest) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if d.acc.N() == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	if d.sk != nil {
		for i, q := range qs {
			out[i] = d.sk.quantile(q)
		}
		return out
	}
	sorted := append([]float64(nil), d.exact...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = stats.QuantileSorted(sorted, q)
	}
	return out
}

// RetainedBytes reports the digest's retained sample storage in bytes
// (exact buffer and sketch levels). It is the quantity
// BenchmarkCampaignMemory compares against the len(samples)·8 of the
// historical slice path.
func (d *Digest) RetainedBytes() int {
	b := 8 * cap(d.exact)
	if d.sk != nil {
		for _, lvl := range d.sk.levels {
			b += 8 * cap(lvl)
		}
	}
	return b
}

// sketch is a deterministic KLL-style compactor: level h holds samples
// of weight 2^h in a buffer of at most levelCap items. A full buffer is
// sorted and halved — survivors (alternately the even- and odd-indexed
// items, tracked per level by a compaction counter instead of the
// classical coin flip) move up one level at double weight. All
// operations are pure functions of the input sequence.
type sketch struct {
	levelCap    int
	levels      [][]float64
	compactions []uint64
}

func newSketch(levelCap int) *sketch {
	return &sketch{
		levelCap:    levelCap,
		levels:      [][]float64{make([]float64, 0, levelCap)},
		compactions: []uint64{0},
	}
}

// add records one weight-1 sample.
func (s *sketch) add(x float64) { s.addAt(0, x) }

// addAt appends a sample at level h, cascading compactions upward.
func (s *sketch) addAt(h int, x float64) {
	for len(s.levels) <= h {
		s.levels = append(s.levels, make([]float64, 0, s.levelCap))
		s.compactions = append(s.compactions, 0)
	}
	s.levels[h] = append(s.levels[h], x)
	for ; h < len(s.levels) && len(s.levels[h]) >= s.levelCap; h++ {
		s.compact(h)
	}
}

// compact halves level h into level h+1: sort, keep every other item
// starting at the alternating offset, double the weight.
func (s *sketch) compact(h int) {
	buf := s.levels[h]
	sort.Float64s(buf)
	off := int(s.compactions[h] & 1)
	s.compactions[h]++
	if len(s.levels) <= h+1 {
		s.levels = append(s.levels, make([]float64, 0, s.levelCap))
		s.compactions = append(s.compactions, 0)
	}
	for i := off; i < len(buf); i += 2 {
		s.levels[h+1] = append(s.levels[h+1], buf[i])
	}
	s.levels[h] = buf[:0]
}

// merge folds sketch o into s level-wise; o is not modified. The result
// depends on the merge order (sketch compaction is not associative), so
// campaign folds merge serially in replica-index order.
func (s *sketch) merge(o *sketch) {
	for h, items := range o.levels {
		for _, x := range items {
			s.addAt(h, x)
		}
	}
}

// totalWeight is the summed weight of all retained items.
func (s *sketch) totalWeight() uint64 {
	var w uint64
	for h, lvl := range s.levels {
		w += uint64(len(lvl)) << uint(h)
	}
	return w
}

// grid returns m values sampled at evenly spaced expanded ranks of the
// sketch, in nondecreasing order — a bounded-size stand-in for the full
// sorted sample, used to reconstruct an approximate ECDF.
func (s *sketch) grid(m int) []float64 {
	type wv struct {
		v float64
		w uint64
	}
	var items []wv
	for h, lvl := range s.levels {
		for _, v := range lvl {
			items = append(items, wv{v: v, w: 1 << uint(h)})
		}
	}
	if len(items) == 0 || m < 1 {
		return nil
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	w := s.totalWeight()
	if uint64(m) > w {
		m = int(w)
	}
	out := make([]float64, 0, m)
	idx, cum := 0, items[0].w
	for i := 0; i < m; i++ {
		var rank uint64
		if m > 1 {
			rank = uint64(float64(i) / float64(m-1) * float64(w-1))
		}
		for rank >= cum && idx+1 < len(items) {
			idx++
			cum += items[idx].w
		}
		out = append(out, items[idx].v)
	}
	return out
}

// quantile answers the q-quantile by expanding weights: item (v, 2^h)
// stands for 2^h copies of v, and the query interpolates between the
// values at expanded ranks floor(pos) and floor(pos)+1 with
// pos = q·(W-1), matching the exact-mode interpolation rule at weight
// granularity.
func (s *sketch) quantile(q float64) float64 {
	type wv struct {
		v float64
		w uint64
	}
	var items []wv
	for h, lvl := range s.levels {
		for _, v := range lvl {
			items = append(items, wv{v: v, w: 1 << uint(h)})
		}
	}
	if len(items) == 0 {
		return math.NaN()
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	w := s.totalWeight()
	if q <= 0 {
		return items[0].v
	}
	if q >= 1 {
		return items[len(items)-1].v
	}
	pos := q * float64(w-1)
	lo := uint64(pos)
	frac := pos - float64(lo)
	at := func(rank uint64) float64 {
		var cum uint64
		for _, it := range items {
			cum += it.w
			if rank < cum {
				return it.v
			}
		}
		return items[len(items)-1].v
	}
	va := at(lo)
	if frac == 0 || lo+1 >= w {
		return va
	}
	vb := at(lo + 1)
	return va*(1-frac) + vb*frac
}
