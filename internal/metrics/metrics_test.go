package metrics

import (
	"math"
	"sort"
	"testing"

	"ctsan/internal/rng"
	"ctsan/internal/stats"
)

// quantileGrid is the set of quantile probes used throughout the tests,
// covering the report percentiles (p50/p90/p99) plus the extremes.
var quantileGrid = []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}

// latencyStream draws a plausible latency-shaped sample stream: a
// uniform body with an exponential tail, like the paper's bi-modal
// end-to-end delays.
func latencyStream(seed uint64, n int) []float64 {
	r := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		if r.Float64() < 0.8 {
			xs[i] = r.Uniform(0.3, 1.2)
		} else {
			xs[i] = 1.2 + r.Exp(2.5)
		}
	}
	return xs
}

// TestExactModeMatchesSlicePath pins the refactor's bit-compatibility
// contract: below the cap, every digest statistic equals the historical
// slice path (sequential Accumulator + stats.ECDF) bit for bit.
func TestExactModeMatchesSlicePath(t *testing.T) {
	xs := latencyStream(1, 3000)
	var d Digest
	var acc stats.Accumulator
	for _, x := range xs {
		d.Add(x)
		acc.Add(x)
	}
	if !d.IsExact() {
		t.Fatalf("3000 samples spilled below DefaultExactCap=%d", DefaultExactCap)
	}
	if d.N() != acc.N() || d.Mean() != acc.Mean() || d.Var() != acc.Var() ||
		d.Min() != acc.Min() || d.Max() != acc.Max() || d.CI(0.90) != acc.CI(0.90) {
		t.Fatalf("digest moments diverge from sequential accumulator")
	}
	e := stats.NewECDF(xs)
	for _, q := range quantileGrid {
		if got, want := d.Quantile(q), e.Quantile(q); got != want {
			t.Fatalf("q=%g: digest %v, ECDF %v (must be bit-identical)", q, got, want)
		}
	}
	exact := d.Exact()
	if len(exact) != len(xs) {
		t.Fatalf("exact buffer lost samples: %d vs %d", len(exact), len(xs))
	}
	for i := range xs {
		if exact[i] != xs[i] {
			t.Fatalf("exact buffer reordered at %d", i)
		}
	}
	if d.ECDF() == nil || d.ECDF().N() != len(xs) {
		t.Fatal("exact-mode ECDF unavailable")
	}
}

// TestMergeReplaysExactDigests: merging per-replica exact digests
// serially in replica order must be bit-identical to recording the
// concatenated stream into a single digest — the property that keeps
// campaign folds (and the run_json.golden values) unchanged by the
// streaming refactor.
func TestMergeReplaysExactDigests(t *testing.T) {
	xs := latencyStream(2, 4000)
	var whole Digest
	whole.AddAll(xs)

	var merged Digest
	for lo := 0; lo < len(xs); lo += 250 {
		hi := lo + 250
		if hi > len(xs) {
			hi = len(xs)
		}
		var part Digest
		part.AddAll(xs[lo:hi])
		merged.Merge(&part)
	}
	if merged.N() != whole.N() || merged.Mean() != whole.Mean() ||
		merged.Var() != whole.Var() || merged.CI(0.90) != whole.CI(0.90) {
		t.Fatal("merged moments diverge from single-stream digest")
	}
	for _, q := range quantileGrid {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%g: merged %v, whole %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestMergeAssociativityExact: exact-mode merging is associative bit for
// bit — (a⊕b)⊕c and a⊕(b⊕c) replay the same sample sequence.
func TestMergeAssociativityExact(t *testing.T) {
	xs := latencyStream(3, 900)
	mk := func(lo, hi int) *Digest {
		d := &Digest{}
		d.AddAll(xs[lo:hi])
		return d
	}
	left := mk(0, 300)
	left.Merge(mk(300, 600))
	left.Merge(mk(600, 900))

	bc := mk(300, 600)
	bc.Merge(mk(600, 900))
	right := mk(0, 300)
	right.Merge(bc)

	if left.Mean() != right.Mean() || left.Var() != right.Var() || left.N() != right.N() {
		t.Fatal("exact merge not associative in the moments")
	}
	for _, q := range quantileGrid {
		if left.Quantile(q) != right.Quantile(q) {
			t.Fatalf("q=%g: exact merge not associative in the quantiles", q)
		}
	}
}

// TestExactToSketchCrossover pins the regime switch: at cap+1 samples
// the digest drops the exact buffer, keeps exact moments, and answers
// approximate quantiles.
func TestExactToSketchCrossover(t *testing.T) {
	const cap = 100
	xs := latencyStream(4, cap+1)
	d := NewDigest(cap)
	var acc stats.Accumulator
	d.AddAll(xs[:cap])
	if !d.IsExact() {
		t.Fatalf("digest spilled at %d samples with cap %d", cap, cap)
	}
	for _, x := range xs {
		acc.Add(x)
	}
	d.Add(xs[cap])
	if d.IsExact() {
		t.Fatal("digest still exact beyond its cap")
	}
	if d.Exact() != nil {
		t.Fatal("sketched digest still exposes an exact buffer")
	}
	// The ECDF degrades to a sketch-backed approximation, never nil:
	// figure code must not crash when a campaign outgrows the cap.
	if e := d.ECDF(); e == nil || e.N() == 0 {
		t.Fatal("sketched digest lost its ECDF")
	} else if med := e.Quantile(0.5); math.Abs(med-d.Quantile(0.5)) > 0.05*math.Abs(d.Quantile(0.5))+0.05 {
		t.Fatalf("approximate ECDF median %v far from digest median %v", med, d.Quantile(0.5))
	}
	// Moments stream through the accumulator and stay exact in both
	// regimes.
	if d.N() != acc.N() || d.Mean() != acc.Mean() || d.Var() != acc.Var() ||
		d.Min() != acc.Min() || d.Max() != acc.Max() {
		t.Fatal("moments perturbed by the sketch crossover")
	}
	assertQuantilesClose(t, d, xs, 0.05)
}

// TestSketchAccuracy bounds the sketch's rank error on a large stream:
// every reported quantile must sit within 2% of the requested rank.
func TestSketchAccuracy(t *testing.T) {
	xs := latencyStream(5, 200_000)
	var d Digest
	d.AddAll(xs)
	if d.IsExact() {
		t.Fatal("200k samples did not spill")
	}
	assertQuantilesClose(t, &d, xs, 0.02)
}

// TestSketchAdversarialOrders feeds orderings that defeat naive
// reservoir or windowed schemes — sorted, reverse-sorted, organ-pipe,
// and interleaved-extremes — and requires bounded rank error on each.
func TestSketchAdversarialOrders(t *testing.T) {
	base := latencyStream(6, 60_000)
	orders := map[string]func([]float64) []float64{
		"sorted": func(xs []float64) []float64 {
			s := append([]float64(nil), xs...)
			sort.Float64s(s)
			return s
		},
		"reverse": func(xs []float64) []float64 {
			s := append([]float64(nil), xs...)
			sort.Sort(sort.Reverse(sort.Float64Slice(s)))
			return s
		},
		"organ-pipe": func(xs []float64) []float64 {
			s := append([]float64(nil), xs...)
			sort.Float64s(s)
			out := make([]float64, 0, len(s))
			for i, j := 0, len(s)-1; i <= j; i, j = i+1, j-1 {
				out = append(out, s[i])
				if i != j {
					out = append(out, s[j])
				}
			}
			return out
		},
	}
	for name, reorder := range orders {
		xs := reorder(base)
		var d Digest
		d.AddAll(xs)
		t.Run(name, func(t *testing.T) {
			assertQuantilesClose(t, &d, xs, 0.05)
		})
	}
}

// TestSketchMergeDeterministic: the same per-replica digests merged in
// the same order produce bit-identical sketch quantiles — the property
// the serial grid-order fold relies on beyond the exact cap.
func TestSketchMergeDeterministic(t *testing.T) {
	parts := make([]*Digest, 8)
	for i := range parts {
		parts[i] = NewDigest(500)
		parts[i].AddAll(latencyStream(uint64(10+i), 5_000))
	}
	fold := func() *Digest {
		d := NewDigest(500)
		for _, p := range parts {
			d.Merge(p)
		}
		return d
	}
	a, b := fold(), fold()
	if a.IsExact() {
		t.Fatal("fold stayed exact; the test needs the sketch regime")
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Var() != b.Var() {
		t.Fatal("sketch-mode merge nondeterministic in the moments")
	}
	for _, q := range quantileGrid {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q=%g: sketch-mode merge nondeterministic", q)
		}
	}
	// And the merged approximation still tracks the true distribution.
	var all []float64
	for i := range parts {
		all = append(all, latencyStream(uint64(10+i), 5_000)...)
	}
	assertQuantilesClose(t, a, all, 0.05)
}

// TestQuantilesMatchesQuantile pins the batch path (one sort, several
// queries) bit-identical to individual Quantile calls, in both regimes.
func TestQuantilesMatchesQuantile(t *testing.T) {
	for _, n := range []int{500, 30_000} {
		var d Digest
		d.AddAll(latencyStream(8, n))
		batch := d.Quantiles(quantileGrid...)
		for i, q := range quantileGrid {
			if single := d.Quantile(q); batch[i] != single {
				t.Fatalf("n=%d q=%g: batch %v != single %v", n, q, batch[i], single)
			}
		}
	}
	var empty Digest
	for _, v := range empty.Quantiles(0.5, 0.9) {
		if !math.IsNaN(v) {
			t.Fatal("empty digest batch quantiles must be NaN")
		}
	}
}

// TestRetainedBytesBounded: a million-sample stream must retain orders
// of magnitude less than the 8 MB the slice path would hold.
func TestRetainedBytesBounded(t *testing.T) {
	var d Digest
	r := rng.New(7)
	const n = 1_000_000
	for i := 0; i < n; i++ {
		d.Add(r.Exp(1))
	}
	sliceBytes := 8 * n
	if got := d.RetainedBytes(); got*10 > sliceBytes {
		t.Fatalf("digest retains %d bytes, not 10x under the %d-byte slice path", got, sliceBytes)
	}
	if d.N() != n {
		t.Fatalf("lost observations: %d", d.N())
	}
}

// TestEmptyAndSingle covers the degenerate digests every sink must
// tolerate (a point whose every execution aborted).
func TestEmptyAndSingle(t *testing.T) {
	var d Digest
	if !math.IsNaN(d.Quantile(0.5)) {
		t.Fatal("empty digest quantile not NaN")
	}
	if d.N() != 0 || d.Mean() != 0 {
		t.Fatal("empty digest moments")
	}
	d.Add(3.5)
	for _, q := range quantileGrid {
		if d.Quantile(q) != 3.5 {
			t.Fatalf("single-sample quantile q=%g: %v", q, d.Quantile(q))
		}
	}
}

// assertQuantilesClose checks every probe quantile against the true
// sorted sample, requiring rank error within eps·n (and exact endpoint
// behavior inside the observed range).
func assertQuantilesClose(t *testing.T, d *Digest, xs []float64, eps float64) {
	t.Helper()
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	for _, q := range quantileGrid {
		got := d.Quantile(q)
		if got < sorted[0] || got > sorted[n-1] {
			t.Fatalf("q=%g: %v outside the sample range [%v, %v]", q, got, sorted[0], sorted[n-1])
		}
		// Rank of the estimate in the true sample.
		rank := sort.SearchFloat64s(sorted, got)
		want := q * float64(n-1)
		if diff := math.Abs(float64(rank) - want); diff > eps*float64(n)+1 {
			t.Errorf("q=%g: estimate %v has rank %d, want %0.f ± %0.f", q, got, rank, want, eps*float64(n))
		}
	}
	// Quantiles must be monotone in q (up to floating-point rounding of
	// the ECDF-compatible interpolation around ties).
	prev := math.Inf(-1)
	for _, q := range quantileGrid {
		v := d.Quantile(q)
		if v < prev && prev-v > 1e-9*math.Max(1, math.Abs(prev)) {
			t.Fatalf("quantiles not monotone at q=%g: %v < %v", q, v, prev)
		}
		prev = v
	}
}
