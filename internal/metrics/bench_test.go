package metrics

import (
	"fmt"
	"sort"
	"testing"

	"ctsan/internal/rng"
	"ctsan/internal/stats"
)

// BenchmarkCampaignMemory compares the two result-plumbing strategies at
// campaign scale: the historical slice path (append every latency, then
// sort for percentiles — what experiment.LatencyResult, scenario.Report,
// and campaign.Result did before the streaming refactor) against the
// digest path, at 10k and 1M executions. Beyond wall clock and
// allocs/op, each sub-benchmark reports the retained result footprint as
// the custom metric retained-B: what a campaign holds per replica after
// the run, which is the quantity that caps concurrent campaign width.
func BenchmarkCampaignMemory(b *testing.B) {
	for _, n := range []int{10_000, 1_000_000} {
		b.Run(fmt.Sprintf("slice/execs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var retained int
			for i := 0; i < b.N; i++ {
				r := rng.New(uint64(i) + 1)
				var samples []float64
				var acc stats.Accumulator
				for j := 0; j < n; j++ {
					v := r.Exp(1)
					samples = append(samples, v)
					acc.Add(v)
				}
				sorted := append([]float64(nil), samples...)
				sort.Float64s(sorted)
				sink = stats.QuantileSorted(sorted, 0.5) + stats.QuantileSorted(sorted, 0.9) +
					stats.QuantileSorted(sorted, 0.99) + acc.Mean()
				retained = 8 * (cap(samples) + cap(sorted))
			}
			b.ReportMetric(float64(retained), "retained-B")
		})
		b.Run(fmt.Sprintf("digest/execs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var retained int
			for i := 0; i < b.N; i++ {
				r := rng.New(uint64(i) + 1)
				var d Digest
				for j := 0; j < n; j++ {
					d.Add(r.Exp(1))
				}
				sink = d.Quantile(0.5) + d.Quantile(0.9) + d.Quantile(0.99) + d.Mean()
				retained = d.RetainedBytes()
			}
			b.ReportMetric(float64(retained), "retained-B")
		})
	}
}

// sink defeats dead-code elimination of the summary statistics.
var sink float64

// BenchmarkDigestAdd measures the per-observation cost of the streaming
// hot path once the digest has settled into sketch mode.
func BenchmarkDigestAdd(b *testing.B) {
	var d Digest
	r := rng.New(1)
	for i := 0; i < DefaultExactCap*2; i++ {
		d.Add(r.Exp(1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(r.Exp(1))
	}
}
