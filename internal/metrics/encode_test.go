package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"ctsan/internal/rng"
)

// wireDigests builds digests covering both regimes of the wire format:
// empty, exact (including exactly-at-cap), and sketch mode with several
// levels, plus adversarial values (negatives, infinities, denormals).
func wireDigests() map[string]*Digest {
	out := map[string]*Digest{}
	mk := func(name string, cap, n int, seed uint64) {
		d := NewDigest(cap)
		r := rng.New(seed)
		for i := 0; i < n; i++ {
			d.Add(r.Exp(10) - 5)
		}
		out[name] = d
	}
	out["empty"] = NewDigest(0)
	mk("exact-small", 0, 100, 1)
	mk("exact-at-cap", 64, 64, 2)
	mk("sketch-just-spilled", 64, 65, 3)
	mk("sketch-deep", 64, 50_000, 4)
	adv := NewDigest(16)
	for _, x := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), 5e-324, -1e300, 1e300} {
		adv.Add(x)
	}
	out["adversarial-values"] = adv
	return out
}

// digestEqual compares complete digest state, bit for bit.
func digestEqual(a, b *Digest) bool {
	an, amean, am2, amin, amax := a.acc.State()
	bn, bmean, bm2, bmin, bmax := b.acc.State()
	if an != bn ||
		math.Float64bits(amean) != math.Float64bits(bmean) ||
		math.Float64bits(am2) != math.Float64bits(bm2) ||
		math.Float64bits(amin) != math.Float64bits(bmin) ||
		math.Float64bits(amax) != math.Float64bits(bmax) {
		return false
	}
	if a.exactCap != b.exactCap || len(a.exact) != len(b.exact) {
		return false
	}
	for i := range a.exact {
		if math.Float64bits(a.exact[i]) != math.Float64bits(b.exact[i]) {
			return false
		}
	}
	if (a.sk == nil) != (b.sk == nil) {
		return false
	}
	if a.sk != nil {
		if a.sk.levelCap != b.sk.levelCap || !reflect.DeepEqual(a.sk.compactions, b.sk.compactions) {
			return false
		}
		if len(a.sk.levels) != len(b.sk.levels) {
			return false
		}
		for h := range a.sk.levels {
			if len(a.sk.levels[h]) != len(b.sk.levels[h]) {
				return false
			}
			for i := range a.sk.levels[h] {
				if math.Float64bits(a.sk.levels[h][i]) != math.Float64bits(b.sk.levels[h][i]) {
					return false
				}
			}
		}
	}
	return true
}

func TestDigestBinaryRoundTrip(t *testing.T) {
	for name, d := range wireDigests() {
		buf, err := d.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var got Digest
		if err := got.UnmarshalBinary(buf); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !digestEqual(d, &got) {
			t.Errorf("%s: binary round trip changed the digest", name)
		}
		// The canonical form is stable: re-encoding the restored digest
		// reproduces the original bytes.
		buf2, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Errorf("%s: re-encoding is not byte-stable", name)
		}
	}
}

func TestDigestJSONRoundTrip(t *testing.T) {
	for name, d := range wireDigests() {
		// Infinities are not representable in JSON; the binary format
		// covers them (and the adversarial case above pins that).
		if name == "adversarial-values" {
			continue
		}
		buf, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var got Digest
		if err := json.Unmarshal(buf, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !digestEqual(d, &got) {
			t.Errorf("%s: JSON round trip changed the digest", name)
		}
	}
}

// TestDigestWireMergeMatchesInMemory pins the property the whole sharded
// campaign layer rests on: folding serialized digests shard by shard is
// bit-identical to folding the live digests in the same order — in exact
// mode, in sketch mode, and across the spill boundary.
func TestDigestWireMergeMatchesInMemory(t *testing.T) {
	cases := []struct {
		name       string
		cap        int
		perDigest  int
		numDigests int
	}{
		{"exact", 0, 50, 8},
		{"spill-during-merge", 64, 20, 8},
		{"sketch", 32, 500, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parts := make([]*Digest, tc.numDigests)
			r := rng.New(99)
			for i := range parts {
				parts[i] = NewDigest(tc.cap)
				for j := 0; j < tc.perDigest; j++ {
					parts[i].Add(r.Exp(3))
				}
			}
			mem := NewDigest(tc.cap)
			wire := NewDigest(tc.cap)
			for _, p := range parts {
				mem.Merge(p)
				buf, err := p.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				var decoded Digest
				if err := decoded.UnmarshalBinary(buf); err != nil {
					t.Fatal(err)
				}
				wire.Merge(&decoded)
			}
			if !digestEqual(mem, wire) {
				t.Fatal("merging deserialized digests diverged from the in-memory merge")
			}
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
				a, b := mem.Quantile(q), wire.Quantile(q)
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("q=%g: in-memory %v vs wire %v", q, a, b)
				}
			}
		})
	}
}

// TestDigestDecodeRejectsTruncation: the binary layout has no optional
// tail, so every strict prefix of a valid encoding must fail cleanly.
func TestDigestDecodeRejectsTruncation(t *testing.T) {
	for name, d := range wireDigests() {
		buf, err := d.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(buf); cut++ {
			var got Digest
			if err := got.UnmarshalBinary(buf[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d of %d bytes decoded successfully", name, cut, len(buf))
			}
		}
		var got Digest
		if err := got.UnmarshalBinary(append(append([]byte(nil), buf...), 0)); err == nil {
			t.Fatalf("%s: trailing garbage accepted", name)
		}
	}
}

func TestDigestDecodeRejectsStructuralCorruption(t *testing.T) {
	d := wireDigests()["sketch-deep"]
	valid, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(b []byte)) {
		b := append([]byte(nil), valid...)
		mutate(b)
		var got Digest
		if err := got.UnmarshalBinary(b); err == nil {
			t.Errorf("%s: corrupted encoding accepted", name)
		}
	}
	corrupt("bad magic", func(b []byte) { b[0] = 'X' })
	corrupt("future version", func(b []byte) { b[4] = 99 })
	corrupt("unknown flags", func(b []byte) { b[5] |= 0x80 })
	corrupt("absurd exact cap", func(b []byte) {
		for i := 6; i < 14; i++ {
			b[i] = 0xff
		}
	})
	corrupt("absurd sample count", func(b []byte) {
		for i := 14; i < 22; i++ {
			b[i] = 0xff
		}
	})
}

func TestDigestUsableAfterDecode(t *testing.T) {
	// A restored digest is live, not a snapshot: Add and Merge keep
	// working, bit-identical to the never-serialized twin.
	r1, r2 := rng.New(7), rng.New(7)
	mem, wire := NewDigest(32), NewDigest(32)
	for i := 0; i < 40; i++ {
		mem.Add(r1.Exp(2))
	}
	for i := 0; i < 40; i++ {
		wire.Add(r2.Exp(2))
	}
	buf, err := wire.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored Digest
	if err := restored.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		x := r1.Exp(5)
		mem.Add(x)
		restored.Add(x)
	}
	if !digestEqual(mem, &restored) {
		t.Fatal("digest diverged from its never-serialized twin after continued use")
	}
}

// FuzzDigestUnmarshalBinary hammers the decoder with corrupted bytes: it
// must never panic, and anything it accepts must re-encode to exactly
// the bytes it was given (the canonical-form property).
func FuzzDigestUnmarshalBinary(f *testing.F) {
	for _, d := range wireDigests() {
		buf, err := d.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		if len(buf) > 30 {
			f.Add(buf[:30])
			flipped := append([]byte(nil), buf...)
			flipped[17] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Digest
		if err := d.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := d.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted encoding is not canonical:\n in: %x\nout: %x", data, out)
		}
	})
}
