package metrics

import (
	"encoding/binary"
	"math"
	"testing"

	"ctsan/internal/stats"
)

// FuzzDigestQuantile feeds adversarial sample orders and values into a
// small-cap digest (so the fuzzer crosses the exact→sketch boundary
// cheaply) and checks the query invariants that every consumer relies
// on: results inside [Min, Max], monotone in q, NaN-free for non-empty
// digests, and bit-identical to the ECDF path while exact.
func FuzzDigestQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(make([]byte, 4096)) // long run of identical samples
	ramp := make([]byte, 0, 1024)
	for i := 0; i < 256; i++ {
		ramp = append(ramp, byte(i), byte(255-i), byte(i/2), byte(i*7))
	}
	f.Add(ramp)

	f.Fuzz(func(t *testing.T, data []byte) {
		const cap = 64
		d := NewDigest(cap)
		var raw []float64
		for len(data) >= 2 {
			// Two bytes per sample keeps value diversity while letting the
			// fuzzer reach long streams; scale into a latency-like range.
			v := float64(binary.LittleEndian.Uint16(data)) / 256.0
			data = data[2:]
			d.Add(v)
			raw = append(raw, v)
		}
		if len(raw) == 0 {
			if !math.IsNaN(d.Quantile(0.5)) {
				t.Fatal("empty digest must answer NaN")
			}
			return
		}
		if d.N() != len(raw) {
			t.Fatalf("digest counted %d of %d samples", d.N(), len(raw))
		}
		qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		prev := math.Inf(-1)
		for _, q := range qs {
			v := d.Quantile(q)
			if math.IsNaN(v) {
				t.Fatalf("q=%g: NaN on non-empty digest", q)
			}
			if v < d.Min() || v > d.Max() {
				t.Fatalf("q=%g: %v outside [%v, %v]", q, v, d.Min(), d.Max())
			}
			// Monotone up to floating-point rounding: the ECDF-compatible
			// interpolation may wiggle by an ulp around ties.
			if v < prev && prev-v > 1e-9*math.Max(1, math.Abs(prev)) {
				t.Fatalf("q=%g: quantiles not monotone (%v < %v)", q, v, prev)
			}
			prev = v
		}
		if len(raw) <= cap {
			if !d.IsExact() {
				t.Fatalf("spilled at %d samples with cap %d", len(raw), cap)
			}
			e := stats.NewECDF(raw)
			for _, q := range qs {
				if d.Quantile(q) != e.Quantile(q) {
					t.Fatalf("q=%g: exact-mode digest %v != ECDF %v", q, d.Quantile(q), e.Quantile(q))
				}
			}
		} else if d.IsExact() {
			t.Fatalf("still exact at %d samples with cap %d", len(raw), cap)
		}
	})
}
