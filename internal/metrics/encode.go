package metrics

// Wire format for Digest. A crash-safe sharded campaign (campaign shard
// records, internal/checkpoint) must move digests across process
// boundaries without losing the repository's bit-identical determinism
// guarantee, so serialization is exact: every float64 travels as its
// IEEE-754 bit pattern (binary) or its shortest round-trip decimal
// (JSON, which Go's strconv guarantees parses back to the same bits),
// and the exact buffer keeps its insertion order. A digest restored from
// either encoding is indistinguishable from the original — Merge, Add,
// Quantile, and a re-serialization all produce identical bits — which
// property tests in encode_test.go pin.
//
// Both encodings are versioned. Version bumps are deliberate breaks:
// decoding rejects unknown versions instead of guessing.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"ctsan/internal/stats"
)

// digestMagic starts every binary digest; it catches "this is not a
// digest at all" before any length is trusted.
const digestMagic = "CTDG"

// DigestWireVersion is the current serialization version, shared by the
// binary and JSON encodings.
const DigestWireVersion = 1

// MarshalBinary encodes the digest's complete state — configured cap,
// moments, the exact buffer in insertion order, and every sketch level
// with its compaction counter — in a fixed little-endian layout:
//
//	"CTDG" | u8 version | u8 flags (bit0: sketch present)
//	u64 exactCap
//	u64 n | f64 mean | f64 m2 | f64 min | f64 max     (accumulator)
//	u64 len(exact) | f64 ...                          (exact buffer)
//	[sketch] u64 levelCap | u64 levels
//	         per level: u64 compactions | u64 len | f64 ...
//
// It never fails; the error return satisfies encoding.BinaryMarshaler.
func (d *Digest) MarshalBinary() ([]byte, error) {
	size := 4 + 2 + 8 + 5*8 + 8 + 8*len(d.exact)
	if d.sk != nil {
		size += 2 * 8
		for _, lvl := range d.sk.levels {
			size += 2*8 + 8*len(lvl)
		}
	}
	buf := make([]byte, 0, size)
	buf = append(buf, digestMagic...)
	flags := byte(0)
	if d.sk != nil {
		flags |= 1
	}
	buf = append(buf, DigestWireVersion, flags)
	buf = appendU64(buf, uint64(d.exactCap))
	n, mean, m2, mn, mx := d.acc.State()
	buf = appendU64(buf, uint64(n))
	buf = appendF64(buf, mean)
	buf = appendF64(buf, m2)
	buf = appendF64(buf, mn)
	buf = appendF64(buf, mx)
	buf = appendU64(buf, uint64(len(d.exact)))
	for _, x := range d.exact {
		buf = appendF64(buf, x)
	}
	if d.sk != nil {
		buf = appendU64(buf, uint64(d.sk.levelCap))
		buf = appendU64(buf, uint64(len(d.sk.levels)))
		for h, lvl := range d.sk.levels {
			buf = appendU64(buf, d.sk.compactions[h])
			buf = appendU64(buf, uint64(len(lvl)))
			for _, x := range lvl {
				buf = appendF64(buf, x)
			}
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes a MarshalBinary encoding into d, replacing its
// state. Every structural claim is validated against the remaining input
// before any allocation sized from it, so truncated or bit-flipped input
// fails with a descriptive error instead of panicking or ballooning
// memory (the fuzz harness leans on this).
func (d *Digest) UnmarshalBinary(data []byte) error {
	r := wireReader{buf: data}
	if magic := r.bytes(4); string(magic) != digestMagic {
		return fmt.Errorf("metrics: not a digest (bad magic)")
	}
	version := r.u8()
	if version != DigestWireVersion {
		return fmt.Errorf("metrics: unsupported digest wire version %d", version)
	}
	flags := r.u8()
	if flags&^1 != 0 {
		return fmt.Errorf("metrics: unknown digest flags %#x", flags)
	}
	exactCap := r.u64()
	if exactCap > math.MaxInt32 {
		return fmt.Errorf("metrics: implausible exact cap %d", exactCap)
	}
	n := r.u64()
	if n > math.MaxInt64/2 {
		return fmt.Errorf("metrics: implausible observation count %d", n)
	}
	mean, m2, mn, mx := r.f64(), r.f64(), r.f64(), r.f64()
	exact, err := r.f64Slice("exact buffer")
	if err != nil {
		return err
	}
	var sk *sketch
	if flags&1 != 0 {
		levelCap := r.u64()
		levels := r.u64()
		if r.err == nil && (levelCap < 2 || levelCap > math.MaxInt32) {
			return fmt.Errorf("metrics: implausible sketch level cap %d", levelCap)
		}
		// Each level costs at least 16 bytes on the wire, so the level
		// count is bounded by the remaining input.
		if r.err == nil && levels > uint64(len(r.buf)-r.off)/16 {
			return fmt.Errorf("metrics: sketch level count %d exceeds input", levels)
		}
		sk = &sketch{levelCap: int(levelCap)}
		for h := uint64(0); h < levels && r.err == nil; h++ {
			comp := r.u64()
			lvl, err := r.f64Slice("sketch level")
			if err != nil {
				return err
			}
			sk.compactions = append(sk.compactions, comp)
			sk.levels = append(sk.levels, lvl)
		}
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("metrics: %d trailing bytes after digest", len(r.buf)-r.off)
	}
	// Cross-checks: the structure must describe a digest this package
	// could actually have produced.
	acc, err := stats.AccumulatorFromState(int(n), mean, m2, mn, mx)
	if err != nil {
		return err
	}
	resolvedCap := int(exactCap)
	if resolvedCap == 0 {
		resolvedCap = DefaultExactCap
	}
	if sk == nil {
		if len(exact) != int(n) {
			return fmt.Errorf("metrics: exact digest claims n=%d but carries %d samples", n, len(exact))
		}
		if len(exact) > resolvedCap {
			return fmt.Errorf("metrics: exact buffer of %d exceeds cap %d", len(exact), resolvedCap)
		}
	} else {
		if len(exact) != 0 {
			return fmt.Errorf("metrics: spilled digest still carries an exact buffer")
		}
		if len(sk.levels) == 0 {
			return fmt.Errorf("metrics: spilled digest with no sketch levels")
		}
		var retained uint64
		for h, lvl := range sk.levels {
			if len(lvl) > sk.levelCap {
				return fmt.Errorf("metrics: sketch level %d holds %d items, cap %d", h, len(lvl), sk.levelCap)
			}
			retained += uint64(len(lvl)) << uint(h)
		}
		if retained > n {
			return fmt.Errorf("metrics: sketch weight %d exceeds observation count %d", retained, n)
		}
	}
	d.acc = acc
	d.exactCap = int(exactCap)
	d.exact = exact
	d.sk = sk
	return nil
}

// digestJSON is the JSON shape of a digest: the same state as the binary
// layout, human-readable. Floats rely on Go's shortest-round-trip
// encoding, so JSON round-trips are bit-exact too.
type digestJSON struct {
	V        int       `json:"v"`
	ExactCap int       `json:"exact_cap,omitempty"`
	N        int       `json:"n"`
	Mean     float64   `json:"mean"`
	M2       float64   `json:"m2"`
	Min      float64   `json:"min"`
	Max      float64   `json:"max"`
	Exact    []float64 `json:"exact,omitempty"`
	Sketch   *struct {
		LevelCap    int         `json:"level_cap"`
		Compactions []uint64    `json:"compactions"`
		Levels      [][]float64 `json:"levels"`
	} `json:"sketch,omitempty"`
}

// MarshalJSON implements json.Marshaler with the digestJSON schema.
func (d *Digest) MarshalJSON() ([]byte, error) {
	n, mean, m2, mn, mx := d.acc.State()
	out := digestJSON{
		V:        DigestWireVersion,
		ExactCap: d.exactCap,
		N:        n,
		Mean:     mean,
		M2:       m2,
		Min:      mn,
		Max:      mx,
		Exact:    d.exact,
	}
	if d.sk != nil {
		out.Sketch = &struct {
			LevelCap    int         `json:"level_cap"`
			Compactions []uint64    `json:"compactions"`
			Levels      [][]float64 `json:"levels"`
		}{LevelCap: d.sk.levelCap, Compactions: d.sk.compactions, Levels: d.sk.levels}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler. It applies the same
// structural validation as UnmarshalBinary, by funneling the decoded
// state through the binary encoder: one validator, two formats.
func (d *Digest) UnmarshalJSON(data []byte) error {
	var in digestJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("metrics: digest JSON: %w", err)
	}
	if in.V != DigestWireVersion {
		return fmt.Errorf("metrics: unsupported digest wire version %d", in.V)
	}
	tmp := Digest{exactCap: in.ExactCap, exact: in.Exact}
	if in.ExactCap < 0 || in.N < 0 {
		return fmt.Errorf("metrics: negative digest counts")
	}
	acc, err := stats.AccumulatorFromState(in.N, in.Mean, in.M2, in.Min, in.Max)
	if err != nil {
		return err
	}
	tmp.acc = acc
	if in.Sketch != nil {
		if len(in.Sketch.Compactions) != len(in.Sketch.Levels) {
			return fmt.Errorf("metrics: sketch with %d compaction counters for %d levels",
				len(in.Sketch.Compactions), len(in.Sketch.Levels))
		}
		tmp.sk = &sketch{
			levelCap:    in.Sketch.LevelCap,
			levels:      in.Sketch.Levels,
			compactions: in.Sketch.Compactions,
		}
		if tmp.sk.levelCap < 2 {
			return fmt.Errorf("metrics: implausible sketch level cap %d", tmp.sk.levelCap)
		}
	}
	bin, err := tmp.MarshalBinary()
	if err != nil {
		return err
	}
	return d.UnmarshalBinary(bin)
}

func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// wireReader is a bounds-checked little-endian cursor: the first
// out-of-range read latches an error and every later read returns zero,
// so decoding code stays linear instead of nesting length checks.
type wireReader struct {
	buf []byte
	off int
	err error
}

func (r *wireReader) bytes(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("metrics: truncated digest (need %d bytes at offset %d of %d)", n, r.off, len(r.buf))
		}
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *wireReader) u8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

// f64Slice reads a length-prefixed float64 slice, bounding the claimed
// length by the bytes actually remaining before allocating.
func (r *wireReader) f64Slice(what string) ([]float64, error) {
	n := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if n > uint64(len(r.buf)-r.off)/8 {
		return nil, fmt.Errorf("metrics: %s length %d exceeds input", what, n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out, r.err
}
