// Package fit estimates the bi-modal uniform mixture the paper uses to
// approximate measured end-to-end message delays (§5.1): "These
// distributions were approximated by using uniform distributions in a
// bi-modal fashion, thus giving, in the case of unicast messages:
// U[0.1, 0.13] (with a probability of 0.8) and U[0.145, 0.35] (with a
// probability of 0.2)."
//
// The fitted mixture, shifted by −2·t_send, parameterizes the network
// activity of the SAN model (§5.1).
package fit

import (
	"fmt"
	"math"
	"sort"

	"ctsan/internal/dist"
)

// Bimodal is a two-component uniform mixture fit.
type Bimodal struct {
	P1       float64 // probability of the first (lower) mode
	Lo1, Hi1 float64
	Lo2, Hi2 float64
}

// Dist returns the fitted mixture as a sampleable distribution.
func (b Bimodal) Dist() dist.Mixture {
	return dist.Bimodal(b.P1, b.Lo1, b.Hi1, b.Lo2, b.Hi2)
}

// Mean returns the mixture mean.
func (b Bimodal) Mean() float64 {
	return b.P1*(b.Lo1+b.Hi1)/2 + (1-b.P1)*(b.Lo2+b.Hi2)/2
}

// Shift returns the fit translated by -offset, clamped at floor. It is
// used to derive the network occupancy t_net = end-to-end − 2·t_send.
func (b Bimodal) Shift(offset, floor float64) Bimodal {
	clamp := func(v float64) float64 {
		if v-offset < floor {
			return floor
		}
		return v - offset
	}
	out := Bimodal{P1: b.P1, Lo1: clamp(b.Lo1), Hi1: clamp(b.Hi1), Lo2: clamp(b.Lo2), Hi2: clamp(b.Hi2)}
	// Keep the uniform supports non-degenerate.
	const eps = 1e-6
	if out.Hi1 <= out.Lo1 {
		out.Hi1 = out.Lo1 + eps
	}
	if out.Hi2 <= out.Lo2 {
		out.Hi2 = out.Lo2 + eps
	}
	return out
}

func (b Bimodal) String() string {
	return fmt.Sprintf("U[%.3g,%.3g] w.p. %.2f + U[%.3g,%.3g] w.p. %.2f",
		b.Lo1, b.Hi1, b.P1, b.Lo2, b.Hi2, 1-b.P1)
}

// FitBimodal fits a two-component uniform mixture to the samples. For each
// candidate split of the sorted sample it builds the mixture implied by
// the two clusters (trimmed supports) and keeps the split whose mixture
// CDF is closest (sup-norm) to the empirical CDF — the quantity the
// paper's by-eye fit of Fig. 6 optimizes. It needs at least 8 samples.
func FitBimodal(samples []float64) (Bimodal, error) {
	if len(samples) < 8 {
		return Bimodal{}, fmt.Errorf("fit: need at least 8 samples, got %d", len(samples))
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	n := len(s)

	candidate := func(k int) Bimodal {
		lo, hi := s[:k], s[k:]
		trim := func(c []float64) (float64, float64) {
			// Trim 0.5% on each side so stragglers don't stretch the
			// uniform supports.
			t := len(c) / 200
			return c[t], c[len(c)-1-t]
		}
		l1, h1 := trim(lo)
		l2, h2 := trim(hi)
		if h1 <= l1 {
			h1 = l1 + 1e-9
		}
		if h2 <= l2 {
			h2 = l2 + 1e-9
		}
		return Bimodal{P1: float64(k) / float64(n), Lo1: l1, Hi1: h1, Lo2: l2, Hi2: h2}
	}
	// Sup-norm distance between the candidate mixture CDF and the ECDF,
	// evaluated at a subsample of the order statistics.
	dist := func(b Bimodal) float64 {
		ucdf := func(x, lo, hi float64) float64 {
			switch {
			case x <= lo:
				return 0
			case x >= hi:
				return 1
			default:
				return (x - lo) / (hi - lo)
			}
		}
		worst := 0.0
		step := n / 256
		if step < 1 {
			step = 1
		}
		for i := 0; i < n; i += step {
			x := s[i]
			model := b.P1*ucdf(x, b.Lo1, b.Hi1) + (1-b.P1)*ucdf(x, b.Lo2, b.Hi2)
			emp := float64(i+1) / float64(n)
			if d := math.Abs(model - emp); d > worst {
				worst = d
			}
		}
		return worst
	}
	best := candidate(n / 2)
	bestD := dist(best)
	consider := func(k int) {
		if k < 4 || k > n-4 {
			return
		}
		b := candidate(k)
		if d := dist(b); d < bestD {
			best, bestD = b, d
		}
	}
	// Candidate splits, two families. A quantile grid 2%..98% covers
	// overlapping modes, but a grid point that misses a sharp cluster
	// boundary by more than the 0.5% trim leaks stragglers into the wrong
	// mode and stretches its uniform support across the gap — so the exact
	// positions of the largest inter-sample gaps are offered as candidates
	// too, which for well-separated modes contain the true boundary.
	type gapSplit struct {
		gap float64
		k   int
	}
	gaps := make([]gapSplit, 0, n-1)
	for k := 1; k < n; k++ {
		gaps = append(gaps, gapSplit{gap: s[k] - s[k-1], k: k})
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i].gap > gaps[j].gap })
	for _, g := range gaps[:min(64, len(gaps))] {
		consider(g.k)
	}
	lo, hi := n/50, n*98/100
	step := (hi - lo) / 150
	if step < 1 {
		step = 1
	}
	for k := lo; k <= hi; k += step {
		consider(k)
	}
	return best, nil
}
