package fit

import (
	"math"
	"testing"
	"testing/quick"

	"ctsan/internal/dist"
	"ctsan/internal/rng"
)

func TestFitRecoversPaperBimodal(t *testing.T) {
	// Sample the paper's §5.1 fit and check the estimator recovers it.
	truth := dist.Bimodal(0.8, 0.1, 0.13, 0.145, 0.35)
	r := rng.New(7)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = truth.Sample(r)
	}
	f, err := FitBimodal(samples)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name, got string
		v, want   float64
		tol       float64
	}{
		{"P1", "", f.P1, 0.8, 0.02},
		{"Lo1", "", f.Lo1, 0.1, 0.01},
		{"Hi1", "", f.Hi1, 0.13, 0.01},
		{"Lo2", "", f.Lo2, 0.145, 0.01},
		{"Hi2", "", f.Hi2, 0.35, 0.01},
	}
	for _, c := range checks {
		if math.Abs(c.v-c.want) > c.tol {
			t.Errorf("%s = %v, want %v ± %v", c.name, c.v, c.want, c.tol)
		}
	}
	if math.Abs(f.Mean()-truth.Mean()) > 0.01 {
		t.Errorf("fit mean %v vs truth %v", f.Mean(), truth.Mean())
	}
}

func TestFitNeedsSamples(t *testing.T) {
	if _, err := FitBimodal([]float64{1, 2, 3}); err == nil {
		t.Fatal("tiny sample accepted")
	}
}

func TestFitDoesNotMutateInput(t *testing.T) {
	in := []float64{5, 1, 4, 2, 9, 3, 8, 7, 6, 0}
	want := make([]float64, len(in))
	copy(want, in)
	if _, err := FitBimodal(in); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != want[i] {
			t.Fatal("FitBimodal sorted the caller's slice")
		}
	}
}

func TestShift(t *testing.T) {
	b := Bimodal{P1: 0.8, Lo1: 0.1, Hi1: 0.13, Lo2: 0.145, Hi2: 0.35}
	s := b.Shift(0.05, 0.001)
	if math.Abs(s.Lo1-0.05) > 1e-12 || math.Abs(s.Hi2-0.3) > 1e-12 {
		t.Fatalf("shift wrong: %+v", s)
	}
	// Shifting below the floor clamps and keeps supports non-degenerate.
	s2 := b.Shift(10, 0.001)
	if s2.Lo1 != 0.001 || s2.Hi1 <= s2.Lo1 || s2.Hi2 <= s2.Lo2 {
		t.Fatalf("clamped shift degenerate: %+v", s2)
	}
}

func TestShiftedDistSamples(t *testing.T) {
	b := Bimodal{P1: 0.5, Lo1: 1, Hi1: 2, Lo2: 5, Hi2: 6}
	d := b.Dist()
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if !(v >= 1 && v <= 2) && !(v >= 5 && v <= 6) {
			t.Fatalf("sample %v outside supports", v)
		}
	}
}

// TestFitSplitsWellSeparatedClusters: property test — for any two
// well-separated uniform clusters, the estimated split probability is
// close to the generating one.
func TestFitSplitsWellSeparatedClusters(t *testing.T) {
	if err := quick.Check(func(seed uint64, pRaw uint8) bool {
		p1 := 0.2 + 0.6*float64(pRaw)/255 // within [0.2, 0.8]
		truth := dist.Bimodal(p1, 0, 1, 10, 11)
		r := rng.New(seed)
		samples := make([]float64, 2000)
		for i := range samples {
			samples[i] = truth.Sample(r)
		}
		f, err := FitBimodal(samples)
		if err != nil {
			return false
		}
		return math.Abs(f.P1-p1) < 0.05 && f.Hi1 <= 1.01 && f.Lo2 >= 9.99
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	b := Bimodal{P1: 0.8, Lo1: 0.1, Hi1: 0.13, Lo2: 0.145, Hi2: 0.35}
	if s := b.String(); s == "" {
		t.Fatal("empty String")
	}
}
