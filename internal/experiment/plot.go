package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// AsciiPlot renders a figure's series as a terminal scatter plot, so that
// cmd/repro output can be eyeballed against the paper's figures without
// external tooling. Each series is drawn with its own glyph; a legend maps
// glyphs to labels. logX/logY select logarithmic axes (Figs. 8 and 9 are
// log-log in the paper).
func AsciiPlot(w io.Writer, f *Figure, width, height int, logX, logY bool) {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	glyphs := "ox+*#@%&"
	tx := func(v float64) float64 {
		if logX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if logY {
			return math.Log10(v)
		}
		return v
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	usable := false
	for _, s := range f.Series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if (logX && x <= 0) || (logY && y <= 0) || math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			usable = true
			minX, maxX = math.Min(minX, tx(x)), math.Max(maxX, tx(x))
			minY, maxY = math.Min(minY, ty(y)), math.Max(maxY, ty(y))
		}
	}
	if !usable {
		fmt.Fprintf(w, "(no plottable points for %s)\n", f.ID)
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if (logX && x <= 0) || (logY && y <= 0) || math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			col := int((tx(x) - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((ty(y)-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = g
		}
	}
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	axis := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%-10.3g", axis(maxY, logY))
		case height - 1:
			label = fmt.Sprintf("%-10.3g", axis(minY, logY))
		}
		fmt.Fprintf(w, "%s|%s|\n", label, string(line))
	}
	fmt.Fprintf(w, "%10s %-10.3g%*s\n", "", axis(minX, logX), width-9, fmt.Sprintf("%.3g", axis(maxX, logX)))
	for si, s := range f.Series {
		fmt.Fprintf(w, "    %c = %s\n", glyphs[si%len(glyphs)], s.Label)
	}
}
