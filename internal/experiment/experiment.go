// Package experiment drives measurement campaigns on the emulated cluster
// (internal/netsim), mirroring the methodology of §4–§5 of the paper:
//
//   - latency campaigns: sequential consensus executions whose beginnings
//     are separated by ≥10 ms so that executions do not interfere (§4),
//     each started "at the same time t_0" on every process subject to the
//     ±50 µs clock synchronization;
//   - the three classes of runs of §2.4: (1) no crashes and accurate
//     failure detectors, (2) one initial crash with a complete and
//     accurate failure detector, (3) no crashes but a real heartbeat
//     failure detector that makes mistakes;
//   - failure-detector QoS campaigns: the heartbeat detector's transitions
//     are recorded over the full experiment duration (multiple consensus
//     executions, §4) and reduced to the Chen et al. metrics;
//   - end-to-end delay measurements used to parameterize the SAN model
//     (§5.1, Fig. 6).
package experiment

import (
	"context"
	"fmt"
	"math"
	"reflect"

	"ctsan/internal/consensus"
	"ctsan/internal/fd"
	"ctsan/internal/metrics"
	"ctsan/internal/neko"
	"ctsan/internal/netsim"
	"ctsan/internal/obs"
	"ctsan/internal/rng"
	"ctsan/internal/stats"
)

// FDMode selects the failure-detector configuration of a campaign.
type FDMode int

const (
	// FDOracle is a perfect detector: class-1 runs suspect nobody;
	// class-2 runs suspect exactly the crashed processes.
	FDOracle FDMode = iota + 1
	// FDHeartbeat runs the real push heartbeat detector of §2.2.
	FDHeartbeat
)

// LatencySpec configures a latency campaign.
type LatencySpec struct {
	N          int
	Params     netsim.Params // zero value: netsim defaults for N
	Executions int           // consensus executions (paper: 5000 class 1/2, 1000 class 3)
	Gap        float64       // separation between execution starts, ms (paper: 10)
	Warmup     float64       // time before the first execution, ms
	FDMode     FDMode        // zero value: FDOracle
	TimeoutT   float64       // heartbeat timeout T (FDHeartbeat)
	PeriodTh   float64       // heartbeat period T_h; 0 means 0.7·T (§5.4)
	Crashed    []neko.ProcessID
	MaxRounds  int     // per-execution abort threshold; 0 = 256
	Deadline   float64 // per-execution wall deadline, ms; 0 = 500
	Seed       uint64
}

// LatencyResult aggregates a latency campaign. Per-execution samples
// stream into the Digest as executions close, so a campaign's retained
// memory is bounded regardless of its execution count (exact up to
// metrics.DefaultExactCap samples, sketched beyond).
type LatencyResult struct {
	// Digest summarizes the first-decision latency of every completed
	// execution (ms): moments, extremes, and quantiles.
	Digest metrics.Digest
	// Rounds accumulates the deciding round of every completed execution.
	Rounds  stats.Accumulator
	Aborted int     // executions where no process decided (MaxRounds/deadline)
	Texp    float64 // total experiment duration (global ms), QoS denominator
	QoS     fd.QoS  // valid for FDHeartbeat campaigns
	History *fd.History
	Events  uint64 // DES events executed (cost metric)
}

// ECDF returns the empirical CDF of the latencies: exact (built from
// the digest's retained samples) up to the digest cap, a sketch-grid
// approximation beyond it.
func (r *LatencyResult) ECDF() *stats.ECDF { return r.Digest.ECDF() }

// MeanRounds returns the average deciding round.
func (r *LatencyResult) MeanRounds() float64 {
	if r.Rounds.N() == 0 {
		return math.NaN()
	}
	return r.Rounds.Mean()
}

// validate applies defaults and sanity-checks the spec.
func (s *LatencySpec) validate() error {
	if s.N < 2 {
		return fmt.Errorf("experiment: need n >= 2, got %d", s.N)
	}
	if s.Executions < 1 {
		return fmt.Errorf("experiment: need at least 1 execution")
	}
	if len(s.Crashed) >= (s.N+1)/2 {
		return fmt.Errorf("experiment: %d crashes violate the majority-correct requirement for n=%d", len(s.Crashed), s.N)
	}
	if s.Gap == 0 {
		s.Gap = 10
	}
	if s.Warmup == 0 {
		s.Warmup = 20
	}
	if s.MaxRounds == 0 {
		s.MaxRounds = 256
	}
	if s.Deadline == 0 {
		s.Deadline = 500
	}
	if s.FDMode == 0 {
		s.FDMode = FDOracle
	}
	if s.FDMode == FDHeartbeat {
		if s.TimeoutT <= 0 {
			return fmt.Errorf("experiment: heartbeat campaign needs TimeoutT > 0")
		}
		if s.PeriodTh == 0 {
			s.PeriodTh = 0.7 * s.TimeoutT
		}
	}
	if s.Params.N == 0 {
		s.Params = netsim.DefaultParams(s.N)
	}
	s.Params.N = s.N
	s.Params.Crashed = s.Crashed
	return nil
}

// campaign is a reusable latency-campaign harness: the cluster, protocol
// stacks, engines and detectors are assembled once (newCampaign for a
// construction-compatible spec), then rewound and rerun per campaign
// (runWith). RunLatencySweep keeps one harness per worker and reuses it
// across same-shape specs — the replica-reuse discipline of san.Transient
// — so sweep campaigns that differ only in seed construct nothing per
// campaign. A reused harness is bit-identical to a fresh one.
type campaign struct {
	ctx        context.Context
	spec       LatencySpec
	cluster    *netsim.Cluster
	engines    []*consensus.Engine
	heartbeats []*fd.Heartbeat
	crashed    map[neko.ProcessID]bool
	res        *LatencyResult
	correct    int
	// rec receives each completed execution's latency; it defaults to the
	// result digest. trace, when set by a hook (the crash-transient
	// harness), additionally observes (execution index, latency) pairs —
	// watchdogged executions produce no trace call.
	rec   metrics.Recorder
	trace func(k int, lat float64)
	// Per-process Propose decision/abort hooks, allocated once. They
	// read the current execution index at fire time, which is safe:
	// engine callbacks only fire while their instance is active, and
	// instances are forgotten when their execution closes.
	decideFns []func(consensus.Decision)
	doneFns   []func()
	// startFree recycles the per-arm StartAt records (see expStartCall);
	// startAll retains every record ever created so runWith can reclaim
	// the ones stranded in the wiped event queue between campaigns.
	// wdFree/wdAll likewise for the watchdog records (see expWdCall).
	startFree []*expStartCall
	startAll  []*expStartCall
	wdFree    []*expWdCall
	wdAll     []*expWdCall
	// root and clusterRand are retained randomness streams, reseeded in
	// place per campaign so rewinding constructs nothing.
	root        rng.Stream
	clusterRand rng.Stream

	// Current execution state.
	running  bool
	execIdx  int
	execT0   float64
	closed   bool
	finished int // processes that decided or aborted in the current execution
	decided  bool
	firstAt  float64
	round    int
	val      int64
	err      error
}

// RunLatency executes a latency campaign and returns its results.
func RunLatency(spec LatencySpec) (*LatencyResult, error) {
	return RunLatencyContext(context.Background(), spec)
}

// RunLatencyContext is RunLatency with cooperative cancellation: ctx is
// checked between consensus executions, so a canceled campaign stops at
// the next execution boundary and returns ctx.Err().
func RunLatencyContext(ctx context.Context, spec LatencySpec) (*LatencyResult, error) {
	c, err := runCampaign(ctx, spec, nil)
	if err != nil {
		return nil, err
	}
	return c.res, nil
}

// runCampaign is the one-shot campaign core. hook (may be nil) runs after
// the cluster is built and started, before the first execution — used by
// the crash-transient experiment to inject mid-run crashes.
func runCampaign(ctx context.Context, spec LatencySpec, hook func(*campaign)) (*campaign, error) {
	c, err := newCampaign(spec)
	if err != nil {
		return nil, err
	}
	if err := c.runWith(ctx, spec, hook); err != nil {
		return nil, err
	}
	return c, nil
}

// constructionKey covers the LatencySpec fields baked into the harness at
// assembly time; specs that agree on it can share a harness and differ
// freely in the run-time fields (Seed, Executions, Gap, Warmup,
// Deadline).
type constructionKey struct {
	N         int
	Params    netsim.Params
	FDMode    FDMode
	TimeoutT  float64
	PeriodTh  float64
	Crashed   []neko.ProcessID
	MaxRounds int
}

func (s *LatencySpec) construction() constructionKey {
	return constructionKey{
		N: s.N, Params: s.Params, FDMode: s.FDMode,
		TimeoutT: s.TimeoutT, PeriodTh: s.PeriodTh,
		Crashed: s.Crashed, MaxRounds: s.MaxRounds,
	}
}

// compatibleWith reports whether the harness can run the (already
// validated) spec without reassembly.
func (c *campaign) compatibleWith(spec LatencySpec) bool {
	return reflect.DeepEqual(c.spec.construction(), spec.construction())
}

// newCampaign validates the spec and assembles the harness. No
// randomness is drawn here (netsim.NewIdle): runWith rewinds the cluster
// from the run spec's seed before executing.
func newCampaign(spec LatencySpec) (*campaign, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	cluster, err := netsim.NewIdle(spec.Params)
	if err != nil {
		return nil, err
	}
	c := &campaign{
		spec:      spec,
		cluster:   cluster,
		engines:   make([]*consensus.Engine, spec.N+1),
		crashed:   make(map[neko.ProcessID]bool, len(spec.Crashed)),
		decideFns: make([]func(consensus.Decision), spec.N+1),
		doneFns:   make([]func(), spec.N+1),
	}
	for _, id := range spec.Crashed {
		c.crashed[id] = true
	}
	c.correct = spec.N - len(spec.Crashed)

	for i := 1; i <= spec.N; i++ {
		id := neko.ProcessID(i)
		stack := neko.NewStack(cluster.Context(id))
		var det neko.FailureDetector
		switch spec.FDMode {
		case FDOracle:
			det = fd.NewOracle(spec.Crashed...)
		case FDHeartbeat:
			hb := fd.NewHeartbeat(stack, spec.TimeoutT, spec.PeriodTh, nil)
			c.heartbeats = append(c.heartbeats, hb)
			det = hb
		default:
			return nil, fmt.Errorf("experiment: unknown FD mode %d", spec.FDMode)
		}
		c.engines[i] = consensus.NewEngine(stack, det, consensus.Options{MaxRounds: spec.MaxRounds})
		cluster.Attach(id, stack)
		c.decideFns[i] = func(d consensus.Decision) { c.onDecision(c.execIdx, d) }
		c.doneFns[i] = func() { c.onProcessDone(c.execIdx) }
	}
	return c, nil
}

// expStartCall is a pooled StartAt callback carrying the execution index
// it was armed for: a stale call — possible when a sub-clock-skew
// Deadline lets the watchdog close an execution before its StartAts fire
// — is a no-op instead of proposing into the successor execution.
type expStartCall struct {
	c     *campaign
	i, k  int
	runFn func()
}

func (c *campaign) newStartCall(i, k int) *expStartCall {
	var sc *expStartCall
	if n := len(c.startFree); n > 0 {
		sc = c.startFree[n-1]
		c.startFree[n-1] = nil
		c.startFree = c.startFree[:n-1]
	} else {
		sc = &expStartCall{c: c}
		sc.runFn = sc.run
		c.startAll = append(c.startAll, sc)
	}
	sc.i, sc.k = i, k
	return sc
}

// expWdCall is a pooled per-execution watchdog callback: stale deadline
// events of executions that closed normally fire as no-ops (closeExec's
// execIdx guard) and return the record then. The pool stabilizes at
// roughly Deadline/Gap in-flight records, after which arming watchdogs
// allocates nothing.
type expWdCall struct {
	c     *campaign
	k     int
	runFn func()
}

func (c *campaign) newWdCall(k int) *expWdCall {
	var w *expWdCall
	if n := len(c.wdFree); n > 0 {
		w = c.wdFree[n-1]
		c.wdFree[n-1] = nil
		c.wdFree = c.wdFree[:n-1]
	} else {
		w = &expWdCall{c: c}
		w.runFn = w.run
		c.wdAll = append(c.wdAll, w)
	}
	w.k = k
	return w
}

func (w *expWdCall) run() {
	c, k := w.c, w.k
	c.wdFree = append(c.wdFree, w)
	c.closeExec(k)
}

func (sc *expStartCall) run() {
	c, i, k := sc.c, sc.i, sc.k
	c.startFree = append(c.startFree, sc)
	if c.closed || k != c.execIdx {
		return
	}
	c.engines[i].Propose(uint64(k), int64(i), c.decideFns[i], c.doneFns[i])
}

// runWith rewinds the harness and executes one campaign for spec, which
// must be construction-compatible with the harness (same assembly-time
// fields; see compatibleWith). The result lands in c.res.
func (c *campaign) runWith(ctx context.Context, spec LatencySpec, hook func(*campaign)) error {
	if err := spec.validate(); err != nil {
		return err
	}
	c.root.Reseed(spec.Seed ^ 0x5eedc0de)
	c.root.ChildInto(&c.clusterRand, 1)
	c.cluster.Reset(&c.clusterRand)
	// Rebuild the pooled-callback free lists: the wiped event queue
	// stranded the in-flight start and watchdog records of the previous
	// campaign.
	c.startFree = append(c.startFree[:0], c.startAll...)
	c.wdFree = append(c.wdFree[:0], c.wdAll...)
	for _, e := range c.engines {
		if e != nil {
			e.Reset()
		}
	}
	c.ctx = ctx
	c.spec = spec
	c.res = &LatencyResult{History: &fd.History{}}
	for _, hb := range c.heartbeats {
		hb.Reset(c.res.History)
	}
	c.rec = &c.res.Digest
	c.trace = nil
	c.running = false
	c.closed = false
	c.err = nil

	c.cluster.Start()
	if hook != nil {
		hook(c)
	}
	c.startExec(0, spec.Warmup)
	c.cluster.Run(func() bool { return !c.running || c.err != nil })
	if c.err != nil {
		return c.err
	}

	c.res.Texp = c.cluster.Now()
	c.res.Events = c.cluster.Steps()
	for _, hb := range c.heartbeats {
		hb.Stop()
	}
	if spec.FDMode == FDHeartbeat {
		c.res.QoS = fd.EstimateQoS(c.res.History, c.res.Texp, spec.N)
	}
	return nil
}

// startExec launches execution k at local time t0 on every correct process.
func (c *campaign) startExec(k int, t0 float64) {
	c.running = true
	c.execIdx = k
	c.execT0 = t0
	c.closed = false
	c.finished = 0
	c.decided = false
	c.firstAt = math.Inf(1)
	c.round = 0
	c.val = 0
	for i := 1; i <= c.spec.N; i++ {
		id := neko.ProcessID(i)
		if c.crashed[id] {
			continue
		}
		c.cluster.StartAt(id, t0, c.newStartCall(i, k).runFn)
	}
	// Watchdog: executions with catastrophic failure detection, or with a
	// process crashing mid-campaign, must not hang the campaign (cf. the
	// paper's footnote 2 on increasing the separation when latencies
	// exceeded the 10 ms gap). Scheduled globally so that no crash can
	// silence it; stale watchdogs are ignored via execIdx.
	c.cluster.AtGlobal(t0+c.spec.Deadline, c.newWdCall(k).runFn)
}

// onDecision records a decision event of execution k. Decisions of an
// execution already force-closed by the watchdog are ignored.
func (c *campaign) onDecision(k int, d consensus.Decision) {
	if c.closed || k != c.execIdx {
		return
	}
	if !c.decided {
		c.decided = true
		c.firstAt = d.At
		c.round = d.Round
		c.val = d.Val
	} else {
		if d.Val != c.val {
			c.err = fmt.Errorf("experiment: agreement violated in execution %d: decisions %d and %d", k, c.val, d.Val)
			return
		}
		if d.At < c.firstAt {
			c.firstAt = d.At
			c.round = d.Round
		}
	}
	if v := d.Val; v < 1 || int(v) > c.spec.N || c.crashed[neko.ProcessID(v)] {
		c.err = fmt.Errorf("experiment: validity violated in execution %d: decided %d", k, d.Val)
		return
	}
	c.onProcessDone(k)
}

// onProcessDone counts a process having finished (decided or aborted) the
// execution; when all correct processes are done, the execution closes.
func (c *campaign) onProcessDone(k int) {
	if c.closed || k != c.execIdx {
		return
	}
	c.finished++
	if c.finished >= c.correct {
		c.closeExec(k)
	}
}

// closeExec finalizes execution k (normally or via watchdog) and schedules
// the next one. Stale calls (watchdogs of already-closed executions) are
// ignored.
func (c *campaign) closeExec(k int) {
	if c.closed || k != c.execIdx {
		return
	}
	c.closed = true
	obs.Executions.Add(1)
	if c.decided {
		lat := c.firstAt - c.execT0
		c.rec.Add(lat)
		c.res.Rounds.Add(float64(c.round))
		if c.trace != nil {
			c.trace(k, lat)
		}
	} else {
		c.res.Aborted++
	}
	for i := 1; i <= c.spec.N; i++ {
		if c.engines[i] != nil {
			c.engines[i].Forget(uint64(k))
		}
	}
	if k+1 >= c.spec.Executions {
		c.running = false
		return
	}
	if err := c.ctx.Err(); err != nil {
		// Cancellation lands at execution boundaries: the campaign stops
		// scheduling and surfaces the clean context error.
		c.err = err
		c.running = false
		return
	}
	next := c.execT0 + c.spec.Gap
	if now := c.cluster.Now(); now+2 > next {
		next = now + 2
	}
	c.startExec(k+1, next)
}
