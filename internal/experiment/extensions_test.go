package experiment

import (
	"context"
	"errors"
	"math"
	"testing"

	"ctsan/internal/neko"
)

func TestThroughputValidation(t *testing.T) {
	if _, err := RunThroughput(ThroughputSpec{N: 1, Executions: 10}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := RunThroughput(ThroughputSpec{N: 3, Executions: 0}); err == nil {
		t.Error("0 executions accepted")
	}
	if _, err := RunThroughput(ThroughputSpec{N: 3, Executions: 5, Warmup: 5}); err == nil {
		t.Error("warmup >= executions accepted")
	}
	if _, err := RunThroughput(ThroughputSpec{N: 3, Executions: 5, FDMode: FDHeartbeat}); err == nil {
		t.Error("heartbeat mode without timeout accepted")
	}
}

func TestThroughputChainedInstances(t *testing.T) {
	res, err := RunThroughput(ThroughputSpec{N: 3, Executions: 120, Warmup: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided != 120 {
		t.Fatalf("decided %d/120", res.Decided)
	}
	if res.Aborted != 0 {
		t.Fatalf("aborted %d", res.Aborted)
	}
	if res.Rate <= 0 {
		t.Fatal("non-positive throughput")
	}
	// Chained consensus must beat the 10 ms-gap latency campaign's rate
	// (100/s) and stay below the physical bound of one instance per
	// end-to-end delay.
	if res.Rate < 150 || res.Rate > 20000 {
		t.Fatalf("rate %.0f/s implausible", res.Rate)
	}
}

func TestThroughputResourceBound(t *testing.T) {
	// §6 extension finding: the sustained inter-decision gap is governed
	// by the *total* per-instance resource footprint — every instance
	// pushes ~4(n−1) messages through the shared medium — not by the
	// decision latency, which ignores trailing acks and decides. The gap
	// therefore sits above the isolated latency but far below the 10 ms
	// isolation gap of the latency campaigns.
	lat, err := RunLatency(LatencySpec{N: 5, Executions: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	thr, err := RunThroughput(ThroughputSpec{N: 5, Executions: 200, Warmup: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	gap := thr.InterDecision.Mean()
	if gap <= lat.Digest.Mean()*0.9 {
		t.Fatalf("inter-decision gap %.3f ms below isolated latency %.3f ms: trailing traffic not accounted", gap, lat.Digest.Mean())
	}
	if gap >= 5*lat.Digest.Mean() {
		t.Fatalf("inter-decision gap %.3f ms implausibly above isolated latency %.3f ms", gap, lat.Digest.Mean())
	}
	if thr.Rate < 1000/(5*lat.Digest.Mean()) {
		t.Fatalf("rate %.0f/s below the resource bound", thr.Rate)
	}
}

func TestThroughputWithCrash(t *testing.T) {
	res, err := RunThroughput(ThroughputSpec{
		N: 5, Executions: 80, Warmup: 10, Seed: 5,
		Crashed: []neko.ProcessID{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided != 80 {
		t.Fatalf("decided %d/80 with a crashed participant", res.Decided)
	}
}

func TestCrashTransient(t *testing.T) {
	res, err := RunCrashTransient(CrashTransientSpec{
		N: 5, CrashID: 1, CrashAfter: 10, Executions: 40, TimeoutT: 20, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.SteadyBefore) || math.IsNaN(res.SteadyAfter) {
		t.Fatal("missing steady-state phases")
	}
	// Before the crash: one-round latency. The executions hitting the
	// undetected-crash window must show the detection transient.
	if res.PeakDuring < res.SteadyBefore {
		t.Fatalf("no transient peak: before %.3f, during %.3f", res.SteadyBefore, res.PeakDuring)
	}
	// After detection, the first coordinator is permanently suspected:
	// every execution pays the two-round (round-2 coordinator) path, so
	// the steady state stays above... actually round 1 collapses cheaply
	// via the standing suspicion; require only that the system recovered
	// to something finite and roughly steady.
	if res.SteadyAfter > res.PeakDuring {
		t.Fatalf("post-crash steady state %.3f above the transient peak %.3f", res.SteadyAfter, res.PeakDuring)
	}
	if res.DetectionTime <= 0 || res.DetectionTime > 3*20+60 {
		t.Fatalf("detection time %.2f ms implausible for T=20", res.DetectionTime)
	}
}

// TestExtensionsCancellation: the §6 extension harnesses were the last
// SIGINT-kill exceptions — both must now stop at instance/execution
// boundaries and surface the clean context error.
func TestExtensionsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunThroughputContext(ctx, ThroughputSpec{
		N: 3, Executions: 100000, Warmup: 10, Seed: 7,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("throughput err = %v, want context.Canceled", err)
	}
	if _, err := RunCrashTransientContext(ctx, CrashTransientSpec{
		N: 3, CrashID: 1, CrashAfter: 10, Executions: 100000, TimeoutT: 20, Seed: 7,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("crash-transient err = %v, want context.Canceled", err)
	}
}

func TestCrashTransientValidation(t *testing.T) {
	if _, err := RunCrashTransient(CrashTransientSpec{N: 3, CrashID: 1, CrashAfter: 10, Executions: 5, TimeoutT: 10}); err == nil {
		t.Error("crash point beyond campaign accepted")
	}
	if _, err := RunCrashTransient(CrashTransientSpec{N: 3, CrashID: 9, CrashAfter: 1, Executions: 5, TimeoutT: 10}); err == nil {
		t.Error("bad crash id accepted")
	}
}
