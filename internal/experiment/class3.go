package experiment

import (
	"context"
	"fmt"
	"sync"

	"ctsan/internal/fd"
	"ctsan/internal/parallel"
	"ctsan/internal/sanmodel"
	"ctsan/internal/stats"
)

// Class3Point is one class-3 campaign result: heartbeat failure detector
// with timeout T (and T_h = 0.7·T) on n processes, no crashes.
type Class3Point struct {
	N       int
	T       float64
	QoS     fd.QoS
	Mean    float64
	ECDF    *stats.ECDF
	Aborted int
}

// RunClass3 runs the §5.4 campaign: for every (n, T) in the fidelity's
// grids, measure both the failure-detector QoS metrics and the consensus
// latency over sequential executions. The grid points are independent
// campaigns and run concurrently under f.Workers; the returned points are
// in grid order regardless of worker count. progress (may be nil) receives
// one line per point as it completes — in completion order, which under
// parallelism need not be grid order.
func RunClass3(ctx context.Context, f Fidelity, seed uint64, progress func(string)) ([]Class3Point, error) {
	type gridPoint struct {
		n int
		T float64
	}
	var grid []gridPoint
	for _, n := range f.Ns {
		for _, T := range f.TGrid {
			grid = append(grid, gridPoint{n: n, T: T})
		}
	}
	var progressMu sync.Mutex
	out, err := parallel.Map(ctx, f.Workers, len(grid), func(_, i int) (Class3Point, error) {
		n, T := grid[i].n, grid[i].T
		res, err := RunLatencyContext(ctx, LatencySpec{
			N:          n,
			Executions: f.QoSExecs,
			Seed:       seed + uint64(n)*1000 + uint64(T*10),
			FDMode:     FDHeartbeat,
			TimeoutT:   T,
		})
		if err != nil {
			return Class3Point{}, fmt.Errorf("class3 n=%d T=%g: %w", n, T, err)
		}
		pt := Class3Point{N: n, T: T, QoS: res.QoS, Aborted: res.Aborted}
		if res.Digest.N() > 0 {
			pt.Mean = res.Digest.Mean()
			pt.ECDF = res.ECDF()
		}
		if progress != nil {
			progressMu.Lock()
			progress(fmt.Sprintf("class3 n=%d T=%g: latency %.3f ms, %s, aborted=%d",
				pt.N, pt.T, pt.Mean, pt.QoS, pt.Aborted))
			progressMu.Unlock()
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig8 reproduces Fig. 8: the failure-detector QoS metrics T_MR (a) and
// T_M (b) as a function of the timeout T.
func Fig8(points []Class3Point) (tmrFig, tmFig *Figure) {
	tmrFig = &Figure{
		ID:     "FIG8a",
		Title:  "failure detector mistake recurrence time T_MR vs timeout T (no failures)",
		XLabel: "failure detection timeout T [ms]",
		YLabel: "mistake recurrence time [ms]",
		Notes: []string{
			"paper: increasing tendency; T_MR rises very fast beyond T = 30 ms (>190 ms at T=40, >5000 ms at T=100)",
			"points where no mistakes were observed report the censored value 2·T_exp",
		},
	}
	tmFig = &Figure{
		ID:     "FIG8b",
		Title:  "failure detector mistake duration T_M vs timeout T (no failures)",
		XLabel: "failure detection timeout T [ms]",
		YLabel: "mistake duration [ms]",
		Notes:  []string{"paper: less regular, remains bounded (<12 ms) for all T"},
	}
	series := map[int]*[2]Series{}
	var ns []int
	for _, p := range points {
		s, ok := series[p.N]
		if !ok {
			s = &[2]Series{
				{Label: fmt.Sprintf("%d processes", p.N)},
				{Label: fmt.Sprintf("%d processes", p.N)},
			}
			series[p.N] = s
			ns = append(ns, p.N)
		}
		s[0].X = append(s[0].X, p.T)
		s[0].Y = append(s[0].Y, p.QoS.TMR)
		s[1].X = append(s[1].X, p.T)
		s[1].Y = append(s[1].Y, p.QoS.TM)
	}
	for _, n := range ns {
		tmrFig.Series = append(tmrFig.Series, series[n][0])
		tmFig.Series = append(tmFig.Series, series[n][1])
	}
	return tmrFig, tmFig
}

// Fig9a reproduces Fig. 9(a): measured latency vs the timeout T.
func Fig9a(points []Class3Point) *Figure {
	fig := &Figure{
		ID:     "FIG9a",
		Title:  "consensus latency vs failure detection timeout T (measurements, no failures)",
		XLabel: "failure detection timeout T [ms]",
		YLabel: "latency [ms]",
		Notes: []string{
			"paper: each curve starts very high and decreases fast to the no-suspicion latency; small peak around T = 10 ms for mid n (Linux scheduler interference)",
		},
	}
	series := map[int]*Series{}
	var ns []int
	for _, p := range points {
		if p.ECDF == nil {
			// Every execution aborted (timeout so small that consensus
			// never terminated within the watchdog); the paper's
			// footnote 2 region. No latency to report.
			continue
		}
		s, ok := series[p.N]
		if !ok {
			s = &Series{Label: fmt.Sprintf("%d processes (exp.)", p.N)}
			series[p.N] = s
			ns = append(ns, p.N)
		}
		s.X = append(s.X, p.T)
		s.Y = append(s.Y, p.Mean)
	}
	for _, n := range ns {
		fig.Series = append(fig.Series, *series[n])
	}
	return fig
}

// Fig9b reproduces Fig. 9(b): measured latency vs SAN simulation fed with
// the measured QoS metrics, under deterministic and exponential FD sojourn
// distributions, for the simulated system sizes (paper: n = 3 and 5).
func Fig9b(ctx context.Context, points []Class3Point, f Fidelity, seed uint64) (*Figure, error) {
	fits, err := MeasureFits(ctx, f, seed, f.SimNs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "FIG9b",
		Title:  "latency vs timeout T: measurements vs SAN simulation (det/exp FD model)",
		XLabel: "failure detection timeout T [ms]",
		YLabel: "latency [ms]",
		Notes: []string{
			"paper: the SAN model matches measurements when failure-detector QoS is good (high T) and deviates when wrong suspicions are frequent (low T) — the independence assumption between failure detectors does not hold (§5.4)",
		},
	}
	for _, n := range f.SimNs {
		var kept []Class3Point
		for _, p := range points {
			if p.N == n && p.ECDF != nil {
				kept = append(kept, p)
			}
		}
		// One SAN simulation pair per retained grid point, all independent:
		// fan them out and fold in point order.
		type simPair struct{ det, exp float64 }
		inner := innerWorkers(f.Workers, len(kept))
		pairs, err := parallel.Map(ctx, f.Workers, len(kept), func(_, i int) (simPair, error) {
			p := kept[i]
			var out simPair
			for _, kind := range []sanmodel.FDDistKind{sanmodel.FDDeterministic, sanmodel.FDExponential} {
				sp := fits.SANParams(n, 0.025)
				sp.FD = fdModelFromQoS(p.QoS, kind)
				res, err := sanmodel.SimulateContext(ctx, sp, f.Replicas, 1e6, seed+uint64(n)*17+uint64(p.T), inner)
				if err != nil {
					return simPair{}, err
				}
				if kind == sanmodel.FDDeterministic {
					out.det = res.Digest.Mean()
				} else {
					out.exp = res.Digest.Mean()
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		var xs []float64
		var det, exp, meas []float64
		for i, p := range kept {
			xs = append(xs, p.T)
			meas = append(meas, p.Mean)
			det = append(det, pairs[i].det)
			exp = append(exp, pairs[i].exp)
		}
		fig.Series = append(fig.Series,
			Series{Label: fmt.Sprintf("%d processes (sim., det.)", n), X: xs, Y: det},
			Series{Label: fmt.Sprintf("%d processes (sim., exp.)", n), X: xs, Y: exp},
			Series{Label: fmt.Sprintf("%d processes (exp.)", n), X: xs, Y: meas},
		)
	}
	return fig, nil
}

// fdModelFromQoS converts measured QoS metrics into the SAN FD submodel
// parameters, guarding degenerate cases (no observed mistakes → disable).
func fdModelFromQoS(q fd.QoS, kind sanmodel.FDDistKind) sanmodel.FDModel {
	if q.Transitions == 0 || q.TM <= 0 || q.TM >= q.TMR {
		return sanmodel.FDModel{} // class-1 behaviour
	}
	return sanmodel.FDModel{TMR: q.TMR, TM: q.TM, Kind: kind}
}
