package experiment

import (
	"context"
	"fmt"

	"ctsan/internal/neko"
	"ctsan/internal/netsim"
	"ctsan/internal/rng"
)

// DelaySpec configures an end-to-end delay measurement (§5.1, Fig. 6): a
// sender transmits Count probe messages — unicast to process 2, or
// broadcast to all — spaced by Spacing ms, and the delay from the Send
// call to delivery at each destination is recorded.
type DelaySpec struct {
	N         int
	Broadcast bool
	Count     int
	Spacing   float64 // ms between probes; 0 = 1.0
	Params    netsim.Params
	Seed      uint64
}

// probeProto emits the probes.
type probeProto struct {
	ctx     neko.Context
	spec    DelaySpec
	sent    int
	sendAt  map[int]float64 // probe seq -> global send time (clock offset excluded by construction below)
	started bool
}

const msgProbe = "probe"

// Start implements neko.Protocol.
func (p *probeProto) Start() {
	p.started = true
	p.emit()
}

func (p *probeProto) emit() {
	if p.sent >= p.spec.Count {
		return
	}
	seq := p.sent
	p.sent++
	p.sendAt[seq] = p.ctx.Now()
	pl := neko.Payload{Kind: neko.PayloadProbe, Seq: uint64(seq)}
	if p.spec.Broadcast {
		neko.Broadcast(p.ctx, neko.Message{Type: msgProbe, Payload: pl})
	} else {
		p.ctx.Send(neko.Message{To: 2, Type: msgProbe, Payload: pl})
	}
	p.ctx.SetTimer(p.spec.Spacing, p.emit)
}

// MeasureDelays runs the probe experiment and returns one delay sample per
// probe: for unicast, the end-to-end delay; for broadcast, the delay
// "averaged over the destinations" as in Fig. 6.
func MeasureDelays(spec DelaySpec) ([]float64, error) {
	return MeasureDelaysContext(context.Background(), spec)
}

// MeasureDelaysContext is MeasureDelays with an entry cancellation check:
// one probe campaign is a single uninterruptible DES run (seconds at
// paper fidelity), so ctx gates whether it starts; fan-outs over several
// campaigns cancel between them.
func MeasureDelaysContext(ctx context.Context, spec DelaySpec) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if spec.N < 2 {
		return nil, fmt.Errorf("experiment: delay measurement needs n >= 2")
	}
	if spec.Count < 1 {
		return nil, fmt.Errorf("experiment: delay measurement needs at least 1 probe")
	}
	if spec.Spacing == 0 {
		spec.Spacing = 1.0
	}
	if spec.Params.N == 0 {
		spec.Params = netsim.DefaultParams(spec.N)
	}
	spec.Params.N = spec.N
	// Timer lateness would contaminate the probe spacing, not the per-probe
	// delay; keep the cluster defaults so contention is realistic.
	root := rng.New(spec.Seed ^ 0xde1a7)
	cluster, err := netsim.New(spec.Params, root.Child(1))
	if err != nil {
		return nil, err
	}
	sender := &probeProto{spec: spec, sendAt: make(map[int]float64)}
	sumDelay := make(map[int]float64)
	gotCount := make(map[int]int)
	for i := 1; i <= spec.N; i++ {
		id := neko.ProcessID(i)
		stack := neko.NewStack(cluster.Context(id))
		if i == 1 {
			sender.ctx = stack.Context()
			stack.AddLayer(sender)
		}
		stack.HandleKind(neko.PayloadProbe, msgProbe, func(*neko.Message) {})
		cluster.Attach(id, stack)
	}
	// sendAt holds sender-local times while the delivery trace reports
	// global times; senderOffset (local − global) reconciles the clocks so
	// the measured delay is skew-free, like the paper's NTP-disciplined
	// round-trip measurements.
	senderOffset := 0.0
	cluster.Trace(func(m neko.Message, at float64) {
		if m.Type != msgProbe {
			return
		}
		seq := int(m.Payload.Seq)
		sumDelay[seq] += at + senderOffset - sender.sendAt[seq]
		gotCount[seq]++
	})
	// The sender's local clock offset equals Now(local) - Now(global) at
	// any instant; compute it before starting.
	senderOffset = cluster.Context(1).Now() - cluster.Now()
	cluster.Start()
	// The probe timer chain suffers scheduler lateness (grid deferrals can
	// add several ms per wake-up); budget generously so every probe fires.
	deadline := float64(spec.Count)*(spec.Spacing+8) + 100
	cluster.RunUntil(deadline)

	want := 1
	if spec.Broadcast {
		want = spec.N - 1
	}
	var out []float64
	for seq := 0; seq < spec.Count; seq++ {
		if gotCount[seq] == want {
			out = append(out, sumDelay[seq]/float64(want))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: no probes delivered")
	}
	return out, nil
}
