package experiment

import (
	"context"
	"testing"

	"ctsan/internal/neko"
	"ctsan/internal/sanmodel"
)

// TestLatencySweepDeterministicAcrossWorkers: the campaign-sweep results
// must be byte-identical for any worker count — each campaign's randomness
// derives only from its spec's seed, never from scheduling.
func TestLatencySweepDeterministicAcrossWorkers(t *testing.T) {
	specs := []LatencySpec{
		{N: 3, Executions: 40, Seed: 7},
		{N: 5, Executions: 40, Seed: 7},
		{N: 3, Executions: 30, Seed: 9, FDMode: FDHeartbeat, TimeoutT: 10},
		{N: 5, Executions: 25, Seed: 11, Crashed: []neko.ProcessID{1}},
	}
	ref, err := RunLatencySweep(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		got, err := RunLatencySweep(specs, w)
		if err != nil {
			t.Fatal(err)
		}
		for s := range specs {
			gl, rl := got[s].Digest.Exact(), ref[s].Digest.Exact()
			if len(gl) != len(rl) {
				t.Fatalf("workers=%d spec %d: %d latencies, want %d", w, s, len(gl), len(rl))
			}
			for i := range rl {
				if gl[i] != rl[i] {
					t.Fatalf("workers=%d spec %d: latency[%d] = %v, want %v (bit-exact)",
						w, s, i, gl[i], rl[i])
				}
			}
			// The digest's derived statistics must be bit-identical too —
			// the streaming-metrics determinism contract.
			for _, q := range []float64{0.5, 0.9, 0.99} {
				if got[s].Digest.Quantile(q) != ref[s].Digest.Quantile(q) {
					t.Fatalf("workers=%d spec %d: q=%g differs", w, s, q)
				}
			}
			if got[s].Digest.Mean() != ref[s].Digest.Mean() || got[s].Digest.Var() != ref[s].Digest.Var() {
				t.Fatalf("workers=%d spec %d: digest moments differ", w, s)
			}
			if got[s].Rounds.N() != ref[s].Rounds.N() || got[s].Rounds.Mean() != ref[s].Rounds.Mean() {
				t.Fatalf("workers=%d spec %d: rounds differ", w, s)
			}
			if got[s].Aborted != ref[s].Aborted || got[s].Texp != ref[s].Texp || got[s].Events != ref[s].Events {
				t.Fatalf("workers=%d spec %d: campaign summary differs", w, s)
			}
		}
	}
}

// TestClass3DeterministicAcrossWorkers covers the (n, T) grid fan-out.
func TestClass3DeterministicAcrossWorkers(t *testing.T) {
	f := QuickFidelity()
	f.QoSExecs = 25
	f.Ns = []int{3}
	f.TGrid = []float64{5, 30}
	run := func(workers int) []Class3Point {
		f.Workers = workers
		pts, err := RunClass3(context.Background(), f, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	ref := run(1)
	got := run(6)
	if len(got) != len(ref) {
		t.Fatalf("point counts differ: %d vs %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i].N != ref[i].N || got[i].T != ref[i].T ||
			got[i].Mean != ref[i].Mean || got[i].Aborted != ref[i].Aborted ||
			got[i].QoS != ref[i].QoS ||
			(got[i].ECDF == nil) != (ref[i].ECDF == nil) ||
			(got[i].ECDF != nil && got[i].ECDF.N() != ref[i].ECDF.N()) {
			t.Fatalf("point %d differs across worker counts:\n got %+v\nwant %+v", i, got[i], ref[i])
		}
	}
}

// TestSimulateWorkersDeterministic pins the SAN-model entry point used by
// Fig. 7(b), Table 1 and Fig. 9(b).
func TestSimulateWorkersDeterministic(t *testing.T) {
	p := sanmodel.DefaultParams(3)
	ref, err := sanmodel.SimulateWorkers(p, 200, 1e6, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sanmodel.SimulateWorkers(p, 200, 1e6, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	gs, rs := got.Digest.Exact(), ref.Digest.Exact()
	if len(gs) != len(rs) || got.Truncated != ref.Truncated {
		t.Fatalf("shape differs: %d/%d vs %d/%d", len(gs), got.Truncated, len(rs), ref.Truncated)
	}
	for i := range rs {
		if gs[i] != rs[i] {
			t.Fatalf("sample %d = %v, want %v (bit-exact)", i, gs[i], rs[i])
		}
	}
}
