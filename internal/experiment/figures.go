package experiment

import (
	"context"
	"fmt"
	"math"

	"ctsan/internal/fit"
	"ctsan/internal/neko"
	"ctsan/internal/parallel"
	"ctsan/internal/sanmodel"
	"ctsan/internal/stats"
)

// Fidelity scales every campaign. PaperFidelity matches §5 (5000
// executions for classes 1/2, 20×1000 for class 3, all n); QuickFidelity
// is sized for CI and benchmarks.
type Fidelity struct {
	Executions   int       // class-1/2 executions per point (paper: 5000)
	QoSExecs     int       // class-3 executions per point (paper: 20×1000)
	Replicas     int       // SAN transient replicas per point
	DelayProbes  int       // Fig. 6 probes per curve
	Ns           []int     // measured system sizes (paper: 3,5,7,9,11)
	SimNs        []int     // simulated system sizes (paper: 3,5)
	TGrid        []float64 // failure-detection timeouts T for Figs. 8/9
	TSendSweep   []float64 // Fig. 7b t_send values
	CDFGridSteps int
	// Workers caps the goroutines used for independent campaign points and
	// Monte-Carlo replicas: 0 (or negative) means one per CPU, 1 forces
	// serial execution. Every campaign is bit-identical at any worker
	// count; see PERFORMANCE.md.
	Workers int
}

// QuickFidelity returns a configuration small enough for tests/benches.
func QuickFidelity() Fidelity {
	return Fidelity{
		Executions:   400,
		QoSExecs:     150,
		Replicas:     400,
		DelayProbes:  2000,
		Ns:           []int{3, 5, 7, 9, 11},
		SimNs:        []int{3, 5},
		TGrid:        []float64{1, 2, 3, 5, 7, 10, 14, 20, 30, 40, 70, 100},
		TSendSweep:   []float64{0.005, 0.010, 0.015, 0.020, 0.025, 0.035},
		CDFGridSteps: 60,
	}
}

// PaperFidelity returns the paper's experiment sizes (§5).
func PaperFidelity() Fidelity {
	f := QuickFidelity()
	f.Executions = 5000
	f.QoSExecs = 1000
	f.Replicas = 3000
	f.DelayProbes = 10000
	return f
}

// Scale multiplies the workload sizes by k (k < 1 shrinks).
func (f Fidelity) Scale(k float64) Fidelity {
	mul := func(v int) int {
		s := int(float64(v) * k)
		if s < 8 {
			s = 8
		}
		return s
	}
	f.Executions = mul(f.Executions)
	f.QoSExecs = mul(f.QoSExecs)
	f.Replicas = mul(f.Replicas)
	f.DelayProbes = mul(f.DelayProbes)
	return f
}

// Fits bundles the §5.1 parameter-estimation products: the bi-modal fits
// of measured end-to-end delays used to configure the SAN model.
type Fits struct {
	Unicast   fit.Bimodal
	Broadcast map[int]fit.Bimodal // per n
}

// MeasureFits reproduces §5.1: measure unicast and broadcast end-to-end
// delays on the cluster and fit bi-modal uniform mixtures. The unicast and
// per-n broadcast measurements are independent campaigns and run
// concurrently under f.Workers.
func MeasureFits(ctx context.Context, f Fidelity, seed uint64, ns []int) (*Fits, error) {
	type fitOut struct {
		n int
		b fit.Bimodal
	}
	// Index 0 is the unicast campaign; 1..len(ns) the broadcast ones.
	fits, err := parallel.Map(ctx, f.Workers, len(ns)+1, func(_, i int) (fitOut, error) {
		spec := DelaySpec{N: 3, Count: f.DelayProbes, Seed: seed}
		n := 0
		if i > 0 {
			n = ns[i-1]
			spec = DelaySpec{N: n, Count: f.DelayProbes, Broadcast: true, Seed: seed + uint64(n)}
		}
		samples, err := MeasureDelays(spec)
		if err != nil {
			return fitOut{}, err
		}
		b, err := fit.FitBimodal(samples)
		if err != nil {
			return fitOut{}, err
		}
		return fitOut{n: n, b: b}, nil
	})
	if err != nil {
		return nil, err
	}
	out := &Fits{Unicast: fits[0].b, Broadcast: make(map[int]fit.Bimodal)}
	for _, fo := range fits[1:] {
		out.Broadcast[fo.n] = fo.b
	}
	return out, nil
}

// SANParams derives the SAN model parameters for n processes from the
// measured fits, with the given t_send = t_receive split (§5.1/§5.2; the
// paper settles on 0.025 ms via the Fig. 7b sweep).
func (fs *Fits) SANParams(n int, tsend float64) sanmodel.Params {
	p := sanmodel.DefaultParams(n)
	p.TSend = tsend
	p.TReceive = tsend
	// The floor keeps the network activity strictly positive even when
	// 2·t_send exceeds the smallest measured delay during the sweep.
	p.NetUnicast = fs.Unicast.Shift(2*tsend, 0.001).Dist()
	bb, ok := fs.Broadcast[n]
	if !ok {
		bb = fs.Unicast
	}
	p.NetBroadcast = bb.Shift(2*tsend, 0.001).Dist()
	return p
}

// cdfSeries converts an ECDF into a plot series over [0, hi].
func cdfSeries(label string, e *stats.ECDF, hi float64, steps int) Series {
	xs, ps := e.Grid(0, hi, steps)
	return Series{Label: label, X: xs, Y: ps}
}

// Fig6 reproduces Fig. 6: the cumulative distribution of the end-to-end
// delay of unicast and broadcast messages, and reports the bi-modal fits.
func Fig6(ctx context.Context, f Fidelity, seed uint64) (*Figure, *Fits, error) {
	fits, err := MeasureFits(ctx, f, seed, []int{3, 5})
	if err != nil {
		return nil, nil, err
	}
	uni, err := MeasureDelaysContext(ctx, DelaySpec{N: 3, Count: f.DelayProbes, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	fig := &Figure{
		ID:     "FIG6",
		Title:  "cumulative distribution of the end-to-end delay of unicast and broadcast messages",
		XLabel: "transmission time [ms]",
		YLabel: "probability",
		Notes: []string{
			fmt.Sprintf("unicast bi-modal fit: %s (paper: U[0.1,0.13] w.p. 0.80 + U[0.145,0.35] w.p. 0.20)", fits.Unicast),
		},
	}
	fig.Series = append(fig.Series, cdfSeries("unicast", stats.NewECDF(uni), 0.6, f.CDFGridSteps))
	bns := []int{3, 5}
	bcs, err := parallel.Map(ctx, f.Workers, len(bns), func(_, i int) ([]float64, error) {
		n := bns[i]
		return MeasureDelaysContext(ctx, DelaySpec{N: n, Count: f.DelayProbes, Broadcast: true, Seed: seed + uint64(n)})
	})
	if err != nil {
		return nil, nil, err
	}
	for i, n := range bns {
		fig.Series = append(fig.Series, cdfSeries(fmt.Sprintf("broadcast to %d", n), stats.NewECDF(bcs[i]), 0.6, f.CDFGridSteps))
		fig.Notes = append(fig.Notes, fmt.Sprintf("broadcast-to-%d fit: %s", n, fits.Broadcast[n]))
	}
	return fig, fits, nil
}

// Fig7a reproduces Fig. 7(a): the latency CDF from measurements for every
// n, plus the §5.2 mean values.
func Fig7a(ctx context.Context, f Fidelity, seed uint64) (*Figure, map[int]*LatencyResult, error) {
	fig := &Figure{
		ID:     "FIG7a",
		Title:  "cumulative distribution of consensus latency (measurements, no failures, no suspicions)",
		XLabel: "latency [ms]",
		YLabel: "probability",
	}
	specs := make([]LatencySpec, len(f.Ns))
	for i, n := range f.Ns {
		specs[i] = LatencySpec{N: n, Executions: f.Executions, Seed: seed}
	}
	sweep, err := RunLatencySweepContext(ctx, specs, f.Workers)
	if err != nil {
		return nil, nil, err
	}
	results := make(map[int]*LatencyResult, len(f.Ns))
	for i, n := range f.Ns {
		res := sweep[i]
		results[n] = res
		fig.Series = append(fig.Series, cdfSeries(fmt.Sprintf("%d processes (meas.)", n), res.ECDF(), 6, f.CDFGridSteps))
		fig.Notes = append(fig.Notes, fmt.Sprintf("n=%d mean latency %.3f ms ± %.3f (90%% CI; paper: %s ms)",
			n, res.Digest.Mean(), res.Digest.CI(0.90), paperClass1Mean(n)))
	}
	return fig, results, nil
}

// paperClass1Mean returns the paper's §5.2 measured mean as a string.
func paperClass1Mean(n int) string {
	switch n {
	case 3:
		return "1.06"
	case 5:
		return "1.43"
	case 7:
		return "2.00"
	case 9:
		return "2.62"
	case 11:
		return "3.27"
	}
	return "n/a"
}

// Fig7b reproduces Fig. 7(b): simulated latency CDFs for n = 5 with the
// same end-to-end delay but varying t_send, against the measured CDF. The
// t_send whose curve best matches the measurement (KS distance) is
// reported — the paper selects 0.025 ms this way.
func Fig7b(ctx context.Context, f Fidelity, seed uint64) (*Figure, float64, error) {
	fits, err := MeasureFits(ctx, f, seed, []int{5})
	if err != nil {
		return nil, 0, err
	}
	meas, err := RunLatencyContext(ctx, LatencySpec{N: 5, Executions: f.Executions, Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	measECDF := meas.ECDF()
	fig := &Figure{
		ID:     "FIG7b",
		Title:  "latency CDF for n=5: simulations sweeping t_send vs measurement",
		XLabel: "latency [ms]",
		YLabel: "probability",
	}
	// Each t_send value is an independent simulation campaign; sweep them
	// concurrently and fold in sweep order so the figure (and the selected
	// best t_send) is identical at any worker count.
	type sweepOut struct {
		e    *stats.ECDF
		ks   float64
		mean float64
	}
	inner := innerWorkers(f.Workers, len(f.TSendSweep))
	sweep, err := parallel.Map(ctx, f.Workers, len(f.TSendSweep), func(_, i int) (sweepOut, error) {
		ts := f.TSendSweep[i]
		p := fits.SANParams(5, ts)
		res, err := sanmodel.SimulateContext(ctx, p, f.Replicas, 1e6, seed+uint64(ts*1e4), inner)
		if err != nil {
			return sweepOut{}, err
		}
		e := res.ECDF()
		return sweepOut{e: e, ks: stats.KSDistance(e, measECDF), mean: res.Digest.Mean()}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	bestT, bestKS := 0.0, math.Inf(1)
	for i, ts := range f.TSendSweep {
		out := sweep[i]
		if out.ks < bestKS {
			bestKS, bestT = out.ks, ts
		}
		fig.Series = append(fig.Series, cdfSeries(fmt.Sprintf("tsend = %g ms (sim.)", ts), out.e, 3.5, f.CDFGridSteps))
		fig.Notes = append(fig.Notes, fmt.Sprintf("tsend=%g: mean %.3f ms, KS distance to measurement %.3f", ts, out.mean, out.ks))
	}
	fig.Series = append(fig.Series, cdfSeries("measured", measECDF, 3.5, f.CDFGridSteps))
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("best match at tsend = %g ms (paper: 0.025 ms)", bestT))
	return fig, bestT, nil
}

// Table1 reproduces Table 1: latency for the crash scenarios, measured for
// every n and simulated for the SimNs.
func Table1(ctx context.Context, f Fidelity, seed uint64) (*Table, error) {
	fits, err := MeasureFits(ctx, f, seed, f.SimNs)
	if err != nil {
		return nil, err
	}
	scenarios := []struct {
		name    string
		crashed []neko.ProcessID
	}{
		{"no crash", nil},
		{"coordinator crash", []neko.ProcessID{1}},
		{"participant crash", []neko.ProcessID{2}},
	}
	t := &Table{
		ID:    "TABLE1",
		Title: "latency (ms) for various crash scenarios from measurements and simulations",
		Notes: []string{
			"paper (meas./sim.): no crash 1.06/1.030 (n=3), 1.43/1.442 (n=5); coordinator crash 1.568/1.336, 2.245/2.295; participant crash 1.115/0.786, 1.340/1.336",
			"per §5.3: coordinator crash increases latency for every n; participant crash decreases it except for n=3 in measurements (unicast ordering), while the simulation (single broadcast message) shows a decrease at n=3 too",
		},
	}
	t.Header = []string{"latency [ms]"}
	for _, n := range f.Ns {
		t.Header = append(t.Header, fmt.Sprintf("n=%d meas.", n))
		if contains(f.SimNs, n) {
			t.Header = append(t.Header, fmt.Sprintf("n=%d sim.", n))
		}
	}
	// Every (scenario, n) cell is an independent measurement campaign plus
	// an optional SAN simulation; run all of them concurrently and fold in
	// table order.
	type cellJob struct {
		scenario int
		n        int
	}
	var jobs []cellJob
	for si := range scenarios {
		for _, n := range f.Ns {
			jobs = append(jobs, cellJob{scenario: si, n: n})
		}
	}
	inner := innerWorkers(f.Workers, len(jobs))
	cells, err := parallel.Map(ctx, f.Workers, len(jobs), func(_, i int) ([]string, error) {
		job := jobs[i]
		sc := scenarios[job.scenario]
		res, err := RunLatencyContext(ctx, LatencySpec{N: job.n, Executions: f.Executions, Seed: seed, Crashed: sc.crashed})
		if err != nil {
			return nil, err
		}
		cell := []string{fmt.Sprintf("%.3f", res.Digest.Mean())}
		if contains(f.SimNs, job.n) {
			var simCrash []int
			for _, id := range sc.crashed {
				simCrash = append(simCrash, int(id))
			}
			p := fits.SANParams(job.n, 0.025)
			p.Crashed = simCrash
			sim, err := sanmodel.SimulateContext(ctx, p, f.Replicas, 1e6, seed+uint64(job.n), inner)
			if err != nil {
				return nil, err
			}
			cell = append(cell, fmt.Sprintf("%.3f", sim.Digest.Mean()))
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	for si, sc := range scenarios {
		row := []string{sc.name}
		for i, job := range jobs {
			if job.scenario == si {
				row = append(row, cells[i]...)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
