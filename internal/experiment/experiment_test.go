package experiment

import (
	"math"
	"testing"

	"ctsan/internal/neko"
)

func TestSpecValidation(t *testing.T) {
	bad := []LatencySpec{
		{N: 1, Executions: 10},
		{N: 3, Executions: 0},
		{N: 3, Executions: 1, Crashed: []neko.ProcessID{1, 2}}, // majority violated
		{N: 3, Executions: 1, FDMode: FDHeartbeat},             // no timeout
		{N: 3, Executions: 1, FDMode: FDMode(99), TimeoutT: 1}, // unknown mode
	}
	for i, spec := range bad {
		if _, err := RunLatency(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestClass1MeansMatchPaperShape(t *testing.T) {
	// §5.2: latency grows roughly linearly in n; the per-process slope of
	// the paper is ~0.28 ms. We assert monotonic growth and a slope in a
	// generous band, plus tight confidence intervals.
	means := map[int]float64{}
	for _, n := range []int{3, 5, 7, 9, 11} {
		res, err := RunLatency(LatencySpec{N: n, Executions: 500, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		means[n] = res.Digest.Mean()
		if res.Aborted != 0 {
			t.Errorf("n=%d: %d aborted class-1 executions", n, res.Aborted)
		}
		if ci := res.Digest.CI(0.90); ci > 0.05 {
			t.Errorf("n=%d: CI half-width %.3f too wide (paper: <0.02 at 5000 executions)", n, ci)
		}
		if mr := res.MeanRounds(); mr > 1.05 {
			t.Errorf("n=%d: mean rounds %.2f, want ~1 in class 1", n, mr)
		}
	}
	for _, pair := range [][2]int{{3, 5}, {5, 7}, {7, 9}, {9, 11}} {
		lo, hi := means[pair[0]], means[pair[1]]
		if hi <= lo {
			t.Errorf("latency not increasing: n=%d %.3f vs n=%d %.3f", pair[0], lo, pair[1], hi)
		}
	}
	slope := (means[11] - means[3]) / 8
	if slope < 0.1 || slope > 0.5 {
		t.Errorf("per-process latency slope %.3f ms outside [0.1, 0.5] (paper ~0.28)", slope)
	}
}

func TestTable1DirectionsMeasured(t *testing.T) {
	// §5.3 directions on the measurement side.
	run := func(n int, crashed ...neko.ProcessID) float64 {
		res, err := RunLatency(LatencySpec{N: n, Executions: 500, Seed: 2, Crashed: crashed})
		if err != nil {
			t.Fatal(err)
		}
		return res.Digest.Mean()
	}
	for _, n := range []int{3, 5, 7} {
		base := run(n)
		coord := run(n, 1)
		part := run(n, 2)
		if coord <= base {
			t.Errorf("n=%d: coordinator crash %.3f !> no crash %.3f", n, coord, base)
		}
		if n == 3 && part <= base {
			t.Errorf("n=3: participant crash %.3f !> no crash %.3f (the §5.3 anomaly)", part, base)
		}
		if n >= 5 && part >= base {
			t.Errorf("n=%d: participant crash %.3f !< no crash %.3f", n, part, base)
		}
	}
}

func TestCoordinatorCrashTakesTwoRounds(t *testing.T) {
	res, err := RunLatency(LatencySpec{N: 5, Executions: 100, Seed: 3, Crashed: []neko.ProcessID{1}})
	if err != nil {
		t.Fatal(err)
	}
	if mr := res.MeanRounds(); math.Abs(mr-2) > 0.05 {
		t.Fatalf("mean rounds %.2f, want 2 (§5.3)", mr)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a, err := RunLatency(LatencySpec{N: 3, Executions: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLatency(LatencySpec{N: 3, Executions: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	al, bl := a.Digest.Exact(), b.Digest.Exact()
	if len(al) != len(bl) {
		t.Fatal("different sample counts")
	}
	for i := range al {
		if al[i] != bl[i] {
			t.Fatalf("nondeterministic latency at %d", i)
		}
	}
	c, err := RunLatency(LatencySpec{N: 3, Executions: 50, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Digest.Exact()
	same := true
	for i := range al {
		if al[i] != cl[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical campaigns")
	}
}

func TestClass3QoSShape(t *testing.T) {
	// §5.4: T_MR grows with T; latency at very small T well above the
	// class-1 plateau; mistakes essentially disappear at T = 100.
	type point struct{ tmr, lat float64 }
	pts := map[float64]point{}
	for _, T := range []float64{2, 7, 30, 100} {
		res, err := RunLatency(LatencySpec{
			N: 3, Executions: 250, Seed: 4, FDMode: FDHeartbeat, TimeoutT: T,
		})
		if err != nil {
			t.Fatal(err)
		}
		pts[T] = point{res.QoS.TMR, res.Digest.Mean()}
	}
	// At T = 30 and 100 every pair may already be mistake-free, in which
	// case both report the same censored value (2·T_exp) — require strict
	// growth through T = 30 and no decrease beyond.
	if !(pts[2].tmr < pts[7].tmr && pts[7].tmr < pts[30].tmr && pts[30].tmr <= pts[100].tmr*1.05) {
		t.Errorf("T_MR not increasing in T: %+v", pts)
	}
	if pts[2].lat < 1.2*pts[100].lat {
		t.Errorf("latency at T=2 (%.3f) not clearly above plateau (%.3f)", pts[2].lat, pts[100].lat)
	}
}

func TestHeartbeatPeriodDefault(t *testing.T) {
	spec := LatencySpec{N: 3, Executions: 1, FDMode: FDHeartbeat, TimeoutT: 10}
	if err := spec.validate(); err != nil {
		t.Fatal(err)
	}
	if spec.PeriodTh != 7 {
		t.Fatalf("default T_h = %v, want 0.7·T (§5.4)", spec.PeriodTh)
	}
}

func TestMeasureDelays(t *testing.T) {
	uni, err := MeasureDelays(DelaySpec{N: 3, Count: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(uni) < 450 {
		t.Fatalf("only %d/500 probes measured", len(uni))
	}
	mean := 0.0
	for _, v := range uni {
		if v <= 0 {
			t.Fatal("non-positive delay")
		}
		mean += v
	}
	mean /= float64(len(uni))
	// The calibrated emulator matches the paper's unicast fit mean ~0.14.
	if mean < 0.11 || mean > 0.18 {
		t.Errorf("unicast mean delay %.4f outside the §5.1 band", mean)
	}
	bc, err := MeasureDelays(DelaySpec{N: 5, Count: 500, Broadcast: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bmean := 0.0
	for _, v := range bc {
		bmean += v
	}
	bmean /= float64(len(bc))
	if bmean <= mean {
		t.Errorf("broadcast mean %.4f not above unicast %.4f (Fig. 6)", bmean, mean)
	}
}

func TestMeasureDelaysValidation(t *testing.T) {
	if _, err := MeasureDelays(DelaySpec{N: 1, Count: 10}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := MeasureDelays(DelaySpec{N: 3, Count: 0}); err == nil {
		t.Error("zero probes accepted")
	}
}

func TestFidelityScale(t *testing.T) {
	f := QuickFidelity().Scale(0.5)
	if f.Executions != 200 {
		t.Fatalf("scaled executions %d", f.Executions)
	}
	tiny := QuickFidelity().Scale(0.001)
	if tiny.Executions < 8 {
		t.Fatal("scale floor violated")
	}
	if PaperFidelity().Executions != 5000 {
		t.Fatal("paper fidelity executions")
	}
}
