package experiment

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// tinyFidelity keeps figure tests fast.
func tinyFidelity() Fidelity {
	f := QuickFidelity()
	f.Executions = 120
	f.QoSExecs = 60
	f.Replicas = 80
	f.DelayProbes = 800
	f.Ns = []int{3, 5}
	f.SimNs = []int{3}
	f.TGrid = []float64{3, 30}
	f.TSendSweep = []float64{0.015, 0.025}
	f.CDFGridSteps = 20
	return f
}

func TestFig6(t *testing.T) {
	fig, fits, err := Fig6(context.Background(), tinyFidelity(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("Fig6 series %d, want unicast + 2 broadcasts", len(fig.Series))
	}
	// The unicast fit must resemble the paper's §5.1 numbers.
	u := fits.Unicast
	if u.P1 < 0.6 || u.P1 > 0.95 {
		t.Errorf("unicast P1 = %.2f, paper 0.80", u.P1)
	}
	if u.Lo1 < 0.07 || u.Hi2 > 0.45 {
		t.Errorf("unicast support [%.3f, %.3f] far from paper [0.1, 0.35]", u.Lo1, u.Hi2)
	}
	var buf bytes.Buffer
	fig.Fprint(&buf)
	if !strings.Contains(buf.String(), "FIG6") {
		t.Error("rendered figure missing ID")
	}
}

func TestFig7a(t *testing.T) {
	fig, results, err := Fig7a(context.Background(), tinyFidelity(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series %d", len(fig.Series))
	}
	if results[3].Digest.Mean() >= results[5].Digest.Mean() {
		t.Error("latency not increasing with n")
	}
	// CDFs end at 1.
	for _, s := range fig.Series {
		if s.Y[len(s.Y)-1] < 0.99 {
			t.Errorf("series %s CDF ends at %v", s.Label, s.Y[len(s.Y)-1])
		}
	}
}

func TestFig7b(t *testing.T) {
	f := tinyFidelity()
	fig, best, err := Fig7b(context.Background(), f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(f.TSendSweep)+1 {
		t.Fatalf("series %d", len(fig.Series))
	}
	found := false
	for _, ts := range f.TSendSweep {
		if best == ts {
			found = true
		}
	}
	if !found {
		t.Fatalf("best t_send %v not among the sweep", best)
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(context.Background(), tinyFidelity(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Header: label + meas for each n + sim for SimNs.
	if want := 1 + 2 + 1; len(tab.Header) != want {
		t.Fatalf("header %v", tab.Header)
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "coordinator crash") || !strings.Contains(out, "participant crash") {
		t.Error("rendered table missing scenario rows")
	}
}

func TestClass3AndFigs89(t *testing.T) {
	f := tinyFidelity()
	points, err := RunClass3(context.Background(), f, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(f.Ns)*len(f.TGrid) {
		t.Fatalf("points %d", len(points))
	}
	a, b := Fig8(points)
	if len(a.Series) != 2 || len(b.Series) != 2 {
		t.Fatalf("Fig8 series %d/%d", len(a.Series), len(b.Series))
	}
	f9a := Fig9a(points)
	if len(f9a.Series) != 2 {
		t.Fatalf("Fig9a series %d", len(f9a.Series))
	}
	f9b, err := Fig9b(context.Background(), points, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Per simulated n: det + exp + measured.
	if len(f9b.Series) != 3*len(f.SimNs) {
		t.Fatalf("Fig9b series %d", len(f9b.Series))
	}
}

func TestReportRendering(t *testing.T) {
	fig := &Figure{ID: "X", Title: "tt", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "s", X: []float64{1, 2}, Y: []float64{0.5, 1}}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	fig.Fprint(&buf)
	for _, want := range []string{"# X", "hello", "series: s"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in rendering", want)
		}
	}
	tab := &Table{ID: "T", Title: "t", Header: []string{"a", "bbbb"}, Rows: [][]string{{"1", "2"}}}
	buf.Reset()
	tab.Fprint(&buf)
	if !strings.Contains(buf.String(), "a  bbbb") {
		t.Errorf("table alignment: %q", buf.String())
	}
}
