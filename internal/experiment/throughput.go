package experiment

import (
	"context"
	"fmt"
	"math"

	"ctsan/internal/consensus"
	"ctsan/internal/fd"
	"ctsan/internal/neko"
	"ctsan/internal/netsim"
	"ctsan/internal/rng"
	"ctsan/internal/stats"
)

// ThroughputSpec configures a throughput campaign — the paper's stated
// future work (§2.3/§6): "Throughput should be considered in a scenario
// where a sequence of consensus is executed, i.e., on each process,
// consensus #(k+1) starts immediately after consensus #k has decided.
// Note that, unlike in the definition of latency, not all processes
// necessarily start consensus at the same time."
type ThroughputSpec struct {
	N          int
	Params     netsim.Params
	Executions int     // chained consensus instances
	Warmup     int     // leading instances excluded from the rate
	FDMode     FDMode  // zero value: FDOracle
	TimeoutT   float64 // FDHeartbeat
	PeriodTh   float64
	Crashed    []neko.ProcessID
	MaxRounds  int
	Seed       uint64
}

// ThroughputResult reports the sustained decision rate.
type ThroughputResult struct {
	// Rate is decided instances per second of cluster time (counted over
	// the post-warmup window).
	Rate float64
	// InterDecision accumulates the gaps between consecutive first
	// decisions (ms).
	InterDecision stats.Accumulator
	Decided       int
	Aborted       int
	Duration      float64 // ms of cluster time in the measured window
	Events        uint64
}

// RunThroughput chains consensus executions back to back on each process
// under a background context, kept for call sites that have no context
// to thread.
func RunThroughput(spec ThroughputSpec) (*ThroughputResult, error) {
	return RunThroughputContext(context.Background(), spec)
}

// RunThroughputContext chains consensus executions back to back on each
// process: process p proposes instance k+1 the moment it finishes
// instance k. This pipelines rounds across instances (unlike the
// isolated executions of the latency campaigns) and saturates the
// coordinator and the medium.
//
// ctx cancels cooperatively at instance boundaries: once it is canceled
// no process chains a further instance, the cluster run stops, and the
// function returns ctx.Err().
func RunThroughputContext(ctx context.Context, spec ThroughputSpec) (*ThroughputResult, error) {
	if spec.N < 2 {
		return nil, fmt.Errorf("experiment: throughput needs n >= 2")
	}
	if spec.Executions < 1 {
		return nil, fmt.Errorf("experiment: throughput needs at least 1 execution")
	}
	if spec.Warmup >= spec.Executions {
		return nil, fmt.Errorf("experiment: warmup %d must be below executions %d", spec.Warmup, spec.Executions)
	}
	if spec.MaxRounds == 0 {
		spec.MaxRounds = 256
	}
	if spec.FDMode == 0 {
		spec.FDMode = FDOracle
	}
	if spec.FDMode == FDHeartbeat {
		if spec.TimeoutT <= 0 {
			return nil, fmt.Errorf("experiment: heartbeat throughput needs TimeoutT > 0")
		}
		if spec.PeriodTh == 0 {
			spec.PeriodTh = 0.7 * spec.TimeoutT
		}
	}
	if spec.Params.N == 0 {
		spec.Params = netsim.DefaultParams(spec.N)
	}
	spec.Params.N = spec.N
	spec.Params.Crashed = spec.Crashed

	root := rng.New(spec.Seed ^ 0x7a709)
	cluster, err := netsim.New(spec.Params, root.Child(1))
	if err != nil {
		return nil, err
	}
	crashed := make(map[neko.ProcessID]bool, len(spec.Crashed))
	for _, id := range spec.Crashed {
		crashed[id] = true
	}

	res := &ThroughputResult{}
	var (
		firstDecided = make(map[uint64]float64) // instance -> first decision (global ms)
		engines      = make([]*consensus.Engine, spec.N+1)
	)
	for i := 1; i <= spec.N; i++ {
		id := neko.ProcessID(i)
		stack := neko.NewStack(cluster.Context(id))
		var det neko.FailureDetector
		if spec.FDMode == FDHeartbeat {
			det = fd.NewHeartbeat(stack, spec.TimeoutT, spec.PeriodTh, nil)
		} else {
			det = fd.NewOracle(spec.Crashed...)
		}
		engines[i] = consensus.NewEngine(stack, det, consensus.Options{MaxRounds: spec.MaxRounds})
		cluster.Attach(id, stack)
	}
	cluster.Start()

	remaining := spec.N - len(spec.Crashed)
	finished := 0
	canceled := false
	var chain func(i int, k uint64)
	chain = func(i int, k uint64) {
		if k >= uint64(spec.Executions) {
			finished++
			return
		}
		if ctx.Err() != nil {
			// Cancellation lands at instance boundaries: this process stops
			// chaining; the run drains once every process has stopped.
			canceled = true
			finished++
			return
		}
		engines[i].Propose(k, int64(i)+int64(k)*100, func(d consensus.Decision) {
			if _, seen := firstDecided[k]; !seen {
				firstDecided[k] = cluster.Now()
				res.Decided++
			}
			engines[i].Forget(k)
			chain(i, k+1) // #(k+1) starts immediately after #k decides
		}, func() {
			res.Aborted++
			engines[i].Forget(k)
			chain(i, k+1)
		})
	}
	for i := 1; i <= spec.N; i++ {
		if crashed[neko.ProcessID(i)] {
			continue
		}
		i := i
		cluster.StartAt(neko.ProcessID(i), 1.0, func() { chain(i, 0) })
	}
	cluster.Run(func() bool { return finished >= remaining })
	if canceled {
		return nil, ctx.Err()
	}
	res.Events = cluster.Steps()

	// Sustained rate over the post-warmup window.
	var prev float64
	started := false
	for k := uint64(spec.Warmup); k < uint64(spec.Executions); k++ {
		at, ok := firstDecided[k]
		if !ok {
			continue
		}
		if started {
			res.InterDecision.Add(at - prev)
		}
		prev = at
		started = true
		res.Duration = at
	}
	if n := res.InterDecision.N(); n > 0 {
		window := res.InterDecision.Mean() * float64(n)
		if window > 0 {
			res.Rate = 1000 * float64(n) / window
		}
	}
	if math.IsNaN(res.Rate) {
		res.Rate = 0
	}
	return res, nil
}
