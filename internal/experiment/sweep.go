package experiment

import "ctsan/internal/parallel"

// innerWorkers splits a worker budget between an outer fan-out over
// `items` independent campaigns and the Monte-Carlo replicas inside each:
// the product of outer and inner concurrency stays near the budget instead
// of multiplying into budget² goroutines. With many campaign points the
// inner simulations run serially; with few points the leftover budget goes
// to their replicas.
func innerWorkers(workers, items int) int {
	w := parallel.Workers(workers)
	if items < 1 {
		items = 1
	}
	return (w + items - 1) / items
}

// RunLatencySweep runs independent latency campaigns — one per spec —
// across at most `workers` goroutines (0 = one per CPU, 1 = serial) and
// returns the results in spec order. Each campaign owns its cluster,
// engines and random streams, all derived from its spec's Seed, so the
// returned results are bit-identical to running the specs serially,
// regardless of the worker count. This is the unit of parallelism for the
// paper's measurement campaigns: the per-n sweeps of Fig. 7(a)/Table 1 and
// the (n, T) grid of Figs. 8–9.
func RunLatencySweep(specs []LatencySpec, workers int) ([]*LatencyResult, error) {
	return parallel.Map(workers, len(specs), func(_, i int) (*LatencyResult, error) {
		return RunLatency(specs[i])
	})
}
