package experiment

import (
	"context"

	"ctsan/internal/parallel"
)

// innerWorkers splits the worker budget between an outer fan-out over
// `items` independent campaigns and the Monte-Carlo replicas inside each
// (see parallel.InnerWorkers).
func innerWorkers(workers, items int) int {
	return parallel.InnerWorkers(workers, items)
}

// RunLatencySweep runs independent latency campaigns — one per spec —
// across at most `workers` goroutines (0 = one per CPU, 1 = serial) and
// returns the results in spec order. It is a thin adapter over
// RunLatencySweepContext with a background context, kept for call sites
// that have no context to thread.
func RunLatencySweep(specs []LatencySpec, workers int) ([]*LatencyResult, error) {
	return RunLatencySweepContext(context.Background(), specs, workers)
}

// RunLatencySweepContext is the sweep core: each campaign draws all its
// random streams from its spec's Seed, so the returned results are
// bit-identical to running the specs serially, regardless of the worker
// count. This is the unit of parallelism for the paper's measurement
// campaigns: the per-n sweeps of Fig. 7(a)/Table 1 and the (n, T) grid of
// Figs. 8–9. ctx cancels between campaigns and between the executions
// inside each campaign.
//
// Each worker keeps one harness (cluster, stacks, engines, detectors) and
// rewinds it for every spec that shares the cached harness's
// construction shape — sweeps of Monte-Carlo repetitions differ only in
// Seed and reuse one assembly end to end; heterogeneous sweeps (per-n
// figures) reassemble on shape changes. Reused harnesses are
// bit-identical to fresh ones, so the determinism guarantee is
// unaffected (pinned by TestLatencySweepDeterministicAcrossWorkers).
func RunLatencySweepContext(ctx context.Context, specs []LatencySpec, workers int) ([]*LatencyResult, error) {
	cache := make([]*campaign, parallel.Workers(workers))
	return parallel.Map(ctx, workers, len(specs), func(w, i int) (*LatencyResult, error) {
		spec := specs[i]
		// Validate (normalize) before the compatibility check: the cached
		// harness holds a defaulted spec, and an un-defaulted copy (zero
		// Params, FDMode, ...) would never compare equal — silently
		// disabling reuse for every spec that relies on the defaults.
		if err := spec.validate(); err != nil {
			return nil, err
		}
		c := cache[w]
		if c == nil || !c.compatibleWith(spec) {
			var err error
			c, err = newCampaign(spec)
			if err != nil {
				return nil, err
			}
			cache[w] = c
		}
		if err := c.runWith(ctx, spec, nil); err != nil {
			return nil, err
		}
		return c.res, nil
	})
}
