package experiment

import (
	"context"

	"ctsan/internal/parallel"
)

// innerWorkers splits the worker budget between an outer fan-out over
// `items` independent campaigns and the Monte-Carlo replicas inside each
// (see parallel.InnerWorkers).
func innerWorkers(workers, items int) int {
	return parallel.InnerWorkers(workers, items)
}

// RunLatencySweep runs independent latency campaigns — one per spec —
// across at most `workers` goroutines (0 = one per CPU, 1 = serial) and
// returns the results in spec order. It is a thin adapter over
// RunLatencySweepContext with a background context, kept for call sites
// that have no context to thread.
func RunLatencySweep(specs []LatencySpec, workers int) ([]*LatencyResult, error) {
	return RunLatencySweepContext(context.Background(), specs, workers)
}

// RunLatencySweepContext is the sweep core: each campaign owns its
// cluster, engines and random streams, all derived from its spec's Seed,
// so the returned results are bit-identical to running the specs serially,
// regardless of the worker count. This is the unit of parallelism for the
// paper's measurement campaigns: the per-n sweeps of Fig. 7(a)/Table 1 and
// the (n, T) grid of Figs. 8–9. ctx cancels between campaigns and between
// the executions inside each campaign.
func RunLatencySweepContext(ctx context.Context, specs []LatencySpec, workers int) ([]*LatencyResult, error) {
	return parallel.Map(ctx, workers, len(specs), func(_, i int) (*LatencyResult, error) {
		return RunLatencyContext(ctx, specs[i])
	})
}
