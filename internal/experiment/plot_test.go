package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestAsciiPlot(t *testing.T) {
	fig := &Figure{
		ID:    "TEST",
		Title: "t",
		Series: []Series{
			{Label: "a", X: []float64{1, 10, 100}, Y: []float64{100, 10, 1}},
			{Label: "b", X: []float64{1, 10, 100}, Y: []float64{1, 1, 1}},
		},
	}
	var buf bytes.Buffer
	AsciiPlot(&buf, fig, 40, 10, true, true)
	out := buf.String()
	for _, want := range []string{"TEST", "o = a", "x = b"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "o") < 3 {
		t.Errorf("series a points missing:\n%s", out)
	}
	// Log axes must silently drop non-positive values.
	figBad := &Figure{ID: "B", Series: []Series{{Label: "z", X: []float64{0}, Y: []float64{-1}}}}
	buf.Reset()
	AsciiPlot(&buf, figBad, 40, 10, true, true)
	if !strings.Contains(buf.String(), "no plottable") {
		t.Errorf("expected empty-plot notice, got:\n%s", buf.String())
	}
}

func TestAsciiPlotLinear(t *testing.T) {
	fig := &Figure{ID: "L", Series: []Series{{Label: "s", X: []float64{0, 1, 2}, Y: []float64{0, 0.5, 1}}}}
	var buf bytes.Buffer
	AsciiPlot(&buf, fig, 30, 8, false, false)
	if !strings.Contains(buf.String(), "o") {
		t.Errorf("no points plotted:\n%s", buf.String())
	}
}
