package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Series is one labeled curve of a figure.
type Series struct {
	Label string
	X, Y  []float64
}

// Figure is a reproduced paper figure rendered as aligned text columns
// (x, then one column per series).
type Figure struct {
	ID, Title      string
	XLabel, YLabel string
	Series         []Series
	Notes          []string
}

// Fprint renders the figure. Series are printed as blocks of x/y pairs so
// curves with different supports stay readable.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "# x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "# note: %s\n", n)
	}
	for _, s := range f.Series {
		fmt.Fprintf(w, "## series: %s\n", s.Label)
		for i := range s.X {
			fmt.Fprintf(w, "%-12.6g %.6g\n", s.X[i], s.Y[i])
		}
	}
}

// Table is a reproduced paper table.
type Table struct {
	ID, Title string
	Header    []string
	Rows      [][]string
	Notes     []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# note: %s\n", n)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	fmt.Fprintln(w, line(t.Header))
	for _, r := range t.Rows {
		fmt.Fprintln(w, line(r))
	}
}
