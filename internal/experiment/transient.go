package experiment

import (
	"context"
	"fmt"
	"math"

	"ctsan/internal/fd"
	"ctsan/internal/neko"
)

// CrashTransientSpec configures the §6 extension the paper names as
// future work: "investigating more deeply the behavior of the algorithm
// under particular conditions (e.g., transient behavior after crashes)".
// A process crashes mid-campaign while the heartbeat failure detector is
// live; the campaign records per-execution latency relative to the crash
// instant, exposing the detection transient: executions between the crash
// and its detection pay nack-free round failures, executions after
// detection settle at the degraded steady state.
type CrashTransientSpec struct {
	N          int
	CrashID    neko.ProcessID // process that crashes (1 = first coordinator)
	CrashAfter int            // executions before the crash
	Executions int            // total executions
	TimeoutT   float64        // heartbeat FD timeout
	Seed       uint64
}

// CrashTransientResult is the per-execution latency trace around a crash.
type CrashTransientResult struct {
	// Latency[k] is execution k's first-decision latency (NaN if the
	// execution did not decide).
	Latency []float64
	// CrashAt is the global time of the crash; DetectionTime the mean
	// Chen T_D over the surviving observers.
	CrashAt       float64
	DetectionTime float64
	// SteadyBefore / PeakDuring / SteadyAfter summarize the three phases.
	SteadyBefore, PeakDuring, SteadyAfter float64
}

// RunCrashTransient executes the campaign with a background context,
// kept for call sites that have no context to thread.
func RunCrashTransient(spec CrashTransientSpec) (*CrashTransientResult, error) {
	return RunCrashTransientContext(context.Background(), spec)
}

// RunCrashTransientContext executes the campaign. The crash is injected
// just before execution CrashAfter starts, so that execution runs
// against a crashed-but-not-yet-suspected coordinator — the worst case
// the FD timeout T is tuned against (§2.4 class-1 trade-off discussion).
// ctx cancels at consensus-execution boundaries, like every other
// campaign in this package.
func RunCrashTransientContext(ctx context.Context, spec CrashTransientSpec) (*CrashTransientResult, error) {
	if spec.CrashAfter >= spec.Executions {
		return nil, fmt.Errorf("experiment: crash point %d beyond campaign %d", spec.CrashAfter, spec.Executions)
	}
	if spec.CrashID < 1 || int(spec.CrashID) > spec.N {
		return nil, fmt.Errorf("experiment: crash id %d out of range", spec.CrashID)
	}
	// Reuse the latency campaign machinery with a live heartbeat FD and a
	// mid-run crash injected through the cluster scheduler: we drive
	// RunLatency's internals by running two campaigns is not equivalent
	// (FD state would reset), so this uses the low-level pieces directly.
	res := &CrashTransientResult{}
	gap := 10.0
	spec2 := LatencySpec{
		N:          spec.N,
		Executions: spec.Executions,
		Gap:        gap,
		FDMode:     FDHeartbeat,
		TimeoutT:   spec.TimeoutT,
		Seed:       spec.Seed,
		// Post-crash executions can only be closed by the watchdog (the
		// crashed process never reports); keep the deadline short enough
		// that the campaign proceeds but long enough to capture the
		// detection-transient latencies (up to ~T + T_h).
		Deadline: 3*spec.TimeoutT + 60,
	}
	if err := spec2.validate(); err != nil {
		return nil, err
	}
	crashLocal := spec2.Warmup + float64(spec.CrashAfter)*gap - 0.5
	// The per-execution trace is collected through the campaign's trace
	// hook as executions close (undecided executions keep their NaN), so
	// the campaign itself retains no raw sample slice.
	res.Latency = make([]float64, spec.Executions)
	for i := range res.Latency {
		res.Latency[i] = math.NaN()
	}
	run, err := runCampaign(ctx, spec2, func(c *campaign) {
		c.cluster.CrashAt(spec.CrashID, crashLocal)
		res.CrashAt = crashLocal
		c.trace = func(k int, lat float64) {
			if k < len(res.Latency) {
				res.Latency[k] = lat
			}
		}
	})
	if err != nil {
		return nil, err
	}
	tds := fd.DetectionTimes(run.res.History, spec.CrashID, crashLocal, spec.N)
	sum, cnt := 0.0, 0
	for p, td := range tds {
		if p == spec.CrashID || math.IsInf(td, 1) {
			continue
		}
		sum += td
		cnt++
	}
	if cnt > 0 {
		res.DetectionTime = sum / float64(cnt)
	}
	res.SteadyBefore = meanWindow(res.Latency, 0, spec.CrashAfter)
	res.PeakDuring = maxWindow(res.Latency, spec.CrashAfter, min(spec.CrashAfter+3, spec.Executions))
	res.SteadyAfter = meanWindow(res.Latency, min(spec.CrashAfter+3, spec.Executions), spec.Executions)
	return res, nil
}

func meanWindow(xs []float64, lo, hi int) float64 {
	s, n := 0.0, 0
	for _, v := range xs[lo:hi] {
		if !math.IsNaN(v) {
			s += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

func maxWindow(xs []float64, lo, hi int) float64 {
	best := math.NaN()
	for _, v := range xs[lo:hi] {
		if !math.IsNaN(v) && (math.IsNaN(best) || v > best) {
			best = v
		}
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
