package experiment

import "testing"

// TestSubSkewDeadline mirrors the scenario-level test: a Deadline below
// the clock-skew spread produces stale StartAt firings after the
// watchdog closed their execution; they must be no-ops (the pooled
// start record carries its armed execution index), not ghost Proposes
// into the successor execution. No consensus can complete in 0.02 ms,
// so every execution must abort cleanly.
func TestSubSkewDeadline(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		res, err := RunLatency(LatencySpec{
			N: 3, Executions: 30, Seed: seed, Deadline: 0.02,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Digest.N() != 0 || res.Aborted != 30 {
			t.Fatalf("seed %d: %d decided / %d aborted, want 0/30 (ghost proposals leaked?)",
				seed, res.Digest.N(), res.Aborted)
		}
	}
}
