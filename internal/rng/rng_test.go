package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestChildStableAndIndependent(t *testing.T) {
	parent := New(7)
	c1 := parent.Child(3)
	// Drawing from the parent must not change what Child(3) returns.
	parent.Uint64()
	c2 := parent.Child(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Child is not stable under parent draws")
		}
	}
	// Different ids give different streams.
	a, b := parent.Child(1), parent.Child(2)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("children with different ids look identical")
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(123)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	varr := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want 0.5", mean)
	}
	if math.Abs(varr-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want 1/12", varr)
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := New(9)
	if err := quick.Check(func(k uint8) bool {
		n := int(k%31) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 7)
	const draws = 70000
	for i := 0; i < draws; i++ {
		counts[r.Intn(7)]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-draws/7.0) > 600 {
			t.Errorf("digit %d count %d deviates from %d", d, c, draws/7)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2.5)
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("exp mean = %v, want 2.5", mean)
	}
	varr := sum2/n - mean*mean
	if math.Abs(varr-2.5*2.5) > 0.3 {
		t.Errorf("exp variance = %v, want 6.25", varr)
	}
}

func TestExpZeroMean(t *testing.T) {
	if v := New(1).Exp(0); v != 0 {
		t.Fatalf("Exp(0) = %v, want 0", v)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(31)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(3, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.03 {
		t.Errorf("normal mean = %v, want 3", mean)
	}
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(sd-2) > 0.03 {
		t.Errorf("normal stddev = %v, want 2", sd)
	}
}

func TestUniform(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
	if v := r.Uniform(3, 3); v != 3 {
		t.Fatalf("degenerate uniform = %v, want 3", v)
	}
}

func TestPerm(t *testing.T) {
	r := New(8)
	if err := quick.Check(func(k uint8) bool {
		n := int(k % 20)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul128(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

// TestReseedMatchesNew: reseeding a used stream in place must make it
// bit-identical to a freshly constructed one — including its Child
// derivations (the key is part of the reseed).
func TestReseedMatchesNew(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		s.Uint64()
	}
	s.Reseed(42)
	fresh := New(42)
	for i := 0; i < 64; i++ {
		if a, b := s.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("draw %d: reseeded %x != fresh %x", i, a, b)
		}
	}
	if a, b := s.Child(7).Uint64(), fresh.Child(7).Uint64(); a != b {
		t.Fatalf("child of reseeded stream differs: %x != %x", a, b)
	}
}

// TestChildIntoMatchesChild: in-place child derivation is bit-identical
// to Child and allocation-free.
func TestChildIntoMatchesChild(t *testing.T) {
	parent := New(3)
	var dst Stream
	for id := uint64(0); id < 50; id++ {
		parent.ChildInto(&dst, id)
		want := parent.Child(id)
		for i := 0; i < 8; i++ {
			if a, b := dst.Uint64(), want.Uint64(); a != b {
				t.Fatalf("id %d draw %d: ChildInto %x != Child %x", id, i, a, b)
			}
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		parent.ChildInto(&dst, 9)
	}); allocs > 0 {
		t.Fatalf("ChildInto allocates %.1f objects/op, want 0", allocs)
	}
}
