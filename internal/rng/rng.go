// Package rng provides deterministic, splittable pseudo-random number
// streams for reproducible simulation experiments.
//
// Every stochastic component of the repository (the cluster emulator, the
// SAN solver, workload generators) draws from its own Stream so that
// experiments are reproducible bit-for-bit given a root seed, and so that
// changing the number of samples drawn by one component does not perturb
// the randomness seen by another. Streams are derived hierarchically with
// Child, following the common "seed sequence" design of simulation
// libraries.
//
// The generator is xoshiro256**, seeded through SplitMix64, which is the
// combination recommended by the xoshiro authors. It is not cryptographic;
// it is fast, has a 2^256-1 period and passes BigCrush.
package rng

import "math"

// Stream is a deterministic pseudo-random number stream. The zero value is
// not useful; construct streams with New or Child. A Stream is not safe for
// concurrent use; give each goroutine (or each simulated entity) its own
// child stream.
type Stream struct {
	s   [4]uint64
	key uint64 // immutable derivation key for Child; never advanced by draws
}

// splitmix64 advances the SplitMix64 state and returns the next output.
// It is used only for seeding, as recommended by the xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Stream {
	var r Stream
	r.Reseed(seed)
	return &r
}

// Reseed reinitializes the stream in place, exactly as New(seed) would,
// without allocating. Reusable simulators (netsim.Cluster.Reset and
// friends) reseed their retained child streams instead of deriving fresh
// ones, so replica turnover stays allocation-free.
func (r *Stream) Reseed(seed uint64) {
	st := seed
	r.key = splitmix64(&st)
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro256** must not be seeded with the all-zero state. SplitMix64
	// cannot produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Child derives a new independent stream from this one, keyed by id. The
// derivation uses an immutable per-stream key rather than the generator
// state, so Child(i) returns the same stream no matter how many values the
// parent has produced — per-entity streams are stable across runs
// regardless of construction or consumption order.
func (r *Stream) Child(id uint64) *Stream {
	var c Stream
	r.ChildInto(&c, id)
	return &c
}

// ChildInto derives the Child(id) stream into dst in place: dst ends up
// bit-identical to Child(id) without a heap allocation. It is the reseed
// counterpart of Child for simulators that retain their per-entity
// streams across replicas.
func (r *Stream) ChildInto(dst *Stream, id uint64) {
	st := r.key ^ (id+1)*0x9e3779b97f4a7c15
	dst.key = splitmix64(&st)
	for i := range dst.s {
		dst.s[i] = splitmix64(&st)
	}
	if dst.s[0]|dst.s[1]|dst.s[2]|dst.s[3] == 0 {
		dst.s[0] = 1
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	ah, al := a>>32, a&mask
	bh, bl := b>>32, b&mask
	t := al * bl
	lo = t & mask
	c := t >> 32
	t = ah*bl + c
	c = t >> 32
	t2 := al*bh + (t & mask)
	lo |= (t2 & mask) << 32
	hi = ah*bh + c + (t2 >> 32)
	return hi, lo
}

// Exp returns an exponentially distributed sample with the given mean.
// It panics if mean is negative; a zero mean returns 0.
func (r *Stream) Exp(mean float64) float64 {
	if mean < 0 {
		panic("rng: Exp with negative mean")
	}
	if mean == 0 {
		return 0
	}
	// Inverse CDF. 1-Float64() is in (0,1], so Log never sees 0.
	return -mean * math.Log(1-r.Float64())
}

// Uniform returns a uniform sample in [lo, hi). It panics if hi < lo.
func (r *Stream) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed sample with the given mean and
// standard deviation, using the polar (Marsaglia) method.
func (r *Stream) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
