package sanmodel

import (
	"fmt"

	"ctsan/internal/dist"
	"ctsan/internal/san"
)

// Instantaneous-activity priorities: higher completes first. The order
// prefers progress (deciding, accepting a proposal) over failure handling,
// mirroring the implementation's dispatch order.
const (
	prioFDInit      = 10
	prioDecide      = 6
	prioAccept      = 5
	prioPropose     = 4
	prioRoundFailed = 4
	prioSuspect     = 3
	prioStart       = 2
	prioSeize       = 1
)

// buildPipelines creates the message pipelines originating at process pr:
// per-tag estimate/ack/nack unicasts to the tag's coordinator, and the
// proposal and decision broadcasts (single messages with larger t_net,
// §5.1, fanned out to every other process after the network stage).
func (b *builder) buildPipelines(pr *proc) {
	ns := b.m.Namespace(fmt.Sprintf("P%d.net", pr.id))
	for tag := 0; tag < b.p.N; tag++ {
		dst := b.coordOf(tag)
		if dst == pr.id {
			// A process never message-sends to itself: its own estimate
			// and acknowledgment are counted locally.
			pr.estPipe = append(pr.estPipe, pipe{})
			pr.ackPipe = append(pr.ackPipe, pipe{})
			pr.nackPipe = append(pr.nackPipe, pipe{})
			continue
		}
		tag := tag
		pr.estPipe = append(pr.estPipe, b.unicast(ns, fmt.Sprintf("est%d", tag), pr, dst,
			func(mk *san.Marking) { mk.Add(b.procs[dst-1].estCnt[tag], 1) }))
		pr.ackPipe = append(pr.ackPipe, b.unicast(ns, fmt.Sprintf("ack%d", tag), pr, dst,
			func(mk *san.Marking) { mk.Add(b.procs[dst-1].ackCnt[tag], 1) }))
		pr.nackPipe = append(pr.nackPipe, b.unicast(ns, fmt.Sprintf("nack%d", tag), pr, dst,
			func(mk *san.Marking) { mk.Add(b.procs[dst-1].nackCnt[tag], 1) }))
	}
	// Proposal broadcast: the tag is the sender's own coordinator tag.
	myTag := pr.id % b.p.N
	bcast := b.broadcast
	if b.p.UnicastBroadcast {
		bcast = b.broadcastAsUnicasts
	}
	pr.propPipe = bcast(ns, "prop", pr, func(dst *proc) func(mk *san.Marking) {
		return func(mk *san.Marking) { mk.Set(dst.propSeen[myTag], 1) }
	})
	pr.decidePip = bcast(ns, "decide", pr, func(dst *proc) func(mk *san.Marking) {
		return func(mk *san.Marking) { mk.Set(dst.decided, 1) }
	})
}

// stage builds one seize/serve resource stage: tokens wait in q until the
// resource place holds a token, an instantaneous seize moves the token into
// an in-service place (taking the resource), and a timed serve activity
// releases the resource and forwards the token.
//
// The seize/serve split is essential: SAN timed activities consume their
// input tokens only at completion, so a plain "q + resource -> out" timed
// activity would never actually hold the resource during service and all
// messages would be transmitted in parallel. The paper's step decomposition
// (§3.3: "m takes and uses the network resource for some time t_net") is
// the seize/serve pattern.
func (b *builder) stage(ns *san.Model, name string, q, resource *san.Place, serveTime dist.Dist) (serve *san.Activity) {
	busy := ns.Place(name+".busy", 0)
	ns.Instant(name+".seize", prioSeize).
		Input(q, resource).
		FIFO(q).
		Output(busy)
	return ns.Timed(name+".serve", san.Fixed(serveTime)).
		Input(busy).
		Output(resource)
}

// unicast builds the seven-step pipeline pr -> dst of Fig. 3 and returns
// its entry place. deliver runs on the destination host when t_receive
// completes.
func (b *builder) unicast(ns *san.Model, name string, pr *proc, dstID int, deliver func(mk *san.Marking)) pipe {
	dst := b.procs[dstID-1]
	pp := pipe{
		sendq: ns.Place(name+".sendq", 0),
		netq:  ns.Place(name+".netq", 0),
		recvq: ns.Place(name+".recvq", 0),
	}
	b.stage(ns, name+".send", pp.sendq, pr.cpu, dist.Det(b.p.TSend)).Output(pp.netq)
	net := b.stage(ns, name+".net", pp.netq, b.network, b.p.NetUnicast)
	if dst.crashed {
		// The host is down: frames addressed to it vanish after the
		// medium, consuming no destination CPU.
		net.Output(pp.recvq)
		return pp
	}
	net.Output(pp.recvq)
	b.stage(ns, name+".recv", pp.recvq, dst.cpu, dist.Det(b.p.TReceive)).
		OutputGate(name+".deliver", deliver)
	return pp
}

// broadcast builds a single-message broadcast pipeline from pr to all
// other processes: one t_send, one (larger) t_net, then per-destination
// receive processing.
func (b *builder) broadcast(ns *san.Model, name string, pr *proc, deliverTo func(dst *proc) func(mk *san.Marking)) pipe {
	pp := pipe{
		sendq: ns.Place(name+".sendq", 0),
		netq:  ns.Place(name+".netq", 0),
	}
	b.stage(ns, name+".send", pp.sendq, pr.cpu, dist.Det(b.p.TSend)).Output(pp.netq)
	net := b.stage(ns, name+".net", pp.netq, b.network, b.p.NetBroadcast)
	outCase := net.DefaultCase()
	for j := 1; j <= b.p.N; j++ {
		if j == pr.id {
			continue
		}
		dst := b.procs[j-1]
		recvq := ns.Place(fmt.Sprintf("%s.recvq%d", name, j), 0)
		outCase.Output(recvq)
		if dst.crashed {
			continue
		}
		b.stage(ns, fmt.Sprintf("%s.recv%d", name, j), recvq, dst.cpu, dist.Det(b.p.TReceive)).
			OutputGate(fmt.Sprintf("%s.deliver%d", name, j), deliverTo(dst))
	}
	return pp
}

// broadcastAsUnicasts is the UnicastBroadcast ablation: one deposited
// token fans out into n−1 independent unicast pipelines in ascending
// destination order, exactly like the implementation (§5.1: "in the
// implementation they are n−1 unicast messages").
func (b *builder) broadcastAsUnicasts(ns *san.Model, name string, pr *proc, deliverTo func(dst *proc) func(mk *san.Marking)) pipe {
	pp := pipe{sendq: ns.Place(name+".sendq", 0)}
	fan := ns.Instant(name+".fan", prioSeize+1).Input(pp.sendq)
	out := fan.DefaultCase()
	for j := 1; j <= b.p.N; j++ {
		if j == pr.id {
			continue
		}
		dst := b.procs[j-1]
		uni := b.unicast(ns, fmt.Sprintf("%s.u%d", name, j), pr, j, deliverTo(dst))
		out.Output(uni.sendq)
	}
	return pp
}

// buildStateMachine creates the per-round control state machine of §3.2:
// P1C (coordinator), P1A1/P1A2a/P1A2b (participant), P1A3 (new round).
func (b *builder) buildStateMachine(pr *proc) {
	if pr.crashed {
		return
	}
	ns := b.m.Namespace(fmt.Sprintf("P%d.sm", pr.id))
	n := b.p.N
	notDecided := func(mk *san.Marking) bool { return mk.Get(pr.decided) == 0 }

	// advance moves to the next round (P1A3): increments the mod-n round
	// tag and re-marks Start, unless the rounds guard trips.
	advance := func(mk *san.Marking) {
		mk.Set(pr.round, (mk.Get(pr.round)+1)%n)
		mk.Add(b.rounds, 1)
		if mk.Get(b.rounds) > b.p.MaxRoundsGuard {
			mk.Set(b.aborted, 1)
			return
		}
		mk.Set(pr.start, 1)
	}

	// P1A1 / P1C entry: on starting a round, the coordinator begins
	// collecting (its own estimate counts); a participant sends its
	// estimate to the coordinator and waits for the proposal.
	ns.Instant("startRound", prioStart).
		Input(pr.start).
		InputGate("notDecided", []*san.Place{pr.decided}, notDecided, nil).
		OutputGate("begin", func(mk *san.Marking) {
			tag := mk.Get(pr.round)
			if b.coordOf(tag) == pr.id {
				mk.Set(pr.collect, 1)
				mk.Add(pr.estCnt[tag], 1)
				return
			}
			mk.Add(pr.estPipe[tag].sendq, 1)
			mk.Set(pr.waitProp, 1)
		})

	// P1C: with a majority of estimates, broadcast the proposal and wait
	// for acknowledgments (the coordinator's own ack is implicit).
	estReads := append([]*san.Place{pr.round, pr.decided}, pr.estCnt...)
	ns.Instant("propose", prioPropose).
		Input(pr.collect).
		InputGate("haveMajorityEst", estReads, func(mk *san.Marking) bool {
			return notDecided(mk) && mk.Get(pr.estCnt[mk.Get(pr.round)]) >= b.maj
		}, nil).
		OutputGate("sendProposal", func(mk *san.Marking) {
			tag := mk.Get(pr.round)
			mk.Set(pr.estCnt[tag], 0)
			mk.Add(pr.ackCnt[tag], 1)
			mk.Set(pr.waitAck, 1)
			mk.Add(pr.propPipe.sendq, 1)
		})

	// P1A2a: the proposal arrived — adopt it, ack positively, next round.
	propReads := append([]*san.Place{pr.round, pr.decided}, pr.propSeen...)
	ns.Instant("acceptProp", prioAccept).
		Input(pr.waitProp).
		InputGate("proposalArrived", propReads, func(mk *san.Marking) bool {
			return notDecided(mk) && mk.Get(pr.propSeen[mk.Get(pr.round)]) > 0
		}, nil).
		OutputGate("ackAndAdvance", func(mk *san.Marking) {
			tag := mk.Get(pr.round)
			mk.Set(pr.propSeen[tag], 0)
			mk.Add(pr.ackPipe[tag].sendq, 1)
			advance(mk)
		})

	// P1A2b: the failure detector suspects the coordinator — nack, next
	// round.
	suspReads := append([]*san.Place{pr.round, pr.decided}, pr.suspects...)
	ns.Instant("suspectCoord", prioSuspect).
		Input(pr.waitProp).
		InputGate("coordSuspected", suspReads, func(mk *san.Marking) bool {
			return notDecided(mk) && mk.Get(pr.suspects[b.coordOf(mk.Get(pr.round))-1]) > 0
		}, nil).
		OutputGate("nackAndAdvance", func(mk *san.Marking) {
			tag := mk.Get(pr.round)
			mk.Add(pr.nackPipe[tag].sendq, 1)
			advance(mk)
		})

	// P1C conclusion: a majority of replies, all positive — decide and
	// broadcast the decision.
	ackReads := append([]*san.Place{pr.round, pr.decided}, pr.ackCnt...)
	ackReads = append(ackReads, pr.nackCnt...)
	ns.Instant("decide", prioDecide).
		Input(pr.waitAck).
		InputGate("allAcksPositive", ackReads, func(mk *san.Marking) bool {
			tag := mk.Get(pr.round)
			return notDecided(mk) && mk.Get(pr.nackCnt[tag]) == 0 &&
				mk.Get(pr.ackCnt[tag]) >= b.maj
		}, nil).
		OutputGate("broadcastDecision", func(mk *san.Marking) {
			mk.Set(pr.decided, 1)
			mk.Add(pr.decidePip.sendq, 1)
		})

	// P1C failure: a majority of replies including a nack — next round.
	ns.Instant("roundFailed", prioRoundFailed).
		Input(pr.waitAck).
		InputGate("someNack", ackReads, func(mk *san.Marking) bool {
			tag := mk.Get(pr.round)
			return notDecided(mk) && mk.Get(pr.nackCnt[tag]) >= 1 &&
				mk.Get(pr.ackCnt[tag])+mk.Get(pr.nackCnt[tag]) >= b.maj
		}, nil).
		OutputGate("nextRound", func(mk *san.Marking) {
			tag := mk.Get(pr.round)
			mk.Set(pr.ackCnt[tag], 0)
			mk.Set(pr.nackCnt[tag], 0)
			advance(mk)
		})
}

// buildCorrelatedFD is the FDCorrelated ablation: one Trust/Susp
// alternation per monitored process q, shared by every observer — the
// opposite extreme of the paper's independence assumption (§5.4). The
// per-pair suspicion places created earlier are rebound to the shared one.
func (b *builder) buildCorrelatedFD(crashed map[int]bool) {
	if b.p.FD.TMR <= 0 {
		return
	}
	trustDist, suspDist := b.fdSojourns()
	ns := b.m.Namespace("fdShared")
	for j := 1; j <= b.p.N; j++ {
		if crashed[j] {
			continue // class-2 static suspicion stays per observer
		}
		susp := ns.Place(fmt.Sprintf("Susp%d", j), 0)
		trust := ns.Place(fmt.Sprintf("Trust%d", j), 0)
		initP := ns.Place(fmt.Sprintf("Init%d", j), 1)
		init := ns.Instant(fmt.Sprintf("init%d", j), prioFDInit).Input(initP)
		init.Case(b.p.FD.TM / b.p.FD.TMR).Output(susp)
		init.Case(1 - b.p.FD.TM/b.p.FD.TMR).Output(trust)
		ns.Timed(fmt.Sprintf("ts%d", j), san.Fixed(trustDist)).Input(trust).Output(susp)
		ns.Timed(fmt.Sprintf("st%d", j), san.Fixed(suspDist)).Input(susp).Output(trust)
		for _, pr := range b.procs {
			if pr.id != j && !pr.crashed {
				pr.suspects[j-1] = susp
			}
		}
	}
}

// fdSojourns returns the Trust and Susp sojourn distributions implied by
// the configured QoS metrics.
func (b *builder) fdSojourns() (trustDist, suspDist dist.Dist) {
	tm, tmr := b.p.FD.TM, b.p.FD.TMR
	if tm <= 0 || tm >= tmr {
		panic(fmt.Sprintf("sanmodel: invalid FD QoS TM=%g TMR=%g", tm, tmr))
	}
	switch b.p.FD.Kind {
	case FDDeterministic:
		return dist.Det(tmr - tm), dist.Det(tm)
	case FDExponential:
		return dist.Exp(tmr - tm), dist.Exp(tm)
	default:
		panic(fmt.Sprintf("sanmodel: unknown FD distribution kind %d", b.p.FD.Kind))
	}
}

// buildFD creates the two-state failure-detector submodels (§3.4, Fig. 5)
// at process pr for every monitored correct peer. Crashed peers keep their
// static suspicion (class 2); TMR <= 0 disables mistakes (class 1).
func (b *builder) buildFD(pr *proc, crashed map[int]bool) {
	if pr.crashed || b.p.FD.TMR <= 0 {
		return
	}
	tm, tmr := b.p.FD.TM, b.p.FD.TMR
	trustDist, suspDist := b.fdSojourns()
	ns := b.m.Namespace(fmt.Sprintf("P%d.fd", pr.id))
	for j := 1; j <= b.p.N; j++ {
		if j == pr.id || crashed[j] {
			continue
		}
		susp := pr.suspects[j-1]
		trust := ns.Place(fmt.Sprintf("Trust%d", j), 0)
		initP := ns.Place(fmt.Sprintf("Init%d", j), 1)
		// Instantaneous init: Susp with probability TM/TMR (the
		// steady-state fraction of time spent suspecting), Trust otherwise.
		init := ns.Instant(fmt.Sprintf("init%d", j), prioFDInit).Input(initP)
		init.Case(tm / tmr).Output(susp)
		init.Case(1 - tm/tmr).Output(trust)
		// ts: trust -> suspect after a mean sojourn of TMR - TM;
		// st: suspect -> trust after a mean sojourn of TM.
		ns.Timed(fmt.Sprintf("ts%d", j), san.Fixed(trustDist)).Input(trust).Output(susp)
		ns.Timed(fmt.Sprintf("st%d", j), san.Fixed(suspDist)).Input(susp).Output(trust)
	}
}
