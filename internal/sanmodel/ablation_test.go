package sanmodel

import "testing"

// TestUnicastBroadcastReproducesAnomaly: with broadcasts modeled as n−1
// unicasts (the implementation's behaviour), the SAN must reproduce the
// measured n = 3 participant-crash latency *increase* that the paper's
// single-broadcast model misses (§5.3).
func TestUnicastBroadcastReproducesAnomaly(t *testing.T) {
	run := func(unicast bool, crashed []int) float64 {
		p := DefaultParams(3)
		p.UnicastBroadcast = unicast
		p.Crashed = crashed
		res, err := Simulate(p, 1500, 1e6, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.Digest.Mean()
	}
	// Paper model: participant crash decreases latency at n=3.
	if part, base := run(false, []int{2}), run(false, nil); part >= base {
		t.Errorf("single-broadcast model: participant crash %.3f !< base %.3f", part, base)
	}
	// Unicast ablation: the proposal to the crashed process delays the
	// proposal to the live one — latency increases, like the measurement.
	if part, base := run(true, []int{2}), run(true, nil); part <= base {
		t.Errorf("unicast-broadcast model: participant crash %.3f !> base %.3f (anomaly not reproduced)", part, base)
	}
}

// TestCorrelatedFDBuilds: the correlated-FD ablation builds, runs and
// produces a different latency than the independent model at bad QoS.
func TestCorrelatedFDBuilds(t *testing.T) {
	run := func(correlated bool) float64 {
		p := DefaultParams(5)
		p.FD = FDModel{TMR: 10, TM: 2, Kind: FDExponential}
		p.FDCorrelated = correlated
		res, err := Simulate(p, 800, 1e6, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.Digest.Mean()
	}
	indep, corr := run(false), run(true)
	if indep <= 0 || corr <= 0 {
		t.Fatal("non-positive latencies")
	}
	if indep == corr {
		t.Fatal("correlated and independent FD models identical (ablation inert)")
	}
}
