package sanmodel

import (
	"math"
	"strings"
	"testing"

	"ctsan/internal/rng"
	"ctsan/internal/san"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{N: 1}); err == nil {
		t.Error("n=1 accepted")
	}
	p := DefaultParams(3)
	p.TSend = 0
	if _, err := Build(p); err == nil {
		t.Error("zero t_send accepted")
	}
	p = DefaultParams(3)
	p.NetUnicast = nil
	if _, err := Build(p); err == nil {
		t.Error("missing network distribution accepted")
	}
	p = DefaultParams(3)
	p.Crashed = []int{1, 2}
	if _, err := Build(p); err == nil {
		t.Error("majority violation accepted")
	}
	p = DefaultParams(3)
	p.Crashed = []int{9}
	if _, err := Build(p); err == nil {
		t.Error("out-of-range crash accepted")
	}
	if _, err := Build(DefaultParams(5)); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestClass1Decides(t *testing.T) {
	for _, n := range []int{2, 3, 5, 7} {
		res, err := Simulate(DefaultParams(n), 50, 1e6, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated != 0 {
			t.Fatalf("n=%d: %d truncated replicas in a failure-free run", n, res.Truncated)
		}
		if res.Digest.Mean() <= 0 {
			t.Fatalf("n=%d: non-positive latency", n)
		}
	}
}

func TestLatencyGrowsWithN(t *testing.T) {
	means := map[int]float64{}
	for _, n := range []int{3, 5, 7} {
		res, err := Simulate(DefaultParams(n), 400, 1e6, 3)
		if err != nil {
			t.Fatal(err)
		}
		means[n] = res.Digest.Mean()
	}
	if !(means[3] < means[5] && means[5] < means[7]) {
		t.Fatalf("latency not increasing in n: %v (contention model broken)", means)
	}
}

// TestTable1Directions asserts the §5.3 simulation findings: the
// coordinator crash adds a round and increases latency; the participant
// crash decreases it (broadcast is a single message, so even at n=3).
func TestTable1Directions(t *testing.T) {
	for _, n := range []int{3, 5} {
		base, err := Simulate(DefaultParams(n), 600, 1e6, 3)
		if err != nil {
			t.Fatal(err)
		}
		pc := DefaultParams(n)
		pc.Crashed = []int{1}
		coord, err := Simulate(pc, 600, 1e6, 3)
		if err != nil {
			t.Fatal(err)
		}
		pp := DefaultParams(n)
		pp.Crashed = []int{2}
		part, err := Simulate(pp, 600, 1e6, 3)
		if err != nil {
			t.Fatal(err)
		}
		if coord.Digest.Mean() <= base.Digest.Mean() {
			t.Errorf("n=%d: coordinator crash %.3f !> no crash %.3f", n, coord.Digest.Mean(), base.Digest.Mean())
		}
		if part.Digest.Mean() >= base.Digest.Mean() {
			t.Errorf("n=%d: participant crash %.3f !< no crash %.3f (single-broadcast model, §5.3)", n, part.Digest.Mean(), base.Digest.Mean())
		}
	}
}

// TestCrashedNeverDecides: a crashed process's Decided place stays empty.
func TestCrashedNeverDecides(t *testing.T) {
	p := DefaultParams(3)
	p.Crashed = []int{2}
	model, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	sim := san.NewSim(model.SAN, rng.New(4))
	_, stopped := sim.Run(1e6, model.Done)
	if !stopped {
		t.Fatal("run did not decide")
	}
	if sim.Marking().Get(model.Decided[1]) != 0 {
		t.Fatal("crashed process decided")
	}
	if sim.Marking().Get(model.Decided[0]) == 0 && sim.Marking().Get(model.Decided[2]) == 0 {
		t.Fatal("no correct process decided")
	}
}

// TestFDQoSMonotonicity: worse failure-detector QoS (smaller T_MR) must
// not make consensus faster.
func TestFDQoSMonotonicity(t *testing.T) {
	lat := func(tmr float64) float64 {
		p := DefaultParams(3)
		if tmr > 0 {
			p.FD = FDModel{TMR: tmr, TM: 2, Kind: FDExponential}
		}
		res, err := Simulate(p, 800, 1e6, 9)
		if err != nil {
			t.Fatal(err)
		}
		return res.Digest.Mean()
	}
	clean := lat(0)
	good := lat(500)
	bad := lat(8)
	if bad <= good*1.05 {
		t.Fatalf("bad QoS latency %.3f not clearly above good QoS %.3f", bad, good)
	}
	if good < clean*0.9 {
		t.Fatalf("good-QoS latency %.3f below failure-free %.3f", good, clean)
	}
}

func TestFDKindsDiffer(t *testing.T) {
	mean := func(kind FDDistKind) float64 {
		p := DefaultParams(3)
		p.FD = FDModel{TMR: 10, TM: 3, Kind: kind}
		res, err := Simulate(p, 600, 1e6, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.Digest.Mean()
	}
	det := mean(FDDeterministic)
	exp := mean(FDExponential)
	if det == exp {
		t.Fatal("det and exp FD models produced identical means (suspicious)")
	}
}

func TestInvalidFDPanics(t *testing.T) {
	p := DefaultParams(3)
	p.FD = FDModel{TMR: 5, TM: 9} // TM > TMR
	defer func() {
		if recover() == nil {
			t.Fatal("TM > TMR accepted")
		}
	}()
	_, _ = Build(p)
	model, _ := Build(p)
	_ = model
}

// TestRoundsGuard: with all processes suspecting each other through an
// impossible QoS, the guard must abort instead of running forever.
func TestRoundsGuard(t *testing.T) {
	p := DefaultParams(3)
	p.FD = FDModel{TMR: 1.0, TM: 0.98, Kind: FDDeterministic} // almost always suspected
	p.MaxRoundsGuard = 30
	res, err := Simulate(p, 30, 1e5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated == 0 {
		t.Log("note: no truncations; guard untested under this QoS")
	}
	// The run must terminate either way — reaching here is the assertion.
}

// TestDepTrackingMatchesFullRescan is the differential test for the
// dependency-tracked simulator: the consensus model (hundreds of gated
// activities) must behave identically with and without the optimization.
func TestDepTrackingMatchesFullRescan(t *testing.T) {
	p := DefaultParams(5)
	p.FD = FDModel{TMR: 15, TM: 2, Kind: FDExponential}
	model, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(full bool, seed uint64) (float64, uint64) {
		sim := san.NewSim(model.SAN, rng.New(seed))
		sim.SetFullRescan(full)
		at, stopped := sim.Run(1e6, model.Done)
		if !stopped {
			t.Fatal("did not stop")
		}
		return at, sim.Fired()
	}
	for seed := uint64(1); seed <= 25; seed++ {
		t1, f1 := run(false, seed)
		t2, f2 := run(true, seed)
		if math.Abs(t1-t2) > 1e-12 || f1 != f2 {
			t.Fatalf("seed %d: optimized (%v, %d firings) != full rescan (%v, %d firings): missing gate Reads declaration",
				seed, t1, f1, t2, f2)
		}
	}
}

func TestModelNaming(t *testing.T) {
	model, err := Build(DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(model.SAN.Name(), "n3") {
		t.Errorf("model name %q", model.SAN.Name())
	}
	if len(model.Decided) != 3 || len(model.RoundOf) != 3 {
		t.Fatalf("handles: %d decided, %d rounds", len(model.Decided), len(model.RoundOf))
	}
}

func TestBroadcastScaleGrows(t *testing.T) {
	if !(broadcastScale(3) < broadcastScale(5) && broadcastScale(5) < broadcastScale(11)) {
		t.Fatal("broadcast scale must grow with n (Fig. 6)")
	}
}
