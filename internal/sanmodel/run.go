package sanmodel

import (
	"context"
	"math"

	"ctsan/internal/rng"
	"ctsan/internal/san"
)

// Simulate runs a replicated transient study of the model: each replica
// executes one consensus until the first decision (§2.3's latency) or the
// rounds guard trips. Replicas that abort or exceed tmax are discarded and
// counted in the result's Truncated field. Replicas run on one worker per
// CPU; results are bit-identical at every worker count (see
// SimulateContext).
func Simulate(p Params, replicas int, tmax float64, seed uint64) (*san.TransientResult, error) {
	return SimulateContext(context.Background(), p, replicas, tmax, seed, 0)
}

// SimulateWorkers is Simulate with an explicit worker count. It is a thin
// adapter over SimulateContext with a background context, kept for call
// sites that have no context to thread.
func SimulateWorkers(p Params, replicas int, tmax float64, seed uint64, workers int) (*san.TransientResult, error) {
	return SimulateContext(context.Background(), p, replicas, tmax, seed, workers)
}

// SimulateContext is the transient-study core: workers 0 (or negative)
// means one per CPU, 1 forces the serial reference path, and ctx cancels
// the study between replicas. The model is built once and shared by every
// replica — it carries no run-time state — and each replica draws from the
// seed stream's Child(replica), so the returned samples are bit-identical
// for any worker count.
func SimulateContext(ctx context.Context, p Params, replicas int, tmax float64, seed uint64, workers int) (*san.TransientResult, error) {
	model, err := Build(p)
	if err != nil {
		return nil, err
	}
	return san.Transient(
		ctx,
		func() *san.Model { return model.SAN },
		rng.New(seed^0x5a_0de1),
		san.TransientSpec{
			Replicas: replicas,
			Tmax:     tmax,
			Workers:  workers,
			Stop:     model.Done,
			Measure: func(mk *san.Marking, t float64) float64 {
				if mk.Get(model.Aborted) > 0 {
					return math.NaN()
				}
				return t
			},
		},
	)
}
