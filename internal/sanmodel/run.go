package sanmodel

import (
	"math"

	"ctsan/internal/rng"
	"ctsan/internal/san"
)

// Simulate runs a replicated transient study of the model: each replica
// executes one consensus until the first decision (§2.3's latency) or the
// rounds guard trips. Replicas that abort or exceed tmax are discarded and
// counted in the result's Truncated field.
func Simulate(p Params, replicas int, tmax float64, seed uint64) (*san.TransientResult, error) {
	model, err := Build(p)
	if err != nil {
		return nil, err
	}
	return san.Transient(
		func() *san.Model { return model.SAN },
		rng.New(seed^0x5a_0de1),
		san.TransientSpec{
			Replicas: replicas,
			Tmax:     tmax,
			Stop:     model.Done,
			Measure: func(mk *san.Marking, t float64) float64 {
				if mk.Get(model.Aborted) > 0 {
					return math.NaN()
				}
				return t
			},
		},
	)
}
