// Package sanmodel builds the paper's SAN model of the Chandra–Toueg ◇S
// consensus algorithm (§3) on top of the internal/san engine, with:
//
//   - one submodel per process (the rotating coordinator prevents a
//     parametric REP, §3.2), joined through shared places;
//   - the state machine of one round: coordinator actions (P1C), the
//     participant actions P1A1 (send estimate), P1A2a (positive ack on
//     proposal), P1A2b (negative ack on suspicion), and the new-round
//     submodel P1A3 holding the round number modulo n (§3.2);
//   - the contention-aware network model of §3.3: per-process CPU
//     resources and one shared network resource, with the seven-step
//     message decomposition t_send → t_net → t_receive; broadcasts are a
//     single message with a larger t_net (§5.1);
//   - the abstract failure-detector submodels of §3.4: one two-state
//     (Trust/Susp) process per ordered pair, alternating with
//     deterministic or exponential sojourn times derived from the QoS
//     metrics T_MR and T_M, initialized by an instantaneous activity with
//     case probabilities (Fig. 5).
//
// Message round numbers are tracked modulo n, the paper's simplification:
// "the algorithm only takes the messages of the last n−1 rounds into
// account" (§3.2). Rounds map to tags tag(r) = r mod n; the coordinator of
// a tag is the unique process p with p ≡ tag (mod n), so a message's tag
// determines its coordinator and no per-destination routing is needed.
package sanmodel

import (
	"fmt"

	"ctsan/internal/dist"
	"ctsan/internal/san"
)

// FDDistKind selects the sojourn-time distribution of the FD submodels
// (§3.4: "a deterministic and an exponential distribution, so to have, for
// the same mean value, a distribution with the minimum variance (0) and a
// distribution with a high variance").
type FDDistKind int

const (
	// FDDeterministic uses point-mass sojourns.
	FDDeterministic FDDistKind = iota
	// FDExponential uses exponential sojourns.
	FDExponential
)

// FDModel are the QoS parameters feeding the failure-detector submodels.
type FDModel struct {
	// TMR is the mean mistake recurrence time, TM the mean mistake
	// duration (ms). TMR <= 0 disables wrong suspicions entirely
	// (class-1/class-2 runs).
	TMR, TM float64
	Kind    FDDistKind
}

// Params configures one build of the consensus SAN model.
type Params struct {
	N int
	// TSend is the (deterministic) CPU occupancy for sending a message;
	// TReceive for receiving. §5.1 fixes both to 0.025 ms.
	TSend, TReceive float64
	// NetUnicast is the network-resource occupancy distribution of a
	// unicast message: the measured end-to-end delay minus 2·t_send
	// (§5.1). NetBroadcast likewise for the single-message broadcast.
	NetUnicast, NetBroadcast dist.Dist
	// FD configures wrong suspicions (class 3).
	FD FDModel
	// Crashed processes are initially crashed (class 2): they never act,
	// and every correct process suspects them from the beginning.
	Crashed []int
	// MaxRoundsGuard aborts pathological runs; 0 means 64·n.
	MaxRoundsGuard int

	// UnicastBroadcast is an ablation of the §5.1 modeling choice: when
	// set, broadcasts are modeled as n−1 unicast messages in ascending
	// destination order (like the implementation) instead of one message
	// with a larger t_net. With it, the SAN reproduces the measured n = 3
	// participant-crash anomaly that the paper's model misses (§5.3).
	UnicastBroadcast bool
	// FDCorrelated is an ablation of the §3.4 independence assumption:
	// when set, all observers of a process q share one Trust/Susp state,
	// the extreme opposite of independent per-pair detectors. The paper
	// names the independence assumption as the main reason the model
	// deviates from measurements at small timeouts (§5.4).
	FDCorrelated bool
}

// DefaultParams returns the paper's parameterization (§5.1/§5.2):
// t_send = t_receive = 0.025 ms, unicast t_net from the bi-modal fit minus
// 2·t_send, and the broadcast t_net enlarged per the Fig. 6 broadcast
// measurements.
func DefaultParams(n int) Params {
	return Params{
		N:        n,
		TSend:    0.025,
		TReceive: 0.025,
		// U[0.1,0.13] and U[0.145,0.35] shifted by -2·0.025.
		NetUnicast: dist.Bimodal(0.8, 0.050, 0.080, 0.095, 0.300),
		// Broadcast-to-n end-to-end delays are larger (Fig. 6); the scale
		// factor is refit from measurements via fit.ScaleBimodal when the
		// experiment harness drives the model.
		NetBroadcast: dist.Bimodal(0.8, 0.050*broadcastScale(n), 0.080*broadcastScale(n),
			0.095*broadcastScale(n), 0.300*broadcastScale(n)),
	}
}

// broadcastScale approximates how much larger the broadcast t_net is than
// the unicast t_net for n destinations, consistent with the Fig. 6 curves
// (broadcast-to-5 roughly doubles the unicast delay).
func broadcastScale(n int) float64 { return 1 + 0.25*float64(n-1) }

// Model is the built SAN consensus model plus the handles needed to define
// reward variables (stop conditions, latency measures).
type Model struct {
	SAN     *san.Model
	Params  Params
	Decided []*san.Place // Decided[i-1]: process i has decided (1..n)
	// RoundOf[i-1] holds the current round tag of process i (for tests).
	RoundOf []*san.Place
	// RoundsTotal counts round advances across all processes; Aborted is
	// marked when the MaxRoundsGuard trips.
	RoundsTotal *san.Place
	Aborted     *san.Place
}

// AnyDecided reports whether some process has decided in marking mk — the
// stop condition of the latency reward variable (§2.3: "t_1 is the time at
// which the first process decides").
func (m *Model) AnyDecided(mk *san.Marking) bool {
	for _, p := range m.Decided {
		if mk.Get(p) > 0 {
			return true
		}
	}
	return false
}

// Done reports whether the run is over: a decision was reached or the
// rounds guard tripped.
func (m *Model) Done(mk *san.Marking) bool {
	return m.AnyDecided(mk) || mk.Get(m.Aborted) > 0
}

// process-local build state.
type proc struct {
	id        int // 1..n
	crashed   bool
	start     *san.Place // token: about to start a round (INIT)
	waitProp  *san.Place // participant waiting for the proposal
	collect   *san.Place // coordinator collecting estimates
	waitAck   *san.Place // coordinator waiting for acks
	decided   *san.Place
	round     *san.Place   // current round tag (0..n-1); round 1 has tag 1
	estCnt    []*san.Place // per tag: estimates received as coordinator
	ackCnt    []*san.Place // per tag
	nackCnt   []*san.Place // per tag
	propSeen  []*san.Place // per tag: proposal arrived early
	cpu       *san.Place   // CPU resource (1 token)
	suspects  []*san.Place // suspects[j-1]: this process suspects j (marking 1)
	estPipe   []pipe       // per tag: estimate to coord(tag)
	ackPipe   []pipe       // per tag
	nackPipe  []pipe
	propPipe  pipe // broadcast pipeline, source = this process
	decidePip pipe
}

// pipe is one message pipeline: sendq -> (cpu_src, t_send) -> netq ->
// (network, t_net) -> recvq -> (cpu_dst, t_receive) -> delivery.
type pipe struct {
	sendq, netq, recvq *san.Place
}

type builder struct {
	p       Params
	m       *san.Model
	network *san.Place
	rounds  *san.Place // total round advances across all processes
	aborted *san.Place // rounds guard tripped
	procs   []*proc
	maj     int
}

// Build constructs the SAN model for the given parameters.
func Build(p Params) (*Model, error) {
	if p.N < 2 {
		return nil, fmt.Errorf("sanmodel: need n >= 2, got %d", p.N)
	}
	if p.TSend <= 0 || p.TReceive <= 0 {
		return nil, fmt.Errorf("sanmodel: non-positive t_send/t_receive")
	}
	if p.NetUnicast == nil || p.NetBroadcast == nil {
		return nil, fmt.Errorf("sanmodel: missing network delay distributions")
	}
	if len(p.Crashed) >= (p.N+1)/2 {
		return nil, fmt.Errorf("sanmodel: %d crashes violate majority-correct for n=%d", len(p.Crashed), p.N)
	}
	if p.MaxRoundsGuard == 0 {
		p.MaxRoundsGuard = 64 * p.N
	}
	b := &builder{p: p, m: san.NewModel(fmt.Sprintf("ct-consensus-n%d", p.N)), maj: p.N/2 + 1}
	b.network = b.m.Place("Network", 1)
	b.rounds = b.m.Place("RoundsTotal", 0)
	b.aborted = b.m.Place("Aborted", 0)
	crashed := make(map[int]bool)
	for _, c := range p.Crashed {
		if c < 1 || c > p.N {
			return nil, fmt.Errorf("sanmodel: crashed process %d out of range", c)
		}
		crashed[c] = true
	}
	for i := 1; i <= p.N; i++ {
		b.procs = append(b.procs, b.buildProcessPlaces(i, crashed[i]))
	}
	for i := 1; i <= p.N; i++ {
		b.buildPipelines(b.procs[i-1])
	}
	// The correlated-FD ablation rebinds suspicion places; it must run
	// before the state machines capture them in their gates.
	if p.FDCorrelated {
		b.buildCorrelatedFD(crashed)
	}
	for i := 1; i <= p.N; i++ {
		b.buildStateMachine(b.procs[i-1])
	}
	if !p.FDCorrelated {
		for i := 1; i <= p.N; i++ {
			b.buildFD(b.procs[i-1], crashed)
		}
	}
	model := &Model{SAN: b.m, Params: p, RoundsTotal: b.rounds, Aborted: b.aborted}
	for _, pr := range b.procs {
		model.Decided = append(model.Decided, pr.decided)
		model.RoundOf = append(model.RoundOf, pr.round)
	}
	if err := b.m.Validate(); err != nil {
		return nil, err
	}
	return model, nil
}

// coordOf returns the coordinator process id (1..n) of a round tag.
func (b *builder) coordOf(tag int) int {
	c := tag % b.p.N
	if c == 0 {
		c = b.p.N
	}
	return c
}

// buildProcessPlaces creates the per-process places.
func (b *builder) buildProcessPlaces(id int, crashed bool) *proc {
	ns := b.m.Namespace(fmt.Sprintf("P%d", id))
	pr := &proc{id: id, crashed: crashed}
	start := 0
	if !crashed {
		start = 1
	}
	pr.start = ns.Place("Start", start)
	pr.waitProp = ns.Place("WaitProp", 0)
	pr.collect = ns.Place("Collect", 0)
	pr.waitAck = ns.Place("WaitAck", 0)
	pr.decided = ns.Place("Decided", 0)
	pr.round = ns.Place("Round", 1%b.p.N) // round 1 -> tag 1 (tag 0 for n=1, impossible)
	pr.cpu = ns.Place("CPU", 1)
	for tag := 0; tag < b.p.N; tag++ {
		pr.estCnt = append(pr.estCnt, ns.Place(fmt.Sprintf("EstCnt%d", tag), 0))
		pr.ackCnt = append(pr.ackCnt, ns.Place(fmt.Sprintf("AckCnt%d", tag), 0))
		pr.nackCnt = append(pr.nackCnt, ns.Place(fmt.Sprintf("NackCnt%d", tag), 0))
		pr.propSeen = append(pr.propSeen, ns.Place(fmt.Sprintf("PropSeen%d", tag), 0))
	}
	for j := 1; j <= b.p.N; j++ {
		init := 0
		if j != id && crashedInit(b.p.Crashed, j) {
			init = 1 // class 2: the crashed process is suspected from the beginning
		}
		pr.suspects = append(pr.suspects, ns.Place(fmt.Sprintf("Susp%d", j), init))
	}
	return pr
}

func crashedInit(crashed []int, j int) bool {
	for _, c := range crashed {
		if c == j {
			return true
		}
	}
	return false
}
