package trace

import (
	"fmt"
	"io"
	"strconv"
)

// This file renders trace snapshots in two interchange formats:
//
//   - JSONL: one JSON object per event, the stable machine-readable dump
//     of `cmd/scenario trace`. Zero-valued fields are omitted, floats are
//     rendered with strconv's shortest round-trip formatting, and field
//     order is fixed — so the bytes are a pure function of the events,
//     which is what lets the golden and differential worker-count tests
//     pin trace determinism (rule 6) at the byte level.
//   - Chrome trace_event JSON: the array-of-events format chrome://tracing
//     and Perfetto load. Every record becomes an instant event with the
//     replica as pid and the process as tid, so one replica renders as
//     one process row group with a per-host timeline.

// appendFloat renders f in shortest round-trip form ('g', -1), which is
// deterministic across platforms for a given bit pattern.
func appendFloat(b []byte, f float64) []byte {
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// appendJSONL renders one event as a JSONL line (without the newline).
func appendJSONL(b []byte, rep int, e Event) []byte {
	b = append(b, `{"rep":`...)
	b = strconv.AppendInt(b, int64(rep), 10)
	b = append(b, `,"t":`...)
	b = appendFloat(b, e.T)
	b = append(b, `,"k":"`...)
	b = append(b, e.Kind.Name()...)
	b = append(b, '"')
	if e.P != 0 {
		b = append(b, `,"p":`...)
		b = strconv.AppendInt(b, int64(e.P), 10)
	}
	if e.Q != 0 {
		b = append(b, `,"q":`...)
		b = strconv.AppendInt(b, int64(e.Q), 10)
	}
	if e.A != 0 {
		b = append(b, `,"a":`...)
		b = strconv.AppendInt(b, e.A, 10)
	}
	if e.B != 0 {
		b = append(b, `,"b":`...)
		b = strconv.AppendInt(b, e.B, 10)
	}
	if e.X != 0 {
		b = append(b, `,"x":`...)
		b = appendFloat(b, e.X)
	}
	if e.S != "" {
		b = append(b, `,"s":`...)
		b = strconv.AppendQuote(b, e.S)
	}
	return append(b, '}')
}

// WriteJSONL writes every event of the snapshot as one JSONL line
// carrying the replica index. If events were dropped by ring wrap-around
// a leading meta line reports the truncation, so a bounded dump is never
// mistaken for a complete one.
func (tr *Trace) WriteJSONL(w io.Writer, rep int) error {
	var b []byte
	if tr.Dropped > 0 {
		b = append(b, `{"rep":`...)
		b = strconv.AppendInt(b, int64(rep), 10)
		b = append(b, `,"meta":"ring-truncated","dropped":`...)
		b = strconv.AppendUint(b, tr.Dropped, 10)
		b = append(b, "}\n"...)
	}
	for _, e := range tr.Events {
		b = appendJSONL(b, rep, e)
		b = append(b, '\n')
		if len(b) >= 1<<16 {
			if _, err := w.Write(b); err != nil {
				return err
			}
			b = b[:0]
		}
	}
	_, err := w.Write(b)
	return err
}

// chromeName renders the display name of an event for the Chrome format.
func chromeName(e Event) string {
	switch e.Kind {
	case KindSend, KindDeliver, KindDrop:
		return e.Kind.Name() + " " + e.S
	case KindPhase:
		return "phase " + e.S
	default:
		return e.Kind.Name()
	}
}

// appendChromeEvent renders one record as a trace_event instant. ts is in
// microseconds per the format; simulated milliseconds scale by 1000.
func appendChromeEvent(b []byte, rep int, e Event) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, chromeName(e))
	b = append(b, `,"ph":"i","s":"t","pid":`...)
	b = strconv.AppendInt(b, int64(rep), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(e.P), 10)
	b = append(b, `,"ts":`...)
	b = appendFloat(b, e.T*1000)
	b = append(b, `,"args":{`...)
	first := true
	field := func(name string) {
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, '"')
		b = append(b, name...)
		b = append(b, `":`...)
	}
	if e.Q != 0 {
		field("q")
		b = strconv.AppendInt(b, int64(e.Q), 10)
	}
	if e.A != 0 {
		field("a")
		b = strconv.AppendInt(b, e.A, 10)
	}
	if e.B != 0 {
		field("b")
		b = strconv.AppendInt(b, e.B, 10)
	}
	if e.X != 0 {
		field("x")
		b = appendFloat(b, e.X)
	}
	if e.S != "" {
		field("s")
		b = strconv.AppendQuote(b, e.S)
	}
	return append(b, "}}"...)
}

// ChromeWriter streams multiple replica snapshots into one Chrome
// trace_event document: Begin, any number of Add calls, End. The output
// loads in Perfetto / chrome://tracing with one pid per replica and one
// tid per process.
type ChromeWriter struct {
	w     io.Writer
	first bool
	err   error
}

// NewChromeWriter opens the document ({"traceEvents":[).
func NewChromeWriter(w io.Writer) (*ChromeWriter, error) {
	cw := &ChromeWriter{w: w, first: true}
	_, cw.err = io.WriteString(w, `{"traceEvents":[`)
	return cw, cw.err
}

// Add appends every event of one replica snapshot.
func (cw *ChromeWriter) Add(rep int, tr *Trace) error {
	if cw.err != nil {
		return cw.err
	}
	var b []byte
	for _, e := range tr.Events {
		if !cw.first {
			b = append(b, ',')
		}
		cw.first = false
		b = append(b, '\n')
		b = appendChromeEvent(b, rep, e)
		if len(b) >= 1<<16 {
			if _, cw.err = cw.w.Write(b); cw.err != nil {
				return cw.err
			}
			b = b[:0]
		}
	}
	_, cw.err = cw.w.Write(b)
	return cw.err
}

// Close terminates the document. The display-time unit is microseconds
// of simulated time.
func (cw *ChromeWriter) Close() error {
	if cw.err != nil {
		return cw.err
	}
	_, cw.err = io.WriteString(cw.w, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return cw.err
}

// String renders one event as a human-readable line (the explain mode's
// format): fixed-width time, kind, and kind-specific detail.
func (e Event) String() string {
	detail := ""
	switch e.Kind {
	case KindSend, KindDeliver:
		detail = fmt.Sprintf("p%d→p%d %s", from(e), to(e), e.S)
	case KindDrop:
		reason := [...]string{DropPartition: "partition", DropLinkLoss: "link-loss",
			DropFailedSend: "failed-send", DropDown: "receiver-down"}[e.B]
		detail = fmt.Sprintf("p%d→p%d %s (%s)", from(e), to(e), e.S, reason)
	case KindTimerArm:
		detail = fmt.Sprintf("p%d due=%g", e.P, e.X)
	case KindTimerStop, KindTimerFire, KindCrash, KindRecover:
		detail = fmt.Sprintf("p%d", e.P)
	case KindLinkSet:
		detail = fmt.Sprintf("p%d→p%d loss=%g", e.P, e.Q, e.X)
	case KindLinkClear:
		detail = fmt.Sprintf("p%d→p%d", e.P, e.Q)
	case KindPause:
		detail = fmt.Sprintf("p%d dur=%g", e.P, e.X)
	case KindPhase:
		detail = fmt.Sprintf("%q", e.S)
	case KindHBEmit:
		detail = fmt.Sprintf("p%d seq=%d", e.P, e.A)
	case KindHBRecv:
		detail = fmt.Sprintf("p%d from p%d seq=%d", e.P, e.Q, e.A)
	case KindSuspect:
		detail = fmt.Sprintf("p%d suspects p%d (last msg at %g, silent %g ms)", e.P, e.Q, e.X, e.T-e.X)
	case KindTrust:
		detail = fmt.Sprintf("p%d trusts p%d again", e.P, e.Q)
	case KindPropose:
		detail = fmt.Sprintf("p%d cid=%d val=%d", e.P, e.A, e.B)
	case KindRound:
		detail = fmt.Sprintf("p%d cid=%d round=%d coord=p%d", e.P, e.A, e.B, e.Q)
	case KindEstimate:
		detail = fmt.Sprintf("p%d cid=%d round=%d to coord p%d", e.P, e.A, e.B, e.Q)
	case KindProposal:
		detail = fmt.Sprintf("p%d cid=%d round=%d val=%g", e.P, e.A, e.B, e.X)
	case KindAck:
		ok := "ack"
		if e.X == 0 {
			ok = "nack"
		}
		detail = fmt.Sprintf("p%d cid=%d round=%d %s to p%d", e.P, e.A, e.B, ok, e.Q)
	case KindDecide:
		detail = fmt.Sprintf("p%d cid=%d round=%d val=%g", e.P, e.A, e.B, e.X)
	case KindSchedule:
		detail = fmt.Sprintf("due=%g", e.X)
	}
	if detail == "" {
		return fmt.Sprintf("%12.6f  %-10s", e.T, e.Kind.Name())
	}
	return fmt.Sprintf("%12.6f  %-10s %s", e.T, e.Kind.Name(), detail)
}

// from/to resolve the directional endpoints of message events: Send and
// Drop-at-send record P = sender, Deliver and Drop-at-receive record
// P = receiver with Q = sender.
func from(e Event) int32 {
	if e.Kind == KindDeliver || (e.Kind == KindDrop && e.B == DropDown) {
		return e.Q
	}
	return e.P
}

func to(e Event) int32 {
	if e.Kind == KindDeliver || (e.Kind == KindDrop && e.B == DropDown) {
		return e.P
	}
	return e.Q
}
