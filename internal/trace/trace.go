// Package trace is the deterministic execution tracer of the simulation
// engines: a bounded ring buffer of typed event records that the DES
// kernel, the cluster emulator, the failure detector, and the consensus
// engine emit into when a Tracer is attached.
//
// The design constraints come from the campaign layer:
//
//   - Zero overhead when disabled. Every emit site guards with a single
//     nil check on its tracer field; no record is built, no randomness is
//     consumed, no allocation happens. A run with tracing off is
//     bit-identical — results and event counts — to a run on a build
//     without tracing.
//   - Zero allocation when enabled. The ring buffer is allocated once at
//     construction (New) and records are written in place by value, so
//     steady-state tracing allocates nothing; a traced replica stays
//     inside the same per-execution allocation budget as an untraced
//     one (pinned by the scenario alloc tests).
//   - Determinism (rule 6, see PERFORMANCE.md). Events are emitted in
//     DES execution order, which is a pure function of the replica seed;
//     the ring and the writers are schedule-independent, so trace output
//     is byte-identical at any worker count.
//
// A Tracer belongs to one replica (one cluster and its protocol stacks):
// the emulation is single-threaded inside a replica, so the Tracer needs
// no locking. Campaign workers keep one Tracer per worker next to their
// reusable replica assembly and Reset it between grid units; Snapshot
// copies the captured window out when a run finishes.
package trace

// Kind identifies the type of a traced event. The zero value is invalid;
// kinds are stable identifiers used in the JSONL output (see Name).
type Kind uint8

const (
	// DES kernel events.
	KindSchedule Kind = iota + 1 // event scheduled (X = due time)
	KindFire                     // event fired (T = its due time)

	// Cluster emulator (netsim) events.
	KindSend      // message enters the send path (P = sender, Q = receiver, S = type)
	KindDeliver   // message dispatched to the receiving stack (P = receiver, Q = sender, S = type)
	KindDrop      // message lost (B = drop reason, see Drop* constants)
	KindTimerArm  // timer armed on P's host (X = ideal due time)
	KindTimerStop // timer stopped on P's host
	KindTimerFire // timer callback ran on P's host
	KindCrash     // process P crashed
	KindRecover   // process P recovered (stack restarted)
	KindPartition // network partition installed
	KindHeal      // network partition removed
	KindLinkSet   // degradation rule installed on link P→Q (X = loss probability)
	KindLinkClear // degradation rule removed from link P→Q
	KindPause     // whole-host execution pause on P (X = duration)
	KindPhase     // workload phase transition (S = phase name)

	// Failure-detector (fd) events.
	KindHBEmit  // P broadcast heartbeat A
	KindHBRecv  // P received heartbeat A from Q
	KindSuspect // P started suspecting Q (X = time of last message from Q)
	KindTrust   // P stopped suspecting Q

	// Consensus (Chandra–Toueg) events.
	KindPropose  // P started instance A with initial value B
	KindRound    // P entered round B of instance A (Q = its coordinator)
	KindEstimate // P sent its round-B estimate of instance A to coordinator Q
	KindProposal // coordinator P broadcast the round-B proposal of instance A (X = value)
	KindAck      // P acknowledged round B of instance A to coordinator Q (X = 1 ok, 0 nack)
	KindDecide   // P decided instance A in round B (X = value)

	kindCount
)

// Drop reasons carried in Event.B of KindDrop records.
const (
	DropPartition  = 1 // frame crossed a partition boundary at the hub
	DropLinkLoss   = 2 // link degradation rule lost the frame
	DropFailedSend = 3 // fast-failed send to an already-crashed peer
	DropDown       = 4 // receiver was down at delivery time
)

var kindNames = [kindCount]string{
	KindSchedule:  "schedule",
	KindFire:      "fire",
	KindSend:      "send",
	KindDeliver:   "deliver",
	KindDrop:      "drop",
	KindTimerArm:  "timer-arm",
	KindTimerStop: "timer-stop",
	KindTimerFire: "timer-fire",
	KindCrash:     "crash",
	KindRecover:   "recover",
	KindPartition: "partition",
	KindHeal:      "heal",
	KindLinkSet:   "link-set",
	KindLinkClear: "link-clear",
	KindPause:     "pause",
	KindPhase:     "phase",
	KindHBEmit:    "hb-emit",
	KindHBRecv:    "hb-recv",
	KindSuspect:   "suspect",
	KindTrust:     "trust",
	KindPropose:   "propose",
	KindRound:     "round",
	KindEstimate:  "estimate",
	KindProposal:  "proposal",
	KindAck:       "ack",
	KindDecide:    "decide",
}

// Name returns the kind's stable lowercase name (used in trace output).
func (k Kind) Name() string {
	if k >= kindCount {
		return "unknown"
	}
	return kindNames[k]
}

// Event is one traced record. T is the simulated time in milliseconds —
// global cluster time for kernel and netsim events, the emitting host's
// local clock (global time plus its NTP-bounded offset) for fd and
// consensus events; ring order, not T, is the causal execution order. P
// is the process the event happened at, Q a peer process (0 when not
// applicable). A, B, X are kind-specific numeric payloads and S a
// kind-specific string (message type, phase name) — see the Kind
// constants for each kind's field meanings. Strings stored here are
// static protocol constants, so copying the header into the ring does
// not allocate.
type Event struct {
	T    float64
	P, Q int32
	Kind Kind
	A, B int64
	X    float64
	S    string
}

// Tracer captures events into a bounded ring: the most recent Cap events
// are retained, older ones are overwritten (Dropped counts them). Not
// safe for concurrent use; a Tracer serves exactly one replica.
type Tracer struct {
	buf []Event
	n   uint64 // total events emitted since Reset
}

// DefaultCap is the ring capacity used when New is given cap <= 0:
// enough for several consensus executions' worth of kernel, network,
// detector, and protocol events (~64 bytes per record → ~4 MiB).
const DefaultCap = 1 << 16

// New creates a tracer with the given ring capacity (cap <= 0 means
// DefaultCap). The ring is the only allocation the tracer ever makes.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit appends one event to the ring, overwriting the oldest record once
// the ring is full. It never allocates.
func (t *Tracer) Emit(e Event) {
	t.buf[t.n%uint64(len(t.buf))] = e
	t.n++
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int { return len(t.buf) }

// Len returns the number of events currently retained (≤ Cap).
func (t *Tracer) Len() int {
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Total returns the number of events emitted since the last Reset,
// including overwritten ones.
func (t *Tracer) Total() uint64 { return t.n }

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t.n < uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Reset discards all captured events, retaining the ring, so one tracer
// serves successive campaign replicas without reallocating. Stale record
// contents are not zeroed — they are unreachable through Snapshot — but
// string references from the previous run are cleared lazily as the ring
// refills; Reset itself is O(1).
func (t *Tracer) Reset() { t.n = 0 }

// Snapshot copies the retained window out in emission (oldest-first)
// order. The snapshot allocates; it is meant for end-of-run consumption,
// never for the hot path.
func (t *Tracer) Snapshot() *Trace {
	tr := &Trace{Dropped: t.Dropped(), Events: make([]Event, t.Len())}
	if t.n <= uint64(len(t.buf)) {
		copy(tr.Events, t.buf[:t.n])
		return tr
	}
	head := int(t.n % uint64(len(t.buf))) // oldest retained record
	n := copy(tr.Events, t.buf[head:])
	copy(tr.Events[n:], t.buf[:head])
	return tr
}

// Trace is an immutable snapshot of a tracer's retained window.
type Trace struct {
	// Events holds the retained records, oldest first.
	Events []Event
	// Dropped counts records overwritten by ring wrap-around before the
	// snapshot (the window starts after them).
	Dropped uint64
}

// Window returns the events with from <= T < to, preserving order. The
// returned slice aliases the snapshot.
func (tr *Trace) Window(from, to float64) []Event {
	lo, hi := 0, len(tr.Events)
	// The ring is in execution order and T is monotone for global-time
	// events but host-local times may jitter by the clock offset; scan
	// linearly rather than binary-searching so no event at a skewed local
	// clock is missed at the boundaries.
	for lo < hi && tr.Events[lo].T < from {
		lo++
	}
	for hi > lo && tr.Events[hi-1].T >= to {
		hi--
	}
	return tr.Events[lo:hi]
}
