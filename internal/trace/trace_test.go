package trace

import (
	"bytes"
	"strings"
	"testing"
)

func ev(t float64, k Kind, p int32) Event {
	return Event{T: t, Kind: k, P: p}
}

func TestSnapshotOrderNoWrap(t *testing.T) {
	tr := New(8)
	for i := 0; i < 5; i++ {
		tr.Emit(ev(float64(i), KindFire, int32(i)))
	}
	if tr.Len() != 5 || tr.Total() != 5 || tr.Dropped() != 0 {
		t.Fatalf("Len=%d Total=%d Dropped=%d", tr.Len(), tr.Total(), tr.Dropped())
	}
	s := tr.Snapshot()
	if len(s.Events) != 5 || s.Dropped != 0 {
		t.Fatalf("snapshot: %d events, dropped %d", len(s.Events), s.Dropped)
	}
	for i, e := range s.Events {
		if e.P != int32(i) {
			t.Fatalf("event %d: P=%d", i, e.P)
		}
	}
}

func TestSnapshotOrderWrapped(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(ev(float64(i), KindFire, int32(i)))
	}
	if tr.Len() != 4 || tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("Len=%d Total=%d Dropped=%d", tr.Len(), tr.Total(), tr.Dropped())
	}
	s := tr.Snapshot()
	if s.Dropped != 6 {
		t.Fatalf("snapshot dropped %d, want 6", s.Dropped)
	}
	want := []int32{6, 7, 8, 9}
	for i, e := range s.Events {
		if e.P != want[i] {
			t.Fatalf("event %d: P=%d, want %d", i, e.P, want[i])
		}
	}
}

func TestResetReuse(t *testing.T) {
	tr := New(4)
	for i := 0; i < 7; i++ {
		tr.Emit(ev(float64(i), KindFire, int32(i)))
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after Reset: Len=%d Total=%d Dropped=%d", tr.Len(), tr.Total(), tr.Dropped())
	}
	tr.Emit(ev(42, KindCrash, 2))
	s := tr.Snapshot()
	if len(s.Events) != 1 || s.Events[0].Kind != KindCrash {
		t.Fatalf("post-reset snapshot: %+v", s.Events)
	}
}

func TestEmitZeroAllocs(t *testing.T) {
	tr := New(128)
	e := Event{T: 1.5, P: 1, Q: 2, Kind: KindSend, A: 3, S: "ct.estimate"}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(e)
	})
	if allocs != 0 {
		t.Fatalf("Emit allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestNewDefaultCap(t *testing.T) {
	if got := New(0).Cap(); got != DefaultCap {
		t.Fatalf("New(0).Cap() = %d, want %d", got, DefaultCap)
	}
	if got := New(16).Cap(); got != 16 {
		t.Fatalf("New(16).Cap() = %d, want 16", got)
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(1); k < kindCount; k++ {
		if k.Name() == "" || k.Name() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(0).Name() != "" {
		t.Fatalf("zero kind name = %q", Kind(0).Name())
	}
	if kindCount.Name() != "unknown" {
		t.Fatalf("out-of-range kind name = %q", kindCount.Name())
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	build := func() *Trace {
		tr := New(8)
		tr.Emit(Event{T: 0.125, Kind: KindSchedule, X: 10.5})
		tr.Emit(Event{T: 10.5, P: 1, Q: 2, Kind: KindSend, S: "fd.hb"})
		tr.Emit(Event{T: 11, P: 2, Q: 1, Kind: KindDeliver, S: "fd.hb", A: 7})
		tr.Emit(Event{T: 12, P: 1, Q: 2, Kind: KindDrop, B: DropLinkLoss, S: "ct.ack"})
		return tr.Snapshot()
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a, 3); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b, 3); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("non-deterministic JSONL:\n%s\nvs\n%s", a.String(), b.String())
	}
	want := `{"rep":3,"t":0.125,"k":"schedule","x":10.5}
{"rep":3,"t":10.5,"k":"send","p":1,"q":2,"s":"fd.hb"}
{"rep":3,"t":11,"k":"deliver","p":2,"q":1,"a":7,"s":"fd.hb"}
{"rep":3,"t":12,"k":"drop","p":1,"q":2,"b":2,"s":"ct.ack"}
`
	if a.String() != want {
		t.Fatalf("JSONL output:\n%s\nwant:\n%s", a.String(), want)
	}
}

func TestWriteJSONLTruncationMeta(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Emit(ev(float64(i), KindFire, 0))
	}
	var b bytes.Buffer
	if err := tr.Snapshot().WriteJSONL(&b, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"meta":"ring-truncated","dropped":3`) {
		t.Fatalf("missing truncation meta line:\n%s", b.String())
	}
}

func TestChromeWriter(t *testing.T) {
	tr := New(8)
	tr.Emit(Event{T: 1.5, P: 1, Q: 2, Kind: KindSend, S: "ct.estimate"})
	tr.Emit(Event{T: 2, P: 2, Kind: KindSuspect, Q: 1, X: 0.5})
	snap := tr.Snapshot()

	var b bytes.Buffer
	cw, err := NewChromeWriter(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Add(0, snap); err != nil {
		t.Fatal(err)
	}
	if err := cw.Add(1, snap); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, `{"traceEvents":[`) || !strings.Contains(out, `"displayTimeUnit"`) {
		t.Fatalf("malformed document:\n%s", out)
	}
	if !strings.Contains(out, `"name":"send ct.estimate"`) {
		t.Fatalf("missing named send event:\n%s", out)
	}
	if !strings.Contains(out, `"ts":1500`) {
		t.Fatalf("missing microsecond timestamp:\n%s", out)
	}
	if strings.Count(out, `"pid":1`) != 2 {
		t.Fatalf("second replica events not tagged pid 1:\n%s", out)
	}
}

func TestWindow(t *testing.T) {
	tr := New(16)
	for i := 0; i < 10; i++ {
		tr.Emit(ev(float64(i), KindFire, int32(i)))
	}
	w := tr.Snapshot().Window(3, 7)
	if len(w) != 4 || w[0].T != 3 || w[len(w)-1].T != 6 {
		t.Fatalf("window: %+v", w)
	}
}

func TestEventString(t *testing.T) {
	e := Event{T: 123.5, P: 1, Q: 2, Kind: KindSuspect, X: 100}
	s := e.String()
	if !strings.Contains(s, "suspect") || !strings.Contains(s, "p1 suspects p2") {
		t.Fatalf("String() = %q", s)
	}
	if !strings.Contains(s, "silent 23.5 ms") {
		t.Fatalf("missing silence duration: %q", s)
	}
}
