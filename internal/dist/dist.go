// Package dist provides the small family of delay distributions used by
// the emulated cluster (internal/netsim) and the SAN model
// (internal/sanmodel): deterministic, uniform, exponential, and finite
// mixtures of those. The paper parameterizes its models with exactly these
// shapes — constant protocol costs, uniform network supports, and the
// bi-modal uniform mixture fitted to measured end-to-end delays (§5.1).
//
// All times are float64 milliseconds. Sampling draws from an explicit
// rng.Stream so that every simulated component owns its randomness and
// experiments stay reproducible.
package dist

import (
	"fmt"

	"ctsan/internal/rng"
)

// Dist is a sampleable delay distribution.
type Dist interface {
	// Sample draws one value using the given stream.
	Sample(r *rng.Stream) float64
	// Mean returns the distribution mean.
	Mean() float64
}

// det is a point mass. It consumes no randomness.
type det float64

// Det returns the deterministic distribution concentrated at v.
func Det(v float64) Dist { return det(v) }

func (d det) Sample(*rng.Stream) float64 { return float64(d) }
func (d det) Mean() float64              { return float64(d) }
func (d det) String() string             { return fmt.Sprintf("Det(%g)", float64(d)) }

// uniform is U[lo, hi).
type uniform struct{ lo, hi float64 }

// U returns the uniform distribution on [lo, hi). It panics if hi < lo.
func U(lo, hi float64) Dist {
	if hi < lo {
		panic(fmt.Sprintf("dist: U with hi %g < lo %g", hi, lo))
	}
	return uniform{lo, hi}
}

func (d uniform) Sample(r *rng.Stream) float64 { return r.Uniform(d.lo, d.hi) }
func (d uniform) Mean() float64                { return (d.lo + d.hi) / 2 }
func (d uniform) String() string               { return fmt.Sprintf("U[%g,%g]", d.lo, d.hi) }

// expDist is exponential with the given mean.
type expDist float64

// Exp returns the exponential distribution with the given mean. It panics
// if mean is negative; a zero mean is the point mass at 0.
func Exp(mean float64) Dist {
	if mean < 0 {
		panic(fmt.Sprintf("dist: Exp with negative mean %g", mean))
	}
	return expDist(mean)
}

func (d expDist) Sample(r *rng.Stream) float64 { return r.Exp(float64(d)) }
func (d expDist) Mean() float64                { return float64(d) }
func (d expDist) String() string               { return fmt.Sprintf("Exp(%g)", float64(d)) }

// Component is one branch of a Mixture: distribution D with probability P.
type Component struct {
	P float64
	D Dist
}

// Mixture is a finite probabilistic mixture of distributions. The zero
// value is invalid; build mixtures with NewMixture, MustMixture, or
// Bimodal.
type Mixture struct {
	comps []Component
}

// NewMixture builds a mixture from components whose probabilities must sum
// to 1 (within 1e-9) and be non-negative.
func NewMixture(comps ...Component) (Mixture, error) {
	if len(comps) == 0 {
		return Mixture{}, fmt.Errorf("dist: mixture needs at least one component")
	}
	sum := 0.0
	for _, c := range comps {
		if c.P < 0 {
			return Mixture{}, fmt.Errorf("dist: negative mixture probability %g", c.P)
		}
		if c.D == nil {
			return Mixture{}, fmt.Errorf("dist: nil mixture component")
		}
		sum += c.P
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return Mixture{}, fmt.Errorf("dist: mixture probabilities sum to %g, want 1", sum)
	}
	m := Mixture{comps: make([]Component, len(comps))}
	copy(m.comps, comps)
	return m, nil
}

// MustMixture is NewMixture that panics on error; for literals.
func MustMixture(comps ...Component) Mixture {
	m, err := NewMixture(comps...)
	if err != nil {
		panic(err)
	}
	return m
}

// Bimodal returns the two-component uniform mixture
// U[lo1, hi1] w.p. p1 + U[lo2, hi2] w.p. 1−p1 — the shape the paper fits
// to measured end-to-end delays (§5.1).
func Bimodal(p1, lo1, hi1, lo2, hi2 float64) Mixture {
	return MustMixture(
		Component{P: p1, D: U(lo1, hi1)},
		Component{P: 1 - p1, D: U(lo2, hi2)},
	)
}

// Sample draws the component by one uniform variate, then samples it.
func (m Mixture) Sample(r *rng.Stream) float64 {
	u := r.Float64()
	acc := 0.0
	for i, c := range m.comps {
		acc += c.P
		if u < acc || i == len(m.comps)-1 {
			return c.D.Sample(r)
		}
	}
	return 0 // unreachable: NewMixture requires at least one component
}

// Mean returns the probability-weighted mean of the components.
func (m Mixture) Mean() float64 {
	s := 0.0
	for _, c := range m.comps {
		s += c.P * c.D.Mean()
	}
	return s
}

func (m Mixture) String() string {
	s := "Mixture("
	for i, c := range m.comps {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%v w.p. %.3g", c.D, c.P)
	}
	return s + ")"
}
