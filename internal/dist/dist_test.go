package dist

import (
	"math"
	"sort"
	"testing"

	"ctsan/internal/rng"
)

// sample draws n values from d.
func sample(d Dist, n int, seed uint64) []float64 {
	r := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	return xs
}

func moments(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

func quantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[int(q*float64(len(s)-1))]
}

func TestAnalyticMeans(t *testing.T) {
	mix := MustMixture(
		Component{P: 0.8, D: U(0.1, 0.13)},
		Component{P: 0.2, D: U(0.145, 0.35)},
	)
	cases := []struct {
		d    Dist
		want float64
	}{
		{Det(0), 0},
		{Det(5), 5},
		{U(2, 4), 3},
		{U(7, 7), 7},
		{Exp(0), 0},
		{Exp(7), 7},
		{mix, 0.8*0.115 + 0.2*0.2475},
		{Bimodal(0.8, 0.1, 0.13, 0.145, 0.35), 0.8*0.115 + 0.2*0.2475},
	}
	for _, c := range cases {
		if got := c.d.Mean(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v.Mean() = %g, want %g", c.d, got, c.want)
		}
	}
}

func TestSampledMomentsMatchAnalytic(t *testing.T) {
	const n = 200000
	cases := []struct {
		d                 Dist
		wantMean, wantVar float64
	}{
		{Det(3), 3, 0},
		{U(2, 6), 4, 16.0 / 12},              // Var U[a,b] = (b-a)²/12
		{Exp(5), 5, 25},                      // Var Exp = mean²
		{Bimodal(0.5, 0, 1, 9, 11), 5.25, 0}, // variance checked below
	}
	for i, c := range cases {
		xs := sample(c.d, n, uint64(i)+1)
		mean, variance := moments(xs)
		tol := 0.02 * math.Max(c.wantMean, 1)
		if math.Abs(mean-c.wantMean) > tol {
			t.Errorf("%v: sampled mean %g, want %g ± %g", c.d, mean, c.wantMean, tol)
		}
		if c.wantVar > 0 && math.Abs(variance-c.wantVar) > 0.05*c.wantVar {
			t.Errorf("%v: sampled variance %g, want %g", c.d, variance, c.wantVar)
		}
	}
	// Mixture variance: E[X²] − mean² with disjoint uniform supports.
	// E[X²] = 0.5·(1/3) + 0.5·(E[U(9,11)²]) ; E[U(9,11)²] = Var + mean² = 1/3 + 100.
	xs := sample(Bimodal(0.5, 0, 1, 9, 11), n, 99)
	_, variance := moments(xs)
	wantVar := 0.5*(1.0/3) + 0.5*(1.0/3+100) - 5.25*5.25
	if math.Abs(variance-wantVar) > 0.02*wantVar {
		t.Errorf("bimodal variance %g, want %g", variance, wantVar)
	}
}

func TestSampledQuantilesMatchAnalytic(t *testing.T) {
	const n = 200000
	// Exp quantile: F⁻¹(q) = −mean·ln(1−q); U quantile: lo + q·(hi−lo).
	exp5 := sample(Exp(5), n, 1)
	for _, q := range []float64{0.25, 0.5, 0.9} {
		want := -5 * math.Log(1-q)
		if got := quantile(exp5, q); math.Abs(got-want) > 0.05*want {
			t.Errorf("Exp(5) q%.2f = %g, want %g", q, got, want)
		}
	}
	u := sample(U(2, 10), n, 2)
	for _, q := range []float64{0.1, 0.5, 0.95} {
		want := 2 + q*8
		if got := quantile(u, q); math.Abs(got-want) > 0.05 {
			t.Errorf("U(2,10) q%.2f = %g, want %g", q, got, want)
		}
	}
	det := sample(Det(4), 1000, 3)
	for _, q := range []float64{0, 0.5, 1} {
		if got := quantile(det, q); got != 4 {
			t.Errorf("Det(4) q%.2f = %g", q, got)
		}
	}
}

func TestSupports(t *testing.T) {
	for _, x := range sample(U(2, 4), 10000, 4) {
		if x < 2 || x >= 4 {
			t.Fatalf("U(2,4) produced %g", x)
		}
	}
	for _, x := range sample(Exp(3), 10000, 5) {
		if x < 0 {
			t.Fatalf("Exp(3) produced %g", x)
		}
	}
	// Disjoint-support mixture: component selection frequency matches P.
	mix := Bimodal(0.3, 0, 1, 10, 11)
	low := 0
	xs := sample(mix, 100000, 6)
	for _, x := range xs {
		if x < 5 {
			low++
		}
	}
	if frac := float64(low) / float64(len(xs)); math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("mixture picked the 0.3-component %.3f of the time", frac)
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture(Component{P: 0.7, D: Det(1)}); err == nil {
		t.Error("probabilities summing to 0.7 accepted")
	}
	if _, err := NewMixture(Component{P: -0.1, D: Det(1)}, Component{P: 1.1, D: Det(2)}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewMixture(Component{P: 1, D: nil}); err == nil {
		t.Error("nil component accepted")
	}
	if _, err := NewMixture(Component{P: 0.5, D: Det(1)}, Component{P: 0.5, D: Det(2)}); err != nil {
		t.Errorf("valid mixture rejected: %v", err)
	}
}

func TestConstructorPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("U(4,2)", func() { U(4, 2) })
	expectPanic("Exp(-1)", func() { Exp(-1) })
	expectPanic("MustMixture(bad)", func() { MustMixture(Component{P: 0.2, D: Det(1)}) })
}

func TestDetConsumesNoRandomness(t *testing.T) {
	r := rng.New(1)
	before := r.Uint64()
	r = rng.New(1)
	Det(5).Sample(r)
	if after := r.Uint64(); after != before {
		t.Fatal("Det.Sample advanced the stream")
	}
}
