package netsim

import (
	"math"
	"sort"
	"testing"

	"ctsan/internal/dist"
	"ctsan/internal/neko"
	"ctsan/internal/rng"
)

// pingStack builds a minimal stack that records deliveries.
func pingStack(ctx neko.Context, got *[]neko.Message) *neko.Stack {
	s := neko.NewStack(ctx)
	s.Tap(func(m *neko.Message) { *got = append(*got, *m) })
	s.Handle("ping", func(neko.Message) {})
	return s
}

// newTestCluster builds a 3-host cluster with stacks that record inbound
// messages per process.
func newTestCluster(t *testing.T, params Params) (*Cluster, []*[]neko.Message) {
	t.Helper()
	if params.N == 0 {
		params.N = 3
	}
	c, err := New(params, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	inboxes := make([]*[]neko.Message, params.N+1)
	for i := 1; i <= params.N; i++ {
		var inbox []neko.Message
		inboxes[i] = &inbox
		c.Attach(neko.ProcessID(i), pingStack(c.Context(neko.ProcessID(i)), inboxes[i]))
	}
	return c, inboxes
}

func TestValidation(t *testing.T) {
	if _, err := New(Params{N: 0}, rng.New(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(Params{N: 3, Crashed: []neko.ProcessID{7}}, rng.New(1)); err == nil {
		t.Error("out-of-range crash accepted")
	}
}

func TestEndToEndDelayMatchesDecomposition(t *testing.T) {
	// Deterministic parameters: e2e must equal tsend + twire + treceive.
	params := Params{
		N:          2,
		TSend:      dist.Det(0.025),
		TReceive:   dist.Det(0.025),
		TWire:      dist.Det(0.09),
		TailProb:   0,
		Tail:       dist.Det(0),
		GridProb:   0,
		KernelLate: dist.Det(0),
		ClockSkew:  dist.Det(0),
	}
	c, _ := newTestCluster(t, params)
	var deliveredAt float64
	c.Trace(func(m neko.Message, at float64) { deliveredAt = at })
	c.Start()
	ctx := c.Context(1)
	c.StartAt(1, 1.0, func() {
		ctx.Send(neko.Message{To: 2, Type: "ping"})
	})
	c.RunUntil(10)
	want := 1.0 + 0.025 + 0.09 + 0.025
	if math.Abs(deliveredAt-want) > 1e-9 {
		t.Fatalf("delivered at %v, want %v (Fig. 3 decomposition)", deliveredAt, want)
	}
}

func TestHubSerializes(t *testing.T) {
	// Two messages sent simultaneously from different hosts must occupy
	// the medium one after the other.
	params := Params{
		N:          3,
		TSend:      dist.Det(0.01),
		TReceive:   dist.Det(0.01),
		TWire:      dist.Det(0.1),
		TailProb:   0,
		Tail:       dist.Det(0),
		GridProb:   0,
		KernelLate: dist.Det(0),
		ClockSkew:  dist.Det(0),
	}
	c, _ := newTestCluster(t, params)
	var times []float64
	c.Trace(func(m neko.Message, at float64) { times = append(times, at) })
	c.Start()
	for _, src := range []neko.ProcessID{1, 2} {
		src := src
		ctx := c.Context(src)
		c.StartAt(src, 0, func() { ctx.Send(neko.Message{To: 3, Type: "ping"}) })
	}
	c.RunUntil(10)
	if len(times) != 2 {
		t.Fatalf("deliveries: %d", len(times))
	}
	sort.Float64s(times)
	if gap := times[1] - times[0]; math.Abs(gap-0.1) > 1e-9 {
		t.Fatalf("delivery gap %v, want one wire time (0.1): shared medium must serialize", gap)
	}
}

func TestSenderCPUSerializes(t *testing.T) {
	params := Params{
		N:          3,
		TSend:      dist.Det(0.05),
		TReceive:   dist.Det(0.001),
		TWire:      dist.Det(0.001),
		GridProb:   0,
		KernelLate: dist.Det(0),
		ClockSkew:  dist.Det(0),
		Tail:       dist.Det(0),
	}
	c, _ := newTestCluster(t, params)
	type rec struct {
		to neko.ProcessID
		at float64
	}
	var recs []rec
	c.Trace(func(m neko.Message, at float64) { recs = append(recs, rec{m.To, at}) })
	c.Start()
	ctx := c.Context(1)
	c.StartAt(1, 0, func() {
		neko.Broadcast(ctx, neko.Message{Type: "ping"})
	})
	c.RunUntil(10)
	if len(recs) != 2 {
		t.Fatalf("deliveries %d", len(recs))
	}
	// Ascending ID order (p2 first), separated by at least t_send.
	if recs[0].to != 2 || recs[1].to != 3 {
		t.Fatalf("broadcast order: %+v", recs)
	}
	if gap := recs[1].at - recs[0].at; gap < 0.05-1e-9 {
		t.Fatalf("broadcast gap %v < t_send: sender CPU must serialize unicasts", gap)
	}
}

func TestCrashDropsDeliveryAndSkipsWire(t *testing.T) {
	params := DefaultParams(3)
	params.Crashed = []neko.ProcessID{2}
	c, inboxes := newTestCluster(t, params)
	c.Start()
	ctx := c.Context(1)
	c.StartAt(1, 0, func() {
		ctx.Send(neko.Message{To: 2, Type: "ping"})
		ctx.Send(neko.Message{To: 3, Type: "ping"})
	})
	c.RunUntil(50)
	if len(*inboxes[2]) != 0 {
		t.Fatal("crashed process received a message")
	}
	if len(*inboxes[3]) != 1 {
		t.Fatalf("live process got %d messages, want 1", len(*inboxes[3]))
	}
}

func TestCrashAtStopsTimers(t *testing.T) {
	c, _ := newTestCluster(t, Params{N: 2})
	fired := 0
	ctx := c.Context(1)
	c.Start()
	c.StartAt(1, 0, func() {
		ctx.SetTimer(5, func() { fired++ })
		ctx.SetTimer(50, func() { fired++ })
	})
	c.CrashAt(1, 20)
	c.RunUntil(200)
	if fired != 1 {
		t.Fatalf("timer fires after crash: fired=%d, want 1", fired)
	}
}

func TestTimerStop(t *testing.T) {
	c, _ := newTestCluster(t, Params{N: 2})
	fired := false
	ctx := c.Context(1)
	c.Start()
	c.StartAt(1, 0, func() {
		h := ctx.SetTimer(5, func() { fired = true })
		ctx.SetTimer(1, func() { h.Stop() })
	})
	c.RunUntil(100)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestClockSkewWithinBounds(t *testing.T) {
	params := DefaultParams(5)
	c, err := New(params, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		off := c.Context(neko.ProcessID(i)).Now() - c.Now()
		if math.Abs(off) > 0.05 {
			t.Fatalf("p%d clock offset %v exceeds ±50 µs (§4)", i, off)
		}
	}
}

func TestStartAtAlignsLocalClocks(t *testing.T) {
	c, _ := newTestCluster(t, Params{N: 3})
	c.Start()
	var locals []float64
	for i := 1; i <= 3; i++ {
		ctx := c.Context(neko.ProcessID(i))
		c.StartAt(neko.ProcessID(i), 5.0, func() { locals = append(locals, ctx.Now()) })
	}
	c.RunUntil(50)
	if len(locals) != 3 {
		t.Fatalf("started %d processes", len(locals))
	}
	for _, l := range locals {
		if math.Abs(l-5.0) > 1e-9 {
			t.Fatalf("local start time %v, want 5.0 on the local clock", l)
		}
	}
}

func TestSendToSelfPanics(t *testing.T) {
	c, _ := newTestCluster(t, Params{N: 2})
	ctx := c.Context(1)
	defer func() {
		if recover() == nil {
			t.Fatal("send to self did not panic")
		}
	}()
	ctx.Send(neko.Message{To: 1, Type: "ping"})
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		params := DefaultParams(3)
		c, err := New(params, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		var times []float64
		for i := 1; i <= 3; i++ {
			var sink []neko.Message
			c.Attach(neko.ProcessID(i), pingStack(c.Context(neko.ProcessID(i)), &sink))
		}
		c.Trace(func(m neko.Message, at float64) { times = append(times, at) })
		c.Start()
		ctx := c.Context(1)
		c.StartAt(1, 0, func() {
			for k := 0; k < 20; k++ {
				neko.Broadcast(ctx, neko.Message{Type: "ping"})
			}
		})
		c.RunUntil(100)
		return times
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic delivery time at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFailedSendCostsSenderCPU(t *testing.T) {
	params := Params{
		N:          3,
		TSend:      dist.Det(0.01),
		TReceive:   dist.Det(0.01),
		TWire:      dist.Det(0.01),
		FailedSend: dist.Det(0.5),
		Crashed:    []neko.ProcessID{2},
		GridProb:   0,
		KernelLate: dist.Det(0),
		ClockSkew:  dist.Det(0),
		Tail:       dist.Det(0),
	}
	c, _ := newTestCluster(t, params)
	var deliveredAt float64
	c.Trace(func(m neko.Message, at float64) { deliveredAt = at })
	c.Start()
	ctx := c.Context(1)
	c.StartAt(1, 0, func() {
		ctx.Send(neko.Message{To: 2, Type: "ping"}) // fails fast, costs 0.5 CPU
		ctx.Send(neko.Message{To: 3, Type: "ping"})
	})
	c.RunUntil(10)
	// p3's message waits for the failed-send CPU slot: 0.5 + 0.01 + 0.01 + 0.01.
	if want := 0.53; math.Abs(deliveredAt-want) > 1e-9 {
		t.Fatalf("delivery at %v, want %v (failed send must delay later sends, §5.3)", deliveredAt, want)
	}
}

func TestPausesDeferTimers(t *testing.T) {
	params := Params{
		N:            2,
		PauseEvery:   dist.Det(1),  // first pause at t=1
		PauseDur:     dist.Det(10), // freeze until t=11
		GridProb:     0,
		KernelLate:   dist.Det(0),
		ThreadJitter: dist.Det(0),
		ClockSkew:    dist.Det(0),
		Tail:         dist.Det(0),
	}
	c, _ := newTestCluster(t, params)
	var firedAt float64
	ctx := c.Context(1)
	c.Start()
	c.StartAt(1, 0, func() {
		ctx.SetTimer(2, func() { firedAt = c.Now() })
	})
	c.RunUntil(100)
	if firedAt < 11 {
		t.Fatalf("timer fired at %v during a host pause [1,11]", firedAt)
	}
}

func TestAttachTwicePanics(t *testing.T) {
	c, _ := newTestCluster(t, Params{N: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("double attach did not panic")
		}
	}()
	var sink []neko.Message
	c.Attach(1, pingStack(c.Context(1), &sink))
}
