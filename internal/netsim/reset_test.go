package netsim

import (
	"testing"

	"ctsan/internal/dist"
	"ctsan/internal/neko"
	"ctsan/internal/rng"
)

// pingPongStack builds a stack on process id that echoes a "pong" back
// for every inbound "ping", generating cross-host traffic through CPU,
// hub and timers.
func pingPongStack(c *Cluster, id neko.ProcessID) *neko.Stack {
	s := neko.NewStack(c.Context(id))
	ctx := c.Context(id)
	s.Handle("ping", func(m neko.Message) {
		ctx.Send(neko.Message{To: m.From, Type: "pong"})
	})
	s.Handle("pong", func(neko.Message) {})
	return s
}

// exerciseCluster drives one deterministic workload against c — sends,
// broadcasts, timers that are stopped and timers that fire, background
// pauses — and returns the full delivery trace. Every Reset-restorable
// feature is on the path.
func exerciseCluster(c *Cluster) []float64 {
	var trace []float64
	c.Trace(func(_ neko.Message, at float64) { trace = append(trace, at) })
	for id := neko.ProcessID(1); int(id) <= c.Params().N; id++ {
		c.Attach(id, pingPongStack(c, id))
	}
	c.Start()
	ctx1 := c.Context(1)
	c.StartAt(1, 0, func() {
		for k := 0; k < 5; k++ {
			neko.Broadcast(ctx1, neko.Message{Type: "ping"})
		}
		// A timer that fires, re-arming once, and a timer that is stopped:
		// both sides of the pooled record life cycle.
		var rearmed bool
		var tick func()
		tick = func() {
			neko.Broadcast(ctx1, neko.Message{Type: "ping"})
			if !rearmed {
				rearmed = true
				ctx1.SetTimer(7, tick)
			}
		}
		ctx1.SetTimer(5, tick)
		ctx1.SetTimer(1e6, func() { panic("stopped timer fired") }).Stop()
	})
	c.RunUntil(200)
	return trace
}

// resetParams enables every stochastic feature Reset must redraw:
// background pauses, receive tails, and clock skew (always on).
func resetParams(n int) Params {
	p := Params{N: n}
	p.PauseEvery = dist.Exp(40)
	p.TailProb = 0.1
	p.Tail = dist.U(0.5, 2)
	return p
}

// TestClusterResetMatchesFresh is the reset ≡ fresh differential (the
// san/reset_test.go treatment): a reused, Reset cluster must replay the
// exact delivery trace a freshly constructed cluster produces from the
// same stream — same instants, same event counts.
func TestClusterResetMatchesFresh(t *testing.T) {
	reused, err := New(resetParams(3), rng.New(999))
	if err != nil {
		t.Fatal(err)
	}
	for id := neko.ProcessID(1); id <= 3; id++ {
		reused.Attach(id, pingPongStack(reused, id))
	}
	for seed := uint64(1); seed <= 30; seed++ {
		fresh, err := New(resetParams(3), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		want := exerciseCluster(fresh)
		if len(want) == 0 {
			t.Fatal("workload delivered nothing — strengthen the exercise")
		}

		reused.Reset(rng.New(seed))
		var got []float64
		reused.Trace(func(_ neko.Message, at float64) { got = append(got, at) })
		reused.Start()
		ctx1 := reused.Context(1)
		reused.StartAt(1, 0, func() {
			for k := 0; k < 5; k++ {
				neko.Broadcast(ctx1, neko.Message{Type: "ping"})
			}
			var rearmed bool
			var tick func()
			tick = func() {
				neko.Broadcast(ctx1, neko.Message{Type: "ping"})
				if !rearmed {
					rearmed = true
					ctx1.SetTimer(7, tick)
				}
			}
			ctx1.SetTimer(5, tick)
			ctx1.SetTimer(1e6, func() { panic("stopped timer fired") }).Stop()
		})
		reused.RunUntil(200)

		if len(got) != len(want) {
			t.Fatalf("seed %d: reset trace has %d deliveries, fresh %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: delivery %d at %v on reset cluster, %v fresh (bit-exact)", seed, i, got[i], want[i])
			}
		}
		if reused.Steps() != fresh.Steps() || reused.Delivered() != fresh.Delivered() {
			t.Fatalf("seed %d: steps/delivered %d/%d on reset cluster, %d/%d fresh",
				seed, reused.Steps(), reused.Delivered(), fresh.Steps(), fresh.Delivered())
		}
	}
}

// TestClusterResetRestoresInjectionState: injections of a previous
// replica — crashes, partitions, link rules, phase observers — must not
// leak through Reset.
func TestClusterResetRestoresInjectionState(t *testing.T) {
	c, err := New(Params{N: 3}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for id := neko.ProcessID(1); id <= 3; id++ {
		c.Attach(id, pingPongStack(c, id))
	}
	c.OnPhase(func(string, float64) { t.Fatal("phase observer leaked through Reset") })
	c.CrashAt(2, 10)
	if err := c.PartitionAt(20, []neko.ProcessID{1}, []neko.ProcessID{2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLinkAt(0, 1, 3, dist.Det(50), 1.0); err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.RunUntil(50)
	if !c.Down(2) {
		t.Fatal("crash injection did not land")
	}

	c.Reset(rng.New(2))
	if c.Down(2) {
		t.Fatal("crash state leaked through Reset")
	}
	ctx := c.Context(1)
	c.PhaseAt(5, "leak-check") // fires; the old observer must be gone
	c.StartAt(1, 0, func() {
		ctx.Send(neko.Message{To: 2, Type: "ping"}) // crosses the old partition boundary
		ctx.Send(neko.Message{To: 3, Type: "ping"}) // crosses the old degraded link
	})
	before := c.Delivered()
	c.RunUntil(100)
	// Both pings and both pongs must arrive: no partition, loss or crash
	// in force.
	if n := c.Delivered() - before; n != 4 {
		t.Fatalf("delivered %d messages after Reset, want 4 (injection state leaked)", n)
	}
}

// TestTimerSteadyStateAllocs pins the pooled timer path, mirroring
// des.TestScheduleSteadyStateAllocs: once the pools are warm, an
// arm→stop cycle and an arm→fire cycle both perform zero heap
// allocations (the detector's per-message re-arm is the hot path).
func TestTimerSteadyStateAllocs(t *testing.T) {
	c, err := New(Params{N: 2}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	h := c.Context(1)
	fn := func() {}
	// Warm the pools.
	for i := 0; i < 64; i++ {
		h.SetTimer(1, fn).Stop()
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		h.SetTimer(1, fn).Stop()
	}); allocs > 0 {
		t.Fatalf("steady-state arm+stop allocates %.1f objects/op, want 0", allocs)
	}
	// Fire path, the way the protocols drive it (fd.Heartbeat's emit and
	// armTimer): the fired handle is stopped — recycling its record —
	// before the next arm. A fired record is only reclaimed through Stop
	// (or Cluster.Reset), because the executor cannot know whether the
	// holder still has the handle.
	var last neko.TimerHandle
	for i := 0; i < 8; i++ { // warm the fire-call pool
		if last != nil {
			last.Stop()
		}
		last = h.SetTimer(0, fn)
		c.Run(nil)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		last.Stop()
		last = h.SetTimer(0, fn)
		c.Run(nil)
	}); allocs > 0 {
		t.Fatalf("steady-state stop+arm+fire allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSendSteadyStateAllocs pins the pooled delivery path: a payload-free
// message through sender CPU → hub → receiver CPU → dispatch allocates
// nothing once the pools are warm.
func TestSendSteadyStateAllocs(t *testing.T) {
	c, err := New(Params{N: 2}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	stack := neko.NewStack(c.Context(2))
	stack.Handle("m", func(neko.Message) { got++ })
	c.Attach(2, stack)
	c.Start()
	ctx := c.Context(1)
	for i := 0; i < 64; i++ { // warm the pools
		ctx.Send(neko.Message{To: 2, Type: "m"})
		c.Run(nil)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		ctx.Send(neko.Message{To: 2, Type: "m"})
		c.Run(nil)
	}); allocs > 0 {
		t.Fatalf("steady-state send+deliver allocates %.1f objects/op, want 0", allocs)
	}
	if got == 0 {
		t.Fatal("messages were not delivered")
	}
}

// TestPayloadSteadyStateAllocs pins the de-boxed payload round-trip: a
// message carrying a full protocol payload (flat union, no `any` box)
// through send → hub → kind-indexed dispatch allocates nothing once the
// pools are warm. This is the contract that lets the consensus and
// heartbeat engines push typed bodies on every wire message for free.
func TestPayloadSteadyStateAllocs(t *testing.T) {
	c, err := New(Params{N: 2}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	stack := neko.NewStack(c.Context(2))
	stack.HandleKind(neko.PayloadEstimate, "est", func(m *neko.Message) {
		got += m.Payload.Seq + uint64(m.Payload.Round) + uint64(m.Payload.Val)
	})
	c.Attach(2, stack)
	c.Start()
	ctx := c.Context(1)
	send := func(i uint64) {
		ctx.Send(neko.Message{To: 2, Type: "est", Payload: neko.Payload{
			Kind: neko.PayloadEstimate, Cid: i, Seq: i, Round: 3, Val: int64(i), TS: 1,
		}})
		c.Run(nil)
	}
	for i := uint64(0); i < 64; i++ { // warm the pools
		send(i)
	}
	i := uint64(64)
	if allocs := testing.AllocsPerRun(1000, func() {
		send(i)
		i++
	}); allocs > 0 {
		t.Fatalf("steady-state payload round-trip allocates %.1f objects/op, want 0", allocs)
	}
	if got == 0 {
		t.Fatal("payloads were not delivered")
	}
}

// TestTimerStaleStopAfterReset: the Reset contract says outstanding
// handles die wholesale; a defensive Stop on one must at least not
// disturb the reused cluster (it is a documented misuse, but the
// defensive path keeps it a no-op rather than corruption).
func TestTimerStaleStopAfterReset(t *testing.T) {
	c, err := New(Params{N: 2}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	h := c.Context(1)
	stale := h.SetTimer(100, func() { t.Fatal("pre-reset timer fired") })
	c.Reset(rng.New(6))
	stale.Stop() // must be a no-op: the record was reclaimed by Reset
	fired := false
	h2 := c.Context(1)
	h2.SetTimer(1, func() { fired = true })
	c.Run(nil)
	if !fired {
		t.Fatal("stale Stop cancelled a post-Reset timer")
	}
}

// clusterWorkload runs the benchmark replica body: a burst of broadcasts
// plus timer churn on an attached 3-host cluster.
func clusterWorkload(c *Cluster) {
	ctx := c.Context(1)
	c.StartAt(1, 0, func() {
		for k := 0; k < 5; k++ {
			neko.Broadcast(ctx, neko.Message{Type: "ping"})
		}
	})
	c.RunUntil(50)
}

// BenchmarkClusterReset is the replica body with cluster reuse: rewind
// and rerun one assembly per replica.
func BenchmarkClusterReset(b *testing.B) {
	c, err := New(Params{N: 3}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	for id := neko.ProcessID(1); id <= 3; id++ {
		c.Attach(id, pingPongStack(c, id))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset(rng.New(uint64(i) + 1))
		c.Start()
		clusterWorkload(c)
	}
}

// BenchmarkClusterNewPerReplica is the pre-Reset baseline: construct a
// fresh cluster and stacks per replica.
func BenchmarkClusterNewPerReplica(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := New(Params{N: 3}, rng.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		for id := neko.ProcessID(1); id <= 3; id++ {
			c.Attach(id, pingPongStack(c, id))
		}
		c.Start()
		clusterWorkload(c)
	}
}
