package netsim

import (
	"fmt"

	"ctsan/internal/dist"
	"ctsan/internal/neko"
	"ctsan/internal/trace"
)

// This file is the cluster's fault- and workload-injection surface: timed
// state changes scheduled as DES events against the emulated hardware.
// internal/scenario compiles declarative scenario timelines onto it; tests
// and experiment harnesses may also call it directly. All injection
// methods may be invoked before Run or from within event callbacks;
// instants in the past are clamped to the current simulated time.
//
// None of these facilities consume randomness unless actually exercised
// (link loss and added latency draw from a dedicated child stream), so a
// run without injections is bit-identical to one on a build without them.

// linkKey identifies a directed link p→q.
type linkKey struct {
	from, to neko.ProcessID
}

// linkRule degrades one directed link: each frame leaving the hub for
// this link is dropped with probability Loss, and surviving frames are
// delayed by an ExtraDelay sample before entering the receive path.
type linkRule struct {
	Loss       float64
	ExtraDelay dist.Dist
}

// injectKind discriminates what a pooled injectCall does when it fires.
type injectKind uint8

const (
	injCrash injectKind = iota
	injRecover
	injPartition
	injHeal
	injLinkSet
	injLinkClear
	injPhase
)

// injectCall is a pooled injection event: scenario timelines recompile
// onto a reused cluster every replica, so the per-injection closures this
// replaces were a per-replica allocation source. One record type covers
// all injection kinds; the fields a kind does not use stay zero.
type injectCall struct {
	c        *Cluster
	kind     injectKind
	h        *host
	from, to neko.ProcessID
	extra    dist.Dist
	loss     float64
	assign   []int
	groups   int64
	name     string
	runFn    func()
}

func (c *Cluster) makeInjectCall() *injectCall {
	ic := &injectCall{c: c}
	ic.runFn = ic.run
	return ic
}

// inject takes a blank record from the pool, ready for the caller to fill.
func (c *Cluster) inject(kind injectKind) *injectCall {
	ic := c.injects.get()
	ic.kind = kind
	return ic
}

func (ic *injectCall) run() {
	c := ic.c
	kind, h := ic.kind, ic.h
	from, to := ic.from, ic.to
	extra, loss := ic.extra, ic.loss
	assign, groups := ic.assign, ic.groups
	name := ic.name
	// Release before executing, dropping references so the pool pins
	// nothing (the partition assignment's ownership moves to c.group).
	ic.h = nil
	ic.extra = nil
	ic.assign = nil
	ic.name = ""
	c.injects.put(ic)
	switch kind {
	case injCrash:
		if !h.down {
			h.down = true
			h.epoch++
			if c.tracer != nil {
				c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(h.id), Kind: trace.KindCrash})
			}
		}
	case injRecover:
		if !h.down {
			return
		}
		h.down = false
		if c.tracer != nil {
			c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(h.id), Kind: trace.KindRecover})
		}
		if h.stack != nil {
			h.stack.Start()
		}
	case injPartition:
		c.group = assign
		if c.tracer != nil {
			c.tracer.Emit(trace.Event{T: c.sim.Now(), Kind: trace.KindPartition, A: groups})
		}
	case injHeal:
		c.group = nil
		if c.tracer != nil {
			c.tracer.Emit(trace.Event{T: c.sim.Now(), Kind: trace.KindHeal})
		}
	case injLinkSet:
		if c.links == nil {
			c.links = make(map[linkKey]linkRule)
		}
		c.links[linkKey{from, to}] = linkRule{Loss: loss, ExtraDelay: extra}
		if c.tracer != nil {
			c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(from), Q: int32(to), Kind: trace.KindLinkSet, X: loss})
		}
	case injLinkClear:
		delete(c.links, linkKey{from, to})
		if c.tracer != nil {
			c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(from), Q: int32(to), Kind: trace.KindLinkClear})
		}
	case injPhase:
		if c.tracer != nil {
			c.tracer.Emit(trace.Event{T: c.sim.Now(), Kind: trace.KindPhase, S: name})
		}
		for _, fn := range c.phaseFns {
			fn(name, c.sim.Now())
		}
	}
}

// RecoverAt schedules the recovery of a crashed process at global time t:
// the process resumes receiving messages, and its protocol stack is
// restarted (heartbeat emission resumes, timers re-arm). Timers armed
// before the crash stay dead — a crash wipes volatile state. Recovering a
// process that is not down at t is a no-op.
func (c *Cluster) RecoverAt(id neko.ProcessID, t float64) {
	ic := c.inject(injRecover)
	ic.h = c.hostFor(id)
	c.at(t, ic.runFn)
}

// PartitionAt schedules a network partition at global time t: from then
// on the hub drops every frame whose sender and receiver are in different
// groups. Processes not listed in any group form one additional implicit
// group of their own (isolated from all listed groups, connected to each
// other). A later PartitionAt replaces the previous partition; HealAt
// removes it.
func (c *Cluster) PartitionAt(t float64, groups ...[]neko.ProcessID) error {
	n := c.params.N
	assign := make([]int, n+1)
	for i := range assign {
		assign[i] = 0 // implicit group of unlisted processes
	}
	for gi, g := range groups {
		for _, id := range g {
			if id < 1 || int(id) > n {
				return fmt.Errorf("netsim: partition group %d: process %d out of range 1..%d", gi, id, n)
			}
			if assign[id] != 0 {
				return fmt.Errorf("netsim: process %d listed in two partition groups", id)
			}
			assign[id] = gi + 1
		}
	}
	ic := c.inject(injPartition)
	ic.assign, ic.groups = assign, int64(len(groups))
	c.at(t, ic.runFn)
	return nil
}

// HealAt schedules the removal of the current partition at global time t:
// all links work again from then on. Frames already dropped stay lost —
// the transports the paper measures (TCP over a hub) do not retransmit
// across a partition at this abstraction level; protocol-level recovery
// (heartbeats, retried rounds) is what the scenarios observe.
func (c *Cluster) HealAt(t float64) {
	c.at(t, c.inject(injHeal).runFn)
}

// partitioned reports whether the current partition separates from → to.
func (c *Cluster) partitioned(from, to neko.ProcessID) bool {
	return c.group != nil && c.group[from] != c.group[to]
}

// SetLinkAt schedules a degradation rule for the directed link from → to
// starting at global time t: frames are dropped with probability loss,
// and survivors are delayed by an extra sample (nil means no added
// latency). The rule replaces any previous rule on that link and stays in
// force until ClearLinkAt.
func (c *Cluster) SetLinkAt(t float64, from, to neko.ProcessID, extra dist.Dist, loss float64) error {
	if from < 1 || int(from) > c.params.N || to < 1 || int(to) > c.params.N {
		return fmt.Errorf("netsim: link %d→%d out of range 1..%d", from, to, c.params.N)
	}
	if loss < 0 || loss > 1 {
		return fmt.Errorf("netsim: link loss probability %g outside [0,1]", loss)
	}
	ic := c.inject(injLinkSet)
	ic.from, ic.to, ic.extra, ic.loss = from, to, extra, loss
	c.at(t, ic.runFn)
	return nil
}

// ClearLinkAt schedules the removal of the degradation rule on the
// directed link from → to at global time t.
func (c *Cluster) ClearLinkAt(t float64, from, to neko.ProcessID) {
	ic := c.inject(injLinkClear)
	ic.from, ic.to = from, to
	c.at(t, ic.runFn)
}

// pauseCall is a pooled PauseAt event: scenario pause storms schedule
// thousands of them, so they get the transit/timer record treatment.
type pauseCall struct {
	h     *host
	dur   float64
	runFn func()
}

func (c *Cluster) makePauseCall() *pauseCall {
	p := &pauseCall{}
	p.runFn = func() {
		if c.tracer != nil {
			c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(p.h.id), Kind: trace.KindPause, X: p.dur})
		}
		p.h.reserveCPU(p.dur, nil)
		c.pauses.put(p)
	}
	return p
}

// PauseAt schedules a whole-host execution pause of dur milliseconds on
// process id's host starting at global time t: the CPU is occupied, so
// timers, sends and receive processing are deferred until the pause ends
// (plus any work already queued). Scenario pause storms are sequences of
// PauseAt injections.
func (c *Cluster) PauseAt(id neko.ProcessID, t, dur float64) {
	p := c.pauses.get()
	p.h, p.dur = c.hostFor(id), dur
	c.at(t, p.runFn)
}

// PhaseAt schedules a named phase transition at global time t. Phases
// carry no cluster-level semantics of their own: observers registered
// with OnPhase react (the scenario campaign switches workload intensity
// on them).
func (c *Cluster) PhaseAt(t float64, name string) {
	ic := c.inject(injPhase)
	ic.name = name
	c.at(t, ic.runFn)
}

// OnPhase registers an observer for PhaseAt transitions.
func (c *Cluster) OnPhase(fn func(name string, at float64)) {
	c.phaseFns = append(c.phaseFns, fn)
}

// Down reports whether process id is currently crashed.
func (c *Cluster) Down(id neko.ProcessID) bool { return c.hostFor(id).down }
