package netsim

import (
	"math"
	"testing"

	"ctsan/internal/dist"
	"ctsan/internal/neko"
	"ctsan/internal/rng"
)

// detParams returns fully deterministic parameters so injection tests can
// assert exact delivery instants.
func detParams(n int) Params {
	return Params{
		N:            n,
		TSend:        dist.Det(0.01),
		TReceive:     dist.Det(0.01),
		TWire:        dist.Det(0.01),
		Tail:         dist.Det(0),
		GridProb:     0,
		KernelLate:   dist.Det(0),
		ThreadJitter: dist.Det(0),
		ClockSkew:    dist.Det(0),
		FailedSend:   dist.Det(0.01),
	}
}

func TestCrashRecoverRoundTrip(t *testing.T) {
	c, inboxes := newTestCluster(t, detParams(2))
	c.CrashAt(2, 10)
	c.RecoverAt(2, 20)
	c.Start()
	ctx := c.Context(1)
	send := func(at float64) {
		c.AtGlobal(at, func() { ctx.Send(neko.Message{To: 2, Type: "ping"}) })
	}
	send(5)  // before the crash: delivered
	send(15) // while down: fails fast at the sender
	send(25) // after recovery: delivered again
	c.RunUntil(100)
	if got := len(*inboxes[2]); got != 2 {
		t.Fatalf("deliveries to p2 across crash/recover = %d, want 2", got)
	}
	if c.Down(2) {
		t.Fatal("p2 still reported down after RecoverAt")
	}
}

func TestRecoverRestartsStack(t *testing.T) {
	c, err := New(detParams(2), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	starts := 0
	s := neko.NewStack(c.Context(2))
	s.AddLayer(startCounter{&starts})
	c.Attach(2, s)
	var sink []neko.Message
	c.Attach(1, pingStack(c.Context(1), &sink))
	c.CrashAt(2, 10)
	c.RecoverAt(2, 20)
	c.Start()
	c.RunUntil(100)
	if starts != 2 {
		t.Fatalf("stack started %d times, want 2 (boot + recovery)", starts)
	}
}

type startCounter struct{ n *int }

func (s startCounter) Start() { *s.n++ }

func TestCrashWipesPendingTimers(t *testing.T) {
	c, _ := newTestCluster(t, detParams(2))
	fired := 0
	ctx := c.Context(1)
	c.Start()
	c.StartAt(1, 0, func() {
		ctx.SetTimer(50, func() { fired++ }) // armed pre-crash, due post-recovery
	})
	c.CrashAt(1, 10)
	c.RecoverAt(1, 20)
	c.RunUntil(200)
	if fired != 0 {
		t.Fatalf("pre-crash timer fired %d times after recovery, want 0", fired)
	}
}

func TestTimersArmedAfterRecoveryFire(t *testing.T) {
	c, _ := newTestCluster(t, detParams(2))
	fired := 0
	ctx := c.Context(1)
	c.CrashAt(1, 10)
	c.RecoverAt(1, 20)
	c.Start()
	c.AtGlobal(30, func() { ctx.SetTimer(5, func() { fired++ }) })
	c.RunUntil(200)
	if fired != 1 {
		t.Fatalf("post-recovery timer fired %d times, want 1", fired)
	}
}

func TestPartitionDropsAcrossGroupsOnly(t *testing.T) {
	c, inboxes := newTestCluster(t, detParams(4))
	if err := c.PartitionAt(10, []neko.ProcessID{1, 2}, []neko.ProcessID{3, 4}); err != nil {
		t.Fatal(err)
	}
	c.Start()
	ctx := c.Context(1)
	c.AtGlobal(20, func() {
		ctx.Send(neko.Message{To: 2, Type: "ping"}) // same group: delivered
		ctx.Send(neko.Message{To: 3, Type: "ping"}) // across: dropped at hub
	})
	c.RunUntil(100)
	if got := len(*inboxes[2]); got != 1 {
		t.Fatalf("same-group deliveries = %d, want 1", got)
	}
	if got := len(*inboxes[3]); got != 0 {
		t.Fatalf("cross-partition deliveries = %d, want 0", got)
	}
}

func TestPartitionImplicitGroupAndHeal(t *testing.T) {
	// p3 is unlisted: it joins the implicit group, isolated from both
	// listed groups. After HealAt everything flows again.
	c, inboxes := newTestCluster(t, detParams(3))
	if err := c.PartitionAt(10, []neko.ProcessID{1}, []neko.ProcessID{2}); err != nil {
		t.Fatal(err)
	}
	c.HealAt(30)
	c.Start()
	ctx := c.Context(1)
	send := func(at float64, to neko.ProcessID) {
		c.AtGlobal(at, func() { ctx.Send(neko.Message{To: to, Type: "ping"}) })
	}
	send(20, 2) // partitioned
	send(20, 3) // implicit group is isolated from group 1 too
	send(40, 2) // healed
	send(40, 3) // healed
	c.RunUntil(100)
	if got := len(*inboxes[2]); got != 1 {
		t.Fatalf("p2 deliveries = %d, want 1 (only post-heal)", got)
	}
	if got := len(*inboxes[3]); got != 1 {
		t.Fatalf("p3 deliveries = %d, want 1 (only post-heal)", got)
	}
}

func TestPartitionValidation(t *testing.T) {
	c, _ := newTestCluster(t, detParams(3))
	if err := c.PartitionAt(0, []neko.ProcessID{7}); err == nil {
		t.Error("out-of-range partition member accepted")
	}
	if err := c.PartitionAt(0, []neko.ProcessID{1}, []neko.ProcessID{1}); err == nil {
		t.Error("process in two groups accepted")
	}
}

func TestLinkLossAndClear(t *testing.T) {
	c, inboxes := newTestCluster(t, detParams(2))
	// Loss 1 on p1→p2: everything dropped until the rule is cleared.
	if err := c.SetLinkAt(0, 1, 2, nil, 1.0); err != nil {
		t.Fatal(err)
	}
	c.ClearLinkAt(30, 1, 2)
	c.Start()
	ctx := c.Context(1)
	c.AtGlobal(10, func() { ctx.Send(neko.Message{To: 2, Type: "ping"}) })
	c.AtGlobal(40, func() { ctx.Send(neko.Message{To: 2, Type: "ping"}) })
	c.RunUntil(100)
	if got := len(*inboxes[2]); got != 1 {
		t.Fatalf("deliveries = %d, want 1 (lossy rule then cleared)", got)
	}
}

func TestLinkExtraDelayIsDirected(t *testing.T) {
	c, _ := newTestCluster(t, detParams(2))
	if err := c.SetLinkAt(0, 1, 2, dist.Det(5), 0); err != nil {
		t.Fatal(err)
	}
	var at12, at21 float64
	c.Trace(func(m neko.Message, at float64) {
		if m.To == 2 {
			at12 = at
		} else {
			at21 = at
		}
	})
	c.Start()
	ctx1, ctx2 := c.Context(1), c.Context(2)
	c.AtGlobal(10, func() { ctx1.Send(neko.Message{To: 2, Type: "ping"}) })
	c.AtGlobal(10, func() { ctx2.Send(neko.Message{To: 1, Type: "ping"}) })
	c.RunUntil(100)
	// Base path is 0.03 ms; the degraded direction pays +5 ms. The reverse
	// frame waits for the hub (0.01 ms occupied by the first frame).
	if want := 10.0 + 0.03 + 5; math.Abs(at12-want) > 1e-9 {
		t.Fatalf("degraded direction delivered at %v, want %v", at12, want)
	}
	if at21 >= at12 || at21 > 10.1 {
		t.Fatalf("reverse direction delivered at %v: rule must be directed", at21)
	}
}

func TestLinkValidation(t *testing.T) {
	c, _ := newTestCluster(t, detParams(2))
	if err := c.SetLinkAt(0, 1, 9, nil, 0); err == nil {
		t.Error("out-of-range link accepted")
	}
	if err := c.SetLinkAt(0, 1, 2, nil, 1.5); err == nil {
		t.Error("loss probability > 1 accepted")
	}
}

func TestPauseAtDefersTimers(t *testing.T) {
	c, _ := newTestCluster(t, detParams(2))
	c.PauseAt(1, 5, 20) // CPU busy [5, 25)
	var firedAt float64
	ctx := c.Context(1)
	c.Start()
	c.StartAt(1, 0, func() {
		ctx.SetTimer(10, func() { firedAt = c.Now() })
	})
	c.RunUntil(100)
	if firedAt < 25 {
		t.Fatalf("timer fired at %v inside the injected pause [5,25)", firedAt)
	}
}

func TestPhaseHooks(t *testing.T) {
	c, _ := newTestCluster(t, detParams(2))
	type ev struct {
		name string
		at   float64
	}
	var got []ev
	c.OnPhase(func(name string, at float64) { got = append(got, ev{name, at}) })
	c.PhaseAt(15, "burst")
	c.PhaseAt(40, "calm")
	c.Start()
	c.RunUntil(100)
	if len(got) != 2 || got[0].name != "burst" || got[0].at != 15 || got[1].name != "calm" || got[1].at != 40 {
		t.Fatalf("phase transitions = %+v", got)
	}
}

// TestInjectionFreeRunUnperturbed pins the bit-identical-baseline claim:
// a run on the extended cluster with no injections produces exactly the
// same delivery trace as before the injection surface existed (the
// deterministic-trace test doubles as the cross-build anchor; here we
// assert a cluster with hooks available but unused matches one where the
// link stream was never touched).
func TestInjectionFreeRunUnperturbed(t *testing.T) {
	run := func(inject bool) []float64 {
		c, _ := newTestCluster(t, Params{N: 3})
		if inject {
			// Rules on links never used by the traffic below must not
			// perturb the delivery times of the used links.
			if err := c.SetLinkAt(0, 2, 3, dist.Det(9), 0.5); err != nil {
				t.Fatal(err)
			}
		}
		var times []float64
		c.Trace(func(m neko.Message, at float64) { times = append(times, at) })
		c.Start()
		ctx := c.Context(1)
		c.StartAt(1, 0, func() {
			for k := 0; k < 10; k++ {
				neko.Broadcast(ctx, neko.Message{Type: "ping"})
			}
		})
		c.RunUntil(100)
		return times
	}
	a, b := run(false), run(true)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("unused link rule perturbed delivery %d: %v vs %v", i, a[i], b[i])
		}
	}
}
