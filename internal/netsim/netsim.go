// Package netsim emulates the paper's measurement environment (§2.5): a
// cluster of PCs connected by a simplex 100 Base-TX Ethernet hub, running
// Linux 2.2 and a JVM. It is a discrete-event model executing real protocol
// code (internal/neko stacks) in virtual time.
//
// The emulator reproduces, at the mechanism level, the phenomena the paper
// measures:
//
//   - per-host CPU cost for sending and receiving each message, and a
//     shared serial transmission medium (the hub) — the two contention
//     points of the paper's network model (§3.3);
//   - a receive-path latency tail (interrupt coalescing / protocol stack),
//     which produces the bi-modal end-to-end delay of Fig. 6;
//   - OS timer coarseness: Linux 2.2 has a 10 ms jiffy; sleeps overshoot
//     by U[0, granularity) and are sometimes deferred to the next absolute
//     scheduler tick. This drives the failure-detector QoS curves (Fig. 8)
//     and the latency peak near T = 10 ms (Fig. 9a, §5.4);
//   - host execution pauses (JVM garbage collection, cron, IRQ storms)
//     that freeze a host entirely, producing correlated wrong suspicions —
//     the effect the paper's independent-FD SAN model cannot capture
//     (§5.4);
//   - per-host clock offsets within the ±50 µs NTP synchronization bound
//     (§4), applied to the common start instant t_0;
//   - process crashes: messages to a crashed process still consume sender
//     CPU and hub time (the cause of the n = 3 anomaly in Table 1).
//
// All times are float64 milliseconds.
package netsim

import (
	"fmt"
	"math"

	"ctsan/internal/des"
	"ctsan/internal/dist"
	"ctsan/internal/neko"
	"ctsan/internal/rng"
	"ctsan/internal/trace"
)

// Params configures the emulated cluster. Zero-value fields take the
// calibrated defaults of DefaultParams, which reproduce the paper's
// measured end-to-end delay distribution (§5.1).
type Params struct {
	// N is the number of processes (one per host). The paper uses odd
	// 3..11 on a 12-PC cluster.
	N int

	// TSend is the CPU cost of pushing one message through the sending
	// host's protocol stack; TReceive likewise on the receiving host.
	TSend, TReceive dist.Dist
	// TWire is the hub occupancy per frame (serialization at 100 Mbit/s
	// plus preamble and inter-frame gap).
	TWire dist.Dist
	// TailProb is the probability that a message experiences extra
	// receive-path latency drawn from Tail (the second mode of Fig. 6).
	TailProb float64
	Tail     dist.Dist

	// SleepGranularity is the OS timer coarseness: a timer armed for d ms
	// fires after d + U[0, SleepGranularity) + kernel latency. Linux 2.2
	// jiffy = 10 ms.
	SleepGranularity float64
	// GridProb is the probability that a timer wake-up is additionally
	// deferred to the host's next absolute scheduler tick (10 ms grid),
	// which produces resonance effects when timeout values are close to
	// the quantum (the Fig. 9a peak at T = 10 ms).
	GridProb float64
	// ThreadJitter is thread-scheduling noise added to every wake-up.
	ThreadJitter dist.Dist
	// KernelLate is small always-present wake-up latency.
	KernelLate dist.Dist
	// WakeTailProb/WakeTail model occasional long delays of sleeping
	// threads (priority decay under load, JVM safepoints): with this
	// probability a timer wake-up is additionally delayed by a WakeTail
	// sample. Message processing is unaffected — the I/O path keeps its
	// dynamic priority — so these delays starve the heartbeat sender
	// thread and produce the correlated wrong suspicions of §5.4 without
	// disturbing class-1 latency.
	WakeTailProb float64
	WakeTail     dist.Dist

	// PauseEvery is the inter-arrival distribution of whole-host execution
	// pauses (GC-like); PauseDur their duration. Pauses freeze timers,
	// sends and receive processing, producing correlated FD mistakes.
	PauseEvery dist.Dist
	PauseDur   dist.Dist

	// ClockSkew is the distribution of per-host clock offsets relative to
	// global simulated time (may be negative). Paper: NTP within ±50 µs.
	ClockSkew dist.Dist

	// Crashed lists processes that are crashed from the very beginning
	// (class-2 runs, §2.4). A crashed process never starts and never
	// processes messages.
	Crashed []neko.ProcessID

	// CrashedConsumeWire controls the cost of sending to a crashed
	// process. The default (false) models TCP to a dead peer: the send
	// costs the sender's CPU (FailedSend — §5.3 explains the n = 3 anomaly
	// by exactly this sender-side delay: "the message m sent to p delays
	// the sending of m to q") but the frame never occupies the shared
	// medium, as the connection fails fast. Set true to charge the full
	// path (what the paper's SAN model implicitly does, since it has no
	// notion of connection state).
	CrashedConsumeWire bool
	// FailedSend is the sender CPU cost of a send that fails fast (TCP
	// reset + JVM exception path); used when CrashedConsumeWire is false.
	FailedSend dist.Dist
}

// DefaultParams returns the calibrated emulator configuration for n
// processes. The network decomposition follows the paper's own (§5.1):
// t_send = t_receive = 0.025 ms of host CPU per message, and a medium
// occupancy equal to the measured end-to-end delay minus 2·t_send, so that
// the uncontended unicast end-to-end delay reproduces the paper's bi-modal
// fit exactly: U[0.1, 0.13] w.p. 0.8 and U[0.145, 0.35] w.p. 0.2.
//
// Host pauses (GC-like freezes) are disabled by default: the paper's
// class-1 runs show tight confidence intervals (±0.02 ms over 5000
// executions, §5.2) incompatible with frequent long pauses. Enable them
// via PauseEvery for failure-injection studies.
func DefaultParams(n int) Params {
	return Params{
		N:        n,
		TSend:    dist.U(0.020, 0.030),
		TReceive: dist.U(0.020, 0.030),
		TWire: dist.MustMixture(
			dist.Component{P: 0.80, D: dist.U(0.050, 0.080)},
			dist.Component{P: 0.20, D: dist.U(0.095, 0.300)},
		),
		TailProb:         0,
		Tail:             dist.Det(0),
		SleepGranularity: 10.0,
		GridProb:         0.35,
		ThreadJitter:     dist.Exp(0.3),
		KernelLate:       dist.Exp(0.05),
		WakeTailProb:     0.08,
		WakeTail:         dist.U(2, 15),
		PauseEvery:       dist.Det(0), // disabled
		PauseDur: dist.MustMixture(
			dist.Component{P: 0.80, D: dist.U(0.5, 6)},
			dist.Component{P: 0.17, D: dist.U(6, 18)},
			dist.Component{P: 0.03, D: dist.U(18, 34)},
		),
		ClockSkew:  dist.U(-0.05, 0.05),
		FailedSend: dist.U(0.12, 0.18),
	}
}

// Cluster is an emulated cluster executing one neko.Stack per process in
// virtual time. Construct with New, attach stacks with Attach, then drive
// the simulation with Start/Run/RunUntil. A finished cluster can be
// rewound with Reset and reused for the next replica without
// reallocating any of its state (see Reset for the contract).
type Cluster struct {
	params Params
	sim    des.Sim
	rand   *rng.Stream
	hosts  []*host // index 0..n-1 for processes 1..n
	// delivered counts messages handed to protocol stacks.
	delivered uint64
	// hubFree is when the shared medium next becomes idle.
	hubFree float64
	// traceFn, if set, observes every message delivery (for tests).
	traceFn func(m neko.Message, at float64)
	// tracer, if set, records structured execution events (message
	// send/deliver/drop, timer arm/stop/fire, fault injections) into the
	// replica's trace ring. Nil costs one branch per site.
	tracer *trace.Tracer
	// group[i] is process i's partition group; nil when unpartitioned.
	// Frames between different groups are dropped at the hub boundary.
	group []int
	// links holds per-directed-link degradation rules (see SetLinkAt);
	// nil until the first rule is installed.
	links map[linkKey]linkRule
	// linkRand draws loss and added-latency samples for link rules. It is
	// a dedicated child stream, consumed only when a rule exists, so runs
	// without link injections are bit-identical to pre-injection builds.
	linkRand *rng.Stream
	// phaseFns observe PhaseAt transitions (scenario workload hooks).
	phaseFns []func(name string, at float64)
	// dmsg is the message being dispatched to a stack. recv copies the
	// transit payload here after releasing the record (handler sends reuse
	// it), and hands the stack a pointer into this scratch slot rather
	// than a stack local — a local's address would escape into the handler
	// chain and put one allocation back on every delivery. recv only runs
	// from DES steps, which never nest, so one slot suffices.
	dmsg neko.Message

	// Record pools for the hot delivery and timer paths. Each record
	// carries its stage closures, allocated once at record construction,
	// so steady-state message delivery and timer arm/stop/fire cycles
	// perform no heap allocation (see PERFORMANCE.md).
	transits pool[transit]
	timers   pool[simTimer]
	fires    pool[fireCall]
	calls    pool[guardedCall]
	pauses   pool[pauseCall]
	injects  pool[injectCall]
}

// pool is a LIFO free list over every record ever created for one
// cluster. all retains them so Reset can reclaim in-flight records after
// the event queue that referenced them has been wiped.
type pool[T any] struct {
	new  func() *T
	free []*T
	all  []*T
}

func (p *pool[T]) get() *T {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return r
	}
	r := p.new()
	p.all = append(p.all, r)
	return r
}

func (p *pool[T]) put(r *T) { p.free = append(p.free, r) }

// reclaimAll returns every record to the free list, in-flight or not.
func (p *pool[T]) reclaimAll() {
	p.free = p.free[:0]
	p.free = append(p.free, p.all...)
}

// host models one PC: a CPU with FIFO queueing, a scheduler with coarse
// timers, pauses, a skewed clock, and the process running on it.
type host struct {
	c         *Cluster
	id        neko.ProcessID
	cpuFree   float64
	clockOff  float64
	gridPhase float64
	// down is the crash state, flipped by CrashAt/RecoverAt events at
	// their scheduled instants. epoch counts crashes: timers armed before
	// a crash carry the old epoch and never fire after it.
	down      bool
	epoch     uint64
	stack     *neko.Stack
	netRand   *rng.Stream
	schedRand *rng.Stream
	pauseRand *rng.Stream
	// startStackFn/pauseBodyFn are the host's recurring event callbacks,
	// allocated once here instead of per scheduling.
	startStackFn func()
	pauseBodyFn  func()
}

// New creates a cluster from params, drawing all randomness from child
// streams of r. Attach a stack to every process before calling Start.
func New(params Params, r *rng.Stream) (*Cluster, error) {
	c, err := build(params)
	if err != nil {
		return nil, err
	}
	c.seed(r)
	return c, nil
}

// NewIdle allocates a cluster without drawing any randomness: every
// stream is zero-state, no clock offsets or grid phases are sampled, and
// initially-crashed flags are not yet set. The cluster must be Reset
// before Start. Harnesses that always rewind from a run seed (the
// scenario runner, the latency-campaign harness) use it so assembly does
// no dead stream-derivation work.
func NewIdle(params Params) (*Cluster, error) { return build(params) }

// build allocates all cluster state — hosts, streams, pools — without
// consuming randomness; seed (or Reset) draws it.
func build(params Params) (*Cluster, error) {
	if params.N < 1 {
		return nil, fmt.Errorf("netsim: need at least 1 process, got %d", params.N)
	}
	def := DefaultParams(params.N)
	fillDefaults(&params, def)
	c := &Cluster{params: params, rand: &rng.Stream{}, linkRand: &rng.Stream{}}
	c.transits.new = c.makeTransit
	c.timers.new = c.makeTimer
	c.fires.new = c.makeFireCall
	c.calls.new = c.makeGuardedCall
	c.pauses.new = c.makePauseCall
	c.injects.new = c.makeInjectCall
	for i := 0; i < params.N; i++ {
		id := neko.ProcessID(i + 1)
		h := &host{
			c:         c,
			id:        id,
			netRand:   &rng.Stream{},
			schedRand: &rng.Stream{},
			pauseRand: &rng.Stream{},
		}
		h.startStackFn = func() { h.stack.Start() }
		h.pauseBodyFn = h.pauseBody
		c.hosts = append(c.hosts, h)
	}
	for _, id := range params.Crashed {
		if id < 1 || int(id) > params.N {
			return nil, fmt.Errorf("netsim: crashed process %d out of range 1..%d", id, params.N)
		}
	}
	return c, nil
}

// seed draws every piece of construction randomness from child streams of
// r — cluster and link streams, per-host clock offsets, scheduler streams
// and grid phases — and sets the initially-crashed flags. The consumption
// order is fixed (cluster streams, then hosts in id order) so New and
// Reset produce bit-identical state from the same r.
func (c *Cluster) seed(r *rng.Stream) {
	r.ChildInto(c.rand, 0xc1)
	r.ChildInto(c.linkRand, 0x400)
	for i, h := range c.hosts {
		h.clockOff = c.params.ClockSkew.Sample(c.rand)
		r.ChildInto(h.netRand, 0x100+uint64(i))
		r.ChildInto(h.schedRand, 0x200+uint64(i))
		r.ChildInto(h.pauseRand, 0x300+uint64(i))
		h.gridPhase = h.schedRand.Uniform(0, c.params.SleepGranularity)
	}
	for _, id := range c.params.Crashed {
		c.hosts[id-1].down = true
	}
}

// Reset rewinds the cluster to its initial state — virtual time zero,
// fresh host state, no injections in force — redrawing all construction
// randomness from child streams of r exactly as New does, without
// reallocating hosts, per-host streams, the DES event pool, or the
// pooled message/timer records. Running a reset cluster is bit-identical
// to running a freshly constructed one from the same stream; this is
// what lets campaign workers keep one cluster per worker and reuse it
// across Monte-Carlo replicas (the san.Sim.Reset treatment).
//
// Attached stacks stay attached, but their protocol state is not
// touched: the layers above (fd detectors, consensus engines) must be
// rewound by their own reset hooks. Every outstanding timer handle is
// invalidated wholesale; holders must discard handles without calling
// Stop. Trace and phase observers are cleared, as on a fresh cluster.
func (c *Cluster) Reset(r *rng.Stream) {
	c.sim.Reset()
	c.delivered = 0
	c.hubFree = 0
	c.traceFn = nil
	c.tracer = nil
	c.group = nil
	clear(c.links)
	c.phaseFns = c.phaseFns[:0]
	for _, h := range c.hosts {
		h.cpuFree = 0
		h.down = false
		h.epoch = 0
	}
	c.seed(r)
	// The wiped event queue held the callbacks of every in-flight pooled
	// record; reclaim them all, invalidating their outstanding handles
	// and dropping any retained message payloads.
	for _, t := range c.timers.all {
		t.gen++
		t.released = true
		t.fn = nil
	}
	c.timers.reclaimAll()
	for _, tr := range c.transits.all {
		tr.m = neko.Message{}
	}
	c.transits.reclaimAll()
	for _, fc := range c.fires.all {
		fc.t = nil
	}
	c.fires.reclaimAll()
	for _, g := range c.calls.all {
		g.fn = nil
	}
	c.calls.reclaimAll()
	c.pauses.reclaimAll()
	for _, ic := range c.injects.all {
		ic.h = nil
		ic.extra = nil
		ic.assign = nil
		ic.name = ""
	}
	c.injects.reclaimAll()
}

// fillDefaults replaces nil/zero stochastic fields with defaults.
func fillDefaults(p *Params, def Params) {
	if p.TSend == nil {
		p.TSend = def.TSend
	}
	if p.TReceive == nil {
		p.TReceive = def.TReceive
	}
	if p.TWire == nil {
		p.TWire = def.TWire
	}
	if p.Tail == nil {
		p.Tail = def.Tail
		if p.TailProb == 0 {
			p.TailProb = def.TailProb
		}
	}
	if p.SleepGranularity == 0 {
		p.SleepGranularity = def.SleepGranularity
	}
	if p.ThreadJitter == nil {
		p.ThreadJitter = def.ThreadJitter
	}
	if p.KernelLate == nil {
		p.KernelLate = def.KernelLate
	}
	if p.WakeTail == nil {
		p.WakeTail = def.WakeTail
		if p.WakeTailProb == 0 {
			p.WakeTailProb = def.WakeTailProb
		}
	}
	if p.PauseEvery == nil {
		p.PauseEvery = def.PauseEvery
	}
	if p.PauseDur == nil {
		p.PauseDur = def.PauseDur
	}
	if p.ClockSkew == nil {
		p.ClockSkew = def.ClockSkew
	}
	if p.FailedSend == nil {
		p.FailedSend = def.FailedSend
	}
}

// Params returns the effective (defaulted) parameters.
func (c *Cluster) Params() Params { return c.params }

// Context returns the execution context for process id, to be passed to
// protocol constructors before Attach.
func (c *Cluster) Context(id neko.ProcessID) neko.Context { return c.hostFor(id) }

func (c *Cluster) hostFor(id neko.ProcessID) *host {
	if id < 1 || int(id) > len(c.hosts) {
		panic(fmt.Sprintf("netsim: process id %d out of range", id))
	}
	return c.hosts[id-1]
}

// Attach binds a protocol stack to process id. The stack must have been
// built against Context(id).
func (c *Cluster) Attach(id neko.ProcessID, s *neko.Stack) {
	h := c.hostFor(id)
	if h.stack != nil {
		panic(fmt.Sprintf("netsim: process %d already has a stack", id))
	}
	h.stack = s
}

// Trace registers an observer for every message delivery (test hook).
func (c *Cluster) Trace(fn func(m neko.Message, at float64)) { c.traceFn = fn }

// SetTracer attaches a structured execution tracer to the cluster and its
// DES kernel (nil detaches both). Cluster.Reset detaches it again, so a
// traced campaign re-attaches after every reset, before compiling
// injections, keeping the schedule-event prefix in the trace.
func (c *Cluster) SetTracer(tr *trace.Tracer) {
	c.tracer = tr
	c.sim.SetTracer(tr)
}

// Now returns the global simulated time in milliseconds.
func (c *Cluster) Now() float64 { return c.sim.Now() }

// Delivered returns the number of messages delivered to stacks so far.
func (c *Cluster) Delivered() uint64 { return c.delivered }

// Start launches pause processes and starts every attached, non-crashed
// stack at virtual time zero (subject to nothing: Start itself runs
// immediately; protocol-level start skew is the caller's concern via
// StartAt).
func (c *Cluster) Start() {
	for _, h := range c.hosts {
		if c.params.PauseEvery.Mean() > 0 {
			h.scheduleNextPause()
		}
		if h.stack != nil && !h.down {
			c.sim.At(0, h.startStackFn)
		}
	}
}

// guardedCall is a pooled one-shot event callback that runs fn only if
// its host is still up at the scheduled instant (the StartAt guard).
type guardedCall struct {
	c     *Cluster
	h     *host
	fn    func()
	runFn func()
}

func (c *Cluster) makeGuardedCall() *guardedCall {
	g := &guardedCall{c: c}
	g.runFn = g.run
	return g
}

func (g *guardedCall) run() {
	h, fn := g.h, g.fn
	g.fn = nil
	g.c.calls.put(g)
	if h.down {
		return
	}
	fn()
}

// StartAt schedules fn on process id's host at the global time when that
// host's *local* clock reads localT — this is how the experiment harness
// implements "all processes propose at the same time t_0" under clock skew
// (§2.3, §4). fn does not run if the process is crashed by then.
func (c *Cluster) StartAt(id neko.ProcessID, localT float64, fn func()) {
	h := c.hostFor(id)
	globalT := localT - h.clockOff
	if globalT < c.sim.Now() {
		globalT = c.sim.Now()
	}
	g := c.calls.get()
	g.h, g.fn = h, fn
	c.sim.At(globalT, g.runFn)
}

// CrashAt schedules a crash of process id at global time t: from then on
// its timers stop firing and inbound messages are dropped at delivery
// time. A crashed process may be brought back with RecoverAt.
func (c *Cluster) CrashAt(id neko.ProcessID, t float64) {
	ic := c.inject(injCrash)
	ic.h = c.hostFor(id)
	c.at(t, ic.runFn)
}

// at schedules fn at global time t, clamped to now (injection helpers may
// be invoked mid-run with past instants).
func (c *Cluster) at(t float64, fn func()) {
	if t < c.sim.Now() {
		t = c.sim.Now()
	}
	c.sim.At(t, fn)
}

// AtGlobal schedules fn at global simulated time t, independent of any
// host (no scheduler lateness, unaffected by crashes). Experiment
// harnesses use it for campaign bookkeeping such as watchdogs.
func (c *Cluster) AtGlobal(t float64, fn func()) {
	if t < c.sim.Now() {
		t = c.sim.Now()
	}
	c.sim.At(t, fn)
}

// Run executes events until stop returns true or no events remain.
func (c *Cluster) Run(stop func() bool) float64 { return c.sim.Run(stop) }

// RunUntil executes events up to global time tmax.
func (c *Cluster) RunUntil(tmax float64) { c.sim.RunUntil(tmax) }

// Steps returns the number of DES events executed.
func (c *Cluster) Steps() uint64 { return c.sim.Steps() }

// --- host: CPU, pauses, scheduler ---

// reserveCPU reserves cost ms of CPU in FIFO order starting no earlier
// than the current time, and schedules fn at the completion instant.
// fn may be nil (pure occupancy, used for pauses).
func (h *host) reserveCPU(cost float64, fn func()) {
	now := h.c.sim.Now()
	start := now
	if h.cpuFree > start {
		start = h.cpuFree
	}
	end := start + cost
	h.cpuFree = end
	if fn != nil {
		h.c.sim.At(end, fn)
	}
}

// scheduleNextPause arms the host's next execution pause.
func (h *host) scheduleNextPause() {
	gap := h.c.params.PauseEvery.Sample(h.pauseRand)
	h.c.sim.After(gap, h.pauseBodyFn)
}

// pauseBody executes one background pause and arms the next; it is the
// preallocated callback behind scheduleNextPause.
func (h *host) pauseBody() {
	dur := h.c.params.PauseDur.Sample(h.pauseRand)
	h.reserveCPU(dur, nil)
	h.scheduleNextPause()
}

// wakeLateness samples the scheduler-induced delay of a timer wake-up
// requested for absolute time ideal: thread-scheduling jitter, plus an
// occasional deferral to the host's next absolute scheduler tick (the
// 10 ms jiffy grid of Linux 2.2), plus kernel wake-up latency.
func (h *host) wakeLateness(ideal float64) float64 {
	p := h.c.params
	late := p.ThreadJitter.Sample(h.schedRand)
	if p.GridProb > 0 && h.schedRand.Float64() < p.GridProb {
		g := p.SleepGranularity
		next := math.Ceil((ideal-h.gridPhase)/g)*g + h.gridPhase
		if d := next - ideal; d > late {
			late = d
		}
	}
	if p.WakeTailProb > 0 && h.schedRand.Float64() < p.WakeTailProb {
		late += p.WakeTail.Sample(h.schedRand)
	}
	late += p.KernelLate.Sample(h.schedRand)
	return late
}

// --- neko.Context implementation ---

// ID implements neko.Context.
func (h *host) ID() neko.ProcessID { return h.id }

// N implements neko.Context.
func (h *host) N() int { return h.c.params.N }

// Now implements neko.Context: the host's local clock.
func (h *host) Now() float64 { return h.c.sim.Now() + h.clockOff }

// transit is a pooled record carrying one message through the pipeline:
// sender CPU (TSend) → hub (TWire, FIFO) → receiver CPU (TReceive, plus
// occasional Tail latency) → stack dispatch — the seven-step
// decomposition of Fig. 3 in the paper. Its stage closures are allocated
// once per record, so steady-state delivery allocates nothing.
type transit struct {
	c                                *Cluster
	src, dst                         *host
	m                                neko.Message
	sendFn, hubFn, deliverFn, recvFn func()
}

func (c *Cluster) makeTransit() *transit {
	t := &transit{c: c}
	t.sendFn = t.send
	t.hubFn = t.hub
	t.deliverFn = t.deliver
	t.recvFn = t.recv
	return t
}

// releaseTransit retires a transit record, dropping its payload
// reference so the pool does not pin message contents.
func (c *Cluster) releaseTransit(t *transit) {
	t.m = neko.Message{}
	c.transits.put(t)
}

// Send implements neko.Context. See transit for the pipeline.
func (h *host) Send(m neko.Message) {
	if m.To == h.id {
		panic("netsim: send to self (protocols must short-circuit local delivery)")
	}
	if m.To < 1 || int(m.To) > h.c.params.N {
		panic(fmt.Sprintf("netsim: send to unknown process %d", m.To))
	}
	m.From = h.id
	c := h.c
	if c.tracer != nil {
		c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(m.From), Q: int32(m.To), Kind: trace.KindSend, S: m.Type})
	}
	// A send to an already-crashed peer fails fast (TCP reset): it costs
	// the sender the exception path and never reaches the medium.
	if !c.params.CrashedConsumeWire && c.hostFor(m.To).down {
		if c.tracer != nil {
			c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(m.From), Q: int32(m.To), Kind: trace.KindDrop, B: trace.DropFailedSend, S: m.Type})
		}
		h.reserveCPU(c.params.FailedSend.Sample(h.netRand), nil)
		return
	}
	t := c.transits.get()
	t.src, t.dst, t.m = h, c.hostFor(m.To), m
	// Step 1-2: sending queue + CPU_i for t_send.
	h.reserveCPU(c.params.TSend.Sample(h.netRand), t.sendFn)
}

// send runs step 3-4: network queue + shared medium for t_net.
func (t *transit) send() {
	c := t.c
	wire := c.params.TWire.Sample(t.src.netRand)
	start := c.sim.Now()
	if c.hubFree > start {
		start = c.hubFree
	}
	end := start + wire
	c.hubFree = end
	c.sim.At(end, t.hubFn)
}

// hub runs at the hub boundary: the frame has consumed sender CPU and
// medium time; partition and per-link degradation rules apply here.
func (t *transit) hub() {
	c := t.c
	if c.partitioned(t.m.From, t.m.To) {
		if c.tracer != nil {
			c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(t.m.From), Q: int32(t.m.To), Kind: trace.KindDrop, B: trace.DropPartition, S: t.m.Type})
		}
		c.releaseTransit(t)
		return
	}
	extra := 0.0
	if rule, ok := c.links[linkKey{t.m.From, t.m.To}]; ok {
		if rule.Loss > 0 && c.linkRand.Float64() < rule.Loss {
			if c.tracer != nil {
				c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(t.m.From), Q: int32(t.m.To), Kind: trace.KindDrop, B: trace.DropLinkLoss, S: t.m.Type})
			}
			c.releaseTransit(t)
			return
		}
		if rule.ExtraDelay != nil {
			extra = rule.ExtraDelay.Sample(c.linkRand)
		}
	}
	if extra > 0 {
		c.sim.At(c.sim.Now()+extra, t.deliverFn)
	} else {
		t.deliver()
	}
}

// deliver runs step 5-6: receiving queue + CPU_j for t_receive.
func (t *transit) deliver() {
	c := t.c
	cost := c.params.TReceive.Sample(t.dst.netRand)
	if c.params.TailProb > 0 && t.dst.netRand.Float64() < c.params.TailProb {
		cost += c.params.Tail.Sample(t.dst.netRand)
	}
	t.dst.reserveCPU(cost, t.recvFn)
}

// recv runs step 7: the message is received by p_j. The record is
// released before dispatch so sends triggered by the handler reuse it.
func (t *transit) recv() {
	c, dst := t.c, t.dst
	c.dmsg = t.m
	m := &c.dmsg
	c.releaseTransit(t)
	if dst.down || dst.stack == nil {
		if c.tracer != nil {
			c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(m.To), Q: int32(m.From), Kind: trace.KindDrop, B: trace.DropDown, S: m.Type})
		}
		c.dmsg = neko.Message{}
		return
	}
	c.delivered++
	if c.traceFn != nil {
		c.traceFn(*m, c.sim.Now())
	}
	if c.tracer != nil {
		c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(m.To), Q: int32(m.From), Kind: trace.KindDeliver, S: m.Type})
	}
	dst.stack.Dispatch(m)
	c.dmsg = neko.Message{}
}

// simTimer implements neko.TimerHandle. Records are pooled per cluster:
// Stop retires the record to the free list immediately, and Cluster.Reset
// reclaims all of them, so a handle is valid for one arm→fire/stop cycle
// only (the neko.TimerHandle contract). gen disambiguates incarnations
// for the pooled fire callbacks, exactly as des event records do.
type simTimer struct {
	h        *host
	handle   des.Handle
	epoch    uint64
	gen      uint64
	stopped  bool
	released bool
	fn       func()
	fireFn   func()
}

func (c *Cluster) makeTimer() *simTimer {
	t := &simTimer{}
	t.fireFn = t.fire
	return t
}

func (c *Cluster) releaseTimer(t *simTimer) {
	t.gen++
	t.released = true
	t.fn = nil
	c.timers.put(t)
}

// Stop implements neko.TimerHandle. The record returns to the pool, so
// Stop must be called at most once and the handle discarded afterwards.
func (t *simTimer) Stop() {
	if t.released {
		return
	}
	t.stopped = true
	if c := t.h.c; c.tracer != nil {
		c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(t.h.id), Kind: trace.KindTimerStop})
	}
	t.h.c.sim.Cancel(t.handle)
	t.h.c.releaseTimer(t)
}

// fire is the timer's wake-up event: the callback needs the CPU (zero
// cost, but FIFO behind pauses and in-flight receive processing), so it
// is routed through reserveCPU via a pooled fireCall that remembers which
// incarnation of the record armed it.
func (t *simTimer) fire() {
	fc := t.h.c.fires.get()
	fc.t, fc.gen = t, t.gen
	t.h.reserveCPU(0, fc.runFn)
}

// fireCall is the pooled CPU-queue callback of a timer firing.
type fireCall struct {
	c     *Cluster
	t     *simTimer
	gen   uint64
	runFn func()
}

func (c *Cluster) makeFireCall() *fireCall {
	fc := &fireCall{c: c}
	fc.runFn = fc.run
	return fc
}

func (fc *fireCall) run() {
	t, gen := fc.t, fc.gen
	fc.t = nil
	fc.c.fires.put(fc)
	h := t.h
	// A mismatched generation means the record was stopped (and possibly
	// recycled into a different timer) between wake-up and CPU grant —
	// the same suppression the pre-pool code got from its per-arm
	// stopped flag.
	if t.gen != gen || t.stopped || h.down || t.epoch != h.epoch {
		return
	}
	if c := h.c; c.tracer != nil {
		c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(h.id), Kind: trace.KindTimerFire})
	}
	t.fn()
}

// SetTimer implements neko.Context. The callback is subject to scheduler
// lateness and runs through the host CPU queue (so pauses defer it). A
// timer armed before a crash never fires, even if the host has recovered
// by its due time (crashes wipe the process's pending timers).
func (h *host) SetTimer(d float64, fn func()) neko.TimerHandle {
	if d < 0 {
		d = 0
	}
	ideal := h.c.sim.Now() + d
	if c := h.c; c.tracer != nil {
		c.tracer.Emit(trace.Event{T: c.sim.Now(), P: int32(h.id), Kind: trace.KindTimerArm, X: ideal})
	}
	t := h.c.timers.get()
	t.h = h
	t.epoch = h.epoch
	t.stopped = false
	t.released = false
	t.fn = fn
	t.handle = h.c.sim.At(ideal+h.wakeLateness(ideal), t.fireFn)
	return t
}

var _ neko.Context = (*host)(nil)
