// Package netsim emulates the paper's measurement environment (§2.5): a
// cluster of PCs connected by a simplex 100 Base-TX Ethernet hub, running
// Linux 2.2 and a JVM. It is a discrete-event model executing real protocol
// code (internal/neko stacks) in virtual time.
//
// The emulator reproduces, at the mechanism level, the phenomena the paper
// measures:
//
//   - per-host CPU cost for sending and receiving each message, and a
//     shared serial transmission medium (the hub) — the two contention
//     points of the paper's network model (§3.3);
//   - a receive-path latency tail (interrupt coalescing / protocol stack),
//     which produces the bi-modal end-to-end delay of Fig. 6;
//   - OS timer coarseness: Linux 2.2 has a 10 ms jiffy; sleeps overshoot
//     by U[0, granularity) and are sometimes deferred to the next absolute
//     scheduler tick. This drives the failure-detector QoS curves (Fig. 8)
//     and the latency peak near T = 10 ms (Fig. 9a, §5.4);
//   - host execution pauses (JVM garbage collection, cron, IRQ storms)
//     that freeze a host entirely, producing correlated wrong suspicions —
//     the effect the paper's independent-FD SAN model cannot capture
//     (§5.4);
//   - per-host clock offsets within the ±50 µs NTP synchronization bound
//     (§4), applied to the common start instant t_0;
//   - process crashes: messages to a crashed process still consume sender
//     CPU and hub time (the cause of the n = 3 anomaly in Table 1).
//
// All times are float64 milliseconds.
package netsim

import (
	"fmt"
	"math"

	"ctsan/internal/des"
	"ctsan/internal/dist"
	"ctsan/internal/neko"
	"ctsan/internal/rng"
)

// Params configures the emulated cluster. Zero-value fields take the
// calibrated defaults of DefaultParams, which reproduce the paper's
// measured end-to-end delay distribution (§5.1).
type Params struct {
	// N is the number of processes (one per host). The paper uses odd
	// 3..11 on a 12-PC cluster.
	N int

	// TSend is the CPU cost of pushing one message through the sending
	// host's protocol stack; TReceive likewise on the receiving host.
	TSend, TReceive dist.Dist
	// TWire is the hub occupancy per frame (serialization at 100 Mbit/s
	// plus preamble and inter-frame gap).
	TWire dist.Dist
	// TailProb is the probability that a message experiences extra
	// receive-path latency drawn from Tail (the second mode of Fig. 6).
	TailProb float64
	Tail     dist.Dist

	// SleepGranularity is the OS timer coarseness: a timer armed for d ms
	// fires after d + U[0, SleepGranularity) + kernel latency. Linux 2.2
	// jiffy = 10 ms.
	SleepGranularity float64
	// GridProb is the probability that a timer wake-up is additionally
	// deferred to the host's next absolute scheduler tick (10 ms grid),
	// which produces resonance effects when timeout values are close to
	// the quantum (the Fig. 9a peak at T = 10 ms).
	GridProb float64
	// ThreadJitter is thread-scheduling noise added to every wake-up.
	ThreadJitter dist.Dist
	// KernelLate is small always-present wake-up latency.
	KernelLate dist.Dist
	// WakeTailProb/WakeTail model occasional long delays of sleeping
	// threads (priority decay under load, JVM safepoints): with this
	// probability a timer wake-up is additionally delayed by a WakeTail
	// sample. Message processing is unaffected — the I/O path keeps its
	// dynamic priority — so these delays starve the heartbeat sender
	// thread and produce the correlated wrong suspicions of §5.4 without
	// disturbing class-1 latency.
	WakeTailProb float64
	WakeTail     dist.Dist

	// PauseEvery is the inter-arrival distribution of whole-host execution
	// pauses (GC-like); PauseDur their duration. Pauses freeze timers,
	// sends and receive processing, producing correlated FD mistakes.
	PauseEvery dist.Dist
	PauseDur   dist.Dist

	// ClockSkew is the distribution of per-host clock offsets relative to
	// global simulated time (may be negative). Paper: NTP within ±50 µs.
	ClockSkew dist.Dist

	// Crashed lists processes that are crashed from the very beginning
	// (class-2 runs, §2.4). A crashed process never starts and never
	// processes messages.
	Crashed []neko.ProcessID

	// CrashedConsumeWire controls the cost of sending to a crashed
	// process. The default (false) models TCP to a dead peer: the send
	// costs the sender's CPU (FailedSend — §5.3 explains the n = 3 anomaly
	// by exactly this sender-side delay: "the message m sent to p delays
	// the sending of m to q") but the frame never occupies the shared
	// medium, as the connection fails fast. Set true to charge the full
	// path (what the paper's SAN model implicitly does, since it has no
	// notion of connection state).
	CrashedConsumeWire bool
	// FailedSend is the sender CPU cost of a send that fails fast (TCP
	// reset + JVM exception path); used when CrashedConsumeWire is false.
	FailedSend dist.Dist
}

// DefaultParams returns the calibrated emulator configuration for n
// processes. The network decomposition follows the paper's own (§5.1):
// t_send = t_receive = 0.025 ms of host CPU per message, and a medium
// occupancy equal to the measured end-to-end delay minus 2·t_send, so that
// the uncontended unicast end-to-end delay reproduces the paper's bi-modal
// fit exactly: U[0.1, 0.13] w.p. 0.8 and U[0.145, 0.35] w.p. 0.2.
//
// Host pauses (GC-like freezes) are disabled by default: the paper's
// class-1 runs show tight confidence intervals (±0.02 ms over 5000
// executions, §5.2) incompatible with frequent long pauses. Enable them
// via PauseEvery for failure-injection studies.
func DefaultParams(n int) Params {
	return Params{
		N:        n,
		TSend:    dist.U(0.020, 0.030),
		TReceive: dist.U(0.020, 0.030),
		TWire: dist.MustMixture(
			dist.Component{P: 0.80, D: dist.U(0.050, 0.080)},
			dist.Component{P: 0.20, D: dist.U(0.095, 0.300)},
		),
		TailProb:         0,
		Tail:             dist.Det(0),
		SleepGranularity: 10.0,
		GridProb:         0.35,
		ThreadJitter:     dist.Exp(0.3),
		KernelLate:       dist.Exp(0.05),
		WakeTailProb:     0.08,
		WakeTail:         dist.U(2, 15),
		PauseEvery:       dist.Det(0), // disabled
		PauseDur: dist.MustMixture(
			dist.Component{P: 0.80, D: dist.U(0.5, 6)},
			dist.Component{P: 0.17, D: dist.U(6, 18)},
			dist.Component{P: 0.03, D: dist.U(18, 34)},
		),
		ClockSkew:  dist.U(-0.05, 0.05),
		FailedSend: dist.U(0.12, 0.18),
	}
}

// Cluster is an emulated cluster executing one neko.Stack per process in
// virtual time. Construct with New, attach stacks with Attach, then drive
// the simulation with Start/Run/RunUntil.
type Cluster struct {
	params Params
	sim    des.Sim
	rand   *rng.Stream
	hosts  []*host // index 0..n-1 for processes 1..n
	// delivered counts messages handed to protocol stacks.
	delivered uint64
	// hubFree is when the shared medium next becomes idle.
	hubFree float64
	// traceFn, if set, observes every message delivery (for tests).
	traceFn func(m neko.Message, at float64)
	// group[i] is process i's partition group; nil when unpartitioned.
	// Frames between different groups are dropped at the hub boundary.
	group []int
	// links holds per-directed-link degradation rules (see SetLinkAt);
	// nil until the first rule is installed.
	links map[linkKey]linkRule
	// linkRand draws loss and added-latency samples for link rules. It is
	// a dedicated child stream, consumed only when a rule exists, so runs
	// without link injections are bit-identical to pre-injection builds.
	linkRand *rng.Stream
	// phaseFns observe PhaseAt transitions (scenario workload hooks).
	phaseFns []func(name string, at float64)
}

// host models one PC: a CPU with FIFO queueing, a scheduler with coarse
// timers, pauses, a skewed clock, and the process running on it.
type host struct {
	c         *Cluster
	id        neko.ProcessID
	cpuFree   float64
	clockOff  float64
	gridPhase float64
	// down is the crash state, flipped by CrashAt/RecoverAt events at
	// their scheduled instants. epoch counts crashes: timers armed before
	// a crash carry the old epoch and never fire after it.
	down      bool
	epoch     uint64
	stack     *neko.Stack
	netRand   *rng.Stream
	schedRand *rng.Stream
	pauseRand *rng.Stream
}

// New creates a cluster from params, drawing all randomness from child
// streams of r. Attach a stack to every process before calling Start.
func New(params Params, r *rng.Stream) (*Cluster, error) {
	if params.N < 1 {
		return nil, fmt.Errorf("netsim: need at least 1 process, got %d", params.N)
	}
	def := DefaultParams(params.N)
	fillDefaults(&params, def)
	c := &Cluster{params: params, rand: r.Child(0xc1), linkRand: r.Child(0x400)}
	for i := 0; i < params.N; i++ {
		id := neko.ProcessID(i + 1)
		h := &host{
			c:         c,
			id:        id,
			clockOff:  params.ClockSkew.Sample(c.rand),
			netRand:   r.Child(0x100 + uint64(i)),
			schedRand: r.Child(0x200 + uint64(i)),
			pauseRand: r.Child(0x300 + uint64(i)),
		}
		h.gridPhase = h.schedRand.Uniform(0, params.SleepGranularity)
		c.hosts = append(c.hosts, h)
	}
	for _, id := range params.Crashed {
		if id < 1 || int(id) > params.N {
			return nil, fmt.Errorf("netsim: crashed process %d out of range 1..%d", id, params.N)
		}
		c.hosts[id-1].down = true
	}
	return c, nil
}

// fillDefaults replaces nil/zero stochastic fields with defaults.
func fillDefaults(p *Params, def Params) {
	if p.TSend == nil {
		p.TSend = def.TSend
	}
	if p.TReceive == nil {
		p.TReceive = def.TReceive
	}
	if p.TWire == nil {
		p.TWire = def.TWire
	}
	if p.Tail == nil {
		p.Tail = def.Tail
		if p.TailProb == 0 {
			p.TailProb = def.TailProb
		}
	}
	if p.SleepGranularity == 0 {
		p.SleepGranularity = def.SleepGranularity
	}
	if p.ThreadJitter == nil {
		p.ThreadJitter = def.ThreadJitter
	}
	if p.KernelLate == nil {
		p.KernelLate = def.KernelLate
	}
	if p.WakeTail == nil {
		p.WakeTail = def.WakeTail
		if p.WakeTailProb == 0 {
			p.WakeTailProb = def.WakeTailProb
		}
	}
	if p.PauseEvery == nil {
		p.PauseEvery = def.PauseEvery
	}
	if p.PauseDur == nil {
		p.PauseDur = def.PauseDur
	}
	if p.ClockSkew == nil {
		p.ClockSkew = def.ClockSkew
	}
	if p.FailedSend == nil {
		p.FailedSend = def.FailedSend
	}
}

// Params returns the effective (defaulted) parameters.
func (c *Cluster) Params() Params { return c.params }

// Context returns the execution context for process id, to be passed to
// protocol constructors before Attach.
func (c *Cluster) Context(id neko.ProcessID) neko.Context { return c.hostFor(id) }

func (c *Cluster) hostFor(id neko.ProcessID) *host {
	if id < 1 || int(id) > len(c.hosts) {
		panic(fmt.Sprintf("netsim: process id %d out of range", id))
	}
	return c.hosts[id-1]
}

// Attach binds a protocol stack to process id. The stack must have been
// built against Context(id).
func (c *Cluster) Attach(id neko.ProcessID, s *neko.Stack) {
	h := c.hostFor(id)
	if h.stack != nil {
		panic(fmt.Sprintf("netsim: process %d already has a stack", id))
	}
	h.stack = s
}

// Trace registers an observer for every message delivery (test hook).
func (c *Cluster) Trace(fn func(m neko.Message, at float64)) { c.traceFn = fn }

// Now returns the global simulated time in milliseconds.
func (c *Cluster) Now() float64 { return c.sim.Now() }

// Delivered returns the number of messages delivered to stacks so far.
func (c *Cluster) Delivered() uint64 { return c.delivered }

// Start launches pause processes and starts every attached, non-crashed
// stack at virtual time zero (subject to nothing: Start itself runs
// immediately; protocol-level start skew is the caller's concern via
// StartAt).
func (c *Cluster) Start() {
	for _, h := range c.hosts {
		if c.params.PauseEvery.Mean() > 0 {
			h.scheduleNextPause()
		}
		if h.stack != nil && !h.down {
			h := h
			c.sim.At(0, func() { h.stack.Start() })
		}
	}
}

// StartAt schedules fn on process id's host at the global time when that
// host's *local* clock reads localT — this is how the experiment harness
// implements "all processes propose at the same time t_0" under clock skew
// (§2.3, §4). fn does not run if the process is crashed by then.
func (c *Cluster) StartAt(id neko.ProcessID, localT float64, fn func()) {
	h := c.hostFor(id)
	globalT := localT - h.clockOff
	if globalT < c.sim.Now() {
		globalT = c.sim.Now()
	}
	c.sim.At(globalT, func() {
		if h.down {
			return
		}
		fn()
	})
}

// CrashAt schedules a crash of process id at global time t: from then on
// its timers stop firing and inbound messages are dropped at delivery
// time. A crashed process may be brought back with RecoverAt.
func (c *Cluster) CrashAt(id neko.ProcessID, t float64) {
	h := c.hostFor(id)
	c.at(t, func() {
		if !h.down {
			h.down = true
			h.epoch++
		}
	})
}

// at schedules fn at global time t, clamped to now (injection helpers may
// be invoked mid-run with past instants).
func (c *Cluster) at(t float64, fn func()) {
	if t < c.sim.Now() {
		t = c.sim.Now()
	}
	c.sim.At(t, fn)
}

// AtGlobal schedules fn at global simulated time t, independent of any
// host (no scheduler lateness, unaffected by crashes). Experiment
// harnesses use it for campaign bookkeeping such as watchdogs.
func (c *Cluster) AtGlobal(t float64, fn func()) {
	if t < c.sim.Now() {
		t = c.sim.Now()
	}
	c.sim.At(t, fn)
}

// Run executes events until stop returns true or no events remain.
func (c *Cluster) Run(stop func() bool) float64 { return c.sim.Run(stop) }

// RunUntil executes events up to global time tmax.
func (c *Cluster) RunUntil(tmax float64) { c.sim.RunUntil(tmax) }

// Steps returns the number of DES events executed.
func (c *Cluster) Steps() uint64 { return c.sim.Steps() }

// --- host: CPU, pauses, scheduler ---

// reserveCPU reserves cost ms of CPU in FIFO order starting no earlier
// than the current time, and schedules fn at the completion instant.
// fn may be nil (pure occupancy, used for pauses).
func (h *host) reserveCPU(cost float64, fn func()) {
	now := h.c.sim.Now()
	start := now
	if h.cpuFree > start {
		start = h.cpuFree
	}
	end := start + cost
	h.cpuFree = end
	if fn != nil {
		h.c.sim.At(end, fn)
	}
}

// scheduleNextPause arms the host's next execution pause.
func (h *host) scheduleNextPause() {
	gap := h.c.params.PauseEvery.Sample(h.pauseRand)
	h.c.sim.After(gap, func() {
		dur := h.c.params.PauseDur.Sample(h.pauseRand)
		h.reserveCPU(dur, nil)
		h.scheduleNextPause()
	})
}

// wakeLateness samples the scheduler-induced delay of a timer wake-up
// requested for absolute time ideal: thread-scheduling jitter, plus an
// occasional deferral to the host's next absolute scheduler tick (the
// 10 ms jiffy grid of Linux 2.2), plus kernel wake-up latency.
func (h *host) wakeLateness(ideal float64) float64 {
	p := h.c.params
	late := p.ThreadJitter.Sample(h.schedRand)
	if p.GridProb > 0 && h.schedRand.Float64() < p.GridProb {
		g := p.SleepGranularity
		next := math.Ceil((ideal-h.gridPhase)/g)*g + h.gridPhase
		if d := next - ideal; d > late {
			late = d
		}
	}
	if p.WakeTailProb > 0 && h.schedRand.Float64() < p.WakeTailProb {
		late += p.WakeTail.Sample(h.schedRand)
	}
	late += p.KernelLate.Sample(h.schedRand)
	return late
}

// --- neko.Context implementation ---

// ID implements neko.Context.
func (h *host) ID() neko.ProcessID { return h.id }

// N implements neko.Context.
func (h *host) N() int { return h.c.params.N }

// Now implements neko.Context: the host's local clock.
func (h *host) Now() float64 { return h.c.sim.Now() + h.clockOff }

// Send implements neko.Context. The message passes through: sender CPU
// (TSend) → hub (TWire, FIFO) → receiver CPU (TReceive, plus occasional
// Tail latency) → stack dispatch. This is exactly the seven-step
// decomposition of Fig. 3 in the paper.
func (h *host) Send(m neko.Message) {
	if m.To == h.id {
		panic("netsim: send to self (protocols must short-circuit local delivery)")
	}
	if m.To < 1 || int(m.To) > h.c.params.N {
		panic(fmt.Sprintf("netsim: send to unknown process %d", m.To))
	}
	m.From = h.id
	c := h.c
	// A send to an already-crashed peer fails fast (TCP reset): it costs
	// the sender the exception path and never reaches the medium.
	if !c.params.CrashedConsumeWire && c.hostFor(m.To).down {
		h.reserveCPU(c.params.FailedSend.Sample(h.netRand), nil)
		return
	}
	// Step 1-2: sending queue + CPU_i for t_send.
	h.reserveCPU(c.params.TSend.Sample(h.netRand), func() {
		// Step 3-4: network queue + shared medium for t_net.
		wire := c.params.TWire.Sample(h.netRand)
		start := c.sim.Now()
		if c.hubFree > start {
			start = c.hubFree
		}
		end := start + wire
		c.hubFree = end
		c.sim.At(end, func() {
			// Hub boundary: the frame has consumed sender CPU and medium
			// time; partition and per-link degradation rules apply here.
			if c.partitioned(m.From, m.To) {
				return
			}
			extra := 0.0
			if rule, ok := c.links[linkKey{m.From, m.To}]; ok {
				if rule.Loss > 0 && c.linkRand.Float64() < rule.Loss {
					return
				}
				if rule.ExtraDelay != nil {
					extra = rule.ExtraDelay.Sample(c.linkRand)
				}
			}
			deliver := func() {
				// Step 5-6: receiving queue + CPU_j for t_receive.
				dst := c.hostFor(m.To)
				cost := c.params.TReceive.Sample(dst.netRand)
				if c.params.TailProb > 0 && dst.netRand.Float64() < c.params.TailProb {
					cost += c.params.Tail.Sample(dst.netRand)
				}
				dst.reserveCPU(cost, func() {
					// Step 7: the message is received by p_j.
					if dst.down || dst.stack == nil {
						return
					}
					c.delivered++
					if c.traceFn != nil {
						c.traceFn(m, c.sim.Now())
					}
					dst.stack.Dispatch(m)
				})
			}
			if extra > 0 {
				c.sim.At(c.sim.Now()+extra, deliver)
			} else {
				deliver()
			}
		})
	})
}

// simTimer implements neko.TimerHandle.
type simTimer struct {
	h       *host
	handle  des.Handle
	epoch   uint64
	stopped bool
}

// Stop implements neko.TimerHandle.
func (t *simTimer) Stop() {
	t.stopped = true
	t.h.c.sim.Cancel(t.handle)
}

// SetTimer implements neko.Context. The callback is subject to scheduler
// lateness and runs through the host CPU queue (so pauses defer it). A
// timer armed before a crash never fires, even if the host has recovered
// by its due time (crashes wipe the process's pending timers).
func (h *host) SetTimer(d float64, fn func()) neko.TimerHandle {
	if d < 0 {
		d = 0
	}
	ideal := h.c.sim.Now() + d
	t := &simTimer{h: h, epoch: h.epoch}
	t.handle = h.c.sim.At(ideal+h.wakeLateness(ideal), func() {
		// Wake-up: needs the CPU (zero cost, but FIFO behind pauses and
		// in-flight receive processing).
		h.reserveCPU(0, func() {
			if t.stopped || h.down || t.epoch != h.epoch {
				return
			}
			fn()
		})
	})
	return t
}

var _ neko.Context = (*host)(nil)
