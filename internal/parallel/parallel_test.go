package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatalf("Workers(3) = %d", Workers(3))
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Fatal("non-positive request must resolve to at least 1 worker")
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		if err := ForEach(w, n, func(_, i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", w, i, got)
			}
		}
	}
}

func TestForEachWorkerSlotsAreExclusive(t *testing.T) {
	// Per-worker state must be mutable without synchronization: hammer a
	// plain (non-atomic) counter per worker slot under the race detector.
	const n, w = 2000, 8
	counts := make([]int, w)
	if err := ForEach(w, n, func(worker, _ int) error {
		counts[worker]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("worker counters sum to %d, want %d", total, n)
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(_, _ int) error { called = true; return nil }); err != nil || called {
		t.Fatal("n=0 must be a no-op")
	}
	if err := ForEach(4, -5, func(_, _ int) error { called = true; return nil }); err != nil || called {
		t.Fatal("negative n must be a no-op")
	}
}

func TestForEachError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, w := range []int{1, 4} {
		err := ForEach(w, 100, func(_, i int) error {
			if i == 42 {
				return fmt.Errorf("index %d: %w", i, sentinel)
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error not propagated: %v", w, err)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("panic not re-raised on caller: %v", r)
		}
	}()
	_ = ForEach(4, 100, func(_, i int) error {
		if i == 13 {
			panic("kaboom")
		}
		return nil
	})
	t.Fatal("unreachable: panic expected")
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	square := func(_, i int) (int, error) { return i * i, nil }
	ref, err := Map(1, 500, square)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 16} {
		got, err := Map(w, 500, square)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], ref[i])
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(4, 10, func(_, i int) (int, error) {
		if i >= 5 {
			return 0, errors.New("bad")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("Map error mishandled: %v %v", out, err)
	}
}
