package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var bg = context.Background()

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatalf("Workers(3) = %d", Workers(3))
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Fatal("non-positive request must resolve to at least 1 worker")
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		if err := ForEach(bg, w, n, func(_, i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", w, i, got)
			}
		}
	}
}

func TestForEachWorkerSlotsAreExclusive(t *testing.T) {
	// Per-worker state must be mutable without synchronization: hammer a
	// plain (non-atomic) counter per worker slot under the race detector.
	const n, w = 2000, 8
	counts := make([]int, w)
	if err := ForEach(bg, w, n, func(worker, _ int) error {
		counts[worker]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("worker counters sum to %d, want %d", total, n)
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	if err := ForEach(bg, 4, 0, func(_, _ int) error { called = true; return nil }); err != nil || called {
		t.Fatal("n=0 must be a no-op")
	}
	if err := ForEach(bg, 4, -5, func(_, _ int) error { called = true; return nil }); err != nil || called {
		t.Fatal("negative n must be a no-op")
	}
}

func TestForEachError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, w := range []int{1, 4} {
		err := ForEach(bg, w, 100, func(_, i int) error {
			if i == 42 {
				return fmt.Errorf("index %d: %w", i, sentinel)
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error not propagated: %v", w, err)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	// Both the serial reference path and the pooled path must re-raise a
	// unit panic on the caller, wrapped so the unit index and the original
	// stack survive the goroutine hop.
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				up, ok := recover().(*UnitPanic)
				if !ok {
					t.Fatalf("workers=%d: panic value is not *UnitPanic", w)
				}
				if up.Index != 13 || up.Value != "kaboom" {
					t.Fatalf("workers=%d: wrapped panic = {index %d, value %v}", w, up.Index, up.Value)
				}
				if !strings.Contains(string(up.Stack), "parallel_test") {
					t.Fatalf("workers=%d: captured stack does not reach the panic site", w)
				}
			}()
			_ = ForEach(bg, w, 100, func(_, i int) error {
				if i == 13 {
					panic("kaboom")
				}
				return nil
			})
			t.Fatal("unreachable: panic expected")
		}()
	}
}

func TestUnitPanicNested(t *testing.T) {
	// Nested pools keep the innermost wrap: the replica index, not the
	// point index, identifies the blast site.
	defer func() {
		up, ok := recover().(*UnitPanic)
		if !ok || up.Index != 3 {
			t.Fatalf("panic value = %#v, want inner *UnitPanic with index 3", recover())
		}
	}()
	_ = ForEach(bg, 2, 4, func(_, outer int) error {
		return ForEach(bg, 2, 8, func(_, inner int) error {
			if outer == 1 && inner == 3 {
				panic("inner kaboom")
			}
			return nil
		})
	})
	t.Fatal("unreachable: panic expected")
}

func TestUnitPanicUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	up := &UnitPanic{Index: 7, Value: fmt.Errorf("wrapped: %w", sentinel)}
	if !errors.Is(up, sentinel) {
		t.Fatal("error panic value not reachable through Unwrap")
	}
	if (&UnitPanic{Index: 1, Value: "text"}).Unwrap() != nil {
		t.Fatal("non-error panic value produced an Unwrap error")
	}
	if !strings.Contains(up.Error(), "work unit 7") {
		t.Fatalf("Error() does not name the unit: %q", up.Error())
	}
}

func TestForEachCancellation(t *testing.T) {
	// A canceled campaign must stop promptly — no new units after the
	// cancel lands — and return the clean context error.
	for _, w := range []int{1, 4} {
		ctx, cancel := context.WithCancel(bg)
		var started atomic.Int32
		err := ForEach(ctx, w, 10_000, func(_, i int) error {
			if started.Add(1) == 5 {
				cancel()
			}
			time.Sleep(100 * time.Microsecond)
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		// In-flight units (at most one per worker) may finish after the
		// cancel; nothing beyond that may start.
		if got := started.Load(); got > int32(5+w) {
			t.Fatalf("workers=%d: %d units started after cancellation at unit 5", w, got)
		}
	}
}

func TestForEachCompletedRunBeatsCancellation(t *testing.T) {
	// When every unit has completed, a cancellation that landed during the
	// final units must not turn the whole (fully computed) run into an
	// error — serial and parallel paths must agree on success.
	const n = 4
	for _, w := range []int{1, n} {
		ctx, cancel := context.WithCancel(bg)
		var claimed sync.WaitGroup
		if w == n {
			claimed.Add(n)
		}
		err := ForEach(ctx, w, n, func(_, i int) error {
			if w == n {
				// Barrier: every unit is in flight before anyone cancels,
				// so no unit can be skipped.
				claimed.Done()
				claimed.Wait()
			}
			if i == n-1 {
				cancel()
			}
			return nil
		})
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: completed run reported %v, want nil", w, err)
		}
	}
}

func TestForEachPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	called := false
	err := ForEach(ctx, 4, 100, func(_, _ int) error { called = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("no unit may start under a pre-canceled context")
	}
}

func TestForEachUnitErrorBeatsCancellation(t *testing.T) {
	// When a unit fails and the context is canceled, the more informative
	// unit error wins.
	sentinel := errors.New("unit failed")
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	err := ForEach(ctx, 1, 10, func(_, i int) error {
		if i == 3 {
			cancel()
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the unit error", err)
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	square := func(_, i int) (int, error) { return i * i, nil }
	ref, err := Map(bg, 1, 500, square)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 16} {
		got, err := Map(bg, w, 500, square)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], ref[i])
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(bg, 4, 10, func(_, i int) (int, error) {
		if i >= 5 {
			return 0, errors.New("bad")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("Map error mishandled: %v %v", out, err)
	}
}

func TestStreamEmitsInIndexOrder(t *testing.T) {
	// Whatever the completion order, emission must be 0, 1, 2, ... with
	// every index delivered exactly once.
	for _, w := range []int{1, 2, 8} {
		const n = 300
		var got []int
		err := Stream(bg, w, n,
			func(_, i int) (int, error) {
				if i%7 == 0 { // perturb completion order
					time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
				}
				return i * 10, nil
			},
			func(i, v int) error {
				if v != i*10 {
					return fmt.Errorf("emit(%d) got value %d", i, v)
				}
				got = append(got, i)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: emitted %d of %d results", w, len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: emission order broken at position %d: %d", w, i, v)
			}
		}
	}
}

func TestStreamEmitsBeforeCompletion(t *testing.T) {
	// Streaming means early results are delivered while later units are
	// still running — not folded at the end.
	release := make(chan struct{})
	emitted := make(chan int, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := Stream(bg, 2, 4,
			func(_, i int) (int, error) {
				if i == 3 {
					<-release // hold the last unit until index 0 was observed emitted
				}
				return i, nil
			},
			func(i, _ int) error { emitted <- i; return nil })
		if err != nil {
			t.Error(err)
		}
	}()
	select {
	case i := <-emitted:
		if i != 0 {
			t.Errorf("first emission = %d, want 0", i)
		}
	case <-time.After(5 * time.Second):
		t.Error("no emission while a later unit was still in flight")
	}
	close(release)
	wg.Wait()
}

func TestStreamEmitErrorAborts(t *testing.T) {
	sentinel := errors.New("sink full")
	var emits atomic.Int32
	err := Stream(bg, 4, 100,
		func(_, i int) (int, error) { return i, nil },
		func(i, _ int) error {
			emits.Add(1)
			if i == 10 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if got := emits.Load(); got != 11 {
		t.Fatalf("emit called %d times, want exactly 11 (0..10, none after the failure)", got)
	}
}

func TestStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	var emitted atomic.Int32
	err := Stream(ctx, 2, 10_000,
		func(_, i int) (int, error) { return i, nil },
		func(i, _ int) error {
			if emitted.Add(1) == 3 {
				cancel()
			}
			return nil
		})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
