// Package parallel is a deterministic worker pool for embarrassingly
// parallel simulation workloads: Monte-Carlo replicas, campaign points,
// parameter sweeps. Work units are identified by index; results land in
// index-order slots, so the outcome of a run is independent of how indices
// are interleaved across workers. Combined with per-index random streams
// (rng.Stream.Child), this yields bit-for-bit reproducible experiments at
// any worker count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean "one worker
// per available CPU" (runtime.GOMAXPROCS(0)).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(worker, i) for every i in [0, n), distributing indices
// across at most Workers(workers) goroutines via an atomic work counter.
// Two calls with the same worker value never overlap, so callers may keep
// per-worker scratch state (a reusable simulator, a buffer) in a slice
// indexed by worker without locking.
//
// When the resolved worker count is 1 — or n < 2 — everything runs inline
// on the calling goroutine with worker == 0; this is the reference serial
// path the parallel schedule must be indistinguishable from.
//
// If any fn returns an error, remaining indices may be skipped and the
// error observed for the lowest index is returned. A panic in fn is
// re-raised on the calling goroutine.
func ForEach(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		errIdx   = -1
		firstErr error
		panicked any
		panicSet bool
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if !panicSet {
						panicSet, panicked = true, r
					}
					mu.Unlock()
					failed.Store(true)
				}
			}()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(wk, i); err != nil {
					fail(i, err)
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	if panicSet {
		panic(panicked)
	}
	return firstErr
}

// Map runs fn for every index and collects the results in index order, so
// the returned slice is identical for any worker count. On error the
// partial results are discarded and the lowest-index error is returned.
func Map[T any](workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(w, i int) error {
		v, err := fn(w, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
