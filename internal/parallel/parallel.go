// Package parallel is a deterministic worker pool for embarrassingly
// parallel simulation workloads: Monte-Carlo replicas, campaign points,
// parameter sweeps. Work units are identified by index; results land in
// index-order slots, so the outcome of a run is independent of how indices
// are interleaved across workers. Combined with per-index random streams
// (rng.Stream.Child), this yields bit-for-bit reproducible experiments at
// any worker count.
//
// Every entry point takes a context.Context and cancels cooperatively:
// the pool checks the context between work units (a unit that has started
// runs to completion), so a canceled campaign stops promptly and returns
// ctx.Err() without leaving goroutines behind.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"ctsan/internal/obs"
)

// UnitPanic is the value re-raised when a work unit panics: it carries
// the index of the unit that blew up and the stack of the original
// panic site, which the re-raise on the calling goroutine would
// otherwise lose. Nested pools (points fanning out into replicas) keep
// the innermost UnitPanic, whose stack shows the full nesting.
type UnitPanic struct {
	// Index is the work-unit index passed to fn.
	Index int
	// Value is the original panic value.
	Value any
	// Stack is the stack trace captured at the panic site.
	Stack []byte
}

func (p *UnitPanic) Error() string {
	return fmt.Sprintf("parallel: work unit %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// Unwrap exposes a wrapped error panic value to errors.Is/As.
func (p *UnitPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// call invokes one work unit, converting a panic into a re-raised
// *UnitPanic identifying the unit. An already-wrapped panic from a
// nested pool passes through untouched. Each unit is bracketed by the
// obs worker-activity accounting (two atomic ops and two clock reads per
// unit — units are milliseconds of simulation, so this is noise).
func call(fn func(worker, i int) error, worker, i int) error {
	h := obs.UnitStart()
	defer func() {
		obs.UnitEnd(h)
		if r := recover(); r != nil {
			if _, wrapped := r.(*UnitPanic); wrapped {
				panic(r)
			}
			panic(&UnitPanic{Index: i, Value: r, Stack: debug.Stack()})
		}
	}()
	return fn(worker, i)
}

// Workers resolves a requested worker count: values <= 0 mean "one worker
// per available CPU" (runtime.GOMAXPROCS(0)).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// InnerWorkers splits a worker budget between an outer fan-out over
// `items` independent units and the parallelism inside each unit: the
// product of outer and inner concurrency stays near the budget instead
// of multiplying into budget² goroutines. With many outer items the
// inner work runs serially; with few items the leftover budget goes to
// their inner units.
func InnerWorkers(workers, items int) int {
	w := Workers(workers)
	if items < 1 {
		items = 1
	}
	return (w + items - 1) / items
}

// ForEach runs fn(worker, i) for every i in [0, n), distributing indices
// across at most Workers(workers) goroutines via an atomic work counter.
// Two calls with the same worker value never overlap, so callers may keep
// per-worker scratch state (a reusable simulator, a buffer) in a slice
// indexed by worker without locking.
//
// When the resolved worker count is 1 — or n < 2 — everything runs inline
// on the calling goroutine with worker == 0; this is the reference serial
// path the parallel schedule must be indistinguishable from.
//
// ctx is checked between work units: once it is canceled no new unit
// starts, in-flight units finish, and ForEach returns ctx.Err() (unless a
// unit already failed — fn errors take precedence, and the error observed
// for the lowest index is returned). A panic in fn is re-raised on the
// calling goroutine, wrapped as *UnitPanic so the failing unit's index and
// original stack survive the goroutine hop.
func ForEach(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil // vacuously complete, like a run whose units all finished
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := call(fn, 0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		done   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		errIdx   = -1
		firstErr error
		panicked any
		panicSet bool
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if !panicSet {
						panicSet, panicked = true, r
					}
					mu.Unlock()
					failed.Store(true)
				}
			}()
			for !failed.Load() && ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := call(fn, wk, i); err != nil {
					fail(i, err)
					return
				}
				done.Add(1)
			}
		}(wk)
	}
	wg.Wait()
	if panicSet {
		panic(panicked)
	}
	if firstErr != nil {
		return firstErr
	}
	if done.Load() == int64(n) {
		// Every unit completed before the cancellation landed: the result
		// set is whole, so report success — exactly what the serial path
		// does when the last unit finishes under a just-canceled context.
		return nil
	}
	return ctx.Err()
}

// Map runs fn for every index and collects the results in index order, so
// the returned slice is identical for any worker count. On error (or
// cancellation) the partial results are discarded and the lowest-index
// error — or ctx.Err() — is returned.
func Map[T any](ctx context.Context, workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(w, i int) error {
		v, err := fn(w, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stream is Map with streaming delivery: as soon as the contiguous prefix
// of results is complete, each result is handed to emit(i, v) in strict
// index order, regardless of which workers produced them or when. emit
// calls are serialized (never concurrent with one another) but may run on
// different worker goroutines; they must not block on the producers.
//
// An error from emit aborts the run like an error from fn. On error or
// cancellation, results already emitted stay emitted — Stream makes no
// attempt to retract them — and undelivered buffered results are dropped.
func Stream[T any](ctx context.Context, workers, n int, fn func(worker, i int) (T, error), emit func(i int, v T) error) error {
	var (
		mu       sync.Mutex
		buf      = make([]T, n)
		ready    = make([]bool, n)
		nextOut  int
		emitDead bool // a previous emit failed; never emit again
	)
	return ForEach(ctx, workers, n, func(w, i int) error {
		v, err := fn(w, i)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		buf[i], ready[i] = v, true
		for !emitDead && nextOut < n && ready[nextOut] {
			if err := emit(nextOut, buf[nextOut]); err != nil {
				emitDead = true
				return err
			}
			var zero T
			buf[nextOut] = zero // release emitted values for the collector
			nextOut++
		}
		return nil
	})
}
