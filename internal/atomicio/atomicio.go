// Package atomicio provides crash-safe file replacement: the
// write-to-temp, fsync, rename, fsync-directory sequence that guarantees
// a reader never observes a torn file — after a crash at any instant the
// path holds either the complete old content or the complete new
// content, never a prefix.
//
// It is the single implementation of that sequence in the repository:
// the checkpoint store (internal/checkpoint) appends through it,
// cmd/benchjson writes BENCH_emulation.json with it, and golden-file
// -update writers use it, so an interrupted run can never leave a
// half-written artifact that a later run (or a resume) trips over.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces the file at path with data. The data is
// first written to a temporary file in the same directory (rename is
// only atomic within a filesystem), fsynced, then renamed over path, and
// the directory is fsynced so the rename itself survives a crash. On
// error the temporary file is removed; path is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on must not leave the temp file behind.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-performed rename is durable. Some
// filesystems refuse to fsync directories; those errors are ignored —
// the rename is still atomic, just not yet guaranteed durable, which is
// the best available on such systems.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
