package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("content = %q", got)
	}
	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("content after replace = %q", got)
	}
}

func TestWriteFileLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	if err := WriteFile(path, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	// A failed write (target is a directory, rename must fail) must clean
	// its temp file and leave the target untouched.
	blocked := filepath.Join(dir, "blocked")
	if err := os.Mkdir(blocked, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(blocked, []byte("y"), 0o600); err == nil {
		t.Fatal("writing over a directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp debris left behind: %s", e.Name())
		}
	}
}

func TestWriteFilePermissions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "secret")
	if err := WriteFile(path, []byte("k"), 0o600); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != 0o600 {
		t.Fatalf("perm = %o, want 600", got)
	}
}
