// Package shard plans and supervises the pieces of a sharded campaign.
//
// A sharded run splits a study grid into contiguous index ranges (Plan),
// executes each range as an isolated attempt — typically a subprocess,
// so a panic or OOM kill takes down one shard, not the campaign — and
// verifies completion against the shard's checkpoint before moving on
// (Run). Failed or incomplete shards are retried with exponential
// backoff up to a bounded attempt budget; because every completed point
// is checkpointed durably, a retry re-executes only what the previous
// attempt did not finish.
//
// The package is deliberately mechanism-only: it knows nothing about
// studies, checkpoints, or processes. Callers supply an Exec that runs
// one attempt and a Complete predicate that inspects durable state, so
// the same supervisor drives subprocess shards in cmd/ctsan and plain
// in-process functions in tests.
package shard

import (
	"context"
	"fmt"
	"time"

	"ctsan/internal/obs"
	"ctsan/internal/parallel"
)

// Range is a half-open interval [Start, End) of grid indices.
type Range struct {
	Start, End int
}

// String renders the range in the a:b form the ctsan CLI accepts.
func (r Range) String() string { return fmt.Sprintf("%d:%d", r.Start, r.End) }

// Len is the number of indices in the range.
func (r Range) Len() int { return r.End - r.Start }

// Plan splits total grid points into min(shards, total) contiguous
// ranges whose lengths differ by at most one, earlier ranges getting the
// remainder. The plan is a pure function of (total, shards): every
// participant of a distributed run computes the identical layout.
func Plan(total, shards int) ([]Range, error) {
	if total <= 0 {
		return nil, fmt.Errorf("shard: plan over %d points", total)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("shard: plan with %d shards", shards)
	}
	if shards > total {
		shards = total
	}
	ranges := make([]Range, shards)
	base, rem := total/shards, total%shards
	start := 0
	for i := range ranges {
		n := base
		if i < rem {
			n++
		}
		ranges[i] = Range{Start: start, End: start + n}
		start += n
	}
	return ranges, nil
}

// ParseRange parses the a:b form produced by Range.String.
func ParseRange(s string) (Range, error) {
	var r Range
	if _, err := fmt.Sscanf(s, "%d:%d", &r.Start, &r.End); err != nil {
		return Range{}, fmt.Errorf("shard: range %q is not start:end", s)
	}
	if r.Start < 0 || r.End <= r.Start {
		return Range{}, fmt.Errorf("shard: empty or negative range %q", s)
	}
	return r, nil
}

// Exec runs one attempt at completing a range (attempt counts from 0).
// The context carries the per-attempt timeout; an Exec that launches a
// subprocess should kill it when the context ends.
type Exec func(ctx context.Context, r Range, attempt int) error

// Complete reports whether a range's durable state (its checkpoint)
// holds every point. It is consulted before the first attempt (resume:
// finished shards are skipped) and after every attempt (verification:
// an attempt only counts if the checkpoint proves it).
type Complete func(r Range) (bool, error)

// Options tunes the supervisor.
type Options struct {
	// Timeout bounds each attempt; 0 means no per-attempt deadline.
	Timeout time.Duration
	// Retries is how many times a failed or incomplete shard is re-run
	// after its first attempt (so Retries+1 attempts total).
	Retries int
	// Backoff is the delay before the first retry, doubling with each
	// subsequent one. 0 defaults to 250ms.
	Backoff time.Duration
	// Procs caps how many shards run concurrently; <=0 means one per CPU.
	Procs int
	// Logf, when non-nil, receives supervisor progress lines (skips,
	// retries, failures).
	Logf func(format string, args ...any)
}

// Run supervises all ranges to completion. Shards run concurrently up
// to Procs; each is skipped if already complete, otherwise attempted up
// to Retries+1 times with exponential backoff, and an attempt succeeds
// only if Complete confirms the checkpoint afterwards — an Exec error
// with a complete checkpoint (crash after the last point was persisted)
// still counts as success, and a clean Exec exit with holes in the
// checkpoint does not.
//
// A shard that exhausts its attempts fails the run: in-flight shards
// finish, unstarted ones are not launched, and the lowest-index failure
// is returned. Completed shards keep their checkpoints, so re-running
// resumes instead of restarting.
func Run(ctx context.Context, ranges []Range, o Options, exec Exec, complete Complete) error {
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	backoff := o.Backoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	return parallel.ForEach(ctx, o.Procs, len(ranges), func(_, i int) error {
		return supervise(ctx, ranges[i], o, backoff, logf, exec, complete)
	})
}

func supervise(ctx context.Context, r Range, o Options, backoff time.Duration, logf func(string, ...any), exec Exec, complete Complete) error {
	if done, err := complete(r); err != nil {
		return fmt.Errorf("shard %s: checkpoint: %w", r, err)
	} else if done {
		logf("shard %s: already complete, skipping", r)
		return nil
	}
	var lastErr error
	for attempt := 0; attempt <= o.Retries; attempt++ {
		if attempt > 0 {
			delay := backoff << (attempt - 1)
			obs.ShardRetries.Add(1)
			obs.ShardBackoffMS.Add(delay.Milliseconds())
			logf("shard %s: attempt %d failed (%v), retrying in %v", r, attempt, lastErr, delay)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
		}
		obs.ShardAttempts.Add(1)
		logf("shard %s: attempt %d/%d starting (%d points)", r, attempt+1, o.Retries+1, r.Len())
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if o.Timeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, o.Timeout)
		}
		start := time.Now()
		execErr := exec(attemptCtx, r, attempt)
		cancel()
		// The checkpoint, not the exit status, decides: a shard that died
		// after persisting its last point is done, and one that exited
		// cleanly with holes in its checkpoint is not.
		done, err := complete(r)
		if err != nil {
			return fmt.Errorf("shard %s: checkpoint: %w", r, err)
		}
		if done {
			logf("shard %s: complete after attempt %d (%.1fs)", r, attempt+1, time.Since(start).Seconds())
			return nil
		}
		if execErr == nil {
			execErr = fmt.Errorf("exec reported success but checkpoint is incomplete")
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = execErr
	}
	return fmt.Errorf("shard %s: failed after %d attempts: %w", r, o.Retries+1, lastErr)
}
