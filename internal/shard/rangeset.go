package shard

import (
	"fmt"
	"sort"
	"strings"
)

// RangeSet is an ordered set of grid indices stored as sorted, disjoint,
// non-adjacent half-open ranges. It is the coordinator-side bookkeeping
// of a fleet campaign: the pending (not completed, not leased) indices
// start as one range covering the whole grid, leases take contiguous
// chunks off the front, and expired leases merge their unfinished ranges
// back in. Operations keep the canonical form, so TakeFront always hands
// out a contiguous range — the shape RunShardRange executes natively.
//
// The zero value is an empty set. RangeSet is not goroutine-safe; the
// lease manager guards it with its own mutex.
type RangeSet struct {
	rs []Range
}

// Add merges range r into the set. Overlapping or adjacent ranges are
// coalesced, so re-adding indices already present is harmless.
func (s *RangeSet) Add(r Range) {
	if r.Len() <= 0 {
		return
	}
	// First range whose end reaches r.Start (adjacency merges too).
	i := sort.Search(len(s.rs), func(i int) bool { return s.rs[i].End >= r.Start })
	j := i
	for j < len(s.rs) && s.rs[j].Start <= r.End {
		if s.rs[j].Start < r.Start {
			r.Start = s.rs[j].Start
		}
		if s.rs[j].End > r.End {
			r.End = s.rs[j].End
		}
		j++
	}
	s.rs = append(s.rs[:i], append([]Range{r}, s.rs[j:]...)...)
}

// TakeFront removes and returns up to max indices from the lowest range
// in the set. The returned range is contiguous; an empty set (or max <=
// 0) returns the zero Range (Len() == 0).
func (s *RangeSet) TakeFront(max int) Range {
	if len(s.rs) == 0 || max <= 0 {
		return Range{}
	}
	first := &s.rs[0]
	take := Range{Start: first.Start, End: first.End}
	if take.Len() > max {
		take.End = take.Start + max
		first.Start = take.End
		return take
	}
	s.rs = s.rs[1:]
	return take
}

// Remove deletes a single index from the set if present (splitting its
// range when it sits in the middle). It reports whether the index was
// present.
func (s *RangeSet) Remove(idx int) bool {
	i := sort.Search(len(s.rs), func(i int) bool { return s.rs[i].End > idx })
	if i == len(s.rs) || s.rs[i].Start > idx {
		return false
	}
	r := s.rs[i]
	switch {
	case r.Len() == 1:
		s.rs = append(s.rs[:i], s.rs[i+1:]...)
	case idx == r.Start:
		s.rs[i].Start++
	case idx == r.End-1:
		s.rs[i].End--
	default:
		s.rs = append(s.rs[:i], append([]Range{{Start: r.Start, End: idx}, {Start: idx + 1, End: r.End}}, s.rs[i+1:]...)...)
	}
	return true
}

// Points is the number of indices in the set.
func (s *RangeSet) Points() int {
	n := 0
	for _, r := range s.rs {
		n += r.Len()
	}
	return n
}

// Empty reports whether the set holds no indices.
func (s *RangeSet) Empty() bool { return len(s.rs) == 0 }

// Ranges returns a copy of the canonical range list (sorted, disjoint,
// non-adjacent).
func (s *RangeSet) Ranges() []Range {
	out := make([]Range, len(s.rs))
	copy(out, s.rs)
	return out
}

// String renders the set as "a:b,c:d" for logs and errors.
func (s *RangeSet) String() string {
	parts := make([]string, len(s.rs))
	for i, r := range s.rs {
		parts[i] = r.String()
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, ",")
}

// check panics if the internal invariant (sorted, disjoint, non-adjacent,
// non-empty ranges) is violated; tests call it after mutation sequences.
func (s *RangeSet) check() error {
	for i, r := range s.rs {
		if r.Len() <= 0 {
			return fmt.Errorf("rangeset: empty range %s at %d", r, i)
		}
		if i > 0 && s.rs[i-1].End >= r.Start {
			return fmt.Errorf("rangeset: ranges %s and %s overlap or touch", s.rs[i-1], r)
		}
	}
	return nil
}
