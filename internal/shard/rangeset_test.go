package shard

import (
	"math/rand"
	"testing"
)

func TestRangeSetAddMergesAndCoalesces(t *testing.T) {
	var s RangeSet
	s.Add(Range{Start: 0, End: 3})
	s.Add(Range{Start: 5, End: 8})
	if got := s.String(); got != "0:3,5:8" {
		t.Fatalf("disjoint add: %s", got)
	}
	s.Add(Range{Start: 3, End: 5}) // adjacent on both sides: one range
	if got := s.String(); got != "0:8" {
		t.Fatalf("adjacency merge: %s", got)
	}
	s.Add(Range{Start: 2, End: 6}) // fully contained: no-op
	if got, n := s.String(), s.Points(); got != "0:8" || n != 8 {
		t.Fatalf("contained add: %s (%d points)", got, n)
	}
	if err := s.check(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeSetTakeFront(t *testing.T) {
	var s RangeSet
	s.Add(Range{Start: 10, End: 14})
	s.Add(Range{Start: 20, End: 21})
	if r := s.TakeFront(3); r != (Range{Start: 10, End: 13}) {
		t.Fatalf("partial take: %s", r)
	}
	if r := s.TakeFront(100); r != (Range{Start: 13, End: 14}) {
		t.Fatalf("rest-of-range take: %s", r)
	}
	if r := s.TakeFront(1); r != (Range{Start: 20, End: 21}) {
		t.Fatalf("next-range take: %s", r)
	}
	if !s.Empty() {
		t.Fatalf("set not drained: %s", s.String())
	}
	if r := s.TakeFront(1); r.Len() != 0 {
		t.Fatalf("empty take: %s", r)
	}
}

func TestRangeSetRemoveSplits(t *testing.T) {
	var s RangeSet
	s.Add(Range{Start: 0, End: 5})
	if !s.Remove(2) {
		t.Fatal("mid remove reported absent")
	}
	if got := s.String(); got != "0:2,3:5" {
		t.Fatalf("mid split: %s", got)
	}
	if !s.Remove(0) || !s.Remove(4) {
		t.Fatal("edge removes reported absent")
	}
	if got := s.String(); got != "1:2,3:4" {
		t.Fatalf("edge trims: %s", got)
	}
	if s.Remove(2) {
		t.Fatal("absent index reported removed")
	}
	if !s.Remove(1) || !s.Remove(3) || !s.Empty() {
		t.Fatalf("single-point removes: %s", s.String())
	}
	if err := s.check(); err != nil {
		t.Fatal(err)
	}
}

// TestRangeSetRandomAgainstMap drives the set with random ops against a
// plain map-of-indices model.
func TestRangeSetRandomAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s RangeSet
	model := map[int]bool{}
	const span = 64
	for op := 0; op < 4000; op++ {
		switch rng.Intn(3) {
		case 0:
			a := rng.Intn(span)
			b := a + 1 + rng.Intn(8)
			s.Add(Range{Start: a, End: b})
			for i := a; i < b; i++ {
				model[i] = true
			}
		case 1:
			i := rng.Intn(span)
			got := s.Remove(i)
			if got != model[i] {
				t.Fatalf("op %d: Remove(%d) = %v, model %v", op, i, got, model[i])
			}
			delete(model, i)
		case 2:
			max := 1 + rng.Intn(5)
			r := s.TakeFront(max)
			if r.Len() > max {
				t.Fatalf("op %d: TakeFront(%d) returned %s", op, max, r)
			}
			for i := r.Start; i < r.End; i++ {
				if !model[i] {
					t.Fatalf("op %d: TakeFront returned absent index %d", op, i)
				}
				delete(model, i)
			}
		}
		if err := s.check(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if s.Points() != len(model) {
			t.Fatalf("op %d: %d points, model %d", op, s.Points(), len(model))
		}
	}
}
