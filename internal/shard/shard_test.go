package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPlan(t *testing.T) {
	for _, tc := range []struct {
		total, shards int
		want          []Range
	}{
		{5, 2, []Range{{0, 3}, {3, 5}}},
		{6, 3, []Range{{0, 2}, {2, 4}, {4, 6}}},
		{3, 5, []Range{{0, 1}, {1, 2}, {2, 3}}}, // more shards than points
		{1, 1, []Range{{0, 1}}},
		{7, 3, []Range{{0, 3}, {3, 5}, {5, 7}}},
	} {
		got, err := Plan(tc.total, tc.shards)
		if err != nil {
			t.Fatalf("Plan(%d,%d): %v", tc.total, tc.shards, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("Plan(%d,%d) = %v, want %v", tc.total, tc.shards, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Plan(%d,%d) = %v, want %v", tc.total, tc.shards, got, tc.want)
			}
		}
	}
	if _, err := Plan(0, 2); err == nil {
		t.Fatal("Plan over zero points succeeded")
	}
	if _, err := Plan(5, 0); err == nil {
		t.Fatal("Plan with zero shards succeeded")
	}
}

func TestPlanCoversEveryIndexExactlyOnce(t *testing.T) {
	for total := 1; total <= 40; total++ {
		for shards := 1; shards <= 10; shards++ {
			ranges, err := Plan(total, shards)
			if err != nil {
				t.Fatal(err)
			}
			next := 0
			for _, r := range ranges {
				if r.Start != next || r.Len() < 1 {
					t.Fatalf("Plan(%d,%d) = %v: gap or empty range", total, shards, ranges)
				}
				next = r.End
			}
			if next != total {
				t.Fatalf("Plan(%d,%d) covers %d points", total, shards, next)
			}
			// Near-equal: lengths differ by at most one.
			min, max := total, 0
			for _, r := range ranges {
				if r.Len() < min {
					min = r.Len()
				}
				if r.Len() > max {
					max = r.Len()
				}
			}
			if max-min > 1 {
				t.Fatalf("Plan(%d,%d) = %v: unbalanced", total, shards, ranges)
			}
		}
	}
}

func TestParseRange(t *testing.T) {
	r, err := ParseRange("3:7")
	if err != nil || r != (Range{3, 7}) {
		t.Fatalf("ParseRange(3:7) = %v, %v", r, err)
	}
	if r.String() != "3:7" {
		t.Fatalf("round trip gave %q", r.String())
	}
	for _, bad := range []string{"", "3", "a:b", "5:5", "7:3", "-1:2"} {
		if _, err := ParseRange(bad); err == nil {
			t.Errorf("ParseRange(%q) succeeded", bad)
		}
	}
}

// fakeShards is an in-memory stand-in for checkpointed subprocesses:
// exec attempts mark ranges complete (or fail), complete consults the
// shared map.
type fakeShards struct {
	mu       sync.Mutex
	complete map[Range]bool
	attempts map[Range]int
}

func newFakeShards() *fakeShards {
	return &fakeShards{complete: make(map[Range]bool), attempts: make(map[Range]int)}
}

func (f *fakeShards) isComplete(r Range) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.complete[r], nil
}

func (f *fakeShards) attempt(r Range) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attempts[r]++
	return f.attempts[r]
}

func (f *fakeShards) markComplete(r Range) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.complete[r] = true
}

var quick = Options{Backoff: time.Millisecond, Retries: 3, Procs: 2}

func TestRunExecutesAndVerifies(t *testing.T) {
	f := newFakeShards()
	ranges, _ := Plan(10, 3)
	err := Run(context.Background(), ranges, quick,
		func(ctx context.Context, r Range, attempt int) error {
			f.attempt(r)
			f.markComplete(r)
			return nil
		}, f.isComplete)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranges {
		if f.attempts[r] != 1 {
			t.Fatalf("range %s attempted %d times", r, f.attempts[r])
		}
	}
}

func TestRunSkipsCompleteShards(t *testing.T) {
	f := newFakeShards()
	ranges, _ := Plan(6, 3)
	f.markComplete(ranges[1])
	var lines []string
	o := quick
	o.Procs = 1
	o.Logf = func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }
	err := Run(context.Background(), ranges, o,
		func(ctx context.Context, r Range, attempt int) error {
			f.attempt(r)
			f.markComplete(r)
			return nil
		}, f.isComplete)
	if err != nil {
		t.Fatal(err)
	}
	if f.attempts[ranges[1]] != 0 {
		t.Fatal("complete shard was re-executed")
	}
	// The supervisor logs structured per-range progress: the complete
	// shard logs exactly its skip, the others a start and a completion.
	var skips, starts, completes int
	for _, l := range lines {
		switch {
		case strings.Contains(l, "skipping"):
			skips++
			if !strings.Contains(l, ranges[1].String()) {
				t.Fatalf("skip logged for wrong range: %q", l)
			}
		case strings.Contains(l, "starting"):
			starts++
			if strings.Contains(l, ranges[1].String()) {
				t.Fatalf("complete shard logged a start: %q", l)
			}
		case strings.Contains(l, "complete after"):
			completes++
		}
	}
	if skips != 1 || starts != 2 || completes != 2 {
		t.Fatalf("expected 1 skip / 2 starts / 2 completions, got %v", lines)
	}
}

func TestRunRetriesCrashedShard(t *testing.T) {
	f := newFakeShards()
	ranges, _ := Plan(4, 2)
	err := Run(context.Background(), ranges, quick,
		func(ctx context.Context, r Range, attempt int) error {
			// The first range dies twice before succeeding — a crashing
			// subprocess. Isolation means the campaign survives.
			if n := f.attempt(r); r.Start == 0 && n < 3 {
				return errors.New("signal: killed")
			}
			f.markComplete(r)
			return nil
		}, f.isComplete)
	if err != nil {
		t.Fatal(err)
	}
	if f.attempts[ranges[0]] != 3 {
		t.Fatalf("crashing shard attempted %d times, want 3", f.attempts[ranges[0]])
	}
	if f.attempts[ranges[1]] != 1 {
		t.Fatalf("healthy shard attempted %d times, want 1", f.attempts[ranges[1]])
	}
}

func TestRunTrustsCheckpointOverExitStatus(t *testing.T) {
	f := newFakeShards()
	ranges, _ := Plan(2, 1)
	// The process dies *after* persisting its last point: no retry needed.
	err := Run(context.Background(), ranges, quick,
		func(ctx context.Context, r Range, attempt int) error {
			f.attempt(r)
			f.markComplete(r)
			return errors.New("signal: killed")
		}, f.isComplete)
	if err != nil {
		t.Fatal(err)
	}
	if f.attempts[ranges[0]] != 1 {
		t.Fatalf("shard attempted %d times, want 1", f.attempts[ranges[0]])
	}

	// The inverse: a clean exit without a complete checkpoint is a
	// failure, retried and eventually fatal.
	f2 := newFakeShards()
	err = Run(context.Background(), ranges, quick,
		func(ctx context.Context, r Range, attempt int) error {
			f2.attempt(r)
			return nil
		}, f2.isComplete)
	if err == nil {
		t.Fatal("lying exec accepted")
	}
	if !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("error does not name the incomplete checkpoint: %v", err)
	}
	if f2.attempts[ranges[0]] != quick.Retries+1 {
		t.Fatalf("attempted %d times, want %d", f2.attempts[ranges[0]], quick.Retries+1)
	}
}

func TestRunTimeoutBoundsAttempt(t *testing.T) {
	f := newFakeShards()
	ranges, _ := Plan(1, 1)
	o := quick
	o.Timeout = 10 * time.Millisecond
	err := Run(context.Background(), ranges, o,
		func(ctx context.Context, r Range, attempt int) error {
			if f.attempt(r) == 1 {
				// A hung shard: blocks until the per-attempt deadline.
				<-ctx.Done()
				return ctx.Err()
			}
			f.markComplete(r)
			return nil
		}, f.isComplete)
	if err != nil {
		t.Fatal(err)
	}
	if f.attempts[ranges[0]] != 2 {
		t.Fatalf("hung shard attempted %d times, want 2", f.attempts[ranges[0]])
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	f := newFakeShards()
	ranges, _ := Plan(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	o := quick
	o.Backoff = time.Hour // cancellation must cut the backoff sleep short
	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		errc <- Run(ctx, ranges, o,
			func(ctx context.Context, r Range, attempt int) error {
				f.attempt(r)
				return errors.New("boom")
			}, f.isComplete)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}
