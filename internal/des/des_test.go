package des

import (
	"sort"
	"testing"
	"testing/quick"

	"ctsan/internal/rng"
)

func TestOrdering(t *testing.T) {
	var s Sim
	var got []float64
	for _, tt := range []float64{5, 1, 3, 2, 4} {
		tt := tt
		s.At(tt, func() { got = append(got, tt) })
	}
	s.Run(nil)
	if !sort.Float64sAreSorted(got) || len(got) != 5 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != 5 {
		t.Fatalf("final time %v", s.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	var s Sim
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1, func() { got = append(got, i) })
	}
	s.Run(nil)
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	var s Sim
	fired := false
	h := s.At(1, func() { fired = true })
	if !h.Valid() {
		t.Fatal("fresh handle invalid")
	}
	s.Cancel(h)
	if h.Valid() {
		t.Fatal("cancelled handle still valid")
	}
	s.Run(nil)
	if fired {
		t.Fatal("cancelled event fired")
	}
	s.Cancel(h) // double cancel is a no-op
}

func TestCancelDuringRun(t *testing.T) {
	var s Sim
	var h2 Handle
	fired := false
	s.At(1, func() { s.Cancel(h2) })
	h2 = s.At(2, func() { fired = true })
	s.Run(nil)
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var s Sim
	var times []float64
	s.After(1, func() {
		s.After(2, func() { times = append(times, s.Now()) })
		times = append(times, s.Now())
	})
	s.Run(nil)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("nested scheduling times: %v", times)
	}
}

func TestPastPanics(t *testing.T) {
	var s Sim
	s.At(5, func() {})
	s.Run(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeAfterClamps(t *testing.T) {
	var s Sim
	fired := false
	s.After(-3, func() { fired = true })
	s.Run(nil)
	if !fired || s.Now() != 0 {
		t.Fatal("After with negative delay mishandled")
	}
}

func TestRunUntil(t *testing.T) {
	var s Sim
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 || s.Now() != 2.5 {
		t.Fatalf("RunUntil: fired %v, now %v", fired, s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestRunStopPredicate(t *testing.T) {
	var s Sim
	count := 0
	for i := 0; i < 10; i++ {
		s.At(float64(i), func() { count++ })
	}
	s.Run(func() bool { return count == 3 })
	if count != 3 {
		t.Fatalf("stop predicate ignored: count %d", count)
	}
}

func TestPeekAndEmpty(t *testing.T) {
	var s Sim
	if !s.Empty() {
		t.Fatal("new sim not empty")
	}
	if _, ok := s.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue")
	}
	s.At(7, func() {})
	if tt, ok := s.PeekTime(); !ok || tt != 7 {
		t.Fatalf("PeekTime = %v,%v", tt, ok)
	}
}

// TestRandomScheduleProperty: any random schedule (with random
// cancellations) executes events in non-decreasing time order and never
// executes cancelled ones.
func TestRandomScheduleProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		var s Sim
		type ev struct {
			t         float64
			cancelled bool
		}
		events := make([]*ev, 50)
		handles := make([]Handle, 50)
		var fired []float64
		bad := false
		for i := range events {
			e := &ev{t: r.Float64() * 100}
			events[i] = e
			i := i
			handles[i] = s.At(e.t, func() {
				if events[i].cancelled {
					bad = true
				}
				fired = append(fired, events[i].t)
			})
		}
		for i := range events {
			if r.Float64() < 0.3 {
				events[i].cancelled = true
				s.Cancel(handles[i])
			}
		}
		s.Run(nil)
		if bad || !sort.Float64sAreSorted(fired) {
			return false
		}
		want := 0
		for _, e := range events {
			if !e.cancelled {
				want++
			}
		}
		return len(fired) == want
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRewidthFarFutureOrdering schedules a far-future straggler behind a
// dense event chain that drives the width adaptation. After the rewidth
// the straggler's recomputed virtual bucket lands just above where the
// (rebased) scan cursor sits; with a stale cursor in old-width units,
// locate's fast path would exact-match it and fire it before the rest of
// the chain, rewinding the clock.
func TestRewidthFarFutureOrdering(t *testing.T) {
	var s Sim
	var fired []float64
	// 10ms chain: after rewidthPeriod pops the mean gap (10) has drifted
	// a factor >2 from the initial width (1), so the width adapts to 20.
	n := 0
	var tick func()
	tick = func() {
		fired = append(fired, s.Now())
		if n++; n < rewidthPeriod+64 {
			s.After(10, tick)
		}
	}
	s.After(10, tick)
	// Straggler chosen so its width-20 virtual bucket (40965) falls inside
	// one ring span of the chain's old-width cursor at the rewidth pop
	// (t=40960, old vb 40960).
	const far = 819300
	s.At(far, func() { fired = append(fired, s.Now()) })
	s.Run(nil)
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events fired out of time order across rewidth")
	}
	if len(fired) == 0 || fired[len(fired)-1] != far {
		t.Fatalf("far-future event did not fire last: tail %v", fired[len(fired)-1])
	}
	if s.Now() != far {
		t.Fatalf("final time %v, want %v", s.Now(), float64(far))
	}
}

// TestHugeTimeOrdering: event times large enough to overflow the
// float64→int64 virtual-bucket conversion are clamped, not wrapped to a
// negative index that locate would treat as "no live events".
func TestHugeTimeOrdering(t *testing.T) {
	var s Sim
	var fired []float64
	for _, tt := range []float64{1, 1e19, 9.5e18, 2} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	s.Run(nil)
	if len(fired) != 4 || !sort.Float64sAreSorted(fired) {
		t.Fatalf("huge-time events mishandled: %v", fired)
	}
	if s.Now() != 1e19 {
		t.Fatalf("final time %v", s.Now())
	}
}

func TestSteps(t *testing.T) {
	var s Sim
	for i := 0; i < 5; i++ {
		s.At(float64(i), func() {})
	}
	s.Run(nil)
	if s.Steps() != 5 {
		t.Fatalf("Steps = %d", s.Steps())
	}
}
