// Package des is a minimal discrete-event simulation kernel: a virtual
// clock and a cancellable binary-heap event queue. Both the cluster
// emulator (internal/netsim) and the SAN solver (internal/san) are built
// on it.
//
// Time is a float64 number of milliseconds, matching the unit used
// throughout the paper. Events scheduled at equal times fire in FIFO order
// of scheduling, which keeps simulations deterministic.
//
// Event records are pooled on a per-Sim free list: once the pool is warm,
// scheduling and firing events performs no heap allocation, which matters
// for the Monte-Carlo campaigns that execute hundreds of millions of
// events. Handles carry a generation number so that a handle to a fired or
// cancelled event stays invalid even after its record is recycled.
package des

import (
	"container/heap"

	"ctsan/internal/trace"
)

// event is a scheduled callback record. Records are recycled through the
// owning Sim's free list; gen disambiguates incarnations.
type event struct {
	time  float64
	seq   uint64 // tie-breaker: FIFO among equal times
	fn    func()
	index int    // heap index, -1 when popped/cancelled
	gen   uint64 // incremented on every recycle
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid. A Handle refers to one incarnation of a (pooled)
// event record: once the event fires or is cancelled, the handle goes
// stale and all operations on it are no-ops.
type Handle struct {
	ev  *event
	gen uint64
}

// Valid reports whether the handle refers to a scheduled (not yet fired,
// not cancelled) event. Firing and cancelling both retire the record with
// a new generation, so a matching generation implies the event is queued.
func (h Handle) Valid() bool {
	return h.ev != nil && h.gen == h.ev.gen && h.ev.index >= 0
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator. The zero value is ready to use.
// Sim is not safe for concurrent use.
type Sim struct {
	now    float64
	seq    uint64
	queue  eventHeap
	free   []*event // recycled event records
	nsteps uint64
	tr     *trace.Tracer
}

// SetTracer attaches (or with nil detaches) an execution tracer. Every
// schedule and fire emits one record; a nil tracer costs a single branch
// per site.
func (s *Sim) SetTracer(tr *trace.Tracer) { s.tr = tr }

// Now returns the current virtual time in milliseconds.
func (s *Sim) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() uint64 { return s.nsteps }

// alloc takes an event record off the free list, or allocates one.
func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// release retires an event record to the free list, invalidating every
// outstanding Handle to it by bumping the generation.
func (s *Sim) release(ev *event) {
	ev.fn = nil
	ev.index = -1
	ev.gen++
	s.free = append(s.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug.
func (s *Sim) At(t float64, fn func()) Handle {
	if t < s.now {
		panic("des: scheduling event in the past")
	}
	ev := s.alloc()
	ev.time, ev.seq, ev.fn = t, s.seq, fn
	s.seq++
	heap.Push(&s.queue, ev)
	if s.tr != nil {
		s.tr.Emit(trace.Event{T: s.now, Kind: trace.KindSchedule, X: t})
	}
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules fn to run d milliseconds from now.
func (s *Sim) After(d float64, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an already
// fired or cancelled event is a no-op.
func (s *Sim) Cancel(h Handle) {
	if !h.Valid() {
		return
	}
	heap.Remove(&s.queue, h.ev.index)
	s.release(h.ev)
}

// Empty reports whether no events remain.
func (s *Sim) Empty() bool { return len(s.queue) == 0 }

// PeekTime returns the time of the next event, or ok=false if none.
func (s *Sim) PeekTime() (t float64, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].time, true
}

// Step executes the next event. It reports whether an event was executed.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.time
	s.nsteps++
	if s.tr != nil {
		s.tr.Emit(trace.Event{T: s.now, Kind: trace.KindFire})
	}
	fn := ev.fn
	// Release before running so fn can immediately reuse the record; the
	// handle to this event is already stale either way.
	s.release(ev)
	fn()
	return true
}

// Run executes events until the queue is empty or until stop returns true
// (checked after each event). A nil stop runs to exhaustion. It returns the
// final virtual time.
func (s *Sim) Run(stop func() bool) float64 {
	for s.Step() {
		if stop != nil && stop() {
			break
		}
	}
	return s.now
}

// RunUntil executes events with time <= tmax. Events beyond tmax remain
// queued; the clock is advanced to tmax if the run was truncated.
func (s *Sim) RunUntil(tmax float64) {
	for {
		t, ok := s.PeekTime()
		if !ok || t > tmax {
			break
		}
		s.Step()
	}
	if s.now < tmax {
		s.now = tmax
	}
}

// Reset returns the simulator to its initial state — time zero, empty
// queue, zero counters, no tracer — retaining the event pool and queue
// capacity so a reused Sim schedules without allocating. Outstanding
// handles to pending events are invalidated. Detaching the tracer here
// keeps reset-then-run bit-identical to construct-then-run; callers that
// trace successive runs re-attach after Reset.
func (s *Sim) Reset() {
	for _, ev := range s.queue {
		s.release(ev)
	}
	s.queue = s.queue[:0]
	s.now, s.seq, s.nsteps = 0, 0, 0
	s.tr = nil
}
