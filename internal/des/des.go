// Package des is a minimal discrete-event simulation kernel: a virtual
// clock and a cancellable binary-heap event queue. Both the cluster
// emulator (internal/netsim) and the SAN solver (internal/san) are built
// on it.
//
// Time is a float64 number of milliseconds, matching the unit used
// throughout the paper. Events scheduled at equal times fire in FIFO order
// of scheduling, which keeps simulations deterministic.
package des

import "container/heap"

// Event is a scheduled callback. The zero Handle is invalid.
type event struct {
	time   float64
	seq    uint64 // tie-breaker: FIFO among equal times
	fn     func()
	index  int // heap index, -1 when popped/cancelled
	cancel bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	ev *event
}

// Valid reports whether the handle refers to a scheduled (not yet fired,
// not cancelled) event.
func (h Handle) Valid() bool { return h.ev != nil && h.ev.index >= 0 && !h.ev.cancel }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator. The zero value is ready to use.
// Sim is not safe for concurrent use.
type Sim struct {
	now    float64
	seq    uint64
	queue  eventHeap
	nsteps uint64
}

// Now returns the current virtual time in milliseconds.
func (s *Sim) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() uint64 { return s.nsteps }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug.
func (s *Sim) At(t float64, fn func()) Handle {
	if t < s.now {
		panic("des: scheduling event in the past")
	}
	ev := &event{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return Handle{ev: ev}
}

// After schedules fn to run d milliseconds from now.
func (s *Sim) After(d float64, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an already
// fired or cancelled event is a no-op.
func (s *Sim) Cancel(h Handle) {
	if h.ev == nil || h.ev.cancel {
		return
	}
	h.ev.cancel = true
	if h.ev.index >= 0 {
		heap.Remove(&s.queue, h.ev.index)
	}
}

// Empty reports whether no events remain.
func (s *Sim) Empty() bool { return len(s.queue) == 0 }

// PeekTime returns the time of the next event, or ok=false if none.
func (s *Sim) PeekTime() (t float64, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].time, true
}

// Step executes the next event. It reports whether an event was executed.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.cancel {
			continue
		}
		s.now = ev.time
		s.nsteps++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or until stop returns true
// (checked after each event). A nil stop runs to exhaustion. It returns the
// final virtual time.
func (s *Sim) Run(stop func() bool) float64 {
	for s.Step() {
		if stop != nil && stop() {
			break
		}
	}
	return s.now
}

// RunUntil executes events with time <= tmax. Events beyond tmax remain
// queued; the clock is advanced to tmax if the run was truncated.
func (s *Sim) RunUntil(tmax float64) {
	for {
		t, ok := s.PeekTime()
		if !ok || t > tmax {
			break
		}
		s.Step()
	}
	if s.now < tmax {
		s.now = tmax
	}
}
