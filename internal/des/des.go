// Package des is a minimal discrete-event simulation kernel: a virtual
// clock and a cancellable event queue. Both the cluster emulator
// (internal/netsim) and the SAN solver (internal/san) are built on it.
//
// Time is a float64 number of milliseconds, matching the unit used
// throughout the paper. Events scheduled at equal times fire in FIFO order
// of scheduling, which keeps simulations deterministic.
//
// The queue is a calendar queue (Brown 1988): a ring of time buckets,
// each holding a small (time, seq)-sorted run of entries. Scheduling
// drops an entry into its bucket (amortized O(1): buckets hold a couple
// of entries each), and popping takes the head of the first bucket that
// owns the current time slot — no per-event heap sift, which was the top
// CPU consumer of the campaign benchmark under both container/heap and
// the hand-rolled 4-ary heap that preceded this (see PERFORMANCE.md).
// The bucket width adapts to the observed event density, so the same
// kernel serves the sub-millisecond message traffic of the emulator and
// the arbitrary time scales of the SAN solver. Cancellation is eager:
// the event record remembers its home bucket, so Cancel removes the
// entry with a short in-bucket scan. Unlike lazy cancellation (a heap's
// only option short of sift-removal), this keeps every queued entry
// live — the pop path never touches scattered event records to test for
// staleness, which is exactly the cache miss the calendar was adopted
// to avoid.
//
// The (time, seq) order is strict and total — equal times always share a
// bucket, where entries are kept sorted — so the sequence of *live*
// events executed, and therefore every simulation result, is
// bit-identical to the heap implementations this replaces. Bucket
// geometry (width, ring size) only ever changes internal layout, never
// the surfacing order.
//
// Event records are pooled on a per-Sim free list: once the pool is warm,
// scheduling and firing events performs no heap allocation, which matters
// for the Monte-Carlo campaigns that execute hundreds of millions of
// events. Handles carry a generation number so that a handle to a fired or
// cancelled event stays invalid even after its record is recycled.
package des

import (
	"ctsan/internal/trace"
)

// event is a scheduled callback record. Records are recycled through the
// owning Sim's free list; gen disambiguates incarnations. vb is the
// virtual bucket the record's queue entry currently lives in (maintained
// by insert, so rebucketing keeps it accurate) — it lets Cancel walk
// straight to the entry and remove it.
type event struct {
	fn  func()
	gen uint64 // incremented on every recycle
	vb  int64
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid. A Handle refers to one incarnation of a (pooled)
// event record: once the event fires or is cancelled, the handle goes
// stale and all operations on it are no-ops.
type Handle struct {
	ev  *event
	gen uint64
}

// Valid reports whether the handle refers to a scheduled (not yet fired,
// not cancelled) event. Firing and cancelling both retire the record with
// a new generation, so a matching generation implies the event is queued.
func (h Handle) Valid() bool {
	return h.ev != nil && h.gen == h.ev.gen
}

// entry is one queued event: the ordering key, the home virtual bucket
// (cached at insertion so scans compare integers, not recomputed floats),
// and the event record. Every queued entry is live — Cancel removes
// entries eagerly.
type entry struct {
	time float64
	seq  uint64
	vb   int64 // virtual bucket: floor(time / width) at insertion
	ev   *event
}

// before is the strict total event order: time, then FIFO by seq.
func (e *entry) before(o *entry) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	return e.seq < o.seq
}

// Calendar geometry and adaptation constants. The ring starts small and
// doubles whenever occupancy exceeds two entries per bucket; the width
// re-adapts at most once per rewidthPeriod fired events, and only when
// the observed inter-event gap has drifted a factor of two from the
// current bucket width.
const (
	initialBuckets = 128
	rewidthPeriod  = 4096
	minGapSamples  = 64
)

// Sim is a discrete-event simulator. The zero value is ready to use.
// Sim is not safe for concurrent use.
type Sim struct {
	now float64
	seq uint64
	// live counts queued entries (cancellation is eager, so every queued
	// entry is live).
	live   int
	free   []*event // recycled event records
	nsteps uint64
	tr     *trace.Tracer

	// Calendar queue state. buckets is a power-of-two ring; an entry with
	// virtual bucket vb lives in buckets[vb&mask], sorted by (time, seq).
	// curVB is the scan cursor: every queued entry has vb >= curVB.
	buckets  [][]entry
	mask     int64
	width    float64
	invWidth float64
	curVB    int64
	scratch  []entry // rebucket staging buffer

	// Width adaptation: mean positive gap between consecutive fired-event
	// times over the current observation window.
	popLastT float64
	gapSum   float64
	gapN     int
	sincePop int
}

// SetTracer attaches (or with nil detaches) an execution tracer. Every
// schedule and fire emits one record; a nil tracer costs a single branch
// per site.
func (s *Sim) SetTracer(tr *trace.Tracer) { s.tr = tr }

// Now returns the current virtual time in milliseconds.
func (s *Sim) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() uint64 { return s.nsteps }

// alloc takes an event record off the free list, or allocates one.
func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// release retires an event record to the free list, invalidating every
// outstanding Handle to it by bumping the generation.
func (s *Sim) release(ev *event) {
	ev.fn = nil
	ev.gen++
	s.free = append(s.free, ev)
}

// push files an entry into the calendar, growing the ring when occupancy
// exceeds two entries per bucket.
func (s *Sim) push(e entry) {
	if len(s.buckets) == 0 {
		s.buckets = make([][]entry, initialBuckets)
		s.mask = initialBuckets - 1
		s.width, s.invWidth = 1, 1
	}
	s.insert(e)
	s.live++
	if s.live >= 2*len(s.buckets) {
		s.rebucket(2*len(s.buckets), s.width)
	}
}

// maxVB caps virtual-bucket indices so an extreme event time (or a tiny
// adapted width) cannot overflow the float64→int64 conversion, which
// would yield a negative index and break both the curVB invariant and
// locate's best >= 0 fallback. Clamped entries all share one bucket,
// where the (time, seq) sort keeps them correctly ordered.
const maxVB = int64(1) << 62

// vbucket maps an event time to its virtual bucket under the current
// width, clamped to maxVB.
func (s *Sim) vbucket(t float64) int64 {
	v := t * s.invWidth
	if v >= float64(maxVB) {
		return maxVB
	}
	return int64(v)
}

// insert places e into its bucket, keeping the bucket sorted by
// (time, seq). Buckets hold a handful of entries, so the insertion scan
// is short; a new entry usually belongs at the back of its bucket.
func (s *Sim) insert(e entry) {
	e.vb = s.vbucket(e.time)
	e.ev.vb = e.vb
	b := &s.buckets[int(e.vb&s.mask)]
	bb := append(*b, e)
	i := len(bb) - 1
	for i > 0 && e.before(&bb[i-1]) {
		bb[i] = bb[i-1]
		i--
	}
	bb[i] = e
	*b = bb
}

// remove deletes the entry owned by ev from its home bucket, preserving
// bucket order. The scan is short: buckets hold a couple of entries.
func (s *Sim) remove(ev *event) {
	b := &s.buckets[int(ev.vb&s.mask)]
	bb := *b
	for i := range bb {
		if bb[i].ev == ev {
			n := copy(bb[i:], bb[i+1:]) + i
			bb[n] = entry{} // drop the ev pointer so the pool is not pinned
			*b = bb[:n]
			s.live--
			return
		}
	}
	panic("des: cancelled event not found in its home bucket")
}

// locate finds the bucket holding the earliest queued entry. Entries
// within a bucket are sorted and equal times always map to the same
// bucket, so the first bucket that owns its current time slot holds the
// global minimum; if a whole rotation owns nothing (every entry is at
// least a ring-span ahead), the earliest bucket head is the global
// minimum. locate never moves curVB — Step advances it only when an
// entry is actually consumed.
func (s *Sim) locate() (int64, bool) {
	if s.live == 0 {
		return 0, false
	}
	n := int64(len(s.buckets))
	for k := int64(0); k < n; k++ {
		i := s.curVB + k
		if bb := s.buckets[int(i&s.mask)]; len(bb) > 0 && bb[0].vb == i {
			return i, true
		}
	}
	best := int64(-1)
	var bt float64
	var bs uint64
	for i := range s.buckets {
		bb := s.buckets[i]
		if len(bb) == 0 {
			continue
		}
		if best < 0 || bb[0].time < bt || (bb[0].time == bt && bb[0].seq < bs) {
			best, bt, bs = bb[0].vb, bb[0].time, bb[0].seq
		}
	}
	return best, best >= 0
}

// rebucket refiles every live entry under a new ring size and/or bucket
// width. The surfacing order of live events is a function of (time, seq)
// alone, so rebucketing never affects simulation results.
func (s *Sim) rebucket(nb int, width float64) {
	s.scratch = s.scratch[:0]
	for i := range s.buckets {
		bb := s.buckets[i]
		for j := range bb {
			s.scratch = append(s.scratch, bb[j])
			bb[j] = entry{}
		}
		s.buckets[i] = bb[:0]
	}
	if nb > len(s.buckets) {
		s.buckets = make([][]entry, nb)
		s.mask = int64(nb - 1)
	}
	s.width, s.invWidth = width, 1/width
	// A width change redefines the virtual-bucket units, so the scan
	// cursor must be rebased too: every live entry has time >= now, so
	// vbucket(now) restores the vb >= curVB invariant. Leaving the old
	// cursor in place after a width increase would let locate's fast path
	// exact-match a far-future entry whose shrunken vb lands inside
	// [curVB, curVB+ring) and fire it early.
	s.curVB = s.vbucket(s.now)
	for _, e := range s.scratch {
		s.insert(e)
	}
	clear(s.scratch)
	s.scratch = s.scratch[:0]
}

// maybeRewidth re-adapts the bucket width to the mean positive gap
// between consecutive fired-event times, when it has drifted a factor of
// two from the current width. Called once per rewidthPeriod fired events.
func (s *Sim) maybeRewidth() {
	s.sincePop = 0
	gs, gn := s.gapSum, s.gapN
	s.gapSum, s.gapN = 0, 0
	if gn < minGapSamples {
		return
	}
	target := 2 * gs / float64(gn)
	if target < 1e-9 {
		target = 1e-9
	}
	if target >= s.width*0.5 && target <= s.width*2 {
		return
	}
	s.rebucket(len(s.buckets), target)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug.
func (s *Sim) At(t float64, fn func()) Handle {
	if t < s.now {
		panic("des: scheduling event in the past")
	}
	ev := s.alloc()
	ev.fn = fn
	s.push(entry{time: t, seq: s.seq, ev: ev})
	s.seq++
	if s.tr != nil {
		s.tr.Emit(trace.Event{T: s.now, Kind: trace.KindSchedule, X: t})
	}
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules fn to run d milliseconds from now.
func (s *Sim) After(d float64, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an already
// fired or cancelled event is a no-op. The entry is removed from its
// home bucket on the spot (a short in-bucket scan), so workloads that
// cancel far more events than they fire — the heartbeat failure detector
// re-arms a timer on every observed message — never accumulate dead
// entries for the pop path to skip over.
func (s *Sim) Cancel(h Handle) {
	if !h.Valid() {
		return
	}
	s.remove(h.ev)
	s.release(h.ev)
}

// Empty reports whether no live events remain.
func (s *Sim) Empty() bool { return s.live == 0 }

// PeekTime returns the time of the next event, or ok=false if none.
func (s *Sim) PeekTime() (t float64, ok bool) {
	vb, found := s.locate()
	if !found {
		return 0, false
	}
	return s.buckets[int(vb&s.mask)][0].time, true
}

// Step executes the next event. It reports whether an event was executed.
func (s *Sim) Step() bool {
	vb, found := s.locate()
	if !found {
		return false
	}
	s.curVB = vb
	b := &s.buckets[int(vb&s.mask)]
	bb := *b
	e := bb[0]
	n := copy(bb, bb[1:])
	bb[n] = entry{}
	*b = bb[:n]
	s.now = e.time
	s.nsteps++
	s.live--
	// Feed the width adaptation: mean positive gap between fired events.
	if e.time > s.popLastT {
		s.gapSum += e.time - s.popLastT
		s.gapN++
	}
	s.popLastT = e.time
	if s.sincePop++; s.sincePop >= rewidthPeriod {
		s.maybeRewidth()
	}
	if s.tr != nil {
		s.tr.Emit(trace.Event{T: s.now, Kind: trace.KindFire})
	}
	fn := e.ev.fn
	// Release before running so fn can immediately reuse the record; the
	// handle to this event is already stale either way.
	s.release(e.ev)
	fn()
	return true
}

// Run executes events until the queue is empty or until stop returns true
// (checked after each event). A nil stop runs to exhaustion. It returns the
// final virtual time.
func (s *Sim) Run(stop func() bool) float64 {
	for s.Step() {
		if stop != nil && stop() {
			break
		}
	}
	return s.now
}

// RunUntil executes events with time <= tmax. Events beyond tmax remain
// queued; the clock is advanced to tmax if the run was truncated.
func (s *Sim) RunUntil(tmax float64) {
	for {
		t, ok := s.PeekTime()
		if !ok || t > tmax {
			break
		}
		s.Step()
	}
	if s.now < tmax {
		s.now = tmax
	}
}

// Reset returns the simulator to its initial state — time zero, empty
// queue, zero counters, no tracer — retaining the event pool, the bucket
// storage, and the learned bucket width so a reused Sim schedules without
// allocating. Outstanding handles to pending events are invalidated.
// Detaching the tracer here keeps reset-then-run bit-identical to
// construct-then-run; callers that trace successive runs re-attach after
// Reset. (Bucket geometry carried over from the previous run is internal
// layout only — it cannot influence event order.)
func (s *Sim) Reset() {
	for i := range s.buckets {
		bb := s.buckets[i]
		for j := range bb {
			s.release(bb[j].ev)
			bb[j] = entry{}
		}
		s.buckets[i] = bb[:0]
	}
	s.curVB = 0
	s.live = 0
	s.now, s.seq, s.nsteps = 0, 0, 0
	s.popLastT, s.gapSum, s.gapN, s.sincePop = 0, 0, 0, 0
	s.tr = nil
}
