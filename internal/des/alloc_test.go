package des

import "testing"

// TestScheduleSteadyStateAllocs pins the headline property of the pooled
// event queue: once the free list is warm, a schedule→fire cycle performs
// zero heap allocations.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	var s Sim
	fn := func() {}
	// Warm the pool and the heap slice.
	for i := 0; i < 64; i++ {
		s.After(1, fn)
	}
	s.Run(nil)
	if allocs := testing.AllocsPerRun(1000, func() {
		s.After(1, fn)
		s.Step()
	}); allocs > 0 {
		t.Fatalf("steady-state schedule+fire allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCancelSteadyStateAllocs: schedule→cancel must also be allocation-free
// (it is the hot path of SAN timed-activity disarming).
func TestCancelSteadyStateAllocs(t *testing.T) {
	var s Sim
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.Cancel(s.After(1, fn))
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Cancel(s.After(1, fn))
	}); allocs > 0 {
		t.Fatalf("steady-state schedule+cancel allocates %.1f objects/op, want 0", allocs)
	}
}

// TestHandleStaleAfterRecycle: a handle to a fired event must stay invalid
// — and Cancel on it must be a no-op — even after its pooled record has
// been reused by a later event.
func TestHandleStaleAfterRecycle(t *testing.T) {
	var s Sim
	h1 := s.After(1, func() {})
	s.Step() // fires h1; record goes to the free list
	if h1.Valid() {
		t.Fatal("handle to fired event still valid")
	}
	fired := false
	h2 := s.After(1, func() { fired = true }) // reuses h1's record
	if !h2.Valid() {
		t.Fatal("fresh handle invalid")
	}
	s.Cancel(h1) // stale: must not cancel h2's event
	if !h2.Valid() {
		t.Fatal("stale Cancel hit the recycled event")
	}
	s.Run(nil)
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// TestHandleStaleAfterCancelRecycle mirrors the above for the cancel path.
func TestHandleStaleAfterCancelRecycle(t *testing.T) {
	var s Sim
	h1 := s.After(1, func() {})
	s.Cancel(h1)
	h2 := s.After(2, func() {})
	if h1.Valid() {
		t.Fatal("cancelled handle still valid after recycle")
	}
	s.Cancel(h1)
	if !h2.Valid() {
		t.Fatal("stale Cancel hit the recycled event")
	}
}

// TestReset: a reset Sim behaves like a fresh one but reuses its pool.
func TestReset(t *testing.T) {
	var s Sim
	fired := false
	h := s.At(5, func() { fired = true })
	s.At(7, func() {})
	s.Reset()
	if !s.Empty() || s.Now() != 0 || s.Steps() != 0 {
		t.Fatalf("Reset left state: now=%v steps=%d empty=%v", s.Now(), s.Steps(), s.Empty())
	}
	if h.Valid() {
		t.Fatal("handle survived Reset")
	}
	s.Run(nil)
	if fired {
		t.Fatal("pre-Reset event fired after Reset")
	}
	// The pool must make post-Reset scheduling allocation-free.
	fn := func() {}
	if allocs := testing.AllocsPerRun(100, func() {
		s.After(1, fn)
		s.Step()
	}); allocs > 0 {
		t.Fatalf("post-Reset schedule allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkDESSchedule measures the steady-state schedule→fire cycle with
// a queue of background events, the shape of the SAN inner loop.
func BenchmarkDESSchedule(b *testing.B) {
	var s Sim
	fn := func() {}
	for i := 0; i < 256; i++ {
		s.After(float64(i)+1e6, fn) // standing background queue
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, fn)
		s.Step()
	}
}

// BenchmarkDESScheduleCancel measures the arm→disarm cycle.
func BenchmarkDESScheduleCancel(b *testing.B) {
	var s Sim
	fn := func() {}
	for i := 0; i < 256; i++ {
		s.After(float64(i)+1e6, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cancel(s.After(1, fn))
	}
}
