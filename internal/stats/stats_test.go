package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ctsan/internal/rng"
)

func TestAccumulatorAgainstNaive(t *testing.T) {
	if err := quick.Check(func(seed uint64, k uint8) bool {
		n := int(k%50) + 2
		r := rng.New(seed)
		xs := make([]float64, n)
		var acc Accumulator
		for i := range xs {
			xs[i] = r.Normal(5, 3)
			acc.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		varr := 0.0
		for _, x := range xs {
			varr += (x - mean) * (x - mean)
		}
		varr /= float64(n - 1)
		return math.Abs(acc.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(acc.Var()-varr) < 1e-6*(1+varr) &&
			acc.N() == n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAccumulatorMerge checks the parallel combination against folding
// the concatenated sample serially.
func TestAccumulatorMerge(t *testing.T) {
	if err := quick.Check(func(seed uint64, ka, kb uint8) bool {
		na, nb := int(ka%40), int(kb%40)+1
		r := rng.New(seed)
		var a, b, serial Accumulator
		for i := 0; i < na; i++ {
			x := r.Normal(-2, 4)
			a.Add(x)
			serial.Add(x)
		}
		for i := 0; i < nb; i++ {
			x := r.Normal(9, 0.5)
			b.Add(x)
			serial.Add(x)
		}
		a.Merge(&b)
		return a.N() == serial.N() &&
			a.Min() == serial.Min() && a.Max() == serial.Max() &&
			math.Abs(a.Mean()-serial.Mean()) < 1e-9*(1+math.Abs(serial.Mean())) &&
			math.Abs(a.Var()-serial.Var()) < 1e-6*(1+serial.Var())
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Merging into or from an empty accumulator degenerates to a copy.
	var empty, full Accumulator
	full.AddAll([]float64{1, 2, 3})
	cp := full
	full.Merge(&empty)
	if full != cp {
		t.Fatal("merging an empty accumulator changed the receiver")
	}
	empty.Merge(&full)
	if empty != full {
		t.Fatal("merging into an empty accumulator is not a copy")
	}
}

func TestAccumulatorMinMax(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{3, -1, 7, 2})
	if a.Min() != -1 || a.Max() != 7 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Var() != 0 || a.N() != 0 {
		t.Fatal("zero-value accumulator not empty")
	}
	if !math.IsInf(a.CI(0.9), 1) {
		t.Fatal("CI of empty accumulator should be +Inf")
	}
}

// TestTQuantile checks the Student-t quantiles against standard table
// values t_{0.95, df}.
func TestTQuantile(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 6.3138}, {2, 2.9200}, {5, 2.0150}, {10, 1.8125},
		{30, 1.6973}, {100, 1.6602}, {1000, 1.6464},
	}
	for _, c := range cases {
		got := tQuantile(0.95, c.df)
		if math.Abs(got-c.want) > 2e-3*c.want {
			t.Errorf("t(0.95, %d) = %v, want %v", c.df, got, c.want)
		}
	}
	if v := tQuantile(0.5, 7); v != 0 {
		t.Errorf("median quantile = %v, want 0", v)
	}
	if v := tQuantile(0.05, 5); math.Abs(v+2.0150) > 5e-3 {
		t.Errorf("t(0.05,5) = %v, want -2.015", v)
	}
}

// TestCICoverage: a 90% CI computed from normal samples should contain the
// true mean roughly 90% of the time.
func TestCICoverage(t *testing.T) {
	r := rng.New(12)
	const trials = 800
	hits := 0
	for i := 0; i < trials; i++ {
		var a Accumulator
		for j := 0; j < 20; j++ {
			a.Add(r.Normal(10, 4))
		}
		if math.Abs(a.Mean()-10) <= a.CI(0.90) {
			hits++
		}
	}
	cover := float64(hits) / trials
	if cover < 0.86 || cover > 0.94 {
		t.Errorf("90%% CI covered the mean in %.1f%% of trials", 100*cover)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	for _, c := range []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {9, 1},
	} {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	if q := e.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := e.Quantile(1); q != 3 {
		t.Errorf("q1 = %v", q)
	}
	if m := e.Mean(); m != 2 {
		t.Errorf("mean = %v", m)
	}
}

func TestECDFMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = r.Normal(0, 1)
		}
		e := NewECDF(xs)
		prev := -1.0
		for x := -3.0; x <= 3; x += 0.1 {
			p := e.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	r := rng.New(77)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64()
	}
	e := NewECDF(xs)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		x := e.Quantile(q)
		if p := e.At(x); math.Abs(p-q) > 0.02 {
			t.Errorf("At(Quantile(%v)) = %v", q, p)
		}
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	e := NewECDF(xs)
	if xs[0] != 3 {
		t.Fatal("NewECDF sorted the caller's slice")
	}
	xs[0] = -100
	if e.At(0) != 0 {
		t.Fatal("ECDF aliases caller data")
	}
}

func TestKSDistance(t *testing.T) {
	a := NewECDF([]float64{1, 2, 3})
	if d := KSDistance(a, a); d != 0 {
		t.Errorf("KS(a,a) = %v", d)
	}
	b := NewECDF([]float64{11, 12, 13})
	if d := KSDistance(a, b); d != 1 {
		t.Errorf("KS of disjoint supports = %v, want 1", d)
	}
	// Symmetry.
	c := NewECDF([]float64{1.5, 2.5, 3.5})
	if d1, d2 := KSDistance(a, c), KSDistance(c, a); d1 != d2 {
		t.Errorf("KS not symmetric: %v vs %v", d1, d2)
	}
}

func TestGrid(t *testing.T) {
	e := NewECDF([]float64{0, 1})
	xs, ps := e.Grid(0, 2, 4)
	if len(xs) != 5 || len(ps) != 5 {
		t.Fatalf("grid sizes %d/%d", len(xs), len(ps))
	}
	if xs[0] != 0 || xs[4] != 2 || ps[4] != 1 {
		t.Fatalf("grid endpoints wrong: %v %v", xs, ps)
	}
	if !sort.Float64sAreSorted(ps) {
		t.Fatal("grid probabilities not monotone")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0.5, 3, 7, 11} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Counts[0] != 2 { // -1 clamped + 0.5
		t.Errorf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[4] != 1 { // 11 clamped
		t.Errorf("bin 4 = %d, want 1", h.Counts[4])
	}
	if f := h.Fraction(1); f != 0.2 {
		t.Errorf("fraction(1) = %v", f)
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) is the uniform CDF.
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-9 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(1/2,1/2) = 2/pi * asin(sqrt(x)).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		want := 2 / math.Pi * math.Asin(math.Sqrt(x))
		if got := regIncBeta(0.5, 0.5, x); math.Abs(got-want) > 1e-9 {
			t.Errorf("I_%v(.5,.5) = %v, want %v", x, got, want)
		}
	}
}
