// Package stats provides the estimators used to report experiment results:
// running mean/variance accumulators, Student-t confidence intervals (the
// paper reports 90% intervals, §5.2 and §5.4), empirical CDFs (Figs. 6, 7)
// and quantiles.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes running mean and variance with Welford's method.
// The zero value is an empty accumulator ready for use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// AddAll folds a slice of observations.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// Merge folds another accumulator into this one using the parallel
// variance combination (Chan et al.), so per-replica accumulators built
// independently can be reduced to exactly the campaign-level moments.
// Campaign folds merge in replica-index order to keep results identical
// at any worker count.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	na, nb := float64(a.n), float64(b.n)
	d := b.mean - a.mean
	n := na + nb
	a.m2 += b.m2 + d*d*na*nb/n
	a.mean += d * nb / n
	a.n += b.n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// State returns the accumulator's complete internal state — observation
// count, running mean, the Welford M2 sum, and the extremes — so it can
// be serialized exactly. Together with AccumulatorFromState it is the
// persistence contract of the type: the float64 bit patterns round-trip
// unchanged, so a restored accumulator is bit-identical to the original
// (metrics.Digest's wire format relies on this).
func (a *Accumulator) State() (n int, mean, m2, min, max float64) {
	return a.n, a.mean, a.m2, a.min, a.max
}

// AccumulatorFromState reconstructs an accumulator from a State dump.
// It rejects a negative count and the inconsistent "empty but nonzero
// moments" shape so a corrupted serialization cannot smuggle in NaN-free
// nonsense; all other float bit patterns are restored verbatim.
func AccumulatorFromState(n int, mean, m2, min, max float64) (Accumulator, error) {
	if n < 0 {
		return Accumulator{}, fmt.Errorf("stats: accumulator state with negative n %d", n)
	}
	if n == 0 && (mean != 0 || m2 != 0 || min != 0 || max != 0) {
		return Accumulator{}, fmt.Errorf("stats: empty accumulator state with nonzero moments")
	}
	return Accumulator{n: n, mean: mean, m2: m2, min: min, max: max}, nil
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 if empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 if fewer than 2 observations).
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest observation (0 if empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 if empty).
func (a *Accumulator) Max() float64 { return a.max }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI returns the half-width of the confidence interval for the mean at the
// given confidence level (e.g. 0.90), using the Student-t distribution with
// n-1 degrees of freedom.
func (a *Accumulator) CI(level float64) float64 {
	if a.n < 2 {
		return math.Inf(1)
	}
	return tQuantile(1-(1-level)/2, a.n-1) * a.StdErr()
}

// String formats the accumulator as "mean ± halfwidth (n=N)" at 90%.
func (a *Accumulator) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", a.Mean(), a.CI(0.90), a.n)
}

// tQuantile returns the p-quantile of the Student-t distribution with df
// degrees of freedom. It uses the exact relationship with the incomplete
// beta function, inverted by bisection; accuracy is far better than needed
// for confidence intervals.
func tQuantile(p float64, df int) float64 {
	if df <= 0 {
		panic("stats: tQuantile with non-positive df")
	}
	if p <= 0 || p >= 1 {
		panic("stats: tQuantile with p outside (0,1)")
	}
	if p == 0.5 {
		return 0
	}
	// CDF(t) is monotone; bracket then bisect.
	lo, hi := 0.0, 1.0
	target := p
	flip := false
	if target < 0.5 {
		target = 1 - target
		flip = true
	}
	for tCDF(hi, df) < target {
		hi *= 2
		if hi > 1e9 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if tCDF(mid, df) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	q := (lo + hi) / 2
	if flip {
		return -q
	}
	return q
}

// tCDF returns P(T <= t) for Student-t with df degrees of freedom, t >= 0.
func tCDF(t float64, df int) float64 {
	if t < 0 {
		return 1 - tCDF(-t, df)
	}
	x := float64(df) / (float64(df) + t*t)
	// P(T<=t) = 1 - 0.5 * I_x(df/2, 1/2)
	return 1 - 0.5*regIncBeta(float64(df)/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	if x < (a+1)/(a+b+2) {
		front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
		return front * betacf(a, b, x)
	}
	// Symmetry I_x(a,b) = 1 - I_{1-x}(b,a) for the fast-converging branch.
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / b
	return 1 - front*betacf(b, a, 1-x)
}

// betacf evaluates the continued fraction for the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// ECDF is an empirical cumulative distribution function built from a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample (which it copies and sorts).
func NewECDF(sample []float64) *ECDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns the fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; advance
	// over equal values to count them as <= x.
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (0<=q<=1) by linear interpolation.
func (e *ECDF) Quantile(q float64) float64 {
	return QuantileSorted(e.sorted, q)
}

// QuantileSorted interpolates the q-quantile of an already-sorted
// sample. It is the single definition of the interpolation rule: both
// ECDF.Quantile and the exact mode of metrics.Digest call it, so the
// "digest quantiles are bit-identical to the slice path" contract
// cannot drift between two copies of the formula.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Grid evaluates the ECDF on an evenly spaced grid of k+1 points spanning
// [lo, hi], returning (xs, ps). Used to print figure series.
func (e *ECDF) Grid(lo, hi float64, k int) (xs, ps []float64) {
	if k < 1 {
		k = 1
	}
	xs = make([]float64, k+1)
	ps = make([]float64, k+1)
	for i := 0; i <= k; i++ {
		x := lo + (hi-lo)*float64(i)/float64(k)
		xs[i] = x
		ps[i] = e.At(x)
	}
	return xs, ps
}

// Mean returns the sample mean of the underlying data.
func (e *ECDF) Mean() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range e.sorted {
		s += v
	}
	return s / float64(len(e.sorted))
}

// KSDistance returns the Kolmogorov–Smirnov distance between two ECDFs,
// evaluated at the union of their jump points. Used in model-validation
// tests that compare measured and simulated latency distributions.
func KSDistance(a, b *ECDF) float64 {
	d := 0.0
	for _, x := range a.sorted {
		if v := math.Abs(a.At(x) - b.At(x)); v > d {
			d = v
		}
	}
	for _, x := range b.sorted {
		if v := math.Abs(a.At(x) - b.At(x)); v > d {
			d = v
		}
	}
	return d
}

// Histogram counts observations into equal-width bins over [lo, hi).
// Observations outside the range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
