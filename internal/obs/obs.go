// Package obs is the runtime telemetry of long campaigns: process-wide
// counters and gauges for work completed (executions, campaign points,
// shard attempts/retries, checkpoint appends) and worker-pool activity,
// published through the standard expvar registry, plus an optional HTTP
// listener exposing /debug/vars and the net/http/pprof profiling
// endpoints (the -debug-addr flag of cmd/ctsan and cmd/scenario).
//
// The counters are plain atomics: hot paths pay one atomic add per
// counted unit and never allocate, so instrumented code is safe to leave
// enabled unconditionally. Telemetry observes wall-clock time and is
// explicitly outside the determinism contract — nothing in the
// simulation may ever read it back.
package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"
)

// start anchors the rate and utilization gauges.
var start = time.Now()

// Counters, published as expvar ints (visible in /debug/vars):
var (
	// Executions counts completed consensus executions across all
	// engines (emulation experiments and scenario replicas).
	Executions = expvar.NewInt("ctsan.executions_completed")
	// Points counts completed campaign grid points.
	Points = expvar.NewInt("ctsan.points_completed")
	// ShardAttempts counts shard subprocess launches (first tries and
	// retries); ShardRetries only the re-launches after a failure;
	// ShardBackoffMS the total milliseconds slept in retry backoff.
	ShardAttempts  = expvar.NewInt("ctsan.shard_attempts")
	ShardRetries   = expvar.NewInt("ctsan.shard_retries")
	ShardBackoffMS = expvar.NewInt("ctsan.shard_backoff_ms")
	// CheckpointAppends counts durable checkpoint records written.
	CheckpointAppends = expvar.NewInt("ctsan.checkpoint_appends")
	// CacheHits / CacheMisses / CacheEvictions count result-cache
	// lookups that were served from memory, lookups that fell through to
	// the engine, and entries dropped by the LRU bound (the campaign
	// service's content-addressed point cache).
	CacheHits      = expvar.NewInt("ctsan.cache_hits")
	CacheMisses    = expvar.NewInt("ctsan.cache_misses")
	CacheEvictions = expvar.NewInt("ctsan.cache_evictions")
	// CacheSpills / CacheWarmLoads count encoded records persisted to the
	// point-cache spill store and records validated back in at startup.
	CacheSpills    = expvar.NewInt("ctsan.cache_spills")
	CacheWarmLoads = expvar.NewInt("ctsan.cache_warm_loads")
	// Fleet-dispatch counters (the coordinator's lease ledger):
	// LeasesGranted counts ranges handed to workers, LeasesCompleted
	// leases whose full range came back verified, LeasesExpired leases
	// reaped past their deadline, and LeasePointsRequeued the individual
	// points returned to the pending set by expiry or partial uploads.
	LeasesGranted       = expvar.NewInt("ctsan.leases_granted")
	LeasesCompleted     = expvar.NewInt("ctsan.leases_completed")
	LeasesExpired       = expvar.NewInt("ctsan.leases_expired")
	LeasePointsRequeued = expvar.NewInt("ctsan.lease_points_requeued")
	// UploadRecords / UploadBytes count verified shard records accepted
	// from worker uploads and the (decoded) bytes they carried;
	// UploadRejected counts lines that failed CRC, hash, or version
	// verification — nonzero means a worker is broken or hostile, never a
	// wrong merge.
	UploadRecords  = expvar.NewInt("ctsan.upload_records")
	UploadBytes    = expvar.NewInt("ctsan.upload_bytes")
	UploadRejected = expvar.NewInt("ctsan.upload_rejected")
)

// Gauges (set, not accumulated), published as expvar ints:
var (
	// CacheBytes / CacheEntries are the result cache's current retained
	// size and entry count.
	CacheBytes   = expvar.NewInt("ctsan.cache_bytes")
	CacheEntries = expvar.NewInt("ctsan.cache_entries")
	// QueueDepth is the number of studies admitted but not yet running;
	// StudiesActive the number currently executing.
	QueueDepth    = expvar.NewInt("ctsan.queue_depth")
	StudiesActive = expvar.NewInt("ctsan.studies_active")
	// FleetWorkersBusy is the number of distinct fleet workers currently
	// holding at least one unexpired lease — the coordinator's view of
	// worker saturation.
	FleetWorkersBusy = expvar.NewInt("ctsan.fleet_workers_busy")
)

// Worker-pool activity, fed by internal/parallel around each work unit.
var (
	busyWorkers atomic.Int64
	busyNS      atomic.Int64
	unitsDone   atomic.Int64
)

// UnitStart marks one worker busy and returns the start instant to pass
// to UnitEnd.
func UnitStart() int64 {
	busyWorkers.Add(1)
	return time.Now().UnixNano()
}

// UnitEnd marks the worker idle again, crediting its busy time.
func UnitEnd(startNS int64) {
	busyWorkers.Add(-1)
	busyNS.Add(time.Now().UnixNano() - startNS)
	unitsDone.Add(1)
}

func init() {
	expvar.Publish("ctsan.exec_per_sec", expvar.Func(func() any {
		el := time.Since(start).Seconds()
		if el <= 0 {
			return 0.0
		}
		return float64(Executions.Value()) / el
	}))
	expvar.Publish("ctsan.workers_busy", expvar.Func(func() any {
		return busyWorkers.Load()
	}))
	expvar.Publish("ctsan.work_units_completed", expvar.Func(func() any {
		return unitsDone.Load()
	}))
	// Utilization: cumulative worker-busy time over elapsed wall time ×
	// CPU count — 1.0 means every CPU ran campaign work the whole time.
	expvar.Publish("ctsan.worker_utilization", expvar.Func(func() any {
		el := time.Since(start).Seconds() * float64(runtime.NumCPU())
		if el <= 0 {
			return 0.0
		}
		return float64(busyNS.Load()) / 1e9 / el
	}))
}

// DebugMux returns a fresh mux exposing /debug/vars (expvar) and the
// /debug/pprof/* profiling endpoints. Serve mounts it on its own
// listener; the campaign service (internal/server) mounts the same mux
// on its public listener so one port carries both the API and the
// telemetry. The mux is private — never http.DefaultServeMux — so
// importing obs cannot leak profiling endpoints onto servers the
// embedding program runs.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug listener on addr (host:port; port 0 picks a
// free one) exposing the DebugMux endpoints. It returns the bound
// address and a shutdown function.
func Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux()}
	go srv.Serve(ln) //nolint:errcheck // Close shuts it down; errors after that are expected
	return ln.Addr().String(), srv.Close, nil
}
