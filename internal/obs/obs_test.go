package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestCountersAdvance(t *testing.T) {
	before := Executions.Value()
	Executions.Add(3)
	if got := Executions.Value(); got != before+3 {
		t.Fatalf("Executions = %d, want %d", got, before+3)
	}
}

func TestUnitAccounting(t *testing.T) {
	beforeUnits := unitsDone.Load()
	beforeBusy := busyNS.Load()
	h := UnitStart()
	if busyWorkers.Load() < 1 {
		t.Fatal("busyWorkers not incremented")
	}
	UnitEnd(h)
	if unitsDone.Load() != beforeUnits+1 {
		t.Fatal("unitsDone not incremented")
	}
	if busyNS.Load() < beforeBusy {
		t.Fatal("busyNS went backwards")
	}
}

func TestUnitStartEndZeroAllocs(t *testing.T) {
	if allocs := testing.AllocsPerRun(1000, func() { UnitEnd(UnitStart()) }); allocs != 0 {
		t.Fatalf("UnitStart/UnitEnd allocate %.1f/op, want 0", allocs)
	}
}

func TestServeExposesVarsAndPprof(t *testing.T) {
	addr, shutdown, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown() //nolint:errcheck

	Executions.Add(1)
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{
		"ctsan.executions_completed", "ctsan.points_completed",
		"ctsan.shard_attempts", "ctsan.checkpoint_appends",
		"ctsan.exec_per_sec", "ctsan.worker_utilization",
	} {
		if _, ok := vars[key]; !ok {
			t.Fatalf("/debug/vars missing %q", key)
		}
	}

	// pprof index must answer; a full profile capture is the CI smoke
	// step's job (it takes seconds).
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(idx), "profile") {
		t.Fatalf("/debug/pprof/ status %d body %q", resp.StatusCode, idx)
	}
}
