package neko

import (
	"reflect"
	"testing"
)

// fakeContext records sends for stack/broadcast tests.
type fakeContext struct {
	id    ProcessID
	n     int
	now   float64
	sent  []Message
	timer []float64
}

func (f *fakeContext) ID() ProcessID  { return f.id }
func (f *fakeContext) N() int         { return f.n }
func (f *fakeContext) Now() float64   { return f.now }
func (f *fakeContext) Send(m Message) { m.From = f.id; f.sent = append(f.sent, m) }
func (f *fakeContext) SetTimer(d float64, fn func()) TimerHandle {
	f.timer = append(f.timer, d)
	return fakeTimer{}
}

type fakeTimer struct{}

func (fakeTimer) Stop() {}

var _ Context = (*fakeContext)(nil)

func TestBroadcastOrderAndSelfSkip(t *testing.T) {
	ctx := &fakeContext{id: 3, n: 5}
	Broadcast(ctx, Message{Type: "x"})
	var dests []ProcessID
	for _, m := range ctx.sent {
		dests = append(dests, m.To)
		if m.From != 3 {
			t.Errorf("From = %d, want 3", m.From)
		}
	}
	want := []ProcessID{1, 2, 4, 5}
	if !reflect.DeepEqual(dests, want) {
		t.Fatalf("broadcast destinations %v, want ascending %v (n-1 unicasts, §5.1)", dests, want)
	}
}

func TestStackDispatch(t *testing.T) {
	ctx := &fakeContext{id: 1, n: 2}
	s := NewStack(ctx)
	var tapped, handled []string
	s.Tap(func(m *Message) { tapped = append(tapped, m.Type) })
	s.Handle("a", func(m Message) { handled = append(handled, m.Type) })
	s.Dispatch(&Message{Type: "a"})
	s.Dispatch(&Message{Type: "unknown"}) // dropped silently, still tapped
	if !reflect.DeepEqual(handled, []string{"a"}) {
		t.Fatalf("handled %v", handled)
	}
	if !reflect.DeepEqual(tapped, []string{"a", "unknown"}) {
		t.Fatalf("tapped %v", tapped)
	}
}

func TestTapRunsBeforeHandler(t *testing.T) {
	s := NewStack(&fakeContext{id: 1, n: 2})
	var order []string
	s.Handle("m", func(Message) { order = append(order, "handler") })
	s.Tap(func(*Message) { order = append(order, "tap") })
	s.Dispatch(&Message{Type: "m"})
	if !reflect.DeepEqual(order, []string{"tap", "handler"}) {
		t.Fatalf("order %v; the FD tap must observe messages before handlers", order)
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	s := NewStack(&fakeContext{id: 1, n: 2})
	s.Handle("a", func(Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate handler registration did not panic")
		}
	}()
	s.Handle("a", func(Message) {})
}

func TestStackStartOrder(t *testing.T) {
	s := NewStack(&fakeContext{id: 1, n: 2})
	var order []int
	s.AddLayer(layerFunc(func() { order = append(order, 1) }))
	s.AddLayer(layerFunc(func() { order = append(order, 2) }))
	s.Start()
	if !reflect.DeepEqual(order, []int{1, 2}) {
		t.Fatalf("start order %v; layers must start bottom-up", order)
	}
}

type layerFunc func()

func (f layerFunc) Start() { f() }

func TestHandledTypes(t *testing.T) {
	s := NewStack(&fakeContext{id: 1, n: 2})
	s.Handle("z", func(Message) {})
	s.Handle("a", func(Message) {})
	if got := s.HandledTypes(); !reflect.DeepEqual(got, []string{"a", "z"}) {
		t.Fatalf("HandledTypes = %v", got)
	}
}

func TestWireSize(t *testing.T) {
	if (Message{}).WireSize() != DefaultMessageSize {
		t.Errorf("default wire size = %d", (Message{}).WireSize())
	}
	if (Message{Size: 42}).WireSize() != 42 {
		t.Error("explicit size ignored")
	}
}

func TestMessageString(t *testing.T) {
	m := Message{From: 1, To: 2, Type: "ct.ack"}
	if got := m.String(); got != "ct.ack p1→p2" {
		t.Errorf("String = %q", got)
	}
}
