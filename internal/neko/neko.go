// Package neko is a small protocol-development framework modeled on the
// Neko framework of Urbán, Défago & Schiper [18], which the paper used to
// run the Chandra–Toueg consensus implementation: the same algorithm code
// executes unmodified either inside a discrete-event cluster emulator
// (internal/netsim, virtual time) or on a real-time transport
// (internal/realnet, in-process channels or TCP).
//
// A Process is a Stack of protocol layers attached to an execution Context.
// Protocols communicate through typed messages and timers. Time is a
// float64 number of milliseconds — the unit used throughout the paper —
// rather than time.Duration, because virtual-time executors schedule on a
// continuous simulated clock; real-time executors convert at the boundary.
package neko

import (
	"fmt"
	"sort"
)

// ProcessID identifies a process, 1-based as in the paper (p_1 … p_n).
type ProcessID int

// DefaultMessageSize is the assumed on-wire size of a protocol message in
// bytes when Message.Size is zero. §2.5: "The size of a typical message is
// around 100 bytes."
const DefaultMessageSize = 100

// Message is a protocol message. Payload must be a value type (or pointer
// to struct) understood by the destination handler; transports that
// serialize (TCP) require payload types to be registered with encoding/gob.
type Message struct {
	From, To ProcessID
	Type     string
	Payload  any
	Size     int // bytes on the wire; 0 means DefaultMessageSize
}

// WireSize returns the message's size in bytes, applying the default.
func (m Message) WireSize() int {
	if m.Size > 0 {
		return m.Size
	}
	return DefaultMessageSize
}

func (m Message) String() string {
	return fmt.Sprintf("%s p%d→p%d", m.Type, m.From, m.To)
}

// TimerHandle identifies a pending timer so it can be cancelled. Handles
// are opaque to protocols and single-use: Stop must be called at most
// once, and a handle must not be used after Stop returns — executors may
// recycle timer records (the virtual-time emulator pools them).
type TimerHandle interface{ Stop() }

// Context is the execution environment a protocol sees: identity, clock,
// message transmission and timers. Implementations: the virtual-time
// cluster emulator and the real-time runtime. All Context methods must be
// called from protocol code running inside the executor (message handlers,
// timer callbacks, Start), never from foreign goroutines.
type Context interface {
	// ID returns this process's identifier (1..N).
	ID() ProcessID
	// N returns the number of processes in the system.
	N() int
	// Now returns the local clock in milliseconds. Local clocks may be
	// offset from one another (the paper synchronized them within ±50 µs).
	Now() float64
	// Send transmits m to m.To. The executor fills m.From. Sending to self
	// is not supported; protocols short-circuit local delivery.
	Send(m Message)
	// SetTimer schedules fn after d milliseconds of local time. The
	// callback runs in the executor like a message handler. Executors may
	// add scheduler latency (the emulator models the Linux jiffy quantum).
	SetTimer(d float64, fn func()) TimerHandle
}

// Protocol is one layer of a process stack. Start is invoked once when the
// executor begins; message handlers are registered against the Stack.
type Protocol interface {
	// Start is called once, after all layers are constructed, when the
	// process begins executing.
	Start()
}

// Stack dispatches inbound messages to protocol layers. Layers register
// handlers for the message types they own, and taps that observe every
// inbound message (the heartbeat failure detector taps all traffic because
// "the reception of any message from q resets the timer", §2.2).
type Stack struct {
	ctx      Context
	layers   []Protocol
	handlers map[string]func(Message)
	taps     []func(Message)
}

// NewStack creates an empty stack bound to an execution context.
func NewStack(ctx Context) *Stack {
	return &Stack{ctx: ctx, handlers: make(map[string]func(Message))}
}

// Context returns the execution context of the stack.
func (s *Stack) Context() Context { return s.ctx }

// AddLayer appends a protocol layer. Layers are started in registration
// order (bottom first).
func (s *Stack) AddLayer(p Protocol) { s.layers = append(s.layers, p) }

// Handle registers a handler for an exact message type. Registering a
// duplicate type panics: message ownership must be unambiguous.
func (s *Stack) Handle(msgType string, h func(Message)) {
	if _, dup := s.handlers[msgType]; dup {
		panic(fmt.Sprintf("neko: duplicate handler for message type %q", msgType))
	}
	s.handlers[msgType] = h
}

// Tap registers an observer invoked for every inbound message, before the
// type handler.
func (s *Stack) Tap(fn func(Message)) { s.taps = append(s.taps, fn) }

// Start starts all layers in registration order.
func (s *Stack) Start() {
	for _, l := range s.layers {
		l.Start()
	}
}

// Dispatch routes an inbound message: taps first, then the type handler.
// Messages without a handler are dropped silently (a layer may have shut
// down); executors log them if configured.
func (s *Stack) Dispatch(m Message) {
	for _, tap := range s.taps {
		tap(m)
	}
	if h, ok := s.handlers[m.Type]; ok {
		h(m)
	}
}

// HandledTypes returns the registered message types, sorted (for tests).
func (s *Stack) HandledTypes() []string {
	ts := make([]string, 0, len(s.handlers))
	for t := range s.handlers {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	return ts
}

// Broadcast sends m to every process except the sender, as n−1 unicast
// messages in ascending process-ID order — exactly what the measured
// implementation does (§5.1: "in the implementation they are n−1 unicast
// messages"). The SAN model, by contrast, models a broadcast as a single
// message; that asymmetry explains the n = 3 crash anomaly in Table 1.
func Broadcast(ctx Context, m Message) {
	for id := ProcessID(1); id <= ProcessID(ctx.N()); id++ {
		if id == ctx.ID() {
			continue
		}
		mm := m
		mm.To = id
		ctx.Send(mm)
	}
}

// FailureDetector is the query interface of a local failure-detector
// module (§2.1): a list of processes currently suspected to have crashed.
type FailureDetector interface {
	// Suspects reports whether q is currently suspected.
	Suspects(q ProcessID) bool
	// OnChange registers a callback fired whenever the suspicion state of
	// some monitored process changes. Consensus uses it to abort waiting
	// for a suspected coordinator.
	OnChange(fn func(q ProcessID, suspected bool))
}
