// Package neko is a small protocol-development framework modeled on the
// Neko framework of Urbán, Défago & Schiper [18], which the paper used to
// run the Chandra–Toueg consensus implementation: the same algorithm code
// executes unmodified either inside a discrete-event cluster emulator
// (internal/netsim, virtual time) or on a real-time transport
// (internal/realnet, in-process channels or TCP).
//
// A Process is a Stack of protocol layers attached to an execution Context.
// Protocols communicate through typed messages and timers. Time is a
// float64 number of milliseconds — the unit used throughout the paper —
// rather than time.Duration, because virtual-time executors schedule on a
// continuous simulated clock; real-time executors convert at the boundary.
package neko

import (
	"fmt"
	"sort"
)

// ProcessID identifies a process, 1-based as in the paper (p_1 … p_n).
type ProcessID int

// DefaultMessageSize is the assumed on-wire size of a protocol message in
// bytes when Message.Size is zero. §2.5: "The size of a typical message is
// around 100 bytes."
const DefaultMessageSize = 100

// PayloadKind discriminates the Payload union. The protocols crossing the
// framework form a small closed set (heartbeats, the four Chandra–Toueg
// message bodies, delay probes), so payloads travel as one flat value
// instead of a heap-boxed `any` — steady-state message traffic then
// allocates nothing, and executors can dispatch on the kind without
// hashing the type string (see Stack.HandleKind).
type PayloadKind uint8

// Payload kinds. PayloadNone marks content-free messages (pings, test
// traffic); such messages dispatch by type string alone.
const (
	PayloadNone PayloadKind = iota
	PayloadHB
	PayloadEstimate
	PayloadPropose
	PayloadAck
	PayloadDecide
	PayloadProbe

	numPayloadKinds
)

// Payload is the flat union of every protocol message body. Kind selects
// the variant; each variant reads the fields it owns and ignores the
// rest:
//
//	PayloadHB:       Seq
//	PayloadEstimate: Cid, Round, Val, TS
//	PayloadPropose:  Cid, Round, Val
//	PayloadAck:      Cid, Round, OK
//	PayloadDecide:   Cid, Val
//	PayloadProbe:    Seq
//
// The struct is plain comparable data: it crosses gob transports as-is
// (no Register calls needed) and copies with the Message it rides in.
type Payload struct {
	Kind  PayloadKind
	OK    bool
	Cid   uint64 // consensus instance
	Seq   uint64 // heartbeat / probe sequence number
	Val   int64
	Round int
	TS    int
}

// Message is a protocol message. Payload is a flat value: copying the
// message copies the payload, so pooled executors recycle message records
// without pinning heap objects.
type Message struct {
	From, To ProcessID
	Type     string
	Payload  Payload
	Size     int // bytes on the wire; 0 means DefaultMessageSize
}

// WireSize returns the message's size in bytes, applying the default.
func (m Message) WireSize() int {
	if m.Size > 0 {
		return m.Size
	}
	return DefaultMessageSize
}

func (m Message) String() string {
	return fmt.Sprintf("%s p%d→p%d", m.Type, m.From, m.To)
}

// TimerHandle identifies a pending timer so it can be cancelled. Handles
// are opaque to protocols and single-use: Stop must be called at most
// once, and a handle must not be used after Stop returns — executors may
// recycle timer records (the virtual-time emulator pools them).
type TimerHandle interface{ Stop() }

// Context is the execution environment a protocol sees: identity, clock,
// message transmission and timers. Implementations: the virtual-time
// cluster emulator and the real-time runtime. All Context methods must be
// called from protocol code running inside the executor (message handlers,
// timer callbacks, Start), never from foreign goroutines.
type Context interface {
	// ID returns this process's identifier (1..N).
	ID() ProcessID
	// N returns the number of processes in the system.
	N() int
	// Now returns the local clock in milliseconds. Local clocks may be
	// offset from one another (the paper synchronized them within ±50 µs).
	Now() float64
	// Send transmits m to m.To. The executor fills m.From. Sending to self
	// is not supported; protocols short-circuit local delivery.
	Send(m Message)
	// SetTimer schedules fn after d milliseconds of local time. The
	// callback runs in the executor like a message handler. Executors may
	// add scheduler latency (the emulator models the Linux jiffy quantum).
	SetTimer(d float64, fn func()) TimerHandle
}

// Protocol is one layer of a process stack. Start is invoked once when the
// executor begins; message handlers are registered against the Stack.
type Protocol interface {
	// Start is called once, after all layers are constructed, when the
	// process begins executing.
	Start()
}

// Stack dispatches inbound messages to protocol layers. Layers register
// handlers for the message types they own, and taps that observe every
// inbound message (the heartbeat failure detector taps all traffic because
// "the reception of any message from q resets the timer", §2.2).
type Stack struct {
	ctx      Context
	layers   []Protocol
	handlers map[string]func(Message)
	// kinds is the devirtualized fast path: messages carrying a typed
	// payload dispatch through this array without hashing Type. Entries
	// are registered by HandleKind alongside the string handler. Kind
	// handlers and taps receive the message by pointer: the hot dispatch
	// chain (executor -> tap -> handler -> protocol routing) would
	// otherwise copy the ~100-byte Message at every hop. The pointee is
	// only valid for the duration of the call.
	kinds [numPayloadKinds]func(*Message)
	taps  []func(*Message)
}

// NewStack creates an empty stack bound to an execution context.
func NewStack(ctx Context) *Stack {
	return &Stack{ctx: ctx, handlers: make(map[string]func(Message))}
}

// Context returns the execution context of the stack.
func (s *Stack) Context() Context { return s.ctx }

// AddLayer appends a protocol layer. Layers are started in registration
// order (bottom first).
func (s *Stack) AddLayer(p Protocol) { s.layers = append(s.layers, p) }

// Handle registers a handler for an exact message type. Registering a
// duplicate type panics: message ownership must be unambiguous.
func (s *Stack) Handle(msgType string, h func(Message)) {
	if _, dup := s.handlers[msgType]; dup {
		panic(fmt.Sprintf("neko: duplicate handler for message type %q", msgType))
	}
	s.handlers[msgType] = h
}

// HandleKind registers a handler for messages of one payload kind, and —
// under msgType — for the string-dispatch path as well (transports and
// tests that look messages up by type see the same handler). Hot
// executors dispatch on the kind array; the map entry keeps HandledTypes
// and string-keyed delivery coherent. Duplicate registration of either
// the kind or the type panics.
func (s *Stack) HandleKind(k PayloadKind, msgType string, h func(*Message)) {
	if k == PayloadNone || k >= numPayloadKinds {
		panic(fmt.Sprintf("neko: HandleKind with invalid payload kind %d", k))
	}
	if s.kinds[k] != nil {
		panic(fmt.Sprintf("neko: duplicate handler for payload kind %d", k))
	}
	s.Handle(msgType, func(m Message) { h(&m) })
	s.kinds[k] = h
}

// Tap registers an observer invoked for every inbound message, before the
// type handler.
func (s *Stack) Tap(fn func(*Message)) { s.taps = append(s.taps, fn) }

// Start starts all layers in registration order.
func (s *Stack) Start() {
	for _, l := range s.layers {
		l.Start()
	}
}

// Dispatch routes an inbound message: taps first, then the handler —
// through the kind array when the payload carries a registered kind
// (no string hashing on the hot protocol paths), falling back to the
// type-string map otherwise. Messages without a handler are dropped
// silently (a layer may have shut down); executors log them if
// configured.
// The message is passed by pointer down the hot path; handlers must not
// retain it past the call.
func (s *Stack) Dispatch(m *Message) {
	for _, tap := range s.taps {
		tap(m)
	}
	if k := m.Payload.Kind; k != PayloadNone {
		if h := s.kinds[k]; h != nil {
			h(m)
			return
		}
	}
	if h, ok := s.handlers[m.Type]; ok {
		h(*m)
	}
}

// HandledTypes returns the registered message types, sorted (for tests).
func (s *Stack) HandledTypes() []string {
	ts := make([]string, 0, len(s.handlers))
	for t := range s.handlers {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	return ts
}

// Broadcast sends m to every process except the sender, as n−1 unicast
// messages in ascending process-ID order — exactly what the measured
// implementation does (§5.1: "in the implementation they are n−1 unicast
// messages"). The SAN model, by contrast, models a broadcast as a single
// message; that asymmetry explains the n = 3 crash anomaly in Table 1.
func Broadcast(ctx Context, m Message) {
	for id := ProcessID(1); id <= ProcessID(ctx.N()); id++ {
		if id == ctx.ID() {
			continue
		}
		mm := m
		mm.To = id
		ctx.Send(mm)
	}
}

// FailureDetector is the query interface of a local failure-detector
// module (§2.1): a list of processes currently suspected to have crashed.
type FailureDetector interface {
	// Suspects reports whether q is currently suspected.
	Suspects(q ProcessID) bool
	// OnChange registers a callback fired whenever the suspicion state of
	// some monitored process changes. Consensus uses it to abort waiting
	// for a suspected coordinator.
	OnChange(fn func(q ProcessID, suspected bool))
}
