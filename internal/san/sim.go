package san

import (
	"fmt"
	"math"
	"sort"

	"ctsan/internal/des"
	"ctsan/internal/rng"
)

// Sim executes one stochastic realization of a SAN model. Create it with
// NewSim, then call Run (or Step). The same Model may back many Sims.
//
// The simulator re-evaluates an activity's enabling only when a place it
// depends on (default input arcs plus declared gate Reads) changes marking.
// This makes event cost proportional to the local fan-out of the firing
// rather than to model size — essential for the paper's consensus model,
// whose joined submodels have hundreds of activities. SetFullRescan
// disables the optimization for differential testing.
type Sim struct {
	model   *Model
	marking Marking
	sim     des.Sim
	rand    *rng.Stream
	onFire  func(a *Activity, caseIdx int)
	fired   uint64

	armed   []des.Handle // per activity; meaningful when isArmed
	isArmed []bool
	fireFns []func() // per activity; reused across armings and Resets

	deps       [][]int // place idx -> dependent activity idxs
	pending    []int
	inPending  []bool
	instON     []bool // instantaneous activity currently enabled
	numInstON  int
	timedTouch []int // timed activities to (re)examine at the end of settle
	inTouch    []bool

	fullRescan bool
	instLimit  int
}

// NewSim prepares a simulation of the model with the given random stream.
// It panics if the model fails Validate; validate explicitly for a
// recoverable error.
func NewSim(m *Model, r *rng.Stream) *Sim {
	root := m.rootModel()
	if err := root.Validate(); err != nil {
		panic(err)
	}
	nA := len(root.activities)
	s := &Sim{
		model:     root,
		rand:      r,
		armed:     make([]des.Handle, nA),
		isArmed:   make([]bool, nA),
		inPending: make([]bool, nA),
		instON:    make([]bool, nA),
		inTouch:   make([]bool, nA),
		instLimit: 1_000_000,
	}
	s.marking = Marking{
		m:    make([]int, len(root.places)),
		arr:  make([][]float64, len(root.places)),
		head: make([]int, len(root.places)),
	}
	for _, p := range root.places {
		s.marking.m[p.idx] = p.initial
		for k := 0; k < p.initial; k++ {
			s.marking.arr[p.idx] = append(s.marking.arr[p.idx], 0)
		}
	}
	// Build the place -> activities dependency index.
	s.deps = make([][]int, len(root.places))
	for _, a := range root.activities {
		seen := make(map[int]bool)
		add := func(p *Place) {
			if !seen[p.idx] {
				seen[p.idx] = true
				s.deps[p.idx] = append(s.deps[p.idx], a.idx)
			}
		}
		for _, p := range a.inputs {
			add(p)
		}
		for _, g := range a.gates {
			for _, p := range g.Reads {
				add(p)
			}
		}
	}
	// One completion closure per activity, allocated once: arming an
	// activity must not allocate in the steady state.
	s.fireFns = make([]func(), nA)
	for i, a := range root.activities {
		a := a
		s.fireFns[i] = func() { s.fire(a) }
	}
	// Every activity starts pending.
	for i := 0; i < nA; i++ {
		s.pending = append(s.pending, i)
		s.inPending[i] = true
	}
	return s
}

// Reset returns the simulator to the model's initial marking with a fresh
// random stream, reusing every internal allocation (marking arrays,
// dependency index, event pool). It is observably equivalent to
// NewSim(model, r) but allocation-free, which matters in Monte-Carlo
// replica loops where a worker runs thousands of realizations. The OnFire
// observer, full-rescan mode, and instantaneous-loop limit are preserved.
func (s *Sim) Reset(r *rng.Stream) {
	s.rand = r
	s.fired = 0
	s.sim.Reset()
	mk := &s.marking
	for _, p := range s.model.places {
		i := p.idx
		mk.m[i] = p.initial
		mk.arr[i] = mk.arr[i][:0]
		mk.head[i] = 0
		for k := 0; k < p.initial; k++ {
			mk.arr[i] = append(mk.arr[i], 0)
		}
	}
	mk.dirty = mk.dirty[:0]
	mk.now = 0
	s.pending = s.pending[:0]
	for i := range s.model.activities {
		s.isArmed[i] = false
		s.instON[i] = false
		s.inTouch[i] = false
		s.inPending[i] = true
		s.pending = append(s.pending, i)
	}
	s.numInstON = 0
	s.timedTouch = s.timedTouch[:0]
}

// SetFullRescan forces re-evaluation of every activity after every firing,
// ignoring declared dependencies. Slow; used to validate gate Reads
// declarations in tests.
func (s *Sim) SetFullRescan(on bool) { s.fullRescan = on }

// Marking exposes the live marking (for reward observation between events).
func (s *Sim) Marking() *Marking { return &s.marking }

// Now returns the current virtual time in milliseconds.
func (s *Sim) Now() float64 { return s.sim.Now() }

// Fired returns the number of activity completions so far.
func (s *Sim) Fired() uint64 { return s.fired }

// OnFire registers an observer invoked after every activity completion,
// with the completed activity and chosen case index. Used for reward
// variables ("impulse rewards" in SAN terminology).
func (s *Sim) OnFire(fn func(a *Activity, caseIdx int)) { s.onFire = fn }

// enqueue marks activity ai for re-evaluation.
func (s *Sim) enqueue(ai int) {
	if !s.inPending[ai] {
		s.inPending[ai] = true
		s.pending = append(s.pending, ai)
	}
}

// drainDirty propagates marking writes into the pending set.
func (s *Sim) drainDirty() {
	if s.fullRescan {
		s.marking.dirty = s.marking.dirty[:0]
		for i := range s.model.activities {
			s.enqueue(i)
		}
		return
	}
	for _, pi := range s.marking.dirty {
		for _, ai := range s.deps[pi] {
			s.enqueue(ai)
		}
	}
	s.marking.dirty = s.marking.dirty[:0]
}

// refreshPending folds the pending set into the enabled-instantaneous set
// and the touched-timed list.
func (s *Sim) refreshPending() {
	for _, ai := range s.pending {
		s.inPending[ai] = false
		a := s.model.activities[ai]
		if a.timed {
			if !s.inTouch[ai] {
				s.inTouch[ai] = true
				s.timedTouch = append(s.timedTouch, ai)
			}
			continue
		}
		on := a.enabled(&s.marking)
		if on != s.instON[ai] {
			s.instON[ai] = on
			if on {
				s.numInstON++
			} else {
				s.numInstON--
			}
		}
	}
	s.pending = s.pending[:0]
}

// settle completes enabled instantaneous activities (highest priority
// first, creation order as tie-break) until none is enabled, then re-arms
// timed activities to match the final marking.
func (s *Sim) settle() {
	s.drainDirty()
	for iter := 0; ; iter++ {
		if iter >= s.instLimit {
			panic(fmt.Sprintf("san: instantaneous activity loop in model %q", s.model.name))
		}
		s.refreshPending()
		if s.numInstON == 0 {
			break
		}
		var best *Activity
		bestKey := 0.0
		for ai, on := range s.instON {
			if !on {
				continue
			}
			a := s.model.activities[ai]
			key := math.Inf(-1)
			if a.fifoKey != nil {
				key = s.marking.OldestArrival(a.fifoKey)
			}
			if best == nil || a.priority > best.priority ||
				(a.priority == best.priority && key < bestKey) {
				best = a
				bestKey = key
			}
		}
		if best == nil {
			break // stale count; repaired by refresh above
		}
		s.complete(best)
		s.enqueue(best.idx)
		s.drainDirty()
	}
	// Re-arm touched timed activities against the stable marking.
	for _, ai := range s.timedTouch {
		s.inTouch[ai] = false
		a := s.model.activities[ai]
		en := a.enabled(&s.marking)
		switch {
		case en && !s.isArmed[a.idx]:
			d := a.delay(&s.marking).Sample(s.rand)
			s.isArmed[a.idx] = true
			s.armed[a.idx] = s.sim.After(d, s.fireFns[a.idx])
		case !en && s.isArmed[a.idx]:
			s.sim.Cancel(s.armed[a.idx])
			s.isArmed[a.idx] = false
		}
	}
	s.timedTouch = s.timedTouch[:0]
}

// fire handles the scheduled completion of a timed activity.
func (s *Sim) fire(a *Activity) {
	s.isArmed[a.idx] = false
	s.enqueue(a.idx) // may need re-arming if still enabled afterwards
	// The activity was continuously enabled since arming (we cancel on
	// disable), but a same-timestamp event may have disabled it; re-check.
	if !a.enabled(&s.marking) {
		s.settle()
		return
	}
	s.complete(a)
	s.settle()
}

// complete applies the effect of an activity completion: input arcs and
// gate functions, case selection, then output arcs and gate functions.
func (s *Sim) complete(a *Activity) {
	s.marking.now = s.sim.Now()
	for _, p := range a.inputs {
		s.marking.Add(p, -1)
	}
	for _, g := range a.gates {
		if g.Fn != nil {
			g.Fn(&s.marking)
		}
	}
	caseIdx := 0
	if len(a.cases) > 1 {
		u := s.rand.Float64()
		acc := 0.0
		for i, c := range a.cases {
			acc += c.p
			if u < acc || i == len(a.cases)-1 {
				caseIdx = i
				break
			}
		}
	}
	if len(a.cases) > 0 {
		c := a.cases[caseIdx]
		for _, p := range c.outputs {
			s.marking.Add(p, 1)
		}
		for _, g := range c.gates {
			g.Fn(&s.marking)
		}
	}
	s.fired++
	if s.onFire != nil {
		s.onFire(a, caseIdx)
	}
}

// Run simulates until stop returns true (checked after each completion and
// once before the first), no activity is enabled, or the virtual clock
// exceeds tmax. It returns the stop time and whether stop was satisfied.
func (s *Sim) Run(tmax float64, stop func(mk *Marking) bool) (t float64, stopped bool) {
	s.settle()
	if stop != nil && stop(&s.marking) {
		return s.sim.Now(), true
	}
	for {
		nt, ok := s.sim.PeekTime()
		if !ok || nt > tmax {
			return s.sim.Now(), false
		}
		s.sim.Step()
		if stop != nil && stop(&s.marking) {
			return s.sim.Now(), true
		}
	}
}

// EnabledActivities returns the names of currently enabled activities,
// sorted; useful in tests and debugging.
func (s *Sim) EnabledActivities() []string {
	var names []string
	for _, a := range s.model.activities {
		if a.enabled(&s.marking) {
			names = append(names, a.name)
		}
	}
	sort.Strings(names)
	return names
}
