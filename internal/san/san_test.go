package san

import (
	"math"
	"strings"
	"testing"

	"ctsan/internal/dist"
	"ctsan/internal/rng"
)

func TestBuilderValidation(t *testing.T) {
	t.Run("duplicate place name", func(t *testing.T) {
		m := NewModel("m")
		m.Place("p", 0)
		defer expectPanic(t, "duplicate")
		m.Place("p", 0)
	})
	t.Run("duplicate activity name", func(t *testing.T) {
		m := NewModel("m")
		m.Timed("a", Fixed(dist.Det(1))).Input(m.Place("p", 1))
		defer expectPanic(t, "duplicate")
		m.Instant("a", 0)
	})
	t.Run("negative initial marking", func(t *testing.T) {
		m := NewModel("m")
		defer expectPanic(t, "negative")
		m.Place("p", -1)
	})
	t.Run("timed without delay", func(t *testing.T) {
		m := NewModel("m")
		defer expectPanic(t, "delay")
		m.Timed("a", nil)
	})
	t.Run("activity without inputs", func(t *testing.T) {
		m := NewModel("m")
		m.Timed("a", Fixed(dist.Det(1)))
		if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "no input") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("case probabilities must sum to 1", func(t *testing.T) {
		m := NewModel("m")
		a := m.Timed("a", Fixed(dist.Det(1))).Input(m.Place("p", 1))
		a.Case(0.3)
		a.Case(0.3)
		if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "sum") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("valid model", func(t *testing.T) {
		m := NewModel("m")
		m.Timed("a", Fixed(dist.Det(1))).Input(m.Place("p", 1)).Output(m.Place("q", 0))
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

func expectPanic(t *testing.T, substr string) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatalf("expected panic containing %q", substr)
	}
}

func TestNamespaceJoin(t *testing.T) {
	m := NewModel("root")
	shared := m.Place("shared", 1)
	a := m.Namespace("A")
	b := m.Namespace("B")
	pa := a.Place("p", 0)
	pb := b.Place("p", 0) // same short name, different namespace
	if pa.Name() != "A.p" || pb.Name() != "B.p" {
		t.Fatalf("namespaced names: %q %q", pa.Name(), pb.Name())
	}
	a.Timed("t", Fixed(dist.Det(1))).Input(shared).Output(pa)
	b.Timed("t", Fixed(dist.Det(2))).Input(shared).Output(pb)
	if len(m.Places()) != 3 || len(m.Activities()) != 2 {
		t.Fatalf("join produced %d places, %d activities", len(m.Places()), len(m.Activities()))
	}
	nested := a.Namespace("X")
	if p := nested.Place("q", 0); p.Name() != "A.X.q" {
		t.Fatalf("nested namespace name %q", p.Name())
	}
}

// TestChainTiming: a deterministic two-stage chain completes at the sum of
// the stage delays.
func TestChainTiming(t *testing.T) {
	m := NewModel("chain")
	p0 := m.Place("p0", 1)
	p1 := m.Place("p1", 0)
	p2 := m.Place("p2", 0)
	m.Timed("a01", Fixed(dist.Det(1.5))).Input(p0).Output(p1)
	m.Timed("a12", Fixed(dist.Det(2.5))).Input(p1).Output(p2)
	s := NewSim(m, rng.New(1))
	at, stopped := s.Run(100, func(mk *Marking) bool { return mk.Get(p2) == 1 })
	if !stopped || at != 4 {
		t.Fatalf("chain completed at %v (stopped %v), want 4", at, stopped)
	}
}

// TestResourceHolding: two customers through a seize/serve single server
// finish at t=1 and t=2, not both at t=1.
func TestResourceHolding(t *testing.T) {
	m := NewModel("server")
	q := m.Place("q", 2)
	res := m.Place("res", 1)
	busy := m.Place("busy", 0)
	done := m.Place("done", 0)
	m.Instant("seize", 0).Input(q, res).Output(busy)
	m.Timed("serve", Fixed(dist.Det(1))).Input(busy).Output(res, done)
	s := NewSim(m, rng.New(1))
	at, stopped := s.Run(100, func(mk *Marking) bool { return mk.Get(done) == 2 })
	if !stopped || at != 2 {
		t.Fatalf("two customers done at %v, want 2 (serialized service)", at)
	}
}

// TestInstantPriority: the higher-priority instantaneous activity consumes
// the contested token.
func TestInstantPriority(t *testing.T) {
	m := NewModel("prio")
	p := m.Place("p", 1)
	lo := m.Place("lo", 0)
	hi := m.Place("hi", 0)
	m.Instant("low", 1).Input(p).Output(lo)
	m.Instant("high", 2).Input(p).Output(hi)
	s := NewSim(m, rng.New(1))
	s.Run(1, nil)
	if s.Marking().Get(hi) != 1 || s.Marking().Get(lo) != 0 {
		t.Fatalf("priority violated: hi=%d lo=%d", s.Marking().Get(hi), s.Marking().Get(lo))
	}
}

// TestFIFOSelection: with equal priorities, the activity whose queue token
// arrived first wins the resource.
func TestFIFOSelection(t *testing.T) {
	m := NewModel("fifo")
	qa := m.Place("qa", 0)
	qb := m.Place("qb", 0)
	res := m.Place("res", 1)
	ares := m.Place("aDone", 0)
	bres := m.Place("bDone", 0)
	feedA := m.Place("feedA", 1)
	feedB := m.Place("feedB", 1)
	// b's token arrives at t=1, a's at t=2; despite "seizeA" being created
	// first, b must win.
	m.Timed("arriveB", Fixed(dist.Det(1))).Input(feedB).Output(qb)
	m.Timed("arriveA", Fixed(dist.Det(2))).Input(feedA).Output(qa)
	// Block the resource until t=3 so both tokens are waiting.
	hold := m.Place("hold", 0)
	m.Instant("grab", 5).Input(res).InputGate("once", []*Place{hold},
		func(mk *Marking) bool { return mk.Get(hold) == 0 && mk.Get(qa)+mk.Get(qb) == 0 }, nil).
		OutputGate("mark", func(mk *Marking) { mk.Set(hold, 1) })
	m.Timed("release", Fixed(dist.Det(3))).Input(hold).Output(res)
	m.Instant("seizeA", 0).Input(qa, res).FIFO(qa).Output(ares)
	m.Instant("seizeB", 0).Input(qb, res).FIFO(qb).Output(bres)
	s := NewSim(m, rng.New(1))
	s.Run(10, func(mk *Marking) bool { return mk.Get(ares)+mk.Get(bres) > 0 })
	if s.Marking().Get(bres) != 1 {
		t.Fatalf("FIFO violated: a=%d b=%d", s.Marking().Get(ares), s.Marking().Get(bres))
	}
}

// TestCaseProbabilities: case selection respects probabilities.
func TestCaseProbabilities(t *testing.T) {
	m := NewModel("cases")
	src := m.Place("src", 1)
	a := m.Place("a", 0)
	b := m.Place("b", 0)
	act := m.Timed("act", Fixed(dist.Det(0.01))).Input(src)
	act.Case(0.3).Output(a, src)
	act.Case(0.7).Output(b, src)
	s := NewSim(m, rng.New(4))
	const total = 20000
	s.Run(1e9, func(mk *Marking) bool { return mk.Get(a)+mk.Get(b) >= total })
	frac := float64(s.Marking().Get(a)) / total
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("case-1 fraction %v, want 0.3", frac)
	}
}

// TestDisableCancelsActivity: a timed activity that loses its enabling is
// aborted; UltraSAN reactivation semantics.
func TestDisableCancelsActivity(t *testing.T) {
	m := NewModel("cancel")
	p := m.Place("p", 1)
	stolen := m.Place("stolen", 0)
	slowDone := m.Place("slowDone", 0)
	m.Timed("slow", Fixed(dist.Det(10))).Input(p).Output(slowDone)
	// A faster activity steals the token at t=1.
	trigger := m.Place("trigger", 1)
	m.Timed("thief", Fixed(dist.Det(1))).Input(trigger, p).Output(stolen)
	s := NewSim(m, rng.New(1))
	s.Run(100, nil)
	if s.Marking().Get(slowDone) != 0 || s.Marking().Get(stolen) != 1 {
		t.Fatalf("slow=%d stolen=%d; slow activity should have been aborted",
			s.Marking().Get(slowDone), s.Marking().Get(stolen))
	}
}

// TestKeepsClockWhileEnabled: an armed activity that stays enabled keeps
// its completion time even when unrelated places change.
func TestKeepsClockWhileEnabled(t *testing.T) {
	m := NewModel("clock")
	p := m.Place("p", 1)
	done := m.Place("done", 0)
	noise := m.Place("noise", 1)
	noiseOut := m.Place("noiseOut", 0)
	m.Timed("main", Fixed(dist.Det(5))).Input(p).Output(done)
	m.Timed("noisy", Fixed(dist.Det(1))).Input(noise).Output(noiseOut)
	s := NewSim(m, rng.New(1))
	at, stopped := s.Run(100, func(mk *Marking) bool { return mk.Get(done) == 1 })
	if !stopped || at != 5 {
		t.Fatalf("main completed at %v, want 5", at)
	}
}

func TestInstantLoopPanics(t *testing.T) {
	m := NewModel("loop")
	p := m.Place("p", 1)
	m.Instant("spin", 0).Input(p).Output(p) // fires forever
	s := NewSim(m, rng.New(1))
	s.instLimit = 1000
	defer expectPanic(t, "loop")
	s.Run(1, nil)
}

func TestNegativeMarkingPanics(t *testing.T) {
	m := NewModel("neg")
	p := m.Place("p", 1)
	q := m.Place("q", 1)
	m.Instant("bad", 0).Input(q).OutputGate("og", func(mk *Marking) { mk.Add(p, -2) })
	s := NewSim(m, rng.New(1))
	defer expectPanic(t, "negative")
	s.Run(1, nil)
}

func TestOnFireObserver(t *testing.T) {
	m := NewModel("obs")
	p := m.Place("p", 3)
	sink := m.Place("sink", 0)
	m.Timed("a", Fixed(dist.Det(1))).Input(p).Output(sink)
	s := NewSim(m, rng.New(1))
	var names []string
	s.OnFire(func(a *Activity, caseIdx int) { names = append(names, a.Name()) })
	s.Run(100, nil)
	if len(names) != 3 {
		t.Fatalf("observer saw %d firings, want 3", len(names))
	}
	if s.Fired() != 3 {
		t.Fatalf("Fired() = %d", s.Fired())
	}
}

func TestEnabledActivities(t *testing.T) {
	m := NewModel("en")
	p := m.Place("p", 1)
	q := m.Place("q", 0)
	m.Timed("on", Fixed(dist.Det(1))).Input(p)
	m.Timed("off", Fixed(dist.Det(1))).Input(q)
	s := NewSim(m, rng.New(1))
	got := s.EnabledActivities()
	if len(got) != 1 || got[0] != "on" {
		t.Fatalf("enabled = %v", got)
	}
}

func TestMarkingFIFOArrivals(t *testing.T) {
	m := NewModel("arr")
	p := m.Place("p", 2)
	s := NewSim(m, rng.New(1))
	mk := s.Marking()
	if got := mk.OldestArrival(p); got != 0 {
		t.Fatalf("initial arrival %v", got)
	}
	mk.now = 5
	mk.Add(p, 1)
	mk.Add(p, -2) // the two initial tokens leave first
	if got := mk.OldestArrival(p); got != 5 {
		t.Fatalf("oldest after FIFO pops = %v, want 5", got)
	}
	mk.Add(p, -1)
	if got := mk.OldestArrival(p); !math.IsInf(got, 1) {
		t.Fatalf("empty place arrival = %v, want +Inf", got)
	}
}
