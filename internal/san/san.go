// Package san implements Stochastic Activity Networks (SANs), the modeling
// formalism of Movaghar, Meyer & Sanders used by the paper, together with a
// discrete-event transient simulator — an open substitute for the UltraSAN
// tool (§3.1).
//
// A SAN consists of:
//
//   - places holding non-negative integer markings;
//   - timed activities, which fire after a random delay drawn from a
//     (possibly marking-dependent) distribution once enabled;
//   - instantaneous activities, which fire as soon as they are enabled,
//     with integer priorities;
//   - cases on activities: probabilistic alternatives for the effect of a
//     firing (the paper uses them for the bi-modal network delay and for
//     the initial failure-detector state);
//   - input gates (enabling predicate + input function) and output gates
//     (output function), which give SANs their expressive power over plain
//     Petri nets;
//   - default input/output arcs, shorthand for "one token consumed/produced".
//
// Composition in UltraSAN (REP/JOIN) works by sharing places between
// submodels; here submodels are built programmatically and share *Place
// values directly, with Model.Namespace providing name scoping.
//
// Execution semantics follow UltraSAN: when the marking changes, every
// activity's enabling condition is re-evaluated. A newly enabled timed
// activity samples an activation delay; an activity that becomes disabled
// is deactivated (its sampled completion is aborted); an activity that
// remains enabled keeps its scheduled completion time. Instantaneous
// activities complete in priority order before any timed activity.
package san

import (
	"fmt"
	"math"

	"ctsan/internal/dist"
)

// Note on time: Marking tracks token arrival instants so that competing
// instantaneous activities can be served in arrival order (FIFO queueing
// for shared resources, §3.3 of the paper: a message "waits until the
// network is available"). The simulator keeps Marking.now current.

// Place is a SAN place. Places are created through Model.Place and hold a
// non-negative integer marking.
type Place struct {
	name    string
	idx     int
	initial int
}

// Name returns the place name.
func (p *Place) Name() string { return p.name }

// Marking is the state of a SAN: one non-negative integer per place.
// Gate predicates and functions receive the live marking. Writes are
// recorded so the simulator can re-evaluate only affected activities, and
// token arrival times are tracked per place to support FIFO resource
// queues (Activity.FIFO).
type Marking struct {
	m     []int
	dirty []int // place indices written since the last drain
	// arr[i] holds the arrival times of the tokens currently in place i,
	// oldest first (arr[i][head[i]:]). now is maintained by the simulator.
	arr  [][]float64
	head []int
	now  float64
}

// Get returns the number of tokens in p.
func (mk *Marking) Get(p *Place) int { return mk.m[p.idx] }

// OldestArrival returns the arrival time of the oldest token in p, or
// +Inf if p is empty. Used by FIFO activity selection.
func (mk *Marking) OldestArrival(p *Place) float64 {
	i := p.idx
	if mk.head[i] >= len(mk.arr[i]) {
		return math.Inf(1)
	}
	return mk.arr[i][mk.head[i]]
}

// Set assigns the number of tokens in p. Negative counts panic: they always
// indicate a modeling bug.
func (mk *Marking) Set(p *Place, v int) {
	if v < 0 {
		panic(fmt.Sprintf("san: negative marking for place %q", p.name))
	}
	old := mk.m[p.idx]
	if old == v {
		return
	}
	mk.m[p.idx] = v
	mk.dirty = append(mk.dirty, p.idx)
	i := p.idx
	for ; old < v; old++ { // tokens added now
		mk.arr[i] = append(mk.arr[i], mk.now)
	}
	for ; old > v; old-- { // oldest tokens leave first
		mk.head[i]++
	}
	if mk.head[i] >= len(mk.arr[i]) { // reclaim the drained prefix
		mk.arr[i] = mk.arr[i][:0]
		mk.head[i] = 0
	}
}

// Add adjusts the tokens in p by delta (which may be negative).
func (mk *Marking) Add(p *Place, delta int) { mk.Set(p, mk.m[p.idx]+delta) }

// InputGate controls the enabling of an activity and transforms the marking
// when the activity completes. Enabled must be side-effect free and must
// read only the places listed in Reads: the simulator re-evaluates the
// enabling of an activity only when one of its declared places changes
// marking (tests can cross-check with Sim.SetFullRescan). Fn may write any
// place; writes are tracked through the Marking automatically.
type InputGate struct {
	Name    string
	Reads   []*Place
	Enabled func(mk *Marking) bool
	Fn      func(mk *Marking) // may be nil
}

// OutputGate transforms the marking when a case of an activity completes.
type OutputGate struct {
	Name string
	Fn   func(mk *Marking)
}

// Case is one probabilistic alternative of an activity's effect.
type Case struct {
	p       float64
	outputs []*Place
	gates   []*OutputGate
}

// Output adds default output arcs (one token each) to the case.
func (c *Case) Output(places ...*Place) *Case {
	c.outputs = append(c.outputs, places...)
	return c
}

// Gate adds an output gate function to the case.
func (c *Case) Gate(name string, fn func(mk *Marking)) *Case {
	c.gates = append(c.gates, &OutputGate{Name: name, Fn: fn})
	return c
}

// DistFunc returns the firing-delay distribution for the current marking.
// Most activities use a fixed distribution; see Fixed.
type DistFunc func(mk *Marking) dist.Dist

// Fixed wraps a constant distribution as a DistFunc.
func Fixed(d dist.Dist) DistFunc { return func(*Marking) dist.Dist { return d } }

// Activity is a timed or instantaneous SAN activity. Configure it with the
// chained Input/InputGate/Case methods before simulating.
type Activity struct {
	name     string
	idx      int
	timed    bool
	delay    DistFunc // nil for instantaneous
	priority int      // instantaneous only; higher fires first
	inputs   []*Place
	gates    []*InputGate
	cases    []*Case
	fifoKey  *Place // see FIFO
}

// Name returns the activity name.
func (a *Activity) Name() string { return a.name }

// Input adds default input arcs: the activity is enabled only if each
// listed place holds at least one token, and one token is removed from each
// when the activity completes.
func (a *Activity) Input(places ...*Place) *Activity {
	a.inputs = append(a.inputs, places...)
	return a
}

// InputGate attaches an input gate. reads lists every place the enabling
// predicate consults (see InputGate.Reads).
func (a *Activity) InputGate(name string, reads []*Place, enabled func(mk *Marking) bool, fn func(mk *Marking)) *Activity {
	a.gates = append(a.gates, &InputGate{Name: name, Reads: reads, Enabled: enabled, Fn: fn})
	return a
}

// Case appends a case with the given probability and returns it for
// configuration. Case probabilities of an activity must sum to 1 (checked
// by Model.Validate). An activity with no explicit cases has a single
// implicit case with probability 1; use DefaultCase for it.
func (a *Activity) Case(p float64) *Case {
	c := &Case{p: p}
	a.cases = append(a.cases, c)
	return c
}

// DefaultCase returns the single implicit case (probability 1), creating it
// if needed. It panics if explicit cases were already added.
func (a *Activity) DefaultCase() *Case {
	if len(a.cases) == 0 {
		return a.Case(1)
	}
	if len(a.cases) == 1 {
		return a.cases[0]
	}
	panic(fmt.Sprintf("san: activity %q already has %d cases", a.name, len(a.cases)))
}

// Output is shorthand for DefaultCase().Output.
func (a *Activity) Output(places ...*Place) *Activity {
	a.DefaultCase().Output(places...)
	return a
}

// OutputGate is shorthand for DefaultCase().Gate.
func (a *Activity) OutputGate(name string, fn func(mk *Marking)) *Activity {
	a.DefaultCase().Gate(name, fn)
	return a
}

// FIFO declares that, among enabled instantaneous activities of equal
// priority, this activity competes in arrival order of the oldest token in
// q (its waiting queue). This gives shared resources (CPU, network medium)
// first-come-first-served service instead of the default
// creation-order resolution.
func (a *Activity) FIFO(q *Place) *Activity {
	a.fifoKey = q
	return a
}

// enabled reports whether the activity may fire in marking mk.
func (a *Activity) enabled(mk *Marking) bool {
	for _, p := range a.inputs {
		if mk.Get(p) < 1 {
			return false
		}
	}
	for _, g := range a.gates {
		if !g.Enabled(mk) {
			return false
		}
	}
	return true
}

// Model is a SAN under construction. Build places and activities, then
// Validate and simulate with NewSim or Transient.
type Model struct {
	name       string
	places     []*Place
	activities []*Activity
	byName     map[string]bool
	prefix     string
	root       *Model // owner of the slices; nil when the receiver is the root
}

// NewModel creates an empty model.
func NewModel(name string) *Model {
	return &Model{name: name, byName: make(map[string]bool)}
}

// Name returns the model name.
func (m *Model) Name() string { return m.name }

// Namespace returns a view of the model that prefixes all created names
// with prefix + "."; places and activities land in the same flat model, so
// sharing a *Place across namespaces is the JOIN operation of UltraSAN.
func (m *Model) Namespace(prefix string) *Model {
	child := *m
	if m.prefix != "" {
		child.prefix = m.prefix + "." + prefix
	} else {
		child.prefix = prefix
	}
	// Namespace returns a shallow view; all mutations are routed to the
	// root model so that namespaced submodels share one flat SAN (JOIN).
	child.root = m.rootModel()
	return &child
}

func (m *Model) rootModel() *Model {
	if m.root != nil {
		return m.root
	}
	return m
}

// scopedName applies the namespace prefix.
func (m *Model) scopedName(name string) string {
	if m.prefix == "" {
		return name
	}
	return m.prefix + "." + name
}

// Place creates a place with an initial marking.
func (m *Model) Place(name string, initial int) *Place {
	root := m.rootModel()
	full := m.scopedName(name)
	if root.byName[full] {
		panic(fmt.Sprintf("san: duplicate name %q", full))
	}
	if initial < 0 {
		panic(fmt.Sprintf("san: negative initial marking for %q", full))
	}
	root.byName[full] = true
	p := &Place{name: full, idx: len(root.places), initial: initial}
	root.places = append(root.places, p)
	return p
}

// Timed creates a timed activity with the given delay distribution.
func (m *Model) Timed(name string, delay DistFunc) *Activity {
	return m.addActivity(name, true, delay, 0)
}

// Instant creates an instantaneous activity with the given priority
// (higher priorities complete first).
func (m *Model) Instant(name string, priority int) *Activity {
	return m.addActivity(name, false, nil, priority)
}

func (m *Model) addActivity(name string, timed bool, delay DistFunc, prio int) *Activity {
	root := m.rootModel()
	full := m.scopedName(name)
	if root.byName[full] {
		panic(fmt.Sprintf("san: duplicate name %q", full))
	}
	if timed && delay == nil {
		panic(fmt.Sprintf("san: timed activity %q without delay distribution", full))
	}
	root.byName[full] = true
	a := &Activity{name: full, idx: len(root.activities), timed: timed, delay: delay, priority: prio}
	root.activities = append(root.activities, a)
	return a
}

// Places returns the model's places in creation order.
func (m *Model) Places() []*Place { return m.rootModel().places }

// Activities returns the model's activities in creation order.
func (m *Model) Activities() []*Activity { return m.rootModel().activities }

// Validate checks structural well-formedness: case probabilities sum to 1,
// every activity has an effect, and gate predicates are present.
func (m *Model) Validate() error {
	root := m.rootModel()
	for _, a := range root.activities {
		if len(a.inputs) == 0 && len(a.gates) == 0 {
			return fmt.Errorf("san: activity %q has no input arcs or gates (always enabled)", a.name)
		}
		for _, g := range a.gates {
			if g.Enabled == nil {
				return fmt.Errorf("san: input gate %q of %q has nil predicate", g.Name, a.name)
			}
		}
		if len(a.cases) > 0 {
			sum := 0.0
			for _, c := range a.cases {
				if c.p < 0 {
					return fmt.Errorf("san: activity %q has negative case probability", a.name)
				}
				sum += c.p
			}
			if math.Abs(sum-1) > 1e-9 {
				return fmt.Errorf("san: case probabilities of %q sum to %g, want 1", a.name, sum)
			}
		}
	}
	return nil
}
