package san

import (
	"context"
	"testing"

	"ctsan/internal/dist"
	"ctsan/internal/rng"
)

// branching builds a model with instantaneous activities, cases, gates and
// FIFO competition — every simulator feature Reset must restore.
func branching() (*Model, *Place) {
	m := NewModel("branching")
	src := m.Place("src", 3)
	q := m.Place("q", 0)
	server := m.Place("server", 1)
	busy := m.Place("busy", 0)
	done := m.Place("done", 0)
	lost := m.Place("lost", 0)
	m.Timed("arrive", Fixed(dist.Exp(0.7))).Input(src).Output(q)
	m.Instant("seize", 1).Input(q, server).FIFO(q).Output(busy)
	serve := m.Timed("serve", Fixed(dist.U(0.5, 1.5))).Input(busy)
	serve.Case(0.8).Output(server, done)
	serve.Case(0.2).Output(server, lost)
	return m, done
}

// TestResetEquivalentToNewSim: a reused, Reset Sim must replay the exact
// trajectory a fresh NewSim produces from the same stream.
func TestResetEquivalentToNewSim(t *testing.T) {
	m, done := branching()
	stop := func(mk *Marking) bool { return mk.Get(done)+mk.Get(m.Places()[5]) == 3 }
	reused := NewSim(m, rng.New(999))
	for seed := uint64(1); seed <= 50; seed++ {
		fresh := NewSim(m, rng.New(seed))
		ft, fstop := fresh.Run(1e6, stop)
		reused.Reset(rng.New(seed))
		rt, rstop := reused.Run(1e6, stop)
		if ft != rt || fstop != rstop || fresh.Fired() != reused.Fired() {
			t.Fatalf("seed %d: fresh (t=%v stop=%v fired=%d) != reset (t=%v stop=%v fired=%d)",
				seed, ft, fstop, fresh.Fired(), rt, rstop, reused.Fired())
		}
		for i, p := range m.Places() {
			if fresh.Marking().Get(p) != reused.Marking().Get(p) {
				t.Fatalf("seed %d: final marking differs at place %d", seed, i)
			}
		}
	}
}

// TestTransientDeterministicAcrossWorkers: the differential determinism
// guarantee — for a fixed seed, the parallel engine produces byte-identical
// samples to the serial reference (Workers: 1) at every worker count.
func TestTransientDeterministicAcrossWorkers(t *testing.T) {
	m, done := branching()
	spec := func(workers int) TransientSpec {
		return TransientSpec{
			Replicas: 600,
			Tmax:     3, // truncates some replicas, exercising that path too
			Workers:  workers,
			Stop:     func(mk *Marking) bool { return mk.Get(done) >= 2 },
			Measure: func(mk *Marking, tt float64) float64 {
				return tt + float64(mk.Get(done))
			},
		}
	}
	build := func() *Model { return m }
	ref, err := Transient(context.Background(), build, rng.New(42), spec(1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Digest.N() == 0 || ref.Truncated == 0 {
		t.Fatalf("weak reference: %d samples, %d truncated — tune the spec", ref.Digest.N(), ref.Truncated)
	}
	for _, w := range []int{2, 8} {
		got, err := Transient(context.Background(), build, rng.New(42), spec(w))
		if err != nil {
			t.Fatal(err)
		}
		if got.Truncated != ref.Truncated {
			t.Fatalf("workers=%d: truncated %d, want %d", w, got.Truncated, ref.Truncated)
		}
		gs, rs := got.Digest.Exact(), ref.Digest.Exact()
		if len(gs) != len(rs) {
			t.Fatalf("workers=%d: %d samples, want %d", w, len(gs), len(rs))
		}
		for i := range rs {
			if gs[i] != rs[i] {
				t.Fatalf("workers=%d: sample %d = %v, want %v (bit-exact)", w, i, gs[i], rs[i])
			}
		}
		if got.Digest.Mean() != ref.Digest.Mean() || got.Digest.N() != ref.Digest.N() {
			t.Fatalf("workers=%d: digest moments differ", w)
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if got.Digest.Quantile(q) != ref.Digest.Quantile(q) {
				t.Fatalf("workers=%d: q=%g differs", w, q)
			}
		}
	}
}

// TestTransientReplicaLoopAllocs: with a shared model and Sim reuse, the
// per-replica steady state must stay allocation-lean. The bound is loose
// (ECDF-free replica bodies still grow Samples), but catches regressions
// to per-replica NewSim, which allocates the whole simulator state.
func TestTransientReplicaLoopAllocs(t *testing.T) {
	m, done := branching()
	sim := NewSim(m, rng.New(1))
	stop := func(mk *Marking) bool { return mk.Get(done) >= 1 }
	// Warm up, then measure the Reset+Run replica body.
	sim.Reset(rng.New(2))
	sim.Run(1e6, stop)
	seed := uint64(3)
	if allocs := testing.AllocsPerRun(200, func() {
		sim.Reset(rng.New(seed))
		seed++
		sim.Run(1e6, stop)
	}); allocs > 2 {
		t.Fatalf("replica loop allocates %.1f objects/op, want ~0", allocs)
	}
}

// BenchmarkSimReset is the replica body with simulator reuse.
func BenchmarkSimReset(b *testing.B) {
	m, done := branching()
	stop := func(mk *Marking) bool { return mk.Get(done) >= 1 }
	sim := NewSim(m, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Reset(rng.New(uint64(i) + 1))
		sim.Run(1e6, stop)
	}
}

// BenchmarkSimNewPerReplica is the pre-Reset baseline: a fresh simulator
// per replica.
func BenchmarkSimNewPerReplica(b *testing.B) {
	m, done := branching()
	stop := func(mk *Marking) bool { return mk.Get(done) >= 1 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := NewSim(m, rng.New(uint64(i)+1))
		sim.Run(1e6, stop)
	}
}
