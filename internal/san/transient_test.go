package san

import (
	"context"
	"math"
	"testing"

	"ctsan/internal/dist"
	"ctsan/internal/rng"
)

// expModel builds a one-shot exponential timer model.
func expModel(mean float64) func() *Model {
	return func() *Model {
		m := NewModel("exp")
		p := m.Place("p", 1)
		done := m.Place("done", 0)
		m.Timed("fire", Fixed(dist.Exp(mean))).Input(p).Output(done)
		return m
	}
}

func TestTransientEstimatesMean(t *testing.T) {
	// Build once and share: models carry no run-time state, so one
	// instance can back every (possibly concurrent) replica.
	m := expModel(2)()
	donePlace := m.Places()[1]
	res, err := Transient(context.Background(), func() *Model { return m }, rng.New(3), TransientSpec{
		Replicas: 4000,
		Tmax:     1e6,
		Stop:     func(mk *Marking) bool { return mk.Get(donePlace) == 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Digest.Mean()-2) > 0.1 {
		t.Fatalf("mean stop time %v, want ~2", res.Digest.Mean())
	}
	if res.Truncated != 0 {
		t.Fatalf("unexpected truncations: %d", res.Truncated)
	}
	if res.ECDF().N() != 4000 {
		t.Fatalf("sample count %d", res.ECDF().N())
	}
	// Exponential median = mean*ln2.
	if med := res.ECDF().Quantile(0.5); math.Abs(med-2*math.Ln2) > 0.12 {
		t.Fatalf("median %v, want ~%v", med, 2*math.Ln2)
	}
}

func TestTransientTruncation(t *testing.T) {
	m := expModel(10)()
	donePlace := m.Places()[1]
	res, err := Transient(context.Background(), func() *Model { return m }, rng.New(3), TransientSpec{
		Replicas: 500,
		Tmax:     1, // most replicas exceed this horizon
		Stop:     func(mk *Marking) bool { return mk.Get(donePlace) == 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated < 400 {
		t.Fatalf("expected heavy truncation, got %d/500", res.Truncated)
	}
}

func TestTransientMeasureDiscard(t *testing.T) {
	m := expModel(1)()
	donePlace := m.Places()[1]
	res, err := Transient(context.Background(), func() *Model { return m }, rng.New(3), TransientSpec{
		Replicas: 100,
		Tmax:     1e6,
		Stop:     func(mk *Marking) bool { return mk.Get(donePlace) == 1 },
		Measure: func(mk *Marking, tt float64) float64 {
			if tt > 1 {
				return math.NaN() // discard
			}
			return tt * 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest.N() == 0 || res.Digest.N() == 100 {
		t.Fatalf("discarding Measure kept %d samples", res.Digest.N())
	}
	if res.Digest.Max() > 2 {
		t.Fatalf("Measure transform ignored: max %v", res.Digest.Max())
	}
}

func TestTransientSpecValidation(t *testing.T) {
	build := expModel(1)
	if _, err := Transient(context.Background(), build, rng.New(1), TransientSpec{Replicas: 0, Tmax: 1, Stop: func(*Marking) bool { return true }}); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := Transient(context.Background(), build, rng.New(1), TransientSpec{Replicas: 1, Tmax: 1}); err == nil {
		t.Error("nil stop accepted")
	}
	if _, err := Transient(context.Background(), build, rng.New(1), TransientSpec{Replicas: 1, Tmax: 0, Stop: func(*Marking) bool { return true }}); err == nil {
		t.Error("zero Tmax accepted")
	}
}

// TestMM1Theory checks the engine against the M/M/1 mean queue length
// rho/(1-rho), a standard DES validation.
func TestMM1Theory(t *testing.T) {
	const (
		lambda  = 0.5
		mu      = 1.0
		horizon = 100000.0
	)
	m := NewModel("mm1")
	src := m.Place("src", 1)
	q := m.Place("q", 0)
	server := m.Place("server", 1)
	busy := m.Place("busy", 0)
	m.Timed("arrive", Fixed(dist.Exp(1/lambda))).Input(src).Output(src, q)
	m.Instant("seize", 0).Input(q, server).FIFO(q).Output(busy)
	m.Timed("serve", Fixed(dist.Exp(1/mu))).Input(busy).Output(server)
	s := NewSim(m, rng.New(21))
	var area, last, prev float64
	s.OnFire(func(*Activity, int) {
		now := s.Now()
		area += prev * (now - last)
		last = now
		prev = float64(s.Marking().Get(q) + s.Marking().Get(busy))
	})
	s.Run(horizon, nil)
	avg := area / s.Now()
	rho := lambda / mu
	want := rho / (1 - rho)
	if math.Abs(avg-want) > 0.08 {
		t.Fatalf("M/M/1 mean number in system %v, want %v", avg, want)
	}
}
