package san

import (
	"testing"
	"testing/quick"

	"ctsan/internal/dist"
	"ctsan/internal/rng"
)

// buildRandomModel constructs a random but well-formed SAN: a ring of
// places connected by timed activities with random delays, plus gated
// instantaneous activities and a shared resource, exercising every engine
// feature.
func buildRandomModel(r *rng.Stream) (*Model, *Place) {
	m := NewModel("random")
	n := 3 + r.Intn(6)
	places := make([]*Place, n)
	for i := range places {
		init := 0
		if r.Float64() < 0.5 {
			init = 1 + r.Intn(2)
		}
		places[i] = m.Place(name("p", i), init)
	}
	resource := m.Place("resource", 1)
	done := m.Place("done", 0)
	for i := 0; i < n; i++ {
		src := places[i]
		dst := places[(i+1)%n]
		var d dist.Dist
		switch r.Intn(3) {
		case 0:
			d = dist.Det(0.1 + r.Float64())
		case 1:
			d = dist.Exp(0.5 + r.Float64())
		default:
			d = dist.U(0.1, 0.2+r.Float64())
		}
		a := m.Timed(name("t", i), Fixed(d)).Input(src)
		if r.Float64() < 0.5 {
			a.Case(0.4).Output(dst)
			a.Case(0.6).Output(dst, done)
		} else {
			a.Output(dst, done)
		}
	}
	// A gated instantaneous activity consuming the resource when a place
	// is doubly marked.
	watch := places[r.Intn(n)]
	sink := m.Place("sink", 0)
	m.Instant("gated", 1).
		Input(resource).
		FIFO(resource).
		InputGate("ge2", []*Place{watch}, func(mk *Marking) bool { return mk.Get(watch) >= 2 }, nil).
		OutputGate("drain", func(mk *Marking) {
			mk.Set(watch, 0)
			mk.Add(sink, 1)
		})
	return m, done
}

func name(prefix string, i int) string { return prefix + string(rune('a'+i)) }

// TestQuickDepTrackingEquivalence: on random models, the dependency-
// tracked simulator and the full-rescan simulator must produce identical
// trajectories (stop time and firing counts).
func TestQuickDepTrackingEquivalence(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		gen := rng.New(seed)
		model, done := buildRandomModel(gen)
		run := func(full bool) (float64, uint64) {
			s := NewSim(model, rng.New(seed^0xabc))
			s.SetFullRescan(full)
			at, _ := s.Run(50, func(mk *Marking) bool { return mk.Get(done) >= 20 })
			return at, s.Fired()
		}
		t1, f1 := run(false)
		t2, f2 := run(true)
		return t1 == t2 && f1 == f2
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMarkingsNonNegative: markings never go negative under any
// random trajectory (the engine would panic; this asserts it does not).
func TestQuickMarkingsNonNegative(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		gen := rng.New(seed)
		model, _ := buildRandomModel(gen)
		s := NewSim(model, rng.New(seed))
		s.Run(20, nil)
		for _, p := range model.Places() {
			if s.Marking().Get(p) < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminism: identical seeds give identical trajectories.
func TestQuickDeterminism(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		gen := rng.New(seed)
		model, done := buildRandomModel(gen)
		run := func() (float64, uint64) {
			s := NewSim(model, rng.New(seed))
			at, _ := s.Run(30, func(mk *Marking) bool { return mk.Get(done) >= 10 })
			return at, s.Fired()
		}
		t1, f1 := run()
		t2, f2 := run()
		return t1 == t2 && f1 == f2
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
