package san

import (
	"context"
	"fmt"

	"ctsan/internal/metrics"
	"ctsan/internal/parallel"
	"ctsan/internal/rng"
	"ctsan/internal/stats"
)

// TransientSpec describes a replicated transient study: run Replicas
// independent realizations of the model, each until Stop becomes true or
// Tmax is reached, and record the stop time of each replica. This is the
// "terminating simulation" solver the paper uses (§5: latency until the
// first process decides).
type TransientSpec struct {
	Replicas int
	Tmax     float64
	// Workers caps the goroutines running replicas: 0 (or negative) means
	// one per CPU, 1 forces the serial reference path. Results are
	// bit-identical for every worker count: replica i always draws from
	// the parent stream's Child(i), and per-replica outcomes are folded in
	// replica order.
	Workers int
	// Stop is the absorbing condition, e.g. "a decide place is marked".
	Stop func(mk *Marking) bool
	// Measure, if non-nil, overrides the recorded value for a replica
	// (default: the virtual stop time). It receives the final marking and
	// stop time; return NaN to discard the replica.
	Measure func(mk *Marking, t float64) float64
}

// TransientResult aggregates the per-replica measures. Kept replicas
// fold into the Digest in replica order, so retained memory is bounded
// by the digest's exact cap regardless of the replica count.
type TransientResult struct {
	Digest    metrics.Digest
	Truncated int // replicas that hit Tmax without satisfying Stop
}

// ECDF returns the empirical CDF of the replica measures: exact up to
// the digest cap, a sketch-grid approximation beyond it.
func (r *TransientResult) ECDF() *stats.ECDF { return r.Digest.ECDF() }

// replicaOutcome is one replica's contribution before the ordered fold.
type replicaOutcome struct {
	v         float64
	kept      bool
	truncated bool
}

// Transient runs the replicated transient study, fanning replicas across
// Workers goroutines. Each replica draws from a child stream of r keyed by
// its index, so results are independent of replica scheduling and
// reproducible at any worker count. build is invoked once per replica to
// construct a fresh model instance (models carry no run-time state, but
// the builder pattern lets callers randomize structure or parameters per
// replica if desired).
//
// With Workers != 1, build, Stop, and Measure are called concurrently and
// must be safe for concurrent use. The common idioms are: return one
// shared, fully built model from build and only read the passed Marking in
// Stop/Measure (always safe — the simulator never mutates the model); or
// build an independent model per replica from replica-local state. A
// builder that mutates state shared with Stop/Measure requires Workers: 1.
//
// Workers whose build returns the same *Model for consecutive replicas
// reuse one simulator via Sim.Reset, so the steady-state replica loop does
// not allocate simulator state.
//
// ctx cancels the study between replicas (a replica that has started runs
// to completion); a canceled study returns ctx.Err().
func Transient(ctx context.Context, build func() *Model, r *rng.Stream, spec TransientSpec) (*TransientResult, error) {
	if spec.Replicas <= 0 {
		return nil, fmt.Errorf("san: transient study needs at least 1 replica, got %d", spec.Replicas)
	}
	if spec.Stop == nil {
		return nil, fmt.Errorf("san: transient study needs a stop condition")
	}
	if spec.Tmax <= 0 {
		return nil, fmt.Errorf("san: transient study needs a positive Tmax")
	}
	outs := make([]replicaOutcome, spec.Replicas)
	sims := make([]*Sim, parallel.Workers(spec.Workers))
	err := parallel.ForEach(ctx, spec.Workers, spec.Replicas, func(w, i int) error {
		m := build()
		sim := sims[w]
		if sim != nil && sim.model == m.rootModel() {
			sim.Reset(r.Child(uint64(i)))
		} else {
			sim = NewSim(m, r.Child(uint64(i)))
			sims[w] = sim
		}
		t, stopped := sim.Run(spec.Tmax, spec.Stop)
		out := &outs[i]
		if !stopped {
			out.truncated = true
			return nil
		}
		v := t
		if spec.Measure != nil {
			v = spec.Measure(sim.Marking(), t)
			if v != v { // NaN: discarded
				return nil
			}
		}
		out.v = v
		out.kept = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Fold in replica order: the digest's moments and quantiles are then
	// bit-identical to a serial run regardless of scheduling.
	res := &TransientResult{}
	for i := range outs {
		switch {
		case outs[i].truncated:
			res.Truncated++
		case outs[i].kept:
			res.Digest.Add(outs[i].v)
		}
	}
	return res, nil
}
