package san

import (
	"fmt"

	"ctsan/internal/rng"
	"ctsan/internal/stats"
)

// TransientSpec describes a replicated transient study: run Replicas
// independent realizations of the model, each until Stop becomes true or
// Tmax is reached, and record the stop time of each replica. This is the
// "terminating simulation" solver the paper uses (§5: latency until the
// first process decides).
type TransientSpec struct {
	Replicas int
	Tmax     float64
	// Stop is the absorbing condition, e.g. "a decide place is marked".
	Stop func(mk *Marking) bool
	// Measure, if non-nil, overrides the recorded value for a replica
	// (default: the virtual stop time). It receives the final marking and
	// stop time; return NaN to discard the replica.
	Measure func(mk *Marking, t float64) float64
}

// TransientResult aggregates the per-replica measures.
type TransientResult struct {
	Acc       stats.Accumulator
	Samples   []float64
	Truncated int // replicas that hit Tmax without satisfying Stop
}

// ECDF returns the empirical CDF of the replica measures.
func (r *TransientResult) ECDF() *stats.ECDF { return stats.NewECDF(r.Samples) }

// Transient runs the replicated transient study. Each replica draws from a
// child stream of r keyed by its index, so results are independent of
// replica scheduling and reproducible. build is invoked once per replica to
// construct a fresh model instance (models carry no run-time state, but the
// builder pattern lets callers randomize structure or parameters per
// replica if desired).
func Transient(build func() *Model, r *rng.Stream, spec TransientSpec) (*TransientResult, error) {
	if spec.Replicas <= 0 {
		return nil, fmt.Errorf("san: transient study needs at least 1 replica, got %d", spec.Replicas)
	}
	if spec.Stop == nil {
		return nil, fmt.Errorf("san: transient study needs a stop condition")
	}
	if spec.Tmax <= 0 {
		return nil, fmt.Errorf("san: transient study needs a positive Tmax")
	}
	res := &TransientResult{Samples: make([]float64, 0, spec.Replicas)}
	for i := 0; i < spec.Replicas; i++ {
		m := build()
		sim := NewSim(m, r.Child(uint64(i)))
		t, stopped := sim.Run(spec.Tmax, spec.Stop)
		if !stopped {
			res.Truncated++
			continue
		}
		v := t
		if spec.Measure != nil {
			v = spec.Measure(sim.Marking(), t)
			if v != v { // NaN: discarded
				continue
			}
		}
		res.Acc.Add(v)
		res.Samples = append(res.Samples, v)
	}
	return res, nil
}
