package server

import (
	"encoding/json"
	"sync"

	"ctsan/campaign"
)

// hub is the per-study result log and broadcast point: the campaign's
// Sink appends each result's JSON encoding as it streams out of Run (in
// point-index order, already serialized by the campaign layer), and any
// number of HTTP subscribers replay the log from the start and then
// follow the live tail. Appends and finish wake waiting subscribers by
// closing the current wake channel — the standard broadcast-by-channel-
// replacement pattern, so a slow client never blocks the producer or
// other subscribers.
type hub struct {
	mu     sync.Mutex
	lines  [][]byte // one marshaled Result per point, no trailing newline
	closed bool
	errMsg string
	wake   chan struct{}
}

func newHub() *hub { return &hub{wake: make(chan struct{})} }

// append adds one result line and wakes subscribers.
func (h *hub) append(line []byte) {
	h.mu.Lock()
	h.lines = append(h.lines, line)
	close(h.wake)
	h.wake = make(chan struct{})
	h.mu.Unlock()
}

// finish marks the stream complete (errMsg empty on success) and wakes
// subscribers one last time. Idempotent: only the first call records
// the error.
func (h *hub) finish(errMsg string) {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		h.errMsg = errMsg
		close(h.wake)
		h.wake = make(chan struct{})
	}
	h.mu.Unlock()
}

// snapshot returns the lines at and after index from, whether the
// stream has ended (and with what error), and a channel that is closed
// on the next append or finish — the subscriber's wait handle. The
// returned slice aliases the log; subscribers must not modify lines.
func (h *hub) snapshot(from int) (lines [][]byte, done bool, errMsg string, wait <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if from < len(h.lines) {
		lines = h.lines[from:]
	}
	return lines, h.closed, h.errMsg, h.wake
}

// count returns the number of results appended so far.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.lines)
}

// hubSink adapts a hub to campaign.Sink: each emitted result is
// marshaled once, to the exact bytes campaign.JSONLWriter would emit
// for the same result (json.Marshal with default escaping), so the
// service's streamed JSONL is byte-identical to an in-process run.
type hubSink struct {
	hub *hub
}

func (s *hubSink) Emit(r *campaign.Result) error {
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	s.hub.append(line)
	return nil
}

func (s *hubSink) Close() error { return nil }
