package server

import (
	"container/list"
	"path/filepath"
	"sync"

	"ctsan/campaign"
	"ctsan/internal/checkpoint"
	"ctsan/internal/obs"
)

// Cache is the service's content-addressed result cache: a bounded LRU
// from campaign.PointHash (engine + fully materialized point spec,
// derived seed included) to the encoded shard record of the completed
// point. It implements campaign.PointCache, so campaign.Run consults it
// around every point execution.
//
// Entries are stored as encoded bytes, not live Results, deliberately:
// Get decodes a fresh Result per hit (Run rewrites its identity fields
// in place), the byte size gives an honest memory bound, and the stored
// record is the same wire format the sharded executor checkpoints and
// fleet workers upload — PutEncoded feeds verified worker records in
// without a decode/re-encode round trip, and the spill store persists
// them verbatim.
//
// Determinism makes the cache safe by construction: for a given hash
// every Put stores identical statistics, so concurrent Puts, lost
// updates, or evictions can change only whether a point is recomputed,
// never any result bit.
type Cache struct {
	mu    sync.Mutex
	max   int64 // byte budget for stored record bytes
	size  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	// Spill state (EnableSpill): evicted and shut-down entries are
	// persisted as encoded records through a checkpoint store, so a
	// restarted service warm-loads its cache instead of re-executing.
	// spillMu guards the store and the onDisk set; it is never taken
	// while holding mu (appends fsync — too slow for the lookup path).
	spillMu sync.Mutex
	spill   *checkpoint.Store
	onDisk  map[string]bool
}

type cacheEntry struct {
	hash string
	line []byte
}

// NewCache returns a cache bounded to maxBytes of encoded records.
// maxBytes <= 0 returns nil — the "cache disabled" value; a nil *Cache
// is a valid, always-missing PointCache.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{max: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// SpillFile is the point-cache spill file name inside the -cache-dir
// directory.
const SpillFile = "pointcache.jsonl"

// EnableSpill attaches a persistent spill store under dir and
// warm-loads it: every intact record in dir/pointcache.jsonl is
// CRC-validated and inserted (up to the byte budget; overflow lines
// stay on disk only). From then on, entries evicted by the LRU bound
// are appended to the store before they are dropped from memory, and
// SpillAll persists the whole resident set — together they make the
// cache's contents survive restarts. Returns how many records were
// warm-loaded.
func (c *Cache) EnableSpill(dir string) (loaded int, err error) {
	if c == nil {
		return 0, nil
	}
	store, err := checkpoint.Open(filepath.Join(dir, SpillFile))
	if err != nil {
		return 0, err
	}
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	c.spill = store
	c.onDisk = make(map[string]bool, len(store.Records()))
	for _, line := range store.Records() {
		rec, err := campaign.DecodeShardRecord(line)
		if err != nil {
			continue // damaged or foreign line: ignore, never trust
		}
		c.onDisk[rec.PointHash] = true
		c.mu.Lock()
		_, exists := c.items[rec.PointHash]
		fits := c.size+int64(len(line)) <= c.max
		if !exists && fits {
			// Own the bytes: store.Records() aliases the store's buffer,
			// which AppendBatch replaces wholesale on the next spill.
			own := append([]byte(nil), line...)
			c.items[rec.PointHash] = c.ll.PushBack(&cacheEntry{hash: rec.PointHash, line: own})
			c.size += int64(len(own))
			loaded++
		}
		c.mu.Unlock()
	}
	c.publishGauges()
	obs.CacheWarmLoads.Add(int64(loaded))
	return loaded, nil
}

// SpillAll persists every resident entry not already on disk — the
// shutdown path, making a clean restart fully warm. Safe to call with
// spill disabled (no-op).
func (c *Cache) SpillAll() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	entries := make([]*cacheEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		entries = append(entries, el.Value.(*cacheEntry))
	}
	c.mu.Unlock()
	return c.spillEntries(entries)
}

// spillEntries appends the not-yet-persisted entries to the spill store
// as one atomic batch. Entry lines are immutable once cached, so
// reading them outside mu is safe.
func (c *Cache) spillEntries(entries []*cacheEntry) error {
	if len(entries) == 0 {
		return nil
	}
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	if c.spill == nil {
		return nil
	}
	batch := make([][]byte, 0, len(entries))
	for _, e := range entries {
		if !c.onDisk[e.hash] {
			batch = append(batch, e.line)
		}
	}
	if len(batch) == 0 {
		return nil
	}
	if err := c.spill.AppendBatch(batch); err != nil {
		return err
	}
	for _, e := range entries {
		c.onDisk[e.hash] = true
	}
	obs.CacheSpills.Add(int64(len(batch)))
	return nil
}

// Get implements campaign.PointCache: it decodes a fresh Result from
// the stored record. A decode failure (impossible unless memory was
// corrupted) is treated as a miss and the entry dropped.
func (c *Cache) Get(hash string) (*campaign.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.items[hash]
	var line []byte
	if ok {
		c.ll.MoveToFront(el)
		line = el.Value.(*cacheEntry).line
	}
	c.mu.Unlock()
	if !ok {
		obs.CacheMisses.Add(1)
		return nil, false
	}
	rec, err := campaign.DecodeShardRecord(line)
	if err != nil {
		c.drop(hash)
		obs.CacheMisses.Add(1)
		return nil, false
	}
	res, err := rec.DecodeResult()
	if err != nil {
		c.drop(hash)
		obs.CacheMisses.Add(1)
		return nil, false
	}
	obs.CacheHits.Add(1)
	return res, true
}

// Put implements campaign.PointCache: it encodes the result as a shard
// record and inserts it, evicting least-recently-used entries past the
// byte budget. Results that cannot be encoded, or single records larger
// than the whole budget, are not cached.
func (c *Cache) Put(hash string, res *campaign.Result) {
	if c == nil {
		return
	}
	line, err := campaign.EncodeShardRecord(hash, res)
	if err != nil {
		return
	}
	c.PutEncoded(hash, line)
}

// PutEncoded inserts an already-encoded shard record — the fleet
// ingest path, where the coordinator holds the verified worker upload
// line and a decode/re-encode round trip would be pure waste. The
// caller must have verified the record (VerifyShardRecord); the line
// must not be modified after the call.
func (c *Cache) PutEncoded(hash string, line []byte) {
	if c == nil || int64(len(line)) > c.max {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[hash]; ok {
		// Deterministic duplicate (or a re-Put after eviction raced a
		// Get): refresh recency, keep the existing bytes.
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.items[hash] = c.ll.PushFront(&cacheEntry{hash: hash, line: line})
	c.size += int64(len(line))
	var evicted []*cacheEntry
	for c.size > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.hash)
		c.size -= int64(len(e.line))
		evicted = append(evicted, e)
	}
	size, entries := c.size, int64(len(c.items))
	c.mu.Unlock()
	if len(evicted) > 0 {
		obs.CacheEvictions.Add(int64(len(evicted)))
		// Best effort: a failed spill only costs future recomputation.
		c.spillEntries(evicted) //nolint:errcheck
	}
	obs.CacheBytes.Set(size)
	obs.CacheEntries.Set(entries)
}

// drop removes a corrupt entry.
func (c *Cache) drop(hash string) {
	c.mu.Lock()
	if el, ok := c.items[hash]; ok {
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, hash)
		c.size -= int64(len(e.line))
		obs.CacheBytes.Set(c.size)
		obs.CacheEntries.Set(int64(len(c.items)))
	}
	c.mu.Unlock()
}

// publishGauges refreshes the size gauges outside any lock ordering
// concerns (reads under mu).
func (c *Cache) publishGauges() {
	c.mu.Lock()
	size, entries := c.size, int64(len(c.items))
	c.mu.Unlock()
	obs.CacheBytes.Set(size)
	obs.CacheEntries.Set(entries)
}

// Stats reports the cache's current size for the service stats
// endpoint.
func (c *Cache) Stats() (bytes int64, entries int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size, len(c.items)
}
