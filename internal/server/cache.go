package server

import (
	"container/list"
	"sync"

	"ctsan/campaign"
	"ctsan/internal/obs"
)

// Cache is the service's content-addressed result cache: a bounded LRU
// from campaign.PointHash (engine + fully materialized point spec,
// derived seed included) to the encoded shard record of the completed
// point. It implements campaign.PointCache, so campaign.Run consults it
// around every point execution.
//
// Entries are stored as encoded bytes, not live Results, deliberately:
// Get decodes a fresh Result per hit (Run rewrites its identity fields
// in place), the byte size gives an honest memory bound, and the stored
// record is the same wire format the sharded executor checkpoints — a
// future multi-machine tier can spill or share these records verbatim.
//
// Determinism makes the cache safe by construction: for a given hash
// every Put stores identical statistics, so concurrent Puts, lost
// updates, or evictions can change only whether a point is recomputed,
// never any result bit.
type Cache struct {
	mu    sync.Mutex
	max   int64 // byte budget for stored record bytes
	size  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	hash string
	line []byte
}

// NewCache returns a cache bounded to maxBytes of encoded records.
// maxBytes <= 0 returns nil — the "cache disabled" value; a nil *Cache
// is a valid, always-missing PointCache.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{max: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// Get implements campaign.PointCache: it decodes a fresh Result from
// the stored record. A decode failure (impossible unless memory was
// corrupted) is treated as a miss and the entry dropped.
func (c *Cache) Get(hash string) (*campaign.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.items[hash]
	var line []byte
	if ok {
		c.ll.MoveToFront(el)
		line = el.Value.(*cacheEntry).line
	}
	c.mu.Unlock()
	if !ok {
		obs.CacheMisses.Add(1)
		return nil, false
	}
	rec, err := campaign.DecodeShardRecord(line)
	if err != nil {
		c.drop(hash)
		obs.CacheMisses.Add(1)
		return nil, false
	}
	res, err := rec.DecodeResult()
	if err != nil {
		c.drop(hash)
		obs.CacheMisses.Add(1)
		return nil, false
	}
	obs.CacheHits.Add(1)
	return res, true
}

// Put implements campaign.PointCache: it encodes the result as a shard
// record and inserts it, evicting least-recently-used entries past the
// byte budget. Results that cannot be encoded, or single records larger
// than the whole budget, are not cached.
func (c *Cache) Put(hash string, res *campaign.Result) {
	if c == nil {
		return
	}
	line, err := campaign.EncodeShardRecord(hash, res)
	if err != nil || int64(len(line)) > c.max {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[hash]; ok {
		// Deterministic duplicate (or a re-Put after eviction raced a
		// Get): refresh recency, keep the existing bytes.
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.items[hash] = c.ll.PushFront(&cacheEntry{hash: hash, line: line})
	c.size += int64(len(line))
	var evicted int64
	for c.size > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.hash)
		c.size -= int64(len(e.line))
		evicted++
	}
	size, entries := c.size, int64(len(c.items))
	c.mu.Unlock()
	if evicted > 0 {
		obs.CacheEvictions.Add(evicted)
	}
	obs.CacheBytes.Set(size)
	obs.CacheEntries.Set(entries)
}

// drop removes a corrupt entry.
func (c *Cache) drop(hash string) {
	c.mu.Lock()
	if el, ok := c.items[hash]; ok {
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, hash)
		c.size -= int64(len(e.line))
		obs.CacheBytes.Set(c.size)
		obs.CacheEntries.Set(int64(len(c.items)))
	}
	c.mu.Unlock()
}

// Stats reports the cache's current size for the service stats
// endpoint.
func (c *Cache) Stats() (bytes int64, entries int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size, len(c.items)
}
