package server

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"ctsan/campaign"
	"ctsan/internal/obs"
	"ctsan/internal/shard"
)

// Fleet dispatch: the coordinator side of multi-process campaigns.
//
// A study submitted with ?mode=fleet is not executed by the service's
// own worker pool. Instead its grid becomes a lease ledger: workers
// (`ctsan worker -server <url>`) POST to the study's lease endpoint and
// receive contiguous frozen-point ranges with deadlines, execute them
// through the exact RunShardRange/checkpoint machinery the sharded CLI
// uses, and upload the resulting CRC-framed shard records in one batched
// body. The coordinator verifies every record (CRC + PointHash against
// the frozen grid), folds them in grid-index order into the study's
// result stream — bit-identical to an in-process run by determinism
// rule 5 — and re-leases any range whose deadline passes, so a SIGKILLed
// worker costs at most one lease of re-execution, never a wrong result.
//
// Lease sizing is adaptive: the first lease per study is a single-point
// probe; afterwards the manager targets leaseTarget (default ~1s) of
// work per lease from an EWMA of observed per-point completion time, so
// HTTP round-trips amortize over fast grids while a straggler can only
// hold back one target-sized range.

// fleetLease is one outstanding range grant.
type fleetLease struct {
	id       string
	r        shard.Range
	worker   string
	granted  time.Time
	deadline time.Time
}

// leaseGrant is the wire shape of a granted lease (one of the three
// lease-endpoint responses; see leaseMgr.grant).
type leaseGrant struct {
	Lease    string `json:"lease"`
	Study    string `json:"study"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	Points   int    `json:"points"`
	TTLMS    int64  `json:"ttl_ms"`
	Deadline string `json:"deadline"`
}

// FleetStatus is the fleet block of a study's Status: the live lease
// ledger.
type FleetStatus struct {
	// Pending is the number of incomplete, unleased points; Leases the
	// number of outstanding (unexpired) leases.
	Pending int `json:"pending"`
	Leases  int `json:"leases"`
	// Granted/Completed/Expired count leases over the study's life;
	// Requeued counts points returned to the pending set by lease expiry
	// or partial uploads.
	Granted   int64 `json:"granted"`
	Completed int64 `json:"completed"`
	Expired   int64 `json:"expired"`
	Requeued  int64 `json:"requeued"`
	// WorkersBusy is the number of distinct workers holding a lease.
	WorkersBusy int `json:"workers_busy"`
}

// leaseMgr is the per-study lease ledger. All mutation happens under mu;
// methods return the work to do outside the lock (hub lines to emit,
// cache entries to feed) so HTTP handlers never hold it across I/O.
type leaseMgr struct {
	studyID string
	name    string
	hashes  []string
	labels  []string
	ttl     time.Duration
	target  time.Duration
	maxSize int

	mu        sync.Mutex
	pending   shard.RangeSet
	leases    map[string]*fleetLease
	records   []*campaign.ShardRecord // per grid index; nil until verified
	lines     [][]byte                // the encoded record per grid index
	remaining int
	flushed   int // in-order streaming cursor into records
	nextID    int
	avgPoint  time.Duration // EWMA of observed per-point completion time
	canceled  bool

	granted   int64
	completed int64
	expired   int64
	requeued  int64
	workers   map[string]int // worker -> outstanding leases

	done chan struct{} // closed when every point has a verified record
}

func newLeaseMgr(studyID string, spec *campaign.Study, points []campaign.FrozenPoint, ttl, target time.Duration) *leaseMgr {
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	if target <= 0 {
		target = time.Second
	}
	m := &leaseMgr{
		studyID:   studyID,
		name:      spec.Name,
		hashes:    make([]string, len(points)),
		labels:    make([]string, len(points)),
		ttl:       ttl,
		target:    target,
		maxSize:   1024,
		leases:    map[string]*fleetLease{},
		records:   make([]*campaign.ShardRecord, len(points)),
		lines:     make([][]byte, len(points)),
		remaining: len(points),
		workers:   map[string]int{},
		done:      make(chan struct{}),
	}
	for i, fp := range points {
		m.hashes[i] = fp.Hash
		m.labels[i] = fp.Label
	}
	m.pending.Add(shard.Range{Start: 0, End: len(points)})
	return m
}

// sizeLocked is the adaptive lease size: a single-point probe until a
// completed lease has calibrated the EWMA, then however many points fit
// the target duration, clamped to [1, maxSize].
func (m *leaseMgr) sizeLocked() int {
	if m.avgPoint <= 0 {
		return 1
	}
	n := int(m.target / m.avgPoint)
	if n < 1 {
		n = 1
	}
	if n > m.maxSize {
		n = m.maxSize
	}
	return n
}

// expireLocked reaps leases past their deadline, returning their
// unfinished points to the pending set.
func (m *leaseMgr) expireLocked(now time.Time) {
	for id, l := range m.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(m.leases, id)
		m.dropWorkerLocked(l.worker)
		requeued := 0
		for i := l.r.Start; i < l.r.End; i++ {
			if m.records[i] == nil {
				m.pending.Add(shard.Range{Start: i, End: i + 1})
				requeued++
			}
		}
		m.expired++
		m.requeued += int64(requeued)
		obs.LeasesExpired.Add(1)
		obs.LeasePointsRequeued.Add(int64(requeued))
	}
}

func (m *leaseMgr) dropWorkerLocked(worker string) {
	if m.workers[worker] <= 1 {
		delete(m.workers, worker)
	} else {
		m.workers[worker]--
	}
	obs.FleetWorkersBusy.Set(int64(len(m.workers)))
}

// grant hands the next contiguous pending range to worker. Exactly one
// of the three returns is meaningful: a lease, done=true (every point
// has a record — or the study was canceled and the worker should move
// on), or a retry hint when all remaining work is currently leased out.
func (m *leaseMgr) grant(now time.Time, worker string) (g *leaseGrant, retryIn time.Duration, done bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.canceled || m.remaining == 0 {
		return nil, 0, true
	}
	m.expireLocked(now)
	r := m.pending.TakeFront(m.sizeLocked())
	if r.Len() == 0 {
		// Everything outstanding: suggest coming back around the earliest
		// deadline (an expiry means re-leasable work).
		retry := m.ttl / 4
		for _, l := range m.leases {
			if d := l.deadline.Sub(now); d > 0 && d < retry {
				retry = d
			}
		}
		if retry < 50*time.Millisecond {
			retry = 50 * time.Millisecond
		}
		return nil, retry, false
	}
	m.nextID++
	l := &fleetLease{
		id:       formatLeaseID(m.nextID),
		r:        r,
		worker:   worker,
		granted:  now,
		deadline: now.Add(m.ttl),
	}
	m.leases[l.id] = l
	m.workers[worker]++
	m.granted++
	obs.LeasesGranted.Add(1)
	obs.FleetWorkersBusy.Set(int64(len(m.workers)))
	return &leaseGrant{
		Lease:    l.id,
		Study:    m.studyID,
		Start:    r.Start,
		End:      r.End,
		Points:   r.Len(),
		TTLMS:    m.ttl.Milliseconds(),
		Deadline: l.deadline.UTC().Format(time.RFC3339Nano),
	}, 0, false
}

// renew extends a lease's deadline. A false return means the lease is
// unknown or already expired — the worker may finish and upload anyway
// (late records are verified like any others), but the range may be
// re-executed elsewhere.
func (m *leaseMgr) renew(now time.Time, id string) (deadline time.Time, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(now)
	l := m.leases[id]
	if l == nil {
		return time.Time{}, false
	}
	l.deadline = now.Add(m.ttl)
	return l.deadline, true
}

// ingestResult is what one verified upload produced, to be applied
// outside the manager lock: emit streams the newly contiguous prefix of
// result lines to the study's hub, feed carries (hash, encoded record)
// pairs for the content-addressed cache.
type ingestResult struct {
	accepted int
	rejected int
	dup      int
	flushed  int  // in-order results streamed so far (progress)
	done     bool // every point now has a verified record
	emit     [][]byte
	feed     []cacheFeed
}

type cacheFeed struct {
	hash string
	line []byte
}

// complete ingests a worker's batched record upload for a lease. Every
// line is verified independently (CRC, index bounds, PointHash), so a
// corrupt or stale line rejects that line, never the batch. The lease is
// fulfilled when its whole range holds records; a final-but-partial
// upload requeues the holes. Late uploads for an expired (or unknown)
// lease are still ingested — determinism makes their records exactly as
// good, and any duplicate with a re-executed range is dropped as a dup.
func (m *leaseMgr) complete(now time.Time, leaseID string, lineList [][]byte) ingestResult {
	m.mu.Lock()
	out := ingestResult{}
	for _, line := range lineList {
		rec, err := campaign.VerifyShardRecord(m.hashes, line)
		if err != nil {
			out.rejected++
			continue
		}
		if m.records[rec.Index] != nil {
			out.dup++
			continue
		}
		m.records[rec.Index] = rec
		m.lines[rec.Index] = line
		m.remaining--
		m.pending.Remove(rec.Index) // present when the point was requeued
		out.accepted++
		out.feed = append(out.feed, cacheFeed{hash: m.hashes[rec.Index], line: line})
	}
	if l := m.leases[leaseID]; l != nil {
		// The upload is the lease's final word: fulfilled if its range is
		// covered, otherwise the holes go back to pending.
		delete(m.leases, leaseID)
		m.dropWorkerLocked(l.worker)
		holes := 0
		for i := l.r.Start; i < l.r.End; i++ {
			if m.records[i] == nil {
				m.pending.Add(shard.Range{Start: i, End: i + 1})
				holes++
			}
		}
		if holes == 0 {
			m.completed++
			obs.LeasesCompleted.Add(1)
			// Calibrate the sizing EWMA on the observed grant-to-complete
			// wall time per point (includes the HTTP overhead being
			// amortized — which is exactly what the target bounds).
			per := now.Sub(l.granted) / time.Duration(l.r.Len())
			if per <= 0 {
				per = time.Millisecond
			}
			if m.avgPoint <= 0 {
				m.avgPoint = per
			} else {
				m.avgPoint = (7*m.avgPoint + 3*per) / 10
			}
		} else {
			m.requeued += int64(holes)
			obs.LeasePointsRequeued.Add(int64(holes))
		}
	}
	m.expireLocked(now)
	out.emit = m.flushLocked()
	out.flushed = m.flushed
	out.done = m.remaining == 0
	if out.done && !m.canceled {
		select {
		case <-m.done:
		default:
			close(m.done)
		}
	}
	m.mu.Unlock()
	return out
}

// preserve satisfies every cache-resident point before any lease is
// granted — the warm-fleet path: a restarted coordinator (or a repeated
// study) re-streams cached records instead of re-dispatching them. The
// cached statistics are content-addressed; identity (study name, point
// label, index) is rewritten to this study's values exactly as the
// in-process cache hit path does, so the streamed bytes stay
// byte-identical to a cold run.
func (m *leaseMgr) preserve(cache *Cache, countLookup func(hit bool)) ingestResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := ingestResult{}
	for i := range m.records {
		hit := false
		if cache != nil {
			if res, ok := cache.Get(m.hashes[i]); ok {
				res.Study = m.name
				res.Point = m.labels[i]
				res.Index = i
				if line, err := campaign.EncodeShardRecord(m.hashes[i], res); err == nil {
					if rec, err := campaign.VerifyShardRecord(m.hashes, line); err == nil {
						m.records[i] = rec
						m.lines[i] = line
						m.remaining--
						m.pending.Remove(i)
						out.accepted++
						hit = true
					}
				}
			}
		}
		if countLookup != nil {
			countLookup(hit)
		}
	}
	out.emit = m.flushLocked()
	out.flushed = m.flushed
	out.done = m.remaining == 0
	if out.done {
		select {
		case <-m.done:
		default:
			close(m.done)
		}
	}
	return out
}

// flushLocked advances the in-order streaming cursor: the determinism
// rule for lease folding. Records may arrive in any order from any
// worker, but results are released to the hub strictly in grid-index
// order, as the contiguous completed prefix grows — the same fold order
// as the in-process serial path and the sharded merge, so the streamed
// JSONL is byte-identical to both.
func (m *leaseMgr) flushLocked() [][]byte {
	var emit [][]byte
	for m.flushed < len(m.records) && m.records[m.flushed] != nil {
		emit = append(emit, m.records[m.flushed].Result)
		m.flushed++
	}
	return emit
}

// tick runs periodic maintenance from the dispatch loop: expiry without
// waiting for the next worker request.
func (m *leaseMgr) tick(now time.Time) {
	m.mu.Lock()
	m.expireLocked(now)
	m.mu.Unlock()
}

// cancel marks the study over (shutdown or run-context cancellation):
// grants start answering done so workers move on.
func (m *leaseMgr) cancel() {
	m.mu.Lock()
	m.canceled = true
	for id, l := range m.leases {
		delete(m.leases, id)
		m.dropWorkerLocked(l.worker)
	}
	m.mu.Unlock()
}

// stats snapshots the ledger for the status endpoint.
func (m *leaseMgr) stats() FleetStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return FleetStatus{
		Pending:     m.pending.Points(),
		Leases:      len(m.leases),
		Granted:     m.granted,
		Completed:   m.completed,
		Expired:     m.expired,
		Requeued:    m.requeued,
		WorkersBusy: len(m.workers),
	}
}

func formatLeaseID(n int) string { return fmt.Sprintf("l%06d", n) }

// --- HTTP surface and dispatch loop ---

// leaseReply is the non-grant lease response: done means the study needs
// no more work (finished, failed, or canceled — the worker moves on),
// retry_ms means all remaining work is leased out (or the study has not
// started), come back later.
type leaseReply struct {
	Done    bool  `json:"done,omitempty"`
	RetryMS int64 `json:"retry_ms,omitempty"`
}

// completeReply reports what a record upload achieved.
type completeReply struct {
	Accepted  int  `json:"accepted"`
	Rejected  int  `json:"rejected"`
	Duplicate int  `json:"duplicate"`
	Done      bool `json:"done"`
}

func (st *study) statusNow() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.status
}

// fleetLookup resolves the study and requires it to be fleet-dispatched.
func (s *Server) fleetLookup(w http.ResponseWriter, r *http.Request) *study {
	st := s.lookup(w, r)
	if st == nil {
		return nil
	}
	if st.fleet == nil {
		writeError(w, http.StatusConflict, "study %s is not fleet-dispatched (submit with ?mode=fleet)", st.id)
		return nil
	}
	return st
}

// handleLease grants the next contiguous pending range to the calling
// worker (?worker=<name> labels the ledger; the remote address is the
// fallback). The response is always 200 with one of three JSON shapes:
// a lease grant, {"done":true}, or {"retry_ms":N}.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	st := s.fleetLookup(w, r)
	if st == nil {
		return
	}
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		worker = r.RemoteAddr
	}
	switch st.statusNow() {
	case "queued":
		writeJSON(w, http.StatusOK, leaseReply{RetryMS: 200})
		return
	case "running":
	default: // done, failed, canceled: nothing left to lease
		writeJSON(w, http.StatusOK, leaseReply{Done: true})
		return
	}
	g, retry, done := st.fleet.grant(time.Now(), worker)
	switch {
	case done:
		writeJSON(w, http.StatusOK, leaseReply{Done: true})
	case g == nil:
		writeJSON(w, http.StatusOK, leaseReply{RetryMS: retry.Milliseconds()})
	default:
		s.cfg.Logf("study %s: lease %s %d:%d granted to %s (%d points)", st.id, g.Lease, g.Start, g.End, worker, g.Points)
		writeJSON(w, http.StatusOK, g)
	}
}

// handleLeaseRenew extends a live lease's deadline; 410 Gone means the
// lease expired (its range may be re-leased) or never existed.
func (s *Server) handleLeaseRenew(w http.ResponseWriter, r *http.Request) {
	st := s.fleetLookup(w, r)
	if st == nil {
		return
	}
	id := r.PathValue("lease")
	deadline, ok := st.fleet.renew(time.Now(), id)
	if !ok {
		writeError(w, http.StatusGone, "lease %q is unknown or expired", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"lease":    id,
		"deadline": deadline.UTC().Format(time.RFC3339Nano),
		"ttl_ms":   st.fleet.ttl.Milliseconds(),
	})
}

// handleLeaseComplete ingests a worker's batched record upload (JSONL of
// encoded shard records, optionally Content-Encoding: gzip). Every line
// is verified independently — CRC, index bounds, PointHash against the
// frozen grid — so a corrupt line is rejected without poisoning the
// batch, and verified records from an expired lease are still accepted.
func (s *Server) handleLeaseComplete(w http.ResponseWriter, r *http.Request) {
	st := s.fleetLookup(w, r)
	if st == nil {
		return
	}
	body, err := readUpload(w, r, s.cfg.MaxUploadBytes)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) || errors.Is(err, errUploadTooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", s.cfg.MaxUploadBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "read upload: %v", err)
		return
	}
	id := r.PathValue("lease")
	out := st.fleet.complete(time.Now(), id, splitRecordLines(body))
	obs.UploadBytes.Add(int64(len(body)))
	obs.UploadRecords.Add(int64(out.accepted))
	obs.UploadRejected.Add(int64(out.rejected))
	s.applyIngest(st, out, true)
	s.cfg.Logf("study %s: lease %s upload: %d accepted, %d rejected, %d duplicate (%d/%d streamed)",
		st.id, id, out.accepted, out.rejected, out.dup, out.flushed, len(st.points))
	writeJSON(w, http.StatusOK, completeReply{Accepted: out.accepted, Rejected: out.rejected, Duplicate: out.dup, Done: out.done})
}

// applyIngest performs an ingest's side effects outside the manager
// lock: feed the content-addressed cache, stream the newly contiguous
// result prefix, and advance progress.
func (s *Server) applyIngest(st *study, out ingestResult, feedCache bool) {
	if feedCache && s.cache != nil {
		for _, f := range out.feed {
			s.cache.PutEncoded(f.hash, f.line)
		}
	}
	for _, line := range out.emit {
		st.hub.append(line)
	}
	st.setProgress(out.flushed)
}

// runFleetStudy is a fleet study's slot occupancy: pre-serve every
// cache-resident point (the warm-fleet path — a repeated study streams
// without a single lease), open the lease window, and wait for the
// workers to complete the grid. The slot's local worker budget stays
// idle: fleet studies cost the coordinator verification and folding
// only.
func (s *Server) runFleetStudy(st *study) {
	m := st.fleet
	obs.StudiesActive.Add(1)
	defer obs.StudiesActive.Add(-1)
	out := m.preserve(s.cache, st.countLookup)
	st.setRunning() // leases are granted only from "running"
	s.applyIngest(st, out, false)
	s.cfg.Logf("study %s (%q): fleet dispatch of %d points (%d cache-served)", st.id, st.spec.Name, len(st.points), out.accepted)
	ticker := time.NewTicker(min(m.ttl/2, time.Second))
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			st.setFinished(nil)
			final := st.snapshot()
			st.hub.finish("")
			s.cfg.Logf("study %s: done (%d points, %d leases granted, %d completed, %d expired)",
				st.id, final.Points, final.Fleet.Granted, final.Fleet.Completed, final.Fleet.Expired)
			return
		case <-s.runCtx.Done():
			m.cancel()
			err := s.runCtx.Err()
			st.setFinished(err)
			st.hub.finish(err.Error())
			s.cfg.Logf("study %s: canceled (%v)", st.id, err)
			return
		case <-ticker.C:
			// Expire overdue leases even when no worker is calling in, so
			// the status surface and saturation gauge stay honest.
			m.tick(time.Now())
		}
	}
}

// errUploadTooLarge marks a decoded (post-gzip) body exceeding the
// upload bound.
var errUploadTooLarge = errors.New("decoded upload too large")

// readUpload reads a record upload, transparently decoding
// Content-Encoding: gzip, bounding both the wire bytes and the decoded
// bytes by limit.
func readUpload(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	var src io.Reader = http.MaxBytesReader(w, r.Body, limit)
	if r.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(src)
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		src = gz
	}
	body, err := io.ReadAll(io.LimitReader(src, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		return nil, errUploadTooLarge
	}
	return body, nil
}

// splitRecordLines splits an upload body into its non-empty lines.
func splitRecordLines(body []byte) [][]byte {
	var lines [][]byte
	for len(body) > 0 {
		nl := bytes.IndexByte(body, '\n')
		if nl < 0 {
			if len(bytes.TrimSpace(body)) > 0 {
				lines = append(lines, body)
			}
			break
		}
		if line := body[:nl]; len(bytes.TrimSpace(line)) > 0 {
			lines = append(lines, line)
		}
		body = body[nl+1:]
	}
	return lines
}
