package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ctsan/campaign"
	"ctsan/internal/scenario"
)

// testStudy is the study every service test submits: three small SAN
// points, one with a pinned seed, so runs finish in milliseconds and
// exercise label derivation, seed derivation, and seed pinning.
func testStudy() *campaign.Study {
	return campaign.NewStudy("svc-test",
		campaign.SANPoint{N: 3, Replicas: 30},
		campaign.SANPoint{N: 5, Replicas: 30},
		campaign.SANPoint{Name: "pinned", N: 3, Replicas: 20, Seed: 7},
	)
}

func testSpecBytes(t *testing.T) []byte {
	t.Helper()
	spec, err := campaign.EncodeStudy(testStudy())
	if err != nil {
		t.Fatalf("EncodeStudy: %v", err)
	}
	return spec
}

// referenceJSONL runs the study in process — no HTTP, no cache — and
// returns the JSONL bytes the service must reproduce exactly.
func referenceJSONL(t *testing.T, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := campaign.Run(context.Background(), testStudy(),
		campaign.WithSeed(1),
		campaign.WithWorkers(workers),
		campaign.WithSink(campaign.NewJSONLWriter(&buf)))
	if err != nil {
		t.Fatalf("reference Run: %v", err)
	}
	return buf.Bytes()
}

type testServer struct {
	s  *Server
	ts *httptest.Server
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return &testServer{s: s, ts: ts}
}

func (h *testServer) post(t *testing.T, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(h.ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read body: %v", path, err)
	}
	return resp, data
}

func (h *testServer) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(h.ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, data
}

func (h *testServer) mustSubmit(t *testing.T, spec []byte, query string) Status {
	t.Helper()
	resp, data := h.post(t, "/api/v1/studies"+query, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("submit: decode status: %v", err)
	}
	if st.ID == "" || st.Status != "queued" {
		t.Fatalf("submit: unexpected initial status %+v", st)
	}
	return st
}

func (h *testServer) status(t *testing.T, id string) Status {
	t.Helper()
	resp, data := h.get(t, "/api/v1/studies/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %d (%s)", id, resp.StatusCode, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("status %s: decode: %v", id, err)
	}
	return st
}

func (h *testServer) waitTerminal(t *testing.T, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := h.status(t, id)
		switch st.Status {
		case "done", "failed", "canceled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("study %s did not finish: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (h *testServer) waitRunning(t *testing.T, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := h.status(t, id)
		if st.Status == "running" {
			return
		}
		if st.Status != "queued" || time.Now().After(deadline) {
			t.Fatalf("study %s did not reach running: %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// streamResults reads the full JSONL stream; it returns only when the
// study is terminal, because the handler follows the live tail to the
// end of the stream.
func (h *testServer) streamResults(t *testing.T, id string) []byte {
	t.Helper()
	resp, data := h.get(t, "/api/v1/studies/"+id+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results %s: status %d", id, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results %s: content type %q", id, ct)
	}
	return data
}

// TestDifferentialByteIdentity is the acceptance differential: a study
// submitted over HTTP produces byte-for-byte the JSONL of an in-process
// campaign.Run — cold cache, warm cache, and at 1, 2, and 8 workers.
func TestDifferentialByteIdentity(t *testing.T) {
	spec := testSpecBytes(t)
	want := referenceJSONL(t, 1)
	points := len(testStudy().Points)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// MaxActive 1 makes the per-study budget exactly `workers`.
			h := newTestServer(t, Config{Workers: workers, MaxActive: 1, QueueDepth: 8, CacheBytes: 32 << 20})

			cold := h.mustSubmit(t, spec, "")
			if got := h.streamResults(t, cold.ID); !bytes.Equal(got, want) {
				t.Errorf("cold stream differs from in-process run:\n got: %s\nwant: %s", got, want)
			}
			st := h.waitTerminal(t, cold.ID)
			if st.Status != "done" || st.Done != points {
				t.Fatalf("cold study: %+v", st)
			}
			if st.CacheHits != 0 || st.CacheMisses != int64(points) {
				t.Errorf("cold study: hits=%d misses=%d, want 0/%d", st.CacheHits, st.CacheMisses, points)
			}
			if st.Workers != workers {
				t.Errorf("study budget = %d, want %d", st.Workers, workers)
			}

			warm := h.mustSubmit(t, spec, "")
			if got := h.streamResults(t, warm.ID); !bytes.Equal(got, want) {
				t.Errorf("warm stream differs from in-process run:\n got: %s\nwant: %s", got, want)
			}
			st = h.waitTerminal(t, warm.ID)
			if st.CacheHits != int64(points) || st.CacheMisses != 0 {
				t.Errorf("warm study: hits=%d misses=%d, want %d/0", st.CacheHits, st.CacheMisses, points)
			}

			// The digests' result arrays are spliced from the streamed
			// bytes, so they match each other and the stream.
			coldDigest := h.digest(t, cold.ID)
			warmDigest := h.digest(t, warm.ID)
			wantLines := splitLines(want)
			if len(coldDigest.Results) != len(wantLines) {
				t.Fatalf("digest has %d results, want %d", len(coldDigest.Results), len(wantLines))
			}
			for i := range wantLines {
				if !bytes.Equal(coldDigest.Results[i], wantLines[i]) || !bytes.Equal(warmDigest.Results[i], wantLines[i]) {
					t.Errorf("digest result %d differs from stream line", i)
				}
			}
		})
	}
}

func splitLines(jsonl []byte) [][]byte {
	var out [][]byte
	for _, line := range bytes.Split(jsonl, []byte{'\n'}) {
		if len(line) > 0 {
			out = append(out, line)
		}
	}
	return out
}

func (h *testServer) digest(t *testing.T, id string) digestBody {
	t.Helper()
	resp, data := h.get(t, "/api/v1/studies/"+id+"/digest")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest %s: status %d (%s)", id, resp.StatusCode, data)
	}
	var d digestBody
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("digest %s: decode: %v", id, err)
	}
	return d
}

// TestSeedChangesResults pins that the seed query parameter reaches the
// campaign: different seeds yield different bytes, same seed identical.
func TestSeedChangesResults(t *testing.T) {
	spec := testSpecBytes(t)
	h := newTestServer(t, Config{Workers: 2, MaxActive: 1, QueueDepth: 8, CacheBytes: -1})
	a := h.mustSubmit(t, spec, "?seed=2")
	b := h.mustSubmit(t, spec, "?seed=3")
	c := h.mustSubmit(t, spec, "?seed=2")
	sa := h.streamResults(t, a.ID)
	sb := h.streamResults(t, b.ID)
	sc := h.streamResults(t, c.ID)
	if bytes.Equal(sa, sb) {
		t.Errorf("seed 2 and seed 3 produced identical streams")
	}
	if !bytes.Equal(sa, sc) {
		t.Errorf("two seed-2 submissions produced different streams")
	}
}

// TestAdmissionQueueFullAndBudget holds MaxActive studies at "running"
// behind the test gate, fills the bounded queue, and checks that the
// next submission is rejected with 429 + Retry-After while every
// admitted study later completes on its carved worker budget.
func TestAdmissionQueueFullAndBudget(t *testing.T) {
	s := New(Config{Workers: 8, MaxActive: 2, QueueDepth: 2, CacheBytes: -1})
	gate := make(chan struct{})
	s.testGate = gate
	ts := httptest.NewServer(s.Handler())
	h := &testServer{s: s, ts: ts}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})

	if s.budget != 4 {
		t.Fatalf("budget = %d, want 8/2 = 4", s.budget)
	}

	spec := testSpecBytes(t)
	var ids []string
	// Two studies occupy the MaxActive slots (blocked at the gate)...
	for i := 0; i < 2; i++ {
		st := h.mustSubmit(t, spec, "")
		ids = append(ids, st.ID)
		h.waitRunning(t, st.ID)
	}
	// ...two more fill the queue...
	for i := 0; i < 2; i++ {
		st := h.mustSubmit(t, spec, "")
		ids = append(ids, st.ID)
	}
	// ...and the fifth is turned away.
	resp, data := h.post(t, "/api/v1/studies", spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
		t.Errorf("429 body not an error object: %s", data)
	}

	// A malformed spec is a client error even at full capacity —
	// validation precedes admission.
	resp, _ = h.post(t, "/api/v1/studies", []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed spec at full queue: status %d, want 400", resp.StatusCode)
	}

	// Stats see the backlog.
	var stats statsBody
	_, data = h.get(t, "/api/v1/stats")
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Queue["depth"] != 2 || stats.Studies["running"] != 2 {
		t.Errorf("stats = %+v, want queue depth 2 and 2 running", stats)
	}

	close(gate)
	for _, id := range ids {
		st := h.waitTerminal(t, id)
		if st.Status != "done" {
			t.Errorf("study %s: %+v", id, st)
		}
		if st.Workers != 4 {
			t.Errorf("study %s ran on %d workers, want budget 4", id, st.Workers)
		}
	}
}

// TestGracefulShutdownDrains submits work, shuts down with a generous
// deadline, and checks the studies completed, later submissions get
// 503, and no goroutines leak.
func TestGracefulShutdownDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{Workers: 2, MaxActive: 2, QueueDepth: 4, CacheBytes: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	h := &testServer{s: s, ts: ts}

	spec := testSpecBytes(t)
	a := h.mustSubmit(t, spec, "")
	b := h.mustSubmit(t, spec, "")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, st := range []Status{h.status(t, a.ID), h.status(t, b.ID)} {
		if st.Status != "done" {
			t.Errorf("after drain, study %s is %q (%+v)", st.ID, st.Status, st)
		}
	}

	resp, _ := h.post(t, "/api/v1/studies", spec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 without Retry-After header")
	}
	resp, _ = h.get(t, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}

	// Second Shutdown is a no-op, not a close-of-closed-channel panic.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}

	ts.Close()
	waitGoroutines(t, base)
}

// waitGoroutines polls until the goroutine count returns near base —
// the leak check after a full shutdown.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 { // allow stragglers from the HTTP client pool
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > base %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShutdownDeadlineCancels pins the deadline path: a study held at
// "running" past the shutdown deadline is canceled through the ctx
// plumbing and lands in status "canceled", its stream finished.
func TestShutdownDeadlineCancels(t *testing.T) {
	s := New(Config{Workers: 1, MaxActive: 1, QueueDepth: 2, CacheBytes: -1})
	s.testGate = make(chan struct{}) // never closed: the study blocks until canceled
	ts := httptest.NewServer(s.Handler())
	h := &testServer{s: s, ts: ts}
	t.Cleanup(ts.Close)

	st := h.mustSubmit(t, testSpecBytes(t), "")
	h.waitRunning(t, st.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	final := h.status(t, st.ID)
	if final.Status != "canceled" {
		t.Fatalf("after deadline shutdown, study is %q, want canceled (%+v)", final.Status, final)
	}
	// The stream must have been finished, so a subscriber drains
	// immediately instead of hanging.
	resp, _ := h.get(t, "/api/v1/studies/"+st.ID+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results after cancel: status %d", resp.StatusCode)
	}
	// And the digest reports the failure state.
	resp, _ = h.get(t, "/api/v1/studies/"+st.ID+"/digest")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("digest of canceled study: status %d, want 409", resp.StatusCode)
	}
}

// TestConcurrentSubmissions drives N clients into the service at once
// (exercised under -race in CI): all are admitted within the queue
// bound, all streams are byte-identical, and the cache accounts for
// every point lookup.
func TestConcurrentSubmissions(t *testing.T) {
	const n = 8
	spec := testSpecBytes(t)
	want := referenceJSONL(t, 1)
	points := len(testStudy().Points)
	h := newTestServer(t, Config{Workers: 4, MaxActive: 2, QueueDepth: 32, CacheBytes: 32 << 20})

	var wg sync.WaitGroup
	ids := make([]string, n)
	streams := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := h.post(t, "/api/v1/studies", spec)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("client %d: status %d (%s)", i, resp.StatusCode, data)
				return
			}
			var st Status
			if err := json.Unmarshal(data, &st); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			ids[i] = st.ID
			streams[i] = h.streamResults(t, st.ID)
		}(i)
	}
	wg.Wait()

	var hits, misses int64
	for i := 0; i < n; i++ {
		if ids[i] == "" {
			continue
		}
		if !bytes.Equal(streams[i], want) {
			t.Errorf("client %d stream differs from in-process run", i)
		}
		st := h.waitTerminal(t, ids[i])
		if st.Status != "done" {
			t.Errorf("study %s: %+v", ids[i], st)
		}
		hits += st.CacheHits
		misses += st.CacheMisses
	}
	// Concurrent misses on the same point are possible (both studies
	// compute it), so the split is not deterministic — but every lookup
	// is accounted, and at least the first study's worth must miss while
	// later studies must find something.
	if hits+misses != int64(n*points) {
		t.Errorf("cache lookups = %d hits + %d misses, want %d total", hits, misses, n*points)
	}
	if misses < int64(points) || hits == 0 {
		t.Errorf("implausible cache split: %d hits, %d misses", hits, misses)
	}
}

// TestEventsStream checks the SSE surface: one "result" event per point
// carrying the exact result JSON, then a terminal "done" event.
func TestEventsStream(t *testing.T) {
	h := newTestServer(t, Config{Workers: 2, MaxActive: 1, QueueDepth: 4, CacheBytes: -1})
	st := h.mustSubmit(t, testSpecBytes(t), "")
	resp, data := h.get(t, "/api/v1/studies/"+st.ID+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content type %q", ct)
	}
	wantLines := splitLines(referenceJSONL(t, 1))
	frames := strings.Split(strings.TrimSuffix(string(data), "\n\n"), "\n\n")
	if len(frames) != len(wantLines)+1 {
		t.Fatalf("got %d SSE frames, want %d results + 1 terminal:\n%s", len(frames), len(wantLines), data)
	}
	for i, want := range wantLines {
		frame := frames[i]
		if !strings.HasPrefix(frame, "event: result\n") {
			t.Fatalf("frame %d is not a result event: %q", i, frame)
		}
		if !strings.Contains(frame, "\ndata: "+string(want)) {
			t.Errorf("frame %d data differs from result JSON:\n%s", i, frame)
		}
	}
	if last := frames[len(frames)-1]; !strings.HasPrefix(last, "event: done\n") {
		t.Errorf("terminal frame: %q, want done event", last)
	}
}

// TestSubmitValidation walks the admission error surface.
func TestSubmitValidation(t *testing.T) {
	h := newTestServer(t, Config{Workers: 1, MaxActive: 1, QueueDepth: 4, CacheBytes: -1, MaxSpecBytes: 4096})
	spec := testSpecBytes(t)
	cases := []struct {
		name  string
		body  []byte
		query string
		code  int
	}{
		{"not json", []byte("{nope"), "", http.StatusBadRequest},
		{"wrong version", []byte(`{"version":99,"name":"x","points":[]}`), "", http.StatusBadRequest},
		{"no points", []byte(`{"version":1,"name":"x","points":[]}`), "", http.StatusBadRequest},
		{"bad seed", spec, "?seed=banana", http.StatusBadRequest},
		{"zero seed", spec, "?seed=0", http.StatusBadRequest},
		{"negative replicas", spec, "?replicas=-3", http.StatusBadRequest},
		{"oversize body", bytes.Repeat([]byte{'x'}, 8192), "", http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := h.post(t, "/api/v1/studies"+tc.query, tc.body)
			if resp.StatusCode != tc.code {
				t.Errorf("status %d (%s), want %d", resp.StatusCode, data, tc.code)
			}
			var eb errorBody
			if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
				t.Errorf("body is not an error object: %s", data)
			}
		})
	}

	// Unknown study IDs are 404 on every study surface.
	for _, ep := range []string{"", "/points", "/results", "/events", "/digest", "/spec"} {
		resp, _ := h.get(t, "/api/v1/studies/s999999"+ep)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET unknown study%s: status %d, want 404", ep, resp.StatusCode)
		}
	}
}

// TestPointsAndSpecEndpoints checks the frozen-point enumeration and
// the verbatim spec echo.
func TestPointsAndSpecEndpoints(t *testing.T) {
	h := newTestServer(t, Config{Workers: 1, MaxActive: 1, QueueDepth: 4, CacheBytes: -1})
	spec := testSpecBytes(t)
	st := h.mustSubmit(t, spec, "")

	_, data := h.get(t, "/api/v1/studies/"+st.ID+"/points")
	var points []campaign.FrozenPoint
	if err := json.Unmarshal(data, &points); err != nil {
		t.Fatalf("points: %v", err)
	}
	want, err := testStudy().FrozenPoints(campaign.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(want) {
		t.Fatalf("points: got %d, want %d", len(points), len(want))
	}
	for i := range want {
		if points[i].Hash != want[i].Hash || points[i].Label != want[i].Label || points[i].Seed != want[i].Seed {
			t.Errorf("point %d = %+v, want %+v", i, points[i], want[i])
		}
	}

	resp, echo := h.get(t, "/api/v1/studies/"+st.ID+"/spec")
	if resp.StatusCode != http.StatusOK || !bytes.Equal(echo, spec) {
		t.Errorf("spec echo differs from submitted bytes")
	}
}

// TestScenariosEndpoint checks the registry listing matches the
// in-process registry.
func TestScenariosEndpoint(t *testing.T) {
	h := newTestServer(t, Config{Workers: 1, MaxActive: 1, QueueDepth: 1, CacheBytes: -1})
	_, data := h.get(t, "/api/v1/scenarios")
	var infos []scenario.Info
	if err := json.Unmarshal(data, &infos); err != nil {
		t.Fatalf("scenarios: %v", err)
	}
	names := scenario.Names()
	if len(infos) != len(names) {
		t.Fatalf("scenarios: got %d, want %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("scenario %d = %q, want %q", i, info.Name, names[i])
		}
	}
}

// TestDigestTooEarly checks the 425 + Retry-After contract while a
// study is still queued or running.
func TestDigestTooEarly(t *testing.T) {
	s := New(Config{Workers: 1, MaxActive: 1, QueueDepth: 2, CacheBytes: -1})
	gate := make(chan struct{})
	s.testGate = gate
	ts := httptest.NewServer(s.Handler())
	h := &testServer{s: s, ts: ts}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})

	st := h.mustSubmit(t, testSpecBytes(t), "")
	h.waitRunning(t, st.ID)
	resp, _ := h.get(t, "/api/v1/studies/"+st.ID+"/digest")
	if resp.StatusCode != http.StatusTooEarly {
		t.Fatalf("digest while running: status %d, want 425", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("425 without Retry-After header")
	}
	close(gate)
	h.waitTerminal(t, st.ID)
	resp, _ = h.get(t, "/api/v1/studies/"+st.ID+"/digest")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("digest after done: status %d, want 200", resp.StatusCode)
	}
}

// TestIndexAndDebugMounts checks the landing page and the debug mux
// gating.
func TestIndexAndDebugMounts(t *testing.T) {
	withDebug := newTestServer(t, Config{Workers: 1, MaxActive: 1, QueueDepth: 1, CacheBytes: -1, Debug: true})
	resp, body := withDebug.get(t, "/")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("ctsand")) {
		t.Errorf("index page: status %d", resp.StatusCode)
	}
	resp, body = withDebug.get(t, "/debug/vars")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("ctsan.cache_hits")) {
		t.Errorf("debug vars: status %d, body %.200s", resp.StatusCode, body)
	}

	noDebug := newTestServer(t, Config{Workers: 1, MaxActive: 1, QueueDepth: 1, CacheBytes: -1})
	resp, _ = noDebug.get(t, "/debug/vars")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("debug vars without Debug: status %d, want 404", resp.StatusCode)
	}

	// The study listing endpoint returns the orderly history.
	_ = withDebug.mustSubmit(t, testSpecBytes(t), "")
	_, data := withDebug.get(t, "/api/v1/studies")
	var list []Status
	if err := json.Unmarshal(data, &list); err != nil || len(list) != 1 {
		t.Errorf("study list: %v (%s)", err, data)
	}
}
