package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ctsan/campaign"
)

// benchServer is a harness without testing.T plumbing for benchmarks.
func benchServer(b *testing.B, cfg Config) (*Server, *httptest.Server) {
	b.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

func benchSpec(b *testing.B) []byte {
	b.Helper()
	spec, err := campaign.EncodeStudy(campaign.NewStudy("bench",
		campaign.SANPoint{N: 3, Replicas: 50},
		campaign.SANPoint{N: 5, Replicas: 50},
		campaign.SANPoint{N: 7, Replicas: 50},
	))
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// submitAndDrain posts the spec and reads the result stream to
// completion — one full study round-trip over HTTP.
func submitAndDrain(b *testing.B, url string, spec []byte) {
	b.Helper()
	resp, err := http.Post(url+"/api/v1/studies", "application/json", bytes.NewReader(spec))
	if err != nil {
		b.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit: %d (%s)", resp.StatusCode, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		b.Fatal(err)
	}
	resp, err = http.Get(url + "/api/v1/studies/" + st.ID + "/results")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
}

// BenchmarkStudyColdHTTP measures a full study round-trip — submit,
// execute, stream — with the result cache disabled: every point is
// simulated.
func BenchmarkStudyColdHTTP(b *testing.B) {
	_, ts := benchServer(b, Config{Workers: 2, MaxActive: 1, QueueDepth: 4, CacheBytes: -1})
	spec := benchSpec(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitAndDrain(b, ts.URL, spec)
	}
}

// BenchmarkStudyWarmHTTP measures the same round-trip with a warm
// content-addressed cache: every point is served from memory, so the
// difference to BenchmarkStudyColdHTTP is the simulation work the
// cache saves.
func BenchmarkStudyWarmHTTP(b *testing.B) {
	_, ts := benchServer(b, Config{Workers: 2, MaxActive: 1, QueueDepth: 4, CacheBytes: 32 << 20})
	spec := benchSpec(b)
	submitAndDrain(b, ts.URL, spec) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitAndDrain(b, ts.URL, spec)
	}
}

// BenchmarkStatusHTTP measures the light request path — status GETs
// against a finished study — across parallel clients; 1/ns-per-op is
// the service's requests/s ceiling on this hardware.
func BenchmarkStatusHTTP(b *testing.B) {
	_, ts := benchServer(b, Config{Workers: 2, MaxActive: 1, QueueDepth: 4, CacheBytes: 32 << 20})
	spec := benchSpec(b)
	resp, err := http.Post(ts.URL+"/api/v1/studies", "application/json", bytes.NewReader(spec))
	if err != nil {
		b.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		b.Fatal(err)
	}
	url := ts.URL + "/api/v1/studies/" + st.ID
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Get(url)
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
}
