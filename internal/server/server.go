// Package server is the campaign service: a long-running HTTP server
// over the campaign engine, the multi-user counterpart of the one-shot
// CLIs. Concurrent users POST v1 study-spec JSON (decoded by
// campaign.DecodeStudy — the service and the CLIs share one format by
// construction), browse the scenario registry, watch per-point results
// stream live over SSE or chunked JSONL, and fetch final digests.
//
// Production concerns are the point of the package:
//
//   - Admission: a bounded queue of submitted studies. When it is full
//     the service answers 429 with Retry-After instead of accepting
//     unbounded work; while draining it answers 503.
//   - Worker budgets: at most MaxActive studies execute concurrently,
//     each on an equal share of one shared worker pool — a
//     million-point study occupies its slot and its share, it cannot
//     starve the small studies running beside it.
//   - Streaming: results are broadcast through a per-study hub as they
//     leave campaign.Run (a campaign.Sink), in deterministic point
//     order; any number of subscribers replay and follow. The JSONL
//     stream is byte-identical to what campaign.JSONLWriter emits for
//     the same study in process.
//   - Result cache: a content-addressed LRU (campaign.PointHash of the
//     frozen point — engine, spec, materialized seed — to the encoded
//     shard record) serves repeated points from memory instead of
//     resimulating them, with hit/miss/eviction telemetry in
//     internal/obs. Determinism makes this transparent: a hit changes
//     no result bit, only the time to produce it.
//   - Graceful shutdown: Shutdown stops admission, lets running studies
//     drain, and past the deadline cancels them through the same ctx
//     plumbing that reaches every replica loop.
package server

import (
	"context"
	_ "embed"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ctsan/campaign"
	"ctsan/internal/cliflags"
	"ctsan/internal/obs"
	"ctsan/internal/parallel"
	"ctsan/internal/scenario"
)

// Config sizes the service; the zero value gets sensible defaults.
type Config struct {
	// Workers is the shared worker-pool budget split across concurrently
	// running studies (0 = one per CPU).
	Workers int
	// MaxActive is the number of studies executing at once (default 2).
	MaxActive int
	// QueueDepth bounds studies admitted but not yet running (default
	// 16); beyond it submissions get 429.
	QueueDepth int
	// CacheBytes bounds the content-addressed result cache (default
	// 64 MiB); negative disables caching.
	CacheBytes int64
	// DefaultSeed seeds submissions that do not pin one (default 1).
	DefaultSeed uint64
	// MaxSpecBytes bounds the request body of a study submission
	// (default 8 MiB).
	MaxSpecBytes int64
	// MaxUploadBytes bounds the decoded body of a fleet record upload
	// (default 256 MiB).
	MaxUploadBytes int64
	// LeaseTTL is how long a fleet lease lives without renewal before its
	// range is re-leased (default 15s).
	LeaseTTL time.Duration
	// LeaseTarget is the wall time of work the adaptive lease sizer aims
	// to put in one lease (default 1s): long enough that HTTP round-trips
	// amortize, short enough that a straggler holds back one small range.
	LeaseTarget time.Duration
	// Debug mounts /debug/vars and /debug/pprof on the service mux.
	Debug bool
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.MaxActive <= 0 {
		c.MaxActive = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.DefaultSeed == 0 {
		c.DefaultSeed = 1
	}
	if c.MaxSpecBytes <= 0 {
		c.MaxSpecBytes = 8 << 20
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.LeaseTarget <= 0 {
		c.LeaseTarget = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// study is the server-side state of one submission.
type study struct {
	id        string
	spec      *campaign.Study
	specBytes []byte
	seed      uint64
	replicas  int
	workers   int
	points    []campaign.FrozenPoint
	hub       *hub
	submitted time.Time
	// fleet, when non-nil, marks the study as fleet-dispatched: it is
	// executed by external workers pulling leases, not the local pool.
	fleet *leaseMgr

	mu       sync.Mutex
	status   string // "queued", "running", "done", "failed", "canceled"
	errMsg   string
	done     int
	hits     int64
	misses   int64
	started  time.Time
	finished time.Time
}

// Status is the wire shape of one study's state.
type Status struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Status   string `json:"status"`
	Error    string `json:"error,omitempty"`
	Points   int    `json:"points"`
	Done     int    `json:"done"`
	Seed     uint64 `json:"seed"`
	Replicas int    `json:"replicas,omitempty"`
	// Workers is the per-study budget carved from the shared pool (0 for
	// fleet studies, which external workers execute).
	Workers     int    `json:"workers"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
	Submitted   string `json:"submitted"`
	Started     string `json:"started,omitempty"`
	Finished    string `json:"finished,omitempty"`
	// Mode is "local" (the service's own pool) or "fleet" (pull-based
	// workers); Fleet carries the live lease ledger of a fleet study.
	Mode  string       `json:"mode"`
	Fleet *FleetStatus `json:"fleet,omitempty"`
}

func (st *study) snapshot() Status {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Status{
		ID:          st.id,
		Name:        st.spec.Name,
		Status:      st.status,
		Error:       st.errMsg,
		Points:      len(st.points),
		Done:        st.done,
		Seed:        st.seed,
		Replicas:    st.replicas,
		Workers:     st.workers,
		CacheHits:   st.hits,
		CacheMisses: st.misses,
		Submitted:   st.submitted.UTC().Format(time.RFC3339Nano),
		Mode:        "local",
	}
	if st.fleet != nil {
		s.Mode = "fleet"
		fs := st.fleet.stats()
		s.Fleet = &fs
	}
	if !st.started.IsZero() {
		s.Started = st.started.UTC().Format(time.RFC3339Nano)
	}
	if !st.finished.IsZero() {
		s.Finished = st.finished.UTC().Format(time.RFC3339Nano)
	}
	return s
}

func (st *study) setRunning() {
	st.mu.Lock()
	st.status = "running"
	st.started = time.Now()
	st.mu.Unlock()
}

func (st *study) setProgress(done int) {
	st.mu.Lock()
	st.done = done
	st.mu.Unlock()
}

func (st *study) setFinished(err error) {
	st.mu.Lock()
	st.finished = time.Now()
	switch {
	case err == nil:
		st.status = "done"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		st.status = "canceled"
		st.errMsg = err.Error()
	default:
		st.status = "failed"
		st.errMsg = err.Error()
	}
	st.mu.Unlock()
}

func (st *study) countLookup(hit bool) {
	st.mu.Lock()
	if hit {
		st.hits++
	} else {
		st.misses++
	}
	st.mu.Unlock()
}

// countingCache layers per-study hit/miss accounting over the shared
// cache.
type countingCache struct {
	c  *Cache
	st *study
}

func (cc *countingCache) Get(hash string) (*campaign.Result, bool) {
	res, ok := cc.c.Get(hash)
	cc.st.countLookup(ok)
	return res, ok
}

func (cc *countingCache) Put(hash string, res *campaign.Result) { cc.c.Put(hash, res) }

// Server is the campaign service. Create with New, expose with
// Handler, stop with Shutdown.
type Server struct {
	cfg    Config
	budget int // per-study worker budget
	mux    *http.ServeMux
	cache  *Cache

	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup // slot goroutines

	mu       sync.Mutex
	studies  map[string]*study
	order    []string
	queue    chan *study
	nextID   int
	draining bool

	shutdownOnce sync.Once

	// testGate, when non-nil, blocks each study after it turns running
	// until the gate closes (or the run context is canceled). Test-only:
	// it lets tests hold studies "running" deterministically to exercise
	// queue admission and shutdown without timing assumptions.
	testGate chan struct{}
}

// New builds the service and starts its MaxActive scheduler slots.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:     cfg,
		budget:  max(1, parallel.Workers(cfg.Workers)/cfg.MaxActive),
		cache:   NewCache(cfg.CacheBytes),
		studies: map[string]*study{},
		queue:   make(chan *study, cfg.QueueDepth),
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())
	s.mux = s.routes()
	for i := 0; i < cfg.MaxActive; i++ {
		s.wg.Add(1)
		go s.slot()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// EnableCacheSpill makes the point cache persistent under dir (the
// -cache-dir flag of ctsand): cached records already spilled there are
// validated and warm-loaded now, LRU evictions spill instead of
// discarding, and Shutdown persists the resident set. A disabled cache
// (CacheBytes < 0) makes this a no-op.
func (s *Server) EnableCacheSpill(dir string) (loaded int, err error) {
	loaded, err = s.cache.EnableSpill(dir)
	if err != nil {
		return 0, err
	}
	if loaded > 0 {
		s.cfg.Logf("cache: warm-loaded %d spilled records from %s", loaded, dir)
	}
	return loaded, nil
}

// Shutdown stops admission (submissions get 503), waits for queued and
// running studies to drain, and once ctx is done cancels the remainder
// through the campaign ctx plumbing — every replica loop observes the
// cancellation at its next unit boundary. It returns after all studies
// have reached a terminal status; streams are finished, so subscribers
// unblock. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		// No sends can follow: submissions check draining under s.mu
		// before enqueueing, so closing here cannot race a send.
		close(s.queue)
	})
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		s.cfg.Logf("shutdown deadline reached, canceling running studies")
		s.cancelRun()
		<-drained
	}
	s.cancelRun() // release the context either way
	if err := s.cache.SpillAll(); err != nil {
		s.cfg.Logf("cache: final spill failed: %v", err)
		return err
	}
	return nil
}

// slot is one scheduler goroutine: it owns one MaxActive slot and runs
// queued studies sequentially on the slot's worker budget.
func (s *Server) slot() {
	defer s.wg.Done()
	for st := range s.queue {
		obs.QueueDepth.Add(-1)
		s.runStudy(st)
	}
}

func (s *Server) runStudy(st *study) {
	if st.fleet != nil {
		s.runFleetStudy(st)
		return
	}
	st.setRunning()
	if s.testGate != nil {
		select {
		case <-s.testGate:
		case <-s.runCtx.Done():
		}
	}
	obs.StudiesActive.Add(1)
	s.cfg.Logf("study %s (%q): running %d points on %d workers", st.id, st.spec.Name, len(st.points), st.workers)
	opts := []campaign.Option{
		campaign.WithSeed(st.seed),
		campaign.WithReplicas(st.replicas),
		campaign.WithWorkers(st.workers),
		campaign.WithSink(&hubSink{hub: st.hub}),
		campaign.WithProgress(func(done, total int, _ *campaign.Result) { st.setProgress(done) }),
	}
	if s.cache != nil {
		opts = append(opts, campaign.WithPointCache(&countingCache{c: s.cache, st: st}))
	}
	err := campaign.Run(s.runCtx, st.spec, opts...)
	obs.StudiesActive.Add(-1)
	st.setFinished(err)
	final := st.snapshot()
	if err != nil {
		st.hub.finish(err.Error())
		s.cfg.Logf("study %s: %s (%v)", st.id, final.Status, err)
		return
	}
	st.hub.finish("")
	s.cfg.Logf("study %s: done (%d points, %d cache hits)", st.id, final.Points, final.CacheHits)
}

//go:embed index.html
var indexHTML []byte

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(indexHTML)
	})
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /api/v1/studies", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/studies", s.handleList)
	mux.HandleFunc("GET /api/v1/studies/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/studies/{id}/spec", s.handleSpec)
	mux.HandleFunc("GET /api/v1/studies/{id}/points", s.handlePoints)
	mux.HandleFunc("GET /api/v1/studies/{id}/results", s.handleResults)
	mux.HandleFunc("GET /api/v1/studies/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/studies/{id}/digest", s.handleDigest)
	mux.HandleFunc("POST /api/v1/studies/{id}/lease", s.handleLease)
	mux.HandleFunc("POST /api/v1/studies/{id}/lease/{lease}/renew", s.handleLeaseRenew)
	mux.HandleFunc("POST /api/v1/studies/{id}/lease/{lease}/complete", s.handleLeaseComplete)
	mux.HandleFunc("GET /api/v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	if s.cfg.Debug {
		// The telemetry mux on the service's own listener: one port
		// carries the API, /debug/vars, and the pprof endpoints.
		mux.Handle("/debug/", obs.DebugMux())
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	w.Write(buf)
	w.Write([]byte{'\n'})
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit is the admission path: decode and validate first (a
// malformed spec is 400 even when the queue is full), then admit under
// the queue bound, then 202 with the study's initial status.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, s.cfg.MaxSpecBytes)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "study spec exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	spec, err := campaign.DecodeStudy(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(spec.Points) == 0 {
		writeError(w, http.StatusBadRequest, "campaign: study with no points (nothing to run)")
		return
	}
	seed := s.cfg.DefaultSeed
	if v := r.URL.Query().Get("seed"); v != "" {
		seed, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "seed: %v", err)
			return
		}
	}
	if err := cliflags.CheckSeed(seed); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	replicas := 0
	if v := r.URL.Query().Get("replicas"); v != "" {
		replicas, err = strconv.Atoi(v)
		if err != nil || replicas < 0 {
			writeError(w, http.StatusBadRequest, "replicas: not a non-negative integer: %q", v)
			return
		}
	}
	mode := r.URL.Query().Get("mode")
	switch mode {
	case "", "local", "fleet":
	default:
		writeError(w, http.StatusBadRequest, "mode: %q is not \"local\" or \"fleet\"", mode)
		return
	}
	// Freeze the grid now: enumeration errors are submission errors, and
	// the materialized points power the progress and cache surfaces.
	points, err := spec.FrozenPoints(campaign.WithSeed(seed), campaign.WithReplicas(replicas))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	st := &study{
		spec:      spec,
		specBytes: body,
		seed:      seed,
		replicas:  replicas,
		workers:   s.budget,
		points:    points,
		hub:       newHub(),
		submitted: time.Now(),
		status:    "queued",
	}
	if mode == "fleet" {
		st.workers = 0 // external workers execute; the slot only folds
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	s.nextID++
	st.id = fmt.Sprintf("s%06d", s.nextID)
	if mode == "fleet" {
		st.fleet = newLeaseMgr(st.id, spec, points, s.cfg.LeaseTTL, s.cfg.LeaseTarget)
	}
	select {
	case s.queue <- st:
		s.studies[st.id] = st
		s.order = append(s.order, st.id)
		s.mu.Unlock()
		obs.QueueDepth.Add(1)
		s.cfg.Logf("study %s (%q): admitted, %d points, seed %d", st.id, spec.Name, len(points), seed)
		writeJSON(w, http.StatusAccepted, st.snapshot())
	default:
		s.nextID-- // not admitted; reuse the id
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "campaign queue is full (%d queued)", s.cfg.QueueDepth)
	}
}

func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *study {
	id := r.PathValue("id")
	s.mu.Lock()
	st := s.studies[id]
	s.mu.Unlock()
	if st == nil {
		writeError(w, http.StatusNotFound, "unknown study %q", id)
		return nil
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if st := s.lookup(w, r); st != nil {
		writeJSON(w, http.StatusOK, st.snapshot())
	}
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	if st := s.lookup(w, r); st != nil {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(st.specBytes)
	}
}

func (s *Server) handlePoints(w http.ResponseWriter, r *http.Request) {
	if st := s.lookup(w, r); st != nil {
		writeJSON(w, http.StatusOK, st.points)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	states := make([]*study, 0, len(s.order))
	for _, id := range s.order {
		states = append(states, s.studies[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(states))
	for i, st := range states {
		out[i] = st.snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleResults streams the study's results as chunked JSONL: replay of
// everything emitted so far, then the live tail, ending when the study
// does. The bytes are exactly what campaign.JSONLWriter emits in
// process — one json.Marshal(Result) per line — so a saved stream is
// byte-comparable against a local run. A study that fails or is
// canceled simply ends its stream early; the status endpoint carries
// the error.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(w, r)
	if st == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	i := 0
	for {
		lines, done, _, wait := st.hub.snapshot(i)
		for _, line := range lines {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
			i++
		}
		flush()
		if done {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// handleEvents is the same stream as Server-Sent Events: one "result"
// event per point, then a terminal "done" or "error" event, for
// browsers and EventSource clients.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(w, r)
	if st == nil {
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	flush()
	i := 0
	for {
		lines, done, errMsg, wait := st.hub.snapshot(i)
		for _, line := range lines {
			// Result JSON never contains newlines, so one data: line
			// carries the whole object.
			if _, err := fmt.Fprintf(w, "event: result\nid: %d\ndata: %s\n\n", i, line); err != nil {
				return
			}
			i++
		}
		flush()
		if done {
			if errMsg != "" {
				msg, _ := json.Marshal(errorBody{Error: errMsg})
				fmt.Fprintf(w, "event: error\ndata: %s\n\n", msg)
			} else {
				fmt.Fprintf(w, "event: done\ndata: {\"results\": %d}\n\n", i)
			}
			flush()
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// digestBody is the completed-study response: every result object, in
// point-index order, spliced from the exact streamed bytes.
type digestBody struct {
	ID      string            `json:"id"`
	Name    string            `json:"name"`
	Status  string            `json:"status"`
	Points  int               `json:"points"`
	Results []json.RawMessage `json:"results"`
}

// handleDigest returns the final result set of a completed study; while
// the study is queued or running it answers 425 (Too Early) with
// Retry-After, and for a failed or canceled study 409 with the error.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(w, r)
	if st == nil {
		return
	}
	status := st.snapshot()
	switch status.Status {
	case "queued", "running":
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooEarly, status)
	case "failed", "canceled":
		writeJSON(w, http.StatusConflict, status)
	default:
		lines, _, _, _ := st.hub.snapshot(0)
		body := digestBody{
			ID:      status.ID,
			Name:    status.Name,
			Status:  status.Status,
			Points:  status.Points,
			Results: make([]json.RawMessage, len(lines)),
		}
		for i, line := range lines {
			body.Results[i] = json.RawMessage(line)
		}
		writeJSON(w, http.StatusOK, body)
	}
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, scenario.List())
}

// statsBody is the service-level stats surface (the per-process
// counters live in /debug/vars).
type statsBody struct {
	Studies  map[string]int `json:"studies"`
	Queue    map[string]int `json:"queue"`
	Workers  map[string]int `json:"workers"`
	Cache    cacheStats     `json:"cache"`
	Draining bool           `json:"draining"`
}

type cacheStats struct {
	Enabled   bool  `json:"enabled"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	byStatus := map[string]int{}
	for _, st := range s.studies {
		st.mu.Lock()
		byStatus[st.status]++
		st.mu.Unlock()
	}
	byStatus["total"] = len(s.studies)
	depth := len(s.queue)
	draining := s.draining
	s.mu.Unlock()
	bytes, entries := s.cache.Stats()
	body := statsBody{
		Studies: byStatus,
		Queue:   map[string]int{"depth": depth, "capacity": s.cfg.QueueDepth},
		Workers: map[string]int{
			"pool":       parallel.Workers(s.cfg.Workers),
			"per_study":  s.budget,
			"max_active": s.cfg.MaxActive,
		},
		Cache: cacheStats{
			Enabled:   s.cache != nil,
			Bytes:     bytes,
			MaxBytes:  s.cfg.CacheBytes,
			Entries:   entries,
			Hits:      obs.CacheHits.Value(),
			Misses:    obs.CacheMisses.Value(),
			Evictions: obs.CacheEvictions.Value(),
		},
		Draining: draining,
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}
