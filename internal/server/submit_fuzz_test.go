package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"ctsan/campaign"
)

// fuzzServer builds a service whose admission queue has zero capacity
// and no scheduler: every well-formed submission is turned away with
// 429 after full validation, so the fuzz exercises the entire decode →
// validate → admit path without ever executing a study or spawning a
// goroutine.
func fuzzServer() *Server {
	cfg := Config{}
	cfg.fill()
	s := &Server{
		cfg:     cfg,
		budget:  1,
		studies: map[string]*study{},
		queue:   make(chan *study), // unbuffered, no receiver: always full
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())
	s.mux = s.routes()
	return s
}

// FuzzSubmitStudy throws arbitrary bytes at POST /api/v1/studies. The
// committed corpus mirrors campaign's FuzzDecodeStudy seeds — the
// service reuses DecodeStudy verbatim, so the two surfaces must reject
// identically. Invariants: malformed specs get 400 with a JSON error
// body, valid specs get 429 (the test queue admits nothing), the
// handler never panics, and no goroutines accumulate.
func FuzzSubmitStudy(f *testing.F) {
	study := campaign.NewStudy("seed",
		campaign.SANPoint{N: 3, Replicas: 10},
		campaign.LatencyPoint{N: 3, Executions: 5},
		campaign.ScenarioPoint{Name: "paper-baseline", Replicas: 1, Executions: 5},
	)
	spec, err := campaign.EncodeStudy(study)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(spec)
	f.Add(spec[:len(spec)/2])
	for _, s := range []string{
		`{"v":1,"name":"x","points":[{"engine":"san","spec":{"N":3}}]}`,
		`{"v":2,"name":"x","points":[]}`,
		`{"v":1,"name":"x","points":[{"engine":"quantum","spec":{}}]}`,
		`{"v":1,"name":"x","points":[{"engine":"san","spec":{"N":3,"Replicaz":10}}]}`,
		`{"v":1,"name":"x","points":[{"engine":"emulation","spec":{"N":1e309}}]}`,
		`{"v":1,"name":"x","points":[null]}`,
		`{"v":1}`,
		`[]`,
		`-`,
		``,
	} {
		f.Add([]byte(s))
	}

	s := fuzzServer()
	base := runtime.NumGoroutine()
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/api/v1/studies", bytes.NewReader(body))
		rr := httptest.NewRecorder()
		s.mux.ServeHTTP(rr, req)
		switch rr.Code {
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusTooManyRequests:
		default:
			t.Fatalf("status %d for body %q — admission must reject with 400/413/429", rr.Code, body)
		}
		var eb errorBody
		if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Fatalf("rejection body is not a JSON error object: %s", rr.Body.Bytes())
		}
		if n := runtime.NumGoroutine(); n > base+8 {
			t.Fatalf("goroutines grew from %d to %d — submission path leaked", base, n)
		}
	})
}
