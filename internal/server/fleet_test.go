package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ctsan/campaign"
	"ctsan/internal/checkpoint"
)

// testWorker is the in-test fleet worker: the lease → execute → upload
// loop of `ctsan worker`, driven against the httptest server. It
// freezes the study from the same (spec, seed) inputs the coordinator
// used, so determinism makes its records verifiable.
type testWorker struct {
	h    *testServer
	name string
	dir  string
	// misbehave, when non-nil, transforms the upload lines (corruption
	// and omission tests).
	misbehave func([][]byte) [][]byte
}

func (w *testWorker) leaseOnce(t *testing.T, id string) leaseResp {
	t.Helper()
	resp, data := w.h.post(t, "/api/v1/studies/"+id+"/lease?worker="+w.name, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker %s: lease status %d (%s)", w.name, resp.StatusCode, data)
	}
	var lr leaseResp
	if err := json.Unmarshal(data, &lr); err != nil {
		t.Fatalf("worker %s: decode lease: %v", w.name, err)
	}
	return lr
}

// leaseResp mirrors the worker CLI's view of the lease endpoint.
type leaseResp struct {
	Lease   string `json:"lease"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	TTLMS   int64  `json:"ttl_ms"`
	Done    bool   `json:"done"`
	RetryMS int64  `json:"retry_ms"`
}

// serve works the study to completion: lease, execute the range through
// the real checkpointed range runner, gzip-upload the records.
func (w *testWorker) serve(t *testing.T, id string) {
	t.Helper()
	frozen, err := campaign.Frozen(testStudy(), campaign.WithSeed(1))
	if err != nil {
		t.Errorf("worker %s: freeze: %v", w.name, err)
		return
	}
	for {
		lr := w.leaseOnce(t, id)
		switch {
		case lr.Done:
			return
		case lr.Lease == "":
			time.Sleep(time.Duration(max(lr.RetryMS, 1)) * time.Millisecond)
		default:
			store, err := checkpoint.Open(filepath.Join(w.dir, fmt.Sprintf("%s-%s-%d-%d.jsonl", w.name, id, lr.Start, lr.End)))
			if err != nil {
				t.Errorf("worker %s: open store: %v", w.name, err)
				return
			}
			err = campaign.RunShardRange(context.Background(), frozen, lr.Start, lr.End, store,
				func(int, []byte) error { return nil }, campaign.WithWorkers(1))
			if err != nil {
				t.Errorf("worker %s: range %d:%d: %v", w.name, lr.Start, lr.End, err)
				return
			}
			lines := store.Records()
			if w.misbehave != nil {
				lines = w.misbehave(lines)
			}
			w.upload(t, id, lr.Lease, lines)
		}
	}
}

func (w *testWorker) upload(t *testing.T, id, lease string, lines [][]byte) completeReply {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	for _, line := range lines {
		gz.Write(line)
		gz.Write([]byte{'\n'})
	}
	gz.Close()
	req, err := http.NewRequest(http.MethodPost, w.h.ts.URL+"/api/v1/studies/"+id+"/lease/"+lease+"/complete", &buf)
	if err != nil {
		t.Fatalf("upload request: %v", err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	defer res.Body.Close()
	var out completeReply
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatalf("upload: decode reply (status %d): %v", res.StatusCode, err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d", res.StatusCode)
	}
	return out
}

// TestFleetDifferentialByteIdentity is the fleet acceptance
// differential: a study dispatched to three pull-based workers streams
// byte-for-byte the JSONL of an in-process campaign.Run — cold, and
// again warm, where the second submission is served entirely from the
// content-addressed cache without granting a single lease.
func TestFleetDifferentialByteIdentity(t *testing.T) {
	spec := testSpecBytes(t)
	want := referenceJSONL(t, 1)
	points := len(testStudy().Points)
	h := newTestServer(t, Config{Workers: 1, MaxActive: 1, QueueDepth: 8, CacheBytes: 32 << 20})

	cold := h.mustSubmit(t, spec, "?mode=fleet")
	if cold.Mode != "fleet" || cold.Workers != 0 {
		t.Fatalf("fleet submission: mode=%q workers=%d, want fleet/0", cold.Mode, cold.Workers)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		w := &testWorker{h: h, name: fmt.Sprintf("w%d", i), dir: t.TempDir()}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.serve(t, cold.ID)
		}()
	}
	got := h.streamResults(t, cold.ID)
	wg.Wait()
	if !bytes.Equal(got, want) {
		t.Errorf("cold fleet stream differs from in-process run:\n got: %s\nwant: %s", got, want)
	}
	st := h.waitTerminal(t, cold.ID)
	if st.Status != "done" || st.Done != points {
		t.Fatalf("cold fleet study: %+v", st)
	}
	if st.Fleet == nil || st.Fleet.Granted == 0 || st.Fleet.Completed == 0 {
		t.Errorf("fleet ledger after cold run: %+v", st.Fleet)
	}
	if st.Fleet.Pending != 0 || st.Fleet.Leases != 0 {
		t.Errorf("fleet ledger not drained: %+v", st.Fleet)
	}

	// Warm: every point is cache-resident, so the study completes with
	// zero leases and the identical bytes.
	warm := h.mustSubmit(t, spec, "?mode=fleet")
	if got := h.streamResults(t, warm.ID); !bytes.Equal(got, want) {
		t.Errorf("warm fleet stream differs from in-process run:\n got: %s\nwant: %s", got, want)
	}
	wst := h.waitTerminal(t, warm.ID)
	if wst.Status != "done" {
		t.Fatalf("warm fleet study: %+v", wst)
	}
	if wst.Fleet.Granted != 0 {
		t.Errorf("warm fleet study granted %d leases, want 0", wst.Fleet.Granted)
	}
	if wst.CacheHits != int64(points) || wst.CacheMisses != 0 {
		t.Errorf("warm fleet study: hits=%d misses=%d, want %d/0", wst.CacheHits, wst.CacheMisses, points)
	}
}

// TestFleetLeaseExpiryRequeues pins the crash-safety property: a worker
// that takes a lease and dies (never uploads, never renews) costs only
// that lease — after the TTL the range is re-leased to a live worker
// and the final stream is still byte-identical.
func TestFleetLeaseExpiryRequeues(t *testing.T) {
	spec := testSpecBytes(t)
	want := referenceJSONL(t, 1)
	h := newTestServer(t, Config{Workers: 1, MaxActive: 1, QueueDepth: 8, CacheBytes: -1,
		LeaseTTL: 150 * time.Millisecond})

	st := h.mustSubmit(t, spec, "?mode=fleet")
	h.waitRunning(t, st.ID)

	// The doomed worker grabs the first lease and vanishes.
	doomed := &testWorker{h: h, name: "doomed", dir: t.TempDir()}
	lr := doomed.leaseOnce(t, st.ID)
	if lr.Lease == "" {
		t.Fatalf("doomed worker got no lease: %+v", lr)
	}

	// A live worker completes the study; the doomed range re-leases to it
	// after the TTL.
	live := &testWorker{h: h, name: "live", dir: t.TempDir()}
	live.serve(t, st.ID)

	if got := h.streamResults(t, st.ID); !bytes.Equal(got, want) {
		t.Errorf("stream after expiry differs from in-process run:\n got: %s\nwant: %s", got, want)
	}
	final := h.waitTerminal(t, st.ID)
	if final.Status != "done" {
		t.Fatalf("study after expiry: %+v", final)
	}
	if final.Fleet.Expired < 1 || final.Fleet.Requeued < 1 {
		t.Errorf("fleet ledger did not record the expiry: %+v", final.Fleet)
	}
}

// TestFleetUploadVerification pins the trust boundary: corrupt lines,
// records for the wrong grid, and empty uploads are rejected per line
// with the lease's unfinished points requeued — a broken worker cannot
// poison the merge, only slow it down.
func TestFleetUploadVerification(t *testing.T) {
	spec := testSpecBytes(t)
	want := referenceJSONL(t, 1)
	h := newTestServer(t, Config{Workers: 1, MaxActive: 1, QueueDepth: 8, CacheBytes: -1})

	st := h.mustSubmit(t, spec, "?mode=fleet")
	h.waitRunning(t, st.ID)

	// First worker corrupts every record; nothing lands, everything is
	// requeued at upload time.
	corrupt := &testWorker{h: h, name: "corrupt", dir: t.TempDir()}
	lr := corrupt.leaseOnce(t, st.ID)
	if lr.Lease == "" {
		t.Fatalf("no lease: %+v", lr)
	}
	out := corrupt.upload(t, st.ID, lr.Lease, [][]byte{
		[]byte(`{"crc":"00000000","body":{"v":1}}`),
		[]byte("not json at all"),
	})
	if out.Accepted != 0 || out.Rejected != 2 || out.Done {
		t.Fatalf("corrupt upload accounting: %+v", out)
	}
	fs := h.status(t, st.ID)
	if fs.Fleet.Requeued < int64(lr.End-lr.Start) {
		t.Errorf("corrupt lease did not requeue its range: %+v", fs.Fleet)
	}

	// An honest worker still completes the identical study.
	honest := &testWorker{h: h, name: "honest", dir: t.TempDir()}
	honest.serve(t, st.ID)
	if got := h.streamResults(t, st.ID); !bytes.Equal(got, want) {
		t.Errorf("stream after rejected upload differs from reference")
	}
	final := h.waitTerminal(t, st.ID)
	if final.Status != "done" {
		t.Fatalf("study: %+v", final)
	}

	// Fleet endpoints on a local-mode study are a 409.
	local := h.mustSubmit(t, spec, "")
	h.waitTerminal(t, local.ID)
	resp, _ := h.post(t, "/api/v1/studies/"+local.ID+"/lease?worker=x", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("lease on local study: status %d, want 409", resp.StatusCode)
	}
	// Renewing an unknown lease is 410 Gone.
	resp, _ = h.post(t, "/api/v1/studies/"+st.ID+"/lease/l999999/renew", nil)
	if resp.StatusCode != http.StatusGone {
		t.Errorf("renew unknown lease: status %d, want 410", resp.StatusCode)
	}
}

// TestFleetPartialUploadRequeuesHoles drives the lease ledger directly:
// a lease answered with only part of its range requeues exactly the
// holes, late duplicates are dropped, and the in-order flush emits the
// reference bytes in grid order regardless of arrival order.
func TestFleetPartialUploadRequeuesHoles(t *testing.T) {
	frozen, err := campaign.Frozen(testStudy(), campaign.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	points, err := testStudy().FrozenPoints(campaign.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	// Execute the full grid once to have verified records on hand.
	store, err := checkpoint.Open(filepath.Join(t.TempDir(), "all.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := campaign.RunShardRange(context.Background(), frozen, 0, len(points), store,
		func(int, []byte) error { return nil }, campaign.WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	recs := store.Records()
	if len(recs) != 3 {
		t.Fatalf("test study has %d records, want 3", len(recs))
	}

	now := time.Now()
	m := newLeaseMgr("s000001", frozen, points, time.Minute, time.Second)
	g, _, done := m.grant(now, "w")
	if done || g == nil || g.Start != 0 || g.End != 1 {
		t.Fatalf("first grant = %+v, done=%v; want single-point probe 0:1", g, done)
	}
	// Complete the probe; the EWMA calibrates and the next lease covers
	// more than one point (the elapsed time is ~0, so size clamps up).
	out := m.complete(now.Add(time.Millisecond), g.Lease, recs[:1])
	if out.accepted != 1 || out.flushed != 1 || len(out.emit) != 1 {
		t.Fatalf("probe completion: %+v", out)
	}
	g2, _, _ := m.grant(now, "w")
	if g2 == nil || g2.Start != 1 || g2.End != 3 {
		t.Fatalf("second grant = %+v, want calibrated range 1:3", g2)
	}
	// Answer it with only the LAST record: index 1 is a hole — requeued —
	// and index 2 must not stream yet (in-order fold).
	out = m.complete(now.Add(2*time.Millisecond), g2.Lease, recs[2:3])
	if out.accepted != 1 || out.done || len(out.emit) != 0 || out.flushed != 1 {
		t.Fatalf("partial completion: %+v", out)
	}
	if st := m.stats(); st.Pending != 1 || st.Requeued != 1 {
		t.Fatalf("after partial upload: %+v", st)
	}
	// The hole re-leases; completing it releases BOTH remaining lines in
	// grid order, and a late duplicate of record 2 is dropped.
	g3, _, _ := m.grant(now, "w2")
	if g3 == nil || g3.Start != 1 || g3.End != 2 {
		t.Fatalf("re-lease = %+v, want 1:2", g3)
	}
	out = m.complete(now.Add(3*time.Millisecond), g3.Lease, [][]byte{recs[1], recs[2]})
	if out.accepted != 1 || out.dup != 1 || !out.done || len(out.emit) != 2 {
		t.Fatalf("hole completion: %+v", out)
	}
	select {
	case <-m.done:
	default:
		t.Fatal("manager did not signal done")
	}
	// Reassemble the stream: it must be the records' Result lines in grid
	// order.
	var stream [][]byte
	stream = append(stream, m.records[0].Result)
	for i := range out.emit {
		stream = append(stream, out.emit[i])
	}
	for i, rec := range recs {
		dec, err := campaign.DecodeShardRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(stream[i], dec.Result) {
			t.Errorf("streamed line %d differs from record result", i)
		}
	}
}

// TestFleetAdaptiveLeaseSizing pins the sizing rule: single-point probe
// until calibrated, then target/avg clamped to [1, maxSize].
func TestFleetAdaptiveLeaseSizing(t *testing.T) {
	m := &leaseMgr{target: time.Second, maxSize: 1024}
	cases := []struct {
		avg  time.Duration
		want int
	}{
		{0, 1}, // uncalibrated: probe
		{100 * time.Millisecond, 10},
		{2 * time.Second, 1},     // slower than target: floor
		{time.Microsecond, 1024}, // faster than target/maxSize: ceiling
	}
	for _, tc := range cases {
		m.avgPoint = tc.avg
		if got := m.sizeLocked(); got != tc.want {
			t.Errorf("sizeLocked(avg=%v) = %d, want %d", tc.avg, got, tc.want)
		}
	}
}

// TestCacheSpillRoundTrip pins the persistent point cache: spilled
// records survive a cache restart, warm-load with validation, and a
// damaged spill line is skipped rather than trusted.
func TestCacheSpillRoundTrip(t *testing.T) {
	frozen, err := campaign.Frozen(testStudy(), campaign.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	points, err := testStudy().FrozenPoints(campaign.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Open(filepath.Join(t.TempDir(), "all.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := campaign.RunShardRange(context.Background(), frozen, 0, len(points), store,
		func(int, []byte) error { return nil }, campaign.WithWorkers(1)); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	c := NewCache(1 << 20)
	if _, err := c.EnableSpill(dir); err != nil {
		t.Fatalf("EnableSpill: %v", err)
	}
	for i, rec := range store.Records() {
		c.PutEncoded(points[i].Hash, rec)
	}
	if err := c.SpillAll(); err != nil {
		t.Fatalf("SpillAll: %v", err)
	}

	// A fresh cache over the same dir warm-loads every record.
	c2 := NewCache(1 << 20)
	loaded, err := c2.EnableSpill(dir)
	if err != nil {
		t.Fatalf("EnableSpill(reload): %v", err)
	}
	if loaded != len(points) {
		t.Fatalf("warm-loaded %d records, want %d", loaded, len(points))
	}
	for i, p := range points {
		res, ok := c2.Get(p.Hash)
		if !ok {
			t.Fatalf("point %d missing after warm load", i)
		}
		if res.Seed != p.Seed {
			t.Errorf("point %d: warm-loaded seed %d, want %d", i, res.Seed, p.Seed)
		}
	}

	// SpillAll again writes nothing new (all already on disk): the spill
	// file keeps exactly one line per unique record.
	if err := c2.SpillAll(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := checkpoint.Load(filepath.Join(dir, SpillFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(points) {
		t.Errorf("spill file holds %d records after double spill, want %d", len(recs), len(points))
	}

	// Corrupt spill content is skipped on load, not trusted.
	dir2 := t.TempDir()
	bad, err := checkpoint.Open(filepath.Join(dir2, SpillFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.AppendBatch([][]byte{[]byte(`{"crc":"deadbeef","body":{}}`), store.Records()[0]}); err != nil {
		t.Fatal(err)
	}
	c3 := NewCache(1 << 20)
	loaded, err = c3.EnableSpill(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 {
		t.Errorf("loaded %d records from a half-corrupt spill, want 1", loaded)
	}
}

// TestServerCacheSpillAcrossRestart runs a study on one server with
// spill enabled, shuts it down, and checks a second server over the
// same directory serves the repeat study entirely from cache.
func TestServerCacheSpillAcrossRestart(t *testing.T) {
	spec := testSpecBytes(t)
	want := referenceJSONL(t, 1)
	points := len(testStudy().Points)
	dir := t.TempDir()

	h1 := newTestServer(t, Config{Workers: 2, MaxActive: 1, QueueDepth: 4, CacheBytes: 32 << 20})
	if _, err := h1.s.EnableCacheSpill(dir); err != nil {
		t.Fatalf("EnableCacheSpill: %v", err)
	}
	st := h1.mustSubmit(t, spec, "")
	h1.streamResults(t, st.ID)
	h1.waitTerminal(t, st.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h1.s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	h2 := newTestServer(t, Config{Workers: 2, MaxActive: 1, QueueDepth: 4, CacheBytes: 32 << 20})
	loaded, err := h2.s.EnableCacheSpill(dir)
	if err != nil {
		t.Fatalf("EnableCacheSpill(restart): %v", err)
	}
	if loaded != points {
		t.Fatalf("restart warm-loaded %d records, want %d", loaded, points)
	}
	warm := h2.mustSubmit(t, spec, "")
	if got := h2.streamResults(t, warm.ID); !bytes.Equal(got, want) {
		t.Errorf("post-restart stream differs from reference")
	}
	final := h2.waitTerminal(t, warm.ID)
	if final.CacheHits != int64(points) || final.CacheMisses != 0 {
		t.Errorf("post-restart study: hits=%d misses=%d, want %d/0", final.CacheHits, final.CacheMisses, points)
	}
}
