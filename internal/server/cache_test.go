package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"ctsan/campaign"
)

// makeResult produces one real campaign Result (cache entries are
// encoded shard records, so they need genuinely encodable results).
func makeResult(t *testing.T, seed uint64) *campaign.Result {
	t.Helper()
	study := campaign.NewStudy("cache-unit", campaign.SANPoint{N: 3, Replicas: 5, Seed: seed})
	results, err := campaign.RunCollect(context.Background(), study, campaign.WithWorkers(1))
	if err != nil {
		t.Fatalf("RunCollect: %v", err)
	}
	return results[0]
}

func recordLen(t *testing.T, hash string, res *campaign.Result) int {
	t.Helper()
	line, err := campaign.EncodeShardRecord(hash, res)
	if err != nil {
		t.Fatalf("EncodeShardRecord: %v", err)
	}
	return len(line)
}

func TestCacheRoundTripFreshCopies(t *testing.T) {
	c := NewCache(1 << 20)
	res := makeResult(t, 1)
	want, _ := json.Marshal(res)
	c.Put("sha256:roundtrip", res)

	got1, ok := c.Get("sha256:roundtrip")
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if enc, _ := json.Marshal(got1); string(enc) != string(want) {
		t.Errorf("decoded result differs:\n got: %s\nwant: %s", enc, want)
	}
	// Mutating the returned copy (as campaign.Run does when it rewrites
	// identity fields) must not poison later hits.
	got1.Study, got1.Point, got1.Index = "mangled", "mangled", 99
	got1.Latency.Mean = -1
	got2, ok := c.Get("sha256:roundtrip")
	if !ok {
		t.Fatal("second Get missed")
	}
	if enc, _ := json.Marshal(got2); string(enc) != string(want) {
		t.Errorf("cache returned an aliased copy: %s", enc)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	r1, r2, r3 := makeResult(t, 1), makeResult(t, 2), makeResult(t, 3)
	size := recordLen(t, "sha256:h1", r1)
	// Budget for two records (seeds differ, sizes match within a couple
	// of bytes; the half-record slack absorbs that).
	c := NewCache(int64(2*size + size/2))

	c.Put("sha256:h1", r1)
	c.Put("sha256:h2", r2)
	if _, entries := c.Stats(); entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
	// Touch h1 so h2 becomes least recently used...
	if _, ok := c.Get("sha256:h1"); !ok {
		t.Fatal("h1 missed")
	}
	// ...then inserting h3 must evict h2.
	c.Put("sha256:h3", r3)
	if _, entries := c.Stats(); entries != 2 {
		t.Fatalf("entries after eviction = %d, want 2", entries)
	}
	if _, ok := c.Get("sha256:h2"); ok {
		t.Error("h2 survived eviction; LRU order not respected")
	}
	if _, ok := c.Get("sha256:h1"); !ok {
		t.Error("h1 (recently used) was evicted")
	}
	if _, ok := c.Get("sha256:h3"); !ok {
		t.Error("h3 (just inserted) missed")
	}
	bytes, _ := c.Stats()
	if bytes <= 0 || bytes > int64(2*size+size/2) {
		t.Errorf("size accounting off: %d bytes for budget %d", bytes, 2*size+size/2)
	}
}

func TestCacheDuplicatePutKeepsOneEntry(t *testing.T) {
	c := NewCache(1 << 20)
	res := makeResult(t, 1)
	c.Put("sha256:dup", res)
	c.Put("sha256:dup", res)
	bytes1, entries := c.Stats()
	if entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
	c.Put("sha256:dup", res)
	bytes2, _ := c.Stats()
	if bytes1 != bytes2 {
		t.Errorf("duplicate Put changed size: %d -> %d", bytes1, bytes2)
	}
}

func TestCacheOversizeRecordSkipped(t *testing.T) {
	res := makeResult(t, 1)
	c := NewCache(int64(recordLen(t, "sha256:big", res) - 1))
	c.Put("sha256:big", res)
	if _, entries := c.Stats(); entries != 0 {
		t.Errorf("oversize record was cached")
	}
	if _, ok := c.Get("sha256:big"); ok {
		t.Errorf("oversize record served")
	}
}

func TestCacheDisabledNil(t *testing.T) {
	c := NewCache(0)
	if c != nil {
		t.Fatalf("NewCache(0) = %v, want nil", c)
	}
	// The nil cache is a valid, always-missing PointCache.
	c.Put("sha256:x", makeResult(t, 1))
	if _, ok := c.Get("sha256:x"); ok {
		t.Error("nil cache returned a hit")
	}
	if bytes, entries := c.Stats(); bytes != 0 || entries != 0 {
		t.Errorf("nil cache stats = %d, %d", bytes, entries)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(1 << 20)
	results := []*campaign.Result{makeResult(t, 1), makeResult(t, 2), makeResult(t, 3), makeResult(t, 4)}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("sha256:k%d", (g+i)%len(results))
				c.Put(k, results[(g+i)%len(results)])
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if _, entries := c.Stats(); entries != len(results) {
		t.Errorf("entries = %d, want %d", entries, len(results))
	}
}

func TestHubReplayFollowAndFinish(t *testing.T) {
	h := newHub()
	h.append([]byte(`{"i":0}`))
	h.append([]byte(`{"i":1}`))

	lines, done, _, _ := h.snapshot(0)
	if len(lines) != 2 || done {
		t.Fatalf("snapshot(0): %d lines, done=%v", len(lines), done)
	}
	// A caught-up subscriber gets a wait handle that opens on the next
	// append.
	lines, done, _, wait := h.snapshot(2)
	if len(lines) != 0 || done {
		t.Fatalf("snapshot(2): %d lines, done=%v", len(lines), done)
	}
	select {
	case <-wait:
		t.Fatal("wait channel closed before any append")
	default:
	}
	h.append([]byte(`{"i":2}`))
	select {
	case <-wait:
	default:
		t.Fatal("append did not wake the subscriber")
	}

	h.finish("boom")
	h.finish("ignored") // idempotent: first error wins
	_, done, errMsg, _ := h.snapshot(0)
	if !done || errMsg != "boom" {
		t.Fatalf("after finish: done=%v err=%q", done, errMsg)
	}
	if h.count() != 3 {
		t.Fatalf("count = %d, want 3", h.count())
	}
}
