// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), plus ablations of the modeling choices DESIGN.md calls
// out and micro-benchmarks of the two engines.
//
// Each reproduction benchmark runs a scaled-down campaign per iteration
// and reports the headline quantity as a custom metric (ms), so
// `go test -bench=. -benchmem` both exercises and summarizes the
// reproduction. cmd/repro regenerates the full-resolution artifacts.
package ctsan

import (
	"context"
	"testing"

	"ctsan/internal/experiment"
	"ctsan/internal/neko"
	"ctsan/internal/netsim"
	"ctsan/internal/rng"
	"ctsan/internal/san"
	"ctsan/internal/sanmodel"
)

// benchFidelity keeps one benchmark iteration around a second.
func benchFidelity() experiment.Fidelity {
	f := experiment.QuickFidelity()
	f.Executions = 150
	f.QoSExecs = 80
	f.Replicas = 150
	f.DelayProbes = 1500
	f.Ns = []int{3, 5}
	f.SimNs = []int{3, 5}
	f.TGrid = []float64{2, 10, 30, 100}
	f.CDFGridSteps = 40
	return f
}

// BenchmarkFig6EndToEndDelay regenerates Fig. 6: the end-to-end delay
// CDFs and the §5.1 bi-modal fit.
func BenchmarkFig6EndToEndDelay(b *testing.B) {
	f := benchFidelity()
	for i := 0; i < b.N; i++ {
		_, fits, err := experiment.Fig6(context.Background(), f, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fits.Unicast.Mean(), "unicast-mean-ms")
		b.ReportMetric(fits.Unicast.P1, "mode1-prob")
	}
}

// BenchmarkFig7aLatencyCDFMeasured regenerates Fig. 7(a): class-1 latency
// CDFs from measurements for every n.
func BenchmarkFig7aLatencyCDFMeasured(b *testing.B) {
	f := benchFidelity()
	for i := 0; i < b.N; i++ {
		_, results, err := experiment.Fig7a(context.Background(), f, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[3].Digest.Mean(), "n3-latency-ms")
		b.ReportMetric(results[5].Digest.Mean(), "n5-latency-ms")
	}
}

// BenchmarkFig7bLatencyCDFSimulated regenerates Fig. 7(b): the SAN t_send
// sweep against the measured CDF for n = 5.
func BenchmarkFig7bLatencyCDFSimulated(b *testing.B) {
	f := benchFidelity()
	for i := 0; i < b.N; i++ {
		_, best, err := experiment.Fig7b(context.Background(), f, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(best*1000, "best-tsend-us")
	}
}

// BenchmarkTable1CrashScenarios regenerates Table 1: measured and
// simulated latency under the three crash scenarios.
func BenchmarkTable1CrashScenarios(b *testing.B) {
	f := benchFidelity()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table1(context.Background(), f, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8FDQoS regenerates Fig. 8: the failure detector QoS metrics
// T_MR and T_M versus the timeout T.
func BenchmarkFig8FDQoS(b *testing.B) {
	f := benchFidelity()
	for i := 0; i < b.N; i++ {
		points, err := experiment.RunClass3(context.Background(), f, uint64(i)+1, nil)
		if err != nil {
			b.Fatal(err)
		}
		a, tm := experiment.Fig8(points)
		if len(a.Series) == 0 || len(tm.Series) == 0 {
			b.Fatal("empty figure")
		}
		b.ReportMetric(points[0].QoS.TMR, "tmr-at-smallest-T-ms")
	}
}

// BenchmarkFig9aLatencyVsTimeoutMeasured regenerates Fig. 9(a).
func BenchmarkFig9aLatencyVsTimeoutMeasured(b *testing.B) {
	f := benchFidelity()
	for i := 0; i < b.N; i++ {
		points, err := experiment.RunClass3(context.Background(), f, uint64(i)+1, nil)
		if err != nil {
			b.Fatal(err)
		}
		fig := experiment.Fig9a(points)
		first, last := fig.Series[0].Y[0], fig.Series[0].Y[len(fig.Series[0].Y)-1]
		b.ReportMetric(first/last, "smallT-over-plateau")
	}
}

// BenchmarkFig9bLatencyVsTimeoutSimulated regenerates Fig. 9(b): SAN with
// measured QoS (det and exp FD sojourns) against measurements.
func BenchmarkFig9bLatencyVsTimeoutSimulated(b *testing.B) {
	f := benchFidelity()
	for i := 0; i < b.N; i++ {
		points, err := experiment.RunClass3(context.Background(), f, uint64(i)+1, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiment.Fig9b(context.Background(), points, f, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBroadcastModel compares the paper's single-message
// broadcast model with the unicast-broadcast ablation on the n = 3
// participant-crash scenario (the Table 1 anomaly, §5.3).
func BenchmarkAblationBroadcastModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(unicast bool, crashed []int) float64 {
			p := sanmodel.DefaultParams(3)
			p.UnicastBroadcast = unicast
			p.Crashed = crashed
			res, err := sanmodel.Simulate(p, 800, 1e6, uint64(i)+1)
			if err != nil {
				b.Fatal(err)
			}
			return res.Digest.Mean()
		}
		deltaPaper := run(false, []int{2}) - run(false, nil)
		deltaUni := run(true, []int{2}) - run(true, nil)
		b.ReportMetric(deltaPaper*1000, "paper-model-delta-us")
		b.ReportMetric(deltaUni*1000, "unicast-model-delta-us")
	}
}

// BenchmarkAblationFDCorrelation compares independent per-pair FD
// submodels (the paper's assumption) with fully correlated ones at bad
// QoS — the §5.4 mismatch mechanism.
func BenchmarkAblationFDCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(correlated bool) float64 {
			p := sanmodel.DefaultParams(5)
			p.FD = sanmodel.FDModel{TMR: 8, TM: 2, Kind: sanmodel.FDExponential}
			p.FDCorrelated = correlated
			res, err := sanmodel.Simulate(p, 500, 1e6, uint64(i)+1)
			if err != nil {
				b.Fatal(err)
			}
			return res.Digest.Mean()
		}
		b.ReportMetric(run(false), "independent-ms")
		b.ReportMetric(run(true), "correlated-ms")
	}
}

// BenchmarkAblationSchedulerQuantum measures the Fig. 9(a) peak mechanism:
// class-3 latency at T = 10 ms with and without the 10 ms scheduler-grid
// deferrals.
func BenchmarkAblationSchedulerQuantum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(gridProb float64) float64 {
			params := netsim.DefaultParams(5)
			params.GridProb = gridProb
			res, err := experiment.RunLatency(experiment.LatencySpec{
				N: 5, Executions: 150, Seed: uint64(i) + 1,
				Params: params, FDMode: experiment.FDHeartbeat, TimeoutT: 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Digest.Mean()
		}
		b.ReportMetric(run(0.35), "with-quantum-ms")
		b.ReportMetric(run(0), "without-quantum-ms")
	}
}

// BenchmarkSANEngine measures raw SAN simulator throughput on the n = 5
// consensus model (events per op reported by Go's timer).
func BenchmarkSANEngine(b *testing.B) {
	model, err := sanmodel.Build(sanmodel.DefaultParams(5))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := san.NewSim(model.SAN, rng.New(uint64(i)+1))
		if _, stopped := sim.Run(1e6, model.Done); !stopped {
			b.Fatal("did not decide")
		}
	}
}

// BenchmarkClusterEmulator measures one class-1 consensus execution on the
// emulated cluster.
func BenchmarkClusterEmulator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunLatency(experiment.LatencySpec{
			N: 5, Executions: 1, Seed: uint64(i) + 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterEmulatorClass3 measures a heartbeat-FD execution (much
// heavier: n² heartbeats flow continuously).
func BenchmarkClusterEmulatorClass3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunLatency(experiment.LatencySpec{
			N: 5, Executions: 5, Seed: uint64(i) + 1,
			FDMode: experiment.FDHeartbeat, TimeoutT: 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrashScenario measures a class-2 (coordinator crash) execution.
func BenchmarkCrashScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunLatency(experiment.LatencySpec{
			N: 5, Executions: 1, Seed: uint64(i) + 1, Crashed: []neko.ProcessID{1},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThroughputSequentialConsensus measures the §6 future-work
// extension: chained consensus instances (#k+1 starts when #k decides).
func BenchmarkThroughputSequentialConsensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunThroughput(experiment.ThroughputSpec{
			N: 5, Executions: 150, Warmup: 30, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rate, "decisions/s")
		b.ReportMetric(res.InterDecision.Mean(), "inter-decision-ms")
	}
}

// BenchmarkCrashTransient measures the §6 transient-behaviour extension:
// latency around a mid-campaign coordinator crash under a live heartbeat
// failure detector.
func BenchmarkCrashTransient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunCrashTransient(experiment.CrashTransientSpec{
			N: 5, CrashID: 1, CrashAfter: 10, Executions: 40, TimeoutT: 20, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SteadyBefore, "steady-before-ms")
		b.ReportMetric(res.PeakDuring, "transient-peak-ms")
		b.ReportMetric(res.DetectionTime, "detection-ms")
	}
}
