package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"ctsan/internal/checkpoint"
	"ctsan/internal/metrics"
)

// Shard-record wire format. A sharded campaign (cmd/ctsan) checkpoints
// every completed point as one JSONL line in a checkpoint.Store:
//
//	{"crc":"<crc32c hex>","body":{"v":1,"study":...,"index":...,
//	  "point_hash":"sha256:...","seed":...,"result":{...},"digest":"<base64>"}}
//
// The CRC is computed over the exact body bytes, so any bit flip in a
// stored record is detected at decode time and the record is discarded —
// the point is simply re-executed on resume, never folded in corrupted.
// The body carries the result twice, deliberately: "result" is the
// public Result JSON (the very bytes a 1-process `campaign.JSONLWriter`
// would emit for this point, re-emitted verbatim by merge so sharded and
// unsharded output are byte-identical), and "digest" is the full
// metrics.Digest binary encoding, so merged statistics — not just the
// flattened Summary — survive the process boundary bit-exactly.
//
// ShardRecordVersion bumps are deliberate breaks: decoding rejects
// unknown versions, which turns a format change into "re-run the shard"
// instead of a wrong merge.

// ShardRecordVersion is the current shard-record body version.
const ShardRecordVersion = 1

// crcTable is the Castagnoli polynomial, the standard choice for storage
// checksums (hardware-accelerated on current CPUs).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ShardRecord is the decoded body of one checkpointed point result.
type ShardRecord struct {
	V     int    `json:"v"`
	Study string `json:"study"`
	// Index is the point's position in the full (unsharded) study grid;
	// merge folds records in Index order (determinism rule).
	Index int `json:"index"`
	// PointHash is PointHash() of the frozen point this result belongs
	// to; resume and merge reject records whose hash does not match the
	// point at Index.
	PointHash string `json:"point_hash"`
	// Seed is the point's effective seed, duplicated out of the result
	// for cheap validation.
	Seed uint64 `json:"seed"`
	// Result is the public Result JSON, byte-for-byte what the in-process
	// JSONL sink emits.
	Result json.RawMessage `json:"result"`
	// Digest is the binary metrics.Digest encoding ([]byte marshals as
	// base64 in JSON).
	Digest []byte `json:"digest"`
}

// shardEnvelope frames a record line: CRC over the exact body bytes.
type shardEnvelope struct {
	CRC  string          `json:"crc"`
	Body json.RawMessage `json:"body"`
}

// EncodeShardRecord serializes one completed point as a checkpoint line
// (without trailing newline). pointHash must be the PointHash of the
// frozen point that produced res.
func EncodeShardRecord(pointHash string, res *Result) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("campaign: encode nil result")
	}
	if res.digest == nil {
		return nil, fmt.Errorf("campaign: result of point %d carries no digest", res.Index)
	}
	resultJSON, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("campaign: encode result: %w", err)
	}
	digestBin, err := res.digest.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("campaign: encode digest: %w", err)
	}
	body, err := json.Marshal(ShardRecord{
		V:         ShardRecordVersion,
		Study:     res.Study,
		Index:     res.Index,
		PointHash: pointHash,
		Seed:      res.Seed,
		Result:    resultJSON,
		Digest:    digestBin,
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: encode shard record: %w", err)
	}
	return []byte(fmt.Sprintf(`{"crc":"%08x","body":%s}`, crc32.Checksum(body, crcTable), body)), nil
}

// DecodeShardRecord parses and verifies one checkpoint line: envelope
// shape, CRC over the body bytes, record version, and presence of the
// embedded result. It does not know which point the record *should*
// belong to — that is the caller's check, against PointHash.
func DecodeShardRecord(line []byte) (*ShardRecord, error) {
	var env shardEnvelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("campaign: shard record envelope: %w", err)
	}
	if len(env.Body) == 0 {
		return nil, fmt.Errorf("campaign: shard record with no body")
	}
	if got := fmt.Sprintf("%08x", crc32.Checksum(env.Body, crcTable)); got != env.CRC {
		return nil, fmt.Errorf("campaign: shard record CRC mismatch (stored %s, computed %s)", env.CRC, got)
	}
	var rec ShardRecord
	if err := json.Unmarshal(env.Body, &rec); err != nil {
		return nil, fmt.Errorf("campaign: shard record body: %w", err)
	}
	if rec.V != ShardRecordVersion {
		return nil, fmt.Errorf("campaign: unsupported shard record version %d", rec.V)
	}
	if len(rec.Result) == 0 {
		return nil, fmt.Errorf("campaign: shard record with no result")
	}
	return &rec, nil
}

// DecodeResult reconstructs the full Result from the record, including
// its live latency digest (restored bit-exactly from the binary
// encoding), so merged results support Quantile/Samples and digest
// folding just like results from an in-process run. The engine-native
// Raw() detail does not cross the process boundary and is nil.
func (r *ShardRecord) DecodeResult() (*Result, error) {
	var res Result
	if err := json.Unmarshal(r.Result, &res); err != nil {
		return nil, fmt.Errorf("campaign: shard record result: %w", err)
	}
	var d metrics.Digest
	if err := d.UnmarshalBinary(r.Digest); err != nil {
		return nil, err
	}
	res.digest = &d
	if res.Index != r.Index || res.Seed != r.Seed {
		return nil, fmt.Errorf("campaign: shard record result disagrees with its envelope (index %d/%d, seed %d/%d)",
			res.Index, r.Index, res.Seed, r.Seed)
	}
	return &res, nil
}

// StudyPointHashes computes the PointHash of every point of a (frozen)
// study, indexed by grid position.
func StudyPointHashes(s *Study) ([]string, error) {
	if s == nil {
		return nil, fmt.Errorf("campaign: nil study")
	}
	hashes := make([]string, len(s.Points))
	for i, p := range s.Points {
		h, err := PointHash(p)
		if err != nil {
			return nil, fmt.Errorf("campaign: point %d: %w", i, err)
		}
		hashes[i] = h
	}
	return hashes, nil
}

// VerifyShardRecord decodes one checkpoint line and verifies it belongs
// to the study whose per-index point hashes are given: envelope shape and
// CRC (DecodeShardRecord), grid index in range, and PointHash match at
// that index. It is the per-record acceptance check of everything that
// ingests records produced elsewhere — resume, merge, and the fleet
// coordinator verifying worker uploads.
func VerifyShardRecord(hashes []string, line []byte) (*ShardRecord, error) {
	rec, err := DecodeShardRecord(line)
	if err != nil {
		return nil, err
	}
	if rec.Index < 0 || rec.Index >= len(hashes) {
		return nil, fmt.Errorf("campaign: shard record index %d outside study of %d points", rec.Index, len(hashes))
	}
	if hashes[rec.Index] != rec.PointHash {
		return nil, fmt.Errorf("campaign: shard record at index %d carries hash %s, study expects %s", rec.Index, rec.PointHash, hashes[rec.Index])
	}
	return rec, nil
}

// siftRecords decodes checkpoint lines and keeps the first valid record
// per in-range point whose hash matches the study's point at that index.
// Invalid lines (CRC failures, foreign versions), out-of-range indices,
// stale hashes, and duplicates are counted as skipped, never fatal: a
// bad checkpoint record means re-executing a point, not failing a run.
func siftRecords(hashes []string, lines [][]byte) (byIndex map[int]*ShardRecord, skipped int) {
	byIndex = make(map[int]*ShardRecord)
	for _, line := range lines {
		rec, err := VerifyShardRecord(hashes, line)
		if err != nil {
			skipped++
			continue
		}
		if _, dup := byIndex[rec.Index]; dup {
			// Determinism makes duplicates identical; keep the first.
			skipped++
			continue
		}
		byIndex[rec.Index] = rec
	}
	return byIndex, skipped
}

// MissingPoints reports which grid indices of [start, end) have no valid
// checkpoint record among lines, plus how many lines were skipped as
// invalid or stale. A shard whose range comes back empty is complete and
// can be skipped on resume.
func MissingPoints(frozen *Study, start, end int, lines [][]byte) (missing []int, skipped int, err error) {
	if err := checkRange(frozen, start, end); err != nil {
		return nil, 0, err
	}
	hashes, err := StudyPointHashes(frozen)
	if err != nil {
		return nil, 0, err
	}
	byIndex, skipped := siftRecords(hashes, lines)
	for i := start; i < end; i++ {
		if _, ok := byIndex[i]; !ok {
			missing = append(missing, i)
		}
	}
	return missing, skipped, nil
}

// RunShardRange executes points [start, end) of a frozen study,
// checkpointing each completed point into store and skipping points the
// store already holds valid records for — so a shard killed mid-run
// loses at most the point in flight and re-executes only the remainder
// when restarted. The frozen study must be the *full* grid (records
// carry full-grid indices); opts typically just caps workers, since
// seeds and replica counts are already pinned by Frozen.
//
// onPoint, when non-nil, observes each record line just after it is
// durably appended — the fault-injection hook the crash-safety tests
// use, and a progress hook for supervisors.
func RunShardRange(ctx context.Context, frozen *Study, start, end int, store *checkpoint.Store, onPoint func(index int, line []byte) error, opts ...Option) error {
	if err := checkRange(frozen, start, end); err != nil {
		return err
	}
	missing, _, err := MissingPoints(frozen, start, end, store.Records())
	if err != nil {
		return err
	}
	if len(missing) == 0 {
		return nil
	}
	hashes, err := StudyPointHashes(frozen)
	if err != nil {
		return err
	}
	sub := &Study{Name: frozen.Name, Points: make([]Point, len(missing))}
	for li, gi := range missing {
		sub.Points[li] = frozen.Points[gi]
	}
	sink := &shardSink{store: store, hashes: hashes, global: missing, onPoint: onPoint}
	return Run(ctx, sub, append(opts, WithSink(sink))...)
}

// checkRange validates a shard range against a study.
func checkRange(s *Study, start, end int) error {
	if s == nil {
		return fmt.Errorf("campaign: nil study")
	}
	if start < 0 || end > len(s.Points) || start >= end {
		return fmt.Errorf("campaign: shard range %d:%d outside study of %d points", start, end, len(s.Points))
	}
	return nil
}

// shardSink checkpoints each emitted result, rewriting its sub-study
// index to the full-grid index first (emission order is sub-study order,
// which preserves grid order over the executed subset).
type shardSink struct {
	store   *checkpoint.Store
	hashes  []string
	global  []int
	onPoint func(index int, line []byte) error
}

func (s *shardSink) Emit(res *Result) error {
	gi := s.global[res.Index]
	res.Index = gi
	line, err := EncodeShardRecord(s.hashes[gi], res)
	if err != nil {
		return err
	}
	if err := s.store.Append(line); err != nil {
		return err
	}
	if s.onPoint != nil {
		return s.onPoint(gi, line)
	}
	return nil
}

func (s *shardSink) Close() error { return nil }

// MergeShardRecords folds checkpoint lines (typically the union of every
// shard's store) into the complete, index-ordered record set of a frozen
// study — the determinism rule for sharded campaigns: shards fold in
// grid-index order, exactly like the in-process serial fold, so the
// merged output is bit-identical to a 1-process run. It fails if any
// point has no valid record, listing the missing indices; skipped counts
// lines ignored as corrupt, stale, or duplicate.
func MergeShardRecords(frozen *Study, lines [][]byte) (records []*ShardRecord, skipped int, err error) {
	hashes, err := StudyPointHashes(frozen)
	if err != nil {
		return nil, 0, err
	}
	byIndex, skipped := siftRecords(hashes, lines)
	var missing []int
	for i := range frozen.Points {
		if _, ok := byIndex[i]; !ok {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		return nil, skipped, fmt.Errorf("campaign: merge incomplete: %d of %d points missing (first missing index %d)",
			len(missing), len(frozen.Points), missing[0])
	}
	records = make([]*ShardRecord, len(frozen.Points))
	for i := range records {
		records[i] = byIndex[i]
	}
	return records, skipped, nil
}
