package campaign_test

import (
	"context"
	"fmt"
	"log"

	"ctsan/campaign"
)

// Example_study runs the same question — consensus latency among n = 3
// processes — on both halves of the paper's methodology: the SAN model
// solved by transient simulation, and the measurement campaign on the
// emulated cluster. One Run call, one result stream, fixed seed.
func Example_study() {
	study := campaign.NewStudy("san-vs-measurement",
		campaign.SANPoint{Name: "san n=3", N: 3, Replicas: 400, Tmax: 1e6},
		campaign.LatencyPoint{Name: "emulated n=3", N: 3, Executions: 400},
	)
	results, err := campaign.RunCollect(context.Background(), study,
		campaign.WithSeed(1),
		campaign.WithWorkers(0), // one per CPU; results identical at any count
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-14s engine=%-9s samples=%d mean=%.3f ms p90=%.3f ms\n",
			r.Point, r.Engine, r.Latency.N, r.Latency.Mean, r.Latency.P90)
	}
	// Output:
	// san n=3        engine=san       samples=400 mean=0.509 ms p90=0.711 ms
	// emulated n=3   engine=emulation samples=400 mean=0.503 ms p90=0.705 ms
}
