package campaign

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
)

// mapCache is the simplest conforming PointCache: encoded shard-record
// bytes in a map, decoded fresh per Get — the same storage scheme the
// server's LRU uses, minus bounds and eviction.
type mapCache struct {
	mu      sync.Mutex
	entries map[string][]byte
	gets    []string
	hits    int
	puts    []int // emitted indices, in Put order
}

func newMapCache() *mapCache { return &mapCache{entries: map[string][]byte{}} }

func (c *mapCache) Get(hash string) (*Result, bool) {
	c.mu.Lock()
	line, ok := c.entries[hash]
	c.gets = append(c.gets, hash)
	if ok {
		c.hits++
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	rec, err := DecodeShardRecord(line)
	if err != nil {
		return nil, false
	}
	res, err := rec.DecodeResult()
	if err != nil {
		return nil, false
	}
	return res, true
}

func (c *mapCache) Put(hash string, res *Result) {
	line, err := EncodeShardRecord(hash, res)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.entries[hash] = line
	c.puts = append(c.puts, res.Index)
	c.mu.Unlock()
}

func TestFrozenPointsMatchesManualDerivation(t *testing.T) {
	study := shardTestStudy()
	opts := []Option{WithSeed(11), WithReplicas(30)}
	fps, err := study.FrozenPoints(opts...)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := Frozen(study, opts...)
	if err != nil {
		t.Fatal(err)
	}
	hashes, err := StudyPointHashes(frozen)
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != len(frozen.Points) {
		t.Fatalf("enumerated %d points, study has %d", len(fps), len(frozen.Points))
	}
	for i, fp := range fps {
		if fp.Index != i {
			t.Errorf("point %d: index %d", i, fp.Index)
		}
		if fp.Hash != hashes[i] {
			t.Errorf("point %d: hash %s, manual derivation %s", i, fp.Hash, hashes[i])
		}
		if want := label(frozen.Points[i], i); fp.Label != want {
			t.Errorf("point %d: label %q, want %q", i, fp.Label, want)
		}
		if fp.Engine != frozen.Points[i].Engine() {
			t.Errorf("point %d: engine %v", i, fp.Engine)
		}
		if fp.Seed == 0 {
			t.Errorf("point %d: seed not materialized", i)
		}
		if fp.Replicas < 1 {
			t.Errorf("point %d: replicas not materialized (%d)", i, fp.Replicas)
		}
		// The frozen point must hash to the reported hash (it is the
		// very value cache keys and shard records are built from).
		if h, _ := PointHash(fp.Point); h != fp.Hash {
			t.Errorf("point %d: Point hashes to %s, reported %s", i, h, fp.Hash)
		}
	}
	// Enumeration under different options must produce different seeds,
	// hence different hashes: the cache key covers the materialization.
	other, err := study.FrozenPoints(WithSeed(12), WithReplicas(30))
	if err != nil {
		t.Fatal(err)
	}
	if other[0].Hash == fps[0].Hash {
		t.Error("different study seeds produced the same point hash")
	}
}

// TestPointCacheWarmRunByteIdentical is the cache contract end to end:
// a warm rerun of the same study serves every point from the cache and
// emits byte-identical JSONL.
func TestPointCacheWarmRunByteIdentical(t *testing.T) {
	study := shardTestStudy()
	cache := newMapCache()
	opts := []Option{WithSeed(7), WithWorkers(2), WithPointCache(cache)}

	cold := resultLines(t, study, opts...)
	if cache.hits != 0 {
		t.Fatalf("cold run hit the cache %d times", cache.hits)
	}
	if len(cache.entries) != len(study.Points) {
		t.Fatalf("cold run cached %d of %d points", len(cache.entries), len(study.Points))
	}

	warm := resultLines(t, study, opts...)
	if cache.hits != len(study.Points) {
		t.Fatalf("warm run hit %d of %d points", cache.hits, len(study.Points))
	}
	for i := range cold {
		if !bytes.Equal(cold[i], warm[i]) {
			t.Fatalf("point %d: warm result diverged\ncold: %s\nwarm: %s", i, cold[i], warm[i])
		}
	}

	// An uncached reference run must agree too: serving from cache can
	// change no bit relative to plain execution.
	ref := resultLines(t, study, WithSeed(7), WithWorkers(2))
	for i := range ref {
		if !bytes.Equal(ref[i], cold[i]) {
			t.Fatalf("point %d: cached run diverged from uncached reference", i)
		}
	}
}

// TestPointCacheRewritesIdentity: the same frozen point appearing in a
// differently-named study at a different grid index (same name and
// pinned seed → same content hash, since the point hash covers only the
// frozen point spec, not the study around it) is served from cache with
// the hitting study's identity fields, leaving the statistics untouched.
func TestPointCacheRewritesIdentity(t *testing.T) {
	cache := newMapCache()
	shared := SANPoint{Name: "shared", N: 3, Replicas: 40, Seed: 99}
	a := NewStudy("study-a", shared)
	b := NewStudy("study-b", SANPoint{N: 4, Replicas: 20}, shared)

	ra, err := RunCollect(context.Background(), a, WithWorkers(1), WithPointCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunCollect(context.Background(), b, WithWorkers(1), WithPointCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if cache.hits != 1 {
		t.Fatalf("expected the shared point to hit, got %d hits", cache.hits)
	}
	if rb[1].Study != "study-b" || rb[1].Point != "shared" || rb[1].Index != 1 {
		t.Fatalf("cached result kept stale identity: %+v", rb[1])
	}
	if ra[0].Latency != rb[1].Latency || ra[0].Replicas != rb[1].Replicas {
		t.Fatal("cached result changed the statistics")
	}
	if got, want := rb[1].Quantile(0.5), ra[0].Quantile(0.5); got != want {
		t.Fatalf("cached digest quantile %g, want %g", got, want)
	}
}

// sentinelCache proves a hit really skips the engine: it serves a
// pre-built result for every Get, so if the emitted result carries the
// sentinel's statistics the point cannot have executed.
type sentinelCache struct {
	line []byte
	puts int
}

func (c *sentinelCache) Get(string) (*Result, bool) {
	rec, err := DecodeShardRecord(c.line)
	if err != nil {
		return nil, false
	}
	res, err := rec.DecodeResult()
	if err != nil {
		return nil, false
	}
	return res, true
}

func (c *sentinelCache) Put(string, *Result) { c.puts++ }

func TestPointCacheHitSkipsExecution(t *testing.T) {
	// Build a sentinel record from a tiny run with a recognizable seed.
	donor := NewStudy("donor", SANPoint{N: 3, Replicas: 10, Seed: 424242})
	results, err := RunCollect(context.Background(), donor, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	fps, err := donor.FrozenPoints()
	if err != nil {
		t.Fatal(err)
	}
	line, err := EncodeShardRecord(fps[0].Hash, results[0])
	if err != nil {
		t.Fatal(err)
	}
	cache := &sentinelCache{line: line}

	// This point would run 5000 replicas at a different seed — if the
	// emitted result shows the sentinel's seed and replica count, the
	// engine never ran.
	study := NewStudy("victim", SANPoint{N: 5, Replicas: 5000, Seed: 1})
	got, err := RunCollect(context.Background(), study, WithWorkers(1), WithPointCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Seed != 424242 || got[0].Replicas != 10 {
		t.Fatalf("cache hit did not skip execution: %+v", got[0])
	}
	if got[0].Study != "victim" {
		t.Fatalf("identity not rewritten: %q", got[0].Study)
	}
	if cache.puts != 0 {
		t.Fatalf("hit path called Put %d times", cache.puts)
	}
}

// failingSink errors on the result at a chosen index and records every
// emission and close, pinning the Sink error contract: the study is
// canceled (no unit after the failing emission starts on the serial
// path), the error surfaces from Run wrapped for errors.Is, no further
// Emit calls arrive, and Close still runs exactly once.
type failingSink struct {
	failAt  int
	err     error
	emitted []int
	closes  int
}

func (s *failingSink) Emit(r *Result) error {
	if r.Index == s.failAt {
		return s.err
	}
	s.emitted = append(s.emitted, r.Index)
	return nil
}

func (s *failingSink) Close() error {
	s.closes++
	return nil
}

func TestSinkErrorCancelsStudy(t *testing.T) {
	sinkErr := errors.New("disk full")
	study := NewStudy("sink-error",
		SANPoint{N: 3, Replicas: 20},
		SANPoint{N: 3, Replicas: 20, TSend: 0.05},
		SANPoint{N: 3, Replicas: 20, TSend: 0.1},
		SANPoint{N: 3, Replicas: 20, TSend: 0.2},
		SANPoint{N: 3, Replicas: 20, TSend: 0.4},
	)
	sink := &failingSink{failAt: 1, err: sinkErr}
	exec := newMapCache() // execution observer: Put records every point that ran

	err := Run(context.Background(), study, WithWorkers(1),
		WithSink(sink), WithPointCache(exec))
	if err == nil {
		t.Fatal("sink error did not surface from Run")
	}
	if !errors.Is(err, sinkErr) {
		t.Fatalf("error %v does not wrap the sink error", err)
	}
	if len(sink.emitted) != 1 || sink.emitted[0] != 0 {
		t.Fatalf("emissions after the failure: %v", sink.emitted)
	}
	if sink.closes != 1 {
		t.Fatalf("Close called %d times", sink.closes)
	}
	// Serial path: the failing emission happens inside unit 1; units 2+
	// must never start once it fails.
	if len(exec.puts) != 2 {
		t.Fatalf("points executed after the sink failure: %v", exec.puts)
	}
}

// TestSinkErrorParallelSurfaces pins the same contract on the pooled
// path: the error surfaces, emissions stop at the failure point, and
// every sink is still closed.
func TestSinkErrorParallelSurfaces(t *testing.T) {
	sinkErr := errors.New("downstream gone")
	study := shardTestStudy()
	sink := &failingSink{failAt: 2, err: sinkErr}
	var collect Collect
	err := Run(context.Background(), study, WithWorkers(4),
		WithSink(sink), WithSink(&collect))
	if !errors.Is(err, sinkErr) {
		t.Fatalf("error %v does not wrap the sink error", err)
	}
	if sink.closes != 1 {
		t.Fatalf("Close called %d times", sink.closes)
	}
	for _, idx := range sink.emitted {
		if idx >= 2 {
			t.Fatalf("emission %d arrived after the failing index", idx)
		}
	}
	// The second sink saw the failing result or earlier ones only; the
	// emission loop dies with the first sink error.
	for _, r := range collect.Results {
		if r.Index > 2 {
			t.Fatalf("second sink received index %d after the failure", r.Index)
		}
	}
}
