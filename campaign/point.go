package campaign

import (
	"context"
	"fmt"

	"ctsan/internal/experiment"
	"ctsan/internal/neko"
	"ctsan/internal/sanmodel"
	"ctsan/internal/scenario"
)

// LatencyPoint is an Emulation-engine point: a latency measurement
// campaign on the emulated cluster (§4) — sequential consensus executions
// separated by Gap, under a perfect-oracle failure detector or, when
// TimeoutT > 0, the real push heartbeat detector of §2.2.
type LatencyPoint struct {
	// Name labels the point in results (default "emulation[index]").
	Name string
	// N is the number of processes (≥ 2).
	N int
	// Executions is the number of sequential consensus executions
	// (paper: 5000 for classes 1/2, 1000 for class 3).
	Executions int
	// Gap separates execution starts in ms (0 = 10, §4); Warmup delays
	// the first execution (0 = 20 ms).
	Gap    float64
	Warmup float64
	// TimeoutT > 0 runs the heartbeat failure detector with timeout T;
	// PeriodTh is the heartbeat period (0 = 0.7·T, §5.4). TimeoutT == 0
	// uses the perfect oracle.
	TimeoutT float64
	PeriodTh float64
	// Crashed lists initially crashed processes (class-2 runs).
	Crashed []int
	// MaxRounds (0 = 256) and Deadline ms (0 = 500) guard executions.
	MaxRounds int
	Deadline  float64
	// Seed pins this point's campaign seed; 0 derives one from the study
	// seed and the point index.
	Seed uint64
}

// Engine implements Point.
func (p LatencyPoint) Engine() Engine { return Emulation }

// Label implements Point.
func (p LatencyPoint) Label() string { return p.Name }

func (p LatencyPoint) prepare(o *options, index int) (pointRunner, error) {
	if p.N < 2 {
		return nil, fmt.Errorf("campaign: point %d (%s): need n >= 2, got %d", index, label(p, index), p.N)
	}
	if p.Executions < 1 {
		return nil, fmt.Errorf("campaign: point %d (%s): need at least 1 execution", index, label(p, index))
	}
	if p.TimeoutT < 0 {
		return nil, fmt.Errorf("campaign: point %d (%s): negative heartbeat timeout %g (0 selects the oracle FD)", index, label(p, index), p.TimeoutT)
	}
	spec := experiment.LatencySpec{
		N:          p.N,
		Executions: p.Executions,
		Gap:        p.Gap,
		Warmup:     p.Warmup,
		MaxRounds:  p.MaxRounds,
		Deadline:   p.Deadline,
		Seed:       o.pointSeed(index, p.Seed),
	}
	if p.TimeoutT > 0 {
		spec.FDMode = experiment.FDHeartbeat
		spec.TimeoutT = p.TimeoutT
		spec.PeriodTh = p.PeriodTh
	}
	for _, id := range p.Crashed {
		spec.Crashed = append(spec.Crashed, neko.ProcessID(id))
	}
	return func(ctx context.Context) (*Result, error) {
		res, err := experiment.RunLatencyContext(ctx, spec)
		if err != nil {
			return nil, err
		}
		out := &Result{
			Engine:   Emulation,
			Seed:     spec.Seed,
			Replicas: 1,
			digest:   &res.Digest,
			Latency:  summarize(&res.Digest),
			Aborted:  res.Aborted,
			Texp:     res.Texp,
			Events:   res.Events,
			raw:      res,
		}
		if p.TimeoutT > 0 {
			out.TMR, out.TM = res.QoS.TMR, res.QoS.TM
		}
		return out, nil
	}, nil
}

// SANPoint is a SAN-engine point: a replicated transient study of the
// paper's stochastic activity network model (§3), each replica one
// consensus until the first decision.
type SANPoint struct {
	// Name labels the point in results (default "san[index]").
	Name string
	// N is the number of processes (≥ 2).
	N int
	// Replicas is the number of transient-simulation replicas; 0 takes
	// the study default (WithReplicas, else 1000).
	Replicas int
	// TSend overrides t_send = t_receive in ms (0 keeps the model default
	// 0.025, the value the paper settles on in §5.2).
	TSend float64
	// Crashed lists initially crashed processes (class-2 runs).
	Crashed []int
	// TMR > 0 enables the abstract failure-detector submodels of §3.4
	// with mistake recurrence time TMR and mistake duration TM (class-3
	// runs); FDExponential selects exponential instead of deterministic
	// sojourns.
	TMR, TM       float64
	FDExponential bool
	// Tmax is the simulation horizon in ms (0 = 1e7); replicas that reach
	// it undecided count as Aborted.
	Tmax float64
	// Seed pins this point's campaign seed; 0 derives one from the study
	// seed and the point index.
	Seed uint64
}

// Engine implements Point.
func (p SANPoint) Engine() Engine { return SAN }

// Label implements Point.
func (p SANPoint) Label() string { return p.Name }

func (p SANPoint) prepare(o *options, index int) (pointRunner, error) {
	if p.N < 2 {
		return nil, fmt.Errorf("campaign: point %d (%s): need n >= 2, got %d", index, label(p, index), p.N)
	}
	params := sanmodel.DefaultParams(p.N)
	if p.TSend > 0 {
		params.TSend = p.TSend
		params.TReceive = p.TSend
	}
	params.Crashed = append(params.Crashed, p.Crashed...)
	if p.TMR > 0 {
		kind := sanmodel.FDDeterministic
		if p.FDExponential {
			kind = sanmodel.FDExponential
		}
		params.FD = sanmodel.FDModel{TMR: p.TMR, TM: p.TM, Kind: kind}
	}
	replicas := p.Replicas
	if replicas == 0 {
		replicas = o.replicas
	}
	if replicas == 0 {
		replicas = 1000
	}
	if replicas < 0 {
		return nil, fmt.Errorf("campaign: point %d (%s): negative replica count %d", index, label(p, index), replicas)
	}
	tmax := p.Tmax
	if tmax == 0 {
		tmax = 1e7
	}
	seed := o.pointSeed(index, p.Seed)
	inner := o.innerWorkers()
	return func(ctx context.Context) (*Result, error) {
		res, err := sanmodel.SimulateContext(ctx, params, replicas, tmax, seed, inner)
		if err != nil {
			return nil, err
		}
		return &Result{
			Engine:   SAN,
			Seed:     seed,
			Replicas: replicas,
			digest:   &res.Digest,
			Latency:  summarize(&res.Digest),
			Aborted:  res.Truncated,
			raw:      res,
		}, nil
	}, nil
}

// ScenarioPoint is a Scenario-engine point: a named registry scenario —
// or an inline declarative JSON timeline — run as a replica campaign on
// the emulated cluster, reporting ground-truthed wrong suspicions along
// with latency.
type ScenarioPoint struct {
	// Name is the registry scenario to run (see `scenario list`), and the
	// point label. With SpecJSON set, Name only labels the point.
	Name string
	// SpecJSON, when non-nil, is a declarative JSON scenario definition
	// (the `scenario run -spec` format) used instead of the registry.
	SpecJSON []byte
	// Replicas is the number of independent replicas; 0 takes the study
	// default (WithReplicas, else 1).
	Replicas int
	// Executions overrides the scenario's per-replica execution count
	// (0 keeps the scenario's own default).
	Executions int
	// MaxRounds (0 = 256) and Deadline ms (0 = scenario default) guard
	// each execution.
	MaxRounds int
	Deadline  float64
	// Seed pins this point's campaign seed; 0 derives one from the study
	// seed and the point index.
	Seed uint64
}

// Engine implements Point.
func (p ScenarioPoint) Engine() Engine { return Scenario }

// Label implements Point.
func (p ScenarioPoint) Label() string { return p.Name }

func (p ScenarioPoint) prepare(o *options, index int) (pointRunner, error) {
	var (
		s   *scenario.Scenario
		err error
	)
	switch {
	case p.SpecJSON != nil:
		s, err = scenario.LoadJSON(p.SpecJSON)
	case p.Name != "":
		s, err = scenario.Get(p.Name)
	default:
		err = fmt.Errorf("need a registry scenario name or an inline SpecJSON")
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: point %d (%s): %w", index, label(p, index), err)
	}
	replicas := p.Replicas
	if replicas == 0 {
		replicas = o.replicas
	}
	if replicas == 0 {
		replicas = 1
	}
	spec := scenario.CampaignSpec{
		Scenarios:  []*scenario.Scenario{s},
		Replicas:   replicas,
		Executions: p.Executions,
		Workers:    o.innerWorkers(),
		Seed:       o.pointSeed(index, p.Seed),
		MaxRounds:  p.MaxRounds,
		Deadline:   p.Deadline,
	}
	if replicas < 1 {
		return nil, fmt.Errorf("campaign: point %d (%s): need at least 1 replica, got %d", index, label(p, index), replicas)
	}
	if p.Executions < 0 {
		return nil, fmt.Errorf("campaign: point %d (%s): negative execution override %d", index, label(p, index), p.Executions)
	}
	return func(ctx context.Context) (*Result, error) {
		reports, err := scenario.RunCampaignContext(ctx, spec)
		if err != nil {
			return nil, err
		}
		rep := reports[0]
		return &Result{
			Engine:          Scenario,
			Seed:            spec.Seed,
			Replicas:        replicas,
			digest:          &rep.Digest,
			Latency:         summarize(&rep.Digest),
			Aborted:         rep.Aborted,
			Texp:            rep.Texp,
			Events:          rep.DESEvents,
			Suspicions:      rep.Suspicions,
			WrongSuspicions: rep.WrongSuspicions,
			TMR:             rep.TMR,
			TM:              rep.TM,
			raw:             rep,
		}, nil
	}, nil
}

// label resolves a point's display name, falling back to "engine[index]".
func label(p Point, index int) string {
	if l := p.Label(); l != "" {
		return l
	}
	return fmt.Sprintf("%s[%d]", p.Engine(), index)
}
