package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

// Study spec wire format. Sharded and resumable campaigns (cmd/ctsan)
// need a study that can cross process boundaries: the supervisor and
// every shard subprocess must reconstruct the identical grid, and shard
// records must be able to say, verifiably, *which* point they are the
// result of. Three pieces provide that:
//
//   - EncodeStudy/DecodeStudy: a versioned JSON document for a Study
//     ({"v":1,"name":...,"points":[{"engine":...,"spec":{...}},...]}).
//   - Frozen: materializes every per-point default Run would otherwise
//     resolve lazily — the derived seed, the display label, the replica
//     count — so a sub-range of the frozen study executes bit-identically
//     to the same points inside a 1-process run of the whole study.
//   - PointHash: a canonical SHA-256 of one point's engine + frozen spec,
//     stored in every shard record; resume and merge only accept records
//     whose hash matches the point at that index, so results from an
//     edited spec (or a different study) can never be silently reused.

// StudySpecVersion is the current study-spec document version.
const StudySpecVersion = 1

// pointSpec is the serialized form of one point: an engine discriminator
// plus the engine-specific point struct.
type pointSpec struct {
	Engine string          `json:"engine"`
	Spec   json.RawMessage `json:"spec"`
}

// studySpec is the serialized form of a Study.
type studySpec struct {
	V      int         `json:"v"`
	Name   string      `json:"name"`
	Points []pointSpec `json:"points"`
}

// encodePoint serializes one point with its engine discriminator. The
// concrete type switch is exhaustive: Point is a sealed interface.
func encodePoint(p Point) (pointSpec, error) {
	switch p.(type) {
	case LatencyPoint, SANPoint, ScenarioPoint:
	default:
		return pointSpec{}, fmt.Errorf("campaign: unsupported point type %T", p)
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return pointSpec{}, fmt.Errorf("campaign: encode point: %w", err)
	}
	return pointSpec{Engine: p.Engine().String(), Spec: raw}, nil
}

// EncodeStudy serializes a study as a versioned JSON document, the
// format `ctsan -study` reads. Only the provided point types can be
// encoded (the Point interface is sealed, so that is all of them).
func EncodeStudy(s *Study) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("campaign: encode nil study")
	}
	doc := studySpec{V: StudySpecVersion, Name: s.Name, Points: make([]pointSpec, len(s.Points))}
	for i, p := range s.Points {
		if p == nil {
			return nil, fmt.Errorf("campaign: study point %d is nil", i)
		}
		ps, err := encodePoint(p)
		if err != nil {
			return nil, err
		}
		doc.Points[i] = ps
	}
	return json.MarshalIndent(doc, "", "  ")
}

// DecodeStudy parses an EncodeStudy document back into a Study. Unknown
// engines and document versions are rejected; unknown fields inside a
// point spec are rejected too, so a typo in a hand-written spec fails
// loudly instead of silently running defaults.
func DecodeStudy(data []byte) (*Study, error) {
	var doc studySpec
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("campaign: study spec: %w", err)
	}
	if doc.V != StudySpecVersion {
		return nil, fmt.Errorf("campaign: unsupported study spec version %d", doc.V)
	}
	s := &Study{Name: doc.Name, Points: make([]Point, len(doc.Points))}
	for i, ps := range doc.Points {
		p, err := decodePoint(ps)
		if err != nil {
			return nil, fmt.Errorf("campaign: study point %d: %w", i, err)
		}
		s.Points[i] = p
	}
	return s, nil
}

func decodePoint(ps pointSpec) (Point, error) {
	strict := func(into any) error {
		dec := json.NewDecoder(bytes.NewReader(ps.Spec))
		dec.DisallowUnknownFields()
		return dec.Decode(into)
	}
	switch ps.Engine {
	case "emulation":
		var p LatencyPoint
		if err := strict(&p); err != nil {
			return nil, err
		}
		return p, nil
	case "san":
		var p SANPoint
		if err := strict(&p); err != nil {
			return nil, err
		}
		return p, nil
	case "scenario":
		var p ScenarioPoint
		if err := strict(&p); err != nil {
			return nil, err
		}
		return p, nil
	}
	return nil, fmt.Errorf("unknown engine %q", ps.Engine)
}

// PointHash returns the canonical identity of a point spec:
// "sha256:<hex>" over the point's serialized form (engine name plus the
// JSON encoding of the concrete point struct, whose field order Go fixes
// by declaration). Shard records carry it so resume and merge can verify
// a checkpointed result really belongs to the point at its index.
func PointHash(p Point) (string, error) {
	ps, err := encodePoint(p)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(ps.Engine))
	h.Write([]byte{0})
	h.Write(ps.Spec)
	return fmt.Sprintf("sha256:%x", h.Sum(nil)), nil
}

// Frozen returns a copy of the study with every lazily-resolved per-point
// default materialized under the given options, exactly as Run would
// resolve them: each point's Seed becomes the derived child seed (unless
// already pinned), its Name becomes the resolved display label, and SAN
// and Scenario points get their effective replica counts. Running any
// sub-range of a frozen study therefore reproduces, bit for bit, the
// results those points have inside a full 1-process run — the property
// the sharded executor (cmd/ctsan) is built on.
func Frozen(study *Study, opts ...Option) (*Study, error) {
	o := &options{seed: 1}
	for _, opt := range opts {
		opt(o)
	}
	return frozenWith(study, o)
}

// frozenWith is Frozen over already-resolved options: the form run()
// uses internally, so the cache key derivation and the public freeze
// cannot disagree about how defaults materialize.
func frozenWith(study *Study, o *options) (*Study, error) {
	if study == nil || len(study.Points) == 0 {
		return nil, fmt.Errorf("campaign: freeze of an empty study")
	}
	out := &Study{Name: study.Name, Points: make([]Point, len(study.Points))}
	for i, p := range study.Points {
		if p == nil {
			return nil, fmt.Errorf("campaign: study point %d is nil", i)
		}
		name := label(p, i)
		switch q := p.(type) {
		case LatencyPoint:
			q.Name = name
			q.Seed = o.pointSeed(i, q.Seed)
			out.Points[i] = q
		case SANPoint:
			q.Name = name
			q.Seed = o.pointSeed(i, q.Seed)
			if q.Replicas == 0 {
				q.Replicas = o.replicas
			}
			if q.Replicas == 0 {
				q.Replicas = 1000
			}
			out.Points[i] = q
		case ScenarioPoint:
			q.Name = name
			q.Seed = o.pointSeed(i, q.Seed)
			if q.Replicas == 0 {
				q.Replicas = o.replicas
			}
			if q.Replicas == 0 {
				q.Replicas = 1
			}
			out.Points[i] = q
		default:
			return nil, fmt.Errorf("campaign: unsupported point type %T", p)
		}
	}
	return out, nil
}

// FrozenPoint describes one materialized grid point of a frozen study:
// the resolved display label, the effective seed and replica count, and
// the content hash (PointHash) of the frozen spec — the identity the
// result cache and shard records key on. Point holds the frozen point
// itself, ready to execute or re-encode.
type FrozenPoint struct {
	Index    int    `json:"index"`
	Label    string `json:"label"`
	Engine   Engine `json:"engine"`
	Seed     uint64 `json:"seed"`
	Replicas int    `json:"replicas"`
	Hash     string `json:"hash"`
	Point    Point  `json:"-"`
}

// FrozenPoints freezes the study under opts (exactly as Frozen does) and
// enumerates the resulting grid with per-point hashes and labels. Callers
// that need cache keys, progress displays, or shard planning previously
// re-derived this by composing Frozen, StudyPointHashes, and the label
// fallback by hand; this is the one canonical enumeration.
func (s *Study) FrozenPoints(opts ...Option) ([]FrozenPoint, error) {
	o := &options{seed: 1}
	for _, opt := range opts {
		opt(o)
	}
	return frozenPoints(s, o)
}

// frozenPoints is FrozenPoints over resolved options (run()'s cache path
// shares it).
func frozenPoints(study *Study, o *options) ([]FrozenPoint, error) {
	fz, err := frozenWith(study, o)
	if err != nil {
		return nil, err
	}
	out := make([]FrozenPoint, len(fz.Points))
	for i, p := range fz.Points {
		h, err := PointHash(p)
		if err != nil {
			return nil, fmt.Errorf("campaign: point %d: %w", i, err)
		}
		fp := FrozenPoint{Index: i, Label: label(p, i), Engine: p.Engine(), Hash: h, Point: p}
		switch q := p.(type) {
		case LatencyPoint:
			fp.Seed, fp.Replicas = q.Seed, 1
		case SANPoint:
			fp.Seed, fp.Replicas = q.Seed, q.Replicas
		case ScenarioPoint:
			fp.Seed, fp.Replicas = q.Seed, q.Replicas
		}
		out[i] = fp
	}
	return out, nil
}
