package campaign

import (
	"context"
	"fmt"
)

// Engine identifies which evaluation engine executes a Point. The paper's
// methodology is exactly this duality — the same campaign run against a
// simulated analytical model and against an emulated implementation — and
// the scenario layer extends it with declarative fault injection.
type Engine int

const (
	// SAN solves the stochastic activity network model of the consensus
	// algorithm (§3) by replicated transient simulation.
	SAN Engine = iota + 1
	// Emulation measures the real protocol stack on the emulated cluster
	// (§4): sequential consensus executions with a live failure detector.
	Emulation
	// Scenario runs a declarative fault/workload timeline from the
	// scenario registry (or inline JSON) on the emulated cluster.
	Scenario
)

// String returns the engine's stable lowercase name (used in JSON output).
func (e Engine) String() string {
	switch e {
	case SAN:
		return "san"
	case Emulation:
		return "emulation"
	case Scenario:
		return "scenario"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// MarshalText implements encoding.TextMarshaler so Engine renders as its
// name in JSON results.
func (e Engine) MarshalText() ([]byte, error) { return []byte(e.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler: the inverse of
// MarshalText, needed to decode serialized Results (shard records) and
// study specs.
func (e *Engine) UnmarshalText(text []byte) error {
	switch string(text) {
	case "san":
		*e = SAN
	case "emulation":
		*e = Emulation
	case "scenario":
		*e = Scenario
	default:
		return fmt.Errorf("campaign: unknown engine %q", text)
	}
	return nil
}

// Point is one cell of a study grid: an engine binding plus the
// engine-specific configuration. The three implementations are
// LatencyPoint (Emulation), SANPoint (SAN), and ScenarioPoint (Scenario).
// The interface is sealed: the executor needs module-internal machinery,
// so external packages compose studies from the provided point types.
type Point interface {
	// Engine reports which engine executes the point.
	Engine() Engine
	// Label returns the point's display name (may be empty; Run falls
	// back to "engine[index]").
	Label() string
	// prepare validates the point against the study options and returns
	// its runner. Sealing method: only this package implements Point.
	prepare(o *options, index int) (pointRunner, error)
}

// pointRunner executes one prepared point under a context.
type pointRunner func(ctx context.Context) (*Result, error)

// Study is a named grid of points, executed by Run. The zero value is
// unusable; build studies with NewStudy (or a composite literal with
// Name and Points set).
type Study struct {
	// Name identifies the study in results and progress output.
	Name string
	// Points are the grid cells, executed with deterministic per-index
	// seeding; results are emitted in point-index order.
	Points []Point
}

// NewStudy builds a study from points.
func NewStudy(name string, points ...Point) *Study {
	return &Study{Name: name, Points: points}
}

// Add appends points and returns the study for chaining.
func (s *Study) Add(points ...Point) *Study {
	s.Points = append(s.Points, points...)
	return s
}

// options is the resolved functional-option state of one Run call.
type options struct {
	seed     uint64
	workers  int
	replicas int
	sinks    []Sink
	progress func(done, total int, last *Result)
	cache    PointCache
	// totalPoints is set by Run before preparing points; it feeds the
	// outer/inner worker-budget split.
	totalPoints int
}

// Option configures a Run call.
type Option func(*options)

// WithSeed sets the study root seed (default 1). Every point derives its
// own seed from a child stream keyed by its index — unless the point pins
// an explicit Seed — so a study is bit-identical for a given seed at any
// worker count.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithWorkers caps the worker goroutines fanning out study points and
// their inner Monte-Carlo replicas: 0 (the default) means one per CPU,
// 1 forces the serial reference path. Results do not depend on the count.
func WithWorkers(w int) Option { return func(o *options) { o.workers = w } }

// WithReplicas sets the default replica count for SAN and Scenario points
// that do not set their own (default: 1000 for SAN, 1 for Scenario).
func WithReplicas(r int) Option { return func(o *options) { o.replicas = r } }

// WithProgress installs a progress callback invoked after each result is
// emitted to the sinks: done results so far, the study's total point
// count, and the result just emitted.
//
// The callback's ordering guarantees are part of the API:
//
//   - Sequential: calls never overlap — the next call does not begin
//     until the previous one returns, so the callback needs no locking
//     even on a parallel campaign.
//   - Deterministic order: calls arrive in point-index order (done is
//     exactly 1, 2, …, total) regardless of the worker count or which
//     point finished computing first.
//   - After the sinks: when the callback for point i runs, every sink
//     has already accepted point i's result.
//
// Calls may run on different worker goroutines — only the ordering, not
// the goroutine identity, is guaranteed. The callback executes inside
// the emission critical section, so a slow callback delays result
// delivery, not correctness.
func WithProgress(fn func(done, total int, last *Result)) Option {
	return func(o *options) { o.progress = fn }
}

// WithSink attaches a streaming result sink; repeat to attach several.
// Each sink receives every result exactly once, in point-index order, and
// is closed when the run ends (also on error or cancellation, so partial
// output is flushed).
func WithSink(s Sink) Option { return func(o *options) { o.sinks = append(o.sinks, s) } }
