package campaign_test

import (
	"testing"

	"ctsan/campaign"
)

// discard is a sink that drops every result, so the benchmark measures
// the campaign + SAN-engine path, not result retention.
type discard struct{}

func (discard) Emit(*campaign.Result) error { return nil }
func (discard) Close() error                { return nil }

// BenchmarkSANCampaignSerial is the committed perf baseline of the SAN
// campaign path (scripts/bench_emulation.sh → BENCH_emulation.json): a
// small transient study on the serial reference path, covering the point
// fan-out, the calendar-queue simulator, and the streaming digest — so a
// regression in the SAN engine (ROADMAP item 5's calendar-queue
// follow-up) trips the same drift gate as the emulation path.
func BenchmarkSANCampaignSerial(b *testing.B) {
	study := campaign.NewStudy("bench-san",
		campaign.SANPoint{N: 3, Replicas: 40},
		campaign.SANPoint{N: 5, Replicas: 40},
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := campaign.Run(bg, study,
			campaign.WithSeed(uint64(i)+1),
			campaign.WithWorkers(1),
			campaign.WithSink(discard{}),
		); err != nil {
			b.Fatal(err)
		}
	}
}
