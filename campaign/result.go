package campaign

import (
	"ctsan/internal/stats"
)

// Summary condenses a point's latency samples (milliseconds).
type Summary struct {
	// N is the number of retained samples.
	N int `json:"n"`
	// Mean and CI90 are the sample mean and its 90% confidence half-width.
	Mean float64 `json:"mean_ms"`
	CI90 float64 `json:"ci90_ms"`
	// P50/P90/P99 are empirical quantiles; Min/Max the extremes.
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Min float64 `json:"min_ms"`
	Max float64 `json:"max_ms"`
}

// summarize folds samples into a Summary. Empty input yields the zero
// Summary (a point whose every execution aborted).
func summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	var acc stats.Accumulator
	acc.AddAll(samples)
	e := stats.NewECDF(samples)
	return Summary{
		N:    len(samples),
		Mean: acc.Mean(),
		CI90: acc.CI(0.90),
		P50:  e.Quantile(0.50),
		P90:  e.Quantile(0.90),
		P99:  e.Quantile(0.99),
		Min:  acc.Min(),
		Max:  acc.Max(),
	}
}

// Result is the outcome of one study point, shaped identically across
// engines so sinks, tables, and downstream analyses need no per-engine
// cases. Engine-specific detail stays reachable through Raw.
type Result struct {
	// Study and Point identify the cell; Index is the point's position in
	// the study grid (results are emitted in Index order).
	Study string `json:"study"`
	Point string `json:"point"`
	Index int    `json:"index"`
	// Engine executed the point; Seed is the effective per-point seed.
	Engine Engine `json:"engine"`
	Seed   uint64 `json:"seed"`
	// Replicas is the number of Monte-Carlo replicas the point ran (1 for
	// a plain emulation campaign).
	Replicas int `json:"replicas"`
	// Latency summarizes the retained latency samples (ms): consensus
	// executions for Emulation/Scenario points, transient-study replicas
	// for SAN points.
	Latency Summary `json:"latency"`
	// Aborted counts discarded units: executions that never decided, or
	// SAN replicas truncated by the rounds guard / horizon.
	Aborted int `json:"aborted"`
	// Texp is the total simulated time (ms) and Events the discrete-event
	// count, where the engine reports them (zero for SAN points).
	Texp   float64 `json:"texp_ms,omitempty"`
	Events uint64  `json:"des_events,omitempty"`
	// Suspicions / WrongSuspicions count failure-detector trust→suspect
	// transitions (Scenario points, where the timeline supplies ground
	// truth for wrongness).
	Suspicions      int `json:"suspicions,omitempty"`
	WrongSuspicions int `json:"wrong_suspicions,omitempty"`
	// TMR and TM are the Chen et al. failure-detector QoS metrics (ms),
	// populated for heartbeat campaigns.
	TMR float64 `json:"tmr_ms,omitempty"`
	TM  float64 `json:"tm_ms,omitempty"`

	// Samples holds the raw retained latency samples in execution order.
	// They are deliberately outside the JSON schema (JSONL lines stay one
	// screen wide at paper fidelity); use Collect for programmatic access.
	Samples []float64 `json:"-"`

	// raw is the engine-native result (*experiment.LatencyResult,
	// *san.TransientResult, or *scenario.Report).
	raw any
}

// Raw returns the engine-native result: *experiment.LatencyResult for
// Emulation points, *san.TransientResult for SAN points, and
// *scenario.Report for Scenario points. Only packages inside this module
// can name those types; external users work with the flattened fields.
func (r *Result) Raw() any { return r.raw }
