package campaign

import (
	"math"

	"ctsan/internal/metrics"
)

// Summary condenses a point's latency digest (milliseconds).
type Summary struct {
	// N is the number of recorded samples.
	N int `json:"n"`
	// Mean and CI90 are the sample mean and its 90% confidence half-width.
	Mean float64 `json:"mean_ms"`
	CI90 float64 `json:"ci90_ms"`
	// P50/P90/P99 are latency quantiles (exact below the digest's cap,
	// sketched beyond it); Min/Max the exact extremes.
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Min float64 `json:"min_ms"`
	Max float64 `json:"max_ms"`
}

// summarize flattens a digest into a Summary. An empty digest yields the
// zero Summary (a point whose every execution aborted).
func summarize(d *metrics.Digest) Summary {
	if d.N() == 0 {
		return Summary{}
	}
	ps := d.Quantiles(0.50, 0.90, 0.99)
	return Summary{
		N:    d.N(),
		Mean: d.Mean(),
		CI90: d.CI(0.90),
		P50:  ps[0],
		P90:  ps[1],
		P99:  ps[2],
		Min:  d.Min(),
		Max:  d.Max(),
	}
}

// Result is the outcome of one study point, shaped identically across
// engines so sinks, tables, and downstream analyses need no per-engine
// cases. Engine-specific detail stays reachable through Raw.
type Result struct {
	// Study and Point identify the cell; Index is the point's position in
	// the study grid (results are emitted in Index order).
	Study string `json:"study"`
	Point string `json:"point"`
	Index int    `json:"index"`
	// Engine executed the point; Seed is the effective per-point seed.
	Engine Engine `json:"engine"`
	Seed   uint64 `json:"seed"`
	// Replicas is the number of Monte-Carlo replicas the point ran (1 for
	// a plain emulation campaign).
	Replicas int `json:"replicas"`
	// Latency summarizes the retained latency samples (ms): consensus
	// executions for Emulation/Scenario points, transient-study replicas
	// for SAN points.
	Latency Summary `json:"latency"`
	// Aborted counts discarded units: executions that never decided, or
	// SAN replicas truncated by the rounds guard / horizon.
	Aborted int `json:"aborted"`
	// Texp is the total simulated time (ms) and Events the discrete-event
	// count, where the engine reports them (zero for SAN points).
	Texp   float64 `json:"texp_ms,omitempty"`
	Events uint64  `json:"des_events,omitempty"`
	// Suspicions / WrongSuspicions count failure-detector trust→suspect
	// transitions (Scenario points, where the timeline supplies ground
	// truth for wrongness).
	Suspicions      int `json:"suspicions,omitempty"`
	WrongSuspicions int `json:"wrong_suspicions,omitempty"`
	// TMR and TM are the Chen et al. failure-detector QoS metrics (ms),
	// populated for heartbeat campaigns.
	TMR float64 `json:"tmr_ms,omitempty"`
	TM  float64 `json:"tm_ms,omitempty"`

	// digest is the point's streaming latency digest; Latency flattens
	// it. The digest stays outside the JSON schema (JSONL lines stay one
	// screen wide at paper fidelity); use Samples or Quantile for
	// programmatic access.
	digest *metrics.Digest

	// raw is the engine-native result (*experiment.LatencyResult,
	// *san.TransientResult, or *scenario.Report).
	raw any
}

// Samples returns the retained latency samples in execution order. It
// replaces the raw sample slice earlier revisions carried on every
// result: samples are now derived from the point's streaming digest, so
// they are available exactly while the digest is in exact mode (up to
// its cap, metrics.DefaultExactCap) and nil beyond it — million-
// execution campaigns deliberately do not retain raw samples. The slice
// is the digest's own buffer: callers must not modify it.
func (r *Result) Samples() []float64 {
	if r.digest == nil {
		return nil
	}
	return r.digest.Exact()
}

// Quantile returns the q-quantile (0 <= q <= 1) of the point's latency
// digest: exact below the digest's cap, a deterministic sketch estimate
// beyond it, NaN if the point kept no samples.
func (r *Result) Quantile(q float64) float64 {
	if r.digest == nil {
		return math.NaN()
	}
	return r.digest.Quantile(q)
}

// Raw returns the engine-native result: *experiment.LatencyResult for
// Emulation points, *san.TransientResult for SAN points, and
// *scenario.Report for Scenario points. Only packages inside this module
// can name those types; external users work with the flattened fields.
func (r *Result) Raw() any { return r.raw }
