package campaign

// PointCache is a content-addressed store of completed point results,
// consulted by Run around every point execution when installed with
// WithPointCache. The key is the PointHash of the *frozen* point — the
// engine name plus the fully materialized spec, derived seed included —
// so a hit can only occur for a point that would execute identically:
// same engine, same parameters, same seed, same replica count. Repeated
// points across studies (thousands of users poking the same built-in
// scenarios) are then served from memory instead of resimulated.
//
// Contract:
//
//   - Get returns a Result the caller owns: implementations must hand
//     out an independent copy per call (the canonical implementation
//     stores the encoded shard-record bytes and decodes a fresh Result),
//     because Run rewrites the identity fields (Study, Point, Index) to
//     the hitting study's values.
//   - Put is called after a point executes, with the fully identified
//     Result. Implementations must snapshot it (encode, copy) rather
//     than retain the pointer.
//   - Both methods may be called concurrently from worker goroutines.
//   - The cache only ever observes deterministic values: for a given
//     hash every Put stores the same statistics, so lossy admission or
//     eviction policies cannot change any result bit — only whether a
//     point is recomputed.
type PointCache interface {
	Get(hash string) (*Result, bool)
	Put(hash string, res *Result)
}

// WithPointCache installs a content-addressed result cache consulted
// around every point execution: a hit skips the engine entirely (the
// obs executions counter does not advance) and the cached result is
// re-identified and emitted to the sinks exactly as a computed one
// would be — sink output is byte-identical either way. Points whose
// results cannot be encoded (no digest) are silently not cached.
func WithPointCache(c PointCache) Option { return func(o *options) { o.cache = c } }
