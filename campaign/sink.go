package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Sink consumes study results as they stream out of Run. Emit is called
// once per point, in point-index order; calls are serialized (never
// concurrent with one another) but may arrive on different worker
// goroutines. Close is called exactly once when the run ends — on
// success, error, and cancellation alike — so sinks can flush partial
// output.
type Sink interface {
	Emit(*Result) error
	Close() error
}

// Collect is the simplest sink: it gathers results into a slice, in
// point-index order. The zero value is ready to use.
type Collect struct {
	Results []*Result
}

// Emit implements Sink.
func (c *Collect) Emit(r *Result) error {
	c.Results = append(c.Results, r)
	return nil
}

// Close implements Sink.
func (c *Collect) Close() error { return nil }

// JSONLWriter streams each result as one JSON object per line (JSON
// Lines), suitable for piping into jq or loading into dataframes while
// the study is still running. The latency digest is not serialized —
// only its Summary flattening (see Result.Samples and Result.Quantile
// for programmatic access).
type JSONLWriter struct {
	enc *json.Encoder
}

// NewJSONLWriter returns a JSONL sink writing to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (j *JSONLWriter) Emit(r *Result) error { return j.enc.Encode(r) }

// Close implements Sink.
func (j *JSONLWriter) Close() error { return nil }

// TableSink renders results as an aligned text table. Rows accumulate as
// results stream in; the table is written on Close (column widths need
// the full set).
type TableSink struct {
	w    io.Writer
	rows [][]string
}

// NewTableSink returns a table sink writing to w on Close.
func NewTableSink(w io.Writer) *TableSink { return &TableSink{w: w} }

var tableHeader = []string{
	"point", "engine", "n", "mean[ms]", "p50", "p90", "p99", "aborted", "wrong-susp",
}

// Emit implements Sink.
func (t *TableSink) Emit(r *Result) error {
	ws := "-"
	if r.Suspicions > 0 || r.WrongSuspicions > 0 {
		ws = fmt.Sprintf("%d/%d", r.WrongSuspicions, r.Suspicions)
	}
	t.rows = append(t.rows, []string{
		r.Point,
		r.Engine.String(),
		fmt.Sprintf("%d", r.Latency.N),
		fmt.Sprintf("%.3f", r.Latency.Mean),
		fmt.Sprintf("%.3f", r.Latency.P50),
		fmt.Sprintf("%.3f", r.Latency.P90),
		fmt.Sprintf("%.3f", r.Latency.P99),
		fmt.Sprintf("%d", r.Aborted),
		ws,
	})
	return nil
}

// Close implements Sink: it renders the accumulated rows.
func (t *TableSink) Close() error {
	widths := make([]int, len(tableHeader))
	for i, h := range tableHeader {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(t.w, line(tableHeader)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(t.w, line(row)); err != nil {
			return err
		}
	}
	return nil
}
