package campaign_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"ctsan/campaign"
	"ctsan/internal/experiment"
	"ctsan/internal/sanmodel"
	"ctsan/internal/scenario"
)

var bg = context.Background()

func sameSamples(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d samples, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: sample %d = %v, want %v (must be bit-identical)", what, i, got[i], want[i])
		}
	}
}

// TestEmulationMatchesInternalSweep pins the refactor: a latency study on
// the Emulation engine must be bit-identical to the pre-refactor internal
// API (experiment.RunLatencySweep) at 1, 2, and 8 workers.
func TestEmulationMatchesInternalSweep(t *testing.T) {
	ns := []int{3, 5}
	const execs, seed = 60, 11
	specs := make([]experiment.LatencySpec, len(ns))
	points := make([]campaign.Point, len(ns))
	for i, n := range ns {
		specs[i] = experiment.LatencySpec{N: n, Executions: execs, Seed: seed}
		points[i] = campaign.LatencyPoint{N: n, Executions: execs, Seed: seed}
	}
	ref, err := experiment.RunLatencySweep(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		results, err := campaign.RunCollect(bg, campaign.NewStudy("emu", points...), campaign.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		for i := range points {
			sameSamples(t, "emulation point", results[i].Samples(), ref[i].Digest.Exact())
			if results[i].Aborted != ref[i].Aborted {
				t.Fatalf("workers=%d: aborted %d, want %d", w, results[i].Aborted, ref[i].Aborted)
			}
		}
	}
}

// TestSANMatchesInternalSimulate pins the SAN engine against the
// pre-refactor sanmodel.SimulateWorkers at 1, 2, and 8 workers.
func TestSANMatchesInternalSimulate(t *testing.T) {
	const n, replicas, tmax, seed = 3, 250, 1e6, 9
	p := sanmodel.DefaultParams(n)
	ref, err := sanmodel.SimulateWorkers(p, replicas, tmax, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		results, err := campaign.RunCollect(bg,
			campaign.NewStudy("san", campaign.SANPoint{N: n, Replicas: replicas, Tmax: tmax, Seed: seed}),
			campaign.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		sameSamples(t, "san point", results[0].Samples(), ref.Digest.Exact())
		if results[0].Aborted != ref.Truncated {
			t.Fatalf("workers=%d: aborted %d, want truncated %d", w, results[0].Aborted, ref.Truncated)
		}
	}
}

// TestScenarioMatchesInternalCampaign pins the Scenario engine against
// the pre-refactor scenario.RunCampaign at 1, 2, and 8 workers.
func TestScenarioMatchesInternalCampaign(t *testing.T) {
	s, err := scenario.Get("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	const replicas, execs, seed = 3, 40, 21
	refReports, err := scenario.RunCampaign(scenario.CampaignSpec{
		Scenarios:  []*scenario.Scenario{s},
		Replicas:   replicas,
		Executions: execs,
		Workers:    1,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := refReports[0]
	for _, w := range []int{1, 2, 8} {
		results, err := campaign.RunCollect(bg,
			campaign.NewStudy("scn", campaign.ScenarioPoint{
				Name: "paper-baseline", Replicas: replicas, Executions: execs, Seed: seed,
			}),
			campaign.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		r := results[0]
		sameSamples(t, "scenario point", r.Samples(), ref.Digest.Exact())
		if r.Aborted != ref.Aborted || r.Suspicions != ref.Suspicions ||
			r.WrongSuspicions != ref.WrongSuspicions || r.Events != ref.DESEvents ||
			r.Texp != ref.Texp {
			t.Fatalf("workers=%d: flattened report diverged: %+v vs %+v", w, r, ref)
		}
	}
}

// TestStudyDeterministicAcrossWorkers runs a mixed three-engine study —
// the API's reason to exist — and requires bit-identical results and
// identical emission order at 1, 2, and 8 workers.
func TestStudyDeterministicAcrossWorkers(t *testing.T) {
	study := func() *campaign.Study {
		return campaign.NewStudy("mixed",
			campaign.SANPoint{Name: "model", N: 3, Replicas: 150, Tmax: 1e6},
			campaign.LatencyPoint{Name: "measured", N: 3, Executions: 50},
			campaign.ScenarioPoint{Name: "paper-baseline", Replicas: 2, Executions: 30},
		)
	}
	ref, err := campaign.RunCollect(bg, study(), campaign.WithSeed(5), campaign.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 3 {
		t.Fatalf("expected 3 results, got %d", len(ref))
	}
	for _, w := range []int{2, 8} {
		got, err := campaign.RunCollect(bg, study(), campaign.WithSeed(5), campaign.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i].Index != i || got[i].Point != ref[i].Point {
				t.Fatalf("workers=%d: emission order broken at %d: %q", w, i, got[i].Point)
			}
			sameSamples(t, "mixed study point "+ref[i].Point, got[i].Samples(), ref[i].Samples())
			if got[i].Seed != ref[i].Seed {
				t.Fatalf("workers=%d: derived seed changed: %d vs %d", w, got[i].Seed, ref[i].Seed)
			}
		}
	}
}

// TestCancellationAbortsMidCampaign cancels the context from the progress
// callback after the first emitted result: the run must stop promptly and
// return the clean context error, with at most a few in-flight points
// completing after the cancel.
func TestCancellationAbortsMidCampaign(t *testing.T) {
	var points []campaign.Point
	for i := 0; i < 40; i++ {
		points = append(points, campaign.LatencyPoint{N: 3, Executions: 40})
	}
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	emitted := 0
	err := campaign.Run(ctx, campaign.NewStudy("cancel-me", points...),
		campaign.WithWorkers(2),
		campaign.WithProgress(func(done, total int, _ *campaign.Result) {
			emitted = done
			if done == 1 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted >= len(points) {
		t.Fatalf("all %d points ran despite cancellation after the first", len(points))
	}
}

// TestCancellationInsideSinglePoint cancels during a single long
// emulation point: the execution-boundary check must stop it without
// waiting for the whole campaign.
func TestCancellationInsideSinglePoint(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	study := campaign.NewStudy("one-long-point",
		campaign.LatencyPoint{N: 3, Executions: 100000})
	done := make(chan error, 1)
	go func() {
		_, err := campaign.RunCollect(ctx, study, campaign.WithWorkers(1))
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPrepareFailsFast: an invalid late point must fail before any
// campaign runs (streaming must not emit partial output first).
func TestPrepareFailsFast(t *testing.T) {
	var emitted int
	err := campaign.Run(bg, campaign.NewStudy("bad",
		campaign.LatencyPoint{N: 3, Executions: 20},
		campaign.ScenarioPoint{Name: "no-such-scenario"},
	), campaign.WithProgress(func(int, int, *campaign.Result) { emitted++ }))
	if err == nil || !strings.Contains(err.Error(), "no-such-scenario") {
		t.Fatalf("err = %v, want unknown-scenario prepare error", err)
	}
	if emitted != 0 {
		t.Fatalf("%d results emitted before the prepare error", emitted)
	}
}

// closeCounter counts Close calls so tests can pin the exactly-once
// sink-close contract.
type closeCounter struct {
	campaign.Collect
	closes int
}

func (c *closeCounter) Close() error { c.closes++; return nil }

// TestSinksClosedOnPrepareError: Close must be called exactly once even
// when the run fails before any point executes (a custom sink holding a
// file handle must be released).
func TestSinksClosedOnPrepareError(t *testing.T) {
	var sink closeCounter
	err := campaign.Run(bg, campaign.NewStudy("bad",
		campaign.ScenarioPoint{Name: "no-such-scenario"},
	), campaign.WithSink(&sink))
	if err == nil {
		t.Fatal("prepare error expected")
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times on prepare error, want exactly 1", sink.closes)
	}
	var empty closeCounter
	if err := campaign.Run(bg, campaign.NewStudy("empty"), campaign.WithSink(&empty)); err == nil {
		t.Fatal("empty study must error")
	}
	if empty.closes != 1 {
		t.Fatalf("sink closed %d times on empty study, want exactly 1", empty.closes)
	}
}

// TestNegativeTimeoutRejected: a negative heartbeat timeout must fail
// loudly, not silently fall back to the oracle detector.
func TestNegativeTimeoutRejected(t *testing.T) {
	err := campaign.Run(bg, campaign.NewStudy("neg-T",
		campaign.LatencyPoint{N: 3, Executions: 10, TimeoutT: -5}))
	if err == nil || !strings.Contains(err.Error(), "negative heartbeat timeout") {
		t.Fatalf("err = %v, want negative-timeout error", err)
	}
}

// TestEmptyStudyRejected pins the descriptive error for empty studies.
func TestEmptyStudyRejected(t *testing.T) {
	if err := campaign.Run(bg, campaign.NewStudy("empty")); err == nil {
		t.Fatal("empty study must error")
	}
	if err := campaign.Run(bg, nil); err == nil {
		t.Fatal("nil study must error")
	}
}

// TestSinksReceiveOrderedStream checks multi-sink fan-out and that the
// JSONL sink emits one parseable line per point, in index order.
func TestSinksReceiveOrderedStream(t *testing.T) {
	var buf strings.Builder
	var collected campaign.Collect
	study := campaign.NewStudy("sinks",
		campaign.SANPoint{Name: "a", N: 3, Replicas: 60, Tmax: 1e6},
		campaign.SANPoint{Name: "b", N: 3, Replicas: 60, Tmax: 1e6},
		campaign.SANPoint{Name: "c", N: 3, Replicas: 60, Tmax: 1e6},
	)
	err := campaign.Run(bg, study,
		campaign.WithWorkers(8),
		campaign.WithSink(&collected),
		campaign.WithSink(campaign.NewJSONLWriter(&buf)))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || len(collected.Results) != 3 {
		t.Fatalf("expected 3 results in both sinks, got %d lines / %d collected", len(lines), len(collected.Results))
	}
	for i, want := range []string{"a", "b", "c"} {
		if collected.Results[i].Point != want {
			t.Fatalf("collect order: position %d is %q", i, collected.Results[i].Point)
		}
		if !strings.Contains(lines[i], `"point":"`+want+`"`) {
			t.Fatalf("jsonl line %d does not mention point %q: %s", i, want, lines[i])
		}
	}
}

// countingSink counts emissions; safe without a lock because sink calls
// are serialized (the same guarantee the progress test verifies).
type countingSink struct{ n *int }

func (s countingSink) Emit(*campaign.Result) error { *s.n++; return nil }
func (s countingSink) Close() error                { return nil }

// TestProgressOrderingGuarantees pins the WithProgress contract on a
// parallel campaign: calls are sequential (never concurrent), arrive in
// point-index order with done counting 1..total, and each call sees the
// result the sinks just accepted. A sink that records emission order
// cross-checks the "after the sinks" clause.
func TestProgressOrderingGuarantees(t *testing.T) {
	const points = 12
	study := campaign.NewStudy("progress")
	names := make([]string, points)
	for i := 0; i < points; i++ {
		names[i] = fmt.Sprintf("p%02d", i)
		study.Add(campaign.SANPoint{Name: names[i], N: 3, Replicas: 40, Tmax: 1e6})
	}

	var (
		inCallback atomic.Int32
		calls      []int // done values, in call order
		results    []string
		sunk       int
	)
	var collected campaign.Collect
	err := campaign.Run(bg, study,
		campaign.WithWorkers(8),
		campaign.WithSink(countingSink{&sunk}),
		campaign.WithSink(&collected),
		campaign.WithProgress(func(done, total int, last *campaign.Result) {
			// Sequential: no other callback may be in flight.
			if inCallback.Add(1) != 1 {
				t.Error("progress callbacks overlap")
			}
			defer inCallback.Add(-1)
			// Yield so an overlapping call (a bug) would actually get
			// scheduled and trip the counter above.
			runtime.Gosched()
			if total != points {
				t.Errorf("total = %d, want %d", total, points)
			}
			if sunk != done {
				t.Errorf("callback for done=%d ran with only %d results sunk", done, sunk)
			}
			calls = append(calls, done)
			results = append(results, last.Point)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != points {
		t.Fatalf("%d progress calls, want %d", len(calls), points)
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("call %d reported done=%d, want %d (point-index order)", i, done, i+1)
		}
		if results[i] != names[i] {
			t.Fatalf("call %d carried result %q, want %q", i, results[i], names[i])
		}
	}
}
