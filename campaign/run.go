package campaign

import (
	"context"
	"errors"
	"fmt"

	"ctsan/internal/obs"
	"ctsan/internal/parallel"
	"ctsan/internal/rng"
)

// pointSeed resolves the effective seed of point `index`: an explicit
// per-point seed wins; otherwise a child stream of the study seed, keyed
// by the index, supplies one — so points are statistically independent
// yet the whole study is reproducible from a single root seed.
func (o *options) pointSeed(index int, explicit uint64) uint64 {
	if explicit != 0 {
		return explicit
	}
	return rng.New(o.seed ^ 0xca_4a16).Child(uint64(index)).Uint64()
}

// innerWorkers splits the worker budget between the fan-out over points
// and the Monte-Carlo replicas inside each point (see
// parallel.InnerWorkers).
func (o *options) innerWorkers() int {
	return parallel.InnerWorkers(o.workers, o.totalPoints)
}

// Run executes every point of the study on the deterministic worker pool
// and streams results to the attached sinks in point-index order — the
// first point's result is delivered while later points are still
// running, yet the emission order (and every result bit) is independent
// of the worker count.
//
// ctx cancels the study cooperatively: between points, between the
// Monte-Carlo replicas inside SAN and Scenario points, and between the
// consensus executions inside Emulation points. A canceled run returns
// ctx.Err() (after closing the sinks, so partial output is flushed).
func Run(ctx context.Context, study *Study, opts ...Option) error {
	o := &options{seed: 1}
	for _, opt := range opts {
		opt(o)
	}
	err := run(ctx, study, o)
	// Sinks are closed on every exit path — success, validation error,
	// point failure, cancellation — so partial output is always flushed.
	for _, s := range o.sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("campaign: sink close: %w", cerr)
		}
	}
	// Cancellation surfaces as the clean context error, not a wrapped
	// point failure.
	if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		return ctx.Err()
	}
	return err
}

// run validates, prepares, and executes the study (sink closing is Run's
// job).
func run(ctx context.Context, study *Study, o *options) error {
	if study == nil || len(study.Points) == 0 {
		return errors.New("campaign: study with no points (nothing to run)")
	}
	o.totalPoints = len(study.Points)

	// Prepare (and validate) every point before anything runs: a typo in
	// point 7 must not cost the six campaigns before it.
	runners := make([]pointRunner, len(study.Points))
	for i, p := range study.Points {
		if p == nil {
			return fmt.Errorf("campaign: study point %d is nil", i)
		}
		r, err := p.prepare(o, i)
		if err != nil {
			return err
		}
		runners[i] = r
	}

	// With a result cache installed, every point's content hash is
	// derived up front from the frozen study — the same materialization
	// Frozen performs — so cache keys cover the effective seed and
	// replica count, not just the user-written spec.
	var hashes []string
	if o.cache != nil {
		fps, err := frozenPoints(study, o)
		if err != nil {
			return err
		}
		hashes = make([]string, len(fps))
		for i, fp := range fps {
			hashes[i] = fp.Hash
		}
	}

	total := len(runners)
	return parallel.Stream(ctx, o.workers, total,
		func(_, i int) (*Result, error) {
			if o.cache != nil {
				if res, ok := o.cache.Get(hashes[i]); ok && res != nil {
					// Re-identify the cached result for this study: the
					// statistics are content-addressed, the identity is not.
					res.Study = study.Name
					res.Point = label(study.Points[i], i)
					res.Index = i
					return res, nil
				}
			}
			res, err := runners[i](ctx)
			if err != nil {
				return nil, fmt.Errorf("campaign: point %d (%s): %w", i, label(study.Points[i], i), err)
			}
			res.Study = study.Name
			res.Point = label(study.Points[i], i)
			res.Index = i
			if o.cache != nil {
				o.cache.Put(hashes[i], res)
			}
			return res, nil
		},
		func(i int, res *Result) error {
			obs.Points.Add(1)
			for _, s := range o.sinks {
				if err := s.Emit(res); err != nil {
					return fmt.Errorf("campaign: sink: %w", err)
				}
			}
			if o.progress != nil {
				o.progress(i+1, total, res)
			}
			return nil
		})
}

// RunCollect is Run with an implicit Collect sink: it returns every
// result in point-index order. Use it when the study is small enough that
// fold-at-end is fine; attach sinks to Run for streaming consumption.
func RunCollect(ctx context.Context, study *Study, opts ...Option) ([]*Result, error) {
	var c Collect
	if err := Run(ctx, study, append(opts, WithSink(&c))...); err != nil {
		return nil, err
	}
	return c.Results, nil
}
